package positron

// One benchmark per table and figure of the paper (regenerating the
// artifact end to end), plus microbenchmarks of the arithmetic kernels
// and the ablation benches called out in DESIGN.md §5.
//
// The accuracy benches evaluate truncated inference sets (the full
// 190/50/2708 splits are exercised by `go run ./cmd/positron -limit 0`);
// benchEvalLimit keeps a full `go test -bench=.` run to a few minutes.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/emac"
	"repro/internal/experiments"
	"repro/internal/posit"
	"repro/internal/rng"
)

const benchEvalLimit = 150

// warm triggers the one-time float64 training so that per-iteration
// timings measure the experiment itself.
func warm(b *testing.B) {
	b.Helper()
	experiments.Datasets()
	b.ResetTimer()
}

// --- one bench per table/figure ---

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table1()
		if len(rows) != 6 {
			b.Fatal("table I rows")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	warm(b)
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig2()
		if res.PositInUnit <= 0 {
			b.Fatal("fig2")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, _ := experiments.Fig6(32)
		if len(reports) == 0 {
			b.Fatal("fig6")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _ := experiments.Fig7(32)
		if len(curves) != 3 {
			b.Fatal("fig7")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _ := experiments.Fig8(32)
		if len(curves) != 3 {
			b.Fatal("fig8")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	warm(b)
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table2(benchEvalLimit)
		if len(rows) != 3 {
			b.Fatal("table II")
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	warm(b)
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Sweep(benchEvalLimit)
		if len(rows) == 0 {
			b.Fatal("sweep")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	warm(b)
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig9(benchEvalLimit)
		if len(pts) == 0 {
			b.Fatal("fig9")
		}
	}
}

// --- arithmetic microbenchmarks ---

func randomPosits(f posit.Format, n int, seed uint64) []posit.Posit {
	r := rng.New(seed)
	out := make([]posit.Posit, n)
	for i := range out {
		for {
			p := f.FromBits(r.Uint64() & f.Mask())
			if !p.IsNaR() {
				out[i] = p
				break
			}
		}
	}
	return out
}

func BenchmarkPositMul8(b *testing.B) {
	f := posit.MustFormat(8, 1)
	xs := randomPosits(f, 1024, 1)
	b.ResetTimer()
	var sink posit.Posit
	for i := 0; i < b.N; i++ {
		sink = xs[i%1024].Mul(xs[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkPositAdd8(b *testing.B) {
	f := posit.MustFormat(8, 1)
	xs := randomPosits(f, 1024, 2)
	b.ResetTimer()
	var sink posit.Posit
	for i := 0; i < b.N; i++ {
		sink = xs[i%1024].Add(xs[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkPositDiv8(b *testing.B) {
	f := posit.MustFormat(8, 1)
	xs := randomPosits(f, 1024, 3)
	b.ResetTimer()
	var sink posit.Posit
	for i := 0; i < b.N; i++ {
		sink = xs[i%1024].Div(xs[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkPositFromFloat64(b *testing.B) {
	f := posit.MustFormat(8, 0)
	var sink posit.Posit
	for i := 0; i < b.N; i++ {
		sink = f.FromFloat64(float64(i%1000) * 0.37)
	}
	_ = sink
}

func BenchmarkQuireMulAdd(b *testing.B) {
	f := posit.MustFormat(8, 0)
	xs := randomPosits(f, 1024, 4)
	q := posit.NewQuire(f, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MulAdd(xs[i%1024], xs[(i+3)%1024])
	}
}

func BenchmarkQuireDot256(b *testing.B) {
	f := posit.MustFormat(8, 0)
	w := randomPosits(f, 256, 5)
	x := randomPosits(f, 256, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posit.DotProduct(w, x)
	}
}

func benchMAC(b *testing.B, a emac.Arithmetic) {
	r := rng.New(9)
	k := 64
	w := make([]emac.Code, k)
	x := make([]emac.Code, k)
	for i := range w {
		w[i] = a.Quantize(r.NormMS(0, 1))
		x[i] = a.Quantize(r.NormMS(0, 1))
	}
	mac := a.NewMAC(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mac.Reset(0)
		for j := 0; j < k; j++ {
			mac.Step(w[j], x[j])
		}
		if mac.Result() == 0xdeadbeef {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkEMACPosit8(b *testing.B)   { benchMAC(b, emac.NewPosit(8, 0)) }
func BenchmarkEMACPosit8e2(b *testing.B) { benchMAC(b, emac.NewPosit(8, 2)) }
func BenchmarkEMACFloat8(b *testing.B)   { benchMAC(b, emac.NewFloatN(8, 4)) }
func BenchmarkEMACFixed8(b *testing.B)   { benchMAC(b, emac.NewFixed(8, 4)) }
func BenchmarkMACFloat32(b *testing.B)   { benchMAC(b, emac.Float32Arith{}) }

// --- inference benchmarks ---

func BenchmarkInferIris(b *testing.B) {
	experiments.Datasets()
	iris := experiments.Datasets()[1]
	for _, arith := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4), emac.Float32Arith{},
	} {
		b.Run(arith.Name(), func(b *testing.B) {
			dp := QuantizeNetwork(iris.Net, arith)
			x := iris.Test.X[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dp.Infer(x)
			}
		})
	}
}

// BenchmarkLayerKernel measures one pre-decoded 16×30 layer forward pass
// per EMAC arm against stepping the same layer through per-neuron MACs —
// the Table II cross-arm datapath comparison at layer granularity.
func BenchmarkLayerKernel(b *testing.B) {
	r := rng.New(31)
	const in, out = 30, 16
	for _, arith := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	} {
		w := make([][]emac.Code, out)
		bias := make([]emac.Code, out)
		for j := range w {
			row := make([]emac.Code, in)
			for i := range row {
				row[i] = arith.Quantize(r.NormMS(0, 1))
			}
			w[j] = row
			bias[j] = arith.Quantize(r.NormMS(0, 0.5))
		}
		act := make([]emac.Code, in)
		for i := range act {
			act[i] = arith.Quantize(r.NormMS(0, 1))
		}
		dst := make([]emac.Code, out)
		k, ok := arith.(emac.KernelBuilder).NewLayerKernel(w, bias)
		if !ok {
			b.Fatalf("%s: no layer kernel", arith.Name())
		}
		b.Run("kernel/"+arith.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.Forward(act, dst)
			}
		})
		macs := make([]emac.MAC, out)
		for j := range macs {
			macs[j] = arith.NewMAC(in)
		}
		b.Run("macs/"+arith.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < out; j++ {
					mac := macs[j]
					mac.Reset(bias[j])
					row := w[j]
					for i, a := range act {
						mac.Step(row[i], a)
					}
					dst[j] = mac.Result()
				}
			}
		})
	}
}

// BenchmarkSessionInfer measures per-goroutine session inference (the
// concurrent-serving datapath) for every 8-bit arm on the Iris topology.
func BenchmarkSessionInfer(b *testing.B) {
	experiments.Datasets()
	iris := experiments.Datasets()[1]
	for _, arith := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	} {
		b.Run(arith.Name(), func(b *testing.B) {
			s := QuantizeNetwork(iris.Net, arith).NewSession()
			x := iris.Test.X[0]
			s.Infer(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Infer(x)
			}
		})
	}
}

// BenchmarkEngineBatch measures the worker-pool batch engine over the
// full Iris inference split (50 samples per op).
func BenchmarkEngineBatch(b *testing.B) {
	experiments.Datasets()
	iris := experiments.Datasets()[1]
	for _, workers := range []int{1, 4, 8} {
		b.Run(sizeWorkers(workers), func(b *testing.B) {
			e := NewEngine(QuantizeNetwork(iris.Net, emac.NewPosit(8, 0)), workers)
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.InferBatch(iris.Test.X)
			}
		})
	}
}

func sizeWorkers(w int) string { return fmt.Sprintf("workers%d", w) }

// BenchmarkRuntimeBatch measures the context-aware Runtime over the full
// Iris inference split (50 samples per op), comparing the default
// allocating batch path against WithSharedOutputs — the ROADMAP item
// making dataset sweeps allocation-free end to end. Run with -benchmem:
// the shared arm's allocs/op is the proof.
func BenchmarkRuntimeBatch(b *testing.B) {
	experiments.Datasets()
	iris := experiments.Datasets()[1]
	dp := QuantizeNetwork(iris.Net, emac.NewPosit(8, 0))
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		opts []RuntimeOption
	}{
		{"alloc", []RuntimeOption{WithWorkers(4), WithWarmTables()}},
		{"shared-outputs", []RuntimeOption{WithWorkers(4), WithWarmTables(), WithSharedOutputs()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rt, err := NewRuntime(dp, mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			if _, err := rt.InferBatch(ctx, iris.Test.X); err != nil {
				b.Fatal(err) // warm sessions and shared buffers
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.InferBatch(ctx, iris.Test.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamInfer measures the cycle-level streaming simulator
// (32 Iris inferences pipelined through the layer FSMs).
func BenchmarkStreamInfer(b *testing.B) {
	experiments.Datasets()
	iris := experiments.Datasets()[1]
	dp := QuantizeNetwork(iris.Net, emac.NewPosit(8, 0))
	inputs := iris.Test.X[:32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.StreamInfer(inputs, false)
	}
}

// BenchmarkMixedInfer measures mixed-precision inference with the
// format-conversion units at layer boundaries.
func BenchmarkMixedInfer(b *testing.B) {
	experiments.Datasets()
	iris := experiments.Datasets()[1]
	m := QuantizeMixed(iris.Net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewPosit(6, 0), emac.NewPosit(8, 0),
	})
	x := iris.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Infer(x)
	}
}

// BenchmarkNetworkSynthesis measures the full-accelerator estimate table
// (the `hw` experiment).
func BenchmarkNetworkSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.NetworkReports()
		if len(rows) == 0 {
			b.Fatal("hw")
		}
	}
}

// BenchmarkDecimalAccuracy measures the quantisation-fidelity sweep.
func BenchmarkDecimalAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.DecimalAccuracy(1000)
		if len(rows) == 0 {
			b.Fatal("decimals")
		}
	}
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblationExactVsNaive times the exact (quire) accumulation
// against the sequentially rounded scalar chain — the cost of the
// paper's exactness guarantee in software.
func BenchmarkAblationExactVsNaive(b *testing.B) {
	f := posit.MustFormat(8, 0)
	w := randomPosits(f, 128, 11)
	x := randomPosits(f, 128, 12)
	b.Run("exact-quire", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			posit.DotProduct(w, x)
		}
	})
	b.Run("naive-rounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := f.Zero()
			for j := range w {
				acc = acc.Add(w[j].Mul(x[j]))
			}
		}
	})
}

// BenchmarkAblationFixedRounding times the paper's post-shift truncation
// against the round-to-nearest-even variant.
func BenchmarkAblationFixedRounding(b *testing.B) {
	trunc := emac.NewFixed(8, 4)
	rne := emac.NewFixed(8, 4)
	rne.RoundNearest = true
	b.Run("truncate", func(b *testing.B) { benchMAC(b, trunc) })
	b.Run("round-nearest", func(b *testing.B) { benchMAC(b, rne) })
}

// BenchmarkAblationQuireWidth times quires sized for different capacities
// (eq. (4)'s clog2(k) term changes the register word count).
func BenchmarkAblationQuireWidth(b *testing.B) {
	f := posit.MustFormat(8, 2)
	xs := randomPosits(f, 256, 13)
	for _, k := range []int{16, 256, 65536} {
		b.Run(sizeName(k), func(b *testing.B) {
			q := posit.NewQuire(f, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.MulAdd(xs[i%256], xs[(i+5)%256])
			}
		})
	}
}

func sizeName(k int) string {
	switch {
	case k >= 1<<16:
		return "k64Ki"
	case k >= 256:
		return "k256"
	default:
		return "k16"
	}
}

// --- allocation-tracking microbenchmarks (perf trajectory) ---
//
// These four track the fast-path contract: zero allocations per MAC on
// the tabled posit paths. cmd/benchsnap runs the same shapes and emits
// BENCH_arith.json so the numbers are recorded per PR.

func BenchmarkAllocPositMul(b *testing.B) {
	f := posit.MustFormat(8, 0)
	posit.WarmTables(f) // the lazy LUT build must not count as a MAC alloc
	xs := randomPosits(f, 1024, 21)
	b.ReportAllocs()
	b.ResetTimer()
	var sink posit.Posit
	for i := 0; i < b.N; i++ {
		sink = xs[i%1024].Mul(xs[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkAllocPositAdd(b *testing.B) {
	f := posit.MustFormat(8, 0)
	posit.WarmTables(f)
	xs := randomPosits(f, 1024, 22)
	b.ReportAllocs()
	b.ResetTimer()
	var sink posit.Posit
	for i := 0; i < b.N; i++ {
		sink = xs[i%1024].Add(xs[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkAllocDotProduct(b *testing.B) {
	f := posit.MustFormat(8, 0)
	posit.WarmTables(f)
	w := randomPosits(f, 256, 23)
	x := randomPosits(f, 256, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posit.DotProduct(w, x)
	}
}

// BenchmarkAllocForwardPosit8 is the Table II-style end-to-end
// microbenchmark: one full posit(8,0) forward pass through a WBC-shaped
// network (30-16-8-2) on the pre-decoded inference plane. A warm session
// decoding through InferInto into a reused buffer must not allocate at
// all — the proof single-sample inference is allocation-free end to end.
func BenchmarkAllocForwardPosit8(b *testing.B) {
	posit.WarmTables(posit.MustFormat(8, 0))
	net := NewMLP([]int{30, 16, 8, 2}, 42)
	dp := QuantizeNetwork(net, emac.NewPosit(8, 0))
	x := make([]float64, 30)
	r := rng.New(25)
	for i := range x {
		x[i] = r.NormMS(0, 1)
	}
	s := dp.NewSession()
	logits := make([]float64, 2)
	s.InferInto(logits, x) // one warm pass so lazy buffers don't count
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InferInto(logits, x)
	}
}

// BenchmarkForwardBatch measures the fused whole-flush batch kernels
// (decode-once-per-flush, cache-blocked weight traversal, SWAR/table
// inner loops) against looping the per-sample kernel over the same
// flush, for each arm and flush size. cmd/benchsnap -check holds the
// fused 256-flush to at least per-sample throughput in CI.
func BenchmarkForwardBatch(b *testing.B) {
	const in, out = 30, 16
	for _, arith := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	} {
		r := rng.New(31)
		w := make([][]emac.Code, out)
		bias := make([]emac.Code, out)
		for j := range w {
			row := make([]emac.Code, in)
			for i := range row {
				row[i] = arith.Quantize(r.NormMS(0, 1))
			}
			w[j] = row
			bias[j] = arith.Quantize(r.NormMS(0, 0.5))
		}
		k, ok := arith.(emac.KernelBuilder).NewLayerKernel(w, bias)
		if !ok {
			b.Fatalf("%s: no layer kernel", arith.Name())
		}
		bk, ok := arith.(emac.BatchKernelBuilder).NewBatchLayerKernel(w, bias)
		if !ok {
			b.Fatalf("%s: no batch layer kernel", arith.Name())
		}
		for _, bsz := range []int{8, 32, 256} {
			act := make([]emac.Code, bsz*in)
			for i := range act {
				act[i] = arith.Quantize(r.NormMS(0, 1))
			}
			dst := make([]emac.Code, bsz*out)
			b.Run(fmt.Sprintf("fused/%s/B%d", arith.Name(), bsz), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bk.ForwardBatchStrided(act, dst, bsz)
				}
			})
			b.Run(fmt.Sprintf("persample/%s/B%d", arith.Name(), bsz), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for s := 0; s < bsz; s++ {
						k.Forward(act[s*in:(s+1)*in], dst[s*out:(s+1)*out])
					}
				}
			})
		}
	}
}
