// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): Table I (regime interpretation), Fig. 2 (posit value
// clustering vs DNN weights), Figs. 6-8 (EMAC hardware trade-offs),
// Table II (8-bit accuracy on the three datasets) and Fig. 9 (accuracy
// degradation vs EDP). Each harness returns structured rows plus a
// rendered text artifact; cmd/positron and the root benchmarks are thin
// wrappers around this package.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/fixedpoint"
	"repro/internal/hw"
	"repro/internal/minifloat"
	"repro/internal/nn"
	"repro/internal/posit"
	"repro/internal/rng"
	"repro/internal/tabulate"
)

// Trained bundles a trained float64 network with its evaluation split and
// the 32-bit baseline accuracies.
type Trained struct {
	Name  string
	Net   *nn.Network
	Train *datasets.Dataset
	Test  *datasets.Dataset
	Acc64 float64
	Acc32 float64
	// Std is the input standardizer the network expects applied to raw
	// features (nil when the network consumes raw features directly —
	// WBC folds it into the first layer, Mushroom never standardizes).
	// Deployment artifacts carry it so served models take raw inputs.
	Std *datasets.Standardizer
}

var (
	trainedOnce sync.Once
	trainedAll  []*Trained
)

// Datasets trains (once per process) the paper's three networks:
// Wisconsin Breast Cancer, Iris and Mushroom, in float64, and returns
// them with their inference splits (190 / 50 / 2708 samples).
func Datasets() []*Trained {
	trainedOnce.Do(func() {
		trainedAll = []*Trained{trainWBC(), trainIris(), trainMushroom()}
	})
	return trainedAll
}

// trainWBC and trainIris train on standardized features and then fold
// the standardization into the first layer (nn.FoldInputAffine): the
// deployed network consumes raw measurements, so its first-layer weights
// span the wide dynamic range that drives the paper's format comparison
// (WBC features range from ~0.06 to ~650).
func trainWBC() *Trained {
	train, test := datasets.BreastCancerSplit(datasets.WBCSeed)
	std := datasets.FitStandardizer(train)
	net := nn.NewMLP([]int{30, 16, 8, 2}, rng.New(101))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 120
	cfg.LR = 0.02
	nn.Train(net, std.Apply(train), cfg)
	net.FoldInputAffine(std.InputAffine())
	return finishTrained("WisconsinBreastCancer", net, train, test)
}

// trainIris deploys on standardized features (all four measurements share
// one unit and scale, and standardization keeps activations in the ±2
// band where every 8-bit format has usable resolution — the conventional
// setup for this dataset).
func trainIris() *Trained {
	train, test := datasets.IrisSplit(datasets.IrisSeed)
	std := datasets.FitStandardizer(train)
	strain, stest := std.Apply(train), std.Apply(test)
	net := nn.NewMLP([]int{4, 10, 6, 3}, rng.New(7))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 150
	cfg.LR = 0.05
	cfg.LRDecay = 0.99
	nn.Train(net, strain, cfg)
	tr := finishTrained("Iris", net, strain, stest)
	tr.Std = std
	return tr
}

func trainMushroom() *Trained {
	train, test := datasets.MushroomSplit(datasets.MushroomSeed)
	net := nn.NewMLP([]int{train.Dim(), 32, 2}, rng.New(8124))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 12
	cfg.BatchSize = 32
	cfg.LR = 0.08
	nn.Train(net, train, cfg)
	return finishTrained("Mushroom", net, train, test)
}

func finishTrained(name string, net *nn.Network, train, test *datasets.Dataset) *Trained {
	return &Trained{
		Name:  name,
		Net:   net,
		Train: train,
		Test:  test,
		Acc64: nn.Accuracy(net, test),
		Acc32: nn.Accuracy32(net, test),
	}
}

// --- Table I ---

// Table1Row is one regime interpretation example.
type Table1Row struct {
	Binary string
	Regime int
}

// Table1 reproduces the paper's Table I exactly.
func Table1() ([]Table1Row, *tabulate.Table) {
	inputs := []string{"0001", "001", "01", "10", "110", "1110"}
	rows := make([]Table1Row, 0, len(inputs))
	tab := tabulate.New("Table I: Regime Interpretation", "Binary", "Regime (k)")
	for _, s := range inputs {
		k, err := posit.RegimeFromRun(s)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table1Row{Binary: s, Regime: k})
		tab.Add(s, k)
	}
	return rows, tab
}

// --- Fig. 2 ---

// Fig2Result captures the two distributions the figure compares.
type Fig2Result struct {
	PositEdges   []float64
	PositCounts  []int
	PositInUnit  float64 // fraction of posit(7,0) values in [-1,1]
	WeightStats  nn.WeightStats
	WeightCounts []int // same bin edges applied to trained DNN weights
}

// Fig2 reproduces the paper's Fig. 2: the 7-bit (es=0) posit value
// distribution next to a trained DNN weight distribution (our WBC MLP
// substitutes for AlexNet), both clustering heavily in [-1, 1].
func Fig2() (Fig2Result, *tabulate.Table) {
	f := posit.MustFormat(7, 0)
	edges := []float64{-64, -16, -4, -1, -0.25, 0.25, 1, 4, 16, 64}
	res := Fig2Result{
		PositEdges:  edges,
		PositCounts: f.Histogram(edges),
		PositInUnit: f.FractionInUnitRange(),
	}
	wbc := Datasets()[0]
	res.WeightStats = wbc.Net.Stats()
	res.WeightCounts = make([]int, len(edges)-1)
	for _, w := range wbc.Net.Weights() {
		for i := 0; i+1 < len(edges); i++ {
			if w >= edges[i] && w < edges[i+1] {
				res.WeightCounts[i]++
				break
			}
		}
	}
	tab := tabulate.New("Fig. 2: posit(7,0) values vs trained DNN weights",
		"bin", "posit(7,0) count", "DNN weight count")
	for i := 0; i+1 < len(edges); i++ {
		tab.Add(fmt.Sprintf("[%g,%g)", edges[i], edges[i+1]),
			res.PositCounts[i], res.WeightCounts[i])
	}
	return res, tab
}

// --- Figs. 6, 7, 8 ---

// HardwareConfigs returns the per-family EMAC configurations evaluated at
// each bit width n in [5,8]: posit es in {0,1,2}, float we in {3,4} (the
// paper's best-performing ranges) and fixed q = n/2 as the representative
// Q-format (hardware cost is independent of q at fixed n).
func HardwareConfigs(n uint, k int) []hw.Report {
	var out []hw.Report
	for es := uint(0); es <= 2 && es+3 <= n; es++ {
		out = append(out, hw.Virtex7.SynthPosit(posit.MustFormat(n, es), k))
	}
	for we := uint(3); we <= 4 && we+2 <= n; we++ {
		out = append(out, hw.Virtex7.SynthFloat(minifloat.MustFormat(we, n-1-we), k))
	}
	out = append(out, hw.Virtex7.SynthFixed(fixedpoint.MustFormat(n, n/2), k))
	return out
}

// Fig6 returns the (dynamic range, fmax) scatter for every configuration,
// the paper's Fig. 6.
func Fig6(k int) ([]hw.Report, *tabulate.Figure) {
	fig := tabulate.NewFigure("Fig. 6: Dynamic Range vs Max Operating Frequency",
		"log10(max/min)", "fmax (MHz)")
	var all []hw.Report
	series := map[string][]hw.Report{}
	for n := uint(5); n <= 8; n++ {
		for _, r := range HardwareConfigs(n, k) {
			all = append(all, r)
			series[r.Family] = append(series[r.Family], r)
		}
	}
	for _, fam := range []string{"fixed", "float", "posit"} {
		var xs, ys []float64
		for _, r := range series[fam] {
			xs = append(xs, r.DynRange)
			ys = append(ys, r.FMaxMHz)
		}
		fig.AddSeries(fam, xs, ys)
	}
	return all, fig
}

// representative returns the per-family representative config at width n
// used for the per-n curves of Figs. 7 and 8 (posit es=1, float we=3,
// fixed q=n/2).
func representative(n uint, k int) map[string]hw.Report {
	return map[string]hw.Report{
		"posit": hw.Virtex7.SynthPosit(posit.MustFormat(n, 1), k),
		"float": hw.Virtex7.SynthFloat(minifloat.MustFormat(3, n-4), k),
		"fixed": hw.Virtex7.SynthFixed(fixedpoint.MustFormat(n, n/2), k),
	}
}

// Fig7 returns the n-vs-EDP curves (paper Fig. 7).
func Fig7(k int) (map[string][]hw.Report, *tabulate.Figure) {
	return perNCurves(k, "Fig. 7: n vs Energy-Delay-Product", "n (bits)", "EDP (J·s per MAC)",
		func(r hw.Report) float64 { return r.EDP })
}

// Fig8 returns the n-vs-LUTs curves (paper Fig. 8).
func Fig8(k int) (map[string][]hw.Report, *tabulate.Figure) {
	return perNCurves(k, "Fig. 8: n vs LUT Utilisation", "n (bits)", "LUTs",
		func(r hw.Report) float64 { return r.LUTs })
}

func perNCurves(k int, title, xl, yl string, metric func(hw.Report) float64) (map[string][]hw.Report, *tabulate.Figure) {
	fig := tabulate.NewFigure(title, xl, yl)
	out := map[string][]hw.Report{}
	for _, fam := range []string{"fixed", "float", "posit"} {
		var xs, ys []float64
		for n := uint(5); n <= 8; n++ {
			r := representative(n, k)[fam]
			out[fam] = append(out[fam], r)
			xs = append(xs, float64(n))
			ys = append(ys, metric(r))
		}
		fig.AddSeries(fam, xs, ys)
	}
	return out, fig
}

// --- Table II ---

// Table2Row is one dataset row of the paper's Table II.
type Table2Row struct {
	Dataset       string
	InferenceSize int
	Posit         core.Result
	Float         core.Result
	Fixed         core.Result
	Float32       float64
}

// Table2 reproduces Table II: best 8-bit accuracy per family per dataset
// plus the 32-bit float baseline. evalLimit truncates the inference sets
// (0 = the paper's full sizes).
func Table2(evalLimit int) ([]Table2Row, *tabulate.Table) {
	var rows []Table2Row
	tab := tabulate.New("Table II: Deep Positron accuracy with 8-bit EMACs",
		"Dataset", "Inference size", "Posit", "Floating-point", "Fixed-point", "32-bit Float")
	for _, tr := range Datasets() {
		test := tr.Test.Head(evalLimit)
		fb := core.BestPerFamily(tr.Net, test, 8)
		row := Table2Row{
			Dataset:       tr.Name,
			InferenceSize: tr.Test.Len(),
			Posit:         fb.Posit,
			Float:         fb.Float,
			Fixed:         fb.Fixed,
			Float32:       tr.Acc32,
		}
		rows = append(rows, row)
		tab.AddStrings(row.Dataset, fmt.Sprint(row.InferenceSize),
			fmt.Sprintf("%.2f%% (%s)", 100*row.Posit.Accuracy, row.Posit.Arith.Name()),
			fmt.Sprintf("%.2f%% (%s)", 100*row.Float.Accuracy, row.Float.Arith.Name()),
			fmt.Sprintf("%.2f%% (%s)", 100*row.Fixed.Accuracy, row.Fixed.Arith.Name()),
			fmt.Sprintf("%.2f%%", 100*row.Float32))
	}
	return rows, tab
}

// --- §IV-B sweep ---

// SweepRow is the best accuracy of one family at one bit width on one
// dataset.
type SweepRow struct {
	Dataset string
	N       uint
	Family  string
	Best    core.Result
	Acc32   float64
}

// Sweep evaluates every (format, n) combination for n in [5,8], the
// paper's "all possible combinations of [5,8] bit-widths" experiment.
func Sweep(evalLimit int) ([]SweepRow, *tabulate.Table) {
	var rows []SweepRow
	tab := tabulate.New("Sub-8-bit sweep: best accuracy per (dataset, n, family)",
		"Dataset", "n", "Posit", "Float", "Fixed", "32-bit")
	for _, tr := range Datasets() {
		test := tr.Test.Head(evalLimit)
		for n := uint(5); n <= 8; n++ {
			fb := core.BestPerFamily(tr.Net, test, n)
			for fam, res := range map[string]core.Result{
				"posit": fb.Posit, "float": fb.Float, "fixed": fb.Fixed,
			} {
				rows = append(rows, SweepRow{
					Dataset: tr.Name, N: n, Family: fam, Best: res, Acc32: tr.Acc32,
				})
			}
			tab.AddStrings(tr.Name, fmt.Sprint(n),
				fmt.Sprintf("%.2f%% (%s)", 100*fb.Posit.Accuracy, fb.Posit.Arith.Name()),
				fmt.Sprintf("%.2f%% (%s)", 100*fb.Float.Accuracy, fb.Float.Arith.Name()),
				fmt.Sprintf("%.2f%% (%s)", 100*fb.Fixed.Accuracy, fb.Fixed.Arith.Name()),
				fmt.Sprintf("%.2f%%", 100*tr.Acc32))
		}
	}
	return rows, tab
}

// --- Fig. 9 ---

// Fig9Point is one (format, n) point: average accuracy degradation vs the
// 32-bit baseline across the three datasets, against the EMAC's EDP.
type Fig9Point struct {
	Family         string
	N              uint
	AvgDegradation float64 // percentage points
	EDP            float64
}

// Fig9 reproduces the paper's Fig. 9 from the sweep results and the
// hardware model (k = 64 accumulator sizing).
func Fig9(evalLimit int) ([]Fig9Point, *tabulate.Figure) {
	rows, _ := Sweep(evalLimit)
	type key struct {
		fam string
		n   uint
	}
	sum := map[key]float64{}
	cnt := map[key]int{}
	for _, r := range rows {
		k := key{r.Family, r.N}
		sum[k] += 100 * (r.Acc32 - r.Best.Accuracy)
		cnt[k]++
	}
	fig := tabulate.NewFigure("Fig. 9: Avg accuracy degradation vs EDP",
		"avg accuracy degradation (%)", "EDP (J·s per MAC)")
	var pts []Fig9Point
	for _, fam := range []string{"fixed", "float", "posit"} {
		var xs, ys []float64
		for n := uint(5); n <= 8; n++ {
			k := key{fam, n}
			if cnt[k] == 0 {
				continue
			}
			p := Fig9Point{
				Family:         fam,
				N:              n,
				AvgDegradation: sum[k] / float64(cnt[k]),
				EDP:            representative(n, 64)[fam].EDP,
			}
			pts = append(pts, p)
			xs = append(xs, p.AvgDegradation)
			ys = append(ys, p.EDP)
		}
		fig.AddSeries(fam, xs, ys)
	}
	return pts, fig
}
