package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/tabulate"
)

// EngineRow is one dataset × arithmetic parallel-evaluation measurement.
type EngineRow struct {
	Dataset  string
	Arith    string
	Samples  int
	Workers  int
	Accuracy float64
	SerialMS float64
	ParMS    float64
	Speedup  float64
}

// EngineSweep (extension) evaluates every 8-bit EMAC arm over every
// dataset twice — serially through one session and in parallel through
// the worker-pool batch engine — and reports throughput plus the
// speedup. The engine's accuracies must match the serial ones exactly
// (each worker's session is bit-identical to the serial datapath); the
// harness panics if they ever diverge, so the table doubles as an
// end-to-end check of the shared-nothing session plane. workers <= 0
// selects GOMAXPROCS.
func EngineSweep(evalLimit, workers int) ([]EngineRow, *tabulate.Table) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []EngineRow
	tab := tabulate.New(fmt.Sprintf("Inference engine: serial session vs %d-worker pool", workers),
		"Dataset", "Arithmetic", "Samples", "Accuracy", "Serial", "Parallel", "Speedup")
	for _, tr := range Datasets() {
		test := tr.Test.Head(evalLimit)
		for _, a := range []emac.Arithmetic{
			emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4), emac.Float32Arith{},
		} {
			net := core.Quantize(tr.Net, a)

			// Both session and pool construction (weight pre-decode) stay
			// outside the timed regions: the comparison is datapath vs
			// datapath, not setup cost.
			s := net.NewSession()
			start := time.Now()
			serialAcc := s.Accuracy(test)
			serial := time.Since(start)

			e := engine.New(net, workers)
			start = time.Now()
			parAcc := e.Accuracy(test)
			par := time.Since(start)
			e.Close()

			if par <= 0 {
				par = time.Nanosecond // sub-resolution run; avoid a 0/0 speedup
			}
			if parAcc != serialAcc {
				panic(fmt.Sprintf("experiments: engine accuracy %v != serial %v on %s/%s",
					parAcc, serialAcc, tr.Name, a.Name()))
			}
			row := EngineRow{
				Dataset:  tr.Name,
				Arith:    a.Name(),
				Samples:  test.Len(),
				Workers:  workers,
				Accuracy: serialAcc,
				SerialMS: float64(serial.Microseconds()) / 1000,
				ParMS:    float64(par.Microseconds()) / 1000,
				Speedup:  float64(serial.Nanoseconds()) / float64(par.Nanoseconds()),
			}
			rows = append(rows, row)
			tab.AddStrings(row.Dataset, row.Arith, fmt.Sprint(row.Samples),
				fmt.Sprintf("%.2f%%", 100*row.Accuracy),
				fmt.Sprintf("%.1fms", row.SerialMS),
				fmt.Sprintf("%.1fms", row.ParMS),
				fmt.Sprintf("%.1f×", row.Speedup))
		}
	}
	return rows, tab
}
