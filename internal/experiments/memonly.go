package experiments

import (
	"fmt"

	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/tabulate"
)

// Memory-only quantisation: store the parameters in an n-bit format but
// compute in float32 — the deployment mode of Langroudi et al. [21]
// ("Deep learning inference on embedded devices: fixed-point vs posit"),
// which the paper cites as showing <1% degradation with 7-bit posit
// weights and ~30% memory savings. Here the EMAC stays full-precision;
// only the weight/bias memory is low precision, isolating the storage
// effect from the arithmetic effect that Table II measures.

// MemOnlyRow is one (dataset, format) weight-storage result.
type MemOnlyRow struct {
	Dataset  string
	Arith    emac.Arithmetic
	Accuracy float64
	Acc32    float64
	// MemorySaving vs 32-bit storage (e.g. 0.75 for 8-bit formats).
	MemorySaving float64
}

// quantizeWeightsOnly returns a copy of the network whose weights and
// biases have been round-tripped through the arithmetic.
func quantizeWeightsOnly(src *nn.Network, a emac.Arithmetic) *nn.Network {
	out := &nn.Network{Sizes: append([]int(nil), src.Sizes...)}
	for _, l := range src.Layers {
		nl := &nn.Layer{In: l.In, Out: l.Out, B: make([]float64, l.Out)}
		nl.W = make([][]float64, l.Out)
		for j, row := range l.W {
			nr := make([]float64, l.In)
			for i, w := range row {
				nr[i] = a.Decode(a.Quantize(w))
			}
			nl.W[j] = nr
		}
		for j, b := range l.B {
			nl.B[j] = a.Decode(a.Quantize(b))
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}

// MemoryOnly evaluates weight-storage-only quantisation for posit formats
// at n in [5,8] on every dataset (float32 compute).
func MemoryOnly(evalLimit int) ([]MemOnlyRow, *tabulate.Table) {
	var rows []MemOnlyRow
	tab := tabulate.New("Memory-only quantisation (weights stored low-precision, float32 compute)",
		"Dataset", "format", "accuracy", "float32", "mem saving")
	for _, tr := range Datasets() {
		test := tr.Test.Head(evalLimit)
		for n := uint(5); n <= 8; n++ {
			// best es per (dataset, n) — the sweep the cited work does
			best := MemOnlyRow{Dataset: tr.Name, Acc32: tr.Acc32}
			for es := uint(0); es <= 2 && es+3 <= n; es++ {
				a := emac.NewPosit(n, es)
				qnet := quantizeWeightsOnly(tr.Net, a)
				acc := nn.Accuracy32(qnet, test)
				if acc > best.Accuracy || best.Arith == nil {
					best.Accuracy = acc
					best.Arith = a
				}
			}
			best.MemorySaving = 1 - float64(n)/32
			rows = append(rows, best)
			tab.AddStrings(tr.Name, best.Arith.Name(),
				fmt.Sprintf("%.2f%%", 100*best.Accuracy),
				fmt.Sprintf("%.2f%%", 100*best.Acc32),
				fmt.Sprintf("%.0f%%", 100*best.MemorySaving))
		}
	}
	return rows, tab
}
