package experiments

import (
	"fmt"
	"math"

	"repro/internal/emac"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/tabulate"
)

// DecimalAccuracyRow measures one format's quantisation fidelity in
// decimal digits: -log10 of the relative error, the metric Gustafson's
// posit papers use to argue tapered precision. "Near one" draws values
// where DNN weights live (|x| log-uniform in [1/8, 8]); "wide" stresses
// the whole dynamic range (|x| log-uniform in [1e-3, 1e3]).
type DecimalAccuracyRow struct {
	Name             string
	BitWidth         uint
	MeanDigitsNear1  float64 // mean decimal digits of accuracy, |x| in [1/8, 8]
	WorstDigitsNear1 float64
	MeanDigitsWide   float64 // |x| in [1e-3, 1e3]
	FailFracWide     float64 // fraction with >50% relative error (saturation/flush)
}

// DecimalAccuracy quantifies each 8-bit format's rounding error profile.
// It substantiates the paper's Fig. 2 argument quantitatively: posit
// concentrates accuracy where weights cluster, float spends bits on
// exponent range, fixed point has no relative-error guarantee at all.
func DecimalAccuracy(samples int) ([]DecimalAccuracyRow, *tabulate.Table) {
	if samples <= 0 {
		samples = 4000
	}
	arms := []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewPosit(8, 1), emac.NewPosit(8, 2),
		emac.NewFloatN(8, 4), emac.NewFloatN(8, 5),
		emac.NewFixed(8, 4),
	}
	r := rng.New(0xDEC)
	draw := func(lo, hi float64) []float64 {
		out := make([]float64, samples)
		llo, lhi := math.Log(lo), math.Log(hi)
		for i := range out {
			v := math.Exp(llo + (lhi-llo)*r.Float64())
			if r.Intn(2) == 1 {
				v = -v
			}
			out[i] = v
		}
		return out
	}
	near := draw(0.125, 8)
	wide := draw(1e-3, 1e3)

	digits := func(a emac.Arithmetic, x float64) float64 {
		got := a.Decode(a.Quantize(x))
		rel := math.Abs(got-x) / math.Abs(x)
		if rel == 0 {
			return 10 // exact: cap the score
		}
		d := -math.Log10(rel)
		if d > 10 {
			d = 10
		}
		return d
	}

	var rows []DecimalAccuracyRow
	tab := tabulate.New("Decimal accuracy of 8-bit quantisation (higher = better)",
		"format", "mean digits |x|∈[1/8,8]", "worst digits", "mean digits |x|∈[1e-3,1e3]", "fail% wide")
	for _, a := range arms {
		row := DecimalAccuracyRow{Name: a.Name(), BitWidth: a.BitWidth(), WorstDigitsNear1: math.Inf(1)}
		var sumN, sumW float64
		fails := 0
		for _, x := range near {
			d := digits(a, x)
			sumN += d
			if d < row.WorstDigitsNear1 {
				row.WorstDigitsNear1 = d
			}
		}
		for _, x := range wide {
			got := a.Decode(a.Quantize(x))
			rel := math.Abs(got-x) / math.Abs(x)
			if rel > 0.5 {
				fails++
			}
			sumW += digits(a, x)
		}
		row.MeanDigitsNear1 = sumN / float64(samples)
		row.MeanDigitsWide = sumW / float64(samples)
		row.FailFracWide = float64(fails) / float64(samples)
		rows = append(rows, row)
		tab.AddStrings(row.Name,
			fmt.Sprintf("%.2f", row.MeanDigitsNear1),
			fmt.Sprintf("%.2f", row.WorstDigitsNear1),
			fmt.Sprintf("%.2f", row.MeanDigitsWide),
			fmt.Sprintf("%.1f%%", 100*row.FailFracWide))
	}
	return rows, tab
}

// NetworkReportRow pairs a dataset topology with one format's full
// accelerator estimate.
type NetworkReportRow struct {
	Dataset string
	Report  hw.NetworkReport
}

// NetworkReports sizes a complete Deep Positron instance for every
// evaluation network × representative 8-bit format — the whole-accelerator
// view behind the paper's latency/power discussion.
func NetworkReports() ([]NetworkReportRow, *tabulate.Table) {
	shapes := map[string]struct{ fanin, width []int }{
		"WisconsinBreastCancer": {[]int{30, 16, 8}, []int{16, 8, 2}},
		"Iris":                  {[]int{4, 10, 6}, []int{10, 6, 3}},
		"Mushroom":              {[]int{117, 32}, []int{32, 2}},
	}
	var rows []NetworkReportRow
	tab := tabulate.New("Deep Positron full-accelerator estimates (8-bit formats, k-sized per layer)",
		"Dataset", "EMAC", "EMACs", "LUTs", "BRAM36", "latency (ns)", "kinf/s", "energy/inf (J)")
	for _, name := range []string{"WisconsinBreastCancer", "Iris", "Mushroom"} {
		sh := shapes[name]
		maxFanin := 0
		for _, f := range sh.fanin {
			if f > maxFanin {
				maxFanin = f
			}
		}
		for _, rep := range representative(8, maxFanin) {
			nr := SynthNet(rep, sh.fanin, sh.width)
			rows = append(rows, NetworkReportRow{Dataset: name, Report: nr})
			tab.AddStrings(name, rep.Name,
				fmt.Sprint(nr.TotalEMACs),
				fmt.Sprintf("%.0f", nr.TotalLUTs),
				fmt.Sprint(nr.BRAM36),
				fmt.Sprintf("%.0f", nr.LatencyNs),
				fmt.Sprintf("%.0f", nr.ThroughputKIPS),
				fmt.Sprintf("%.3g", nr.EnergyPerInfJ))
		}
	}
	return rows, tab
}

// SynthNet wraps hw.SynthesizeNetwork with the EMAC's own bit width.
func SynthNet(rep hw.Report, fanin, width []int) hw.NetworkReport {
	return hw.SynthesizeNetwork(rep, fanin, width, rep.N)
}
