package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tabulate"
)

// Robustness re-runs the Table II experiment end to end (data generation,
// split, training, sweep) under different master seeds, checking that the
// paper's orderings are properties of the formats rather than artifacts
// of one lucky draw. Every reported number in EXPERIMENTS.md uses the
// canonical seeds; this harness quantifies how much they move.

// RobustnessRow is one (seed, dataset) Table II line.
type RobustnessRow struct {
	Seed    uint64
	Dataset string
	Posit   float64
	Float   float64
	Fixed   float64
	Acc32   float64
}

// trainForSeed re-builds one dataset + network under a master seed.
// Mushroom is skipped by default in RobustnessCheck's callers when speed
// matters; the function supports all three.
func trainForSeed(name string, seed uint64) *Trained {
	switch name {
	case "WisconsinBreastCancer":
		train, test := datasets.BreastCancerSplit(seed)
		std := datasets.FitStandardizer(train)
		net := nn.NewMLP([]int{30, 16, 8, 2}, rng.New(seed^0x101))
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 120
		cfg.LR = 0.02
		cfg.Seed = seed ^ 1
		nn.Train(net, std.Apply(train), cfg)
		net.FoldInputAffine(std.InputAffine())
		return finishTrained(name, net, train, test)
	case "Iris":
		train, test := datasets.IrisSplit(seed)
		strain, stest := datasets.Standardize(train, test)
		net := nn.NewMLP([]int{4, 10, 6, 3}, rng.New(seed^0x7))
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 150
		cfg.LR = 0.05
		cfg.LRDecay = 0.99
		cfg.Seed = seed ^ 2
		nn.Train(net, strain, cfg)
		return finishTrained(name, net, strain, stest)
	case "Mushroom":
		train, test := datasets.MushroomSplit(seed)
		net := nn.NewMLP([]int{train.Dim(), 32, 2}, rng.New(seed^0x8124))
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 12
		cfg.BatchSize = 32
		cfg.LR = 0.08
		cfg.Seed = seed ^ 3
		nn.Train(net, train, cfg)
		return finishTrained(name, net, train, test)
	default:
		panic("experiments: unknown dataset " + name)
	}
}

// RobustnessCheck reruns the 8-bit Table II sweep for each seed over the
// named datasets.
func RobustnessCheck(seeds []uint64, names []string, evalLimit int) ([]RobustnessRow, *tabulate.Table) {
	var rows []RobustnessRow
	tab := tabulate.New("Seed robustness of the Table II orderings (8-bit)",
		"seed", "dataset", "posit", "float", "fixed", "float32")
	for _, seed := range seeds {
		for _, name := range names {
			tr := trainForSeed(name, seed)
			fb := core.BestPerFamily(tr.Net, tr.Test.Head(evalLimit), 8)
			row := RobustnessRow{
				Seed:    seed,
				Dataset: name,
				Posit:   fb.Posit.Accuracy,
				Float:   fb.Float.Accuracy,
				Fixed:   fb.Fixed.Accuracy,
				Acc32:   tr.Acc32,
			}
			rows = append(rows, row)
			tab.AddStrings(fmt.Sprintf("%#x", seed), name,
				fmt.Sprintf("%.2f%%", 100*row.Posit),
				fmt.Sprintf("%.2f%%", 100*row.Float),
				fmt.Sprintf("%.2f%%", 100*row.Fixed),
				fmt.Sprintf("%.2f%%", 100*row.Acc32))
		}
	}
	return rows, tab
}
