package experiments

import "testing"

func TestDecimalAccuracyTaperedPrecision(t *testing.T) {
	rows, tab := DecimalAccuracy(3000)
	if tab.Len() != len(rows) || len(rows) == 0 {
		t.Fatal("empty")
	}
	byName := map[string]DecimalAccuracyRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	p0 := byName["posit(8,0)"]
	f4 := byName["float(8: we=4,wf=3)"]
	fx := byName["fixed(8,q=4)"]
	// Tapered precision: posit(8,0) beats the 8-bit float near 1 (it
	// spends no bits on exponent there).
	if p0.MeanDigitsNear1 <= f4.MeanDigitsNear1 {
		t.Errorf("posit(8,0) near-1 digits %.2f <= float %.2f",
			p0.MeanDigitsNear1, f4.MeanDigitsNear1)
	}
	// Fixed point has no relative-error guarantee: its worst digits near
	// 1 must be far below both.
	if fx.WorstDigitsNear1 >= p0.WorstDigitsNear1 {
		t.Errorf("fixed worst %.2f >= posit worst %.2f", fx.WorstDigitsNear1, p0.WorstDigitsNear1)
	}
	// On the wide range, fixed fails (saturates/flushes) on a large
	// fraction; posit(8,2) fails on none (its range covers 1e-3..1e3).
	p2 := byName["posit(8,2)"]
	if p2.FailFracWide > 0.01 {
		t.Errorf("posit(8,2) wide failure rate %.3f", p2.FailFracWide)
	}
	if fx.FailFracWide < 0.3 {
		t.Errorf("fixed wide failure rate only %.3f", fx.FailFracWide)
	}
	t.Logf("\n%s", tab)
}

func TestNetworkReports(t *testing.T) {
	rows, tab := NetworkReports()
	if len(rows) != 9 { // 3 datasets × 3 families
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Report.FitsVirtex7() {
			t.Errorf("%s/%s does not fit the paper's device", r.Dataset, r.Report.EMAC.Name)
		}
		if r.Report.LatencyNs <= 0 || r.Report.ThroughputKIPS <= 0 {
			t.Errorf("%s/%s degenerate costs", r.Dataset, r.Report.EMAC.Name)
		}
	}
	// Mushroom (117-32-2) must be the largest instance per family.
	var mush, iris float64
	for _, r := range rows {
		if r.Report.EMAC.Family != "posit" {
			continue
		}
		switch r.Dataset {
		case "Mushroom":
			mush = r.Report.TotalLUTs
		case "Iris":
			iris = r.Report.TotalLUTs
		}
	}
	if mush <= iris {
		t.Error("mushroom instance should outweigh iris")
	}
	t.Logf("\n%s", tab)
}
