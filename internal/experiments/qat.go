package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/tabulate"
)

// QATRow compares post-training quantisation against quantisation-aware
// fine-tuning at one format.
type QATRow struct {
	Dataset string
	Arith   emac.Arithmetic
	PTQ     float64 // post-training quantisation accuracy
	QAT     float64 // after STE fine-tuning
	Acc32   float64
}

// cloneNet deep-copies a trained network (QAT mutates weights).
func cloneNet(src *nn.Network) *nn.Network {
	out := &nn.Network{Sizes: append([]int(nil), src.Sizes...)}
	for _, l := range src.Layers {
		nl := &nn.Layer{In: l.In, Out: l.Out, B: append([]float64(nil), l.B...)}
		nl.W = make([][]float64, l.Out)
		for j, row := range l.W {
			nl.W[j] = append([]float64(nil), row...)
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}

// QuantizationAwareTraining fine-tunes the Iris network for very low
// posit widths (the regime where post-training quantisation visibly
// degrades) and evaluates both paths on the paper's Deep Positron
// inference engine. This is the paper's future-work direction: using the
// low-precision format during training, not just inference.
func QuantizationAwareTraining(evalLimit int) ([]QATRow, *tabulate.Table) {
	iris := Datasets()[1]
	test := iris.Test.Head(evalLimit)
	var rows []QATRow
	tab := tabulate.New("Post-training quantisation vs quantisation-aware fine-tuning (Iris)",
		"format", "PTQ", "QAT", "float32")
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(5, 0), emac.NewPosit(5, 1), emac.NewPosit(6, 0),
	} {
		ptq := core.Quantize(iris.Net, a).Accuracy(test)

		tuned := cloneNet(iris.Net)
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = 60
		cfg.LR = 0.01
		cfg.Seed = 0x9A7
		q := func(x float64) float64 { return a.Decode(a.Quantize(x)) }
		nn.TrainQAT(tuned, iris.Train, cfg, q, q)
		qat := core.Quantize(tuned, a).Accuracy(test)

		row := QATRow{Dataset: iris.Name, Arith: a, PTQ: ptq, QAT: qat, Acc32: iris.Acc32}
		rows = append(rows, row)
		tab.AddStrings(a.Name(),
			fmt.Sprintf("%.2f%%", 100*ptq),
			fmt.Sprintf("%.2f%%", 100*qat),
			fmt.Sprintf("%.2f%%", 100*iris.Acc32))
	}
	return rows, tab
}
