package experiments

import (
	"testing"

	"repro/internal/emac"
)

func TestMemoryOnlyQuantization(t *testing.T) {
	rows, tab := MemoryOnly(evalLimit)
	if len(rows) != 3*4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The cited claim ([21], related work): 7-bit posit weight storage
	// costs <1% accuracy with float32 compute. That claim is about
	// networks with conventional weight distributions (clustered in
	// [-1,1], like Iris and Mushroom here); our WBC network is deployed
	// with standardisation folded into its first layer, giving weights
	// spanning 1e-3..355 — an adversarial storage case where 7-bit
	// posits genuinely lose accuracy, so we assert it only at 8 bits.
	for _, r := range rows {
		if r.Arith.BitWidth() < 7 {
			continue
		}
		if r.Dataset == "WisconsinBreastCancer" && r.Arith.BitWidth() < 8 {
			continue
		}
		if r.Acc32-r.Accuracy > 0.012+0.021 {
			t.Errorf("%s @%s: memory-only degradation %.3f exceeds ~1%%",
				r.Dataset, r.Arith.Name(), r.Acc32-r.Accuracy)
		}
	}
	// Memory saving is purely structural.
	for _, r := range rows {
		want := 1 - float64(r.Arith.BitWidth())/32
		if r.MemorySaving != want {
			t.Errorf("saving %v want %v", r.MemorySaving, want)
		}
	}
	t.Logf("\n%s", tab)
}

func TestQuantizationAwareTraining(t *testing.T) {
	rows, tab := QuantizationAwareTraining(0)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	improved := 0
	for _, r := range rows {
		// QAT must never end catastrophically below PTQ (one-sample
		// slack), and should improve at least one configuration.
		if r.QAT < r.PTQ-0.0401 {
			t.Errorf("%s: QAT %.3f well below PTQ %.3f", r.Arith.Name(), r.QAT, r.PTQ)
		}
		if r.QAT > r.PTQ {
			improved++
		}
	}
	if improved == 0 {
		t.Error("QAT should improve at least one low-width configuration")
	}
	t.Logf("\n%s", tab)
}

func TestQuireAblation(t *testing.T) {
	rows, tab := QuireAblation(evalLimit)
	if len(rows) != 3*5 {
		t.Fatalf("%d rows", len(rows))
	}
	// drop=0 must equal the exact-quire accuracy; moderate drops must
	// not catastrophically destroy accuracy (posit products of ±O(1)
	// values live near the top of the register); extreme drops may.
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("degenerate accuracy %v", r.Accuracy)
		}
	}
	byDataset := map[string][]QuireAblationRow{}
	for _, r := range rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for ds, rs := range byDataset {
		exact := rs[0]
		half := rs[2] // fracDepth/2 dropped
		if exact.Drop != 0 {
			t.Fatalf("row order changed")
		}
		if exact.Accuracy-half.Accuracy > 0.10 {
			t.Errorf("%s: half-depth quire loses %.1f points (>10)", ds,
				100*(exact.Accuracy-half.Accuracy))
		}
	}
	t.Logf("\n%s", tab)
}

func TestRobustnessAcrossSeeds(t *testing.T) {
	// Two alternative seeds, the two fast datasets: the qualitative
	// orderings must survive re-generation and re-training.
	rows, tab := RobustnessCheck([]uint64{21, 1234}, []string{"WisconsinBreastCancer", "Iris"}, evalLimit)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	const oneSample = 0.021
	for _, r := range rows {
		if r.Posit < r.Float-2*oneSample {
			t.Errorf("seed %#x %s: posit %.3f well below float %.3f", r.Seed, r.Dataset, r.Posit, r.Float)
		}
		// The collapse magnitude varies with the draw (8-25 points);
		// the robust property is RELATIVE: fixed degrades far more
		// than posit on the wide-dynamic-range deployment.
		if r.Dataset == "WisconsinBreastCancer" {
			fixedDrop := r.Acc32 - r.Fixed
			positDrop := r.Acc32 - r.Posit
			if fixedDrop-positDrop < 0.04 {
				t.Errorf("seed %#x: WBC fixed drop %.3f not clearly worse than posit drop %.3f",
					r.Seed, fixedDrop, positDrop)
			}
		}
	}
	t.Logf("\n%s", tab)
}

func TestWide16AllReachBaseline(t *testing.T) {
	rows, tab := Wide16(evalLimit)
	if len(rows) != 3*5 {
		t.Fatalf("%d rows", len(rows))
	}
	// At 16 bits the posit and float arms have ample precision and range
	// for these tasks: none may fall more than ~one sample below the
	// float32 baseline (the [22] "16-bit posit replaces float16" story).
	// Fixed point is the exception — even with its best q it cannot
	// cover the WBC deployment's 1e-3..355 weight span (q=7 clips 355
	// AND quantises the milli-scale weights to 12% relative error), a
	// genuine finding this test pins down.
	for _, r := range rows {
		if _, isFixed := r.Arith.(emac.FixedArith); isFixed {
			if r.Dataset == "WisconsinBreastCancer" {
				if r.Acc32-r.Accuracy < 0.02 {
					t.Errorf("WBC: 16-bit fixed unexpectedly reached baseline (%.2f%%)", 100*r.Accuracy)
				}
				continue
			}
		}
		if r.Acc32-r.Accuracy > 0.022 {
			t.Errorf("%s @%s: %.2f%% vs baseline %.2f%%",
				r.Dataset, r.Arith.Name(), 100*r.Accuracy, 100*r.Acc32)
		}
	}
	t.Logf("\n%s", tab)
}

func TestScalingTrends(t *testing.T) {
	rows, tab := Scaling(32)
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	// Accumulators and LUTs must grow monotonically with n per family;
	// fixed must stay fastest at every width.
	byFam := map[string][]ScalingRow{}
	for _, r := range rows {
		byFam[r.Report.Family] = append(byFam[r.Report.Family], r)
	}
	for fam, rs := range byFam {
		for i := 1; i < len(rs); i++ {
			if rs[i].Report.AccumWidth < rs[i-1].Report.AccumWidth {
				t.Errorf("%s: accumulator shrank from n=%d to n=%d",
					fam, rs[i-1].Report.N, rs[i].Report.N)
			}
			if rs[i].Report.LUTs < rs[i-1].Report.LUTs {
				t.Errorf("%s: LUTs shrank with width", fam)
			}
		}
	}
	for i := range byFam["fixed"] {
		fx := byFam["fixed"][i].Report
		if byFam["float"][i].Report.FMaxMHz > fx.FMaxMHz || byFam["posit"][i].Report.FMaxMHz > fx.FMaxMHz {
			t.Errorf("n=%d: fixed no longer fastest", fx.N)
		}
	}
	t.Logf("\n%s", tab)
}
