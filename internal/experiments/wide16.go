package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/fixedpoint"
	"repro/internal/hw"
	"repro/internal/minifloat"
	"repro/internal/posit"
	"repro/internal/tabulate"
)

// Sixteen-bit formats: the paper's related work (Cococcioni et al. [22])
// argues 16-bit posits against the float16 mandated by automotive
// standards. Our machinery supports all the relevant 16-bit layouts
// directly: standard posit(16,2), legacy posit(16,1), IEEE binary16
// (we=5, wf=10) and bfloat16 (we=8, wf=7).

// Wide16Row is one (dataset, format) accuracy at 16 bits.
type Wide16Row struct {
	Dataset  string
	Arith    emac.Arithmetic
	Accuracy float64
	Acc32    float64
}

// Sixteen16Arms returns the fixed-parameter 16-bit comparison set; the
// fixed-point arm sweeps q separately (like every other experiment —
// a single hardcoded q is exactly the failure mode Table II exposes).
func Sixteen16Arms() []emac.Arithmetic {
	return []emac.Arithmetic{
		emac.NewPosit(16, 1),
		emac.NewPosit(16, 2), // 2022-standard posit16
		emac.NewFloat(5, 10), // IEEE binary16 layout
		emac.NewFloat(8, 7),  // bfloat16 layout
	}
}

// Wide16 evaluates every 16-bit arm on every dataset (fixed point with
// its best q per dataset).
func Wide16(evalLimit int) ([]Wide16Row, *tabulate.Table) {
	var fixeds []emac.Arithmetic
	for q := uint(1); q < 16; q++ {
		fixeds = append(fixeds, emac.NewFixed(16, q))
	}
	var rows []Wide16Row
	tab := tabulate.New("16-bit formats (the related-work comparison of [22])",
		"Dataset", "format", "accuracy", "float32")
	for _, tr := range Datasets() {
		test := tr.Test.Head(evalLimit)
		add := func(a emac.Arithmetic, acc float64) {
			rows = append(rows, Wide16Row{Dataset: tr.Name, Arith: a, Accuracy: acc, Acc32: tr.Acc32})
			tab.AddStrings(tr.Name, a.Name(),
				fmt.Sprintf("%.2f%%", 100*acc),
				fmt.Sprintf("%.2f%%", 100*tr.Acc32))
		}
		for _, a := range Sixteen16Arms() {
			add(a, core.Quantize(tr.Net, a).Accuracy(test))
		}
		bestFixed := core.Best(tr.Net, test, fixeds)
		add(bestFixed.Arith, bestFixed.Accuracy)
	}
	return rows, tab
}

// ScalingRow is one hardware report in the width-scaling study.
type ScalingRow struct {
	Report hw.Report
}

// Scaling extends the paper's n in [5,8] hardware sweep to the widths a
// "full-scale DNN accelerator" (the paper's conclusion) would consider:
// n in {8, 12, 16, 24, 32}, representative parameterisations per family.
func Scaling(k int) ([]ScalingRow, *tabulate.Table) {
	var rows []ScalingRow
	tab := tabulate.New("Width scaling of the three EMACs (model estimates)",
		"format", "n", "accum bits", "LUTs", "fmax (MHz)", "EDP (J·s)")
	for _, n := range []uint{8, 12, 16, 24, 32} {
		reps := []hw.Report{
			hw.Virtex7.SynthFixed(fixedpoint.MustFormat(n, n/2), k),
			hw.Virtex7.SynthFloat(minifloat.MustFormat(5, n-6), k),
			hw.Virtex7.SynthPosit(posit.MustFormat(n, 2), k),
		}
		for _, r := range reps {
			rows = append(rows, ScalingRow{Report: r})
			tab.AddStrings(r.Name, fmt.Sprint(r.N), fmt.Sprint(r.AccumWidth),
				fmt.Sprintf("%.0f", r.LUTs),
				fmt.Sprintf("%.0f", r.FMaxMHz),
				fmt.Sprintf("%.3g", r.EDP))
		}
	}
	return rows, tab
}
