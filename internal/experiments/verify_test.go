package experiments

import "testing"

func TestVerifyAllClaimsPass(t *testing.T) {
	checks, tab := Verify(evalLimit)
	if len(checks) < 8 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("claim %s failed: %s (%s)", c.ID, c.Claim, c.Detail)
		}
	}
	t.Logf("\n%s", tab)
}
