package experiments

import (
	"math"
	"strings"
	"testing"
)

// evalLimit keeps the unit-test sweeps fast; the cmd/positron and bench
// harnesses run the full inference sizes.
const evalLimit = 250

func TestTrainedBaselines(t *testing.T) {
	for _, tr := range Datasets() {
		if tr.Acc32 < 0.8 {
			t.Errorf("%s: float32 baseline %.3f too low", tr.Name, tr.Acc32)
		}
		if math.Abs(tr.Acc32-tr.Acc64) > 0.03 {
			t.Errorf("%s: float32 %.3f far from float64 %.3f", tr.Name, tr.Acc32, tr.Acc64)
		}
	}
	// Per-dataset difficulty near the paper's Table II baselines
	// (90.1% / 98% / 96.8%).
	ds := Datasets()
	if ds[0].Acc32 < 0.80 || ds[0].Acc32 > 0.95 {
		t.Errorf("WBC baseline %.3f outside the paper's difficulty band", ds[0].Acc32)
	}
	if ds[1].Acc32 < 0.92 {
		t.Errorf("Iris baseline %.3f too low", ds[1].Acc32)
	}
	if ds[2].Acc32 < 0.94 || ds[2].Acc32 > 0.995 {
		t.Errorf("Mushroom baseline %.3f outside the paper's difficulty band", ds[2].Acc32)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, tab := Table1()
	want := map[string]int{"0001": -3, "001": -2, "01": -1, "10": 0, "110": 1, "1110": 2}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if want[r.Binary] != r.Regime {
			t.Errorf("regime(%s) = %d want %d", r.Binary, r.Regime, want[r.Binary])
		}
	}
	if !strings.Contains(tab.String(), "Regime") {
		t.Error("table rendering")
	}
}

func TestFig2Clustering(t *testing.T) {
	res, tab := Fig2()
	if res.PositInUnit < 0.5 {
		t.Errorf("posit(7,0) unit-range fraction %.3f", res.PositInUnit)
	}
	if res.WeightStats.FracInUnit < 0.5 {
		t.Errorf("trained weights unit-range fraction %.3f", res.WeightStats.FracInUnit)
	}
	// both histograms must put their mass in the central bins
	center := res.PositCounts[3] + res.PositCounts[4] + res.PositCounts[5]
	total := 0
	for _, c := range res.PositCounts {
		total += c
	}
	if float64(center)/float64(total) < 0.5 {
		t.Error("posit histogram not centred")
	}
	if tab.Len() == 0 {
		t.Error("empty table")
	}
}

func TestFig6Reproduction(t *testing.T) {
	reports, fig := Fig6(32)
	if len(reports) == 0 || len(fig.Series) != 3 {
		t.Fatal("missing series")
	}
	// fixed must be the fastest family at every n
	best := map[uint]float64{}
	for _, r := range reports {
		if r.Family == "fixed" {
			best[r.N] = r.FMaxMHz
		}
	}
	for _, r := range reports {
		if r.Family != "fixed" && r.FMaxMHz > best[r.N] {
			t.Errorf("%s beats fixed at n=%d", r.Name, r.N)
		}
	}
}

func TestFig7Reproduction(t *testing.T) {
	curves, fig := Fig7(32)
	if len(fig.Series) != 3 {
		t.Fatal("series")
	}
	for i := range curves["fixed"] {
		fx, fl, po := curves["fixed"][i], curves["float"][i], curves["posit"][i]
		if !(fx.EDP < fl.EDP && fx.EDP < po.EDP) {
			t.Errorf("n=%d: fixed EDP must win", fx.N)
		}
		if r := po.EDP / fl.EDP; r < 0.1 || r > 10 {
			t.Errorf("n=%d: posit/float EDP ratio %.2f", po.N, r)
		}
	}
}

func TestFig8Reproduction(t *testing.T) {
	curves, _ := Fig8(32)
	for i := range curves["fixed"] {
		fx, fl, po := curves["fixed"][i], curves["float"][i], curves["posit"][i]
		if !(po.LUTs > fl.LUTs && fl.LUTs > fx.LUTs) {
			t.Errorf("n=%d: LUT ordering posit>float>fixed violated", fx.N)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, tab := Table2(evalLimit)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if tab.Len() != 3 {
		t.Error("table rows")
	}
	const oneSample = 0.021 // one flipped prediction on the smallest split
	for _, r := range rows {
		// Paper's Table II ordering: posit >= float >= fixed (posit
		// "either outperforms or matches" the others on every dataset).
		if r.Posit.Accuracy < r.Float.Accuracy-oneSample {
			t.Errorf("%s: posit %.3f below float %.3f", r.Dataset, r.Posit.Accuracy, r.Float.Accuracy)
		}
		if r.Posit.Accuracy < r.Fixed.Accuracy-oneSample {
			t.Errorf("%s: posit %.3f below fixed %.3f", r.Dataset, r.Posit.Accuracy, r.Fixed.Accuracy)
		}
		// posit stays within a few percent of the 32-bit baseline
		if r.Float32-r.Posit.Accuracy > 0.05 {
			t.Errorf("%s: posit %.3f degrades more than 5%% from float32 %.3f",
				r.Dataset, r.Posit.Accuracy, r.Float32)
		}
	}
	// The WBC fixed-point collapse (paper: 57.8% vs 90.1%): at least 15
	// points below the float32 baseline.
	wbc := rows[0]
	if wbc.Float32-wbc.Fixed.Accuracy < 0.15 {
		t.Errorf("WBC fixed-point should collapse: fixed %.3f vs float32 %.3f",
			wbc.Fixed.Accuracy, wbc.Float32)
	}
	t.Logf("\n%s", tab)
}

func TestSweepDegradationBand(t *testing.T) {
	rows, _ := Sweep(evalLimit)
	if len(rows) != 3*4*3 {
		t.Fatalf("%d sweep rows", len(rows))
	}
	// Paper §IV-B: best sub-8-bit performance drops 0-4.21% vs 32-bit.
	// Check the posit family's best per dataset across n in [5,8)
	// stays within a loose version of that band (one-sample slack on
	// the small splits).
	bestSub8 := map[string]float64{}
	acc32 := map[string]float64{}
	for _, r := range rows {
		if r.Family != "posit" || r.N == 8 {
			continue
		}
		if r.Best.Accuracy > bestSub8[r.Dataset] {
			bestSub8[r.Dataset] = r.Best.Accuracy
		}
		acc32[r.Dataset] = r.Acc32
	}
	for ds, best := range bestSub8 {
		drop := acc32[ds] - best
		if drop > 0.08 {
			t.Errorf("%s: best sub-8-bit posit drops %.1f%% (>8%%)", ds, 100*drop)
		}
	}
}

func TestFig9Reproduction(t *testing.T) {
	pts, fig := Fig9(evalLimit)
	if len(fig.Series) != 3 {
		t.Fatal("series")
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// posit's 8-bit point must have degradation <= fixed's 8-bit point
	// (the paper's "posits achieve better performance at moderate cost").
	var posit8, fixed8, float8 *Fig9Point
	for i := range pts {
		p := &pts[i]
		if p.N != 8 {
			continue
		}
		switch p.Family {
		case "posit":
			posit8 = p
		case "fixed":
			fixed8 = p
		case "float":
			float8 = p
		}
	}
	if posit8 == nil || fixed8 == nil || float8 == nil {
		t.Fatal("missing 8-bit points")
	}
	if posit8.AvgDegradation > fixed8.AvgDegradation {
		t.Errorf("posit 8-bit degradation %.2f%% above fixed %.2f%%",
			posit8.AvgDegradation, fixed8.AvgDegradation)
	}
	if posit8.AvgDegradation > float8.AvgDegradation+0.7 {
		t.Errorf("posit 8-bit degradation %.2f%% well above float %.2f%%",
			posit8.AvgDegradation, float8.AvgDegradation)
	}
	// fixed sits at the lowest EDP
	if !(fixed8.EDP < posit8.EDP && fixed8.EDP < float8.EDP) {
		t.Error("fixed must have lowest EDP")
	}
}

func TestHardwareConfigsCoverage(t *testing.T) {
	rs := HardwareConfigs(8, 32)
	fams := map[string]int{}
	for _, r := range rs {
		fams[r.Family]++
	}
	if fams["posit"] != 3 || fams["float"] != 2 || fams["fixed"] != 1 {
		t.Errorf("config counts: %v", fams)
	}
	// n=5: posit es in {0,1,2}, float we=3 only
	rs = HardwareConfigs(5, 32)
	fams = map[string]int{}
	for _, r := range rs {
		fams[r.Family]++
	}
	if fams["float"] != 1 {
		t.Errorf("n=5 float configs: %d", fams["float"])
	}
}
