package experiments

import (
	"fmt"

	"repro/internal/tabulate"
)

// Check is one verified paper claim.
type Check struct {
	ID     string
	Claim  string
	Pass   bool
	Detail string
}

// Verify re-derives every headline claim of the paper from scratch and
// reports pass/fail — the artifact-evaluation entry point
// (`cmd/positron verify`). evalLimit truncates inference sets (0 = full).
func Verify(evalLimit int) ([]Check, *tabulate.Table) {
	var checks []Check
	add := func(id, claim string, pass bool, detail string, args ...interface{}) {
		checks = append(checks, Check{
			ID: id, Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...),
		})
	}

	// Table I.
	rows1, _ := Table1()
	want1 := map[string]int{"0001": -3, "001": -2, "01": -1, "10": 0, "110": 1, "1110": 2}
	ok1 := len(rows1) == 6
	for _, r := range rows1 {
		ok1 = ok1 && want1[r.Binary] == r.Regime
	}
	add("table1", "regime run-length decoding matches Table I", ok1, "%d/6 rows", len(rows1))

	// Fig. 2.
	f2, _ := Fig2()
	add("fig2", "posit(7,0) values and trained weights cluster in [-1,1]",
		f2.PositInUnit >= 0.5 && f2.WeightStats.FracInUnit >= 0.5,
		"posit %.1f%%, weights %.1f%%", 100*f2.PositInUnit, 100*f2.WeightStats.FracInUnit)

	// Fig. 6: fixed fastest; posit on/above the float curve.
	reports, _ := Fig6(32)
	fixedFastest := true
	bestFixed := map[uint]float64{}
	for _, r := range reports {
		if r.Family == "fixed" {
			bestFixed[r.N] = r.FMaxMHz
		}
	}
	for _, r := range reports {
		if r.Family != "fixed" && r.FMaxMHz > bestFixed[r.N] {
			fixedFastest = false
		}
	}
	add("fig6", "fixed EMAC achieves the lowest datapath latency", fixedFastest, "")

	// Fig. 7: fixed lowest EDP; float/posit within a decade.
	c7, _ := Fig7(32)
	ok7 := true
	for i := range c7["fixed"] {
		fx, fl, po := c7["fixed"][i], c7["float"][i], c7["posit"][i]
		if !(fx.EDP < fl.EDP && fx.EDP < po.EDP) {
			ok7 = false
		}
		if r := po.EDP / fl.EDP; r < 0.1 || r > 10 {
			ok7 = false
		}
	}
	add("fig7", "fixed EDP lowest at every n; posit≈float", ok7, "")

	// Fig. 8: LUT ordering.
	c8, _ := Fig8(32)
	ok8 := true
	for i := range c8["fixed"] {
		if !(c8["posit"][i].LUTs > c8["float"][i].LUTs && c8["float"][i].LUTs > c8["fixed"][i].LUTs) {
			ok8 = false
		}
	}
	add("fig8", "LUT utilisation: posit > float > fixed", ok8, "")

	// Table II.
	rows2, _ := Table2(evalLimit)
	const oneSample = 0.021
	okPF, okFx, okBase := true, true, true
	var wbcCollapse bool
	for _, r := range rows2 {
		if r.Posit.Accuracy < r.Float.Accuracy-oneSample {
			okPF = false
		}
		if r.Posit.Accuracy < r.Fixed.Accuracy-oneSample {
			okFx = false
		}
		if r.Float32-r.Posit.Accuracy > 0.05 {
			okBase = false
		}
		if r.Dataset == "WisconsinBreastCancer" && r.Float32-r.Fixed.Accuracy >= 0.15 {
			wbcCollapse = true
		}
	}
	add("table2-posit", "8-bit posit matches or beats 8-bit float and fixed", okPF && okFx, "")
	add("table2-base", "8-bit posit within a few percent of 32-bit float", okBase, "")
	add("table2-fixed", "WBC fixed-point collapse (>=15 points below baseline)", wbcCollapse, "")

	// Fig. 9: posit best degradation at 8 bits, fixed lowest EDP.
	pts, _ := Fig9(evalLimit)
	var p8, f8, x8 *Fig9Point
	for i := range pts {
		p := &pts[i]
		if p.N != 8 {
			continue
		}
		switch p.Family {
		case "posit":
			p8 = p
		case "float":
			f8 = p
		case "fixed":
			x8 = p
		}
	}
	ok9 := p8 != nil && f8 != nil && x8 != nil &&
		p8.AvgDegradation <= x8.AvgDegradation &&
		p8.AvgDegradation <= f8.AvgDegradation+0.7 &&
		x8.EDP < p8.EDP && x8.EDP < f8.EDP
	detail9 := ""
	if p8 != nil && f8 != nil && x8 != nil {
		detail9 = fmt.Sprintf("degradation posit %.2f%% float %.2f%% fixed %.2f%%",
			p8.AvgDegradation, f8.AvgDegradation, x8.AvgDegradation)
	}
	add("fig9", "posit has the best accuracy/EDP trade-off at 8 bits", ok9, "%s", detail9)

	tab := tabulate.New("Paper-claim verification", "id", "status", "claim", "detail")
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		tab.AddStrings(c.ID, status, c.Claim, c.Detail)
	}
	return checks, tab
}
