package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/posit"
	"repro/internal/tabulate"
)

// QuireAblationRow records accuracy with a shortened quire.
type QuireAblationRow struct {
	Dataset    string
	Arith      emac.PositArith
	Drop       uint // fraction bits removed
	QuireWidth uint // remaining register width (k = max fanin)
	Accuracy   float64
}

// QuireAblation sweeps truncated-quire depths for posit(8,1) on every
// dataset: the design-space study DESIGN.md §5 calls out. The eq.-(4)
// register guarantees exactness but costs area; dropping low fraction
// bits shrinks the accumulator, shifter and LZD — the question is how
// much accuracy each dropped bit costs on real workloads.
func QuireAblation(evalLimit int) ([]QuireAblationRow, *tabulate.Table) {
	const n, es = 8, 1
	fracDepth := (uint(1) << (es + 1)) * (n - 2) // 48 fraction bits
	drops := []uint{0, fracDepth / 4, fracDepth / 2, 3 * fracDepth / 4, fracDepth - 4}

	var rows []QuireAblationRow
	tab := tabulate.New("Truncated-quire ablation, posit(8,1)",
		"Dataset", "dropped frac bits", "register width", "accuracy")
	for _, tr := range Datasets() {
		test := tr.Test.Head(evalLimit)
		maxFanin := 0
		for _, l := range tr.Net.Layers {
			if l.In > maxFanin {
				maxFanin = l.In
			}
		}
		for _, drop := range drops {
			a := emac.NewPosit(n, es)
			a.QuireDrop = drop
			q := core.Quantize(tr.Net, a)
			acc := q.Accuracy(test)
			width := posit.QuireSize(posit.MustFormat(n, es), maxFanin) - drop
			rows = append(rows, QuireAblationRow{
				Dataset: tr.Name, Arith: a, Drop: drop, QuireWidth: width, Accuracy: acc,
			})
			tab.AddStrings(tr.Name, fmt.Sprint(drop), fmt.Sprint(width),
				fmt.Sprintf("%.2f%%", 100*acc))
		}
	}
	return rows, tab
}
