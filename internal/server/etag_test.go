package server

// Conditional-GET tests: /v1/models and /v1/models/{name} carry the
// artifact content hash as an ETag, and If-None-Match short-circuits to
// 304 — the cheap membership-sync poll replicas ride on.

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/registry"
)

// condGet issues a GET with an optional If-None-Match header.
func condGet(t *testing.T, url, inm string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestModelStatETag(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	var stat registry.ModelStat
	resp := getJSON(t, ts.URL+"/v1/models/iris", &stat)
	if stat.ContentHash == "" {
		t.Fatal("stat has no content hash")
	}
	etag := resp.Header.Get("ETag")
	if want := `"` + stat.ContentHash + `"`; etag != want {
		t.Fatalf("ETag = %s, want %s", etag, want)
	}

	// Matching If-None-Match: 304 with no body, ETag still present.
	resp = condGet(t, ts.URL+"/v1/models/iris", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match = %d, want 304", resp.StatusCode)
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatal("304 dropped the ETag header")
	}
	// Weak form and star also match; a stale tag does not.
	if resp := condGet(t, ts.URL+"/v1/models/iris", "W/"+etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak If-None-Match = %d, want 304", resp.StatusCode)
	}
	if resp := condGet(t, ts.URL+"/v1/models/iris", "*"); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match: * = %d, want 304", resp.StatusCode)
	}
	if resp := condGet(t, ts.URL+"/v1/models/iris", `"deadbeef"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match = %d, want 200", resp.StatusCode)
	}
}

// TestModelListETagTracksMembership: the list ETag is stable across
// unchanged polls and rolls on any load/unload.
func TestModelListETagTracksMembership(t *testing.T) {
	s, ts, m, _ := newTestServer(t)
	first := condGet(t, ts.URL+"/v1/models", "")
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("list has no ETag")
	}
	if resp := condGet(t, ts.URL+"/v1/models", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("unchanged list poll = %d, want 304", resp.StatusCode)
	}

	// Loading a second model (same artifact, new name) changes the set.
	if err := s.Registry().Load("iris2", m); err != nil {
		t.Fatal(err)
	}
	resp := condGet(t, ts.URL+"/v1/models", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll after load = %d, want 200", resp.StatusCode)
	}
	etag2 := resp.Header.Get("ETag")
	if etag2 == etag {
		t.Fatal("list ETag unchanged after membership change")
	}
	// And unloading rolls it again.
	if err := s.Registry().Unload("iris2"); err != nil {
		t.Fatal(err)
	}
	if resp := condGet(t, ts.URL+"/v1/models", etag2); resp.StatusCode != http.StatusOK {
		t.Fatalf("poll after unload = %d, want 200", resp.StatusCode)
	}
	if resp := condGet(t, ts.URL+"/v1/models", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("restored membership should match the original tag, got %d", resp.StatusCode)
	}
}

// TestLoadResponseETagAndDedupMetrics: POST /v1/models answers with the
// new model's ETag, and /v1/metrics exposes store-level dedup when the
// same artifact is loaded under two names.
func TestLoadResponseETagAndDedupMetrics(t *testing.T) {
	s, ts, m, _ := newTestServer(t)
	raw, err := json.Marshal(m.(json.Marshaler))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]json.RawMessage{
		"name":     json.RawMessage(`"copy"`),
		"artifact": raw,
	})
	resp, out := postJSON(t, ts.URL+"/v1/models", string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load = %d (%s)", resp.StatusCode, out)
	}
	var stat registry.ModelStat
	if err := json.Unmarshal(out, &stat); err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Header.Get("ETag"), `"`+stat.ContentHash+`"`; got != want {
		t.Fatalf("load ETag = %s, want %s", got, want)
	}
	orig, _ := s.Registry().Stat("iris")
	if stat.ContentHash != orig.ContentHash {
		t.Fatal("re-uploaded artifact changed identity")
	}

	var metrics struct {
		Store struct {
			Objects   int64 `json:"objects"`
			PutDedups int64 `json:"put_dedups"`
		} `json:"store"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if metrics.Store.Objects != 1 {
		t.Fatalf("store objects = %d, want 1 (dedup)", metrics.Store.Objects)
	}
	if metrics.Store.PutDedups != 1 {
		t.Fatalf("store put_dedups = %d, want 1", metrics.Store.PutDedups)
	}
}
