package server

// Coverage for the artifact plane: raw hash-addressed artifact serving,
// load-by-hash, the GC admin endpoint, and the full peer-fetch loop —
// a second server with an empty store loading a model it never saw by
// pulling bytes from the first.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/registry"
)

// inferBody builds a single-sample infer request from the test split.
func inferBody(t *testing.T, test *datasets.Dataset) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"input": test.X[0]})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

// irisHash fetches the loaded iris model's content hash over HTTP.
func irisHash(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var stat struct {
		ContentHash string `json:"content_hash"`
	}
	if resp := getJSON(t, ts.URL+"/v1/models/iris", &stat); resp.StatusCode != http.StatusOK {
		t.Fatalf("stat iris: %d", resp.StatusCode)
	}
	if stat.ContentHash == "" {
		t.Fatal("iris has no content hash")
	}
	return stat.ContentHash
}

func TestArtifactEndpoint(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	hash := irisHash(t, ts)

	resp, err := http.Get(ts.URL + "/v1/artifacts/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: %d, %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	if etag := resp.Header.Get("ETag"); etag != `"`+hash+`"` {
		t.Fatalf("ETag %q", etag)
	}
	// The body is the canonical artifact: it re-hashes to its address.
	if artifact.Sum(data).String() != hash {
		t.Fatal("served bytes do not hash to the requested address")
	}

	// Revalidation: a peer already holding the hash pays no body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/artifacts/"+hash, nil)
	req.Header.Set("If-None-Match", `"`+hash+`"`)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match on own hash: %d, want 304", resp2.StatusCode)
	}

	// A well-formed but absent hash is 404, a malformed one 400.
	absent := artifact.Sum([]byte("no such artifact")).String()
	if resp, _ := http.Get(ts.URL + "/v1/artifacts/" + absent); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent artifact: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/artifacts/zzzz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed hash: %d", resp.StatusCode)
	}
}

func TestLoadByHash(t *testing.T) {
	_, ts, _, test := newTestServer(t)
	hash := irisHash(t, ts)

	resp, body := postJSON(t, ts.URL+"/v1/models", fmt.Sprintf(`{"name":"twin","hash":"%s"}`, hash))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load by hash: %d %s", resp.StatusCode, body)
	}
	// The twin serves the same logits as the origin name.
	in := inferBody(t, test)
	var a, b struct {
		Result struct {
			Logits []float64 `json:"logits"`
		} `json:"result"`
	}
	respA, bodyA := postJSON(t, ts.URL+"/v1/models/iris/infer", in)
	respB, bodyB := postJSON(t, ts.URL+"/v1/models/twin/infer", in)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d / %d", respA.StatusCode, respB.StatusCode)
	}
	mustUnmarshal(t, bodyA, &a)
	mustUnmarshal(t, bodyB, &b)
	if !reflect.DeepEqual(a.Result.Logits, b.Result.Logits) {
		t.Fatalf("hash-loaded twin diverges: %v vs %v", a.Result.Logits, b.Result.Logits)
	}

	// Errors: unknown hash 404, malformed hash 400, ambiguous source 400.
	absent := artifact.Sum([]byte("never stored")).String()
	if resp, _ := postJSON(t, ts.URL+"/v1/models", fmt.Sprintf(`{"name":"x","hash":"%s"}`, absent)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/models", `{"name":"x","hash":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed hash: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/models", fmt.Sprintf(`{"name":"x","path":"p","hash":"%s"}`, hash)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("two sources: %d", resp.StatusCode)
	}
}

func TestStoreGCEndpoint(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	hash := irisHash(t, ts)

	// Loaded → pinned: a sweep removes nothing.
	var gc struct {
		Removed    int   `json:"removed"`
		FreedBytes int64 `json:"freed_bytes"`
	}
	resp, body := postJSON(t, ts.URL+"/v1/store/gc", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gc: %d %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &gc)
	if gc.Removed != 0 {
		t.Fatalf("gc swept %d blobs under a loaded model", gc.Removed)
	}

	// Unload, sweep again: the blob goes and the bytes are accounted.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/iris", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unload: %v %v", resp.StatusCode, err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/store/gc", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gc: %d %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &gc)
	if gc.Removed != 1 || gc.FreedBytes <= 0 {
		t.Fatalf("gc after unload: %+v", gc)
	}
	if resp, _ := http.Get(ts.URL + "/v1/artifacts/" + hash); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("blob survived gc: %d", resp.StatusCode)
	}
}

// TestPeerFetchBitIdentity is the chaos-proof in miniature: replica B
// starts with an empty store and no models, loads the iris model purely
// by hash through its peer tier, and serves logits byte-identical to
// replica A's.
func TestPeerFetchBitIdentity(t *testing.T) {
	_, tsA, _, test := newTestServer(t)
	hash := irisHash(t, tsA)

	// Replica B: empty local store over a Remote tier pointing at A.
	local := store.NewUnion(store.NewMem(), store.NewMem())
	remote := store.NewRemote([]string{tsA.URL})
	regB := registry.New(
		registry.WithRuntimeOptions(engine.WithWorkers(2)),
		registry.WithStore(store.NewUnion(local, remote)),
	)
	sB := New(regB, "")
	tsB := httptest.NewServer(sB)
	t.Cleanup(func() {
		tsB.Close()
		sB.Close()
	})

	resp, body := postJSON(t, tsB.URL+"/v1/models", fmt.Sprintf(`{"name":"iris","hash":"%s"}`, hash))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("peer load by hash: %d %s", resp.StatusCode, body)
	}

	// Bit-identical logits from both replicas.
	in := inferBody(t, test)
	var a, b struct {
		Result struct {
			Logits []float64 `json:"logits"`
		} `json:"result"`
	}
	respA, bodyA := postJSON(t, tsA.URL+"/v1/models/iris/infer", in)
	respB, bodyB := postJSON(t, tsB.URL+"/v1/models/iris/infer", in)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d / %d", respA.StatusCode, respB.StatusCode)
	}
	mustUnmarshal(t, bodyA, &a)
	mustUnmarshal(t, bodyB, &b)
	if !reflect.DeepEqual(a.Result.Logits, b.Result.Logits) {
		t.Fatalf("replicas diverge: %v vs %v", a.Result.Logits, b.Result.Logits)
	}

	// The fetched bytes persisted into B's local tiers, and B's own
	// artifact endpoint now serves them (from local tiers only — no
	// recursion back to A).
	respArt, err := http.Get(tsB.URL + "/v1/artifacts/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(respArt.Body)
	respArt.Body.Close()
	if respArt.StatusCode != http.StatusOK || artifact.Sum(data).String() != hash {
		t.Fatalf("B cannot serve the fetched artifact: %d", respArt.StatusCode)
	}

	// The peer fetch is observable: B's metrics nest the remote tier's
	// hit under store.slow.
	var metrics struct {
		Store store.Stats `json:"store"`
	}
	if resp := getJSON(t, tsB.URL+"/v1/metrics", &metrics); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if metrics.Store.Slow == nil || metrics.Store.Slow.Hits != 1 {
		t.Fatalf("remote tier hit not observable: %+v", metrics.Store.Slow)
	}
}
