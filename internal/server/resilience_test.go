package server

// Probe + panic-isolation coverage: /healthz drain semantics, /readyz
// readiness states, and the ServeHTTP recovery middleware. CI runs this
// under -race.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/registry"
)

func TestReadyzReady(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	var body struct {
		Status string `json:"status"`
		Models []struct {
			Name     string `json:"name"`
			QueueLen int    `json:"queue_len"`
			QueueCap int    `json:"queue_cap"`
		} `json:"models"`
	}
	resp := getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	if body.Status != "ready" {
		t.Fatalf("status = %q, want ready", body.Status)
	}
	if len(body.Models) != 1 || body.Models[0].Name != "iris" || body.Models[0].QueueCap <= 0 {
		t.Fatalf("readyz occupancy body wrong: %+v", body.Models)
	}
}

func TestReadyzNoModels(t *testing.T) {
	reg := registry.New()
	s := New(reg, "")
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	var body struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty registry readyz = %d, want 503", resp.StatusCode)
	}
	if body.Status != "no models loaded" {
		t.Fatalf("status = %q", body.Status)
	}
	// Liveness is independent of readiness: healthz stays 200.
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

func TestReadyzClosedRegistry(t *testing.T) {
	reg := registry.New()
	s := New(reg, "")
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close() })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed registry readyz = %d, want 503", resp.StatusCode)
	}
	if body.Status != "registry closed" {
		t.Fatalf("status = %q", body.Status)
	}
}

// TestHealthzDrain: BeginShutdown flips the liveness probe to 503 —
// the drain signal upstream routers read — while already-admitted
// requests keep being served.
func TestHealthzDrain(t *testing.T) {
	s, ts, _, test := newTestServer(t)

	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz = %d, want 200", resp.StatusCode)
	}
	s.BeginShutdown()
	var body struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	if body.Status != "draining" {
		t.Fatalf("status = %q, want draining", body.Status)
	}
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	// Draining rejects nothing by itself: inference still works until the
	// listener stops accepting.
	body2, _ := json.Marshal(map[string]any{"input": test.X[0]})
	resp, raw := postJSON(t, ts.URL+"/v1/infer", string(body2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer while draining = %d (%s), want 200", resp.StatusCode, raw)
	}
	// The metrics endpoint reports the drain.
	var metrics struct {
		Server struct {
			Draining bool `json:"draining"`
		} `json:"server"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if !metrics.Server.Draining {
		t.Fatal("metrics server.draining = false after BeginShutdown")
	}
}

// flakyStatModel panics on its first String() call — simulating a
// handler-path panic — then behaves. It never serves inference in this
// test.
type flakyStatModel struct{ bombs *int }

type flakyInferer struct{}

func (m flakyStatModel) NewInferer() core.Inferer           { return flakyInferer{} }
func (flakyStatModel) Kind() string                         { return "test" }
func (flakyStatModel) InputDim() int                        { return 1 }
func (flakyStatModel) OutputDim() int                       { return 1 }
func (flakyStatModel) NumLayers() int                       { return 1 }
func (flakyStatModel) Ariths() []emac.Arithmetic            { return nil }
func (flakyStatModel) ArithNames() []string                 { return []string{"test"} }
func (flakyStatModel) Standardizer() *datasets.Standardizer { return nil }
func (flakyStatModel) MemoryBits() int                      { return 0 }
func (flakyStatModel) Save(string) error                    { return errors.New("no") }
func (m flakyStatModel) String() string {
	if *m.bombs > 0 {
		*m.bombs--
		panic("stat bomb")
	}
	return "flaky"
}

func (flakyInferer) Infer(x []float64) []float64          { return []float64{0} }
func (flakyInferer) InferInto(dst, x []float64) []float64 { dst[0] = 0; return dst }
func (flakyInferer) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	for i := range xs {
		dst[i] = 0
	}
	return dst
}
func (flakyInferer) Predict([]float64) int              { return 0 }
func (flakyInferer) Accuracy(*datasets.Dataset) float64 { return 0 }

// TestHandlerPanicRecovered: a panic inside a handler becomes a 500 JSON
// error and a panics tick — the daemon keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	bombs := 1
	reg := registry.New()
	if err := reg.Load("flaky", flakyStatModel{bombs: &bombs}); err != nil {
		t.Fatal(err)
	}
	s := New(reg, "flaky")
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	var errBody struct {
		Error string `json:"error"`
	}
	resp := getJSON(t, ts.URL+"/v1/models", &errBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if errBody.Error == "" {
		t.Fatal("500 without JSON error envelope")
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("server panics = %d, want 1", got)
	}
	// The bomb is spent: the daemon survived and the route works again,
	// and /v1/metrics reports the recovered panic.
	var metrics struct {
		Server struct {
			Panics int64 `json:"panics"`
		} `json:"server"`
	}
	if resp := getJSON(t, ts.URL+"/v1/metrics", &metrics); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics after panic = %d, want 200", resp.StatusCode)
	}
	if metrics.Server.Panics != 1 {
		t.Fatalf("metrics server.panics = %d, want 1", metrics.Server.Panics)
	}
}

// TestInferencePanicIs500NotCrash: a poisoned input panicking inside the
// engine worker surfaces as a 500 on its own request; the daemon, the
// worker and subsequent requests survive, and the per-model panics
// counter ticks.
func TestInferencePanicIs500NotCrash(t *testing.T) {
	reg := registry.New(registry.WithBatchWindow(0)) // direct path: no coalescing
	if err := reg.Load("boom", poisonModel{}); err != nil {
		t.Fatal(err)
	}
	s := New(reg, "boom")
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	resp, raw := postJSON(t, ts.URL+"/v1/infer", `{"input":[-1]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned infer = %d (%s), want 500", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/infer", `{"input":[1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean infer after panic = %d (%s), want 200", resp.StatusCode, raw)
	}
	var metrics struct {
		Models []struct {
			Name   string `json:"name"`
			Panics int64  `json:"panics"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if len(metrics.Models) != 1 || metrics.Models[0].Panics != 1 {
		t.Fatalf("per-model panics counter wrong: %+v", metrics.Models)
	}
}

// poisonModel panics for negative inputs, echoes otherwise.
type poisonModel struct{}

type poisonInferer struct{}

func (poisonModel) NewInferer() core.Inferer             { return poisonInferer{} }
func (poisonModel) Kind() string                         { return "test" }
func (poisonModel) InputDim() int                        { return 1 }
func (poisonModel) OutputDim() int                       { return 1 }
func (poisonModel) NumLayers() int                       { return 1 }
func (poisonModel) Ariths() []emac.Arithmetic            { return nil }
func (poisonModel) ArithNames() []string                 { return []string{"test"} }
func (poisonModel) Standardizer() *datasets.Standardizer { return nil }
func (poisonModel) MemoryBits() int                      { return 0 }
func (poisonModel) Save(string) error                    { return errors.New("no") }
func (poisonModel) String() string                       { return "poison" }

func (poisonInferer) Infer(x []float64) []float64 {
	if x[0] < 0 {
		panic("poisoned input")
	}
	return []float64{x[0]}
}
func (poisonInferer) InferInto(dst, x []float64) []float64 {
	copy(dst, poisonInferer{}.Infer(x))
	return dst
}
func (poisonInferer) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	for i, x := range xs {
		poisonInferer{}.InferInto(dst[i:i+1], x)
	}
	return dst
}
func (poisonInferer) Predict([]float64) int              { return 0 }
func (poisonInferer) Accuracy(*datasets.Dataset) float64 { return 0 }
