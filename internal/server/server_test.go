package server

// End-to-end handler coverage over saved artifacts: the HTTP plane must
// return exactly what a core session computes — including through the
// micro-batcher — manage model lifecycle over HTTP, and reject bad
// requests with JSON 400s.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/registry"
	"repro/internal/rng"
)

// irisModel trains a small Iris MLP, quantises it to posit(8,0) with the
// training standardizer folded into the artifact, saves and reloads it —
// the exact deployment path a daemon operator follows.
func irisModel(t *testing.T) (core.Model, *datasets.Dataset) {
	t.Helper()
	train, test := datasets.IrisSplit(0x1715)
	std := datasets.FitStandardizer(train)
	net := nn.NewMLP([]int{4, 10, 6, 3}, rng.New(7))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 40
	nn.Train(net, std.Apply(train), cfg)
	q := core.Quantize(net, emac.NewPosit(8, 0))
	q.Stand = std

	path := filepath.Join(t.TempDir(), "iris.json")
	if err := q.Save(path); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	return m, test
}

// mixedModel quantises a three-arm mixed-precision network.
func mixedModel(t *testing.T) core.Model {
	t.Helper()
	src := nn.NewMLP([]int{4, 8, 6, 3}, rng.New(9))
	mixed := core.QuantizeMixed(src, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	})
	path := filepath.Join(t.TempDir(), "mixed.json")
	if err := mixed.Save(path); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTestServer starts a registry-backed server with the Iris model
// loaded as "iris" (the default model, so the PR 3 alias routes work).
// Path loads are scoped to modelDir (t.TempDir() when the test does not
// need them).
func newTestServerDir(t *testing.T, modelDir string, opts ...registry.Option) (*Server, *httptest.Server, core.Model, *datasets.Dataset) {
	t.Helper()
	m, test := irisModel(t)
	opts = append([]registry.Option{
		registry.WithRuntimeOptions(engine.WithWorkers(4)),
	}, opts...)
	reg := registry.New(opts...)
	if err := reg.Load("iris", m); err != nil {
		t.Fatal(err)
	}
	s := New(reg, "iris", WithModelDir(modelDir))
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, m, test
}

func newTestServer(t *testing.T, opts ...registry.Option) (*Server, *httptest.Server, core.Model, *datasets.Dataset) {
	t.Helper()
	return newTestServerDir(t, t.TempDir(), opts...)
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	var body struct {
		Status string `json:"status"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, body)
	}
}

func TestModelMetadataAlias(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	var info struct {
		Name         string   `json:"name"`
		Kind         string   `json:"kind"`
		InputDim     int      `json:"input_dim"`
		OutputDim    int      `json:"output_dim"`
		Layers       int      `json:"layers"`
		Arithmetics  []string `json:"arithmetics"`
		Standardized bool     `json:"standardized"`
	}
	resp := getJSON(t, ts.URL+"/v1/model", &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/model = %d", resp.StatusCode)
	}
	if info.Name != "iris" || info.Kind != "uniform" || info.InputDim != 4 ||
		info.OutputDim != 3 || info.Layers != 3 || !info.Standardized {
		t.Fatalf("metadata: %+v", info)
	}
	for _, a := range info.Arithmetics {
		if a != "posit(8,0)" {
			t.Fatalf("arithmetics: %v", info.Arithmetics)
		}
	}
}

// TestBatchInferMatchesSession is the core exactness contract: logits
// served over HTTP are bit-identical to core.Session.Infer on the same
// loaded model — through the PR 3 alias route.
func TestBatchInferMatchesSession(t *testing.T) {
	_, ts, m, test := newTestServer(t)

	body, err := json.Marshal(map[string]any{"inputs": test.X})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/infer", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch infer = %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Results []struct {
			Logits []float64 `json:"logits"`
			Class  int       `json:"class"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(test.X) {
		t.Fatalf("%d results for %d inputs", len(out.Results), len(test.X))
	}
	s := m.NewInferer()
	for i, x := range test.X {
		want := s.Infer(x)
		got := out.Results[i].Logits
		if len(got) != len(want) {
			t.Fatalf("sample %d: %d logits", i, len(got))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sample %d logit %d: HTTP %v != session %v", i, j, got[j], want[j])
			}
		}
		if out.Results[i].Class != nn.Argmax(want) {
			t.Fatalf("sample %d class %d", i, out.Results[i].Class)
		}
	}
}

// TestCoalescedInferBitIdentity is the micro-batching exactness
// contract: concurrent single-sample HTTP requests — which the daemon
// coalesces into shared runtime batches — return logits bit-identical to
// unbatched session inference.
func TestCoalescedInferBitIdentity(t *testing.T) {
	_, ts, m, test := newTestServer(t,
		registry.WithBatchWindow(50*time.Millisecond),
		registry.WithMaxBatch(8),
	)
	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([][]float64, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"input": test.X[i%len(test.X)]})
			resp, err := http.Post(ts.URL+"/v1/models/iris/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Result struct {
					Logits []float64 `json:"logits"`
				} `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			got[i] = out.Result.Logits
		}(i)
	}
	wg.Wait()
	// Verify serially with one session (an Inferer serves one goroutine).
	s := m.NewInferer()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want := s.Infer(test.X[i%len(test.X)])
		if err := compareLogits(got[i], want); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// The burst must actually have been coalesced, or this test proved
	// nothing: check the per-model metrics.
	stat, err := getServer(t, ts).Registry().Stat("iris")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Metrics.MaxCoalesced <= 1 {
		t.Fatalf("burst was not coalesced: %+v", stat.Metrics)
	}
}

func compareLogits(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d logits, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			return fmt.Errorf("logit %d: batched %v != unbatched %v", j, got[j], want[j])
		}
	}
	return nil
}

// TestMultiModelServing: two models (posit8 uniform + mixed) served side
// by side, each through its named route, then one unloaded while the
// other keeps serving.
func TestMultiModelServing(t *testing.T) {
	_, ts, _, test := newTestServer(t)
	mixed := mixedModel(t)
	if err := getServer(t, ts).Registry().Load("mixed", mixed); err != nil {
		t.Fatal(err)
	}

	var list struct {
		Models []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"models"`
	}
	resp := getJSON(t, ts.URL+"/v1/models", &list)
	if resp.StatusCode != http.StatusOK || len(list.Models) != 2 {
		t.Fatalf("/v1/models = %d %+v", resp.StatusCode, list)
	}
	if list.Models[0].Name != "iris" || list.Models[1].Name != "mixed" ||
		list.Models[1].Kind != "mixed" {
		t.Fatalf("model list: %+v", list.Models)
	}

	// Infer against the named mixed model; must match its own session.
	x := []float64{0.5, -1, 2, 0.25}
	body, _ := json.Marshal(map[string]any{"input": x})
	resp2, raw := postJSON(t, ts.URL+"/v1/models/mixed/infer", string(body))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mixed infer = %d: %s", resp2.StatusCode, raw)
	}
	var out struct {
		Result struct {
			Logits []float64 `json:"logits"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if err := compareLogits(out.Result.Logits, mixed.NewInferer().Infer(x)); err != nil {
		t.Fatal(err)
	}

	// Unload the mixed model over HTTP; iris keeps serving.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/mixed", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("DELETE mixed = %d", resp3.StatusCode)
	}
	resp4, raw := postJSON(t, ts.URL+"/v1/models/mixed/infer", string(body))
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("infer on unloaded model = %d: %s", resp4.StatusCode, raw)
	}
	irisBody, _ := json.Marshal(map[string]any{"input": test.X[0]})
	resp5, raw := postJSON(t, ts.URL+"/v1/infer", string(irisBody))
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("iris after mixed unload = %d: %s", resp5.StatusCode, raw)
	}
}

// getServer digs the *Server out of the test fixture (the handler behind
// the httptest server).
func getServer(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	s, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatal("handler is not a *Server")
	}
	return s
}

// TestLoadModelOverHTTP exercises both load arms: a filesystem path
// (scoped to the model directory) and an inline uploaded artifact.
func TestLoadModelOverHTTP(t *testing.T) {
	modelDir := t.TempDir()
	_, ts, _, test := newTestServerDir(t, modelDir)

	// Path arm: save a second artifact into the model dir and load it.
	mixed := mixedModel(t)
	path := filepath.Join(modelDir, "second.json")
	if err := mixed.Save(path); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]string{"name": "bypath", "path": path})
	resp, raw := postJSON(t, ts.URL+"/v1/models", string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load by path = %d: %s", resp.StatusCode, raw)
	}
	var stat struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &stat); err != nil || stat.Name != "bypath" || stat.Kind != "mixed" {
		t.Fatalf("load response: %s (%v)", raw, err)
	}

	// Artifact arm: upload the raw JSON inline.
	artifact, err := json.Marshal(mixed)
	if err != nil {
		t.Fatal(err)
	}
	upBody, _ := json.Marshal(map[string]json.RawMessage{
		"name":     json.RawMessage(`"uploaded"`),
		"artifact": artifact,
	})
	resp2, raw2 := postJSON(t, ts.URL+"/v1/models", string(upBody))
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("upload = %d: %s", resp2.StatusCode, raw2)
	}

	// Both serve, and identically (same underlying parameters).
	x := test.X[0]
	inferBody, _ := json.Marshal(map[string]any{"input": x})
	_, rawA := postJSON(t, ts.URL+"/v1/models/bypath/infer", string(inferBody))
	_, rawB := postJSON(t, ts.URL+"/v1/models/uploaded/infer", string(inferBody))
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("path-loaded and uploaded models disagree: %s vs %s", rawA, rawB)
	}

	// Duplicate name -> 409; bad bodies -> 400.
	resp3, _ := postJSON(t, ts.URL+"/v1/models", string(body))
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate load = %d, want 409", resp3.StatusCode)
	}
	resp4, _ := postJSON(t, ts.URL+"/v1/models", `{"name":"x"}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("load with neither path nor artifact = %d, want 400", resp4.StatusCode)
	}
	missing, _ := json.Marshal(map[string]string{
		"name": "x", "path": filepath.Join(modelDir, "nonexistent.json")})
	resp5, _ := postJSON(t, ts.URL+"/v1/models", string(missing))
	if resp5.StatusCode != http.StatusBadRequest {
		t.Fatalf("load of missing file = %d, want 400", resp5.StatusCode)
	}
	// Paths outside the model directory are rejected, not probed: the
	// load endpoint must not be a filesystem oracle.
	for _, p := range []string{"/etc/passwd", "../../etc/passwd",
		filepath.Join(modelDir, "..", "escape.json")} {
		outside, _ := json.Marshal(map[string]string{"name": "evil", "path": p})
		resp6, raw6 := postJSON(t, ts.URL+"/v1/models", string(outside))
		if resp6.StatusCode != http.StatusForbidden {
			t.Fatalf("load of %q = %d, want 403 (%s)", p, resp6.StatusCode, raw6)
		}
	}
}

// TestPathLoadsDisabledWithoutModelDir: a server built without a model
// directory only accepts inline uploads.
func TestPathLoadsDisabledWithoutModelDir(t *testing.T) {
	m, _ := irisModel(t)
	reg := registry.New(registry.WithRuntimeOptions(engine.WithWorkers(1)))
	if err := reg.Load("iris", m); err != nil {
		t.Fatal(err)
	}
	s := New(reg, "iris")
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	body, _ := json.Marshal(map[string]string{"name": "x", "path": "/tmp/whatever.json"})
	resp, _ := postJSON(t, ts.URL+"/v1/models", string(body))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("path load without model dir = %d, want 403", resp.StatusCode)
	}
	artifact, _ := json.Marshal(m)
	upload, _ := json.Marshal(map[string]json.RawMessage{
		"name": json.RawMessage(`"up"`), "artifact": artifact})
	resp2, raw := postJSON(t, ts.URL+"/v1/models", string(upload))
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("upload without model dir = %d: %s", resp2.StatusCode, raw)
	}
}

// TestMetricsEndpoint: after a burst of concurrent single inferences the
// per-model metrics report the traffic, and under a generous window at
// least one coalesced batch formed.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, test := newTestServer(t,
		registry.WithBatchWindow(50*time.Millisecond),
		registry.WithMaxBatch(8),
	)
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"input": test.X[i%len(test.X)]})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	var metrics struct {
		Models []struct {
			Name    string `json:"name"`
			Metrics struct {
				Requests      int64            `json:"requests"`
				Batches       int64            `json:"batches"`
				MaxCoalesced  int              `json:"max_coalesced"`
				BatchSizeHist map[string]int64 `json:"batch_size_hist"`
				P99Ms         float64          `json:"p99_ms"`
			} `json:"metrics"`
		} `json:"models"`
	}
	resp := getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if resp.StatusCode != http.StatusOK || len(metrics.Models) != 1 {
		t.Fatalf("/v1/metrics = %d %+v", resp.StatusCode, metrics)
	}
	got := metrics.Models[0]
	if got.Name != "iris" || got.Metrics.Requests != n {
		t.Fatalf("metrics: %+v", got)
	}
	if got.Metrics.MaxCoalesced <= 1 {
		t.Fatalf("no coalesced batch formed under a 50ms window with %d concurrent requests: %+v",
			n, got.Metrics)
	}
	if got.Metrics.Batches < 1 || len(got.Metrics.BatchSizeHist) == 0 || got.Metrics.P99Ms <= 0 {
		t.Fatalf("metrics shape: %+v", got.Metrics)
	}
}

// TestOverloadSheds429: a burst past the max-in-flight cap is shed with
// 429 + Retry-After while admitted requests return logits bit-identical
// to unbatched session inference, and /v1/metrics reports the rejected
// count and in-flight gauge.
func TestOverloadSheds429(t *testing.T) {
	_, ts, m, test := newTestServer(t,
		registry.WithMaxInFlight(1),
		registry.WithBatchWindow(50*time.Millisecond),
		registry.WithMaxBatch(64),
	)
	s := m.NewInferer()

	const n = 16
	type result struct {
		status     int
		retryAfter string
		logits     []float64
		input      []float64
		err        error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			x := test.X[i%len(test.X)]
			results[i].input = x
			body, _ := json.Marshal(map[string]any{"input": x})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			results[i].status = resp.StatusCode
			results[i].retryAfter = resp.Header.Get("Retry-After")
			if resp.StatusCode == http.StatusOK {
				var out struct {
					Result struct {
						Logits []float64 `json:"logits"`
					} `json:"result"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					results[i].err = err
					return
				}
				results[i].logits = out.Result.Logits
			}
		}(i)
	}
	wg.Wait()

	var served, shed int
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		switch r.status {
		case http.StatusOK:
			served++
			if err := compareLogits(r.logits, s.Infer(r.input)); err != nil {
				t.Fatalf("admitted request %d: %v", i, err)
			}
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Fatalf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, r.status)
		}
	}
	if served == 0 {
		t.Fatal("no request was admitted")
	}
	if shed == 0 {
		t.Fatalf("burst of %d past max-in-flight 1 shed nothing", n)
	}

	var metrics struct {
		Models []struct {
			MaxInFlight int `json:"max_in_flight"`
			QueueCap    int `json:"queue_cap"`
			Metrics     struct {
				Requests int64 `json:"requests"`
				Rejected int64 `json:"rejected"`
				TimedOut int64 `json:"timed_out"`
				InFlight int64 `json:"in_flight"`
			} `json:"metrics"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if len(metrics.Models) != 1 {
		t.Fatalf("metrics models: %+v", metrics)
	}
	got := metrics.Models[0]
	if got.MaxInFlight != 1 || got.QueueCap <= 0 {
		t.Fatalf("stat admission fields: %+v", got)
	}
	if got.Metrics.Rejected != int64(shed) || got.Metrics.Requests != int64(served) {
		t.Fatalf("metrics rejected=%d requests=%d, observed shed=%d served=%d",
			got.Metrics.Rejected, got.Metrics.Requests, shed, served)
	}
	if got.Metrics.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after burst drained", got.Metrics.InFlight)
	}
}

// TestRequestTimeout503: an admitted request stuck behind a
// never-flushing batch window gets 503 + Retry-After at the configured
// deadline, and the timed-out counter moves.
func TestRequestTimeout503(t *testing.T) {
	_, ts, _, test := newTestServer(t,
		registry.WithRequestTimeout(30*time.Millisecond),
		registry.WithBatchWindow(time.Hour),
		registry.WithMaxBatch(1<<20),
	)
	body, _ := json.Marshal(map[string]any{"input": test.X[0]})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stuck request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	stat, err := getServer(t, ts).Registry().Stat("iris")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Metrics.TimedOut != 1 {
		t.Fatalf("timed_out = %d, want 1", stat.Metrics.TimedOut)
	}
	if stat.RequestTimeout != "30ms" {
		t.Fatalf("stat request_timeout = %q", stat.RequestTimeout)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _, test := newTestServer(t)
	check := func(name, body string) {
		t.Helper()
		resp, raw := postJSON(t, ts.URL+"/v1/infer", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", name, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", name, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %s (%v)", name, raw, err)
		}
	}
	check("malformed", "{not json")
	check("neither", `{}`)
	wrongDim, _ := json.Marshal(map[string]any{"input": []float64{1, 2}})
	check("wrong feature count", string(wrongDim))
	both, _ := json.Marshal(map[string]any{"input": test.X[0], "inputs": test.X[:2]})
	check("both input and inputs", string(both))
	check("empty batch", `{"inputs":[]}`)
	check("unknown field", `{"data":[1,2,3,4]}`)
	batchWrong, _ := json.Marshal(map[string]any{"inputs": [][]float64{test.X[0], {1}}})
	check("bad batch element", string(batchWrong))
}

func TestUnknownModelRoutes(t *testing.T) {
	_, ts, _, test := newTestServer(t)
	body, _ := json.Marshal(map[string]any{"input": test.X[0]})
	resp, _ := postJSON(t, ts.URL+"/v1/models/ghost/infer", string(body))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("infer on unknown model = %d, want 404", resp.StatusCode)
	}
	resp2 := getJSON(t, ts.URL+"/v1/models/ghost", nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("stat of unknown model = %d, want 404", resp2.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/ghost", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown model = %d, want 404", resp3.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/infer = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/models/iris", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/models/iris = %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, ts, m, test := newTestServer(t)
	s := m.NewInferer()
	want := s.Infer(test.X[1])
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			body, _ := json.Marshal(map[string]any{"input": test.X[1]})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Result struct {
					Logits []float64 `json:"logits"`
				} `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			for j := range want {
				if out.Result.Logits[j] != want[j] {
					errs <- fmt.Errorf("logit %d: %v != %v", j, out.Result.Logits[j], want[j])
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
