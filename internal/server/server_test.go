package server

// End-to-end handler coverage over a saved Iris artifact: the HTTP plane
// must return exactly what a core session computes, and reject bad
// requests with JSON 400s.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/rng"
)

// irisModel trains a small Iris MLP, quantises it to posit(8,0) with the
// training standardizer folded into the artifact, saves and reloads it —
// the exact deployment path a daemon operator follows.
func irisModel(t *testing.T) (core.Model, *datasets.Dataset) {
	t.Helper()
	train, test := datasets.IrisSplit(0x1715)
	std := datasets.FitStandardizer(train)
	net := nn.NewMLP([]int{4, 10, 6, 3}, rng.New(7))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 40
	nn.Train(net, std.Apply(train), cfg)
	q := core.Quantize(net, emac.NewPosit(8, 0))
	q.Stand = std

	path := filepath.Join(t.TempDir(), "iris.json")
	if err := q.Save(path); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	return m, test
}

func newTestServer(t *testing.T, m core.Model) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(m, engine.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postInfer(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	m, _ := irisModel(t)
	_, ts := newTestServer(t, m)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status != "ok" {
		t.Fatalf("healthz body: %v %v", body, err)
	}
}

func TestModelMetadata(t *testing.T) {
	m, _ := irisModel(t)
	_, ts := newTestServer(t, m)
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Kind         string   `json:"kind"`
		InputDim     int      `json:"input_dim"`
		OutputDim    int      `json:"output_dim"`
		Layers       int      `json:"layers"`
		Arithmetics  []string `json:"arithmetics"`
		Standardized bool     `json:"standardized"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Kind != "uniform" || info.InputDim != 4 || info.OutputDim != 3 ||
		info.Layers != 3 || !info.Standardized {
		t.Fatalf("metadata: %+v", info)
	}
	for _, a := range info.Arithmetics {
		if a != "posit(8,0)" {
			t.Fatalf("arithmetics: %v", info.Arithmetics)
		}
	}
}

// TestBatchInferMatchesSession is the core exactness contract: logits
// served over HTTP are bit-identical to core.Session.Infer on the same
// loaded model.
func TestBatchInferMatchesSession(t *testing.T) {
	m, test := irisModel(t)
	_, ts := newTestServer(t, m)

	body, err := json.Marshal(map[string]any{"inputs": test.X})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postInfer(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch infer = %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Results []struct {
			Logits []float64 `json:"logits"`
			Class  int       `json:"class"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(test.X) {
		t.Fatalf("%d results for %d inputs", len(out.Results), len(test.X))
	}
	s := m.NewInferer()
	for i, x := range test.X {
		want := s.Infer(x)
		got := out.Results[i].Logits
		if len(got) != len(want) {
			t.Fatalf("sample %d: %d logits", i, len(got))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sample %d logit %d: HTTP %v != session %v", i, j, got[j], want[j])
			}
		}
		if out.Results[i].Class != nn.Argmax(want) {
			t.Fatalf("sample %d class %d", i, out.Results[i].Class)
		}
	}
}

func TestSingleInfer(t *testing.T) {
	m, test := irisModel(t)
	_, ts := newTestServer(t, m)
	body, _ := json.Marshal(map[string]any{"input": test.X[0]})
	resp, raw := postInfer(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single infer = %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Result *struct {
			Logits []float64 `json:"logits"`
			Class  int       `json:"class"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.Result == nil {
		t.Fatalf("single response: %s (%v)", raw, err)
	}
	want := m.NewInferer().Infer(test.X[0])
	for j := range want {
		if out.Result.Logits[j] != want[j] {
			t.Fatalf("logit %d: %v != %v", j, out.Result.Logits[j], want[j])
		}
	}
}

// TestMixedModelServed proves the daemon is precision-agnostic: a mixed
// artifact (three different arms) serves through the same handlers.
func TestMixedModelServed(t *testing.T) {
	src := nn.NewMLP([]int{4, 8, 6, 3}, rng.New(9))
	mixed := core.QuantizeMixed(src, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	})
	path := filepath.Join(t.TempDir(), "mixed.json")
	if err := mixed.Save(path); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m)
	x := []float64{0.5, -1, 2, 0.25}
	body, _ := json.Marshal(map[string]any{"input": x})
	resp, raw := postInfer(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed infer = %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Result struct {
			Logits []float64 `json:"logits"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	want := m.NewInferer().Infer(x)
	for j := range want {
		if out.Result.Logits[j] != want[j] {
			t.Fatalf("mixed logit %d: %v != %v", j, out.Result.Logits[j], want[j])
		}
	}
}

func TestBadRequests(t *testing.T) {
	m, test := irisModel(t)
	_, ts := newTestServer(t, m)
	check := func(name, body string) {
		t.Helper()
		resp, raw := postInfer(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", name, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", name, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %s (%v)", name, raw, err)
		}
	}
	check("malformed", "{not json")
	check("neither", `{}`)
	wrongDim, _ := json.Marshal(map[string]any{"input": []float64{1, 2}})
	check("wrong feature count", string(wrongDim))
	both, _ := json.Marshal(map[string]any{"input": test.X[0], "inputs": test.X[:2]})
	check("both input and inputs", string(both))
	check("empty batch", `{"inputs":[]}`)
	check("unknown field", `{"data":[1,2,3,4]}`)
	batchWrong, _ := json.Marshal(map[string]any{"inputs": [][]float64{test.X[0], {1}}})
	check("bad batch element", string(batchWrong))
}

func TestMethodNotAllowed(t *testing.T) {
	m, _ := irisModel(t)
	_, ts := newTestServer(t, m)
	resp, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/infer = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	m, test := irisModel(t)
	_, ts := newTestServer(t, m)
	s := m.NewInferer()
	want := s.Infer(test.X[1])
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			body, _ := json.Marshal(map[string]any{"input": test.X[1]})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Result struct {
					Logits []float64 `json:"logits"`
				} `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			for j := range want {
				if out.Result.Logits[j] != want[j] {
					errs <- fmt.Errorf("logit %d: %v != %v", j, out.Result.Logits[j], want[j])
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
