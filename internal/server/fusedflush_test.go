package server

// Coalescing + fused-kernel exactness over the wire: concurrent single-
// input HTTP requests ride the micro-batcher, whose flush now runs one
// fused InferBatchInto per worker chunk. The response bytes must be
// byte-for-byte what a serial core session produces, and the metrics
// must prove the requests really coalesced. CI runs this under -race.

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/registry"
)

func TestCoalescedHTTPBytesMatchFusedFlush(t *testing.T) {
	_, ts, m, test := newTestServer(t,
		registry.WithBatchWindow(50*time.Millisecond), registry.WithMaxBatch(8))

	// Ground truth: the exact response envelope a serial per-sample
	// session would yield, serialised the same way the handler does.
	const n = 32
	ref := m.NewInferer()
	want := make([][]byte, n)
	for i := range want {
		logits := ref.Infer(test.X[i%len(test.X)])
		env := inferResponse{Result: &prediction{Logits: logits, Class: nn.Argmax(logits)}}
		b, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append(b, '\n') // writeJSON uses json.Encoder, which appends \n
	}

	got := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(inferRequest{Input: test.X[i%len(test.X)]})
			if err != nil {
				t.Error(err)
				return
			}
			resp, raw := postJSON(t, ts.URL+"/v1/infer", string(body))
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d (%s)", i, resp.StatusCode, raw)
				return
			}
			got[i] = raw
		}(i)
	}
	wg.Wait()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("request %d response bytes diverge from serial session:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}

	// The requests must actually have shared flushes — otherwise this
	// test silently stops covering the fused batch path.
	var metrics struct {
		Models []struct {
			Name    string `json:"name"`
			Metrics struct {
				MaxCoalesced int `json:"max_coalesced"`
			} `json:"metrics"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if len(metrics.Models) != 1 {
		t.Fatalf("metrics models = %+v", metrics.Models)
	}
	if mc := metrics.Models[0].Metrics.MaxCoalesced; mc <= 1 {
		t.Fatalf("no coalescing observed (max_coalesced = %d); fused flush path untested", mc)
	}
}

// TestExplicitHTTPBatchMatchesFusedFlush drives the explicit batch route
// (which goes straight to Runtime.InferBatch's chunked fused path) and
// checks byte identity the same way.
func TestExplicitHTTPBatchMatchesFusedFlush(t *testing.T) {
	_, ts, m, test := newTestServer(t, registry.WithBatchWindow(time.Millisecond))

	const n = 24
	xs := test.X[:n]
	ref := m.NewInferer()
	preds := make([]prediction, n)
	for i, x := range xs {
		logits := ref.Infer(x)
		preds[i] = prediction{Logits: logits, Class: nn.Argmax(logits)}
	}
	wantBytes, err := json.Marshal(inferResponse{Results: preds})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes = append(wantBytes, '\n')

	body, err := json.Marshal(inferRequest{Inputs: xs})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/infer", string(body))
	if resp.StatusCode != 200 {
		t.Fatalf("batch infer: status %d (%s)", resp.StatusCode, raw)
	}
	if !bytes.Equal(raw, wantBytes) {
		t.Fatalf("batch response bytes diverge from serial session:\n got %s\nwant %s", raw, wantBytes)
	}
}
