// Package server implements the positrond HTTP inference API: a JSON
// front-end over a multi-model registry. Each loaded model owns a
// worker-pool Runtime and a dynamic micro-batcher; single-sample
// requests arriving within the batching window share one runtime batch.
//
//	GET    /healthz                 liveness probe (503 once shutdown
//	                                has begun — the drain signal the
//	                                router tier routes away from)
//	GET    /readyz                  readiness probe: 503 while the
//	                                registry is closed, empty, or every
//	                                model queue is saturated; the body
//	                                carries per-model queue occupancy
//	GET    /v1/models               list loaded models (with stats)
//	POST   /v1/models               load a model: {"name": "...", "path": "..."}
//	                                or {"name": "...", "artifact": {...}}
//	GET    /v1/models/{name}        one model's metadata and stats
//	DELETE /v1/models/{name}        graceful unload (drains in-flight work)
//	POST   /v1/models/{name}/infer  single ({"input": [...]}) or batch
//	                                ({"inputs": [[...], ...]}) inference
//	GET    /v1/metrics              per-model request counts, batch-size
//	                                histogram, p50/p99 latency
//	GET    /v1/artifacts/{hash}     raw canonical artifact bytes by
//	                                content address (ETag = hash; served
//	                                from the local store tiers only, so
//	                                peers can fetch without recursion)
//	POST   /v1/store/gc             sweep unreferenced artifact blobs
//	GET    /v1/model                default-model metadata  (PR 3 alias)
//	POST   /v1/infer                default-model inference (PR 3 alias)
//
// POST /v1/models also accepts {"name": "...", "hash": "..."}: the model
// loads from the content-addressed store alone, which over a peer-backed
// store means fetching the bytes from another replica by hash.
//
// Errors are JSON ({"error": "..."}): 400 for malformed bodies or inputs
// of the wrong feature width, 403 for path loads outside the configured
// model directory (see WithModelDir; without one only inline artifact
// uploads are accepted), 404 for unknown models, 409 for duplicate
// loads, 405 for wrong methods. Inference observes request-context
// cancellation, so a disconnected client stops occupying the pool.
// The artifact endpoint answers with the raw binary, not JSON.
//
// Inference rides each model's admission gate: with a registry
// max-in-flight cap configured, requests beyond the cap are shed with
// 429 + Retry-After instead of queueing without bound, and admitted
// requests that exceed the registry request timeout get 503 +
// Retry-After. /v1/metrics reports the rejected/timed-out counters and
// the in-flight gauge per model.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/registry"
)

// MaxBodyBytes bounds an inference request body (1 MiB is thousands of
// samples at the paper's feature widths).
const MaxBodyBytes = 1 << 20

// MaxArtifactBytes bounds an uploaded model artifact (the paper's
// largest network is a few hundred KiB of JSON codes).
const MaxArtifactBytes = 16 << 20

// Server is the HTTP handler set over one model registry. Create with
// New; Close unloads every model and drains the worker pools.
type Server struct {
	reg         *registry.Registry
	defaultName string
	modelDir    string
	mux         *http.ServeMux

	// draining flips /healthz to 503 once shutdown has begun, so
	// health-probing upstreams stop routing here while in-flight requests
	// finish (BeginShutdown).
	draining atomic.Bool
	// panics counts handler panics recovered by ServeHTTP (500 to the
	// client, daemon alive). Exposed in /v1/metrics.
	panics atomic.Int64
}

// Option configures a Server at construction.
type Option func(*Server)

// WithModelDir allows POST /v1/models path loads from artifacts under
// dir (resolved and prefix-checked, so "path" cannot probe the rest of
// the filesystem of an unauthenticated daemon). Without it, only inline
// artifact uploads are accepted over HTTP.
func WithModelDir(dir string) Option {
	return func(s *Server) { s.modelDir = dir }
}

// New builds a server over the registry. defaultName is the model served
// by the single-model /v1/infer and /v1/model aliases; it may be empty
// when no default is wanted (the aliases then 404 unless exactly one
// model is loaded, in which case that model is the default).
func New(reg *registry.Registry, defaultName string, opts ...Option) *Server {
	s := &Server{reg: reg, defaultName: defaultName, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("POST /v1/models", s.handleLoadModel)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleModelStat)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleUnloadModel)
	s.mux.HandleFunc("POST /v1/models/{name}/infer", s.handleModelInfer)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/artifacts/{hash}", s.handleArtifact)
	s.mux.HandleFunc("POST /v1/store/gc", s.handleStoreGC)
	s.mux.HandleFunc("GET /v1/model", s.handleDefaultModelStat)
	s.mux.HandleFunc("POST /v1/infer", s.handleDefaultInfer)
	s.mux.HandleFunc("/healthz", methodNotAllowed)
	s.mux.HandleFunc("/readyz", methodNotAllowed)
	s.mux.HandleFunc("/v1/models", methodNotAllowed)
	s.mux.HandleFunc("/v1/models/{name}", methodNotAllowed)
	s.mux.HandleFunc("/v1/models/{name}/infer", methodNotAllowed)
	s.mux.HandleFunc("/v1/metrics", methodNotAllowed)
	s.mux.HandleFunc("/v1/artifacts/{hash}", methodNotAllowed)
	s.mux.HandleFunc("/v1/store/gc", methodNotAllowed)
	s.mux.HandleFunc("/v1/model", methodNotAllowed)
	s.mux.HandleFunc("/v1/infer", methodNotAllowed)
	return s
}

// ServeHTTP implements http.Handler. It recovers handler panics: the
// request fails with a 500 JSON error (when nothing has been written
// yet) and the daemon survives, with the event counted in /v1/metrics.
// http.ErrAbortHandler propagates — that is net/http's own
// abort-the-connection protocol, not a crash.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ww := &observedWriter{ResponseWriter: w}
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panics.Add(1)
			if !ww.wrote {
				writeError(ww, http.StatusInternalServerError, "internal error: %v", p)
			}
		}
	}()
	s.mux.ServeHTTP(ww, r)
}

// BeginShutdown flips /healthz (and /readyz) to 503 so health-probing
// upstreams — the router tier, load balancers — stop routing new
// requests to this replica while in-flight ones finish. Call it before
// shutting the HTTP listener down; it does not itself reject requests.
// Idempotent and safe for concurrent use.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// Draining reports whether BeginShutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// observedWriter tracks whether a response has started, so the panic
// recovery path knows if a 500 can still be written.
type observedWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *observedWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *observedWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Registry returns the model registry backing the server.
func (s *Server) Registry() *registry.Registry { return s.reg }

// Close unloads every model, draining each runtime. Call after the HTTP
// listener has shut down.
func (s *Server) Close() error { return s.reg.Close() }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorJSON is the error envelope for every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func methodNotAllowed(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyModel is one model's queue occupancy in the readiness body.
type readyModel struct {
	Name     string `json:"name"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
}

// readyResponse is the /readyz body: overall status plus per-model
// occupancy, the signal the router tier's probes read for least-loaded
// replica picking.
type readyResponse struct {
	Status string       `json:"status"`
	Models []readyModel `json:"models"`
}

// handleReadyz distinguishes readiness from liveness: the process may be
// alive (healthz 200) yet unable to serve — shutting down, no models
// loaded, or every model's job queue saturated. Upstreams route new
// traffic only to ready replicas.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	stats := s.reg.Stats()
	models := make([]readyModel, len(stats))
	saturated := len(stats) > 0
	for i, st := range stats {
		models[i] = readyModel{Name: st.Name, QueueLen: st.QueueLen, QueueCap: st.QueueCap}
		if st.QueueLen < st.QueueCap {
			saturated = false
		}
	}
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case s.reg.Closed():
		status, code = "registry closed", http.StatusServiceUnavailable
	case len(stats) == 0:
		status, code = "no models loaded", http.StatusServiceUnavailable
	case saturated:
		status, code = "all model queues saturated", http.StatusServiceUnavailable
	}
	writeJSON(w, code, readyResponse{Status: status, Models: models})
}

// defaultModel resolves the name behind the /v1/infer and /v1/model
// aliases: the configured default, or the sole loaded model.
func (s *Server) defaultModel() (string, bool) {
	if s.defaultName != "" {
		return s.defaultName, true
	}
	if names := s.reg.Names(); len(names) == 1 {
		return names[0], true
	}
	return "", false
}

// acquire pins a model by name, translating registry errors to HTTP.
func (s *Server) acquire(w http.ResponseWriter, name string) (*registry.Handle, bool) {
	h, err := s.reg.Acquire(name)
	switch {
	case err == nil:
		return h, true
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, "model %q not loaded", name)
	case errors.Is(err, registry.ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, false
}

// --- model management ---

type modelList struct {
	Models []registry.ModelStat `json:"models"`
}

// etagMatch reports whether an If-None-Match header matches etag. Weak
// validators compare equal to their strong form (RFC 9110 §13.1.2 —
// fine for GET/HEAD, where weak comparison is allowed).
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimPrefix(strings.TrimSpace(c), "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// writeConditional sets the ETag header and serves 304 when the
// client's If-None-Match already names this entity; otherwise it sends
// the body. Replicas polling /v1/models for membership changes pay one
// hash comparison, not a JSON body, per unchanged poll.
func writeConditional(w http.ResponseWriter, r *http.Request, etag string, status int, v any) {
	if etag != "" {
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, status, v)
}

// listETag fingerprints the loaded-model set: sorted name:hash lines,
// hashed. Any load, unload, or swap changes it; a byte-identical fleet
// member produces the identical tag.
func listETag(stats []registry.ModelStat) string {
	lines := make([]string, 0, len(stats))
	for _, st := range stats {
		lines = append(lines, st.Name+":"+st.ContentHash)
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	stats := s.reg.Stats()
	writeConditional(w, r, listETag(stats), http.StatusOK, modelList{Models: stats})
}

// loadRequest is the POST /v1/models body: Name plus exactly one of
// Path (an artifact on the server's filesystem), Artifact (the raw
// artifact JSON, uploaded inline), or Hash (a content address to load
// from the store — with a peer-backed store, fetched across the fleet).
type loadRequest struct {
	Name     string          `json:"name"`
	Path     string          `json:"path,omitempty"`
	Artifact json.RawMessage `json:"artifact,omitempty"`
	Hash     string          `json:"hash,omitempty"`
}

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxArtifactBytes))
	dec.DisallowUnknownFields()
	var req loadRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed body: %v", err)
		return
	}
	sources := 0
	for _, set := range []bool{req.Path != "", len(req.Artifact) != 0, req.Hash != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, `body must set exactly one of "path", "artifact", or "hash"`)
		return
	}
	var err error
	switch {
	case req.Path != "":
		path, ok := s.allowedPath(req.Path)
		if !ok {
			writeError(w, http.StatusForbidden,
				"path loads are restricted to the configured model directory; upload the artifact inline instead")
			return
		}
		err = s.reg.LoadPath(req.Name, path)
	case req.Hash != "":
		h, perr := artifact.ParseHash(req.Hash)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "%v", perr)
			return
		}
		err = s.reg.LoadHash(req.Name, h)
	default:
		err = s.reg.LoadBytes(req.Name, req.Artifact)
	}
	switch {
	case err == nil:
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, registry.ErrRegistryClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case errors.Is(err, store.ErrNotFound):
		// Load-by-hash asked for bytes neither this replica nor its
		// peers hold.
		writeError(w, http.StatusNotFound, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	stat, err := s.reg.Stat(req.Name)
	if err != nil {
		// Unloaded again between Load and Stat; report the load anyway.
		stat = registry.ModelStat{Name: req.Name}
	}
	if stat.ContentHash != "" {
		w.Header().Set("ETag", `"`+stat.ContentHash+`"`)
	}
	writeJSON(w, http.StatusCreated, stat)
}

// allowedPath resolves a client-supplied artifact path against the
// configured model directory; clients must not be able to use the load
// endpoint as a filesystem probe.
func (s *Server) allowedPath(p string) (string, bool) {
	if s.modelDir == "" {
		return "", false
	}
	dir, err := filepath.Abs(s.modelDir)
	if err != nil {
		return "", false
	}
	if !filepath.IsAbs(p) {
		p = filepath.Join(dir, p)
	}
	p = filepath.Clean(p)
	if p != dir && !strings.HasPrefix(p, dir+string(filepath.Separator)) {
		return "", false
	}
	return p, true
}

func (s *Server) handleUnloadModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Unload(name); err != nil {
		switch {
		case errors.Is(err, registry.ErrNotFound):
			writeError(w, http.StatusNotFound, "model %q not loaded", name)
		case errors.Is(err, registry.ErrRegistryClosed):
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unloaded", "model": name})
}

func (s *Server) handleModelStat(w http.ResponseWriter, r *http.Request) {
	s.writeModelStat(w, r, r.PathValue("name"))
}

func (s *Server) handleDefaultModelStat(w http.ResponseWriter, r *http.Request) {
	name, ok := s.defaultModel()
	if !ok {
		writeError(w, http.StatusNotFound, "no default model (load one, or address /v1/models/{name})")
		return
	}
	s.writeModelStat(w, r, name)
}

func (s *Server) writeModelStat(w http.ResponseWriter, r *http.Request, name string) {
	stat, err := s.reg.Stat(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "model %q not loaded", name)
		return
	}
	// The content hash is the entity tag: same hash, same artifact, same
	// served logits — a 304 is always safe.
	etag := ""
	if stat.ContentHash != "" {
		etag = `"` + stat.ContentHash + `"`
	}
	writeConditional(w, r, etag, http.StatusOK, stat)
}

// --- artifact plane ---

// handleArtifact serves raw canonical artifact bytes by content address
// — the peer-fetch endpoint behind store.Remote. It reads through the
// store's local view only: answering a peer's fetch by fetching from
// peers would let two replicas missing the same blob recurse into each
// other forever. The hash is the ETag, so a peer that already holds the
// bytes revalidates for free.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	h, err := artifact.ParseHash(r.PathValue("hash"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	etag := `"` + h.String() + `"`
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := store.Local(s.reg.Store()).Get(h)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "artifact %s not in store", h)
		return
	case errors.Is(err, store.ErrCorrupt):
		// Refuse to propagate rot into the fleet.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("ETag", etag)
	_, _ = w.Write(data)
}

// gcResponse is the POST /v1/store/gc body.
type gcResponse struct {
	Removed    int   `json:"removed"`
	FreedBytes int64 `json:"freed_bytes"`
}

// handleStoreGC sweeps unreferenced blobs out of the artifact store —
// the admin reclamation endpoint behind Registry.GC. Loaded models and
// in-flight loads are pinned; everything else goes.
func (s *Server) handleStoreGC(w http.ResponseWriter, _ *http.Request) {
	removed, freed, err := s.reg.GC()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store gc: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, gcResponse{Removed: removed, FreedBytes: freed})
}

// --- metrics ---

// serverMetrics is the process-level slice of /v1/metrics (per-model
// stats live under "models").
type serverMetrics struct {
	// Panics counts handler panics recovered by ServeHTTP (each cost one
	// request a 500, never the daemon).
	Panics int64 `json:"panics"`
	// Draining reports whether shutdown has begun (healthz is 503).
	Draining bool `json:"draining"`
}

type metricsResponse struct {
	Server serverMetrics        `json:"server"`
	Store  store.Stats          `json:"store"`
	Models []registry.ModelStat `json:"models"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, metricsResponse{
		Server: serverMetrics{Panics: s.panics.Load(), Draining: s.draining.Load()},
		Store:  s.reg.StoreStats(),
		Models: s.reg.Stats(),
	})
}

// --- inference ---

// inferRequest is the inference body: exactly one of Input (single) or
// Inputs (batch).
type inferRequest struct {
	Input  []float64   `json:"input"`
	Inputs [][]float64 `json:"inputs"`
}

// prediction is one inference result.
type prediction struct {
	Logits []float64 `json:"logits"`
	Class  int       `json:"class"`
}

// inferResponse mirrors the request shape: Result for single, Results
// for batch.
type inferResponse struct {
	Result  *prediction  `json:"result,omitempty"`
	Results []prediction `json:"results,omitempty"`
}

// retryAfter suggests a whole-seconds backoff for shed or timed-out
// requests, derived from observed load: the model's queue-wait EWMA plus
// one observed flush interval (Metrics.RetryHint) — roughly when a freed
// admission unit plausibly reaches a retry — floored at one batch window
// for cold models. Clamped to [1s, 30s]: the header does not admit
// sub-second values, and past 30s the hint is telling the client the
// model is wedged, not busy.
func retryAfter(h *registry.Handle) string {
	d := h.Metrics().RetryHint()
	if w := h.Batcher().Window(); d < w {
		d = w
	}
	const lo, hi = time.Second, 30 * time.Second
	switch {
	case d < lo:
		d = lo
	case d > hi:
		d = hi
	}
	// Round up to whole seconds — never hint sooner than the estimate.
	return strconv.Itoa(int((d + time.Second - 1) / time.Second))
}

func (s *Server) handleModelInfer(w http.ResponseWriter, r *http.Request) {
	s.infer(w, r, r.PathValue("name"))
}

func (s *Server) handleDefaultInfer(w http.ResponseWriter, r *http.Request) {
	name, ok := s.defaultModel()
	if !ok {
		writeError(w, http.StatusNotFound, "no default model (load one, or address /v1/models/{name}/infer)")
		return
	}
	s.infer(w, r, name)
}

// infer serves one inference request against the named model. Single
// inputs ride the micro-batcher (coalescing with concurrent requests);
// explicit batches go straight to the runtime batch path.
func (s *Server) infer(w http.ResponseWriter, r *http.Request, name string) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req inferRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed body: %v", err)
		return
	}
	single := req.Input != nil
	batch := req.Inputs != nil
	if single == batch {
		writeError(w, http.StatusBadRequest, `body must set exactly one of "input" or "inputs"`)
		return
	}
	if batch && len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}

	h, ok := s.acquire(w, name)
	if !ok {
		return
	}
	defer h.Release()

	want := h.Model().InputDim()
	xs := req.Inputs
	if single {
		xs = [][]float64{req.Input}
	}
	for i, x := range xs {
		if len(x) != want {
			writeError(w, http.StatusBadRequest,
				"input %d has %d features, model expects %d", i, len(x), want)
			return
		}
	}

	var (
		logits [][]float64
		err    error
	)
	if single {
		var one []float64
		one, err = h.Infer(r.Context(), req.Input)
		logits = [][]float64{one}
	} else {
		logits, err = h.InferBatch(r.Context(), req.Inputs)
	}
	switch {
	case err == nil:
	case errors.Is(err, registry.ErrOverloaded):
		// Shed, not queued: tell the client to back off for the
		// load-derived hint (queue-wait EWMA + flush interval).
		w.Header().Set("Retry-After", retryAfter(h))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, registry.ErrRequestTimeout):
		w.Header().Set("Retry-After", retryAfter(h))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, engine.ErrClosed), errors.Is(err, registry.ErrBatcherClosed):
		writeError(w, http.StatusServiceUnavailable, "model %q unloading", name)
		return
	case errors.Is(err, engine.ErrPanic):
		// A poisoned input killed its own inference, not the daemon; the
		// worker recovered and /v1/metrics counts the panic.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	default:
		// Context cancellation: the client is gone; any status works.
		writeError(w, http.StatusInternalServerError, "inference aborted: %v", err)
		return
	}
	preds := make([]prediction, len(logits))
	for i, l := range logits {
		preds[i] = prediction{Logits: l, Class: nn.Argmax(l)}
	}
	if single {
		writeJSON(w, http.StatusOK, inferResponse{Result: &preds[0]})
		return
	}
	writeJSON(w, http.StatusOK, inferResponse{Results: preds})
}
