// Package server implements the positrond HTTP inference API: a JSON
// front-end over the engine Runtime, serving any versioned Deep Positron
// artifact — uniform or mixed precision — behind one core.Model.
//
//	GET  /healthz   liveness probe
//	GET  /v1/model  model metadata (shape, per-layer arithmetics, memory)
//	POST /v1/infer  single ({"input": [...]}) or batch
//	                ({"inputs": [[...], ...]}) inference
//
// Errors are JSON ({"error": "..."}): 400 for malformed bodies or inputs
// of the wrong feature width, 405 for wrong methods. Inference observes
// request-context cancellation, so a disconnected client stops occupying
// the pool.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nn"
)

// MaxBodyBytes bounds an /v1/infer request body (1 MiB is thousands of
// samples at the paper's feature widths).
const MaxBodyBytes = 1 << 20

// Server is the HTTP handler set over one loaded model. Create with New,
// release the worker pool with Close.
type Server struct {
	model core.Model
	rt    *engine.Runtime
	mux   *http.ServeMux
}

// New builds a server over the model with the given runtime options
// (worker count, queue depth, warm tables — see package engine). Do not
// pass engine.WithSharedOutputs: responses are encoded after InferBatch
// returns, so concurrent requests must not share an output buffer.
func New(model core.Model, opts ...engine.Option) (*Server, error) {
	rt, err := engine.NewRuntime(model, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{model: model, rt: rt, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("/healthz", methodNotAllowed)
	s.mux.HandleFunc("/v1/model", methodNotAllowed)
	s.mux.HandleFunc("/v1/infer", methodNotAllowed)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Runtime returns the inference runtime backing the server.
func (s *Server) Runtime() *engine.Runtime { return s.rt }

// Close releases the worker pool. Call after the HTTP listener has shut
// down; in-flight inferences drain first.
func (s *Server) Close() error { return s.rt.Close() }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorJSON is the error envelope for every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func methodNotAllowed(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// modelInfo is the /v1/model response.
type modelInfo struct {
	Model        string   `json:"model"`
	Kind         string   `json:"kind"`
	InputDim     int      `json:"input_dim"`
	OutputDim    int      `json:"output_dim"`
	Layers       int      `json:"layers"`
	Arithmetics  []string `json:"arithmetics"`
	MemoryBits   int      `json:"memory_bits"`
	Standardized bool     `json:"standardized"`
	Workers      int      `json:"workers"`
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	m := s.model
	writeJSON(w, http.StatusOK, modelInfo{
		Model:        m.String(),
		Kind:         m.Kind(),
		InputDim:     m.InputDim(),
		OutputDim:    m.OutputDim(),
		Layers:       m.NumLayers(),
		Arithmetics:  m.ArithNames(),
		MemoryBits:   m.MemoryBits(),
		Standardized: m.Standardizer() != nil,
		Workers:      s.rt.Workers(),
	})
}

// inferRequest is the /v1/infer body: exactly one of Input (single) or
// Inputs (batch).
type inferRequest struct {
	Input  []float64   `json:"input"`
	Inputs [][]float64 `json:"inputs"`
}

// prediction is one inference result.
type prediction struct {
	Logits []float64 `json:"logits"`
	Class  int       `json:"class"`
}

// inferResponse mirrors the request shape: Result for single, Results
// for batch.
type inferResponse struct {
	Result  *prediction  `json:"result,omitempty"`
	Results []prediction `json:"results,omitempty"`
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req inferRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed body: %v", err)
		return
	}
	single := req.Input != nil
	batch := req.Inputs != nil
	if single == batch {
		writeError(w, http.StatusBadRequest, `body must set exactly one of "input" or "inputs"`)
		return
	}
	xs := req.Inputs
	if single {
		xs = [][]float64{req.Input}
	}
	if len(xs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	want := s.model.InputDim()
	for i, x := range xs {
		if len(x) != want {
			writeError(w, http.StatusBadRequest,
				"input %d has %d features, model expects %d", i, len(x), want)
			return
		}
	}
	logits, err := s.rt.InferBatch(r.Context(), xs)
	switch {
	case err == nil:
	case errors.Is(err, engine.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
		// Context cancellation: the client is gone; any status works.
		writeError(w, http.StatusInternalServerError, "inference aborted: %v", err)
		return
	}
	preds := make([]prediction, len(logits))
	for i, l := range logits {
		preds[i] = prediction{Logits: l, Class: nn.Argmax(l)}
	}
	if single {
		writeJSON(w, http.StatusOK, inferResponse{Result: &preds[0]})
		return
	}
	writeJSON(w, http.StatusOK, inferResponse{Results: preds})
}
