package server

// Flush-pipeline exactness over the wire: with two result planes and a
// deliberately slow model, concurrent HTTP traffic drives the pipeline
// to depth >= 2 — and every coalesced response must still be
// byte-for-byte what a serial per-sample session produces. Also covers
// the dynamic Retry-After derivation and its [1s, 30s] clamp. CI runs
// this file under -race.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/registry"
)

// slowModel stretches every fused batch call by delay so that
// concurrent flushes are reliably in flight together on any host.
// Results are bit-identical to the wrapped model's.
type slowModel struct {
	core.Model
	delay time.Duration
}

func (m *slowModel) NewInferer() core.Inferer {
	return &slowInferer{Inferer: m.Model.NewInferer(), delay: m.delay}
}

type slowInferer struct {
	core.Inferer
	delay time.Duration
}

func (s *slowInferer) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	time.Sleep(s.delay)
	return s.Inferer.InferBatchInto(dst, xs)
}

// newPipelineServer serves one slow iris model through a depth-2 flush
// pipeline with a tight window, so windows queue behind each other and
// overlap.
func newPipelineServer(t *testing.T) (*httptest.Server, core.Model, *datasets.Dataset) {
	t.Helper()
	m, test := irisModel(t)
	reg := registry.New(
		registry.WithBatchWindow(time.Millisecond),
		registry.WithMaxBatch(4),
		registry.WithFlushPipeline(2),
	)
	if err := reg.Load("iris", &slowModel{Model: m, delay: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	s := New(reg, "iris", WithModelDir(t.TempDir()))
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, m, test
}

// TestPipelinedHTTPBytesMatchSerial is the wire-level tentpole contract:
// responses demultiplexed out of overlapping pipelined flushes are
// byte-identical to unbatched serial sessions, and the metrics prove the
// overlap actually happened (max_pipeline_depth >= 2) with the
// queue-wait/compute split populated.
func TestPipelinedHTTPBytesMatchSerial(t *testing.T) {
	ts, m, test := newPipelineServer(t)

	const n = 24
	ref := m.NewInferer()
	want := make([][]byte, n)
	for i := range want {
		logits := ref.Infer(test.X[i%len(test.X)])
		env := inferResponse{Result: &prediction{Logits: logits, Class: nn.Argmax(logits)}}
		b, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append(b, '\n')
	}

	got := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(inferRequest{Input: test.X[i%len(test.X)]})
			if err != nil {
				t.Error(err)
				return
			}
			resp, raw := postJSON(t, ts.URL+"/v1/infer", string(body))
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d (%s)", i, resp.StatusCode, raw)
				return
			}
			got[i] = raw
		}(i)
	}
	// A few explicit batches alongside the singles keep both planes
	// leased while windows demux.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := json.Marshal(inferRequest{Inputs: test.X[:6]})
			if err != nil {
				t.Error(err)
				return
			}
			if resp, raw := postJSON(t, ts.URL+"/v1/infer", string(body)); resp.StatusCode != 200 {
				t.Errorf("explicit batch: status %d (%s)", resp.StatusCode, raw)
			}
		}()
	}
	wg.Wait()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("request %d response bytes diverge from serial session:\n got %s\nwant %s",
				i, got[i], want[i])
		}
	}

	var metrics struct {
		Models []struct {
			Name          string `json:"name"`
			FlushPipeline int    `json:"flush_pipeline"`
			Metrics       struct {
				MaxPipelineDepth int     `json:"max_pipeline_depth"`
				QueueWaitP99Ms   float64 `json:"queue_wait_p99_ms"`
				ComputeP50Ms     float64 `json:"compute_p50_ms"`
			} `json:"metrics"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &metrics)
	if len(metrics.Models) != 1 {
		t.Fatalf("metrics models = %+v", metrics.Models)
	}
	mm := metrics.Models[0]
	if mm.FlushPipeline != 2 {
		t.Fatalf("flush_pipeline = %d, want 2", mm.FlushPipeline)
	}
	if mm.Metrics.MaxPipelineDepth < 2 {
		t.Fatalf("max_pipeline_depth = %d: flushes never overlapped under sustained load", mm.Metrics.MaxPipelineDepth)
	}
	if mm.Metrics.ComputeP50Ms < 10 {
		t.Fatalf("compute_p50_ms = %v, want >= the injected 10ms", mm.Metrics.ComputeP50Ms)
	}
	if mm.Metrics.QueueWaitP99Ms <= 0 {
		t.Fatalf("queue_wait_p99_ms = %v: split not recorded", mm.Metrics.QueueWaitP99Ms)
	}
}

// TestRetryAfterDynamicClamp: the Retry-After hint tracks the observed
// queue-wait/flush-gap EWMAs, floors at 1s for cold or fast models, and
// clamps at 30s however wedged the queues look.
func TestRetryAfterDynamicClamp(t *testing.T) {
	reg := registry.New()
	t.Cleanup(func() { reg.Close() })
	m, _ := irisModel(t)
	if err := reg.Load("iris", m); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Acquire("iris")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Release)

	// Cold model: nothing observed, hint floors at 1s.
	if got := retryAfter(h); got != "1" {
		t.Fatalf("cold retryAfter = %q, want \"1\"", got)
	}
	// Sub-second observed load still floors at 1s.
	h.Metrics().ObserveQueueWait(3 * time.Millisecond)
	if got := retryAfter(h); got != "1" {
		t.Fatalf("fast-path retryAfter = %q, want \"1\"", got)
	}
	// Sustained multi-second queue waits push the hint up (EWMA of 5s
	// samples converges toward 5; the hint rounds seconds up).
	for i := 0; i < 50; i++ {
		h.Metrics().ObserveQueueWait(5 * time.Second)
	}
	got := retryAfter(h)
	if got == "1" || got == "31" {
		t.Fatalf("loaded retryAfter = %q, want a multi-second hint within the clamp", got)
	}
	// A wedged-looking model (10-minute waits) clamps at 30s.
	for i := 0; i < 50; i++ {
		h.Metrics().ObserveQueueWait(10 * time.Minute)
	}
	if got := retryAfter(h); got != "30" {
		t.Fatalf("wedged retryAfter = %q, want \"30\"", got)
	}
}
