package hw

import (
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/minifloat"
	"repro/internal/posit"
)

const defaultK = 32

func fixedRep(n, q uint) Report {
	return Virtex7.SynthFixed(fixedpoint.MustFormat(n, q), defaultK)
}
func floatRep(we, wf uint) Report {
	return Virtex7.SynthFloat(minifloat.MustFormat(we, wf), defaultK)
}
func positRep(n, es uint) Report {
	return Virtex7.SynthPosit(posit.MustFormat(n, es), defaultK)
}

// TestFig6Shape: the paper's Fig. 6 claims. Fixed achieves the lowest
// datapath latency (highest fmax); posit operates at higher frequency
// than float for a given dynamic range.
func TestFig6Shape(t *testing.T) {
	for n := uint(5); n <= 8; n++ {
		fx := fixedRep(n, n/2)
		fl := floatRep(3, n-4)
		po := positRep(n, 1)
		if !(fx.FMaxMHz > fl.FMaxMHz && fx.FMaxMHz > po.FMaxMHz) {
			t.Errorf("n=%d: fixed must be fastest: fixed=%.0f float=%.0f posit=%.0f",
				n, fx.FMaxMHz, fl.FMaxMHz, po.FMaxMHz)
		}
	}
	// "In general, the posit EMAC can operate at a higher frequency for
	// a given dynamic range than the floating point EMAC": every 8-bit
	// posit configuration must sit on or above the 8-bit float
	// (dynamic range -> fmax) curve, linearly interpolated.
	var curve []Report // 8-bit floats, ascending dynamic range
	for we := uint(3); we <= 6; we++ {
		curve = append(curve, floatRep(we, 7-we))
	}
	floatAt := func(dyn float64) float64 {
		if dyn <= curve[0].DynRange {
			return curve[0].FMaxMHz
		}
		for i := 0; i+1 < len(curve); i++ {
			a, b := curve[i], curve[i+1]
			if dyn <= b.DynRange {
				t := (dyn - a.DynRange) / (b.DynRange - a.DynRange)
				return a.FMaxMHz + t*(b.FMaxMHz-a.FMaxMHz)
			}
		}
		return curve[len(curve)-1].FMaxMHz
	}
	for es := uint(0); es <= 2; es++ {
		po := positRep(8, es)
		if ref := floatAt(po.DynRange); po.FMaxMHz < ref {
			t.Errorf("%s fmax %.0f MHz below the float curve (%.0f MHz) at dyn %.2f",
				po.Name, po.FMaxMHz, ref, po.DynRange)
		}
	}
}

// TestFig7Shape: fixed outperforms the other EMACs' EDP at every
// bit-width, and float/posit EDPs stay within one decade of each other.
func TestFig7Shape(t *testing.T) {
	for n := uint(5); n <= 8; n++ {
		fx := fixedRep(n, n/2)
		fl := floatRep(3, n-4)
		po := positRep(n, 1)
		if !(fx.EDP < fl.EDP && fx.EDP < po.EDP) {
			t.Errorf("n=%d: fixed EDP must be lowest (fixed=%.3g float=%.3g posit=%.3g)",
				n, fx.EDP, fl.EDP, po.EDP)
		}
		ratio := po.EDP / fl.EDP
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("n=%d: posit/float EDP ratio %.2f outside one decade", n, ratio)
		}
	}
}

// TestFig8Shape: LUT utilisation ordering posit > float > fixed at every
// bit width (posit pays for decode/encode, per the paper's §IV-A).
func TestFig8Shape(t *testing.T) {
	for n := uint(5); n <= 8; n++ {
		fx := fixedRep(n, n/2)
		fl := floatRep(3, n-4)
		po := positRep(n, 1)
		if !(po.LUTs > fl.LUTs && fl.LUTs > fx.LUTs) {
			t.Errorf("n=%d: LUT ordering violated: posit=%.0f float=%.0f fixed=%.0f",
				n, po.LUTs, fl.LUTs, fx.LUTs)
		}
	}
}

// TestMonotoneGrowth: widening any format must not reduce area or
// accumulator width.
func TestMonotoneGrowth(t *testing.T) {
	for n := uint(5); n < 8; n++ {
		if fixedRep(n+1, (n+1)/2).LUTs < fixedRep(n, n/2).LUTs {
			t.Errorf("fixed LUTs must grow with n")
		}
		if positRep(n+1, 1).AccumWidth < positRep(n, 1).AccumWidth {
			t.Errorf("posit quire must grow with n")
		}
	}
	// quire grows exponentially with es
	if positRep(8, 2).AccumWidth <= positRep(8, 1).AccumWidth {
		t.Error("quire must grow with es")
	}
	// float accumulator grows exponentially with we
	if floatRep(5, 2).AccumWidth <= floatRep(4, 3).AccumWidth {
		t.Error("float accumulator must grow with we")
	}
}

func TestAccumWidthsMatchEquations(t *testing.T) {
	// Cross-check the report's widths against the packages' equations.
	if got := positRep(8, 0).AccumWidth; got != posit.QuireSize(posit.MustFormat(8, 0), defaultK) {
		t.Errorf("posit accum width %d", got)
	}
	if got := fixedRep(8, 4).AccumWidth; got != fixedpoint.AccumSize(fixedpoint.MustFormat(8, 4), defaultK) {
		t.Errorf("fixed accum width %d", got)
	}
	if got := floatRep(4, 3).AccumWidth; got != minifloat.AccumSize(minifloat.MustFormat(4, 3), defaultK) {
		t.Errorf("float accum width %d", got)
	}
}

func TestPlausibleAbsolutes(t *testing.T) {
	// Sanity: the calibration produces Virtex-7-plausible numbers.
	for _, r := range []Report{fixedRep(8, 4), floatRep(4, 3), positRep(8, 1)} {
		if r.FMaxMHz < 100 || r.FMaxMHz > 800 {
			t.Errorf("%s: fmax %.0f MHz implausible", r.Name, r.FMaxMHz)
		}
		if r.LUTs < 10 || r.LUTs > 5000 {
			t.Errorf("%s: LUTs %.0f implausible", r.Name, r.LUTs)
		}
		if r.DynPowerW <= 0 || r.DynPowerW > 1 {
			t.Errorf("%s: power %.3g W implausible", r.Name, r.DynPowerW)
		}
	}
}

func TestNetworkCost(t *testing.T) {
	r := positRep(8, 0)
	// a 2-layer net: fanin 30 and 16, widths 16 and 2
	c := NetworkCost(r, []int{30, 16}, []int{16, 2})
	if c.Cycles != 30+PipelineDepth+16+PipelineDepth {
		t.Errorf("cycles = %d", c.Cycles)
	}
	if c.TotalEMACs != 18 {
		t.Errorf("EMACs = %d", c.TotalEMACs)
	}
	if c.LatencyNs <= 0 || c.EnergyJ <= 0 || c.EDP <= 0 {
		t.Error("non-positive cost")
	}
	// deeper net costs more
	c2 := NetworkCost(r, []int{30, 16, 16}, []int{16, 16, 2})
	if c2.LatencyNs <= c.LatencyNs || c2.EnergyJ <= c.EnergyJ {
		t.Error("larger net must cost more")
	}
}

func TestNetworkCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	NetworkCost(fixedRep(8, 4), []int{1, 2}, []int{1})
}

func TestLatencyClaimPositVsFloat(t *testing.T) {
	// The paper's conclusion: "posit outperforms in accuracy and latency
	// at 8-bit and below" (vs float). Inference latency at matched k.
	po := NetworkCost(positRep(8, 0), []int{30, 16}, []int{16, 2})
	fl := NetworkCost(floatRep(4, 3), []int{30, 16}, []int{16, 2})
	if po.LatencyNs > fl.LatencyNs {
		t.Errorf("posit(8,0) latency %.1fns should not exceed float(4,3) %.1fns",
			po.LatencyNs, fl.LatencyNs)
	}
}

func TestStageBreakdownPopulated(t *testing.T) {
	po := positRep(8, 1)
	if po.StageDecodeNs <= 0 || po.StageMulNs <= 0 || po.StageAccNs <= 0 || po.StageRoundNs <= 0 {
		t.Error("posit stages must all be positive")
	}
	fx := fixedRep(8, 4)
	if fx.StageDecodeNs != 0 {
		t.Error("fixed has no decode stage")
	}
}
