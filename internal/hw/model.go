// Package hw is an analytical FPGA implementation-cost model standing in
// for the paper's Vivado 2017.2 synthesis runs on a Xilinx Virtex-7
// (xc7vx485t-2). The paper's hardware results — Fig. 6 (dynamic range vs
// fmax), Fig. 7 (n vs EDP), Fig. 8 (n vs LUTs) and the EDP axis of
// Fig. 9 — are *relative* comparisons of the three EMACs at equal bit
// width; this model reproduces them by costing the exact same datapath
// decomposition the RTL uses:
//
//	fixed  (Fig. 3): multiplier → wide adder → shift/clip
//	float  (Fig. 4): subnormal detect + multiplier + exponent add →
//	                 2's comp + barrel shift + wide add → LZD +
//	                 normalise + round + clip
//	posit  (Fig. 5): 2× decode (2's comp, LZD, shift) + multiplier +
//	                 scale-factor add → 2's comp + barrel shift + wide
//	                 add (quire) → LZD + shift + round + encode
//
// Register widths come from the paper's eq. (3) and eq. (4) exactly; the
// technology constants are calibrated once (Virtex-7-plausible LUT, carry
// and DSP delays) and shared by all three formats, so the orderings and
// growth trends the figures show are architectural, not fitted per point.
package hw

import (
	"fmt"
	"math"

	"repro/internal/bitutil"
	"repro/internal/fixedpoint"
	"repro/internal/minifloat"
	"repro/internal/posit"
)

// Tech holds the technology calibration constants.
type Tech struct {
	// LUTDelayNs is the delay of one LUT6 logic level including local
	// routing.
	LUTDelayNs float64
	// CarryPerBitNs is the incremental carry-chain delay per bit.
	CarryPerBitNs float64
	// AdderBaseNs is the fixed overhead of entering/leaving a carry chain.
	AdderBaseNs float64
	// DSPMulDelayNs is the pipelined DSP48 multiply stage delay (the
	// paper targets DSP48 slices and optimises for latency).
	DSPMulDelayNs float64
	// RegOverheadNs is flip-flop setup plus clock-to-Q, added to the
	// critical stage.
	RegOverheadNs float64
	// DynPowerPerCellHz converts (effective cells × fclk) to dynamic
	// watts; an activity-weighted capacitance constant.
	DynPowerPerCellHz float64
	// DSPCellEquiv counts a DSP48 as this many effective cells for power.
	DSPCellEquiv float64
}

// Virtex7 is the calibration used throughout the experiments, chosen to
// give Virtex-7-plausible absolute numbers (hundreds of MHz, hundreds of
// LUTs) for 5-8 bit EMACs.
var Virtex7 = Tech{
	LUTDelayNs:        0.45,
	CarryPerBitNs:     0.015,
	AdderBaseNs:       0.40,
	DSPMulDelayNs:     1.80,
	RegOverheadNs:     0.35,
	DynPowerPerCellHz: 3.0e-15,
	DSPCellEquiv:      30,
}

// levels4 returns the number of LUT6 tree levels needed to cover w bits
// with 4-to-1 reduction per level (barrel-shifter stages pack two 2:1 mux
// layers per LUT6; LZD trees reduce ~4 bits per level).
func levels4(w uint) float64 {
	if w <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(w)) / 2)
}

// delayAdder models a carry-chain adder of width w.
func (t Tech) delayAdder(w uint) float64 { return t.AdderBaseNs + t.CarryPerBitNs*float64(w) }

// delayShifter models a barrel shifter of width w.
func (t Tech) delayShifter(w uint) float64 { return t.LUTDelayNs * levels4(w) }

// delayLZD models a leading-zero detector of width w.
func (t Tech) delayLZD(w uint) float64 { return t.LUTDelayNs * levels4(w) }

// delayMul models the DSP-mapped multiplier for m-bit operands.
func (t Tech) delayMul(m uint) float64 {
	d := t.DSPMulDelayNs
	if m > 18 { // cascaded DSPs past the native width
		d += t.DSPMulDelayNs * 0.6 * math.Ceil(float64(m-18)/17)
	}
	return d
}

// LUT-count helpers (effective LUT6 counts).
func lutsAdder(w uint) float64   { return float64(w) }
func lutsShifter(w uint) float64 { return float64(w) * levels4(w) / 2 }
func lutsLZD(w uint) float64     { return float64(w) * 0.75 }
func lutsMux(w uint) float64     { return float64(w) / 2 }

// Report is one synthesized EMAC configuration — the row format shared by
// the Fig. 6/7/8 harnesses.
type Report struct {
	Name       string  // e.g. "posit(8,1)"
	Family     string  // "fixed" | "float" | "posit"
	N          uint    // storage width of weights/activations
	K          int     // dot-product length the accumulator is sized for
	AccumWidth uint    // eq. (3) / eq. (4) register width
	DynRange   float64 // log10(max/min)

	LUTs float64
	FFs  float64
	DSPs int

	StageDecodeNs float64 // posit only (0 otherwise)
	StageMulNs    float64
	StageAccNs    float64
	StageRoundNs  float64

	CriticalNs float64
	FMaxMHz    float64
	DynPowerW  float64
	EnergyOpJ  float64 // energy per MAC cycle
	EDP        float64 // energy × delay per MAC cycle (J·s)
}

func (t Tech) finish(r *Report) {
	// The paper pipelines the multiply and accumulate stages with a D
	// flip-flop and "delays rounding to a post-summation stage": fmax is
	// bounded by the per-cycle stages (decode, multiply, accumulate).
	// The rounding/encode path fires once per dot product and can take a
	// multi-cycle slot, so it contributes area and energy but not fmax.
	crit := math.Max(math.Max(r.StageDecodeNs, r.StageMulNs), r.StageAccNs) + t.RegOverheadNs
	r.CriticalNs = crit
	r.FMaxMHz = 1e3 / crit
	f := r.FMaxMHz * 1e6
	cells := r.LUTs + r.FFs/2 + float64(r.DSPs)*t.DSPCellEquiv
	r.DynPowerW = t.DynPowerPerCellHz * cells * f
	period := crit * 1e-9
	r.EnergyOpJ = r.DynPowerW * period
	r.EDP = r.EnergyOpJ * period
}

// SynthFixed costs the fixed-point EMAC of Fig. 3.
func (t Tech) SynthFixed(f fixedpoint.Format, k int) Report {
	n := f.N()
	wa := fixedpoint.AccumSize(f, k)
	r := Report{
		Name:       f.String(),
		Family:     "fixed",
		N:          n,
		K:          k,
		AccumWidth: wa,
		DynRange:   f.DynamicRangeLog10(),
		DSPs:       1,
	}
	// Stage 1: n×n multiply (operands padded to 2n internally).
	r.StageMulNs = t.delayMul(n)
	// Stage 2: wa-bit accumulate.
	r.StageAccNs = t.delayAdder(wa)
	// Stage 3: fixed shift (wiring) + clip mux.
	r.StageRoundNs = t.LUTDelayNs + t.delayAdder(n)*0.5
	r.LUTs = lutsAdder(wa) + lutsMux(n) /*clip*/ + float64(n) /*pad/ctl*/
	r.FFs = float64(wa) + 3*float64(n)
	t.finish(&r)
	return r
}

// SynthFloat costs the floating-point EMAC of Fig. 4.
func (t Tech) SynthFloat(f minifloat.Format, k int) Report {
	n := f.N()
	we, wf := f.WE(), f.WF()
	wa := minifloat.AccumSize(f, k)
	r := Report{
		Name:       f.String(),
		Family:     "float",
		N:          n,
		K:          k,
		AccumWidth: wa,
		DynRange:   f.DynamicRangeLog10(),
		DSPs:       1,
	}
	prodW := 2 * (wf + 1)
	// Stage 1: subnormal detect (one level) feeds the multiplier;
	// exponent adder runs in parallel and is narrower.
	r.StageMulNs = t.LUTDelayNs + t.delayMul(wf+1)
	// Stage 2: shift-amount compute (Fig. 4 shifts by S-3, with S the
	// registered exponent sum — unlike the posit EMAC, which pre-biases
	// its scale factor in Alg. 2 line 12 precisely "to avoid using
	// multiple shifters"), product 2's complement, barrel shift into the
	// register, wide add.
	r.StageAccNs = t.delayAdder(we+2)*0.5 + t.delayAdder(prodW)*0.5 +
		t.delayShifter(wa) + t.delayAdder(wa)
	// Stage 3: inverse 2's complement + LZD + normalise shift + RNE
	// round + subnormal/clip handling.
	r.StageRoundNs = t.delayLZD(wa) + t.delayShifter(wa) + t.delayAdder(n) + t.LUTDelayNs
	r.LUTs = float64(we)*2 + /* subnormal detect, both inputs */
		2*lutsAdder(we+1) + /* exponent add, bias */
		lutsAdder(prodW)/2 + /* product 2's comp */
		lutsShifter(wa) + lutsAdder(wa) +
		lutsLZD(wa) + lutsShifter(wa)/2 + /* normalise (narrower out) */
		lutsAdder(n) + lutsMux(n) /* round + clip */
	r.FFs = float64(wa) + 3*float64(n)
	t.finish(&r)
	return r
}

// SynthPosit costs the posit EMAC of Fig. 5 with the quire of eq. (4).
func (t Tech) SynthPosit(f posit.Format, k int) Report {
	n, es := f.N(), f.ES()
	qs := posit.QuireSize(f, k)
	r := Report{
		Name:       f.String(),
		Family:     "posit",
		N:          n,
		K:          k,
		AccumWidth: qs,
		DynRange:   f.DynamicRangeLog10(),
		DSPs:       1,
	}
	fracW := n - 2 - es // max significand width (hidden bit included)
	if es+3 > n {
		fracW = 1
	}
	prodW := 2 * fracW
	sfW := es + bitutil.Clog2(uint64(n)) + 2
	// Stage 0 (decode, its own pipeline stage per Fig. 5): input 2's
	// complement + regime LZD + shift-out-regime; both operands decoded
	// in parallel.
	r.StageDecodeNs = t.delayAdder(n)*0.5 + t.delayLZD(n) + t.delayShifter(n)
	// Stage 1: fraction multiply + scale-factor add (parallel, narrower).
	r.StageMulNs = t.delayMul(fracW)
	// Stage 2: product 2's comp + shift into quire + wide add.
	r.StageAccNs = t.delayAdder(prodW)*0.5 + t.delayShifter(qs) + t.delayAdder(qs)
	// Stage 3: quire 2's comp + LZD + shift + convergent round + encode
	// (regime shifter + increment).
	r.StageRoundNs = t.delayLZD(qs) + t.delayShifter(qs) + t.delayAdder(n) + t.delayShifter(n)*0.5 + t.LUTDelayNs
	r.LUTs = 2*(lutsAdder(n)/2+lutsLZD(n)+lutsShifter(n)) + /* two decoders */
		lutsAdder(sfW)*2 + /* scale-factor adds incl. bias */
		lutsAdder(prodW)/2 + /* product 2's comp */
		lutsShifter(qs) + lutsAdder(qs) + /* quire convert + add */
		lutsLZD(qs) + lutsShifter(qs)/2 + /* extraction */
		lutsAdder(n) + lutsShifter(n) + lutsMux(n) /* round + encode */
	r.FFs = float64(qs) + 4*float64(n)
	t.finish(&r)
	return r
}

// InferenceCost extends a per-EMAC report to a whole Deep Positron
// network: each layer owns one EMAC per neuron (dedicated units with
// local memory, per §III-E), layers stream sequentially, and a layer with
// fanin k needs k+pipeline cycles per input.
type InferenceCost struct {
	Report      Report
	TotalEMACs  int
	Cycles      int
	LatencyNs   float64
	TotalPowerW float64
	EnergyJ     float64 // per inference
	EDP         float64 // energy × latency per inference
}

// PipelineDepth is the EMAC pipeline depth in cycles (decode/mult/acc/
// round stages).
const PipelineDepth = 4

// NetworkCost estimates inference latency/energy for layer fan-ins
// (layerK[i] = inputs of layer i) and widths (neurons per layer).
func NetworkCost(r Report, layerK, layerN []int) InferenceCost {
	if len(layerK) != len(layerN) {
		panic("hw: layer shape mismatch")
	}
	c := InferenceCost{Report: r}
	for i := range layerK {
		c.Cycles += layerK[i] + PipelineDepth
		c.TotalEMACs += layerN[i]
	}
	c.LatencyNs = float64(c.Cycles) * r.CriticalNs
	c.TotalPowerW = r.DynPowerW * float64(c.TotalEMACs)
	c.EnergyJ = c.TotalPowerW * c.LatencyNs * 1e-9
	c.EDP = c.EnergyJ * c.LatencyNs * 1e-9
	return c
}

// String renders a report row.
func (r Report) String() string {
	return fmt.Sprintf("%-16s n=%2d k=%3d acc=%4d dyn=%6.2f LUT=%6.0f fmax=%6.1fMHz EDP=%.3g",
		r.Name, r.N, r.K, r.AccumWidth, r.DynRange, r.LUTs, r.FMaxMHz, r.EDP)
}
