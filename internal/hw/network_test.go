package hw

import (
	"strings"
	"testing"
)

func TestPipelineAblation(t *testing.T) {
	// Removing the multiply/accumulate D flip-flop must reduce fmax for
	// every format — the paper's stated reason for inserting it.
	for _, r := range []Report{fixedRep(8, 4), floatRep(4, 3), positRep(8, 1)} {
		up := Virtex7.UnpipelinedFMaxMHz(r)
		if up >= r.FMaxMHz {
			t.Errorf("%s: unpipelined fmax %.0f >= pipelined %.0f", r.Name, up, r.FMaxMHz)
		}
		if s := Virtex7.PipelineSpeedup(r); s <= 1 {
			t.Errorf("%s: speedup %.2f", r.Name, s)
		}
	}
	// posit gains the most (it has the extra decode stage to hide)
	sp := Virtex7.PipelineSpeedup(positRep(8, 1))
	sf := Virtex7.PipelineSpeedup(fixedRep(8, 4))
	if sp <= sf {
		t.Errorf("posit speedup %.2f should exceed fixed %.2f", sp, sf)
	}
}

func TestSynthesizeNetworkWBCShape(t *testing.T) {
	// The WBC topology: 30-16-8-2.
	r := positRep(8, 1)
	n := SynthesizeNetwork(r, []int{30, 16, 8}, []int{16, 8, 2}, 8)
	if n.TotalEMACs != 26 {
		t.Errorf("EMACs = %d", n.TotalEMACs)
	}
	if n.LatencyCycles != (30+4)+(16+4)+(8+4) {
		t.Errorf("latency cycles = %d", n.LatencyCycles)
	}
	if n.SteadyCycles != 34 {
		t.Errorf("steady cycles = %d", n.SteadyCycles)
	}
	// params = 30*16+16 + 16*8+8 + 8*2+2 = 496+136+18 = 650 × 8 bits
	if n.MemoryBits != 650*8 {
		t.Errorf("memory bits = %d", n.MemoryBits)
	}
	if n.BRAM36 != 1 {
		t.Errorf("BRAM36 = %d", n.BRAM36)
	}
	if !n.FitsVirtex7() {
		t.Error("a 26-EMAC net must fit the paper's device")
	}
	if !strings.Contains(n.String(), "EMACs") {
		t.Error("String rendering")
	}
}

func TestNetworkThroughputVsLatency(t *testing.T) {
	r := fixedRep(8, 4)
	n := SynthesizeNetwork(r, []int{117, 32}, []int{32, 2}, 8)
	// Streaming must beat 1/latency.
	serialKIPS := 1e6 / n.LatencyNs
	if n.ThroughputKIPS <= serialKIPS {
		t.Errorf("streaming throughput %.1f <= serial %.1f", n.ThroughputKIPS, serialKIPS)
	}
}

func TestNetworkScalingMonotone(t *testing.T) {
	r := positRep(8, 0)
	small := SynthesizeNetwork(r, []int{4, 10, 6}, []int{10, 6, 3}, 8)
	big := SynthesizeNetwork(r, []int{117, 32}, []int{32, 2}, 8)
	if big.TotalLUTs <= small.TotalLUTs || big.EnergyPerInfJ <= small.EnergyPerInfJ {
		t.Error("bigger network must cost more")
	}
}

func TestMemoryAdvantage32vs8(t *testing.T) {
	// The related-work claim (posits need ~4x less weight memory than
	// 32-bit formats) falls straight out of the storage model.
	r8 := positRep(8, 1)
	n8 := SynthesizeNetwork(r8, []int{30, 16, 8}, []int{16, 8, 2}, 8)
	n32 := SynthesizeNetwork(r8, []int{30, 16, 8}, []int{16, 8, 2}, 32)
	if n32.MemoryBits != 4*n8.MemoryBits {
		t.Errorf("32-bit storage %d != 4x 8-bit %d", n32.MemoryBits, n8.MemoryBits)
	}
}

func TestNetworkShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	SynthesizeNetwork(fixedRep(8, 4), []int{1}, []int{1, 2}, 8)
}
