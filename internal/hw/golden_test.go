package hw

// Golden tests pin the calibrated model outputs. The experiment tables in
// EXPERIMENTS.md quote these numbers; if a calibration constant changes,
// these tests fail loudly so the documentation is updated deliberately
// rather than drifting silently.

import (
	"fmt"
	"math"
	"testing"
)

func TestGoldenReports(t *testing.T) {
	golden := []struct {
		rep     Report
		accum   uint
		luts    float64
		fmaxMHz float64
	}{
		{fixedRep(8, 4), 21, 33, 465.1},
		{floatRep(4, 3), 41, 198, 310.6},
		{floatRep(3, 4), 27, 139, 331.4},
		{positRep(8, 0), 31, 196, 350.3},
		{positRep(8, 1), 55, 293, 312.5},
		{positRep(8, 2), 103, 563, 229.6},
	}
	for _, g := range golden {
		if g.rep.AccumWidth != g.accum {
			t.Errorf("%s: accumulator %d want %d", g.rep.Name, g.rep.AccumWidth, g.accum)
		}
		if math.Abs(g.rep.LUTs-g.luts) > 1.0 {
			t.Errorf("%s: LUTs %.1f want %.1f (calibration drifted — update EXPERIMENTS.md)",
				g.rep.Name, g.rep.LUTs, g.luts)
		}
		if math.Abs(g.rep.FMaxMHz-g.fmaxMHz) > 0.5 {
			t.Errorf("%s: fmax %.1f want %.1f (calibration drifted — update EXPERIMENTS.md)",
				g.rep.Name, g.rep.FMaxMHz, g.fmaxMHz)
		}
	}
}

func TestGoldenDynamicRanges(t *testing.T) {
	// Dynamic ranges are format properties (not calibration): exact.
	cases := map[string]float64{
		fmt.Sprint(positRep(8, 0).Name): 3.6124,
		fmt.Sprint(positRep(8, 1).Name): 7.2247,
		fmt.Sprint(positRep(8, 2).Name): 14.4494,
		fmt.Sprint(floatRep(4, 3).Name): 5.0895,
		fmt.Sprint(fixedRep(8, 4).Name): 2.1038,
	}
	for _, r := range []Report{positRep(8, 0), positRep(8, 1), positRep(8, 2), floatRep(4, 3), fixedRep(8, 4)} {
		want := cases[r.Name]
		if math.Abs(r.DynRange-want) > 5e-4 {
			t.Errorf("%s: dynamic range %.4f want %.4f", r.Name, r.DynRange, want)
		}
	}
}
