package hw

import (
	"fmt"
	"math"
)

// UnpipelinedCritical returns the critical path the EMAC would have
// WITHOUT the D flip-flop between the multiplication and accumulation
// stages — the ablation for the paper's explicit design choice ("To
// improve the maximum operating frequency via pipelining, a D flip-flop
// separates the multiplication and accumulation stages").
func (t Tech) UnpipelinedCritical(r Report) float64 {
	return r.StageDecodeNs + r.StageMulNs + r.StageAccNs + t.RegOverheadNs
}

// UnpipelinedFMaxMHz is the ablated clock rate.
func (t Tech) UnpipelinedFMaxMHz(r Report) float64 {
	return 1e3 / t.UnpipelinedCritical(r)
}

// PipelineSpeedup reports fmax(pipelined) / fmax(unpipelined) — how much
// the inter-stage register buys.
func (t Tech) PipelineSpeedup(r Report) float64 {
	return t.UnpipelinedCritical(r) / r.CriticalNs
}

// NetworkReport is the full-accelerator resource estimate for one Deep
// Positron instance: every neuron owns an EMAC, every layer owns local
// weight/bias memory (§III-E "dedicated EMAC units with local memory
// blocks"), and a control FSM sequences the layers.
type NetworkReport struct {
	EMAC        Report
	LayerFanin  []int
	LayerWidth  []int
	TotalEMACs  int
	TotalLUTs   float64
	TotalFFs    float64
	TotalDSPs   int
	MemoryBits  int     // on-chip parameter storage
	BRAM36      int     // 36Kb block RAM equivalents
	ControlLUTs float64 // FSM + activation-steering overhead

	LatencyCycles  int     // single-inference latency
	LatencyNs      float64 //
	SteadyCycles   int     // streaming initiation interval
	ThroughputKIPS float64 // thousand inferences/s at fmax, streaming
	DynPowerW      float64
	EnergyPerInfJ  float64
	EDPPerInf      float64
}

// SynthesizeNetwork combines a per-EMAC report with a network shape.
// Latency follows the streaming schedule verified by core's cycle
// simulator: Σ(fanin+depth) for one inference, max(fanin+depth)
// initiation interval when streaming.
func SynthesizeNetwork(r Report, fanin, width []int, bitWidth uint) NetworkReport {
	if len(fanin) != len(width) {
		panic("hw: network shape mismatch")
	}
	n := NetworkReport{EMAC: r, LayerFanin: fanin, LayerWidth: width}
	params := 0
	bottleneck := 0
	for i := range fanin {
		n.TotalEMACs += width[i]
		params += fanin[i]*width[i] + width[i]
		cycles := fanin[i] + PipelineDepth
		n.LatencyCycles += cycles
		if cycles > bottleneck {
			bottleneck = cycles
		}
	}
	n.SteadyCycles = bottleneck
	n.TotalLUTs = r.LUTs * float64(n.TotalEMACs)
	n.TotalFFs = r.FFs * float64(n.TotalEMACs)
	n.TotalDSPs = r.DSPs * n.TotalEMACs
	n.MemoryBits = params * int(bitWidth)
	n.BRAM36 = (n.MemoryBits + 36*1024 - 1) / (36 * 1024)
	// control: one small FSM per layer plus activation steering muxes
	n.ControlLUTs = 0
	for i := range fanin {
		n.ControlLUTs += 20 + float64(width[i])/2
	}
	n.TotalLUTs += n.ControlLUTs

	n.LatencyNs = float64(n.LatencyCycles) * r.CriticalNs
	if bottleneck > 0 {
		n.ThroughputKIPS = 1e6 / (float64(bottleneck) * r.CriticalNs)
	}
	n.DynPowerW = r.DynPowerW * float64(n.TotalEMACs)
	n.EnergyPerInfJ = n.DynPowerW * n.LatencyNs * 1e-9
	n.EDPPerInf = n.EnergyPerInfJ * n.LatencyNs * 1e-9
	return n
}

// String renders a one-line summary.
func (n NetworkReport) String() string {
	return fmt.Sprintf("%s net: %d EMACs, %.0f LUTs, %d DSP, %d BRAM36, latency %.0fns, %.1f kinf/s, %.3g J/inf",
		n.EMAC.Name, n.TotalEMACs, n.TotalLUTs, n.TotalDSPs, n.BRAM36,
		n.LatencyNs, n.ThroughputKIPS, n.EnergyPerInfJ)
}

// FitsVirtex7 checks the instance against the paper's device
// (xc7vx485t: 303,600 LUTs, 2,800 DSP48, 1,030 BRAM36).
func (n NetworkReport) FitsVirtex7() bool {
	return n.TotalLUTs <= 303600 &&
		n.TotalDSPs <= 2800 &&
		n.BRAM36 <= 1030 &&
		!math.IsNaN(n.TotalLUTs)
}
