package core

// The model-plane abstraction. Network (uniform precision) and
// MixedNetwork (per-layer precision) are two parameterisations of the
// same accelerator architecture; Model is the surface the execution
// plane, the serialiser and the serving stack program against, so a
// batch engine or an HTTP daemon works identically over either. The
// paper's precision-adaptable EMACs are exactly why this split exists:
// which formats a deployment picked is a property of the artifact, not
// of the serving code.

import (
	"repro/internal/datasets"
	"repro/internal/emac"
)

// Inferer is one execution plane over an immutable model: the common
// surface of Session and MixedSession. An Inferer serves one goroutine;
// build one per goroutine via Model.NewInferer.
type Inferer interface {
	// Infer runs one input and returns freshly allocated decoded logits.
	Infer(x []float64) []float64
	// InferInto runs one input, decoding the logits into dst (which must
	// have the model's output width), and returns dst. With the session's
	// internal buffers warm this path allocates nothing.
	InferInto(dst []float64, x []float64) []float64
	// InferBatchInto runs a whole flush of inputs through the fused
	// batched layer kernels, decoding the logits into the flat
	// sample-major dst (len(xs) × the model's output width), and returns
	// dst. Results are bit-identical to per-sample InferInto; with the
	// session's planes warm this path allocates nothing.
	InferBatchInto(dst []float64, xs [][]float64) []float64
	// Predict returns the argmax class for one input.
	Predict(x []float64) int
	// Accuracy evaluates classification accuracy on a dataset.
	Accuracy(ds *datasets.Dataset) float64
}

// Model is the immutable model plane shared by any number of Inferers:
// topology, quantised parameters, the arithmetic of every layer and the
// optional input standardizer. *Network and *MixedNetwork implement it.
type Model interface {
	// NewInferer builds an independent execution plane. Any number of
	// Inferers may run concurrently over one Model.
	NewInferer() Inferer
	// Kind is the artifact kind: "uniform" or "mixed".
	Kind() string
	// InputDim is the feature width the model consumes.
	InputDim() int
	// OutputDim is the number of output logits.
	OutputDim() int
	// NumLayers is the layer count.
	NumLayers() int
	// Ariths returns the arithmetic of every layer (uniform models repeat
	// their single arithmetic).
	Ariths() []emac.Arithmetic
	// ArithNames returns the per-layer arithmetic descriptors, e.g.
	// "posit(8,0)".
	ArithNames() []string
	// Standardizer returns the folded input standardizer, or nil when the
	// model consumes raw features directly.
	Standardizer() *datasets.Standardizer
	// MemoryBits is the on-chip parameter storage the model needs.
	MemoryBits() int
	// Save writes the versioned JSON deployment artifact.
	Save(path string) error
	String() string
}

// compile-time checks that both network kinds satisfy the interfaces.
var (
	_ Model   = (*Network)(nil)
	_ Model   = (*MixedNetwork)(nil)
	_ Inferer = (*Session)(nil)
	_ Inferer = (*MixedSession)(nil)
)
