package core

import (
	"testing"

	"repro/internal/emac"
)

func TestStreamInferMatchesInfer(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	inputs := test.X[:20]
	outs, stats, _ := q.StreamInfer(inputs, false)
	if len(outs) != 20 {
		t.Fatalf("%d outputs", len(outs))
	}
	for i, x := range inputs {
		want := q.Infer(x)
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("input %d logit %d: stream %g vs direct %g", i, j, outs[i][j], want[j])
			}
		}
	}
	if stats.Inputs != 20 || stats.TotalCycles <= 0 {
		t.Errorf("stats: %+v", stats)
	}
}

func TestStreamLatencyMatchesAnalyticalModel(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	// Single input: latency = Σ(fanin + depth) = Cycles().
	_, stats, _ := q.StreamInfer(test.X[:1], false)
	if stats.FirstLatency != q.Cycles() {
		t.Errorf("first latency %d != analytical %d", stats.FirstLatency, q.Cycles())
	}
}

func TestStreamSteadyStateThroughput(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	// Many inputs: the initiation interval must equal the bottleneck
	// layer's cycle count (streaming overlaps layers across inputs).
	_, stats, _ := q.StreamInfer(test.X[:30], false)
	bott := q.BottleneckCycles()
	if stats.SteadyInterval != bott {
		t.Errorf("steady interval %d != bottleneck %d", stats.SteadyInterval, bott)
	}
	// Throughput strictly better than serial execution.
	serialCycles := q.Cycles() * stats.Inputs
	if stats.TotalCycles >= serialCycles {
		t.Errorf("streaming (%d cycles) no better than serial (%d)", stats.TotalCycles, serialCycles)
	}
	t.Logf("30 inferences: %d cycles streaming vs %d serial (%.1fx)",
		stats.TotalCycles, serialCycles, float64(serialCycles)/float64(stats.TotalCycles))
}

func TestStreamTrace(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	_, _, events := q.StreamInfer(test.X[:3], true)
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	// FSM sanity: every layer that goes busy later goes done, and tags
	// move monotonically through layer 0.
	var lastTag0 = -1
	for _, e := range events {
		if e.Layer == 0 && e.State == "busy" {
			if e.Tag != lastTag0+1 {
				t.Fatalf("layer 0 accepted tag %d after %d", e.Tag, lastTag0)
			}
			lastTag0 = e.Tag
		}
	}
	if lastTag0 != 2 {
		t.Errorf("layer 0 processed up to tag %d, want 2", lastTag0)
	}
	// cycles non-decreasing
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatal("trace out of order")
		}
	}
}

func TestStreamEmptyInput(t *testing.T) {
	net, _ := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	outs, stats, events := q.StreamInfer(nil, true)
	if outs != nil || stats.Inputs != 0 || events != nil {
		t.Error("empty stream must be a no-op")
	}
}

func TestStreamAccuracyUnchanged(t *testing.T) {
	// End to end: streaming over the full Iris test split classifies
	// identically to per-sample inference.
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{emac.NewPosit(8, 1), emac.NewFixed(8, 4)} {
		q := Quantize(net, a)
		outs, _, _ := q.StreamInfer(test.X, false)
		correct := 0
		for i := range outs {
			best := 0
			for j := range outs[i] {
				if outs[i][j] > outs[i][best] {
					best = j
				}
			}
			if best == test.Y[i] {
				correct++
			}
		}
		if got, want := float64(correct)/float64(test.Len()), q.Accuracy(test); got != want {
			t.Errorf("%s: streamed accuracy %.3f != direct %.3f", a.Name(), got, want)
		}
	}
}
