package core

import (
	"testing"

	"repro/internal/emac"
)

func TestMixedUniformMatchesPlain(t *testing.T) {
	// A mixed network with the same arithmetic everywhere must classify
	// identically to the plain quantised network.
	net, test := trainedIris(t)
	a := emac.NewPosit(8, 1)
	plain := Quantize(net, a)
	mixed := QuantizeMixed(net, []emac.Arithmetic{a, a, a})
	for i := range test.X {
		pa := plain.Infer(test.X[i])
		mb := mixed.Infer(test.X[i])
		for j := range pa {
			if pa[j] != mb[j] {
				t.Fatalf("sample %d logit %d: plain %g mixed %g", i, j, pa[j], mb[j])
			}
		}
	}
}

func TestMixedFormatsConvert(t *testing.T) {
	net, test := trainedIris(t)
	// 8-bit first layer, 6-bit middle, 8-bit readout: must still work
	// and stay well above chance.
	mixed := QuantizeMixed(net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewPosit(6, 0), emac.NewPosit(8, 0),
	})
	if acc := mixed.Accuracy(test); acc < 0.7 {
		t.Errorf("mixed accuracy %.3f", acc)
	}
	// cross-family mixing works too
	hetero := QuantizeMixed(net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	})
	if acc := hetero.Accuracy(test); acc < 0.7 {
		t.Errorf("heterogeneous accuracy %.3f", acc)
	}
}

func TestMixedMemorySavings(t *testing.T) {
	net, _ := trainedIris(t)
	uniform := QuantizeMixed(net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewPosit(8, 0), emac.NewPosit(8, 0),
	})
	slim := QuantizeMixed(net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewPosit(5, 0), emac.NewPosit(5, 0),
	})
	if slim.MemoryBits() >= uniform.MemoryBits() {
		t.Error("narrower layers must save memory")
	}
}

func TestMixedValidation(t *testing.T) {
	net, _ := trainedIris(t)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity must panic")
		}
	}()
	QuantizeMixed(net, []emac.Arithmetic{emac.NewPosit(8, 0)})
}

func TestMixedString(t *testing.T) {
	net, _ := trainedIris(t)
	m := QuantizeMixed(net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewPosit(6, 1), emac.NewPosit(8, 0),
	})
	want := "DeepPositron[posit(8,0)|posit(6,1)|posit(8,0)]"
	if m.String() != want {
		t.Errorf("String = %s", m.String())
	}
}

func TestSearchPerLayerFixedNotWorse(t *testing.T) {
	// Coordinate descent on per-layer q must never end below the best
	// global q (it starts there).
	net, test := trainedIris(t)
	_, _, fixeds := Candidates(8)
	global := Best(net, test, fixeds)
	mixed, qs := SearchPerLayerFixed(net, test, 8)
	if len(qs) != 3 {
		t.Fatalf("qs = %v", qs)
	}
	if acc := mixed.Accuracy(test); acc < global.Accuracy {
		t.Errorf("per-layer fixed %.3f below global %.3f", acc, global.Accuracy)
	} else {
		t.Logf("fixed(8): global %s %.3f -> per-layer q=%v %.3f",
			global.Arith.Name(), global.Accuracy, qs, acc)
	}
}
