package core

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/dyadic"
	"repro/internal/emac"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/rng"
)

// trainedIris returns a small trained float network and its test split
// (cached across tests in this package).
var cachedNet *nn.Network
var cachedTest *datasets.Dataset

func trainedIris(t *testing.T) (*nn.Network, *datasets.Dataset) {
	t.Helper()
	if cachedNet != nil {
		return cachedNet, cachedTest
	}
	train, test := datasets.IrisSplit(datasets.IrisSeed)
	strain, stest := datasets.Standardize(train, test)
	net := nn.NewMLP([]int{4, 10, 6, 3}, rng.New(7))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 60
	nn.Train(net, strain, cfg)
	cachedNet, cachedTest = net, stest
	return net, stest
}

func TestQuantizePreservesShape(t *testing.T) {
	net, _ := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	fanins, widths := q.Shape()
	if len(fanins) != 3 || fanins[0] != 4 || widths[2] != 3 {
		t.Fatalf("shape %v %v", fanins, widths)
	}
	if q.String() != "DeepPositron[posit(8,0): 4-10-6-3]" {
		t.Errorf("String = %s", q.String())
	}
}

func TestInferMatchesFloatReference(t *testing.T) {
	// With a high-precision posit format the quantised network must
	// agree with the float64 reference on (almost) every prediction.
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(24, 2))
	agree := 0
	for i := range test.X {
		if q.Predict(test.X[i]) == net.Predict(test.X[i]) {
			agree++
		}
	}
	if agree < test.Len()-1 {
		t.Errorf("posit(24,2) agrees on only %d/%d predictions", agree, test.Len())
	}
}

func TestAccuracy8BitPosit(t *testing.T) {
	net, test := trainedIris(t)
	ref := nn.Accuracy(net, test)
	q := Quantize(net, emac.NewPosit(8, 0))
	acc := q.Accuracy(test)
	if acc < ref-0.06 {
		t.Errorf("posit(8,0) accuracy %.3f dropped too far from %.3f", acc, ref)
	}
	t.Logf("Iris: float64 %.3f, posit(8,0) %.3f", ref, acc)
}

// TestEMACNeuronMatchesQuire cross-checks one neuron of the quantised
// network against a hand-built dyadic computation.
func TestEMACNeuronMatchesQuire(t *testing.T) {
	net, test := trainedIris(t)
	a := emac.NewPosit(8, 1)
	q := Quantize(net, a)
	layer := q.Layers[0]
	x := q.QuantizeInput(test.X[0])
	// neuron 0 by hand, exactly
	exact := dyadic.FromFloat64(a.Decode(layer.B[0]))
	for i, c := range x {
		w := dyadic.FromFloat64(a.Decode(layer.W[0][i]))
		v := dyadic.FromFloat64(a.Decode(c))
		exact = exact.Add(w.Mul(v))
	}
	want := a.Decode(a.Quantize(exact.Float64()))
	mac := a.NewMAC(layer.In)
	mac.Reset(layer.B[0])
	for i, c := range x {
		mac.Step(layer.W[0][i], c)
	}
	got := a.Decode(mac.Result())
	if got != want {
		t.Fatalf("neuron EMAC %g want %g", got, want)
	}
}

func TestCyclesAndMemory(t *testing.T) {
	net, _ := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	// 4-10-6-3: cycles = (4+4)+(10+4)+(6+4) = 32
	if got := q.Cycles(); got != 32 {
		t.Errorf("cycles = %d", got)
	}
	// params = 4*10+10 + 10*6+6 + 6*3+3 = 50+66+21 = 137; ×8 bits
	if got := q.MemoryBits(); got != 137*8 {
		t.Errorf("memory = %d bits", got)
	}
	// float32 costs 4× the memory of the 8-bit formats
	q32 := Quantize(net, emac.Float32Arith{})
	if q32.MemoryBits() != 4*q.MemoryBits() {
		t.Error("32-bit memory must be 4× the 8-bit memory")
	}
}

func TestPipelineDepthInSync(t *testing.T) {
	if pipelineDepth != hw.PipelineDepth {
		t.Fatalf("core pipelineDepth %d != hw.PipelineDepth %d", pipelineDepth, hw.PipelineDepth)
	}
}

func TestCandidates(t *testing.T) {
	posits, floats, fixeds := Candidates(8)
	if len(posits) != 4 { // es 0..3
		t.Errorf("posit candidates: %d", len(posits))
	}
	if len(floats) != 5 { // we 2..6
		t.Errorf("float candidates: %d", len(floats))
	}
	if len(fixeds) != 7 { // q 1..7
		t.Errorf("fixed candidates: %d", len(fixeds))
	}
	// n=5: posit es limited to {0,1,2} (es+3 <= n), float we {2,3}
	posits, floats, _ = Candidates(5)
	if len(posits) != 3 || len(floats) != 2 {
		t.Errorf("n=5 candidates: %d posits %d floats", len(posits), len(floats))
	}
}

func TestBestPerFamilyOrdering(t *testing.T) {
	net, test := trainedIris(t)
	fb := BestPerFamily(net, test, 8)
	// Every family's best must be within sane bounds.
	for _, r := range []Result{fb.Posit, fb.Float, fb.Fixed} {
		if r.Accuracy < 0.3 || r.Accuracy > 1 {
			t.Errorf("%s accuracy %.3f implausible", r.Arith.Name(), r.Accuracy)
		}
	}
	// Paper claim on Iris at 8 bits: posit matches or beats the other
	// families. This test trains a small throwaway network, so allow a
	// one-sample (2%) swing on the 50-sample inference split; the
	// full-strength assertion (with the tuned training recipe) lives in
	// internal/experiments.
	const oneSample = 0.0201
	if fb.Posit.Accuracy < fb.Float.Accuracy-oneSample {
		t.Errorf("posit %.3f < float %.3f on Iris at 8 bits",
			fb.Posit.Accuracy, fb.Float.Accuracy)
	}
	if fb.Posit.Accuracy < fb.Fixed.Accuracy-oneSample {
		t.Errorf("posit %.3f < fixed %.3f on Iris at 8 bits",
			fb.Posit.Accuracy, fb.Fixed.Accuracy)
	}
	t.Logf("Iris 8-bit best: posit %s %.3f | float %s %.3f | fixed %s %.3f",
		fb.Posit.Arith.Name(), fb.Posit.Accuracy,
		fb.Float.Arith.Name(), fb.Float.Accuracy,
		fb.Fixed.Arith.Name(), fb.Fixed.Accuracy)
}

func TestEvaluateSorted(t *testing.T) {
	net, test := trainedIris(t)
	posits, _, _ := Candidates(6)
	rs := Evaluate(net, test, posits)
	for i := 1; i < len(rs); i++ {
		if rs[i].Accuracy > rs[i-1].Accuracy {
			t.Fatal("Evaluate results must be sorted best-first")
		}
	}
}

func TestSigmoidActivation(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	q.Sigmoid = true
	// The net was trained with ReLU, so accuracy will differ — the
	// point is that the path works and stays in range.
	acc := q.Accuracy(test)
	if acc < 0 || acc > 1 {
		t.Fatalf("sigmoid accuracy %v", acc)
	}
	// Sigmoid with es!=0 must panic.
	q2 := Quantize(net, emac.NewPosit(8, 1))
	q2.Sigmoid = true
	defer func() {
		if recover() == nil {
			t.Fatal("sigmoid with es=1 must panic")
		}
	}()
	q2.Infer(test.X[0])
}

func TestInferPanicsOnBadInput(t *testing.T) {
	net, _ := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size must panic")
		}
	}()
	q.Infer([]float64{1, 2})
}

func TestFixedQSweepMatters(t *testing.T) {
	// Different q choices must produce different accuracies on Iris —
	// the reason the paper sweeps the parameter.
	net, test := trainedIris(t)
	_, _, fixeds := Candidates(8)
	rs := Evaluate(net, test, fixeds)
	if rs[0].Accuracy == rs[len(rs)-1].Accuracy {
		t.Skip("degenerate: all q equal on this seed")
	}
	if rs[0].Accuracy-rs[len(rs)-1].Accuracy < 0.02 {
		t.Logf("q sweep spread only %.3f", rs[0].Accuracy-rs[len(rs)-1].Accuracy)
	}
}

func TestQuantizedBetterThanChance(t *testing.T) {
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
		emac.Float32Arith{},
	} {
		q := Quantize(net, a)
		if acc := q.Accuracy(test); acc < 0.5 {
			t.Errorf("%s: accuracy %.3f below chance level", a.Name(), acc)
		}
	}
}

func TestFloat32MatchesNNForward32(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.Float32Arith{})
	for i := range test.X {
		a := q.Predict(test.X[i])
		b := net.Predict32(test.X[i])
		if a != b {
			// The two float32 paths round inputs at slightly different
			// points; allow only logit-tie level disagreement.
			la := q.Infer(test.X[i])
			lb := net.Forward32(test.X[i])
			diff := 0.0
			for k := range la {
				diff = math.Max(diff, math.Abs(la[k]-lb[k]))
			}
			if diff > 1e-5 {
				t.Fatalf("float32 paths diverge at %d: %v vs %v", i, la, lb)
			}
		}
	}
}
