// Package core implements Deep Positron (paper §III-E): a feed-forward
// DNN accelerator in which every layer owns dedicated exact
// multiply-and-accumulate units with local weight/bias memory, layers
// stream activations to one another under a control FSM, hidden layers
// apply ReLU and the readout layer is affine. The same architecture is
// instantiated for any emac.Arithmetic — posit, minifloat, fixed point or
// the float32 baseline — which is how the paper compares the three
// number systems at identical bit width.
//
// The package separates the model plane from the execution plane:
// Network/MixedNetwork/Layer hold only the immutable quantised
// parameters (the bitstream a Deep Positron deployment would flash), so
// one network can be shared by any number of goroutines; all mutable
// state — EMAC banks, pre-decoded layer kernels, activation scratch —
// lives in per-goroutine Session objects (see session.go). Network.Infer
// and friends remain as thin wrappers over a lazily-built default
// session for single-goroutine callers.
package core

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
)

// Layer is one Deep Positron layer's parameter memory: quantised weights
// and biases (the paper stores parameters on-chip next to the EMACs to
// avoid off-chip accesses). A Layer is immutable after construction; the
// EMAC units and batched kernels that execute it live in a Session.
type Layer struct {
	In, Out int
	// W[j][i] is the code of the weight from input i to neuron j.
	W [][]emac.Code
	B []emac.Code
}

// Network is a Deep Positron instance: the immutable model plane.
type Network struct {
	Arith  emac.Arithmetic
	Layers []*Layer
	// Sigmoid selects the posit fast-sigmoid activation instead of ReLU
	// on hidden layers (extension; requires a posit arithmetic with
	// es=0).
	Sigmoid bool
	// Stand, when non-nil, is a per-feature standardizer folded into the
	// deployment artifact: sessions standardize raw inputs with it before
	// quantising, so the served model consumes raw measurements.
	Stand *datasets.Standardizer
	// def is the lazily-built default session backing the Infer/Predict/
	// Accuracy convenience wrappers. Those wrappers are not safe for
	// concurrent use — concurrent callers build one Session each via
	// NewSession.
	def *Session
}

// Quantize lowers a trained float64 network into the target arithmetic.
// Every weight and bias is rounded once; activations are quantised on the
// fly by the EMAC result rounding, exactly as in the hardware.
func Quantize(src *nn.Network, a emac.Arithmetic) *Network {
	net := &Network{Arith: a}
	for _, l := range src.Layers {
		ql := &Layer{In: l.In, Out: l.Out}
		ql.W = make([][]emac.Code, l.Out)
		for j, row := range l.W {
			qrow := make([]emac.Code, l.In)
			for i, w := range row {
				qrow[i] = a.Quantize(w)
			}
			ql.W[j] = qrow
		}
		ql.B = make([]emac.Code, l.Out)
		for j, b := range l.B {
			ql.B[j] = a.Quantize(b)
		}
		net.Layers = append(net.Layers, ql)
	}
	return net
}

// QuantizeInput converts a raw feature vector into activation codes.
func (n *Network) QuantizeInput(x []float64) []emac.Code {
	codes := make([]emac.Code, len(x))
	for i, v := range x {
		codes[i] = n.Arith.Quantize(v)
	}
	return codes
}

// session returns the lazily-built default session.
func (n *Network) session() *Session {
	if n.def == nil {
		n.def = n.NewSession()
	}
	return n.def
}

// Infer runs one input through the network and returns the decoded output
// logits, via the default session. Not safe for concurrent use — build
// one Session per goroutine with NewSession for that.
func (n *Network) Infer(x []float64) []float64 { return n.session().Infer(x) }

// Predict returns the argmax class for one input (default session; not
// safe for concurrent use).
func (n *Network) Predict(x []float64) int { return n.session().Predict(x) }

// Accuracy evaluates classification accuracy on a dataset (default
// session; not safe for concurrent use).
func (n *Network) Accuracy(ds *datasets.Dataset) float64 { return n.session().Accuracy(ds) }

// activate applies the hidden-layer nonlinearity on a code.
func (n *Network) activate(c emac.Code) emac.Code {
	if n.Sigmoid {
		pa, ok := n.Arith.(emac.PositArith)
		if !ok || !pa.F.FastSigmoidValid() {
			panic("core: Sigmoid activation requires a posit arithmetic with es=0")
		}
		return emac.Code(pa.F.FromBits(uint64(c)).FastSigmoid().Bits())
	}
	return n.Arith.ReLU(c)
}

// NewInferer builds an independent execution plane (Model interface).
func (n *Network) NewInferer() Inferer { return n.NewSession() }

// Kind identifies the artifact kind (Model interface).
func (n *Network) Kind() string { return "uniform" }

// InputDim is the feature width the network consumes.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim is the number of output logits.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// NumLayers is the layer count.
func (n *Network) NumLayers() int { return len(n.Layers) }

// Ariths returns the (single) arithmetic repeated for every layer.
func (n *Network) Ariths() []emac.Arithmetic {
	out := make([]emac.Arithmetic, len(n.Layers))
	for i := range out {
		out[i] = n.Arith
	}
	return out
}

// ArithNames returns the per-layer arithmetic descriptors.
func (n *Network) ArithNames() []string {
	out := make([]string, len(n.Layers))
	for i := range out {
		out[i] = n.Arith.Name()
	}
	return out
}

// Standardizer returns the folded input standardizer, or nil.
func (n *Network) Standardizer() *datasets.Standardizer { return n.Stand }

// Shape returns the per-layer fan-ins and widths (for the hardware cost
// model).
func (n *Network) Shape() (fanins, widths []int) {
	for _, l := range n.Layers {
		fanins = append(fanins, l.In)
		widths = append(widths, l.Out)
	}
	return fanins, widths
}

// Cycles returns the streaming inference latency in EMAC cycles: each
// layer consumes fan-in cycles plus the pipeline depth before its
// successor may start (sequential layer triggering per the control FSM).
func (n *Network) Cycles() int {
	cycles := 0
	for _, l := range n.Layers {
		cycles += l.In + pipelineDepth
	}
	return cycles
}

// pipelineDepth mirrors hw.PipelineDepth without importing the package
// (kept in sync by a cross-check in the tests).
const pipelineDepth = 4

// MemoryBits returns the on-chip parameter storage the network needs:
// every weight and bias at the arithmetic's bit width (the paper's local
// memory blocks).
func (n *Network) MemoryBits() int {
	params := 0
	for _, l := range n.Layers {
		params += l.In*l.Out + l.Out
	}
	return params * int(n.Arith.BitWidth())
}

// String renders like "DeepPositron[posit(8,0): 30-16-8-2]".
func (n *Network) String() string {
	s := fmt.Sprintf("DeepPositron[%s:", n.Arith.Name())
	if len(n.Layers) > 0 {
		s += fmt.Sprintf(" %d", n.Layers[0].In)
		for _, l := range n.Layers {
			s += fmt.Sprintf("-%d", l.Out)
		}
	}
	return s + "]"
}
