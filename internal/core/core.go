// Package core implements Deep Positron (paper §III-E): a feed-forward
// DNN accelerator in which every layer owns dedicated exact
// multiply-and-accumulate units with local weight/bias memory, layers
// stream activations to one another under a control FSM, hidden layers
// apply ReLU and the readout layer is affine. The same architecture is
// instantiated for any emac.Arithmetic — posit, minifloat, fixed point or
// the float32 baseline — which is how the paper compares the three
// number systems at identical bit width.
package core

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
)

// Layer is one Deep Positron layer: quantised weights and biases held in
// the layer's local memory (the paper stores parameters on-chip next to
// the EMACs to avoid off-chip accesses), plus one EMAC per neuron.
type Layer struct {
	In, Out int
	// W[j][i] is the code of the weight from input i to neuron j.
	W [][]emac.Code
	B []emac.Code
	// macs holds one EMAC unit per neuron, reused across inputs exactly
	// like the hardware units are.
	macs []emac.MAC
	// kernel is the batched pre-decoded datapath for the whole layer
	// (nil when the arithmetic has none); bit-identical to the macs.
	kernel emac.LayerKernel
	// act is the layer's reused output activation buffer.
	act []emac.Code
}

// Network is a Deep Positron instance.
type Network struct {
	Arith  emac.Arithmetic
	Layers []*Layer
	// Sigmoid selects the posit fast-sigmoid activation instead of ReLU
	// on hidden layers (extension; requires a posit arithmetic with
	// es=0).
	Sigmoid bool
	// in is the reused input-code buffer; Infer is not safe for
	// concurrent use (the EMACs and kernels are stateful anyway).
	in []emac.Code
}

// Quantize lowers a trained float64 network into the target arithmetic.
// Every weight and bias is rounded once; activations are quantised on the
// fly by the EMAC result rounding, exactly as in the hardware.
func Quantize(src *nn.Network, a emac.Arithmetic) *Network {
	net := &Network{Arith: a}
	for _, l := range src.Layers {
		ql := &Layer{In: l.In, Out: l.Out}
		ql.W = make([][]emac.Code, l.Out)
		for j, row := range l.W {
			qrow := make([]emac.Code, l.In)
			for i, w := range row {
				qrow[i] = a.Quantize(w)
			}
			ql.W[j] = qrow
		}
		ql.B = make([]emac.Code, l.Out)
		for j, b := range l.B {
			ql.B[j] = a.Quantize(b)
		}
		ql.macs = make([]emac.MAC, l.Out)
		for j := range ql.macs {
			ql.macs[j] = a.NewMAC(l.In)
		}
		ql.attachFastPath(a)
		net.Layers = append(net.Layers, ql)
	}
	return net
}

// attachFastPath builds the optional batched kernel and the reused output
// activation buffer for a layer whose W/B codes are final. Every layer
// constructor (Quantize, QuantizeMixed, model loading) goes through this
// one helper so the fast-path wiring cannot diverge between them.
func (l *Layer) attachFastPath(a emac.Arithmetic) {
	if kb, ok := a.(emac.KernelBuilder); ok {
		if k, ok := kb.NewLayerKernel(l.W, l.B); ok {
			l.kernel = k
		}
	}
	l.act = make([]emac.Code, l.Out)
}

// forward computes the layer's raw MAC outputs (bias + dot product, one
// rounding each, no activation function) into the layer's reused act
// buffer, via the batched kernel when one exists and per-neuron EMACs
// otherwise. Single- and mixed-precision inference share this one
// implementation.
func (l *Layer) forward(act []emac.Code) []emac.Code {
	next := l.act
	if l.kernel != nil {
		l.kernel.Forward(act, next)
		return next
	}
	for j := 0; j < l.Out; j++ {
		mac := l.macs[j]
		mac.Reset(l.B[j])
		wrow := l.W[j]
		for i, a := range act {
			mac.Step(wrow[i], a)
		}
		next[j] = mac.Result()
	}
	return next
}

// QuantizeInput converts a raw feature vector into activation codes.
func (n *Network) QuantizeInput(x []float64) []emac.Code {
	codes := make([]emac.Code, len(x))
	for i, v := range x {
		codes[i] = n.Arith.Quantize(v)
	}
	return codes
}

// quantizeInputReused is QuantizeInput into the network's reused buffer.
func (n *Network) quantizeInputReused(x []float64) []emac.Code {
	if cap(n.in) < len(x) {
		n.in = make([]emac.Code, len(x))
	}
	codes := n.in[:len(x)]
	for i, v := range x {
		codes[i] = n.Arith.Quantize(v)
	}
	return codes
}

// Infer runs one input through the network and returns the decoded output
// logits. The compute follows the paper's dataflow: each layer's EMACs
// reset to their bias, consume one activation per cycle, and the layer
// fires when its predecessor finishes. Layers whose arithmetic provides a
// batched kernel run it instead of stepping per-neuron MACs (identical
// results, one pre-decoded pass); activations flow through per-layer
// reused buffers, so steady-state inference only allocates the returned
// logits. Not safe for concurrent use.
func (n *Network) Infer(x []float64) []float64 {
	act := n.quantizeInputReused(x)
	for li, layer := range n.Layers {
		if len(act) != layer.In {
			panic(fmt.Sprintf("core: layer %d expects %d inputs, got %d", li, layer.In, len(act)))
		}
		next := layer.forward(act)
		if li < len(n.Layers)-1 {
			for j, c := range next {
				next[j] = n.activate(c)
			}
		}
		act = next
	}
	logits := make([]float64, len(act))
	for i, c := range act {
		logits[i] = n.Arith.Decode(c)
	}
	return logits
}

// activate applies the hidden-layer nonlinearity on a code.
func (n *Network) activate(c emac.Code) emac.Code {
	if n.Sigmoid {
		pa, ok := n.Arith.(emac.PositArith)
		if !ok || !pa.F.FastSigmoidValid() {
			panic("core: Sigmoid activation requires a posit arithmetic with es=0")
		}
		return emac.Code(pa.F.FromBits(uint64(c)).FastSigmoid().Bits())
	}
	return n.Arith.ReLU(c)
}

// Predict returns the argmax class for one input.
func (n *Network) Predict(x []float64) int { return nn.Argmax(n.Infer(x)) }

// Accuracy evaluates classification accuracy on a dataset.
func (n *Network) Accuracy(ds *datasets.Dataset) float64 {
	correct := 0
	for i := range ds.X {
		if n.Predict(ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Shape returns the per-layer fan-ins and widths (for the hardware cost
// model).
func (n *Network) Shape() (fanins, widths []int) {
	for _, l := range n.Layers {
		fanins = append(fanins, l.In)
		widths = append(widths, l.Out)
	}
	return fanins, widths
}

// Cycles returns the streaming inference latency in EMAC cycles: each
// layer consumes fan-in cycles plus the pipeline depth before its
// successor may start (sequential layer triggering per the control FSM).
func (n *Network) Cycles() int {
	cycles := 0
	for _, l := range n.Layers {
		cycles += l.In + pipelineDepth
	}
	return cycles
}

// pipelineDepth mirrors hw.PipelineDepth without importing the package
// (kept in sync by a cross-check in the tests).
const pipelineDepth = 4

// MemoryBits returns the on-chip parameter storage the network needs:
// every weight and bias at the arithmetic's bit width (the paper's local
// memory blocks).
func (n *Network) MemoryBits() int {
	params := 0
	for _, l := range n.Layers {
		params += l.In*l.Out + l.Out
	}
	return params * int(n.Arith.BitWidth())
}

// String renders like "DeepPositron[posit(8,0): 30-16-8-2]".
func (n *Network) String() string {
	s := fmt.Sprintf("DeepPositron[%s:", n.Arith.Name())
	if len(n.Layers) > 0 {
		s += fmt.Sprintf(" %d", n.Layers[0].In)
		for _, l := range n.Layers {
			s += fmt.Sprintf("-%d", l.Out)
		}
	}
	return s + "]"
}
