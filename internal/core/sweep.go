package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
)

// Candidates enumerates the paper's §IV-B configuration grid for one bit
// width n: posit sweeps es, float sweeps we, fixed sweeps q ("all
// possible combinations of [5,8] bit-widths for the three numerical
// formats").
func Candidates(n uint) (posits, floats, fixeds []emac.Arithmetic) {
	for es := uint(0); es <= 3 && es+3 <= n; es++ {
		posits = append(posits, emac.NewPosit(n, es))
	}
	for we := uint(2); we+1 < n && we <= 6; we++ {
		floats = append(floats, emac.NewFloatN(n, we))
	}
	for q := uint(1); q < n; q++ {
		fixeds = append(fixeds, emac.NewFixed(n, q))
	}
	return posits, floats, fixeds
}

// Result is one evaluated configuration.
type Result struct {
	Arith    emac.Arithmetic
	Accuracy float64
}

// Evaluate quantises the trained network with each candidate arithmetic
// and measures test accuracy, returning results sorted best-first (ties
// broken toward the earlier candidate, keeping the sweep deterministic).
// Candidates are evaluated concurrently — each gets its own quantised
// network, so there is no shared EMAC state — and results are collected
// by index before the stable sort, so the output is identical to a
// serial sweep.
func Evaluate(src *nn.Network, test *datasets.Dataset, cands []emac.Arithmetic) []Result {
	out := make([]Result, len(cands))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := Quantize(src, cands[i])
				out[i] = Result{Arith: cands[i], Accuracy: q.Accuracy(test)}
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Accuracy > out[j].Accuracy })
	return out
}

// Best returns the best result of Evaluate.
func Best(src *nn.Network, test *datasets.Dataset, cands []emac.Arithmetic) Result {
	if len(cands) == 0 {
		panic("core: Best with no candidates")
	}
	return Evaluate(src, test, cands)[0]
}

// FamilyBest holds the per-family winners at one bit width — the row
// structure of the paper's Table II.
type FamilyBest struct {
	N     uint
	Posit Result
	Float Result
	Fixed Result
}

// BestPerFamily sweeps every candidate of every family at bit width n.
func BestPerFamily(src *nn.Network, test *datasets.Dataset, n uint) FamilyBest {
	posits, floats, fixeds := Candidates(n)
	return FamilyBest{
		N:     n,
		Posit: Best(src, test, posits),
		Float: Best(src, test, floats),
		Fixed: Best(src, test, fixeds),
	}
}
