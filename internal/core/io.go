package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/emac"
)

// Serialization of quantised networks: the deployment artifact a Deep
// Positron bitstream would consume — a format descriptor plus the raw
// weight/bias codes for each layer's local memory. Codes are stored as
// integers (each at most 32 bits wide), so the JSON is portable and
// diff-able.

// arithDescriptor names an Arithmetic in the model file.
type arithDescriptor struct {
	Family string `json:"family"` // "posit" | "float" | "fixed" | "float32"
	N      uint   `json:"n,omitempty"`
	ES     uint   `json:"es,omitempty"`
	WE     uint   `json:"we,omitempty"`
	Q      uint   `json:"q,omitempty"`
	// QuireDrop preserves the truncated-quire ablation setting.
	QuireDrop uint `json:"quireDrop,omitempty"`
}

func describeArith(a emac.Arithmetic) (arithDescriptor, error) {
	switch arm := a.(type) {
	case emac.PositArith:
		return arithDescriptor{Family: "posit", N: arm.F.N(), ES: arm.F.ES(), QuireDrop: arm.QuireDrop}, nil
	case emac.FloatArith:
		return arithDescriptor{Family: "float", N: arm.F.N(), WE: arm.F.WE()}, nil
	case emac.FixedArith:
		return arithDescriptor{Family: "fixed", N: arm.F.N(), Q: arm.F.Q()}, nil
	case emac.Float32Arith:
		return arithDescriptor{Family: "float32"}, nil
	default:
		return arithDescriptor{}, fmt.Errorf("core: unserialisable arithmetic %T", a)
	}
}

func (d arithDescriptor) build() (emac.Arithmetic, error) {
	switch d.Family {
	case "posit":
		a := emac.NewPosit(d.N, d.ES)
		a.QuireDrop = d.QuireDrop
		return a, nil
	case "float":
		return emac.NewFloatN(d.N, d.WE), nil
	case "fixed":
		return emac.NewFixed(d.N, d.Q), nil
	case "float32":
		return emac.Float32Arith{}, nil
	default:
		return nil, fmt.Errorf("core: unknown arithmetic family %q", d.Family)
	}
}

type layerJSON struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	W   [][]uint64 `json:"w"` // codes, W[out][in]
	B   []uint64   `json:"b"`
}

type netJSON struct {
	Arith   arithDescriptor `json:"arith"`
	Sigmoid bool            `json:"sigmoid,omitempty"`
	Layers  []layerJSON     `json:"layers"`
}

// MarshalJSON implements json.Marshaler for the quantised network.
func (n *Network) MarshalJSON() ([]byte, error) {
	desc, err := describeArith(n.Arith)
	if err != nil {
		return nil, err
	}
	out := netJSON{Arith: desc, Sigmoid: n.Sigmoid}
	for _, l := range n.Layers {
		lj := layerJSON{In: l.In, Out: l.Out, B: make([]uint64, len(l.B))}
		lj.W = make([][]uint64, len(l.W))
		for j, row := range l.W {
			cr := make([]uint64, len(row))
			for i, c := range row {
				cr[i] = uint64(c)
			}
			lj.W[j] = cr
		}
		for j, c := range l.B {
			lj.B[j] = uint64(c)
		}
		out.Layers = append(out.Layers, lj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with structural validation.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in netJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	arith, err := in.Arith.build()
	if err != nil {
		return err
	}
	mask := ^uint64(0)
	if w := arith.BitWidth(); w < 64 {
		mask = (uint64(1) << w) - 1
	}
	net := Network{Arith: arith, Sigmoid: in.Sigmoid}
	prevOut := -1
	for li, lj := range in.Layers {
		if lj.In <= 0 || lj.Out <= 0 || len(lj.W) != lj.Out || len(lj.B) != lj.Out {
			return fmt.Errorf("core: layer %d malformed", li)
		}
		if prevOut >= 0 && lj.In != prevOut {
			return fmt.Errorf("core: layer %d input %d does not match previous output %d", li, lj.In, prevOut)
		}
		prevOut = lj.Out
		l := &Layer{In: lj.In, Out: lj.Out, B: make([]emac.Code, lj.Out)}
		l.W = make([][]emac.Code, lj.Out)
		for j, row := range lj.W {
			if len(row) != lj.In {
				return fmt.Errorf("core: layer %d row %d has %d codes", li, j, len(row))
			}
			cr := make([]emac.Code, lj.In)
			for i, c := range row {
				if c&^mask != 0 {
					return fmt.Errorf("core: layer %d code %#x exceeds %d bits", li, c, arith.BitWidth())
				}
				cr[i] = emac.Code(c)
			}
			l.W[j] = cr
		}
		for j, c := range lj.B {
			if c&^mask != 0 {
				return fmt.Errorf("core: layer %d bias code %#x exceeds %d bits", li, c, arith.BitWidth())
			}
			l.B[j] = emac.Code(c)
		}
		net.Layers = append(net.Layers, l)
	}
	if len(net.Layers) == 0 {
		return fmt.Errorf("core: model has no layers")
	}
	*n = net
	return nil
}

// Save writes the quantised model as JSON.
func (n *Network) Save(path string) error {
	data, err := json.MarshalIndent(n, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a quantised model saved by Save.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	net := new(Network)
	if err := json.Unmarshal(data, net); err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", path, err)
	}
	return net, nil
}
