package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/fsutil"
)

// Serialization of quantised networks: the deployment artifact a Deep
// Positron bitstream would consume — a format descriptor plus the raw
// weight/bias codes for each layer's local memory. Codes are stored as
// integers (each at most 32 bits wide), so the JSON is portable and
// diff-able.
//
// The artifact is versioned. Version 1 carries a kind ("uniform" or
// "mixed"), per-layer arithmetic descriptors for mixed networks and an
// optional folded input standardizer; files written before versioning
// (no "version" field) are read as version 0: uniform, no standardizer.
// Readers reject versions they do not know.

// ArtifactVersion is the artifact format this build writes.
const ArtifactVersion = 1

// arithDescriptor names an Arithmetic in the model file.
type arithDescriptor struct {
	Family string `json:"family"` // "posit" | "float" | "fixed" | "float32"
	N      uint   `json:"n,omitempty"`
	ES     uint   `json:"es,omitempty"`
	WE     uint   `json:"we,omitempty"`
	Q      uint   `json:"q,omitempty"`
	// QuireDrop preserves the truncated-quire ablation setting.
	QuireDrop uint `json:"quireDrop,omitempty"`
}

func describeArith(a emac.Arithmetic) (arithDescriptor, error) {
	s, err := DescribeArith(a)
	if err != nil {
		return arithDescriptor{}, err
	}
	return arithDescriptor{Family: s.Family, N: s.N, ES: s.ES, WE: s.WE, Q: s.Q, QuireDrop: s.QuireDrop}, nil
}

func (d arithDescriptor) build() (emac.Arithmetic, error) {
	return ArithSpec{Family: d.Family, N: d.N, ES: d.ES, WE: d.WE, Q: d.Q, QuireDrop: d.QuireDrop}.Build()
}

type layerJSON struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	W   [][]uint64 `json:"w"` // codes, W[out][in]
	B   []uint64   `json:"b"`
}

// standJSON is the folded input standardizer block.
type standJSON struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// artifactJSON is the on-disk envelope for both network kinds.
type artifactJSON struct {
	Version int    `json:"version,omitempty"`
	Kind    string `json:"kind,omitempty"` // "uniform" | "mixed"; "" in legacy files
	// Arith is the single arithmetic of a uniform network.
	Arith *arithDescriptor `json:"arith,omitempty"`
	// Ariths are the per-layer arithmetics of a mixed network.
	Ariths  []arithDescriptor `json:"ariths,omitempty"`
	Sigmoid bool              `json:"sigmoid,omitempty"`
	Stand   *standJSON        `json:"standardizer,omitempty"`
	Layers  []layerJSON       `json:"layers"`
}

const (
	kindUniform = "uniform"
	kindMixed   = "mixed"
)

// checkEnvelope validates the version/kind pair of a parsed artifact.
func (a *artifactJSON) checkEnvelope() error {
	if a.Version < 0 || a.Version > ArtifactVersion {
		return fmt.Errorf("core: artifact version %d not supported (this build reads up to %d)",
			a.Version, ArtifactVersion)
	}
	switch a.Kind {
	case "", kindUniform, kindMixed:
	default:
		return fmt.Errorf("core: unknown artifact kind %q", a.Kind)
	}
	if a.Version == 0 && a.Kind == kindMixed {
		return fmt.Errorf("core: mixed artifacts require version >= 1")
	}
	return nil
}

// encodeLayers lowers parameter memories into the wire form.
func encodeLayers(layers []*Layer) []layerJSON {
	out := make([]layerJSON, 0, len(layers))
	for _, l := range layers {
		lj := layerJSON{In: l.In, Out: l.Out, B: make([]uint64, len(l.B))}
		lj.W = make([][]uint64, len(l.W))
		for j, row := range l.W {
			cr := make([]uint64, len(row))
			for i, c := range row {
				cr[i] = uint64(c)
			}
			lj.W[j] = cr
		}
		for j, c := range l.B {
			lj.B[j] = uint64(c)
		}
		out = append(out, lj)
	}
	return out
}

// decodeLayers validates and rebuilds parameter memories; arithFor
// supplies the arithmetic governing layer i's code width.
func decodeLayers(ljs []layerJSON, arithFor func(i int) emac.Arithmetic) ([]*Layer, error) {
	if len(ljs) == 0 {
		return nil, fmt.Errorf("core: model has no layers")
	}
	layers := make([]*Layer, 0, len(ljs))
	prevOut := -1
	for li, lj := range ljs {
		if lj.In <= 0 || lj.Out <= 0 || len(lj.W) != lj.Out || len(lj.B) != lj.Out {
			return nil, fmt.Errorf("core: layer %d malformed", li)
		}
		if prevOut >= 0 && lj.In != prevOut {
			return nil, fmt.Errorf("core: layer %d input %d does not match previous output %d", li, lj.In, prevOut)
		}
		prevOut = lj.Out
		arith := arithFor(li)
		mask := ^uint64(0)
		if w := arith.BitWidth(); w < 64 {
			mask = (uint64(1) << w) - 1
		}
		l := &Layer{In: lj.In, Out: lj.Out, B: make([]emac.Code, lj.Out)}
		l.W = make([][]emac.Code, lj.Out)
		for j, row := range lj.W {
			if len(row) != lj.In {
				return nil, fmt.Errorf("core: layer %d row %d has %d codes", li, j, len(row))
			}
			cr := make([]emac.Code, lj.In)
			for i, c := range row {
				if c&^mask != 0 {
					return nil, fmt.Errorf("core: layer %d code %#x exceeds %d bits", li, c, arith.BitWidth())
				}
				cr[i] = emac.Code(c)
			}
			l.W[j] = cr
		}
		for j, c := range lj.B {
			if c&^mask != 0 {
				return nil, fmt.Errorf("core: layer %d bias code %#x exceeds %d bits", li, c, arith.BitWidth())
			}
			l.B[j] = emac.Code(c)
		}
		layers = append(layers, l)
	}
	return layers, nil
}

// encodeStand lowers an optional standardizer into the wire form.
func encodeStand(st *datasets.Standardizer) *standJSON {
	if st == nil {
		return nil
	}
	return &standJSON{Mean: st.Mean, Std: st.Std}
}

// decodeStand validates an optional standardizer block against the
// network's input width.
func decodeStand(sj *standJSON, inputDim int) (*datasets.Standardizer, error) {
	if sj == nil {
		return nil, nil
	}
	if len(sj.Mean) != inputDim || len(sj.Std) != inputDim {
		return nil, fmt.Errorf("core: standardizer has %d/%d features for %d inputs",
			len(sj.Mean), len(sj.Std), inputDim)
	}
	for i, s := range sj.Std {
		if s == 0 {
			return nil, fmt.Errorf("core: standardizer feature %d has zero scale", i)
		}
	}
	return &datasets.Standardizer{Mean: sj.Mean, Std: sj.Std}, nil
}

// MarshalJSON implements json.Marshaler for the quantised network
// (version-1 uniform artifact).
func (n *Network) MarshalJSON() ([]byte, error) {
	desc, err := describeArith(n.Arith)
	if err != nil {
		return nil, err
	}
	out := artifactJSON{
		Version: ArtifactVersion,
		Kind:    kindUniform,
		Arith:   &desc,
		Sigmoid: n.Sigmoid,
		Stand:   encodeStand(n.Stand),
		Layers:  encodeLayers(n.Layers),
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with structural validation.
// It accepts version-1 uniform artifacts and legacy pre-versioning files.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in artifactJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if err := in.checkEnvelope(); err != nil {
		return err
	}
	if in.Kind == kindMixed {
		return fmt.Errorf("core: artifact is a mixed network; load it with LoadModel or MixedNetwork")
	}
	if in.Arith == nil {
		return fmt.Errorf("core: uniform artifact missing arithmetic descriptor")
	}
	arith, err := in.Arith.build()
	if err != nil {
		return err
	}
	layers, err := decodeLayers(in.Layers, func(int) emac.Arithmetic { return arith })
	if err != nil {
		return err
	}
	stand, err := decodeStand(in.Stand, layers[0].In)
	if err != nil {
		return err
	}
	*n = Network{Arith: arith, Sigmoid: in.Sigmoid, Stand: stand, Layers: layers}
	return nil
}

// MarshalJSON implements json.Marshaler for the mixed network (version-1
// mixed artifact with one arithmetic descriptor per layer).
func (n *MixedNetwork) MarshalJSON() ([]byte, error) {
	if len(n.LayerAriths) != len(n.Layers) {
		return nil, fmt.Errorf("core: mixed network has %d arithmetics for %d layers",
			len(n.LayerAriths), len(n.Layers))
	}
	descs := make([]arithDescriptor, len(n.LayerAriths))
	for i, a := range n.LayerAriths {
		d, err := describeArith(a)
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}
	out := artifactJSON{
		Version: ArtifactVersion,
		Kind:    kindMixed,
		Ariths:  descs,
		Stand:   encodeStand(n.Stand),
		Layers:  encodeLayers(n.Layers),
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for mixed artifacts.
func (n *MixedNetwork) UnmarshalJSON(data []byte) error {
	var in artifactJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if err := in.checkEnvelope(); err != nil {
		return err
	}
	if in.Kind != kindMixed {
		return fmt.Errorf("core: artifact is not a mixed network (kind %q)", in.Kind)
	}
	if len(in.Ariths) != len(in.Layers) {
		return fmt.Errorf("core: mixed artifact has %d arithmetics for %d layers",
			len(in.Ariths), len(in.Layers))
	}
	ariths := make([]emac.Arithmetic, len(in.Ariths))
	for i, d := range in.Ariths {
		a, err := d.build()
		if err != nil {
			return err
		}
		ariths[i] = a
	}
	layers, err := decodeLayers(in.Layers, func(i int) emac.Arithmetic { return ariths[i] })
	if err != nil {
		return err
	}
	stand, err := decodeStand(in.Stand, layers[0].In)
	if err != nil {
		return err
	}
	*n = MixedNetwork{LayerAriths: ariths, Stand: stand, Layers: layers}
	return nil
}

// Save writes the quantised model as a versioned JSON artifact.
func (n *Network) Save(path string) error { return saveJSON(n, path) }

// Save writes the mixed quantised model as a versioned JSON artifact.
func (n *MixedNetwork) Save(path string) error { return saveJSON(n, path) }

// saveJSON writes the artifact atomically (temp file + rename in the
// target directory): artifacts are the unit of deployment, and a trainer
// killed mid-save must never leave a truncated file where positrond (or
// the artifact store) will load it.
func saveJSON(m json.Marshaler, path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(path, data, 0o644)
}

// Load reads a uniform quantised model saved by Network.Save.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	net := new(Network)
	if err := json.Unmarshal(data, net); err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", path, err)
	}
	return net, nil
}

// LoadModel reads any versioned artifact — uniform or mixed — and
// returns it behind the Model interface. This is the deployment loader:
// serving code does not need to know which precision layout an artifact
// uses.
func LoadModel(path string) (Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseModel(data)
	if err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", path, err)
	}
	return m, nil
}

// ParseModel decodes a versioned artifact from raw JSON bytes — the
// in-memory counterpart of LoadModel, used when an artifact arrives over
// the wire (e.g. a model uploaded to a serving registry) rather than
// from disk.
func ParseModel(data []byte) (Model, error) {
	var envelope struct {
		Version int    `json:"version"`
		Kind    string `json:"kind"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		return nil, err
	}
	if envelope.Kind == kindMixed {
		net := new(MixedNetwork)
		if err := json.Unmarshal(data, net); err != nil {
			return nil, err
		}
		return net, nil
	}
	net := new(Network)
	if err := json.Unmarshal(data, net); err != nil {
		return nil, err
	}
	return net, nil
}
