package core

// Fused-batch execution tests: InferBatchInto must be bit-identical to
// per-sample InferInto for every arm (fused kernels, loop fallbacks and
// the MAC-only float32 path alike), for uniform and mixed networks, and
// allocation-free once the planes are warm.

import (
	"testing"

	"repro/internal/emac"
)

// TestInferBatchIntoMatchesPerSample sweeps the iris test split through
// the fused batch path and the per-sample path for each arm.
func TestInferBatchIntoMatchesPerSample(t *testing.T) {
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
		emac.NewPosit(12, 1), // loop fallback (no fused tier at n=12)
		emac.Float32Arith{},  // per-neuron MAC path, no kernels at all
	} {
		q := Quantize(net, a)
		s := q.NewSession()
		od := q.OutputDim()
		for _, b := range []int{1, 3, 17, len(test.X)} {
			xs := test.X[:b]
			got := make([]float64, b*od)
			s.InferBatchInto(got, xs)
			ref := q.NewSession()
			want := make([]float64, od)
			for i, x := range xs {
				ref.InferInto(want, x)
				for j := range want {
					if got[i*od+j] != want[j] {
						t.Fatalf("%s b=%d sample %d logit %d: batch %v, per-sample %v",
							a.Name(), b, i, j, got[i*od+j], want[j])
					}
				}
			}
		}
	}
}

// TestMixedInferBatchIntoMatchesPerSample does the same over a mixed-
// precision network with a format conversion at every boundary.
func TestMixedInferBatchIntoMatchesPerSample(t *testing.T) {
	net, test := trainedIris(t)
	ariths := []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFixed(8, 4), emac.NewFloatN(8, 4),
	}
	q := QuantizeMixed(net, ariths)
	s := q.NewSession()
	od := q.OutputDim()
	b := len(test.X)
	got := make([]float64, b*od)
	s.InferBatchInto(got, test.X)
	ref := q.NewSession()
	want := make([]float64, od)
	for i, x := range test.X {
		ref.InferInto(want, x)
		for j := range want {
			if got[i*od+j] != want[j] {
				t.Fatalf("mixed sample %d logit %d: batch %v, per-sample %v",
					i, j, got[i*od+j], want[j])
			}
		}
	}
}

// TestInferBatchIntoAllocFree: after one warmup flush, the fused path
// must not allocate.
func TestInferBatchIntoAllocFree(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	s := q.NewSession()
	od := q.OutputDim()
	xs := test.X[:16]
	dst := make([]float64, len(xs)*od)
	s.InferBatchInto(dst, xs) // warm planes and kernel scratch
	allocs := testing.AllocsPerRun(20, func() {
		s.InferBatchInto(dst, xs)
	})
	if allocs != 0 {
		t.Fatalf("InferBatchInto allocates %v objects per flush; want 0", allocs)
	}
}

// TestInferBatchIntoSigmoid covers the posit fast-sigmoid activation on
// the batch plane.
func TestInferBatchIntoSigmoid(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	q.Sigmoid = true
	s := q.NewSession()
	od := q.OutputDim()
	xs := test.X[:8]
	got := make([]float64, len(xs)*od)
	s.InferBatchInto(got, xs)
	ref := q.NewSession()
	want := make([]float64, od)
	for i, x := range xs {
		ref.InferInto(want, x)
		for j := range want {
			if got[i*od+j] != want[j] {
				t.Fatalf("sigmoid sample %d logit %d: batch %v, per-sample %v", i, j, got[i*od+j], want[j])
			}
		}
	}
}
