package core

// Golden-file tests for the versioned deployment artifact: the committed
// files under testdata/ pin the on-disk format, so any encoding change
// that would break deployed artifacts fails here first. Regenerate with
//
//	go test ./internal/core -run TestGolden -update
//
// after an intentional format revision (and bump ArtifactVersion).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden artifact files")

// goldenUniform is a deterministic uniform-precision model with a folded
// standardizer (no training — artifact bytes must not depend on the
// optimiser).
func goldenUniform() *Network {
	src := nn.NewMLP([]int{4, 8, 3}, rng.New(42))
	net := Quantize(src, emac.NewPosit(8, 0))
	net.Stand = &datasets.Standardizer{
		Mean: []float64{0.125, -0.25, 0.5, 1},
		Std:  []float64{1, 2, 0.5, 4},
	}
	return net
}

// goldenMixed is a deterministic mixed-precision model using one arm per
// number system — posit, minifloat and fixed point in one artifact.
func goldenMixed() *MixedNetwork {
	src := nn.NewMLP([]int{4, 8, 6, 3}, rng.New(43))
	net := QuantizeMixed(src, []emac.Arithmetic{
		emac.NewPosit(8, 1), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	})
	net.Stand = &datasets.Standardizer{
		Mean: []float64{0, 0.5, -0.5, 2},
		Std:  []float64{1, 1, 2, 0.25},
	}
	return net
}

// goldenInputs returns deterministic raw feature vectors.
func goldenInputs(n int) [][]float64 {
	r := rng.New(44)
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, 4)
		for j := range x {
			x[j] = r.NormMS(0, 2)
		}
		xs[i] = x
	}
	return xs
}

// checkGolden compares the model's Save output against the committed
// golden file (rewriting it under -update), then reloads the golden file
// through LoadModel and verifies bit-identical logits.
func checkGolden(t *testing.T, m Model, name string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	tmp := filepath.Join(t.TempDir(), name)
	if err := m.Save(tmp); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: artifact bytes diverge from golden file (format change? bump ArtifactVersion and -update)", name)
	}
	loaded, err := LoadModel(golden)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != m.Kind() {
		t.Fatalf("kind %q -> %q", m.Kind(), loaded.Kind())
	}
	if loaded.Standardizer() == nil {
		t.Fatal("standardizer lost on reload")
	}
	a, b := m.NewInferer(), loaded.NewInferer()
	for i, x := range goldenInputs(25) {
		la, lb := a.Infer(x), b.Infer(x)
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("%s: reloaded model diverges at input %d logit %d: %v != %v",
					name, i, j, la[j], lb[j])
			}
		}
	}
}

func TestGoldenUniformArtifact(t *testing.T) {
	checkGolden(t, goldenUniform(), "uniform_posit8_v1.json")
}

func TestGoldenMixedArtifact(t *testing.T) {
	m := goldenMixed()
	checkGolden(t, m, "mixed_v1.json")
	wantNames := []string{"posit(8,1)", "float(8: we=4,wf=3)", "fixed(8,q=4)"}
	for i, name := range m.ArithNames() {
		if name != wantNames[i] {
			t.Fatalf("arith %d = %q, want %q", i, name, wantNames[i])
		}
	}
}

func TestMixedSaveLoadRoundTripAllArms(t *testing.T) {
	m := goldenMixed()
	path := filepath.Join(t.TempDir(), "mixed.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	mixed, ok := loaded.(*MixedNetwork)
	if !ok {
		t.Fatalf("LoadModel returned %T for a mixed artifact", loaded)
	}
	if len(mixed.LayerAriths) != 3 {
		t.Fatalf("layer arithmetics lost: %v", mixed.ArithNames())
	}
	a, b := m.NewSession(), mixed.NewSession()
	for i, x := range goldenInputs(50) {
		la, lb := a.Infer(x), b.Infer(x)
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("round trip diverges at input %d", i)
			}
		}
	}
}

func TestLoadModelDispatch(t *testing.T) {
	dir := t.TempDir()
	up := filepath.Join(dir, "u.json")
	mp := filepath.Join(dir, "m.json")
	if err := goldenUniform().Save(up); err != nil {
		t.Fatal(err)
	}
	if err := goldenMixed().Save(mp); err != nil {
		t.Fatal(err)
	}
	u, err := LoadModel(up)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.(*Network); !ok {
		t.Fatalf("uniform artifact loaded as %T", u)
	}
	m, err := LoadModel(mp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*MixedNetwork); !ok {
		t.Fatalf("mixed artifact loaded as %T", m)
	}
	// The uniform loader must refuse a mixed artifact rather than
	// misread it.
	if _, err := Load(mp); err == nil {
		t.Fatal("core.Load accepted a mixed artifact")
	}
}

func TestArtifactVersionRejection(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	future := write("future.json",
		`{"version":99,"kind":"uniform","arith":{"family":"posit","n":8},"layers":[{"in":1,"out":1,"w":[[0]],"b":[0]}]}`)
	if _, err := LoadModel(future); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version accepted (err = %v)", err)
	}
	if _, err := Load(future); err == nil {
		t.Fatal("Load accepted a future version")
	}
	badKind := write("kind.json",
		`{"version":1,"kind":"hybrid","arith":{"family":"posit","n":8},"layers":[{"in":1,"out":1,"w":[[0]],"b":[0]}]}`)
	if _, err := LoadModel(badKind); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Mixed artifacts did not exist before versioning: a version-0 file
	// claiming to be mixed is corrupt.
	legacyMixed := write("legacymixed.json",
		`{"kind":"mixed","ariths":[{"family":"posit","n":8}],"layers":[{"in":1,"out":1,"w":[[0]],"b":[0]}]}`)
	if _, err := LoadModel(legacyMixed); err == nil {
		t.Fatal("version-0 mixed artifact accepted")
	}
}

func TestLegacyUnversionedArtifactStillLoads(t *testing.T) {
	// The exact shape Network.Save wrote before versioning: no version,
	// no kind.
	legacy := `{"arith":{"family":"posit","n":8,"es":1},"layers":[
		{"in":2,"out":2,"w":[[16,32],[48,64]],"b":[0,8]},
		{"in":2,"out":1,"w":[[24,40]],"b":[4]}]}`
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	net, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if net.Arith.Name() != "posit(8,1)" || net.NumLayers() != 2 || net.Standardizer() != nil {
		t.Fatalf("legacy artifact misread: %v", net)
	}
	if m, err := LoadModel(path); err != nil || m.Kind() != "uniform" {
		t.Fatalf("LoadModel legacy: %v %v", m, err)
	}
}

func TestStandardizerValidation(t *testing.T) {
	dir := t.TempDir()
	bad := func(name, content string) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadModel(path); err == nil {
			t.Errorf("%s: invalid standardizer accepted", name)
		}
	}
	bad("short.json",
		`{"version":1,"kind":"uniform","arith":{"family":"posit","n":8},"standardizer":{"mean":[0],"std":[1]},"layers":[{"in":2,"out":1,"w":[[0,0]],"b":[0]}]}`)
	bad("zerostd.json",
		`{"version":1,"kind":"uniform","arith":{"family":"posit","n":8},"standardizer":{"mean":[0,0],"std":[1,0]},"layers":[{"in":2,"out":1,"w":[[0,0]],"b":[0]}]}`)
}

// TestStandardizedInferenceMatchesManual verifies that a folded
// standardizer is exactly the decode-side z = (x-μ)/σ: inference on raw
// features through a standardized model equals inference on manually
// standardized features through the same model without one.
func TestStandardizedInferenceMatchesManual(t *testing.T) {
	net := goldenUniform()
	bare := *net
	bare.Stand = nil
	bare.def = nil
	for i, x := range goldenInputs(30) {
		z := make([]float64, len(x))
		for j := range x {
			z[j] = (x[j] - net.Stand.Mean[j]) / net.Stand.Std[j]
		}
		a, b := net.Infer(x), bare.Infer(z)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("input %d: folded standardizer diverges from manual", i)
			}
		}
	}
}
