package core

// Failure-injection tests: poisoned inputs, saturating values and
// degenerate networks must produce well-defined results, never panics or
// silently-propagating NaR/NaN garbage.

import (
	"math"
	"testing"

	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/rng"
)

func TestNaNInputPoisoning(t *testing.T) {
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	} {
		q := Quantize(net, a)
		x := append([]float64(nil), test.X[0]...)
		x[2] = math.NaN()
		logits := q.Infer(x) // must not panic
		for j, v := range logits {
			if math.IsInf(v, 0) {
				t.Errorf("%s: Inf logit %d from NaN input", a.Name(), j)
			}
		}
		// The posit arm maps NaR through ReLU to zero, so downstream
		// layers see a clean value; prediction stays in range.
		if c := q.Predict(x); c < 0 || c > 2 {
			t.Errorf("%s: class %d out of range", a.Name(), c)
		}
	}
}

func TestInfInputSaturates(t *testing.T) {
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 1), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	} {
		q := Quantize(net, a)
		x := append([]float64(nil), test.X[0]...)
		x[0] = math.Inf(1)
		logits := q.Infer(x)
		for j, v := range logits {
			if math.IsInf(v, 0) {
				t.Errorf("%s: Inf escaped to logit %d", a.Name(), j)
			}
		}
	}
}

func TestHugeInputsSaturateNotWrap(t *testing.T) {
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFixed(8, 4),
	} {
		q := Quantize(net, a)
		x := make([]float64, len(test.X[0]))
		for i := range x {
			x[i] = 1e12 // far beyond every format's range
		}
		logits := q.Infer(x)
		for _, v := range logits {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: degenerate logit %v", a.Name(), v)
			}
		}
	}
}

func TestDegenerateSingleLayerNetwork(t *testing.T) {
	// A network with no hidden layers (pure affine classifier).
	r := rng.New(3)
	src := nn.NewMLP([]int{4, 3}, r)
	q := Quantize(src, emac.NewPosit(8, 0))
	out := q.Infer([]float64{1, 2, 3, 4})
	if len(out) != 3 {
		t.Fatalf("%d outputs", len(out))
	}
	if q.Cycles() != 4+pipelineDepth {
		t.Errorf("cycles = %d", q.Cycles())
	}
	// streaming a single-layer net works too
	outs, stats, _ := q.StreamInfer([][]float64{{1, 2, 3, 4}, {0, 0, 0, 0}}, false)
	if len(outs) != 2 || stats.Inputs != 2 {
		t.Error("single-layer streaming")
	}
}

func TestAllZeroWeights(t *testing.T) {
	// A freshly zeroed network must classify everything as class 0
	// (all-equal logits, argmax ties to the lowest index).
	src := nn.NewMLP([]int{4, 3, 2}, rng.New(1))
	for _, l := range src.Layers {
		for j := range l.W {
			for i := range l.W[j] {
				l.W[j][i] = 0
			}
		}
		for j := range l.B {
			l.B[j] = 0
		}
	}
	q := Quantize(src, emac.NewPosit(8, 0))
	if c := q.Predict([]float64{1, -1, 2, -2}); c != 0 {
		t.Errorf("zero net predicts %d", c)
	}
}

func TestTinyFormatsStillRun(t *testing.T) {
	// 5-bit formats are the paper's lower bound; even a 4- or 3-bit
	// posit must execute without panicking (accuracy aside).
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(4, 0), emac.NewPosit(3, 0), emac.NewFixed(3, 1),
	} {
		q := Quantize(net, a)
		if acc := q.Accuracy(test.Head(10)); acc < 0 || acc > 1 {
			t.Errorf("%s: accuracy %v", a.Name(), acc)
		}
	}
}

func TestMACReuseIsClean(t *testing.T) {
	// EMAC units are reused across inputs; state must not leak between
	// inferences.
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 1))
	a := q.Infer(test.X[0])
	_ = q.Infer(test.X[1]) // interleave a different input
	b := q.Infer(test.X[0])
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("MAC state leaked: %v vs %v", a, b)
		}
	}
}
