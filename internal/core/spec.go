package core

import (
	"fmt"

	"repro/internal/emac"
)

// ArithSpec is the serialisable identity of one EMAC arithmetic: the
// family plus the format parameters that family uses. It is the single
// source of truth both artifact codecs (JSON v1 and the binary format)
// lower arithmetics into, so the two formats cannot drift on what an
// arithmetic *is*. Build validates through the error-returning format
// constructors — specs come from artifacts, which come from outside the
// program.
type ArithSpec struct {
	Family string // "posit" | "float" | "fixed" | "float32"
	N      uint   // storage width (posit/float/fixed)
	ES     uint   // posit exponent field width
	WE     uint   // minifloat exponent width
	Q      uint   // fixed-point fraction bits
	// QuireDrop preserves the truncated-quire ablation setting.
	QuireDrop uint
}

// DescribeArith lowers an arithmetic into its spec. It fails on
// arithmetic implementations the artifact formats do not know.
func DescribeArith(a emac.Arithmetic) (ArithSpec, error) {
	switch arm := a.(type) {
	case emac.PositArith:
		return ArithSpec{Family: "posit", N: arm.F.N(), ES: arm.F.ES(), QuireDrop: arm.QuireDrop}, nil
	case emac.FloatArith:
		return ArithSpec{Family: "float", N: arm.F.N(), WE: arm.F.WE()}, nil
	case emac.FixedArith:
		return ArithSpec{Family: "fixed", N: arm.F.N(), Q: arm.F.Q()}, nil
	case emac.Float32Arith:
		return ArithSpec{Family: "float32"}, nil
	default:
		return ArithSpec{}, fmt.Errorf("core: unserialisable arithmetic %T", a)
	}
}

// Build constructs the arithmetic the spec names, validating every
// parameter.
func (s ArithSpec) Build() (emac.Arithmetic, error) {
	switch s.Family {
	case "posit":
		return newPositArith(s.N, s.ES, s.QuireDrop)
	case "float":
		return newFloatArith(s.N, s.WE)
	case "fixed":
		return newFixedArith(s.N, s.Q)
	case "float32":
		return emac.Float32Arith{}, nil
	default:
		return nil, fmt.Errorf("core: unknown arithmetic family %q", s.Family)
	}
}
