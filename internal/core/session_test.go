package core

// Execution-plane tests: sessions are shared-nothing, so any number of
// goroutines driving one immutable Network must produce outputs
// bit-identical to a serial pass. Run with -race (CI does) to prove the
// model plane really is read-only under concurrency.

import (
	"sync"
	"testing"

	"repro/internal/emac"
)

// serialLogits runs the whole test split through one fresh session.
func serialLogits(n *Network, xs [][]float64) [][]float64 {
	s := n.NewSession()
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Infer(x)
	}
	return out
}

// TestSessionsConcurrentBitIdentical: one shared Network, 12 goroutines,
// one session each, every goroutine sweeps the full test set; every
// logit must be bit-identical to the serial reference for every arm.
func TestSessionsConcurrentBitIdentical(t *testing.T) {
	net, test := trainedIris(t)
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
		emac.Float32Arith{}, // MAC path: no kernel, per-neuron EMACs
	} {
		q := Quantize(net, a)
		want := serialLogits(q, test.X)
		const goroutines = 12
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := q.NewSession()
				for i, x := range test.X {
					got := s.Infer(x)
					for j := range got {
						if got[j] != want[i][j] {
							t.Errorf("%s goroutine %d sample %d logit %d: %v != %v",
								a.Name(), g, i, j, got[j], want[i][j])
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestMixedSessionsConcurrent: the mixed-precision pipeline under the
// same contract (different arithmetics per layer, conversion units at
// boundaries).
func TestMixedSessionsConcurrent(t *testing.T) {
	net, test := trainedIris(t)
	m := QuantizeMixed(net, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFixed(8, 4), emac.NewFloatN(8, 4),
	})
	ref := m.NewSession()
	want := make([][]float64, len(test.X))
	for i, x := range test.X {
		want[i] = ref.Infer(x)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.NewSession()
			for i, x := range test.X {
				got := s.Infer(x)
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("sample %d logit %d: %v != %v", i, j, got[j], want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestDefaultWrappersMatchSessions: the Network-level convenience methods
// are thin wrappers over a default session and must agree with an
// explicit one, including the accuracy sweep.
func TestDefaultWrappersMatchSessions(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	s := q.NewSession()
	for i, x := range test.X {
		a, b := q.Infer(x), s.Infer(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("sample %d: wrapper %v != session %v", i, a, b)
			}
		}
	}
	if qa, sa := q.Accuracy(test), s.Accuracy(test); qa != sa {
		t.Fatalf("wrapper accuracy %v != session accuracy %v", qa, sa)
	}
	if s.Network() != q {
		t.Fatal("session does not report its network")
	}
}

// TestSessionStateIsolation: interleaving inferences across two sessions
// of one network must not perturb either (no shared scratch).
func TestSessionStateIsolation(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewFixed(8, 4))
	s1, s2 := q.NewSession(), q.NewSession()
	a := s1.Infer(test.X[0])
	_ = s2.Infer(test.X[1]) // interleave different input on another session
	b := s1.Infer(test.X[0])
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("session state leaked: %v vs %v", a, b)
		}
	}
}

// TestStreamInferMatchesSessions: the cycle-level simulator owns its own
// execution plane and must still match per-input session inference.
func TestStreamInferMatchesSessions(t *testing.T) {
	net, test := trainedIris(t)
	q := Quantize(net, emac.NewFloatN(8, 4))
	inputs := test.X[:16]
	outs, _, _ := q.StreamInfer(inputs, false)
	want := serialLogits(q, inputs)
	for i := range outs {
		for j := range outs[i] {
			if outs[i][j] != want[i][j] {
				t.Fatalf("stream sample %d logit %d: %v != %v", i, j, outs[i][j], want[i][j])
			}
		}
	}
}
