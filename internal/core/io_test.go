package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emac"
)

func TestQuantizedSaveLoadRoundTrip(t *testing.T) {
	net, test := trainedIris(t)
	dir := t.TempDir()
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 1), emac.NewFloatN(8, 4), emac.NewFixed(8, 4), emac.Float32Arith{},
	} {
		q := Quantize(net, a)
		path := filepath.Join(dir, a.Name()+".json")
		if err := q.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Arith.Name() != a.Name() {
			t.Fatalf("arith %s -> %s", a.Name(), loaded.Arith.Name())
		}
		// bit-identical inference
		for i := 0; i < 10; i++ {
			la := q.Infer(test.X[i])
			lb := loaded.Infer(test.X[i])
			for j := range la {
				if la[j] != lb[j] {
					t.Fatalf("%s: loaded model diverges at sample %d", a.Name(), i)
				}
			}
		}
	}
}

func TestQuantizedSaveLoadPreservesQuireDrop(t *testing.T) {
	net, test := trainedIris(t)
	a := emac.NewPosit(8, 1)
	a.QuireDrop = 12
	q := Quantize(net, a)
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.json")
	if err := q.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	arm, ok := loaded.Arith.(emac.PositArith)
	if !ok || arm.QuireDrop != 12 {
		t.Fatalf("quire drop lost: %+v", loaded.Arith)
	}
	if got, want := loaded.Accuracy(test), q.Accuracy(test); got != want {
		t.Fatalf("accuracy %v != %v after reload", got, want)
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	dir := t.TempDir()
	bad := func(name, content string) {
		path := filepath.Join(dir, name)
		os.WriteFile(path, []byte(content), 0o644)
		if _, err := Load(path); err == nil {
			t.Errorf("%s: corrupt model accepted", name)
		}
	}
	bad("garbage.json", "not json")
	bad("family.json", `{"arith":{"family":"quaternion","n":8},"layers":[{"in":1,"out":1,"w":[[0]],"b":[0]}]}`)
	bad("shape.json", `{"arith":{"family":"posit","n":8},"layers":[{"in":2,"out":1,"w":[[0]],"b":[0]}]}`)
	bad("chain.json", `{"arith":{"family":"posit","n":8},"layers":[
		{"in":2,"out":3,"w":[[0,0],[0,0],[0,0]],"b":[0,0,0]},
		{"in":4,"out":1,"w":[[0,0,0,0]],"b":[0]}]}`)
	bad("overflow.json", `{"arith":{"family":"posit","n":8},"layers":[{"in":1,"out":1,"w":[[512]],"b":[0]}]}`)
	bad("empty.json", `{"arith":{"family":"posit","n":8},"layers":[]}`)
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveRejectsCustomArith(t *testing.T) {
	net, _ := trainedIris(t)
	q := Quantize(net, emac.NewPosit(8, 0))
	q.Arith = fakeArith{}
	if _, err := q.MarshalJSON(); err == nil {
		t.Error("unknown arithmetic must not serialise")
	}
}

// fakeArith is an Arithmetic the serializer cannot describe.
type fakeArith struct{ emac.PositArith }

func (fakeArith) Name() string { return "fake" }
