package core

import (
	"fmt"

	"repro/internal/emac"
)

// This file implements the cycle-level simulation of Deep Positron's
// control flow (§III-E): "The compute cycle of each layer is triggered
// when its directly preceding layer has terminated computation for an
// input. This flow performs inference in a parallel streaming fashion. …
// A main control unit controls the flow of input data and activations
// throughout the network using a finite state machine."
//
// Each layer is a small FSM (idle → loading → draining) owning one EMAC
// per neuron; a layer consumes one activation per cycle from its
// predecessor's output register and hands its own output vector to the
// successor when done. Because layers work on *different inputs*
// concurrently, the pipeline sustains one inference per
// max_l(fanin_l + depth) cycles even though a single inference takes
// Σ_l (fanin_l + depth) cycles — the simulator verifies that the
// analytical model in hw.NetworkCost matches the executed schedule.

// layerState is the FSM state of one layer.
type layerState int

const (
	layerIdle layerState = iota
	layerBusy            // consuming activations, one per cycle
	layerDone            // output latched, waiting for successor handoff
)

func (s layerState) String() string {
	switch s {
	case layerIdle:
		return "idle"
	case layerBusy:
		return "busy"
	default:
		return "done"
	}
}

// simLayer is the runtime state of one layer in the streaming simulator:
// the FSM bookkeeping plus the layer's execution plane (borrowed from the
// network's default session — the simulator shares Infer's
// single-goroutine contract, and reusing the session keeps repeated
// StreamInfer calls from re-decoding the weights).
type simLayer struct {
	layer *Layer
	exec  *execLayer
	state layerState
	// step counts consumed activations for the current input.
	step int
	// input holds the activation vector being consumed.
	input []emac.Code
	// output latches the completed result until handoff.
	output []emac.Code
	// tag identifies which inference the layer is working on.
	tag int
}

// TraceEvent records one FSM transition for inspection/testing.
type TraceEvent struct {
	Cycle int
	Layer int
	State string
	Tag   int // inference id
}

// StreamStats summarises a streaming run.
type StreamStats struct {
	Inputs          int
	TotalCycles     int
	FirstLatency    int     // cycles until the first output emerged
	SteadyInterval  int     // cycles between consecutive outputs at steady state
	ThroughputPerKC float64 // outputs per 1000 cycles
}

// StreamInfer runs the streaming pipeline over a batch of inputs,
// cycle by cycle, returning the outputs (decoded logits per input), the
// schedule statistics and (optionally, when trace is true) the FSM
// transition log. The numerical results are identical to calling Infer
// per input — the simulator only reorders *when* work happens, never
// what is computed. Like Infer, it drives the default session and is not
// safe for concurrent use.
func (n *Network) StreamInfer(inputs [][]float64, trace bool) ([][]float64, StreamStats, []TraceEvent) {
	if len(inputs) == 0 {
		return nil, StreamStats{}, nil
	}
	depth := pipelineDepth
	sess := n.session()
	layers := make([]*simLayer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = &simLayer{layer: l, exec: &sess.layers[i], state: layerIdle, tag: -1}
	}
	outputs := make([][]float64, len(inputs))
	outCycles := make([]int, 0, len(inputs))
	var events []TraceEvent
	record := func(cycle, li int, st layerState, tag int) {
		if trace {
			events = append(events, TraceEvent{Cycle: cycle, Layer: li, State: st.String(), Tag: tag})
		}
	}

	nextInput := 0
	produced := 0
	cycle := 0
	const maxCycles = 1 << 30
	for produced < len(inputs) && cycle < maxCycles {
		// Walk layers from the back so a handoff frees the predecessor
		// within the same cycle (register-to-register transfer).
		for li := len(layers) - 1; li >= 0; li-- {
			sl := layers[li]
			if sl.state != layerDone {
				continue
			}
			if li == len(layers)-1 {
				// readout layer: emit the network output
				logits := make([]float64, len(sl.output))
				for j, c := range sl.output {
					logits[j] = n.Arith.Decode(c)
				}
				outputs[sl.tag] = logits
				outCycles = append(outCycles, cycle)
				produced++
				sl.state = layerIdle
				record(cycle, li, layerIdle, sl.tag)
				continue
			}
			succ := layers[li+1]
			if succ.state == layerIdle {
				succ.accept(sl.output, sl.tag)
				succ.state = layerBusy
				record(cycle, li+1, layerBusy, sl.tag)
				sl.state = layerIdle
				record(cycle, li, layerIdle, sl.tag)
			}
		}
		// Feed a new input into layer 0 if it is free.
		if nextInput < len(inputs) && layers[0].state == layerIdle {
			layers[0].accept(n.QuantizeInput(inputs[nextInput]), nextInput)
			layers[0].state = layerBusy
			record(cycle, 0, layerBusy, nextInput)
			nextInput++
		}
		// Advance every busy layer by one activation cycle.
		for li, sl := range layers {
			if sl.state != layerBusy {
				continue
			}
			sl.step++
			if sl.step >= sl.layer.In+depth {
				sl.compute(n, li)
				sl.state = layerDone
				record(cycle, li, layerDone, sl.tag)
			}
		}
		cycle++
	}
	if produced < len(inputs) {
		panic("core: streaming simulation did not converge")
	}

	stats := StreamStats{Inputs: len(inputs), TotalCycles: cycle}
	if len(outCycles) > 0 {
		// The output latches at the end of cycle outCycles[0]-1 and is
		// consumed in the handoff phase of cycle outCycles[0], so the
		// input→output latency equals the cycle index itself.
		stats.FirstLatency = outCycles[0]
	}
	if len(outCycles) > 1 {
		last := len(outCycles) - 1
		stats.SteadyInterval = outCycles[last] - outCycles[last-1]
	}
	if cycle > 0 {
		stats.ThroughputPerKC = 1000 * float64(produced) / float64(cycle)
	}
	return outputs, stats, events
}

// accept loads an input vector into the layer.
func (sl *simLayer) accept(input []emac.Code, tag int) {
	if len(input) != sl.layer.In {
		panic(fmt.Sprintf("core: layer expects %d inputs, got %d", sl.layer.In, len(input)))
	}
	sl.input = input
	sl.tag = tag
	sl.step = 0
}

// compute runs the layer's execution plane over the loaded input (the
// numeric work all happens when the FSM says the layer has finished
// consuming; the per-cycle Step calls are semantically identical, so we
// batch them). The output is latched into a fresh slice because the exec
// layer's activation buffer is reused on the layer's next firing, which
// can happen while the successor still holds this output.
func (sl *simLayer) compute(n *Network, li int) {
	raw := sl.exec.forward(sl.input)
	out := make([]emac.Code, len(raw))
	for j, c := range raw {
		if li < len(n.Layers)-1 {
			c = n.activate(c)
		}
		out[j] = c
	}
	sl.output = out
}

// BottleneckCycles returns the steady-state initiation interval of the
// pipeline: max over layers of (fanin + depth).
func (n *Network) BottleneckCycles() int {
	max := 0
	for _, l := range n.Layers {
		if c := l.In + pipelineDepth; c > max {
			max = c
		}
	}
	return max
}
