package core

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
)

// MixedNetwork is a Deep Positron variant with per-layer arithmetic — the
// natural generalisation of the paper's "precision-adaptable" EMACs
// (every layer already owns its own EMAC array and local memory, so
// nothing in the architecture requires a single global format). At layer
// boundaries activations are re-encoded into the next layer's format by a
// format-conversion unit (decode → round), the same single-rounding step
// the EMAC output stage already performs. Like Network, a MixedNetwork is
// the immutable model plane; execution state lives in MixedSession.
type MixedNetwork struct {
	LayerAriths []emac.Arithmetic // one per layer
	Layers      []*Layer
	// Stand, when non-nil, is a per-feature standardizer folded into the
	// deployment artifact (see Network.Stand).
	Stand *datasets.Standardizer
	// def is the lazily-built default session backing the convenience
	// wrappers (not safe for concurrent use; see Network.def).
	def *MixedSession
}

// QuantizeMixed lowers a trained float64 network with one arithmetic per
// layer. len(ariths) must equal the number of layers.
func QuantizeMixed(src *nn.Network, ariths []emac.Arithmetic) *MixedNetwork {
	if len(ariths) != len(src.Layers) {
		panic(fmt.Sprintf("core: %d arithmetics for %d layers", len(ariths), len(src.Layers)))
	}
	net := &MixedNetwork{LayerAriths: ariths}
	for li, l := range src.Layers {
		a := ariths[li]
		ql := &Layer{In: l.In, Out: l.Out}
		ql.W = make([][]emac.Code, l.Out)
		for j, row := range l.W {
			qrow := make([]emac.Code, l.In)
			for i, w := range row {
				qrow[i] = a.Quantize(w)
			}
			ql.W[j] = qrow
		}
		ql.B = make([]emac.Code, l.Out)
		for j, b := range l.B {
			ql.B[j] = a.Quantize(b)
		}
		net.Layers = append(net.Layers, ql)
	}
	return net
}

// session returns the lazily-built default session.
func (n *MixedNetwork) session() *MixedSession {
	if n.def == nil {
		n.def = n.NewSession()
	}
	return n.def
}

// Infer runs one input through the mixed-precision pipeline via the
// default session. Not safe for concurrent use — build one MixedSession
// per goroutine with NewSession for that.
func (n *MixedNetwork) Infer(x []float64) []float64 { return n.session().Infer(x) }

// Predict returns the argmax class (default session; not safe for
// concurrent use).
func (n *MixedNetwork) Predict(x []float64) int { return n.session().Predict(x) }

// Accuracy evaluates classification accuracy (default session; not safe
// for concurrent use).
func (n *MixedNetwork) Accuracy(ds *datasets.Dataset) float64 { return n.session().Accuracy(ds) }

// NewInferer builds an independent execution plane (Model interface).
func (n *MixedNetwork) NewInferer() Inferer { return n.NewSession() }

// Kind identifies the artifact kind (Model interface).
func (n *MixedNetwork) Kind() string { return "mixed" }

// InputDim is the feature width the network consumes.
func (n *MixedNetwork) InputDim() int { return n.Layers[0].In }

// OutputDim is the number of output logits.
func (n *MixedNetwork) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// NumLayers is the layer count.
func (n *MixedNetwork) NumLayers() int { return len(n.Layers) }

// Ariths returns a copy of the per-layer arithmetics.
func (n *MixedNetwork) Ariths() []emac.Arithmetic {
	return append([]emac.Arithmetic(nil), n.LayerAriths...)
}

// ArithNames returns the per-layer arithmetic descriptors.
func (n *MixedNetwork) ArithNames() []string {
	out := make([]string, len(n.LayerAriths))
	for i, a := range n.LayerAriths {
		out[i] = a.Name()
	}
	return out
}

// Standardizer returns the folded input standardizer, or nil.
func (n *MixedNetwork) Standardizer() *datasets.Standardizer { return n.Stand }

// MemoryBits returns the per-layer-format parameter storage.
func (n *MixedNetwork) MemoryBits() int {
	total := 0
	for li, l := range n.Layers {
		total += (l.In*l.Out + l.Out) * int(n.LayerAriths[li].BitWidth())
	}
	return total
}

// String renders like "DeepPositron[posit(8,0)|posit(6,1)|posit(8,0)]".
func (n *MixedNetwork) String() string {
	s := "DeepPositron["
	for i, a := range n.LayerAriths {
		if i > 0 {
			s += "|"
		}
		s += a.Name()
	}
	return s + "]"
}

// SearchPerLayerFixed performs one pass of coordinate descent over
// per-layer fixed-point fraction widths at total width n: start from the
// best global q, then re-optimise each layer's q holding the others
// fixed. A single shared Q-format must compromise between layers whose
// activations live at different scales; per-layer q removes that
// compromise (the global-q collapse on WBC is the paper's Table II
// fixed-point story).
func SearchPerLayerFixed(src *nn.Network, test *datasets.Dataset, n uint) (*MixedNetwork, []uint) {
	_, _, fixeds := Candidates(n)
	globalBest := Best(src, test, fixeds)
	globalQ := globalBest.Arith.(emac.FixedArith).F.Q()

	qs := make([]uint, len(src.Layers))
	for i := range qs {
		qs[i] = globalQ
	}
	build := func(qs []uint) *MixedNetwork {
		ariths := make([]emac.Arithmetic, len(qs))
		for i, q := range qs {
			ariths[i] = emac.NewFixed(n, q)
		}
		return QuantizeMixed(src, ariths)
	}
	bestAcc := build(qs).Accuracy(test)
	for li := range qs {
		for q := uint(1); q < n; q++ {
			if q == qs[li] {
				continue
			}
			trial := append([]uint(nil), qs...)
			trial[li] = q
			if acc := build(trial).Accuracy(test); acc > bestAcc {
				bestAcc = acc
				qs = trial
			}
		}
	}
	return build(qs), qs
}
