package core

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
)

// MixedNetwork is a Deep Positron variant with per-layer arithmetic — the
// natural generalisation of the paper's "precision-adaptable" EMACs
// (every layer already owns its own EMAC array and local memory, so
// nothing in the architecture requires a single global format). At layer
// boundaries activations are re-encoded into the next layer's format by a
// format-conversion unit (decode → round), the same single-rounding step
// the EMAC output stage already performs.
type MixedNetwork struct {
	Ariths []emac.Arithmetic // one per layer
	Layers []*Layer
	// in is the reused input-code buffer; Infer is not safe for
	// concurrent use (the EMACs and kernels are stateful anyway).
	in []emac.Code
}

// QuantizeMixed lowers a trained float64 network with one arithmetic per
// layer. len(ariths) must equal the number of layers.
func QuantizeMixed(src *nn.Network, ariths []emac.Arithmetic) *MixedNetwork {
	if len(ariths) != len(src.Layers) {
		panic(fmt.Sprintf("core: %d arithmetics for %d layers", len(ariths), len(src.Layers)))
	}
	net := &MixedNetwork{Ariths: ariths}
	for li, l := range src.Layers {
		a := ariths[li]
		ql := &Layer{In: l.In, Out: l.Out}
		ql.W = make([][]emac.Code, l.Out)
		for j, row := range l.W {
			qrow := make([]emac.Code, l.In)
			for i, w := range row {
				qrow[i] = a.Quantize(w)
			}
			ql.W[j] = qrow
		}
		ql.B = make([]emac.Code, l.Out)
		for j, b := range l.B {
			ql.B[j] = a.Quantize(b)
		}
		ql.macs = make([]emac.MAC, l.Out)
		for j := range ql.macs {
			ql.macs[j] = a.NewMAC(l.In)
		}
		ql.attachFastPath(a)
		net.Layers = append(net.Layers, ql)
	}
	return net
}

// Infer runs one input through the mixed-precision pipeline.
func (n *MixedNetwork) Infer(x []float64) []float64 {
	if len(x) != n.Layers[0].In {
		panic("core: mixed input size mismatch")
	}
	// quantise input in the first layer's format (reused buffer)
	if cap(n.in) < len(x) {
		n.in = make([]emac.Code, len(x))
	}
	act := n.in[:len(x)]
	for i, v := range x {
		act[i] = n.Ariths[0].Quantize(v)
	}
	for li, layer := range n.Layers {
		a := n.Ariths[li]
		next := layer.forward(act)
		if li < len(n.Layers)-1 {
			for j, c := range next {
				next[j] = a.ReLU(c)
			}
		}
		if li < len(n.Layers)-1 {
			// format-conversion unit at the layer boundary
			to := n.Ariths[li+1]
			if to != a {
				for j, c := range next {
					next[j] = to.Quantize(a.Decode(c))
				}
			}
		}
		act = next
	}
	last := n.Ariths[len(n.Ariths)-1]
	logits := make([]float64, len(act))
	for i, c := range act {
		logits[i] = last.Decode(c)
	}
	return logits
}

// Predict returns the argmax class.
func (n *MixedNetwork) Predict(x []float64) int { return nn.Argmax(n.Infer(x)) }

// Accuracy evaluates classification accuracy.
func (n *MixedNetwork) Accuracy(ds *datasets.Dataset) float64 {
	correct := 0
	for i := range ds.X {
		if n.Predict(ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// MemoryBits returns the per-layer-format parameter storage.
func (n *MixedNetwork) MemoryBits() int {
	total := 0
	for li, l := range n.Layers {
		total += (l.In*l.Out + l.Out) * int(n.Ariths[li].BitWidth())
	}
	return total
}

// String renders like "DeepPositron[posit(8,0)|posit(6,1)|posit(8,0)]".
func (n *MixedNetwork) String() string {
	s := "DeepPositron["
	for i, a := range n.Ariths {
		if i > 0 {
			s += "|"
		}
		s += a.Name()
	}
	return s + "]"
}

// SearchPerLayerFixed performs one pass of coordinate descent over
// per-layer fixed-point fraction widths at total width n: start from the
// best global q, then re-optimise each layer's q holding the others
// fixed. A single shared Q-format must compromise between layers whose
// activations live at different scales; per-layer q removes that
// compromise (the global-q collapse on WBC is the paper's Table II
// fixed-point story).
func SearchPerLayerFixed(src *nn.Network, test *datasets.Dataset, n uint) (*MixedNetwork, []uint) {
	_, _, fixeds := Candidates(n)
	globalBest := Best(src, test, fixeds)
	globalQ := globalBest.Arith.(emac.FixedArith).F.Q()

	qs := make([]uint, len(src.Layers))
	for i := range qs {
		qs[i] = globalQ
	}
	build := func(qs []uint) *MixedNetwork {
		ariths := make([]emac.Arithmetic, len(qs))
		for i, q := range qs {
			ariths[i] = emac.NewFixed(n, q)
		}
		return QuantizeMixed(src, ariths)
	}
	bestAcc := build(qs).Accuracy(test)
	for li := range qs {
		for q := uint(1); q < n; q++ {
			if q == qs[li] {
				continue
			}
			trial := append([]uint(nil), qs...)
			trial[li] = q
			if acc := build(trial).Accuracy(test); acc > bestAcc {
				bestAcc = acc
				qs = trial
			}
		}
	}
	return build(qs), qs
}
