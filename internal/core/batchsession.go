package core

// The batched execution plane. InferBatchInto runs a whole flush of
// samples through the network in one fused pass per layer: activations
// for all samples live in one flat sample-major plane, each layer's
// BatchLayerKernel consumes the plane in a single call (decoding every
// activation column once per flush and streaming each pre-decoded
// weight row through all samples while hot), and two ping-pong planes
// are reused across flushes so the steady state allocates nothing.
// Results are bit-identical to per-sample inference — each sample's
// arithmetic is unchanged, only the loop order differs.

import (
	"fmt"

	"repro/internal/emac"
)

// growPlane sizes one reused activation plane.
func growPlane(p *[]emac.Code, n int) []emac.Code {
	if cap(*p) < n {
		*p = make([]emac.Code, n)
	}
	return (*p)[:n]
}

// forwardBatch computes the layer's raw MAC outputs for a flush of b
// samples over flat sample-major planes, via the whole-flush batch
// kernel when one exists and per-sample forwards otherwise.
func (e *execLayer) forwardBatch(act, dst []emac.Code, b int) {
	if e.bkernel != nil {
		e.bkernel.ForwardBatchStrided(act, dst, b)
		return
	}
	l := e.model
	for s := 0; s < b; s++ {
		row := act[s*l.In : (s+1)*l.In]
		drow := dst[s*l.Out : (s+1)*l.Out]
		if e.kernel != nil {
			e.kernel.Forward(row, drow)
			continue
		}
		for j := 0; j < l.Out; j++ {
			mac := e.macs[j]
			mac.Reset(l.B[j])
			wrow := l.W[j]
			for i, a := range row {
				mac.Step(wrow[i], a)
			}
			drow[j] = mac.Result()
		}
	}
}

// runBatch executes the fused forward pass for a whole flush and returns
// the final activation codes (flat sample-major, living in a reused
// plane).
func (s *Session) runBatch(xs [][]float64) []emac.Code {
	n := s.net
	b := len(xs)
	in0 := n.Layers[0].In
	plane := growPlane(&s.planes[0], b*in0)
	a := n.Arith
	st := n.Stand
	for si, x := range xs {
		if len(x) != in0 {
			panic(fmt.Sprintf("core: network expects %d inputs, got %d", in0, len(x)))
		}
		dst := plane[si*in0 : (si+1)*in0]
		if st != nil {
			for i, v := range x {
				dst[i] = a.Quantize((v - st.Mean[i]) / st.Std[i])
			}
		} else {
			for i, v := range x {
				dst[i] = a.Quantize(v)
			}
		}
	}
	act := plane
	for li := range s.layers {
		e := &s.layers[li]
		next := growPlane(&s.planes[(li+1)%2], b*e.model.Out)
		e.forwardBatch(act, next, b)
		if li < len(s.layers)-1 {
			for j, c := range next {
				next[j] = n.activate(c)
			}
		}
		act = next
	}
	return act
}

// InferBatchInto runs a whole flush of inputs through the fused batched
// layer kernels, decoding the logits into the flat sample-major dst
// (which must have len(xs) × the network's output width), and returns
// dst. Results are bit-identical to calling InferInto per sample; with
// the session's planes warm this path allocates nothing.
func (s *Session) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	act := s.runBatch(xs)
	if len(dst) != len(act) {
		panic(fmt.Sprintf("core: InferBatchInto buffer has %d slots for %d logits", len(dst), len(act)))
	}
	a := s.net.Arith
	for i, c := range act {
		dst[i] = a.Decode(c)
	}
	return dst
}

// runBatch is the mixed-precision fused forward pass: per-layer
// arithmetics, with ReLU and the format-conversion unit applied to the
// whole plane at each boundary.
func (s *MixedSession) runBatch(xs [][]float64) []emac.Code {
	n := s.net
	b := len(xs)
	in0 := n.Layers[0].In
	plane := growPlane(&s.planes[0], b*in0)
	first := n.LayerAriths[0]
	st := n.Stand
	for si, x := range xs {
		if len(x) != in0 {
			panic("core: mixed input size mismatch")
		}
		dst := plane[si*in0 : (si+1)*in0]
		if st != nil {
			for i, v := range x {
				dst[i] = first.Quantize((v - st.Mean[i]) / st.Std[i])
			}
		} else {
			for i, v := range x {
				dst[i] = first.Quantize(v)
			}
		}
	}
	act := plane
	for li := range s.layers {
		a := n.LayerAriths[li]
		e := &s.layers[li]
		next := growPlane(&s.planes[(li+1)%2], b*e.model.Out)
		e.forwardBatch(act, next, b)
		if li < len(s.layers)-1 {
			for j, c := range next {
				next[j] = a.ReLU(c)
			}
			to := n.LayerAriths[li+1]
			if to != a {
				for j, c := range next {
					next[j] = to.Quantize(a.Decode(c))
				}
			}
		}
		act = next
	}
	return act
}

// InferBatchInto runs a whole flush through the mixed-precision fused
// pipeline, decoding the logits into the flat sample-major dst, and
// returns dst. Bit-identical to per-sample InferInto.
func (s *MixedSession) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	act := s.runBatch(xs)
	if len(dst) != len(act) {
		panic(fmt.Sprintf("core: InferBatchInto buffer has %d slots for %d logits", len(dst), len(act)))
	}
	last := s.net.LayerAriths[len(s.net.LayerAriths)-1]
	for i, c := range act {
		dst[i] = last.Decode(c)
	}
	return dst
}
