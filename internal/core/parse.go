package core

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/emac"
	"repro/internal/fixedpoint"
	"repro/internal/minifloat"
	"repro/internal/posit"
)

// Validated arithmetic construction. The emac constructors panic on
// invalid parameters (they are programmer-facing); artifacts and CLI
// specs come from outside the program, so these helpers validate through
// the error-returning format constructors first.

func newPositArith(n, es, quireDrop uint) (emac.Arithmetic, error) {
	if _, err := posit.NewFormat(n, es); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a := emac.NewPosit(n, es)
	a.QuireDrop = quireDrop
	return a, nil
}

func newFloatArith(n, we uint) (emac.Arithmetic, error) {
	if we+1 >= n {
		return nil, fmt.Errorf("core: float width %d cannot fit we=%d", n, we)
	}
	if _, err := minifloat.NewFormat(we, n-1-we); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return emac.NewFloatN(n, we), nil
}

func newFixedArith(n, q uint) (emac.Arithmetic, error) {
	if _, err := fixedpoint.NewFormat(n, q); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return emac.NewFixed(n, q), nil
}

// Spec grammar: each pattern must consume the whole spec, so trailing
// garbage ("posit(8,0)x") is rejected rather than silently ignored.
var (
	positSpecRE = regexp.MustCompile(`^posit\((\d+),(\d+)\)$`)
	floatSpecRE = regexp.MustCompile(`^float\((\d+),(\d+)\)$`)
	fixedSpecRE = regexp.MustCompile(`^fixed\((\d+),(?:q=)?(\d+)\)$`)
)

// ParseArith parses a human-readable arithmetic spec into an EMAC arm.
// Accepted forms (matching Arithmetic.Name for posit/fixed):
//
//	posit(n,es)   e.g. posit(8,0)
//	float(n,we)   e.g. float(8,4) — an n-bit minifloat with we exponent bits
//	fixed(n,q)    e.g. fixed(8,4) — Q-format with q fraction bits
//	float32       the paper's 32-bit baseline arm
func ParseArith(spec string) (emac.Arithmetic, error) {
	s := strings.ReplaceAll(strings.TrimSpace(spec), " ", "")
	if s == "float32" {
		return emac.Float32Arith{}, nil
	}
	parse2 := func(m []string) (uint, uint, error) {
		a, err := strconv.ParseUint(m[1], 10, 8)
		if err != nil {
			return 0, 0, fmt.Errorf("core: arithmetic %q: %w", spec, err)
		}
		b, err := strconv.ParseUint(m[2], 10, 8)
		if err != nil {
			return 0, 0, fmt.Errorf("core: arithmetic %q: %w", spec, err)
		}
		return uint(a), uint(b), nil
	}
	if m := positSpecRE.FindStringSubmatch(s); m != nil {
		n, es, err := parse2(m)
		if err != nil {
			return nil, err
		}
		return newPositArith(n, es, 0)
	}
	if m := floatSpecRE.FindStringSubmatch(s); m != nil {
		n, we, err := parse2(m)
		if err != nil {
			return nil, err
		}
		return newFloatArith(n, we)
	}
	if m := fixedSpecRE.FindStringSubmatch(s); m != nil {
		n, q, err := parse2(m)
		if err != nil {
			return nil, err
		}
		return newFixedArith(n, q)
	}
	return nil, fmt.Errorf(
		"core: cannot parse arithmetic %q (want posit(n,es), float(n,we), fixed(n,q) or float32)", spec)
}
