package core

// The execution plane. A Session owns every piece of mutable inference
// state for one Network — EMAC banks, pre-decoded layer kernels and
// activation scratch — mirroring the nn.Scratch pattern: one Session
// serves one goroutine, and any number of sessions can share one
// immutable Network. This is the shared-nothing substrate the batch
// engine (internal/engine) builds its worker pool on.

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
)

// execLayer is the execution-plane state for one model layer: either a
// pre-decoded batched kernel (when the arithmetic offers one) or a bank
// of per-neuron EMACs, plus the layer's reused output activation buffer.
type execLayer struct {
	model *Layer
	// kernel is the batched pre-decoded datapath for the whole layer
	// (nil when the arithmetic has none); bit-identical to the MACs.
	kernel emac.LayerKernel
	// bkernel is the whole-flush batched datapath (nil when the
	// arithmetic offers none); bit-identical to per-sample forwards.
	bkernel emac.BatchLayerKernel
	// macs holds one EMAC unit per neuron, reused across inputs exactly
	// like the hardware units are. Built only when there is no kernel.
	macs []emac.MAC
	// act is the layer's reused output activation buffer.
	act []emac.Code
}

// newExecLayer builds the execution state for one layer under one
// arithmetic.
func newExecLayer(l *Layer, a emac.Arithmetic) execLayer {
	e := execLayer{model: l, act: make([]emac.Code, l.Out)}
	if bb, ok := a.(emac.BatchKernelBuilder); ok {
		if bk, ok := bb.NewBatchLayerKernel(l.W, l.B); ok {
			e.bkernel = bk
		}
	}
	if kb, ok := a.(emac.KernelBuilder); ok {
		if k, ok := kb.NewLayerKernel(l.W, l.B); ok {
			e.kernel = k
			return e
		}
	}
	e.macs = make([]emac.MAC, l.Out)
	for j := range e.macs {
		e.macs[j] = a.NewMAC(l.In)
	}
	return e
}

// forward computes the layer's raw MAC outputs (bias + dot product, one
// rounding each, no activation function) into the reused act buffer, via
// the batched kernel when one exists and per-neuron EMACs otherwise.
// Single- and mixed-precision inference share this one implementation.
func (e *execLayer) forward(act []emac.Code) []emac.Code {
	next := e.act
	if e.kernel != nil {
		e.kernel.Forward(act, next)
		return next
	}
	l := e.model
	for j := 0; j < l.Out; j++ {
		mac := e.macs[j]
		mac.Reset(l.B[j])
		wrow := l.W[j]
		for i, a := range act {
			mac.Step(wrow[i], a)
		}
		next[j] = mac.Result()
	}
	return next
}

// Session is the per-goroutine execution state for one Network. Sessions
// are cheap relative to a dataset sweep (construction pre-decodes the
// weights once per layer) and are not safe for concurrent use; the
// Network they execute is never written through them.
type Session struct {
	net    *Network
	layers []execLayer
	// in is the reused input-code buffer.
	in []emac.Code
	// planes are the two reused ping-pong activation planes the batched
	// forward pass flows through (flat sample-major, grown to the
	// largest flush × layer width seen).
	planes [2][]emac.Code
}

// NewSession builds an independent execution plane for the network. Any
// number of sessions may run concurrently over the same Network.
func (n *Network) NewSession() *Session {
	s := &Session{net: n, layers: make([]execLayer, len(n.Layers))}
	for i, l := range n.Layers {
		s.layers[i] = newExecLayer(l, n.Arith)
	}
	return s
}

// Network returns the model plane this session executes.
func (s *Session) Network() *Network { return s.net }

// quantizeInput converts a raw feature vector into the session's reused
// input-code buffer, applying the network's folded standardizer first
// when one is present.
func (s *Session) quantizeInput(x []float64) []emac.Code {
	if cap(s.in) < len(x) {
		s.in = make([]emac.Code, len(x))
	}
	codes := s.in[:len(x)]
	a := s.net.Arith
	if st := s.net.Stand; st != nil {
		for i, v := range x {
			codes[i] = a.Quantize((v - st.Mean[i]) / st.Std[i])
		}
	} else {
		for i, v := range x {
			codes[i] = a.Quantize(v)
		}
	}
	return codes
}

// run executes the full forward pass and returns the final activation
// codes (living in the last layer's reused buffer).
func (s *Session) run(x []float64) []emac.Code {
	n := s.net
	if len(x) != n.Layers[0].In {
		panic(fmt.Sprintf("core: network expects %d inputs, got %d", n.Layers[0].In, len(x)))
	}
	act := s.quantizeInput(x)
	for li := range s.layers {
		e := &s.layers[li]
		if len(act) != e.model.In {
			panic(fmt.Sprintf("core: layer %d expects %d inputs, got %d", li, e.model.In, len(act)))
		}
		next := e.forward(act)
		if li < len(s.layers)-1 {
			for j, c := range next {
				next[j] = n.activate(c)
			}
		}
		act = next
	}
	return act
}

// Infer runs one input through the network and returns the decoded output
// logits. The compute follows the paper's dataflow: each layer's EMACs
// reset to their bias, consume one activation per cycle, and the layer
// fires when its predecessor finishes. Layers whose arithmetic provides a
// batched kernel run it instead of stepping per-neuron MACs (identical
// results, one pre-decoded pass); activations flow through per-layer
// reused buffers, so steady-state inference only allocates the returned
// logits.
func (s *Session) Infer(x []float64) []float64 {
	act := s.run(x)
	logits := make([]float64, len(act))
	for i, c := range act {
		logits[i] = s.net.Arith.Decode(c)
	}
	return logits
}

// InferInto is Infer with the logits decoded into a caller-provided
// buffer (len must equal the network's output width): the allocation-free
// inference path for dataset sweeps and shared-output batches.
func (s *Session) InferInto(dst []float64, x []float64) []float64 {
	act := s.run(x)
	if len(dst) != len(act) {
		panic(fmt.Sprintf("core: InferInto buffer has %d slots for %d logits", len(dst), len(act)))
	}
	for i, c := range act {
		dst[i] = s.net.Arith.Decode(c)
	}
	return dst
}

// Predict returns the argmax class for one input.
func (s *Session) Predict(x []float64) int { return nn.Argmax(s.Infer(x)) }

// Accuracy evaluates classification accuracy on a dataset.
func (s *Session) Accuracy(ds *datasets.Dataset) float64 {
	correct := 0
	for i := range ds.X {
		if s.Predict(ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// MixedSession is the per-goroutine execution state for one MixedNetwork.
type MixedSession struct {
	net    *MixedNetwork
	layers []execLayer
	in     []emac.Code
	planes [2][]emac.Code
}

// NewSession builds an independent execution plane for the mixed network.
func (n *MixedNetwork) NewSession() *MixedSession {
	s := &MixedSession{net: n, layers: make([]execLayer, len(n.Layers))}
	for i, l := range n.Layers {
		s.layers[i] = newExecLayer(l, n.LayerAriths[i])
	}
	return s
}

// Network returns the model plane this session executes.
func (s *MixedSession) Network() *MixedNetwork { return s.net }

// run executes the full mixed-precision forward pass and returns the
// final activation codes (living in the last layer's reused buffer).
func (s *MixedSession) run(x []float64) []emac.Code {
	n := s.net
	if len(x) != n.Layers[0].In {
		panic("core: mixed input size mismatch")
	}
	// quantise input in the first layer's format (reused buffer),
	// standardizing first when the artifact folds a standardizer
	if cap(s.in) < len(x) {
		s.in = make([]emac.Code, len(x))
	}
	act := s.in[:len(x)]
	first := n.LayerAriths[0]
	if st := n.Stand; st != nil {
		for i, v := range x {
			act[i] = first.Quantize((v - st.Mean[i]) / st.Std[i])
		}
	} else {
		for i, v := range x {
			act[i] = first.Quantize(v)
		}
	}
	for li := range s.layers {
		a := n.LayerAriths[li]
		next := s.layers[li].forward(act)
		if li < len(s.layers)-1 {
			for j, c := range next {
				next[j] = a.ReLU(c)
			}
			// format-conversion unit at the layer boundary
			to := n.LayerAriths[li+1]
			if to != a {
				for j, c := range next {
					next[j] = to.Quantize(a.Decode(c))
				}
			}
		}
		act = next
	}
	return act
}

// Infer runs one input through the mixed-precision pipeline.
func (s *MixedSession) Infer(x []float64) []float64 {
	act := s.run(x)
	last := s.net.LayerAriths[len(s.net.LayerAriths)-1]
	logits := make([]float64, len(act))
	for i, c := range act {
		logits[i] = last.Decode(c)
	}
	return logits
}

// InferInto is Infer with the logits decoded into a caller-provided
// buffer (len must equal the network's output width).
func (s *MixedSession) InferInto(dst []float64, x []float64) []float64 {
	act := s.run(x)
	if len(dst) != len(act) {
		panic(fmt.Sprintf("core: InferInto buffer has %d slots for %d logits", len(dst), len(act)))
	}
	last := s.net.LayerAriths[len(s.net.LayerAriths)-1]
	for i, c := range act {
		dst[i] = last.Decode(c)
	}
	return dst
}

// Predict returns the argmax class.
func (s *MixedSession) Predict(x []float64) int { return nn.Argmax(s.Infer(x)) }

// Accuracy evaluates classification accuracy.
func (s *MixedSession) Accuracy(ds *datasets.Dataset) float64 {
	correct := 0
	for i := range ds.X {
		if s.Predict(ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
