// Package minifloat implements parameterised IEEE-754-style floating point
// with 1 sign bit, we exponent bits and wf fraction bits — the "float"
// arm of the paper's three-way EMAC comparison (Fig. 4). Subnormals are
// supported (the paper's EMAC performs subnormal detection at its inputs),
// rounding is round-to-nearest-even, and — following the paper's hardware,
// which "does not overflow to infinity" — rounding saturates at the
// largest finite magnitude. Inf/NaN patterns exist in the encoding (the
// top exponent code is reserved, IEEE-style) and are honoured by the
// scalar codec, but arithmetic never produces them from finite inputs.
package minifloat

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/dyadic"
)

// MaxWidth bounds the total format width.
const MaxWidth = 32

// Format describes a minifloat layout (1, we, wf).
type Format struct {
	we, wf uint
}

// NewFormat validates and returns a format. we >= 2 keeps the IEEE
// interpretation sensible (bias >= 1); total width must not exceed 32.
func NewFormat(we, wf uint) (Format, error) {
	if we < 2 || we > 11 {
		return Format{}, fmt.Errorf("minifloat: we must be in [2,11], got %d", we)
	}
	if 1+we+wf > MaxWidth {
		return Format{}, fmt.Errorf("minifloat: total width 1+%d+%d exceeds %d", we, wf, MaxWidth)
	}
	return Format{we: we, wf: wf}, nil
}

// MustFormat panics on invalid parameters.
func MustFormat(we, wf uint) Format {
	f, err := NewFormat(we, wf)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the total width 1 + we + wf.
func (f Format) N() uint { return 1 + f.we + f.wf }

// WE returns the exponent width.
func (f Format) WE() uint { return f.we }

// WF returns the fraction width.
func (f Format) WF() uint { return f.wf }

func (f Format) valid() bool { return f.we >= 2 }

func (f Format) mustValid() {
	if !f.valid() {
		panic("minifloat: zero Format; use NewFormat")
	}
}

// Bias returns the exponent bias 2^(we-1) - 1.
func (f Format) Bias() int { return int(uint(1)<<(f.we-1)) - 1 }

// ExpMax returns the largest normal exponent field value, 2^we - 2
// (the all-ones code is reserved for Inf/NaN).
func (f Format) ExpMax() int { return int(uint(1)<<f.we) - 2 }

// MaxValue returns the largest finite value: 2^(expmax-bias) × (2 - 2^-wf).
func (f Format) MaxValue() float64 {
	return math.Ldexp(2-math.Ldexp(1, -int(f.wf)), f.ExpMax()-f.Bias())
}

// MinValue returns the smallest positive (subnormal) value:
// 2^(1-bias) × 2^-wf.
func (f Format) MinValue() float64 {
	return math.Ldexp(1, 1-f.Bias()-int(f.wf))
}

// MinNormal returns the smallest positive normal value, 2^(1-bias).
func (f Format) MinNormal() float64 { return math.Ldexp(1, 1-f.Bias()) }

// DynamicRangeLog10 returns log10(max/min), the paper's Fig. 6 x-axis.
func (f Format) DynamicRangeLog10() float64 {
	return math.Log10(f.MaxValue()) - math.Log10(f.MinValue())
}

// Mask returns the n-bit pattern mask.
func (f Format) Mask() uint64 { return bitutil.Mask(f.N()) }

func (f Format) signBit() uint64 { return uint64(1) << (f.we + f.wf) }

// String renders like "float(8: we=4,wf=3)".
func (f Format) String() string {
	return fmt.Sprintf("float(%d: we=%d,wf=%d)", f.N(), f.we, f.wf)
}

// Zero returns +0.
func (f Format) Zero() Float { f.mustValid(); return Float{f: f} }

// Max returns the largest finite positive value.
func (f Format) Max() Float {
	f.mustValid()
	return Float{f: f, bits: uint64(f.ExpMax())<<f.wf | bitutil.Mask(f.wf)}
}

// Inf returns the infinity of the given sign (sign < 0 for -Inf).
func (f Format) Inf(sign int) Float {
	f.mustValid()
	b := uint64(f.ExpMax()+1) << f.wf
	if sign < 0 {
		b |= f.signBit()
	}
	return Float{f: f, bits: b}
}

// NaN returns a quiet NaN pattern.
func (f Format) NaN() Float {
	f.mustValid()
	return Float{f: f, bits: uint64(f.ExpMax()+1)<<f.wf | 1}
}

// One returns 1.0.
func (f Format) One() Float {
	f.mustValid()
	return Float{f: f, bits: uint64(f.Bias()) << f.wf}
}

// FromBits wraps a raw pattern.
func (f Format) FromBits(b uint64) Float {
	f.mustValid()
	return Float{f: f, bits: b & f.Mask()}
}

// Count returns the number of patterns, 2^n.
func (f Format) Count() uint64 { return uint64(1) << f.N() }

// Float is one minifloat value.
type Float struct {
	f    Format
	bits uint64
}

// Format returns the value's format.
func (x Float) Format() Format { return x.f }

// Bits returns the raw pattern.
func (x Float) Bits() uint64 { return x.bits }

func (x Float) expField() uint64  { return (x.bits >> x.f.wf) & bitutil.Mask(x.f.we) }
func (x Float) fracField() uint64 { return x.bits & bitutil.Mask(x.f.wf) }

// SignBit reports the raw sign bit.
func (x Float) SignBit() bool { return x.bits&x.f.signBit() != 0 }

// IsZero reports ±0.
func (x Float) IsZero() bool { return x.expField() == 0 && x.fracField() == 0 }

// IsInf reports ±Inf.
func (x Float) IsInf() bool {
	return x.expField() == uint64(x.f.ExpMax()+1) && x.fracField() == 0
}

// IsNaN reports any NaN pattern.
func (x Float) IsNaN() bool {
	return x.expField() == uint64(x.f.ExpMax()+1) && x.fracField() != 0
}

// IsSubnormal reports a nonzero value with a zero exponent field.
func (x Float) IsSubnormal() bool { return x.expField() == 0 && x.fracField() != 0 }

// Neg flips the sign bit.
func (x Float) Neg() Float { return Float{f: x.f, bits: x.bits ^ x.f.signBit()} }

// Abs clears the sign bit.
func (x Float) Abs() Float { return Float{f: x.f, bits: x.bits &^ x.f.signBit()} }

// decoded mirrors the posit package convention: value =
// (-1)^sign × 2^sf × sig / 2^(sigW-1), hidden bit at sigW-1.
type decoded struct {
	sign bool
	sf   int
	sig  uint64
	sigW uint
}

// decode unpacks a finite nonzero value (caller excludes zero/Inf/NaN).
// Subnormal detection adjusts the hidden bit and exponent, exactly as the
// EMAC's input stage does.
func (x Float) decode() decoded {
	e := x.expField()
	frac := x.fracField()
	if e == 0 { // subnormal
		l := uint(bits.Len64(frac))
		return decoded{
			sign: x.SignBit(),
			sf:   1 - x.f.Bias() - int(x.f.wf) + int(l) - 1,
			sig:  frac,
			sigW: l,
		}
	}
	return decoded{
		sign: x.SignBit(),
		sf:   int(e) - x.f.Bias(),
		sig:  frac | uint64(1)<<x.f.wf,
		sigW: x.f.wf + 1,
	}
}

// Float64 returns the exact value (all minifloat values fit binary64).
func (x Float) Float64() float64 {
	if x.IsNaN() {
		return math.NaN()
	}
	if x.IsInf() {
		return math.Inf(boolSign(x.SignBit()))
	}
	if x.IsZero() {
		if x.SignBit() {
			return math.Copysign(0, -1)
		}
		return 0
	}
	d := x.decode()
	v := math.Ldexp(float64(d.sig), d.sf-int(d.sigW)+1)
	if d.sign {
		v = -v
	}
	return v
}

func boolSign(neg bool) int {
	if neg {
		return -1
	}
	return 1
}

// Dyadic returns the exact value; ok is false for Inf/NaN.
func (x Float) Dyadic() (dyadic.D, bool) {
	if x.IsNaN() || x.IsInf() {
		return dyadic.Zero(), false
	}
	if x.IsZero() {
		return dyadic.Zero(), true
	}
	d := x.decode()
	m := int64(d.sig)
	if d.sign {
		m = -m
	}
	return dyadic.New(m, d.sf-int(d.sigW)+1), true
}

// encode rounds (-1)^sign × 2^sf × sig/2^(sigW-1) (plus sticky) to the
// format: round-to-nearest-even with gradual underflow; overflow saturates
// at ±Max, mirroring the paper's clip-at-max EMAC semantics.
func (f Format) encode(sign bool, sf int, sig uint64, sigW uint, sticky bool) Float {
	f.mustValid()
	if sig == 0 {
		panic("minifloat: encode of zero significand")
	}
	if uint(bits.Len64(sig)) != sigW {
		panic("minifloat: encode significand not normalised")
	}
	minNormScale := 1 - f.Bias()
	maxScale := f.ExpMax() - f.Bias()

	signBits := uint64(0)
	if sign {
		signBits = f.signBit()
	}

	if sf >= minNormScale {
		// Normal candidate: round sig to wf+1 bits.
		m, carried := roundSig(sig, sigW, f.wf+1, sticky)
		if carried {
			sf++
		}
		if sf > maxScale {
			return Float{f: f, bits: signBits | f.Max().bits} // clip
		}
		e := uint64(sf + f.Bias())
		return Float{f: f, bits: signBits | e<<f.wf | m&bitutil.Mask(f.wf)}
	}

	// Subnormal candidate: quantise to the fixed subnormal ULP
	// 2^(minNormScale - wf).
	e2 := sf - int(sigW) + 1 // exponent of sig's LSB
	d := (minNormScale - int(f.wf)) - e2
	var q uint64
	if d <= 0 {
		// sig's LSB already sits on (or above) the subnormal grid.
		if sticky {
			// Callers only pass sticky with >= wf+3 significand bits,
			// which forces d > 0; anything else would lose rounding
			// information here.
			panic("minifloat: sticky with coarse subnormal significand")
		}
		q = sig << uint(-d)
	} else {
		du := uint(d)
		var kept uint64
		var guard bool
		var st bool
		switch {
		case du > 64:
			st = sig != 0
		case du == 64:
			guard = sig>>63 == 1
			st = stickyBelow(sig, 63)
		default:
			kept = sig >> du
			guard = (sig>>(du-1))&1 == 1
			st = stickyBelow(sig, du-1)
		}
		q = bitutil.RoundNearestEven(kept, guard, st || sticky)
	}
	// q may have carried into the hidden position (== normal min): the
	// IEEE encoding absorbs this naturally since exp field 0 + overflowed
	// fraction equals exp field 1, frac 0.
	if q > bitutil.Mask(f.wf+1) {
		panic("minifloat: subnormal rounding overflow beyond normal min")
	}
	return Float{f: f, bits: signBits | q}
}

// stickyBelow reports whether any of the low `w` bits of x are set.
func stickyBelow(x uint64, w uint) bool {
	if w == 0 {
		return false
	}
	if w >= 64 {
		return x != 0
	}
	return x&bitutil.Mask(w) != 0
}

// roundSig rounds a normalised significand of width sigW down to `keep`
// bits with RNE; reports whether the rounding carried out of the top
// (result re-normalised to `keep` bits in that case).
func roundSig(sig uint64, sigW, keep uint, sticky bool) (m uint64, carried bool) {
	if sigW <= keep {
		if sticky {
			// Callers pass sticky only alongside >= wf+3 significand
			// bits, so the cut always lands inside sig.
			panic("minifloat: sticky with short significand")
		}
		return sig << (keep - sigW), false
	}
	drop := sigW - keep
	kept := sig >> drop
	guard := (sig>>(drop-1))&1 == 1
	st := stickyBelow(sig, drop-1) || sticky
	m = bitutil.RoundNearestEven(kept, guard, st)
	if m == uint64(1)<<keep { // carried: 111...1 -> 1000...0
		return m >> 1, true
	}
	return m, false
}

// FromFloat64 rounds x to the format (RNE, clip at ±Max, gradual
// underflow to ±0). NaN maps to NaN, ±Inf to ±Inf.
func (f Format) FromFloat64(x float64) Float {
	f.mustValid()
	if math.IsNaN(x) {
		return f.NaN()
	}
	if math.IsInf(x, 1) {
		return f.Inf(1)
	}
	if math.IsInf(x, -1) {
		return f.Inf(-1)
	}
	if x == 0 {
		z := f.Zero()
		if math.Signbit(x) {
			z.bits |= f.signBit()
		}
		return z
	}
	b := math.Float64bits(x)
	sign := b>>63 == 1
	exp := int((b >> 52) & 0x7ff)
	frac := b & bitutil.Mask(52)
	var sig uint64
	var sf int
	if exp == 0 {
		sig = frac
		sf = bits.Len64(frac) - 1 - 1074
	} else {
		sig = frac | 1<<52
		sf = exp - 1023
	}
	out := f.encode(sign, sf, sig, uint(bits.Len64(sig)), false)
	return out
}

// FromDyadic rounds an exact dyadic value to the format.
func (f Format) FromDyadic(d dyadic.D) Float {
	f.mustValid()
	if d.IsZero() {
		return f.Zero()
	}
	count := f.wf + 3
	if count < 8 {
		count = 8
	}
	if count > 64 {
		count = 64
	}
	sig, sticky := d.TopBits(count)
	return f.encode(d.Sign() < 0, d.Scale(), sig, count, sticky)
}

// Mul returns x*y with a single rounding.
func (x Float) Mul(y Float) Float {
	if x.f != y.f {
		panic("minifloat: Mul across formats")
	}
	switch {
	case x.IsNaN() || y.IsNaN():
		return x.f.NaN()
	case x.IsInf() || y.IsInf():
		if x.IsZero() || y.IsZero() {
			return x.f.NaN() // 0 × Inf
		}
		return x.f.Inf(boolSign(x.SignBit() != y.SignBit()))
	case x.IsZero() || y.IsZero():
		z := x.f.Zero()
		if x.SignBit() != y.SignBit() {
			z.bits |= x.f.signBit()
		}
		return z
	}
	dx, dy := x.decode(), y.decode()
	prod := dx.sig * dy.sig
	l := uint(bits.Len64(prod))
	sf := dx.sf + dy.sf - int(dx.sigW) - int(dy.sigW) + 2 + int(l) - 1
	return x.f.encode(dx.sign != dy.sign, sf, prod, l, false)
}

// Add returns x+y with a single rounding.
func (x Float) Add(y Float) Float {
	if x.f != y.f {
		panic("minifloat: Add across formats")
	}
	switch {
	case x.IsNaN() || y.IsNaN():
		return x.f.NaN()
	case x.IsInf() && y.IsInf():
		if x.SignBit() != y.SignBit() {
			return x.f.NaN()
		}
		return x
	case x.IsInf():
		return x
	case y.IsInf():
		return y
	case x.IsZero():
		if y.IsZero() && x.SignBit() && y.SignBit() {
			return x // -0 + -0 = -0
		}
		if y.IsZero() {
			return x.f.Zero()
		}
		return y
	case y.IsZero():
		return x
	}
	dx, dy := x.decode(), y.decode()
	const top = 61
	sx := dx.sig << (top - (dx.sigW - 1))
	sy := dy.sig << (top - (dy.sigW - 1))
	ex, ey := dx.sf, dy.sf
	signX, signY := dx.sign, dy.sign
	if ey > ex || (ey == ex && sy > sx) {
		sx, sy = sy, sx
		ex, ey = ey, ex
		signX, signY = signY, signX
	}
	d := uint(ex - ey)
	var sticky bool
	sy, sticky = bitutil.ShiftRightSticky(sy, d)
	var mag uint64
	sign := signX
	if signX == signY {
		mag = sx + sy
	} else {
		mag = sx - sy
		if sticky {
			mag--
		}
		if mag == 0 {
			if !sticky {
				return x.f.Zero()
			}
			panic("minifloat: cancellation with sticky residue")
		}
	}
	l := uint(bits.Len64(mag))
	sf := ex + int(l) - 1 - top
	return x.f.encode(sign, sf, mag, l, sticky)
}

// Sub returns x-y.
func (x Float) Sub(y Float) Float { return x.Add(y.Neg()) }

// Cmp orders finite values numerically (-1,0,+1); panics on NaN.
func (x Float) Cmp(y Float) int {
	if x.IsNaN() || y.IsNaN() {
		panic("minifloat: Cmp of NaN")
	}
	vx, vy := x.Float64(), y.Float64()
	switch {
	case vx < vy:
		return -1
	case vx > vy:
		return 1
	default:
		return 0
	}
}

// String renders the value.
func (x Float) String() string {
	switch {
	case x.IsNaN():
		return fmt.Sprintf("%s[NaN]", x.f)
	case x.IsInf():
		return fmt.Sprintf("%s[%cInf]", x.f, "+-"[b2i(x.SignBit())])
	default:
		return fmt.Sprintf("%s[%#x]=%g", x.f, x.bits, x.Float64())
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
