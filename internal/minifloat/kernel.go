package minifloat

// DenseKernel is the pre-decoded batched datapath for one dense layer in
// the float arm: y[j] = round(b[j] + Σ_i W[j][i]·x[i]), one RNE rounding
// per output. Weights and biases are unpacked once at construction into
// (sign, significand, LSB scale) triples — the work the EMAC's input
// stage (subnormal detection, hidden-bit insertion) does per operand on
// the per-neuron path. Per forward pass the activations are unpacked once
// into a reused scratch buffer and every row accumulates into one reused
// eq.-(3) wide register, so the MAC loop is multiply / shift / wide-add
// with no decode and no interface dispatch. Results are bit-identical to
// driving a per-neuron Accumulator through ResetToBias/MulAdd/Result,
// which the equivalence tests verify exhaustively.

// fdec is one pre-decoded operand: value = (-1)^neg × sig × 2^lsb.
// Zero is sig == 0; NaN/Inf carry special (and sig == 0 so a special
// operand contributes nothing if it ever reaches an accumulation loop).
type fdec struct {
	sig     uint64
	lsb     int32
	neg     bool
	special bool
}

// predecodeFloat unpacks one raw pattern.
func predecodeFloat(f Format, bits uint64) fdec {
	x := f.FromBits(bits)
	if x.IsNaN() || x.IsInf() {
		return fdec{special: true}
	}
	if x.IsZero() {
		return fdec{}
	}
	d := x.decode()
	return fdec{sig: d.sig, lsb: int32(d.sf - int(d.sigW) + 1), neg: d.sign}
}

// DenseKernel holds the pre-decoded parameters and reused execution
// scratch for one layer. Not safe for concurrent use.
type DenseKernel struct {
	f       Format
	in, out int
	w       []fdec // row-major out×in pre-decoded weights
	b       []fdec // pre-decoded biases
	// specialRow[j] records a NaN/Inf weight or bias in row j: the row's
	// result is NaN regardless of the activations (MulAdd's poisoning
	// semantics), so the MAC loop carries no special-value branch.
	specialRow []bool
	acts       []fdec
	acc        *Accumulator
}

// NewDenseKernel pre-decodes a row-major weight matrix (out rows of in
// weights) and bias vector of format f into a reusable layer kernel.
// ok is false for empty shapes.
func NewDenseKernel(f Format, w [][]Float, b []Float) (*DenseKernel, bool) {
	f.mustValid()
	out := len(w)
	if out == 0 || len(b) != out || len(w[0]) == 0 {
		return nil, false
	}
	in := len(w[0])
	k := &DenseKernel{
		f:          f,
		in:         in,
		out:        out,
		w:          make([]fdec, out*in),
		b:          make([]fdec, out),
		specialRow: make([]bool, out),
		acts:       make([]fdec, in),
		// Sized for in accumulations, matching a per-neuron EMAC built
		// with NewMAC(in): same register width, same wrap behaviour.
		acc: NewAccumulator(f, in),
	}
	for j, row := range w {
		if len(row) != in {
			panic("minifloat: DenseKernel ragged weight matrix")
		}
		dst := k.w[j*in : (j+1)*in]
		for i, v := range row {
			if v.f != f {
				panic("minifloat: DenseKernel weight format mismatch")
			}
			dst[i] = predecodeFloat(f, v.bits)
		}
	}
	for j, v := range b {
		if v.f != f {
			panic("minifloat: DenseKernel bias format mismatch")
		}
		k.b[j] = predecodeFloat(f, v.bits)
	}
	for j := 0; j < out; j++ {
		special := k.b[j].special
		for _, wd := range k.w[j*in : (j+1)*in] {
			if wd.special {
				special = true
				break
			}
		}
		k.specialRow[j] = special
	}
	return k, true
}

// In returns the layer fan-in.
func (k *DenseKernel) In() int { return k.in }

// Out returns the layer width.
func (k *DenseKernel) Out() int { return k.out }

// Format returns the kernel's float format.
func (k *DenseKernel) Format() Format { return k.f }

// ForwardBits computes dst[j] = round(b[j] + Σ_i W[j][i]·act[i]) on raw
// n-bit patterns. len(act) must equal In() and len(dst) must equal
// Out(). Not safe for concurrent use (the register and activation
// scratch are reused).
func (k *DenseKernel) ForwardBits(act, dst []uint64) {
	if len(act) != k.in {
		panic("minifloat: DenseKernel input size mismatch")
	}
	if len(dst) != k.out {
		panic("minifloat: DenseKernel output size mismatch")
	}
	actSpecial := false
	for i, bits := range act {
		d := predecodeFloat(k.f, bits)
		k.acts[i] = d
		if d.special {
			actSpecial = true
		}
	}
	a := k.acc
	fb := int(a.fracBits)
	nan := k.f.NaN().Bits()
	for j := 0; j < k.out; j++ {
		if actSpecial || k.specialRow[j] {
			// A NaN/Inf operand anywhere poisons the whole accumulation,
			// exactly as MulAdd's sticky nan flag would.
			dst[j] = nan
			continue
		}
		a.acc.SetZero()
		a.nan = false
		if bd := &k.b[j]; bd.sig != 0 {
			shift := uint(fb + int(bd.lsb))
			if bd.neg {
				a.acc.SubUint64Shifted(bd.sig, shift)
			} else {
				a.acc.AddUint64Shifted(bd.sig, shift)
			}
		}
		row := k.w[j*k.in : (j+1)*k.in]
		acts := k.acts[:len(row)]
		for i := range row {
			w, x := &row[i], &acts[i]
			prod := w.sig * x.sig
			if prod == 0 {
				continue
			}
			shift := uint(fb + int(w.lsb) + int(x.lsb))
			if w.neg != x.neg {
				a.acc.SubUint64Shifted(prod, shift)
			} else {
				a.acc.AddUint64Shifted(prod, shift)
			}
		}
		dst[j] = a.Result().Bits()
	}
}
