package minifloat

import (
	"testing"

	"repro/internal/rng"
)

func randFloats(f Format, n int, r *rng.Source) []Float {
	out := make([]Float, n)
	for i := range out {
		out[i] = f.FromBits(r.Uint64() & f.Mask())
	}
	return out
}

// TestBatchDenseKernelMatchesPerSample checks random layers (NaN/Inf
// patterns included) against the per-sample kernel for several paper
// formats.
func TestBatchDenseKernelMatchesPerSample(t *testing.T) {
	r := rng.New(13)
	for _, tc := range []struct{ we, wf uint }{{4, 3}, {3, 4}, {2, 5}, {3, 2}, {2, 2}} {
		f := MustFormat(tc.we, tc.wf)
		for trial := 0; trial < 4; trial++ {
			in, out := 1+r.Intn(30), 1+r.Intn(10)
			if AccumSize(f, in) > 64 {
				continue
			}
			w := make([][]Float, out)
			for j := range w {
				w[j] = randFloats(f, in, r)
			}
			b := randFloats(f, out, r)
			bk, ok := NewBatchDenseKernel(f, w, b)
			if !ok {
				t.Fatalf("%v: no batch kernel for in=%d", f, in)
			}
			sk, ok := NewDenseKernel(f, w, b)
			if !ok {
				t.Fatalf("%v: no per-sample kernel", f)
			}
			batch := 1 + r.Intn(9)
			act := make([]uint64, batch*in)
			for i := range act {
				act[i] = r.Uint64() & f.Mask()
			}
			got := make([]uint64, batch*out)
			bk.ForwardBatchBits(act, got, batch)
			want := make([]uint64, out)
			for s := 0; s < batch; s++ {
				sk.ForwardBits(act[s*in:(s+1)*in], want)
				for j, wb := range want {
					if got[s*out+j] != wb {
						t.Fatalf("%v in=%d: sample %d row %d: batch %#x, per-sample %#x",
							f, in, s, j, got[s*out+j], wb)
					}
				}
			}
		}
	}
}

// TestBatchDenseKernelExhaustive sweeps every (weight, activation) 8-bit
// pattern pair through a 1×1 float(4,3) layer for several bias classes
// (zero, subnormal, normal, NaN) against the per-sample kernel.
func TestBatchDenseKernelExhaustive(t *testing.T) {
	f := MustFormat(4, 3)
	count := 1 << f.N()
	for _, bias := range []uint64{0, 0x01, 0x42, f.NaN().Bits()} {
		bv := []Float{f.FromBits(bias)}
		for wb := 0; wb < count; wb++ {
			w := [][]Float{{f.FromBits(uint64(wb))}}
			bk, ok := NewBatchDenseKernel(f, w, bv)
			if !ok {
				t.Fatal("no batch kernel for 1x1 float(4,3)")
			}
			sk, _ := NewDenseKernel(f, w, bv)
			act := make([]uint64, count)
			for ab := range act {
				act[ab] = uint64(ab)
			}
			got := make([]uint64, count)
			bk.ForwardBatchBits(act, got, count)
			want := make([]uint64, 1)
			for ab := 0; ab < count; ab++ {
				sk.ForwardBits(act[ab:ab+1], want)
				if got[ab] != want[0] {
					t.Fatalf("bias %#x w %#x a %#x: batch %#x, per-sample %#x",
						bias, wb, ab, got[ab], want[0])
				}
			}
		}
	}
}

// TestBatchDenseKernelGates checks the decline conditions.
func TestBatchDenseKernelGates(t *testing.T) {
	f := MustFormat(4, 3)
	bk, ok := NewBatchDenseKernel(f, [][]Float{{f.Zero()}}, []Float{f.Zero()})
	if !ok {
		t.Fatal("float(4,3) 1x1 should qualify")
	}
	bk.ForwardBatchBits(nil, nil, 0) // empty flush must not panic
	wide := MustFormat(5, 10)        // 16-bit: too wide to enumerate
	if _, ok := NewBatchDenseKernel(wide, [][]Float{{wide.Zero()}}, []Float{wide.Zero()}); ok {
		t.Fatal("16-bit float must have no term-table batch kernel")
	}
}
