package minifloat

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/dyadic"
	"repro/internal/wide"
)

// CeilLog2Ratio returns ceil(log2(max/min)) for the format, computed
// exactly: max/min = 2^(expmax-1) × (2^(wf+1) - 1).
func (f Format) CeilLog2Ratio() uint {
	f.mustValid()
	return uint(f.ExpMax()-1) + bitutil.Clog2(uint64(1)<<(f.wf+1)-1)
}

// AccumSize returns the paper's eq. (3) accumulator width for k products:
//
//	wa = ceil(log2 k) + 2 × ceil(log2(max/min)) + 2
func AccumSize(f Format, k int) uint {
	if k < 1 {
		panic("minifloat: accumulator capacity must be >= 1")
	}
	return bitutil.Clog2(uint64(k)) + 2*f.CeilLog2Ratio() + 2
}

// Accumulator is the float EMAC's wide fixed-point register (Fig. 4): the
// Kulisch-style accumulator into which exact products of minifloats are
// added after conversion to fixed point, with one rounding at readout.
type Accumulator struct {
	f        Format
	capacity int
	fracBits uint // binary point: 2 × (bias - 1 + wf)
	acc      *wide.Int
	// mag is the reused readout scratch (|register| during Result), so
	// steady-state accumulate/readout cycles do not touch the heap.
	mag  *wide.Int
	adds int
	nan  bool
}

// NewAccumulator returns an empty accumulator sized by eq. (3).
func NewAccumulator(f Format, k int) *Accumulator {
	f.mustValid()
	return &Accumulator{
		f:        f,
		capacity: k,
		fracBits: 2 * uint(f.Bias()-1+int(f.wf)),
		acc:      wide.New(AccumSize(f, k)),
	}
}

// Format returns the accumulated format.
func (a *Accumulator) Format() Format { return a.f }

// Capacity returns the sized-for accumulation count.
func (a *Accumulator) Capacity() int { return a.capacity }

// Width returns the register width (eq. (3)).
func (a *Accumulator) Width() uint { return a.acc.Width() }

// Adds returns the number of accumulations since reset.
func (a *Accumulator) Adds() int { return a.adds }

// Reset clears the register.
func (a *Accumulator) Reset() {
	a.acc.SetZero()
	a.adds = 0
	a.nan = false
}

// ResetToBias clears the register and preloads the bias value, mirroring
// the paper's D-flip-flop reset trick.
func (a *Accumulator) ResetToBias(bias Float) {
	a.Reset()
	a.AddFloat(bias)
	a.adds = 0
}

// AddFloat accumulates the exact value of x.
func (a *Accumulator) AddFloat(x Float) {
	if x.f != a.f {
		panic("minifloat: accumulator format mismatch")
	}
	if x.IsNaN() || x.IsInf() {
		a.nan = true
		return
	}
	a.adds++
	if x.IsZero() {
		return
	}
	d := x.decode()
	// The register's fraction depth covers products down to min²; a
	// single input's LSB sits at scale >= 1-bias-wf >= -fracBits/2.
	shift := int(a.fracBits) + d.sf - int(d.sigW) + 1
	if shift < 0 {
		panic("minifloat: accumulator shift underflow")
	}
	if d.sign {
		a.acc.SubUint64Shifted(d.sig, uint(shift))
	} else {
		a.acc.AddUint64Shifted(d.sig, uint(shift))
	}
}

// MulAdd accumulates the exact product w × x: multiply, convert to fixed
// point (2's complement by the product sign, shift by the biased scale
// factor), wide add — the datapath of Fig. 4.
func (a *Accumulator) MulAdd(w, x Float) {
	if w.f != a.f || x.f != a.f {
		panic("minifloat: accumulator format mismatch")
	}
	if w.IsNaN() || x.IsNaN() || w.IsInf() || x.IsInf() {
		a.nan = true
		return
	}
	a.adds++
	if w.IsZero() || x.IsZero() {
		return
	}
	dw, dx := w.decode(), x.decode()
	prod := dw.sig * dx.sig
	lsbScale := dw.sf - int(dw.sigW) + 1 + dx.sf - int(dx.sigW) + 1
	shift := int(a.fracBits) + lsbScale
	if shift < 0 {
		panic("minifloat: accumulator shift underflow")
	}
	if dw.sign != dx.sign {
		a.acc.SubUint64Shifted(prod, uint(shift))
	} else {
		a.acc.AddUint64Shifted(prod, uint(shift))
	}
}

// Result rounds the register to the nearest representable value, with the
// paper's semantics: RNE, gradual underflow, clip at ±Max, never Inf.
func (a *Accumulator) Result() Float {
	if a.nan {
		return a.f.NaN()
	}
	if a.acc.IsZero() {
		return a.f.Zero()
	}
	if a.mag == nil {
		a.mag = wide.New(a.acc.Width())
	}
	mag := a.mag.Set(a.acc)
	sign := mag.Sign()
	if sign {
		mag.Neg()
	}
	l := mag.Len()
	var count uint = 64
	if l < count {
		count = l
	}
	sig := mag.Extract(l-count, count)
	sticky := mag.AnyBelow(l - count)
	sf := int(l) - 1 - int(a.fracBits)
	// Guard the short-significand paths: with fewer than wf+3 bits the
	// value is exact on the grid, so sticky is necessarily false.
	return a.f.encode(sign, sf, sig, count, sticky)
}

// Dyadic returns the current exact register value (oracle hook).
func (a *Accumulator) Dyadic() dyadic.D {
	return dyadic.FromBig(a.acc.Big(), -int(a.fracBits))
}

// IsNaN reports whether a NaN/Inf was absorbed.
func (a *Accumulator) IsNaN() bool { return a.nan }

// DotProduct computes the exactly rounded dot product of minifloat
// vectors with a single rounding.
func DotProduct(w, x []Float) Float {
	if len(w) != len(x) {
		panic("minifloat: DotProduct length mismatch")
	}
	if len(w) == 0 {
		panic("minifloat: DotProduct of empty vectors")
	}
	a := NewAccumulator(w[0].f, len(w))
	for i := range w {
		a.MulAdd(w[i], x[i])
	}
	return a.Result()
}

// String renders accumulator state for debugging.
func (a *Accumulator) String() string {
	return fmt.Sprintf("facc[%s,k=%d,w=%d]", a.f, a.capacity, a.acc.Width())
}
