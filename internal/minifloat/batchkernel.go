package minifloat

// BatchDenseKernel is the GEMM-style batched datapath for one dense
// layer in the float arm, mirroring the posit batch kernel's structure:
// activations are classified and transposed into a column-major byte
// plane once per flush, and the inner loop adds precomputed signed MAC
// terms — the exact product (-1)^s·sig_w·sig_a·2^(lsb_w+lsb_a) of every
// (weight, activation) pattern pair at the register's fraction depth —
// from a per-format table, so one table row streams through all samples
// while hot. It qualifies only when the format is narrow enough to
// enumerate (n <= 8) and the eq.-(3) register for the fan-in fits one
// int64; rounding then replicates Accumulator.Result on a single
// machine word. NewBatchDenseKernel reports ok == false otherwise.
// Results are bit-identical to DenseKernel.ForwardBits per sample,
// verified by the exhaustive equivalence tests.

import (
	"math/bits"
	"sync"

	"repro/internal/bitutil"
)

// batchTabStride pads every term-table row to 256 entries so the byte-
// indexed inner loop can use a fixed-size array view (no bounds check).
const batchTabStride = 256

var (
	batchTabMu sync.Mutex
	batchTabs  = map[Format][]int64{}
)

// termTab returns the signed MAC-term table for f (nil when n > 8),
// built lazily and cached for the process lifetime. Memory cost:
// 2^n × 256 × 8 bytes — 512 KiB at the n = 8 ceiling.
func (f Format) termTab() []int64 {
	if f.N() > 8 {
		return nil
	}
	batchTabMu.Lock()
	defer batchTabMu.Unlock()
	if t, ok := batchTabs[f]; ok {
		return t
	}
	fracBits := 2 * (f.Bias() - 1 + int(f.wf))
	count := 1 << f.N()
	t := make([]int64, count*batchTabStride)
	for wb := 0; wb < count; wb++ {
		wd := predecodeFloat(f, uint64(wb))
		if wd.special || wd.sig == 0 {
			continue // specials are handled by the row/sample scans
		}
		row := t[wb*batchTabStride : (wb+1)*batchTabStride]
		for ab := 0; ab < count; ab++ {
			ad := predecodeFloat(f, uint64(ab))
			if ad.special || ad.sig == 0 {
				continue
			}
			// The per-sample kernel's term: exact significand product at
			// the register's fraction depth. The shift is non-negative
			// (a product's LSB scale is at least -fracBits) and the term
			// fits int64 because a single product fits the eq.-(3)
			// register, which the constructor caps at 64 bits.
			v := wd.sig * ad.sig << uint(fracBits+int(wd.lsb)+int(ad.lsb))
			if wd.neg != ad.neg {
				row[ab] = -int64(v)
			} else {
				row[ab] = int64(v)
			}
		}
	}
	batchTabs[f] = t
	return t
}

// BatchDenseKernel holds the pre-decoded parameters and reused flush
// scratch for one layer. Not safe for concurrent use.
type BatchDenseKernel struct {
	f       Format
	in, out int
	tab     []int64
	// wRow[j*in+i] is the term-table row offset of weight (j,i) (already
	// ×batchTabStride); -1 for zero/special weights.
	wRow []int32
	// biasTerm[j] is the bias contribution at the register's fraction
	// depth (0 for zero or special biases; specials set specialRow).
	biasTerm []int64
	// specialRow[j] records a NaN/Inf weight or bias in row j.
	specialRow []bool
	width      uint // AccumSize(f, in) <= 64
	widthMask  uint64
	fracBits   uint
	nanBits    uint64

	actT []uint8
	spS  []bool
	acc  []int64
}

// NewBatchDenseKernel pre-decodes a row-major weight matrix and bias
// vector of format f into a batched layer kernel. ok is false when the
// format is too wide to enumerate (n > 8) or the eq.-(3) register for
// this fan-in does not fit one machine word.
func NewBatchDenseKernel(f Format, w [][]Float, b []Float) (*BatchDenseKernel, bool) {
	f.mustValid()
	out := len(w)
	if out == 0 || len(b) != out || len(w[0]) == 0 {
		return nil, false
	}
	in := len(w[0])
	width := AccumSize(f, in)
	if f.N() > 8 || width > 64 {
		return nil, false
	}
	k := &BatchDenseKernel{
		f:          f,
		in:         in,
		out:        out,
		tab:        f.termTab(),
		wRow:       make([]int32, out*in),
		biasTerm:   make([]int64, out),
		specialRow: make([]bool, out),
		width:      width,
		widthMask:  bitutil.Mask(width),
		fracBits:   2 * uint(f.Bias()-1+int(f.wf)),
		nanBits:    f.NaN().Bits(),
	}
	for j, row := range w {
		if len(row) != in {
			panic("minifloat: BatchDenseKernel ragged weight matrix")
		}
		special := false
		dst := k.wRow[j*in : (j+1)*in]
		for i, v := range row {
			if v.f != f {
				panic("minifloat: BatchDenseKernel weight format mismatch")
			}
			d := predecodeFloat(f, v.bits)
			if d.special {
				special = true
			}
			if d.special || d.sig == 0 {
				dst[i] = -1
			} else {
				dst[i] = int32(v.bits) * batchTabStride
			}
		}
		bv := b[j]
		if bv.f != f {
			panic("minifloat: BatchDenseKernel bias format mismatch")
		}
		bd := predecodeFloat(f, bv.bits)
		if bd.special {
			special = true
		} else if bd.sig != 0 {
			v := int64(bd.sig << uint(int(k.fracBits)+int(bd.lsb)))
			if bd.neg {
				v = -v
			}
			k.biasTerm[j] = v
		}
		k.specialRow[j] = special
	}
	return k, true
}

// In returns the layer fan-in.
func (k *BatchDenseKernel) In() int { return k.in }

// Out returns the layer width.
func (k *BatchDenseKernel) Out() int { return k.out }

// Format returns the kernel's float format.
func (k *BatchDenseKernel) Format() Format { return k.f }

func (k *BatchDenseKernel) grow(b int) {
	if cap(k.actT) < k.in*b {
		k.actT = make([]uint8, k.in*b)
	}
	if cap(k.spS) < b {
		k.spS = make([]bool, b)
	}
	if cap(k.acc) < b {
		k.acc = make([]int64, b)
	}
}

// encodeAcc rounds one sample's register — Accumulator.Result on a
// single machine word (the register residue is the int64 masked to the
// eq.-(3) width; the significand never needs truncation or sticky bits
// because the whole magnitude fits 64 bits).
func (k *BatchDenseKernel) encodeAcc(a int64) uint64 {
	m := uint64(a) & k.widthMask
	sign := m>>(k.width-1)&1 == 1
	if sign {
		m = -m & k.widthMask
	}
	if m == 0 {
		return 0
	}
	l := uint(bits.Len64(m))
	return k.f.encode(sign, int(l)-1-int(k.fracBits), m, l, false).Bits()
}

// ForwardBatchBits computes dst[s*Out()+j] = round(b[j] + Σ_i
// W[j][i]·act[s*In()+i]) for every sample s: flat sample-major planes,
// len(act) = b·In(), len(dst) = b·Out(). Not safe for concurrent use.
func (k *BatchDenseKernel) ForwardBatchBits(act, dst []uint64, b int) {
	if b < 0 || len(act) != b*k.in || len(dst) != b*k.out {
		panic("minifloat: BatchDenseKernel batch size mismatch")
	}
	if b == 0 {
		return
	}
	k.grow(b)
	mask := k.f.Mask()
	in, out := k.in, k.out
	actT, spS := k.actT, k.spS
	for s := 0; s < b; s++ {
		special := false
		row := act[s*in : (s+1)*in]
		for i, p := range row {
			p &= mask
			x := Float{f: k.f, bits: p}
			if x.IsNaN() || x.IsInf() {
				special = true
			}
			actT[i*b+s] = uint8(p)
		}
		spS[s] = special
	}
	acc := k.acc[:b]
	for j := 0; j < out; j++ {
		bt := k.biasTerm[j]
		for s := range acc {
			acc[s] = bt
		}
		wr := k.wRow[j*in : (j+1)*in]
		for i, off := range wr {
			if off < 0 {
				continue
			}
			row := (*[batchTabStride]int64)(k.tab[off:])
			col := actT[i*b : i*b+b]
			for s, a := range col {
				acc[s] += row[a]
			}
		}
		if k.specialRow[j] {
			for s := 0; s < b; s++ {
				dst[s*out+j] = k.nanBits
			}
			continue
		}
		for s, a := range acc {
			if spS[s] {
				dst[s*out+j] = k.nanBits
			} else {
				dst[s*out+j] = k.encodeAcc(a)
			}
		}
	}
}
