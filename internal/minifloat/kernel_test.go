package minifloat

// Equivalence tests for the pre-decoded layer kernel: the batched path
// must be bit-identical to the per-neuron Accumulator reference over the
// ENTIRE operand space (including NaN/Inf/subnormal patterns) for the
// paper's 8-bit formats, and on random multi-term layers. Style mirrors
// internal/posit/table_test.go.

import (
	"testing"

	"repro/internal/rng"
)

// macBits drives the reference per-neuron path for one (w, x, bias).
func macBits(f Format, w, x, b Float) uint64 {
	a := NewAccumulator(f, 1)
	a.ResetToBias(b)
	a.MulAdd(w, x)
	return a.Result().Bits()
}

// allPatternsKernel builds a 2^n-row, fan-in-1 kernel whose row j holds
// weight pattern j, so one ForwardBits sweeps every weight against one
// activation.
func allPatternsKernel(t *testing.T, f Format, bias Float) *DenseKernel {
	t.Helper()
	count := int(f.Count())
	w := make([][]Float, count)
	b := make([]Float, count)
	for j := 0; j < count; j++ {
		w[j] = []Float{f.FromBits(uint64(j))}
		b[j] = bias
	}
	k, ok := NewDenseKernel(f, w, b)
	if !ok {
		t.Fatalf("%s: no fast path for fan-in 1", f)
	}
	return k
}

func sweepPairs(t *testing.T, f Format, bias Float) {
	t.Helper()
	k := allPatternsKernel(t, f, bias)
	count := f.Count()
	act := make([]uint64, 1)
	dst := make([]uint64, count)
	for x := uint64(0); x < count; x++ {
		act[0] = x
		k.ForwardBits(act, dst)
		xf := f.FromBits(x)
		for wbits := uint64(0); wbits < count; wbits++ {
			ref := macBits(f, f.FromBits(wbits), xf, bias)
			if dst[wbits] != ref {
				t.Fatalf("%s bias=%v: w=%#x x=%#x kernel %#x != mac %#x",
					f, bias, wbits, x, dst[wbits], ref)
			}
		}
	}
}

// TestKernelExhaustive8Bit: every (weight, activation) pair — NaN, Inf,
// subnormals and all — of the paper's float(8,4) format and the extreme
// exponent splits at n = 8, against the MAC reference, for zero,
// saturated, subnormal and special biases.
func TestKernelExhaustive8Bit(t *testing.T) {
	f := MustFormat(4, 3) // float(8): we=4, wf=3 — the Table II arm
	biases := []Float{
		f.Zero(), f.Max(), f.Max().Neg(), f.One(),
		f.FromBits(1), // smallest subnormal
		f.NaN(), f.Inf(1),
	}
	for _, bias := range biases {
		sweepPairs(t, f, bias)
	}
	for _, cfg := range []struct{ we, wf uint }{{2, 5}, {5, 2}} {
		fe := MustFormat(cfg.we, cfg.wf)
		sweepPairs(t, fe, fe.FromFloat64(-0.375))
	}
}

// TestKernelExhaustiveSmall: all pairs of every format with n <= 6 and a
// nonzero bias.
func TestKernelExhaustiveSmall(t *testing.T) {
	for we := uint(2); we <= 4; we++ {
		for wf := uint(1); 1+we+wf <= 6; wf++ {
			f := MustFormat(we, wf)
			sweepPairs(t, f, f.FromFloat64(0.75))
		}
	}
}

// TestKernelRandomLayers: multi-term rows against per-neuron
// accumulators, random patterns including specials.
func TestKernelRandomLayers(t *testing.T) {
	r := rng.New(78)
	for _, cfg := range []struct{ we, wf uint }{{4, 3}, {2, 5}, {5, 10}, {8, 7}} {
		f := MustFormat(cfg.we, cfg.wf)
		const in, out = 30, 16
		w := make([][]Float, out)
		b := make([]Float, out)
		for j := range w {
			row := make([]Float, in)
			for i := range row {
				row[i] = f.FromBits(r.Uint64() & f.Mask())
			}
			w[j] = row
			b[j] = f.FromBits(r.Uint64() & f.Mask())
		}
		k, ok := NewDenseKernel(f, w, b)
		if !ok {
			t.Fatalf("%s: no fast path at fan-in %d", f, in)
		}
		act := make([]uint64, in)
		dst := make([]uint64, out)
		for trial := 0; trial < 50; trial++ {
			for i := range act {
				act[i] = r.Uint64() & f.Mask()
			}
			k.ForwardBits(act, dst)
			for j := 0; j < out; j++ {
				a := NewAccumulator(f, in)
				a.ResetToBias(b[j])
				for i := range act {
					a.MulAdd(w[j][i], f.FromBits(act[i]))
				}
				if ref := a.Result().Bits(); dst[j] != ref {
					t.Fatalf("%s trial %d row %d: kernel %#x != mac %#x",
						f, trial, j, dst[j], ref)
				}
			}
		}
	}
}
