package minifloat

import (
	"math"
	"testing"
)

func testFormats() []Format {
	return []Format{
		MustFormat(2, 1), MustFormat(2, 3), MustFormat(3, 2),
		MustFormat(3, 4), MustFormat(4, 3), MustFormat(5, 2),
	}
}

func TestNewFormatValidation(t *testing.T) {
	if _, err := NewFormat(1, 3); err == nil {
		t.Error("we=1 must fail")
	}
	if _, err := NewFormat(12, 3); err == nil {
		t.Error("we=12 must fail")
	}
	if _, err := NewFormat(8, 28); err == nil {
		t.Error("overwide format must fail")
	}
	if f, err := NewFormat(4, 3); err != nil || f.N() != 8 {
		t.Error("float(4,3) must be 8 bits")
	}
}

func TestCharacteristics(t *testing.T) {
	// Paper formulas: bias = 2^(we-1)-1, expmax = 2^we-2,
	// max = 2^(expmax-bias) × (2-2^-wf), min = 2^(1-bias) × 2^-wf.
	f := MustFormat(4, 3)
	if f.Bias() != 7 || f.ExpMax() != 14 {
		t.Errorf("bias=%d expmax=%d", f.Bias(), f.ExpMax())
	}
	if got := f.MaxValue(); got != 240 {
		t.Errorf("max = %v want 240", got)
	}
	if got := f.MinValue(); got != math.Ldexp(1, -9) {
		t.Errorf("min = %v want 2^-9", got)
	}
	if got := f.MinNormal(); got != math.Ldexp(1, -6) {
		t.Errorf("minNormal = %v want 2^-6", got)
	}
}

func TestSpecialPatterns(t *testing.T) {
	f := MustFormat(4, 3)
	if !f.Zero().IsZero() || f.Zero().Bits() != 0 {
		t.Error("zero")
	}
	if !f.Inf(1).IsInf() || f.Inf(1).SignBit() {
		t.Error("+inf")
	}
	if !f.Inf(-1).IsInf() || !f.Inf(-1).SignBit() {
		t.Error("-inf")
	}
	if !f.NaN().IsNaN() {
		t.Error("nan")
	}
	if f.One().Float64() != 1 {
		t.Error("one")
	}
	if got := f.Max().Float64(); got != f.MaxValue() {
		t.Errorf("Max() = %v", got)
	}
}

// TestFloat64RoundTrip: every finite pattern survives Float64/FromFloat64.
func TestFloat64RoundTrip(t *testing.T) {
	for _, f := range testFormats() {
		for b := uint64(0); b < f.Count(); b++ {
			x := f.FromBits(b)
			if x.IsNaN() || x.IsInf() {
				continue
			}
			back := f.FromFloat64(x.Float64())
			if back.Bits() != x.Bits() {
				t.Fatalf("%s: %#x -> %g -> %#x", f, b, x.Float64(), back.Bits())
			}
		}
	}
}

// nearestOracle computes round-to-nearest-even by brute force over all
// finite values, with the paper's clip-at-max overflow semantics.
func nearestOracle(f Format, x float64) Float {
	best := f.Zero()
	bestErr := math.Inf(1)
	for b := uint64(0); b < f.Count(); b++ {
		c := f.FromBits(b)
		if c.IsNaN() || c.IsInf() {
			continue
		}
		if c.IsZero() && c.SignBit() {
			continue // canonical +0
		}
		e := math.Abs(c.Float64() - x)
		if e < bestErr {
			best, bestErr = c, e
		} else if e == bestErr {
			// tie: even mantissa-pattern wins (IEEE RNE)
			if c.Bits()&1 == 0 && best.Bits()&1 == 1 {
				best = c
			}
		}
	}
	return best
}

// TestFromFloat64MatchesOracle drives the encoder across midpoints,
// subnormal territory and overflow.
func TestFromFloat64MatchesOracle(t *testing.T) {
	for _, f := range []Format{MustFormat(3, 2), MustFormat(4, 3)} {
		// All midpoints between adjacent representable values.
		var vals []float64
		for b := uint64(0); b < f.Count(); b++ {
			x := f.FromBits(b)
			if x.IsNaN() || x.IsInf() || (x.IsZero() && x.SignBit()) {
				continue
			}
			vals = append(vals, x.Float64())
		}
		check := func(x float64) {
			got := f.FromFloat64(x)
			want := nearestOracle(f, x)
			// Oracle returns +0; allow -0 from the encoder for negative
			// underflow (IEEE sign-preserving round-to-zero).
			if got.IsZero() && want.IsZero() {
				return
			}
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: FromFloat64(%g) = %v want %v", f, x, got, want)
			}
		}
		for i := range vals {
			for j := i + 1; j < len(vals); j++ {
				_ = j
				break
			}
			check(vals[i])
		}
		// midpoints of the sorted distinct values
		sortFloats(vals)
		for i := 0; i+1 < len(vals); i++ {
			mid := (vals[i] + vals[i+1]) / 2
			check(mid)
			check(math.Nextafter(mid, math.Inf(-1)))
			check(math.Nextafter(mid, math.Inf(1)))
		}
		check(f.MaxValue() * 3) // clip
		check(-f.MaxValue() * 3)
		check(f.MinValue() / 3) // underflow to zero or minval
		check(-f.MinValue() / 3)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestClipNeverInf(t *testing.T) {
	for _, f := range testFormats() {
		got := f.FromFloat64(math.Ldexp(1, 400))
		if got.IsInf() || got.Bits() != f.Max().Bits() {
			t.Errorf("%s: overflow must clip to Max, got %v", f, got)
		}
		got = f.FromFloat64(-math.Ldexp(1, 400))
		if got.Bits() != f.Max().Neg().Bits() {
			t.Errorf("%s: negative overflow must clip to -Max", f)
		}
	}
}

func TestExplicitInfNaNConversions(t *testing.T) {
	f := MustFormat(4, 3)
	if !f.FromFloat64(math.Inf(1)).IsInf() {
		t.Error("+Inf must map to +Inf")
	}
	if !f.FromFloat64(math.NaN()).IsNaN() {
		t.Error("NaN must map to NaN")
	}
	if !math.IsNaN(f.NaN().Float64()) {
		t.Error("NaN Float64")
	}
	if !math.IsInf(f.Inf(-1).Float64(), -1) {
		t.Error("-Inf Float64")
	}
}

func TestSubnormals(t *testing.T) {
	f := MustFormat(4, 3)
	min := f.FromFloat64(f.MinValue())
	if !min.IsSubnormal() || min.Float64() != f.MinValue() {
		t.Error("min subnormal")
	}
	// half the min subnormal rounds to zero (ties-to-even: 0 is even)
	if got := f.FromFloat64(f.MinValue() / 2); !got.IsZero() {
		t.Errorf("min/2 = %v want 0", got)
	}
	// three quarters rounds to min
	if got := f.FromFloat64(0.75 * f.MinValue()); got.Bits() != min.Bits() {
		t.Errorf("0.75*min = %v want min", got)
	}
}

// TestMulExhaustive: all products of float(3,2) and float(4,3) vs the
// exact dyadic oracle.
func TestMulExhaustive(t *testing.T) {
	for _, f := range []Format{MustFormat(3, 2), MustFormat(4, 3)} {
		for a := uint64(0); a < f.Count(); a++ {
			xa := f.FromBits(a)
			if xa.IsNaN() || xa.IsInf() {
				continue
			}
			da, _ := xa.Dyadic()
			for b := uint64(0); b < f.Count(); b++ {
				xb := f.FromBits(b)
				if xb.IsNaN() || xb.IsInf() {
					continue
				}
				db, _ := xb.Dyadic()
				got := xa.Mul(xb)
				prod := da.Mul(db)
				var want Float
				if prod.IsZero() {
					if got.Float64() != 0 {
						t.Fatalf("%s: %v*%v = %v want ±0", f, xa, xb, got)
					}
					continue
				}
				want = f.FromDyadic(prod)
				if got.Abs().Bits() != want.Abs().Bits() || got.SignBit() != (da.Sign()*db.Sign() < 0) {
					t.Fatalf("%s: %v * %v = %v want %v", f, xa, xb, got, want)
				}
			}
		}
	}
}

// TestAddExhaustive: all sums of float(3,2) vs the oracle.
func TestAddExhaustive(t *testing.T) {
	f := MustFormat(3, 2)
	for a := uint64(0); a < f.Count(); a++ {
		xa := f.FromBits(a)
		if xa.IsNaN() || xa.IsInf() {
			continue
		}
		da, _ := xa.Dyadic()
		for b := uint64(0); b < f.Count(); b++ {
			xb := f.FromBits(b)
			if xb.IsNaN() || xb.IsInf() {
				continue
			}
			db, _ := xb.Dyadic()
			got := xa.Add(xb)
			sum := da.Add(db)
			if sum.IsZero() {
				if got.Float64() != 0 {
					t.Fatalf("%v + %v = %v want 0", xa, xb, got)
				}
				continue
			}
			want := f.FromDyadic(sum)
			if got.Bits() != want.Bits() {
				t.Fatalf("%v + %v = %v want %v", xa, xb, got, want)
			}
		}
	}
}

func TestInfNaNArithmetic(t *testing.T) {
	f := MustFormat(4, 3)
	if !f.Inf(1).Mul(f.Zero()).IsNaN() {
		t.Error("Inf*0 must be NaN")
	}
	if !f.Inf(1).Add(f.Inf(-1)).IsNaN() {
		t.Error("Inf-Inf must be NaN")
	}
	if got := f.Inf(1).Mul(f.One().Neg()); !got.IsInf() || !got.SignBit() {
		t.Error("Inf * -1 must be -Inf")
	}
	if !f.NaN().Add(f.One()).IsNaN() {
		t.Error("NaN propagation")
	}
}

func TestNegAbsCmp(t *testing.T) {
	f := MustFormat(4, 3)
	x := f.FromFloat64(-2.5)
	if x.Neg().Float64() != 2.5 || x.Abs().Float64() != 2.5 {
		t.Error("Neg/Abs")
	}
	if x.Cmp(f.One()) != -1 || f.One().Cmp(x) != 1 || x.Cmp(x) != 0 {
		t.Error("Cmp")
	}
}

func TestDynamicRange(t *testing.T) {
	f := MustFormat(4, 3)
	// max/min = 240 / 2^-9 = 122880; log10 ≈ 5.0896
	want := math.Log10(240 * 512)
	if got := f.DynamicRangeLog10(); math.Abs(got-want) > 1e-9 {
		t.Errorf("dynamic range = %v want %v", got, want)
	}
}

func TestCeilLog2Ratio(t *testing.T) {
	// float(4,3): ratio = 2^13 × 15 -> ceil(log2) = 17 = expmax + wf
	f := MustFormat(4, 3)
	if got := f.CeilLog2Ratio(); got != 17 {
		t.Errorf("CeilLog2Ratio = %d want 17", got)
	}
	// wf = 0: ratio = 2^(expmax-1)
	f0 := MustFormat(3, 0)
	if got := f0.CeilLog2Ratio(); got != uint(f0.ExpMax()-1) {
		t.Errorf("CeilLog2Ratio(wf=0) = %d want %d", got, f0.ExpMax()-1)
	}
}

func TestStringRendering(t *testing.T) {
	f := MustFormat(4, 3)
	if s := f.One().String(); s == "" {
		t.Error("empty string")
	}
	if s := f.NaN().String(); s == "" {
		t.Error("empty NaN string")
	}
}
