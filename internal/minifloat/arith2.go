package minifloat

// Division and square root for minifloats, giving the float arm API
// parity with the posit package (the EMACs never divide, but a complete
// number-system library should). Both are correctly rounded (RNE) with
// the same clip-at-max overflow semantics as the rest of the package.

import "math/bits"

// Div returns x/y with a single rounding. IEEE special cases: x/0 is
// ±Inf for finite nonzero x (sign by XOR), 0/0 and Inf/Inf are NaN.
func (x Float) Div(y Float) Float {
	if x.f != y.f {
		panic("minifloat: Div across formats")
	}
	switch {
	case x.IsNaN() || y.IsNaN():
		return x.f.NaN()
	case x.IsInf() && y.IsInf():
		return x.f.NaN()
	case x.IsInf():
		return x.f.Inf(boolSign(x.SignBit() != y.SignBit()))
	case y.IsInf():
		z := x.f.Zero()
		if x.SignBit() != y.SignBit() {
			z.bits |= x.f.signBit()
		}
		return z
	case y.IsZero():
		if x.IsZero() {
			return x.f.NaN()
		}
		return x.f.Inf(boolSign(x.SignBit() != y.SignBit()))
	case x.IsZero():
		z := x.f.Zero()
		if x.SignBit() != y.SignBit() {
			z.bits |= x.f.signBit()
		}
		return z
	}
	dx, dy := x.decode(), y.decode()
	// Q = floor(sig_x << s / sig_y) with >= wf+4 quotient bits.
	s := int(x.f.wf) + 6 + int(dy.sigW) - int(dx.sigW)
	if s < 1 {
		s = 1
	}
	hi, lo := shl128(dx.sig, uint(s))
	quo, rem := bits.Div64(hi, lo, dy.sig)
	l := uint(bits.Len64(quo))
	sf := dx.sf - dy.sf - int(dx.sigW) + int(dy.sigW) - s + int(l) - 1
	return x.f.encode(dx.sign != dy.sign, sf, quo, l, rem != 0)
}

// Sqrt returns the square root (RNE); NaN for negative nonzero inputs.
func (x Float) Sqrt() Float {
	switch {
	case x.IsNaN():
		return x
	case x.IsZero():
		return x // ±0
	case x.SignBit():
		return x.f.NaN()
	case x.IsInf():
		return x
	}
	d := x.decode()
	prec := 2 * (int(x.f.wf) + 6)
	e := d.sf - int(d.sigW) + 1
	shift := prec - int(d.sigW)
	if shift < 0 {
		shift = 0
	}
	if (e-shift)%2 != 0 {
		shift++
	}
	hi, lo := shl128(d.sig, uint(shift))
	root, inexact := sqrt128(hi, lo)
	l := uint(bits.Len64(root))
	sf := (e-shift)/2 + int(l) - 1
	return x.f.encode(false, sf, root, l, inexact)
}

// FMA returns x*y + z with a single rounding, via a two-term accumulator.
func (x Float) FMA(y, z Float) Float {
	if x.f != y.f || x.f != z.f {
		panic("minifloat: FMA across formats")
	}
	if x.IsNaN() || y.IsNaN() || z.IsNaN() || x.IsInf() || y.IsInf() || z.IsInf() {
		// fall back to two-step semantics for specials
		return x.Mul(y).Add(z)
	}
	a := NewAccumulator(x.f, 2)
	a.AddFloat(z)
	a.MulAdd(x, y)
	return a.Result()
}

// shl128 and sqrt128 mirror the posit package helpers (kept local so the
// two number-system packages stay independent).
func shl128(x uint64, s uint) (hi, lo uint64) {
	switch {
	case s == 0:
		return 0, x
	case s < 64:
		return x >> (64 - s), x << s
	case s < 128:
		return x << (s - 64), 0
	default:
		panic("minifloat: shl128 shift out of range")
	}
}

func sqrt128(hi, lo uint64) (root uint64, inexact bool) {
	var remHi, remLo uint64
	var r uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 2; j++ {
			carry := hi >> 63
			hi = hi<<1 | lo>>63
			lo <<= 1
			remHi = remHi<<1 | remLo>>63
			remLo = remLo<<1 | carry
		}
		tHi := r >> 62
		tLo := r<<2 | 1
		if remHi > tHi || (remHi == tHi && remLo >= tLo) {
			var borrow uint64
			remLo, borrow = bits.Sub64(remLo, tLo, 0)
			remHi, _ = bits.Sub64(remHi, tHi, borrow)
			r = r<<1 | 1
		} else {
			r <<= 1
		}
	}
	return r, remHi|remLo != 0
}
