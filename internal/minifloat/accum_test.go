package minifloat

import (
	"testing"

	"repro/internal/dyadic"
	"repro/internal/rng"
)

func TestAccumSizeEq3(t *testing.T) {
	// wa = clog2(k) + 2*ceil(log2(max/min)) + 2
	cases := []struct {
		we, wf uint
		k      int
		want   uint
	}{
		{4, 3, 32, 2*17 + 2 + 5}, // 41
		{3, 2, 16, 2*8 + 2 + 4},  // ratio: 2^5×7 -> ceil(log2)=8; 22
		{2, 1, 1, 2*3 + 2 + 0},   // expmax=2, wf=1 -> 3; 8
	}
	for _, c := range cases {
		f := MustFormat(c.we, c.wf)
		if got := AccumSize(f, c.k); got != c.want {
			t.Errorf("AccumSize(%s,%d) = %d want %d", f, c.k, got, c.want)
		}
	}
}

func TestAccumulatorExactness(t *testing.T) {
	for _, f := range []Format{MustFormat(3, 2), MustFormat(4, 3), MustFormat(5, 2)} {
		r := rng.New(17)
		for trial := 0; trial < 200; trial++ {
			k := 1 + r.Intn(48)
			a := NewAccumulator(f, k)
			exact := dyadic.Zero()
			for i := 0; i < k; i++ {
				w := f.FromBits(r.Uint64() & f.Mask())
				x := f.FromBits(r.Uint64() & f.Mask())
				if w.IsNaN() || w.IsInf() || x.IsNaN() || x.IsInf() {
					continue
				}
				a.MulAdd(w, x)
				dw, _ := w.Dyadic()
				dx, _ := x.Dyadic()
				exact = exact.Add(dw.Mul(dx))
			}
			if got := a.Dyadic(); got.Cmp(exact) != 0 {
				t.Fatalf("%s: register %v != exact %v", f, got, exact)
			}
			want := f.Zero()
			if !exact.IsZero() {
				want = f.FromDyadic(exact)
			}
			if got := a.Result(); got.Abs().Bits() != want.Abs().Bits() {
				t.Fatalf("%s: Result %v want %v", f, got, want)
			}
		}
	}
}

func TestAccumulatorExtremes(t *testing.T) {
	for _, f := range []Format{MustFormat(3, 2), MustFormat(4, 3)} {
		// min² lands exactly at bit 0
		a := NewAccumulator(f, 2)
		min := f.FromFloat64(f.MinValue())
		a.MulAdd(min, min)
		dmin, _ := min.Dyadic()
		if got := a.Dyadic(); got.Cmp(dmin.Mul(dmin)) != 0 {
			t.Fatalf("%s: min² inexact", f)
		}
		// k × max² fits
		k := 16
		a = NewAccumulator(f, k)
		max := f.Max()
		dmax, _ := max.Dyadic()
		exact := dyadic.Zero()
		for i := 0; i < k; i++ {
			a.MulAdd(max, max)
			exact = exact.Add(dmax.Mul(dmax))
		}
		if got := a.Dyadic(); got.Cmp(exact) != 0 {
			t.Fatalf("%s: k×max² overflowed the register", f)
		}
		if got := a.Result(); got.Bits() != max.Bits() {
			t.Fatalf("%s: result must clip to max, got %v", f, got)
		}
	}
}

func TestAccumulatorBias(t *testing.T) {
	f := MustFormat(4, 3)
	a := NewAccumulator(f, 4)
	a.ResetToBias(f.FromFloat64(0.5))
	if a.Adds() != 0 {
		t.Error("bias must not count as accumulation")
	}
	a.MulAdd(f.One(), f.One())
	if got := a.Result().Float64(); got != 1.5 {
		t.Errorf("bias+1 = %v", got)
	}
}

func TestAccumulatorNaN(t *testing.T) {
	f := MustFormat(4, 3)
	a := NewAccumulator(f, 4)
	a.MulAdd(f.NaN(), f.One())
	if !a.IsNaN() || !a.Result().IsNaN() {
		t.Error("NaN absorption")
	}
	a.Reset()
	a.MulAdd(f.Inf(1), f.One())
	if !a.Result().IsNaN() {
		t.Error("Inf absorption")
	}
}

func TestAccumulatorCancellation(t *testing.T) {
	f := MustFormat(4, 3)
	a := NewAccumulator(f, 8)
	x := f.FromFloat64(1.25)
	y := f.FromFloat64(3.5)
	a.MulAdd(x, y)
	a.MulAdd(x.Neg(), y)
	if !a.Result().IsZero() {
		t.Error("xy - xy must cancel exactly")
	}
}

func TestAccumulatorSubnormalSums(t *testing.T) {
	// Many subnormal products must accumulate exactly (classic failure
	// mode of naive float MACs).
	f := MustFormat(4, 3)
	min := f.FromFloat64(f.MinValue())
	k := 64
	a := NewAccumulator(f, k)
	dmin, _ := min.Dyadic()
	exact := dyadic.Zero()
	for i := 0; i < k; i++ {
		a.MulAdd(min, min)
		exact = exact.Add(dmin.Mul(dmin))
	}
	if got := a.Dyadic(); got.Cmp(exact) != 0 {
		t.Fatal("subnormal products lost")
	}
	want := f.FromDyadic(exact)
	if got := a.Result(); got.Bits() != want.Bits() {
		t.Fatalf("Result %v want %v", got, want)
	}
}

func TestDotProductSingleRounding(t *testing.T) {
	f := MustFormat(4, 3)
	r := rng.New(23)
	diffs := 0
	for trial := 0; trial < 300; trial++ {
		k := 12
		ws := make([]Float, k)
		xs := make([]Float, k)
		exact := dyadic.Zero()
		for i := range ws {
			for {
				ws[i] = f.FromBits(r.Uint64() & f.Mask())
				if !ws[i].IsNaN() && !ws[i].IsInf() {
					break
				}
			}
			for {
				xs[i] = f.FromBits(r.Uint64() & f.Mask())
				if !xs[i].IsNaN() && !xs[i].IsInf() {
					break
				}
			}
			dw, _ := ws[i].Dyadic()
			dx, _ := xs[i].Dyadic()
			exact = exact.Add(dw.Mul(dx))
		}
		fused := DotProduct(ws, xs)
		want := f.Zero()
		if !exact.IsZero() {
			want = f.FromDyadic(exact)
		}
		if fused.Abs().Bits() != want.Abs().Bits() {
			t.Fatalf("DotProduct %v want %v", fused, want)
		}
		naive := f.Zero()
		for i := range ws {
			naive = naive.Add(ws[i].Mul(xs[i]))
		}
		if naive.Abs().Bits() != fused.Abs().Bits() {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("exact accumulation should beat sequential rounding sometimes")
	}
	t.Logf("exact vs naive float MAC differed on %d/300 trials", diffs)
}
