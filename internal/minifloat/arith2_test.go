package minifloat

import (
	"math"
	"testing"

	"repro/internal/dyadic"
)

// TestDivExhaustiveSmall: every quotient of float(3,2) against a
// brute-force nearest-with-clip oracle (division results are not dyadic,
// so compare via cross-multiplication).
func TestDivExhaustiveSmall(t *testing.T) {
	f := MustFormat(3, 2)
	for a := uint64(0); a < f.Count(); a++ {
		xa := f.FromBits(a)
		if xa.IsNaN() || xa.IsInf() {
			continue
		}
		for b := uint64(0); b < f.Count(); b++ {
			xb := f.FromBits(b)
			if xb.IsNaN() || xb.IsInf() {
				continue
			}
			got := xa.Div(xb)
			if xb.IsZero() {
				if xa.IsZero() {
					if !got.IsNaN() {
						t.Fatalf("0/0 = %v", got)
					}
				} else if !got.IsInf() {
					t.Fatalf("x/0 = %v", got)
				}
				continue
			}
			if xa.IsZero() {
				if got.Float64() != 0 {
					t.Fatalf("0/y = %v", got)
				}
				continue
			}
			want := divOracle(f, xa, xb)
			if got.Abs().Bits() != want.Abs().Bits() ||
				got.SignBit() != (xa.SignBit() != xb.SignBit()) {
				t.Fatalf("%v / %v = %v want %v", xa, xb, got, want)
			}
		}
	}
}

// divOracle: brute force the nearest finite value to a/b with tie-to-even
// and clip-at-max, using exact dyadic cross-multiplied comparisons.
func divOracle(f Format, a, b Float) Float {
	da, _ := a.Dyadic()
	db, _ := b.Dyadic()
	na, nb := da.Abs(), db.Abs()
	var best Float
	var bestErr dyadic.D
	first := true
	for p := uint64(0); p < f.Count(); p++ {
		c := f.FromBits(p)
		if c.IsNaN() || c.IsInf() || c.SignBit() {
			continue // scan non-negative values only
		}
		dc, _ := c.Dyadic()
		// err = |na/nb - c| * nb = |na - c*nb|
		err := na.Sub(dc.Mul(nb)).Abs()
		cmp := 0
		if !first {
			cmp = err.Cmp(bestErr)
		}
		if first || cmp < 0 || (cmp == 0 && c.Bits()&1 == 0 && best.Bits()&1 == 1) {
			best, bestErr, first = c, err, false
		}
	}
	if a.SignBit() != b.SignBit() {
		best = best.Neg()
	}
	return best
}

func TestDivBasics(t *testing.T) {
	f := MustFormat(4, 3)
	six := f.FromFloat64(6)
	two := f.FromFloat64(2)
	if got := six.Div(two).Float64(); got != 3 {
		t.Errorf("6/2 = %v", got)
	}
	if !f.One().Div(f.Zero()).IsInf() {
		t.Error("1/0 must be Inf")
	}
	if !f.Zero().Div(f.Zero()).IsNaN() {
		t.Error("0/0 must be NaN")
	}
	if got := f.One().Div(f.Inf(1)); got.Float64() != 0 {
		t.Error("1/Inf must be 0")
	}
}

// TestSqrtExhaustive: every float(4,3) square root against an exact
// pattern search.
func TestSqrtExhaustive(t *testing.T) {
	f := MustFormat(4, 3)
	for b := uint64(0); b < f.Count(); b++ {
		x := f.FromBits(b)
		got := x.Sqrt()
		switch {
		case x.IsNaN(), !x.IsZero() && x.SignBit() && !x.IsInf():
			if !got.IsNaN() {
				t.Fatalf("sqrt(%v) = %v want NaN", x, got)
			}
			continue
		case x.IsZero():
			if got.Float64() != 0 {
				t.Fatalf("sqrt(±0) = %v", got)
			}
			continue
		case x.IsInf():
			if x.SignBit() {
				if !got.IsNaN() {
					t.Fatalf("sqrt(-Inf) = %v", got)
				}
			} else if !got.IsInf() {
				t.Fatalf("sqrt(+Inf) = %v", got)
			}
			continue
		}
		want := sqrtOracle(f, x)
		if got.Bits() != want.Bits() {
			t.Fatalf("sqrt(%v) = %v want %v", x, got, want)
		}
	}
}

// sqrtOracle brute-forces the nearest value to sqrt(x): compare candidate
// midpoints in the squared domain (floats are uniformly spaced within a
// binade, so value-space RNE is the correct rule).
func sqrtOracle(f Format, x Float) Float {
	dx, _ := x.Dyadic()
	var best Float
	bestErr := math.Inf(1)
	target := math.Sqrt(x.Float64())
	for p := uint64(0); p < f.Count(); p++ {
		c := f.FromBits(p)
		if c.IsNaN() || c.IsInf() || c.SignBit() {
			continue
		}
		err := math.Abs(c.Float64() - target)
		if err < bestErr {
			best, bestErr = c, err
		} else if err == bestErr && c.Bits()&1 == 0 && best.Bits()&1 == 1 {
			best = c
		}
	}
	_ = dx
	return best
}

func TestFMAExact(t *testing.T) {
	f := MustFormat(4, 3)
	for a := uint64(0); a < f.Count(); a += 3 {
		for b := uint64(1); b < f.Count(); b += 5 {
			for c := uint64(2); c < f.Count(); c += 7 {
				xa, xb, xc := f.FromBits(a), f.FromBits(b), f.FromBits(c)
				if xa.IsNaN() || xb.IsNaN() || xc.IsNaN() ||
					xa.IsInf() || xb.IsInf() || xc.IsInf() {
					continue
				}
				got := xa.FMA(xb, xc)
				da, _ := xa.Dyadic()
				db, _ := xb.Dyadic()
				dc, _ := xc.Dyadic()
				exact := da.Mul(db).Add(dc)
				if exact.IsZero() {
					if got.Float64() != 0 {
						t.Fatalf("FMA(%v,%v,%v) = %v want 0", xa, xb, xc, got)
					}
					continue
				}
				want := f.FromDyadic(exact)
				if got.Bits() != want.Bits() {
					t.Fatalf("FMA(%v,%v,%v) = %v want %v", xa, xb, xc, got, want)
				}
			}
		}
	}
}

func TestFMASingleRoundingBeatsTwoStep(t *testing.T) {
	// A case where mul-then-add double-rounds: with wf=3,
	// 1.875 * 1.875 = 3.515625 -> rounds to 3.5; +0.25 -> 3.75.
	// Fused: 3.765625 -> 3.75. Construct a case where they differ.
	f := MustFormat(4, 3)
	diffs := 0
	for a := uint64(0); a < f.Count(); a++ {
		for b := uint64(0); b < f.Count(); b++ {
			xa, xb := f.FromBits(a), f.FromBits(b)
			xc := f.FromFloat64(0.25)
			if xa.IsNaN() || xb.IsNaN() || xa.IsInf() || xb.IsInf() {
				continue
			}
			fused := xa.FMA(xb, xc)
			twoStep := xa.Mul(xb).Add(xc)
			if fused.Bits() != twoStep.Bits() {
				diffs++
			}
		}
	}
	if diffs == 0 {
		t.Error("FMA should differ from mul+add on some inputs")
	}
	t.Logf("FMA differs from two-step on %d pairs", diffs)
}

func TestSqrtDivRoundTripLoose(t *testing.T) {
	// sqrt(x)² within a few grid steps of x for all positive values.
	f := MustFormat(5, 4)
	for b := uint64(0); b < f.Count(); b++ {
		x := f.FromBits(b)
		if x.IsNaN() || x.IsInf() || x.SignBit() || x.IsZero() {
			continue
		}
		r := x.Sqrt()
		back := r.Mul(r).Float64()
		if x.Float64() != 0 && math.Abs(back-x.Float64())/x.Float64() > 0.25 {
			t.Fatalf("sqrt roundtrip %v -> %v -> %v", x, r, back)
		}
	}
}
