package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
)

// Decode limits: an artifact claiming more structure than any real model
// carries is rejected before a single allocation is sized from it. Every
// allocation below is additionally bounded by the byte budget actually
// present in data, so a hostile length field can never out-allocate the
// input it arrived in.
const (
	maxLayers = 1 << 16
	maxDim    = 1 << 24
)

// ErrNotBinary is returned by Decode for input without the binary magic
// (callers wanting transparent format dispatch use Parse).
var ErrNotBinary = errors.New("artifact: not a binary artifact (no magic)")

// ErrUnsupported is returned by Encode for model types outside the
// binary format (test doubles, future planes): such models have no
// canonical artifact, which callers may treat as "skip the store"
// rather than a failure.
var ErrUnsupported = errors.New("artifact: cannot encode")

// ErrCorrupt wraps every structural decode failure past the header: the
// bytes claim to be an artifact but cannot be one.
var ErrCorrupt = errors.New("artifact: corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked little-endian cursor over the body.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, corruptf("truncated: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// Decode parses a canonical binary artifact into its model. It is the
// inverse of Encode and is safe on hostile input: malformed, truncated
// or oversized-claim artifacts fail with an error (never a panic), and
// allocations are bounded by the input length.
func Decode(data []byte) (core.Model, error) {
	if !IsBinary(data) {
		return nil, ErrNotBinary
	}
	if len(data) < headerSize {
		return nil, corruptf("truncated header: %d bytes", len(data))
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("artifact: binary version %d not supported (this build reads %d)", v, Version)
	}
	kind := data[6]
	if kind != kindUniform && kind != kindMixed {
		return nil, corruptf("unknown kind %d", kind)
	}
	flags := data[7]
	if flags&^(flagSigmoid|flagStandardizer) != 0 {
		return nil, corruptf("unknown flag bits %#x", flags)
	}
	if kind == kindMixed && flags&flagSigmoid != 0 {
		return nil, corruptf("sigmoid flag on a mixed artifact")
	}
	nLayers := int(binary.LittleEndian.Uint32(data[8:]))
	if nLayers < 1 || nLayers > maxLayers {
		return nil, corruptf("layer count %d out of range", nLayers)
	}
	if got, want := crc32.ChecksumIEEE(data[headerSize:]), binary.LittleEndian.Uint32(data[12:]); got != want {
		return nil, corruptf("body CRC mismatch (have %#x, header says %#x)", got, want)
	}
	r := &reader{data: data, off: headerSize}

	// Arith descriptors, validated through the error-returning format
	// constructors.
	nSpecs := 1
	if kind == kindMixed {
		nSpecs = nLayers
	}
	ariths := make([]emac.Arithmetic, nSpecs)
	for i := range ariths {
		rec, err := r.bytes(descriptorBytes)
		if err != nil {
			return nil, err
		}
		spec := core.ArithSpec{N: uint(rec[1]), QuireDrop: uint(rec[3])}
		switch rec[0] {
		case famPosit:
			spec.Family, spec.ES = "posit", uint(rec[2])
		case famFloat:
			spec.Family, spec.WE = "float", uint(rec[2])
		case famFixed:
			spec.Family, spec.Q = "fixed", uint(rec[2])
		case famFloat32:
			spec.Family = "float32"
			if rec[1] != 0 || rec[2] != 0 {
				return nil, corruptf("float32 descriptor carries parameters")
			}
		default:
			return nil, corruptf("unknown arithmetic family %d", rec[0])
		}
		a, err := spec.Build()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		ariths[i] = a
	}
	arithAt := func(i int) emac.Arithmetic {
		if kind == kindMixed {
			return ariths[i]
		}
		return ariths[0]
	}

	// Layer shape table, with the activation chain checked as it is read.
	type shape struct{ in, out int }
	shapes := make([]shape, nLayers)
	prevOut := -1
	for i := range shapes {
		in32, err := r.u32()
		if err != nil {
			return nil, err
		}
		out32, err := r.u32()
		if err != nil {
			return nil, err
		}
		in, out := int(in32), int(out32)
		if in < 1 || in > maxDim || out < 1 || out > maxDim {
			return nil, corruptf("layer %d shape %dx%d out of range", i, in, out)
		}
		if prevOut >= 0 && in != prevOut {
			return nil, corruptf("layer %d input %d does not match previous output %d", i, in, prevOut)
		}
		prevOut = out
		shapes[i] = shape{in: in, out: out}
	}

	// The parameter sections have fully determined sizes now; the file
	// must contain exactly that many bytes more.
	var need int64
	if flags&flagStandardizer != 0 {
		need += int64(16 * shapes[0].in)
	}
	for i, s := range shapes {
		ws, err := wordSize(arithAt(i).BitWidth())
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		need += int64(s.in*s.out+s.out) * int64(ws)
	}
	if int64(r.remaining()) != need {
		return nil, corruptf("parameter sections need %d bytes, %d remain", need, r.remaining())
	}

	var stand *datasets.Standardizer
	if flags&flagStandardizer != 0 {
		in0 := shapes[0].in
		mean := make([]float64, in0)
		std := make([]float64, in0)
		for _, dst := range [][]float64{mean, std} {
			b, err := r.bytes(8 * in0)
			if err != nil {
				return nil, err
			}
			for j := range dst {
				dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
			}
		}
		for j, s := range std {
			if s == 0 {
				return nil, corruptf("standardizer feature %d has zero scale", j)
			}
		}
		stand = &datasets.Standardizer{Mean: mean, Std: std}
	}

	layers := make([]*core.Layer, nLayers)
	for i, s := range shapes {
		arith := arithAt(i)
		ws, _ := wordSize(arith.BitWidth())
		mask := ^uint64(0)
		if w := arith.BitWidth(); w < 64 {
			mask = (uint64(1) << w) - 1
		}
		b, err := r.bytes((s.in*s.out + s.out) * ws)
		if err != nil {
			return nil, err
		}
		word := func(k int) uint64 {
			switch ws {
			case 1:
				return uint64(b[k])
			case 2:
				return uint64(binary.LittleEndian.Uint16(b[2*k:]))
			default:
				return uint64(binary.LittleEndian.Uint32(b[4*k:]))
			}
		}
		l := &core.Layer{In: s.in, Out: s.out, W: make([][]emac.Code, s.out), B: make([]emac.Code, s.out)}
		k := 0
		for j := range l.W {
			row := make([]emac.Code, s.in)
			for c := range row {
				w := word(k)
				k++
				if w&^mask != 0 {
					return nil, corruptf("layer %d code %#x exceeds %d bits", i, w, arith.BitWidth())
				}
				row[c] = emac.Code(w)
			}
			l.W[j] = row
		}
		for j := range l.B {
			w := word(k)
			k++
			if w&^mask != 0 {
				return nil, corruptf("layer %d bias code %#x exceeds %d bits", i, w, arith.BitWidth())
			}
			l.B[j] = emac.Code(w)
		}
		layers[i] = l
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes", r.remaining())
	}

	if kind == kindMixed {
		return &core.MixedNetwork{LayerAriths: ariths, Stand: stand, Layers: layers}, nil
	}
	if flags&flagSigmoid != 0 {
		// The fast sigmoid only exists for es=0 posits; accepting the flag
		// on any other arm would defer the failure to inference time.
		pa, ok := ariths[0].(emac.PositArith)
		if !ok || !pa.F.FastSigmoidValid() {
			return nil, corruptf("sigmoid flag requires a posit arithmetic with es=0, got %s", ariths[0].Name())
		}
	}
	return &core.Network{
		Arith:   ariths[0],
		Sigmoid: flags&flagSigmoid != 0,
		Stand:   stand,
		Layers:  layers,
	}, nil
}
