package store

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/artifact"
)

// remoteMaxBytes bounds how much a peer response body is read: an
// artifact larger than this is refused rather than buffered, so a
// misbehaving peer cannot exhaust this replica's memory.
const remoteMaxBytes = 1 << 30 // 1 GiB

// Remote is a read-only store backed by peer replicas: Get issues
// GET {peer}/v1/artifacts/{hash} and re-hashes whatever comes back, so
// a corrupt or truncated peer response surfaces as ErrCorrupt, never as
// served bytes. Composed as the slow layer of a Union over the local
// tiers, it turns a replica into a pull-through cache of the fleet's
// artifact plane: a hash this replica lacks is fetched, verified,
// persisted locally, and served.
//
// Peer order for a given hash starts at a hash-derived offset, so a
// fleet fanning out fetches of many artifacts spreads load instead of
// hammering the first peer in everyone's list.
type Remote struct {
	counters
	peers  []string
	client *http.Client
}

// RemoteOption configures a Remote store.
type RemoteOption func(*Remote)

// WithRemoteClient substitutes the HTTP client (timeouts, transports,
// test doubles). The default client has a 30s overall timeout.
func WithRemoteClient(c *http.Client) RemoteOption {
	return func(r *Remote) { r.client = c }
}

// NewRemote builds a peer-fetching store over the given base URLs
// (e.g. "http://replica-b:8080"). Trailing slashes are trimmed; scheme
// defaults to http:// when absent, matching positrond -peers usage.
func NewRemote(peers []string, opts ...RemoteOption) *Remote {
	r := &Remote{
		client: &http.Client{Timeout: 30 * time.Second},
	}
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		r.peers = append(r.peers, p)
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Peers returns the configured peer base URLs.
func (r *Remote) Peers() []string { return append([]string(nil), r.peers...) }

// ReadOnly marks the store as unwritable: peers own their blobs.
func (r *Remote) ReadOnly() bool { return true }

// Put implements Store: always ErrReadOnly.
func (r *Remote) Put([]byte) (artifact.Hash, error) {
	return artifact.Hash{}, ErrReadOnly
}

// Delete implements Store: always ErrReadOnly.
func (r *Remote) Delete(artifact.Hash) error { return ErrReadOnly }

// Get implements Store: tries peers in hash-rotated order and returns
// the first response that verifies. A peer serving bytes that do not
// hash to the address counts as corrupt and the next peer is tried; if
// every peer either lacks the blob or serves garbage, the corruption
// wins the error (the caller should know the fleet has a bad copy).
func (r *Remote) Get(h artifact.Hash) ([]byte, error) {
	r.gets.Add(1)
	if len(r.peers) == 0 {
		return nil, ErrNotFound
	}
	var corruptErr error
	start := int(h[0]) % len(r.peers)
	for i := range r.peers {
		peer := r.peers[(start+i)%len(r.peers)]
		data, err := r.fetch(peer, h)
		if err == nil {
			r.hits.Add(1)
			return data, nil
		}
		if errors.Is(err, ErrCorrupt) {
			r.corrupt.Add(1)
			corruptErr = err
		}
	}
	if corruptErr != nil {
		return nil, corruptErr
	}
	return nil, ErrNotFound
}

// fetch pulls one hash from one peer.
func (r *Remote) fetch(peer string, h artifact.Hash) ([]byte, error) {
	resp, err := r.client.Get(peer + "/v1/artifacts/" + h.String())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusNotFound {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: peer %s: unexpected status %s", peer, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, remoteMaxBytes+1))
	if err != nil {
		// A connection torn mid-body is indistinguishable from a
		// truncating peer; either way the bytes cannot be trusted.
		return nil, fmt.Errorf("%w: %s (peer %s: %v)", ErrCorrupt, h, peer, err)
	}
	if int64(len(data)) > remoteMaxBytes {
		return nil, fmt.Errorf("store: peer %s: artifact %s exceeds %d bytes", peer, h, int64(remoteMaxBytes))
	}
	if err := verify(h, data); err != nil {
		return nil, fmt.Errorf("%w (peer %s)", err, peer)
	}
	return data, nil
}

// Has implements Store: a HEAD probe across peers. Used by callers that
// want existence without moving bytes; errors from unreachable peers
// read as absence (the fleet may still be converging).
func (r *Remote) Has(h artifact.Hash) (bool, error) {
	if len(r.peers) == 0 {
		return false, nil
	}
	start := int(h[0]) % len(r.peers)
	for i := range r.peers {
		peer := r.peers[(start+i)%len(r.peers)]
		req, err := http.NewRequest(http.MethodHead, peer+"/v1/artifacts/"+h.String(), nil)
		if err != nil {
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true, nil
		}
	}
	return false, nil
}

// List implements Store: a remote tier does not enumerate peers — the
// local layers are the authority on what this replica holds.
func (r *Remote) List() ([]artifact.Hash, error) { return nil, nil }

// GC implements Store: nothing to sweep; peer blobs are not ours.
func (r *Remote) GC(func(artifact.Hash) bool) (int, int64, error) {
	return 0, 0, nil
}

// Stats implements Store: counters only; a remote tier has no local
// occupancy.
func (r *Remote) Stats() Stats {
	var s Stats
	r.fill(&s)
	return s
}
