package store

import "repro/internal/artifact"

// Union is a read-through overlay of two stores: a fast layer (usually
// Mem) over a slow, authoritative layer (usually Disk). Gets try the
// fast layer first and populate it on a slow-layer hit — the warm-load
// cache pattern: the first load of an artifact after a restart pays the
// disk read, every load after that is a map lookup. Puts write through
// to both layers, so the slow layer is always complete and a crash
// loses nothing but warmth.
//
// When the slow layer is read-only (a Remote peer tier), the union
// inverts its authority: the fast layer holds this replica's blobs and
// the slow layer is only a fetch path. Puts, Deletes, List, Stats and
// GC then operate on the fast layer alone, while Get still falls
// through to peers and persists what it pulls — pull-through
// replication.
type Union struct {
	counters
	fast, slow Store
}

// NewUnion composes fast over slow.
func NewUnion(fast, slow Store) *Union {
	return &Union{fast: fast, slow: slow}
}

// Put implements Store: write-through to the slow layer first (it is
// the durable one; if it fails the artifact is not stored), then warm
// the fast layer. A read-only slow layer is skipped entirely — peers
// own their blobs; we only write ours.
func (u *Union) Put(data []byte) (artifact.Hash, error) {
	u.puts.Add(1)
	if isReadOnly(u.slow) {
		h := artifact.Sum(data)
		if ok, err := u.fast.Has(h); err == nil && ok {
			u.putDedups.Add(1)
		}
		return u.fast.Put(data)
	}
	if ok, err := u.slow.Has(artifact.Sum(data)); err == nil && ok {
		u.putDedups.Add(1)
	}
	h, err := u.slow.Put(data)
	if err != nil {
		return h, err
	}
	_, err = u.fast.Put(data)
	return h, err
}

// Get implements Store: fast layer first; a slow-layer hit populates
// the fast layer for the next reader.
func (u *Union) Get(h artifact.Hash) ([]byte, error) {
	u.gets.Add(1)
	if data, err := u.fast.Get(h); err == nil {
		u.hits.Add(1)
		return data, nil
	}
	data, err := u.slow.Get(h)
	if err != nil {
		return nil, err
	}
	if _, err := u.fast.Put(data); err != nil {
		return nil, err
	}
	u.hits.Add(1)
	return data, nil
}

// Has implements Store.
func (u *Union) Has(h artifact.Hash) (bool, error) {
	if ok, err := u.fast.Has(h); err == nil && ok {
		return true, nil
	}
	return u.slow.Has(h)
}

// Delete implements Store: removed from both writable layers; present
// in neither is ErrNotFound.
func (u *Union) Delete(h artifact.Hash) error {
	fastErr := u.fast.Delete(h)
	if isReadOnly(u.slow) {
		return fastErr
	}
	slowErr := u.slow.Delete(h)
	if slowErr == nil || fastErr == nil {
		return nil
	}
	return slowErr
}

// List implements Store: the slow layer is authoritative (the fast
// layer is a subset by construction) — unless the slow layer is
// read-only, in which case the fast layer holds everything local.
func (u *Union) List() ([]artifact.Hash, error) {
	if isReadOnly(u.slow) {
		return u.fast.List()
	}
	return u.slow.List()
}

// GC implements Store: both writable layers are swept with the same
// predicate. A read-only slow layer is never swept — its blobs belong
// to peers. Removed/freed report the authoritative layer's reclaim (the
// fast layer is a cache of it), so the numbers match what List would no
// longer show.
func (u *Union) GC(live func(artifact.Hash) bool) (int, int64, error) {
	u.gcRuns.Add(1)
	if isReadOnly(u.slow) {
		removed, freed, err := u.fast.GC(live)
		u.gcFreed.Add(freed)
		return removed, freed, err
	}
	if _, _, err := u.fast.GC(live); err != nil {
		return 0, 0, err
	}
	removed, freed, err := u.slow.GC(live)
	u.gcFreed.Add(freed)
	return removed, freed, err
}

// Stats implements Store: occupancy of the authoritative layer, the
// union's own read-through counters, and the per-tier breakdown nested
// under fast/slow — tier hit rates (memory vs disk vs peer fetch) are
// observable without reaching into the composition.
func (u *Union) Stats() Stats {
	auth := u.slow
	if isReadOnly(u.slow) {
		auth = u.fast
	}
	occ := auth.Stats()
	s := Stats{Objects: occ.Objects, Bytes: occ.Bytes}
	u.fill(&s)
	fast, slow := u.fast.Stats(), u.slow.Stats()
	s.Fast, s.Slow = &fast, &slow
	return s
}

// Fast returns the overlay's fast layer.
func (u *Union) Fast() Store { return u.fast }

// Slow returns the overlay's authoritative slow layer.
func (u *Union) Slow() Store { return u.slow }
