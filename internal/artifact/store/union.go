package store

import "repro/internal/artifact"

// Union is a read-through overlay of two stores: a fast layer (usually
// Mem) over a slow, authoritative layer (usually Disk). Gets try the
// fast layer first and populate it on a slow-layer hit — the warm-load
// cache pattern: the first load of an artifact after a restart pays the
// disk read, every load after that is a map lookup. Puts write through
// to both layers, so the slow layer is always complete and a crash
// loses nothing but warmth.
type Union struct {
	counters
	fast, slow Store
}

// NewUnion composes fast over slow.
func NewUnion(fast, slow Store) *Union {
	return &Union{fast: fast, slow: slow}
}

// Put implements Store: write-through to the slow layer first (it is
// the durable one; if it fails the artifact is not stored), then warm
// the fast layer.
func (u *Union) Put(data []byte) (artifact.Hash, error) {
	u.puts.Add(1)
	if ok, err := u.slow.Has(artifact.Sum(data)); err == nil && ok {
		u.putDedups.Add(1)
	}
	h, err := u.slow.Put(data)
	if err != nil {
		return h, err
	}
	_, err = u.fast.Put(data)
	return h, err
}

// Get implements Store: fast layer first; a slow-layer hit populates
// the fast layer for the next reader.
func (u *Union) Get(h artifact.Hash) ([]byte, error) {
	u.gets.Add(1)
	if data, err := u.fast.Get(h); err == nil {
		u.hits.Add(1)
		return data, nil
	}
	data, err := u.slow.Get(h)
	if err != nil {
		return nil, err
	}
	if _, err := u.fast.Put(data); err != nil {
		return nil, err
	}
	u.hits.Add(1)
	return data, nil
}

// Has implements Store.
func (u *Union) Has(h artifact.Hash) (bool, error) {
	if ok, err := u.fast.Has(h); err == nil && ok {
		return true, nil
	}
	return u.slow.Has(h)
}

// Delete implements Store: removed from both layers; present in
// neither is ErrNotFound.
func (u *Union) Delete(h artifact.Hash) error {
	fastErr := u.fast.Delete(h)
	slowErr := u.slow.Delete(h)
	if slowErr == nil || fastErr == nil {
		return nil
	}
	return slowErr
}

// List implements Store: the slow layer is authoritative (the fast
// layer is a subset by construction).
func (u *Union) List() ([]artifact.Hash, error) { return u.slow.List() }

// Stats implements Store: occupancy of the authoritative slow layer,
// with the union's own read-through counters (fast-layer hit ratio is
// visible as fast.Stats().Hits vs the union's Gets).
func (u *Union) Stats() Stats {
	slow := u.slow.Stats()
	s := Stats{Objects: slow.Objects, Bytes: slow.Bytes}
	u.fill(&s)
	return s
}

// Fast returns the overlay's fast layer.
func (u *Union) Fast() Store { return u.fast }

// Slow returns the overlay's authoritative slow layer.
func (u *Union) Slow() Store { return u.slow }
