package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/artifact"
)

// implementations under test, each built fresh per subtest.
func implementations(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"disk": func() Store {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"union": func() Store {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return NewUnion(NewMem(), d)
		},
	}
}

// TestStoreContract runs the common semantics over every implementation.
func TestStoreContract(t *testing.T) {
	for name, build := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			s := build()
			blob := []byte("quantised words")
			h, err := s.Put(blob)
			if err != nil {
				t.Fatal(err)
			}
			if h != artifact.Sum(blob) {
				t.Fatal("Put returned a hash that is not the content hash")
			}
			got, err := s.Get(h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, blob) {
				t.Fatalf("Get returned %q", got)
			}
			if ok, err := s.Has(h); err != nil || !ok {
				t.Fatalf("Has = %v, %v", ok, err)
			}
			if ok, _ := s.Has(artifact.Sum([]byte("absent"))); ok {
				t.Fatal("Has reports an absent hash")
			}
			if _, err := s.Get(artifact.Sum([]byte("absent"))); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get absent: %v", err)
			}

			// Dedup: same bytes again stores nothing new.
			if _, err := s.Put(blob); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Objects != 1 {
				t.Fatalf("after duplicate Put: %d objects", st.Objects)
			}
			if st.PutDedups != 1 {
				t.Fatalf("put_dedups = %d, want 1", st.PutDedups)
			}
			if st.Bytes != int64(len(blob)) {
				t.Fatalf("bytes = %d, want %d", st.Bytes, len(blob))
			}

			// A second distinct blob coexists; List sees both.
			h2, err := s.Put([]byte("other artifact"))
			if err != nil {
				t.Fatal(err)
			}
			hashes, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(hashes) != 2 {
				t.Fatalf("List: %d hashes", len(hashes))
			}

			// Delete removes exactly its blob.
			if err := s.Delete(h); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(h); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double Delete: %v", err)
			}
			if _, err := s.Get(h); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: %v", err)
			}
			if _, err := s.Get(h2); err != nil {
				t.Fatalf("unrelated blob lost: %v", err)
			}
			if st := s.Stats(); st.Objects != 1 {
				t.Fatalf("after delete: %d objects", st.Objects)
			}
		})
	}
}

// TestConcurrentPutSameHash is the -race contract: many goroutines
// storing identical bytes must coexist and leave exactly one object.
func TestConcurrentPutSameHash(t *testing.T) {
	for name, build := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			s := build()
			blob := bytes.Repeat([]byte("w"), 4096)
			want := artifact.Sum(blob)
			var wg sync.WaitGroup
			errs := make([]error, 16)
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					h, err := s.Put(blob)
					if err == nil && h != want {
						err = fmt.Errorf("hash mismatch")
					}
					errs[i] = err
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if st := s.Stats(); st.Objects != 1 || st.Bytes != int64(len(blob)) {
				t.Fatalf("after concurrent puts: %d objects, %d bytes", st.Objects, st.Bytes)
			}
			if got, err := s.Get(want); err != nil || !bytes.Equal(got, blob) {
				t.Fatalf("readback: %v", err)
			}
		})
	}
}

// TestDiskDetectsCorruption: bytes rotted on disk must surface as
// ErrCorrupt, never be returned as the artifact.
func TestDiskDetectsCorruption(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("pristine artifact bytes")
	h, err := d.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Rot one byte behind the store's back.
	path := filepath.Join(d.Root(), h.String()[:2], h.String())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted Get: %v", err)
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d", st.Corrupt)
	}
	// The union surfaces the same failure instead of caching garbage.
	u := NewUnion(NewMem(), d)
	if _, err := u.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("union corrupted Get: %v", err)
	}
	if ok, _ := u.Fast().Has(h); ok {
		t.Fatal("union cached a corrupt blob in the fast layer")
	}
}

// TestDiskPersistsAcrossReopen: a new Disk over an existing root sees
// the blobs and counts them in Stats.
func TestDiskPersistsAcrossReopen(t *testing.T) {
	root := t.TempDir()
	d1, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	h, err := d1.Put([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d2.Get(h); err != nil || string(got) != "durable" {
		t.Fatalf("reopen Get: %q, %v", got, err)
	}
	if st := d2.Stats(); st.Objects != 1 || st.Bytes != int64(len("durable")) {
		t.Fatalf("reopen stats: %+v", st)
	}
}

// TestUnionReadThroughPopulatesFastLayer: the warm-cache behaviour the
// registry's instant warm loads ride on.
func TestUnionReadThroughPopulatesFastLayer(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("cold artifact")
	h, err := disk.Put(blob) // present only in the slow layer
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem()
	u := NewUnion(mem, disk)
	if ok, _ := mem.Has(h); ok {
		t.Fatal("fast layer warm before any Get")
	}
	if got, err := u.Get(h); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("cold Get: %v", err)
	}
	if ok, _ := mem.Has(h); !ok {
		t.Fatal("read-through did not populate the fast layer")
	}
	// The second Get is served from memory: disk's Get counter is flat.
	diskGets := disk.Stats().Gets
	if _, err := u.Get(h); err != nil {
		t.Fatal(err)
	}
	if got := disk.Stats().Gets; got != diskGets {
		t.Fatalf("warm Get still hit the slow layer (%d -> %d)", diskGets, got)
	}
	// Write-through: a Put lands in both layers.
	h2, err := u.Put([]byte("written through"))
	if err != nil {
		t.Fatal(err)
	}
	for name, layer := range map[string]Store{"fast": mem, "slow": disk} {
		if ok, _ := layer.Has(h2); !ok {
			t.Fatalf("Put did not reach the %s layer", name)
		}
	}
}
