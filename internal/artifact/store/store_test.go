package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/artifact"
)

// implementations under test, each built fresh per subtest.
func implementations(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"disk": func() Store {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"union": func() Store {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return NewUnion(NewMem(), d)
		},
	}
}

// TestStoreContract runs the common semantics over every implementation.
func TestStoreContract(t *testing.T) {
	for name, build := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			s := build()
			blob := []byte("quantised words")
			h, err := s.Put(blob)
			if err != nil {
				t.Fatal(err)
			}
			if h != artifact.Sum(blob) {
				t.Fatal("Put returned a hash that is not the content hash")
			}
			got, err := s.Get(h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, blob) {
				t.Fatalf("Get returned %q", got)
			}
			if ok, err := s.Has(h); err != nil || !ok {
				t.Fatalf("Has = %v, %v", ok, err)
			}
			if ok, _ := s.Has(artifact.Sum([]byte("absent"))); ok {
				t.Fatal("Has reports an absent hash")
			}
			if _, err := s.Get(artifact.Sum([]byte("absent"))); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get absent: %v", err)
			}

			// Dedup: same bytes again stores nothing new.
			if _, err := s.Put(blob); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Objects != 1 {
				t.Fatalf("after duplicate Put: %d objects", st.Objects)
			}
			if st.PutDedups != 1 {
				t.Fatalf("put_dedups = %d, want 1", st.PutDedups)
			}
			if st.Bytes != int64(len(blob)) {
				t.Fatalf("bytes = %d, want %d", st.Bytes, len(blob))
			}

			// A second distinct blob coexists; List sees both.
			h2, err := s.Put([]byte("other artifact"))
			if err != nil {
				t.Fatal(err)
			}
			hashes, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(hashes) != 2 {
				t.Fatalf("List: %d hashes", len(hashes))
			}

			// Delete removes exactly its blob.
			if err := s.Delete(h); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(h); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double Delete: %v", err)
			}
			if _, err := s.Get(h); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: %v", err)
			}
			if _, err := s.Get(h2); err != nil {
				t.Fatalf("unrelated blob lost: %v", err)
			}
			if st := s.Stats(); st.Objects != 1 {
				t.Fatalf("after delete: %d objects", st.Objects)
			}
		})
	}
}

// TestConcurrentPutSameHash is the -race contract: many goroutines
// storing identical bytes must coexist and leave exactly one object.
func TestConcurrentPutSameHash(t *testing.T) {
	for name, build := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			s := build()
			blob := bytes.Repeat([]byte("w"), 4096)
			want := artifact.Sum(blob)
			var wg sync.WaitGroup
			errs := make([]error, 16)
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					h, err := s.Put(blob)
					if err == nil && h != want {
						err = fmt.Errorf("hash mismatch")
					}
					errs[i] = err
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if st := s.Stats(); st.Objects != 1 || st.Bytes != int64(len(blob)) {
				t.Fatalf("after concurrent puts: %d objects, %d bytes", st.Objects, st.Bytes)
			}
			if got, err := s.Get(want); err != nil || !bytes.Equal(got, blob) {
				t.Fatalf("readback: %v", err)
			}
		})
	}
}

// TestGCContract: the reference-aware sweep over every implementation —
// blobs the live predicate claims survive, everything else is removed
// and accounted, and the gc counters show up in Stats.
func TestGCContract(t *testing.T) {
	for name, build := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			s := build()
			pinned := []byte("pinned artifact")
			hPinned, err := s.Put(pinned)
			if err != nil {
				t.Fatal(err)
			}
			var garbage []artifact.Hash
			var garbageBytes int64
			for i := 0; i < 3; i++ {
				blob := []byte(fmt.Sprintf("stranded blob %d", i))
				h, err := s.Put(blob)
				if err != nil {
					t.Fatal(err)
				}
				garbage = append(garbage, h)
				garbageBytes += int64(len(blob))
			}
			removed, freed, err := s.GC(func(h artifact.Hash) bool { return h == hPinned })
			if err != nil {
				t.Fatal(err)
			}
			if removed != len(garbage) {
				t.Fatalf("removed = %d, want %d", removed, len(garbage))
			}
			if freed != garbageBytes {
				t.Fatalf("freed = %d, want %d", freed, garbageBytes)
			}
			if got, err := s.Get(hPinned); err != nil || !bytes.Equal(got, pinned) {
				t.Fatalf("pinned blob swept: %v", err)
			}
			for _, h := range garbage {
				if ok, _ := s.Has(h); ok {
					t.Fatalf("garbage %s survived GC", h)
				}
			}
			st := s.Stats()
			if st.Objects != 1 || st.Bytes != int64(len(pinned)) {
				t.Fatalf("post-GC occupancy: %d objects, %d bytes", st.Objects, st.Bytes)
			}
			if st.GCRuns != 1 {
				t.Fatalf("gc_runs = %d, want 1", st.GCRuns)
			}
			if st.GCFreedBytes != garbageBytes {
				t.Fatalf("gc_freed_bytes = %d, want %d", st.GCFreedBytes, garbageBytes)
			}

			// A nil predicate means nothing is live: full sweep.
			if removed, _, err := s.GC(nil); err != nil || removed != 1 {
				t.Fatalf("nil-live GC: removed %d, %v", removed, err)
			}
			if st := s.Stats(); st.Objects != 0 || st.Bytes != 0 {
				t.Fatalf("store not empty after full sweep: %+v", st)
			}
		})
	}
}

// TestUnionDeleteHasTierSemantics: Has and Delete must see blobs that
// live in only one tier, and Delete must clear both.
func TestUnionDeleteHasTierSemantics(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem()
	u := NewUnion(mem, disk)

	fastOnly, err := mem.Put([]byte("fast-tier only"))
	if err != nil {
		t.Fatal(err)
	}
	slowOnly, err := disk.Put([]byte("slow-tier only"))
	if err != nil {
		t.Fatal(err)
	}
	both, err := u.Put([]byte("both tiers"))
	if err != nil {
		t.Fatal(err)
	}

	for name, h := range map[string]artifact.Hash{
		"fast-only": fastOnly, "slow-only": slowOnly, "both": both,
	} {
		if ok, err := u.Has(h); err != nil || !ok {
			t.Fatalf("Has(%s) = %v, %v", name, ok, err)
		}
	}

	// Delete-through: a blob present in either tier deletes cleanly.
	for name, h := range map[string]artifact.Hash{
		"fast-only": fastOnly, "slow-only": slowOnly, "both": both,
	} {
		if err := u.Delete(h); err != nil {
			t.Fatalf("Delete(%s): %v", name, err)
		}
		for tier, layer := range map[string]Store{"fast": mem, "slow": disk} {
			if ok, _ := layer.Has(h); ok {
				t.Fatalf("Delete(%s) left the blob in the %s tier", name, tier)
			}
		}
	}
	if err := u.Delete(both); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete absent: %v", err)
	}
}

// TestUnionStatsPerTier: the fast/slow breakdown satellite — the nested
// stats must reflect each tier's own counters.
func TestUnionStatsPerTier(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h, err := disk.Put([]byte("cold blob")) // slow tier only
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnion(NewMem(), disk)
	if _, err := u.Get(h); err != nil { // cold: miss fast, hit slow, warm fast
		t.Fatal(err)
	}
	if _, err := u.Get(h); err != nil { // warm: hit fast
		t.Fatal(err)
	}
	st := u.Stats()
	if st.Fast == nil || st.Slow == nil {
		t.Fatalf("per-tier stats missing: %+v", st)
	}
	if st.Slow.Hits != 1 {
		t.Fatalf("slow hits = %d, want 1 (one cold read)", st.Slow.Hits)
	}
	if st.Fast.Hits != 1 {
		t.Fatalf("fast hits = %d, want 1 (one warm read)", st.Fast.Hits)
	}
	if st.Gets != 2 || st.Hits != 2 {
		t.Fatalf("union gets/hits = %d/%d, want 2/2", st.Gets, st.Hits)
	}
}

// TestUnionReadOnlySlow: with a read-only slow tier (no peers behind
// it) the fast layer becomes authoritative — writes, listing, stats and
// GC all operate locally and never touch the peer tier.
func TestUnionReadOnlySlow(t *testing.T) {
	mem := NewMem()
	remote := NewRemote(nil) // zero peers, but still read-only
	u := NewUnion(mem, remote)

	blob := []byte("locally owned")
	h, err := u.Put(blob)
	if err != nil {
		t.Fatalf("Put over read-only slow: %v", err)
	}
	if ok, _ := mem.Has(h); !ok {
		t.Fatal("Put did not land in the fast tier")
	}
	if _, err := u.Put(blob); err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.Objects != 1 || st.Bytes != int64(len(blob)) {
		t.Fatalf("occupancy should come from the fast tier: %+v", st)
	}
	if st.PutDedups != 1 {
		t.Fatalf("put_dedups = %d, want 1", st.PutDedups)
	}
	hashes, err := u.List()
	if err != nil || len(hashes) != 1 || hashes[0] != h {
		t.Fatalf("List = %v, %v", hashes, err)
	}
	if err := u.Delete(h); err != nil {
		t.Fatal(err)
	}
	if ok, _ := mem.Has(h); ok {
		t.Fatal("Delete did not clear the fast tier")
	}
	if _, err := u.Put(blob); err != nil {
		t.Fatal(err)
	}
	if removed, freed, err := u.GC(nil); err != nil || removed != 1 || freed != int64(len(blob)) {
		t.Fatalf("GC = %d, %d, %v", removed, freed, err)
	}

	// Local unwraps to the fast side so the artifacts endpoint can never
	// recurse into peers.
	if got := Local(u); got != Store(mem) {
		t.Fatalf("Local(%T) = %T, want the fast tier", u, got)
	}
	// A writable slow tier is already local; Local is the identity.
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writable := NewUnion(NewMem(), d)
	if got := Local(writable); got != Store(writable) {
		t.Fatalf("Local over writable slow = %T, want identity", got)
	}
}

// TestDiskDetectsCorruption: bytes rotted on disk must surface as
// ErrCorrupt, never be returned as the artifact.
func TestDiskDetectsCorruption(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("pristine artifact bytes")
	h, err := d.Put(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Rot one byte behind the store's back.
	path := filepath.Join(d.Root(), h.String()[:2], h.String())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted Get: %v", err)
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d", st.Corrupt)
	}
	// The union surfaces the same failure instead of caching garbage.
	u := NewUnion(NewMem(), d)
	if _, err := u.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("union corrupted Get: %v", err)
	}
	if ok, _ := u.Fast().Has(h); ok {
		t.Fatal("union cached a corrupt blob in the fast layer")
	}
}

// TestDiskPersistsAcrossReopen: a new Disk over an existing root sees
// the blobs and counts them in Stats.
func TestDiskPersistsAcrossReopen(t *testing.T) {
	root := t.TempDir()
	d1, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	h, err := d1.Put([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d2.Get(h); err != nil || string(got) != "durable" {
		t.Fatalf("reopen Get: %q, %v", got, err)
	}
	if st := d2.Stats(); st.Objects != 1 || st.Bytes != int64(len("durable")) {
		t.Fatalf("reopen stats: %+v", st)
	}
}

// TestUnionReadThroughPopulatesFastLayer: the warm-cache behaviour the
// registry's instant warm loads ride on.
func TestUnionReadThroughPopulatesFastLayer(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("cold artifact")
	h, err := disk.Put(blob) // present only in the slow layer
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem()
	u := NewUnion(mem, disk)
	if ok, _ := mem.Has(h); ok {
		t.Fatal("fast layer warm before any Get")
	}
	if got, err := u.Get(h); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("cold Get: %v", err)
	}
	if ok, _ := mem.Has(h); !ok {
		t.Fatal("read-through did not populate the fast layer")
	}
	// The second Get is served from memory: disk's Get counter is flat.
	diskGets := disk.Stats().Gets
	if _, err := u.Get(h); err != nil {
		t.Fatal(err)
	}
	if got := disk.Stats().Gets; got != diskGets {
		t.Fatalf("warm Get still hit the slow layer (%d -> %d)", diskGets, got)
	}
	// Write-through: a Put lands in both layers.
	h2, err := u.Put([]byte("written through"))
	if err != nil {
		t.Fatal(err)
	}
	for name, layer := range map[string]Store{"fast": mem, "slow": disk} {
		if ok, _ := layer.Has(h2); !ok {
			t.Fatalf("Put did not reach the %s layer", name)
		}
	}
}
