package store

import (
	"sync"

	"repro/internal/artifact"
)

// Mem is the in-process store: a map from hash to bytes. It is the
// registry's default backing store and the fast layer of a warm-cache
// Union.
type Mem struct {
	counters
	mu    sync.RWMutex
	blobs map[artifact.Hash][]byte
	bytes int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blobs: make(map[artifact.Hash][]byte)}
}

// Put implements Store. The bytes are copied, so callers may reuse the
// buffer.
func (m *Mem) Put(data []byte) (artifact.Hash, error) {
	h := artifact.Sum(data)
	m.puts.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[h]; ok {
		m.putDedups.Add(1)
		return h, nil
	}
	m.blobs[h] = append([]byte(nil), data...)
	m.bytes += int64(len(data))
	return h, nil
}

// Get implements Store.
func (m *Mem) Get(h artifact.Hash) ([]byte, error) {
	m.gets.Add(1)
	m.mu.RLock()
	data, ok := m.blobs[h]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	// The map is append-only under the lock, but verify anyway: the
	// contract is that no store ever returns bytes that do not match
	// their address (a caller scribbling on a returned slice shows up
	// here instead of propagating silently).
	if err := verify(h, data); err != nil {
		m.corrupt.Add(1)
		return nil, err
	}
	m.hits.Add(1)
	return data, nil
}

// Has implements Store.
func (m *Mem) Has(h artifact.Hash) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.blobs[h]
	return ok, nil
}

// Delete implements Store.
func (m *Mem) Delete(h artifact.Hash) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.blobs[h]
	if !ok {
		return ErrNotFound
	}
	delete(m.blobs, h)
	m.bytes -= int64(len(data))
	return nil
}

// List implements Store.
func (m *Mem) List() ([]artifact.Hash, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]artifact.Hash, 0, len(m.blobs))
	for h := range m.blobs {
		out = append(out, h)
	}
	return out, nil
}

// GC implements Store: every blob the live predicate does not claim is
// dropped from the map.
func (m *Mem) GC(live func(artifact.Hash) bool) (int, int64, error) {
	m.gcRuns.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	removed, freed := 0, int64(0)
	for h, data := range m.blobs {
		if live != nil && live(h) {
			continue
		}
		delete(m.blobs, h)
		m.bytes -= int64(len(data))
		removed++
		freed += int64(len(data))
	}
	m.gcFreed.Add(freed)
	return removed, freed, nil
}

// Stats implements Store.
func (m *Mem) Stats() Stats {
	m.mu.RLock()
	s := Stats{Objects: int64(len(m.blobs)), Bytes: m.bytes}
	m.mu.RUnlock()
	m.fill(&s)
	return s
}
