package store

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/artifact"
)

// peerServer is a minimal stand-in for a replica's artifact endpoint:
// it serves the blobs map at /v1/artifacts/{hash} the way
// internal/server does, with an optional mangle hook to simulate a
// corrupt or truncating peer.
func peerServer(t *testing.T, blobs map[artifact.Hash][]byte, mangle func(w http.ResponseWriter, data []byte) bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hex := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
		h, err := artifact.ParseHash(hex)
		if err != nil {
			http.Error(w, "bad hash", http.StatusBadRequest)
			return
		}
		data, ok := blobs[h]
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if r.Method == http.MethodHead {
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			return
		}
		if mangle != nil && mangle(w, data) {
			return
		}
		w.Write(data)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteFetchAndVerify: the happy path — bytes come back, re-hash
// to their address, and count as hits.
func TestRemoteFetchAndVerify(t *testing.T) {
	blob := []byte("peer-owned artifact")
	h := artifact.Sum(blob)
	srv := peerServer(t, map[artifact.Hash][]byte{h: blob}, nil)
	r := NewRemote([]string{srv.URL})

	got, err := r.Get(h)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if ok, err := r.Has(h); err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if ok, _ := r.Has(artifact.Sum([]byte("absent"))); ok {
		t.Fatal("Has reports an absent hash")
	}
	if _, err := r.Get(artifact.Sum([]byte("absent"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get absent: %v", err)
	}
	st := r.Stats()
	if st.Gets != 2 || st.Hits != 1 {
		t.Fatalf("gets/hits = %d/%d, want 2/1", st.Gets, st.Hits)
	}
}

// TestRemoteCorruptPeer: a peer serving bytes that do not hash to the
// requested address must yield ErrCorrupt, never the bytes.
func TestRemoteCorruptPeer(t *testing.T) {
	blob := []byte("authentic artifact")
	h := artifact.Sum(blob)
	srv := peerServer(t, map[artifact.Hash][]byte{h: blob}, func(w http.ResponseWriter, data []byte) bool {
		bad := append([]byte(nil), data...)
		bad[0] ^= 0xFF
		w.Write(bad)
		return true
	})
	r := NewRemote([]string{srv.URL})
	if _, err := r.Get(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt peer Get: %v", err)
	}
	if st := r.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

// TestRemoteTruncatedPeer: a body cut short — whether by a shorter
// write or a mid-stream disconnect — must also land on ErrCorrupt.
func TestRemoteTruncatedPeer(t *testing.T) {
	blob := bytes.Repeat([]byte("posit weights "), 64)
	h := artifact.Sum(blob)
	for name, mangle := range map[string]func(w http.ResponseWriter, data []byte) bool{
		"short-body": func(w http.ResponseWriter, data []byte) bool {
			w.Write(data[:len(data)/2])
			return true
		},
		"disconnect-mid-body": func(w http.ResponseWriter, data []byte) bool {
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data[:len(data)/2])
			w.(http.Flusher).Flush()
			// The handler returns without writing the rest; the client
			// sees an unexpected EOF against the declared length.
			return true
		},
	} {
		t.Run(name, func(t *testing.T) {
			srv := peerServer(t, map[artifact.Hash][]byte{h: blob}, mangle)
			r := NewRemote([]string{srv.URL})
			if _, err := r.Get(h); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated peer Get: %v", err)
			}
		})
	}
}

// TestRemoteFailover: a peer that lacks the blob (or is down) is
// skipped; a later peer that has it serves the fetch.
func TestRemoteFailover(t *testing.T) {
	blob := []byte("only on the second peer")
	h := artifact.Sum(blob)
	empty := peerServer(t, nil, nil)
	full := peerServer(t, map[artifact.Hash][]byte{h: blob}, nil)
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // connection refused

	r := NewRemote([]string{down.URL, empty.URL, full.URL})
	got, err := r.Get(h)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("failover Get = %q, %v", got, err)
	}
}

// TestRemoteReadOnly: the peer tier refuses writes.
func TestRemoteReadOnly(t *testing.T) {
	r := NewRemote([]string{"http://peer.invalid"})
	if !r.ReadOnly() || !isReadOnly(r) {
		t.Fatal("Remote must report read-only")
	}
	if _, err := r.Put([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put: %v", err)
	}
	if err := r.Delete(artifact.Hash{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete: %v", err)
	}
	if removed, freed, err := r.GC(nil); removed != 0 || freed != 0 || err != nil {
		t.Fatalf("GC = %d, %d, %v", removed, freed, err)
	}
}

// TestRemotePullThroughPersists: the composition positrond runs —
// Union(local, Remote) — must fetch a missing blob from the peer once,
// persist it locally, and serve every later read without peer traffic.
func TestRemotePullThroughPersists(t *testing.T) {
	blob := []byte("artifact born on a peer")
	h := artifact.Sum(blob)
	srv := peerServer(t, map[artifact.Hash][]byte{h: blob}, nil)

	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	local := NewUnion(NewMem(), disk)
	remote := NewRemote([]string{srv.URL})
	u := NewUnion(local, remote)

	got, err := u.Get(h)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("pull-through Get = %q, %v", got, err)
	}
	// The fetch persisted all the way down to disk: a restart would
	// still have the blob without re-fetching.
	if ok, _ := disk.Has(h); !ok {
		t.Fatal("fetched blob did not persist to the durable tier")
	}
	peerGets := remote.Stats().Gets
	if _, err := u.Get(h); err != nil {
		t.Fatal(err)
	}
	if got := remote.Stats().Gets; got != peerGets {
		t.Fatalf("warm read still hit the peer (%d -> %d)", peerGets, got)
	}
	// Local view for the artifacts endpoint: the writable local union,
	// never the peer tier.
	if got := Local(u); got != Store(local) {
		t.Fatalf("Local = %T, want the local union", got)
	}
	// The per-tier stats satellite: the slow tier of the outer union is
	// the remote, and its single fetch is visible.
	st := u.Stats()
	if st.Slow == nil || st.Slow.Hits != 1 {
		t.Fatalf("remote tier hits not observable: %+v", st.Slow)
	}
}
