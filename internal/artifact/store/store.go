// Package store provides content-addressed artifact storage: blobs
// keyed by the SHA-256 of their bytes. Because the key *is* the
// content, storage is automatically deduplicated (a second Put of the
// same bytes is free), immutable (a blob can never change under its
// key), and self-verifying (Get re-hashes what it read and refuses to
// return bytes that no longer match their address) — the properties a
// fleet distributing model artifacts to millions-of-users replicas
// needs from its storage plane.
//
// Four implementations compose:
//
//   - Mem    — a mutex-guarded in-process map; the warm cache.
//   - Disk   — a directory sharded by hash prefix, written atomically
//     (temp file + rename), so a crashed writer never corrupts
//     the store and concurrent writers of one hash are safe.
//   - Union  — a read-through overlay (fast layer over slow layer,
//     e.g. mem-over-disk): Gets populate the fast layer, Puts
//     write through to both. A read-only slow layer (Remote)
//     turns the union into pull-through replication: fetched
//     blobs persist into the fast tiers.
//   - Remote — a read-only tier that fetches blobs from peer
//     replicas over HTTP (GET /v1/artifacts/{hash}), re-hashing
//     every fetch so a corrupt peer can never inject bytes.
//
// The store is reference-aware: GC sweeps blobs the caller's live
// predicate does not claim, so an owner (the serving registry) that
// pins its loaded hashes can reclaim everything else.
package store

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/artifact"
)

// ErrNotFound is returned by Get/Delete for an absent hash.
var ErrNotFound = errors.New("store: artifact not found")

// ErrCorrupt is returned by Get when the stored bytes no longer hash to
// their address — bit rot, tampering, or a torn write something slipped
// past the atomic-rename discipline.
var ErrCorrupt = errors.New("store: artifact bytes do not match their hash")

// ErrReadOnly is returned by Put/Delete/GC on stores that cannot accept
// writes (Remote: peers own their blobs; this replica only reads them).
var ErrReadOnly = errors.New("store: store is read-only")

// Store is a content-addressed blob store. Implementations are safe for
// concurrent use.
type Store interface {
	// Put stores data under its content hash and returns the hash.
	// Storing bytes that are already present is a cheap no-op (counted
	// as a dedup in Stats).
	Put(data []byte) (artifact.Hash, error)
	// Get returns the bytes stored under h, verifying they still hash
	// to h. Callers must not mutate the result.
	Get(h artifact.Hash) ([]byte, error)
	// Has reports whether h is present, without reading the bytes.
	Has(h artifact.Hash) (bool, error)
	// Delete removes h. Deleting an absent hash fails with ErrNotFound.
	Delete(h artifact.Hash) error
	// List returns the stored hashes, in no particular order.
	List() ([]artifact.Hash, error)
	// GC removes every blob for which live returns false (nil live
	// means nothing is live) and reports how many blobs and bytes it
	// freed. The predicate is consulted once per candidate at delete
	// time, so an owner that pins hashes under its own lock stays
	// race-free: a blob pinned before it was stored can never be in
	// the sweep.
	GC(live func(artifact.Hash) bool) (removed int, freed int64, err error)
	// Stats reports occupancy and operation counters.
	Stats() Stats
}

// Stats is a store's introspection record. Objects/Bytes describe
// current occupancy; the counters are cumulative since construction.
type Stats struct {
	// Objects and Bytes describe what the store currently holds.
	Objects int64 `json:"objects"`
	Bytes   int64 `json:"bytes"`
	// Puts counts Put calls; PutDedups the subset that found their hash
	// already present (the fleet's dedup win).
	Puts      int64 `json:"puts"`
	PutDedups int64 `json:"put_dedups"`
	// Gets counts Get calls; Hits the subset that returned bytes;
	// Corrupt the subset that failed hash verification.
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Corrupt int64 `json:"corrupt"`
	// GCRuns counts GC sweeps; GCFreedBytes the bytes they reclaimed.
	GCRuns       int64 `json:"gc_runs"`
	GCFreedBytes int64 `json:"gc_freed_bytes"`
	// Fast and Slow carry the per-tier breakdown of a composed store
	// (Union); nil for leaf stores. They make tier hit rates — how
	// often a read was served from memory vs disk vs a peer fetch —
	// observable through /v1/metrics.
	Fast *Stats `json:"fast,omitempty"`
	Slow *Stats `json:"slow,omitempty"`
}

// counters is the atomic operation-counter block shared by the
// implementations (occupancy is tracked per-implementation, under its
// own synchronisation).
type counters struct {
	puts, putDedups, gets, hits, corrupt, gcRuns, gcFreed atomic.Int64
}

func (c *counters) fill(s *Stats) {
	s.Puts = c.puts.Load()
	s.PutDedups = c.putDedups.Load()
	s.Gets = c.gets.Load()
	s.Hits = c.hits.Load()
	s.Corrupt = c.corrupt.Load()
	s.GCRuns = c.gcRuns.Load()
	s.GCFreedBytes = c.gcFreed.Load()
}

// readOnlyStore marks stores that cannot accept writes; Union adapts
// around them (no write-through, no delete-through, no sweep).
type readOnlyStore interface{ ReadOnly() bool }

// isReadOnly reports whether s refuses writes.
func isReadOnly(s Store) bool {
	ro, ok := s.(readOnlyStore)
	return ok && ro.ReadOnly()
}

// Local unwraps a store down to its purely local view: a Union whose
// slow tier is read-only (peers) yields its fast side, recursively.
// Serving GET /v1/artifacts/{hash} MUST read through Local — answering
// a peer's fetch by fetching from peers would let two replicas missing
// the same blob recurse into each other forever.
func Local(s Store) Store {
	for {
		u, ok := s.(*Union)
		if !ok || !isReadOnly(u.slow) {
			return s
		}
		s = u.fast
	}
}

// verify re-hashes data against its claimed address.
func verify(h artifact.Hash, data []byte) error {
	if artifact.Sum(data) != h {
		return fmt.Errorf("%w: %s", ErrCorrupt, h)
	}
	return nil
}
