package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/artifact"
	"repro/internal/fsutil"
)

// Disk is the durable store: one file per artifact under
// root/<hh>/<hash>, where <hh> is the first hash byte in hex — 256
// shards keep any one directory small at fleet-scale artifact counts.
// Writes are atomic (temp file + rename into the shard), so concurrent
// Puts of the same hash are safe (they race to rename identical bytes
// onto one name) and a crashed writer leaves no torn blob behind.
type Disk struct {
	counters
	root string

	// occupancy cache, initialised by a walk at construction and kept
	// current by Put/Delete. mu also serialises the exists-check in Put
	// against Delete, so the dedup fast path cannot lose bytes.
	mu      sync.Mutex
	objects int64
	bytes   int64
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Disk{root: dir}
	err := filepath.WalkDir(dir, func(path string, entry fs.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return err
		}
		if _, herr := artifact.ParseHash(entry.Name()); herr != nil {
			return nil // stray file (e.g. an orphaned temp); not ours to count
		}
		info, err := entry.Info()
		if err != nil {
			return err
		}
		d.objects++
		d.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	return d, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

// path maps a hash to its sharded file path.
func (d *Disk) path(h artifact.Hash) string {
	hex := h.String()
	return filepath.Join(d.root, hex[:2], hex)
}

// Put implements Store.
func (d *Disk) Put(data []byte) (artifact.Hash, error) {
	h := artifact.Sum(data)
	d.puts.Add(1)
	path := d.path(h)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := os.Stat(path); err == nil {
		d.putDedups.Add(1)
		return h, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return h, err
	}
	if err := fsutil.WriteFileAtomic(path, data, 0o644); err != nil {
		return h, err
	}
	d.objects++
	d.bytes += int64(len(data))
	return h, nil
}

// Get implements Store.
func (d *Disk) Get(h artifact.Hash) ([]byte, error) {
	d.gets.Add(1)
	data, err := os.ReadFile(d.path(h))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	if err := verify(h, data); err != nil {
		d.corrupt.Add(1)
		return nil, err
	}
	d.hits.Add(1)
	return data, nil
}

// Has implements Store.
func (d *Disk) Has(h artifact.Hash) (bool, error) {
	_, err := os.Stat(d.path(h))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Delete implements Store.
func (d *Disk) Delete(h artifact.Hash) error {
	path := d.path(h)
	d.mu.Lock()
	defer d.mu.Unlock()
	info, err := os.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	d.objects--
	d.bytes -= info.Size()
	return nil
}

// List implements Store.
func (d *Disk) List() ([]artifact.Hash, error) {
	var out []artifact.Hash
	err := filepath.WalkDir(d.root, func(path string, entry fs.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return err
		}
		if h, herr := artifact.ParseHash(entry.Name()); herr == nil {
			out = append(out, h)
		}
		return nil
	})
	return out, err
}

// GC implements Store: walks the shards and deletes every blob the live
// predicate does not claim. Each candidate goes through Delete, so the
// occupancy cache stays exact and the sweep serialises correctly
// against concurrent Puts of the same hash (the predicate runs at
// delete time — a hash pinned before its Put can never be swept).
func (d *Disk) GC(live func(artifact.Hash) bool) (int, int64, error) {
	d.gcRuns.Add(1)
	hashes, err := d.List()
	if err != nil {
		return 0, 0, err
	}
	removed, freed := 0, int64(0)
	for _, h := range hashes {
		// The liveness check runs under the same mutex as Put's
		// exists-check, so "pin, then Put" owners are safe: either the pin
		// lands first (live() sees it and the blob survives) or the Put
		// serialises after the removal and recreates the blob.
		d.mu.Lock()
		if live != nil && live(h) {
			d.mu.Unlock()
			continue
		}
		info, err := os.Stat(d.path(h))
		if err != nil {
			d.mu.Unlock()
			if errors.Is(err, fs.ErrNotExist) {
				continue // already gone (concurrent Delete)
			}
			d.gcFreed.Add(freed)
			return removed, freed, err
		}
		if err := os.Remove(d.path(h)); err != nil {
			d.mu.Unlock()
			d.gcFreed.Add(freed)
			return removed, freed, err
		}
		d.objects--
		d.bytes -= info.Size()
		d.mu.Unlock()
		removed++
		freed += info.Size()
	}
	d.gcFreed.Add(freed)
	return removed, freed, nil
}

// Stats implements Store.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	s := Stats{Objects: d.objects, Bytes: d.bytes}
	d.mu.Unlock()
	d.fill(&s)
	return s
}
