package artifact

// FuzzParseArtifact drives the binary decoder (and the JSON fallback
// behind Parse) with hostile bytes. The decoder's contract on arbitrary
// input is: error cleanly — never panic, never allocate past the input's
// own byte budget. When input does decode, re-encoding must be canonical
// (decode(encode(m)) == m bytes), which also pins decode/encode
// inversion under fuzzing.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func FuzzParseArtifact(f *testing.F) {
	// Seed corpus: one uniform + one mixed artifact in both formats,
	// plus truncated and corrupted-header mutants.
	for _, name := range coreGoldens {
		jsonBytes, err := os.ReadFile(filepath.Join("..", "core", "testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(jsonBytes)
		m, err := Parse(jsonBytes)
		if err != nil {
			f.Fatal(err)
		}
		bin, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bin)
		f.Add(bin[:len(bin)/2])   // truncated body
		f.Add(bin[:headerSize-1]) // truncated header
		mut := bytes.Clone(bin)
		mut[6] = 9 // corrupt kind
		f.Add(mut)
		mut = bytes.Clone(bin)
		binary.LittleEndian.PutUint32(mut[8:], 1<<30) // hostile layer count
		f.Add(mut)
		mut = bytes.Clone(bin)
		binary.LittleEndian.PutUint32(mut[12:], 0) // broken CRC
		f.Add(mut)
	}
	f.Add([]byte(nil))
	f.Add(magic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return // clean rejection is the contract
		}
		if m == nil {
			t.Fatal("nil model with nil error")
		}
		// Whatever decoded must re-encode deterministically, and for
		// canonical binary input the bytes must round-trip exactly.
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded model does not re-encode: %v", err)
		}
		if IsBinary(data) && !bytes.Equal(re, data) {
			t.Fatalf("binary artifact is not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
