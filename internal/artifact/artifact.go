// Package artifact implements the binary, content-addressed deployment
// format for quantised Deep Positron models — the storage plane beneath
// the serving registry.
//
// The JSON v1 artifact (internal/core/io.go) is the portable, diff-able
// interchange form; this package adds a compact binary encoding of the
// same semantics, built for the load path instead of the diff path: a
// fixed 16-byte header (magic, version, kind, flags, layer count, body
// CRC) followed by little-endian sections at computable offsets — arith
// descriptors, layer shapes, the folded standardizer as raw float64
// bits, then every layer's quantised weight and bias words packed at the
// smallest power-of-two byte width that holds the format's bit width.
// Nothing in the body needs re-quantisation on load: the words are the
// exact codes the EMACs consume, so a loader (or an mmap-style reader)
// slices parameters straight out of the byte stream. An 8-bit model's
// weights occupy exactly one byte per parameter — the footprint framing
// of the ≤8-bit Deep Positron formats.
//
// Every artifact is fingerprinted by the SHA-256 of its canonical bytes
// (the deterministic output of Encode). The hash is the model's identity
// across the fleet: the content-addressed stores under artifact/store
// key blobs by it, the registry dedups same-hash loads with it, and
// /v1/models serves it as an ETag so replicas can sync membership with
// conditional GETs. JSON and binary forms of the same model share one
// hash, because Canonical always hashes the re-encoded binary form.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fsutil"
)

// Version is the binary artifact format this build writes. Readers
// reject versions they do not know.
const Version = 1

// magic opens every binary artifact. The first byte is deliberately
// outside ASCII (and invalid as a UTF-8 leading byte), so no JSON
// artifact can ever sniff as binary.
var magic = [4]byte{0xD9, 'D', 'P', 'A'}

// headerSize is the fixed header: magic(4) version(2) kind(1) flags(1)
// layers(4) bodyCRC(4).
const headerSize = 16

// kind codes (header byte 6).
const (
	kindUniform = 0
	kindMixed   = 1
)

// flag bits (header byte 7).
const (
	flagSigmoid      = 1 << 0
	flagStandardizer = 1 << 1
)

// family codes in arith descriptor records.
const (
	famPosit   = 0
	famFloat   = 1
	famFixed   = 2
	famFloat32 = 3
)

// HashSize is the byte length of an artifact content hash (SHA-256).
const HashSize = sha256.Size

// Hash is an artifact's content address: the SHA-256 of its canonical
// binary encoding.
type Hash [HashSize]byte

// Sum fingerprints raw bytes.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses the hex form produced by String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("artifact: bad hash %q: %w", s, err)
	}
	if len(b) != HashSize {
		return h, fmt.Errorf("artifact: bad hash %q: want %d bytes, got %d", s, HashSize, len(b))
	}
	copy(h[:], b)
	return h, nil
}

// IsBinary reports whether data opens with the binary artifact magic.
func IsBinary(data []byte) bool {
	return len(data) >= len(magic) && [4]byte(data[:4]) == magic
}

// Canonical returns a model's canonical binary bytes and their content
// hash — the identity the store and registry key on. Decoding an
// artifact and re-encoding it is deterministic, so equal models (however
// they arrived: JSON, binary, or built in memory) share one hash.
func Canonical(m core.Model) ([]byte, Hash, error) {
	data, err := Encode(m)
	if err != nil {
		return nil, Hash{}, err
	}
	return data, Sum(data), nil
}

// Parse decodes an artifact in either format, sniffing binary by magic
// and falling back to the JSON v1 parser.
func Parse(data []byte) (core.Model, error) {
	if IsBinary(data) {
		return Decode(data)
	}
	return core.ParseModel(data)
}

// Load reads an artifact file in either format.
func Load(path string) (core.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("artifact: loading %s: %w", path, err)
	}
	return m, nil
}

// Save writes the model's canonical binary artifact atomically (temp
// file + rename), so a killed writer never leaves a truncated artifact.
func Save(m core.Model, path string) error {
	data, err := Encode(m)
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(path, data, 0o644)
}

// wordSize returns the byte width parameter words are stored at: the
// smallest power of two covering the arithmetic's bit width.
func wordSize(bits uint) (int, error) {
	switch {
	case bits == 0 || bits > 32:
		return 0, fmt.Errorf("artifact: unsupported code width %d", bits)
	case bits <= 8:
		return 1, nil
	case bits <= 16:
		return 2, nil
	default:
		return 4, nil
	}
}
