package artifact

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
)

// Encode lowers a model into its canonical binary artifact. The output
// is deterministic: section order, little-endian words and power-of-two
// word widths are all fixed by the format, so equal models encode to
// equal bytes (the property the content hash relies on).
func Encode(m core.Model) ([]byte, error) {
	switch net := m.(type) {
	case *core.Network:
		spec, err := core.DescribeArith(net.Arith)
		if err != nil {
			return nil, err
		}
		return encode(kindUniform, net.Sigmoid, []core.ArithSpec{spec},
			[]emac.Arithmetic{net.Arith}, net.Layers, net.Stand)
	case *core.MixedNetwork:
		if len(net.LayerAriths) != len(net.Layers) {
			return nil, fmt.Errorf("artifact: mixed network has %d arithmetics for %d layers",
				len(net.LayerAriths), len(net.Layers))
		}
		specs := make([]core.ArithSpec, len(net.LayerAriths))
		for i, a := range net.LayerAriths {
			s, err := core.DescribeArith(a)
			if err != nil {
				return nil, err
			}
			specs[i] = s
		}
		return encode(kindMixed, false, specs, net.LayerAriths, net.Layers, net.Stand)
	default:
		return nil, fmt.Errorf("%w: model type %T", ErrUnsupported, m)
	}
}

// descriptorBytes is one arith descriptor record: family, n, the
// family's second parameter (es/we/q), quireDrop.
const descriptorBytes = 4

// specRecord lowers a validated spec into its 4-byte record. The second
// parameter slot is family-dependent; float32 uses neither.
func specRecord(s core.ArithSpec) ([descriptorBytes]byte, error) {
	var fam, param uint
	switch s.Family {
	case "posit":
		fam, param = famPosit, s.ES
	case "float":
		fam, param = famFloat, s.WE
	case "fixed":
		fam, param = famFixed, s.Q
	case "float32":
		fam, param = famFloat32, 0
	default:
		return [descriptorBytes]byte{}, fmt.Errorf("artifact: unknown arithmetic family %q", s.Family)
	}
	for _, v := range []uint{s.N, param, s.QuireDrop} {
		if v > 0xFF {
			return [descriptorBytes]byte{}, fmt.Errorf("artifact: arithmetic parameter %d exceeds one byte", v)
		}
	}
	return [descriptorBytes]byte{byte(fam), byte(s.N), byte(param), byte(s.QuireDrop)}, nil
}

func encode(kind byte, sigmoid bool, specs []core.ArithSpec, ariths []emac.Arithmetic,
	layers []*core.Layer, stand *datasets.Standardizer) ([]byte, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("artifact: model has no layers")
	}
	arithAt := func(i int) emac.Arithmetic {
		if kind == kindMixed {
			return ariths[i]
		}
		return ariths[0]
	}

	// Size the body exactly: descriptors, shapes, standardizer, words.
	size := int64(len(specs)*descriptorBytes + len(layers)*8)
	if stand != nil {
		in0 := layers[0].In
		if len(stand.Mean) != in0 || len(stand.Std) != in0 {
			return nil, fmt.Errorf("artifact: standardizer has %d/%d features for %d inputs",
				len(stand.Mean), len(stand.Std), in0)
		}
		size += int64(16 * in0)
	}
	wsizes := make([]int, len(layers))
	for i, l := range layers {
		ws, err := wordSize(arithAt(i).BitWidth())
		if err != nil {
			return nil, err
		}
		wsizes[i] = ws
		if l.In <= 0 || l.Out <= 0 || len(l.W) != l.Out || len(l.B) != l.Out {
			return nil, fmt.Errorf("artifact: layer %d malformed", i)
		}
		size += int64(l.In*l.Out+l.Out) * int64(ws)
	}

	buf := make([]byte, headerSize, headerSize+size)
	copy(buf, magic[:])
	binary.LittleEndian.PutUint16(buf[4:], Version)
	buf[6] = kind
	var flags byte
	if sigmoid {
		flags |= flagSigmoid
	}
	if stand != nil {
		flags |= flagStandardizer
	}
	buf[7] = flags
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(layers)))

	for _, s := range specs {
		rec, err := specRecord(s)
		if err != nil {
			return nil, err
		}
		buf = append(buf, rec[:]...)
	}
	for _, l := range layers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.In))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.Out))
	}
	if stand != nil {
		for _, v := range stand.Mean {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, v := range stand.Std {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for i, l := range layers {
		ws := wsizes[i]
		appendCode := func(c emac.Code) error {
			if ws < 8 && uint64(c)>>(8*ws) != 0 {
				return fmt.Errorf("artifact: layer %d code %#x exceeds %d bytes", i, uint64(c), ws)
			}
			switch ws {
			case 1:
				buf = append(buf, byte(c))
			case 2:
				buf = binary.LittleEndian.AppendUint16(buf, uint16(c))
			default:
				buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
			}
			return nil
		}
		for j, row := range l.W {
			if len(row) != l.In {
				return nil, fmt.Errorf("artifact: layer %d row %d has %d codes", i, j, len(row))
			}
			for _, c := range row {
				if err := appendCode(c); err != nil {
					return nil, err
				}
			}
		}
		for _, c := range l.B {
			if err := appendCode(c); err != nil {
				return nil, err
			}
		}
	}
	if int64(len(buf)-headerSize) != size {
		return nil, fmt.Errorf("artifact: internal error: body is %d bytes, sized %d", len(buf)-headerSize, size)
	}
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[headerSize:]))
	return buf, nil
}
