package artifact

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden binary artifact files")

// coreGoldens are the pinned JSON v1 artifacts: the binary codec's
// round-trip contract is defined against exactly these files.
var coreGoldens = []string{"uniform_posit8_v1.json", "mixed_v1.json"}

func loadCoreGolden(t *testing.T, name string) (core.Model, []byte) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "core", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.ParseModel(data)
	if err != nil {
		t.Fatal(err)
	}
	return m, data
}

// goldenInputs mirrors the core golden-test input generator (seed 44),
// so both codecs are exercised on the same raw feature vectors.
func goldenInputs(n, dim int) [][]float64 {
	r := rng.New(44)
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = r.NormMS(0, 2)
		}
		xs[i] = x
	}
	return xs
}

func assertSameInference(t *testing.T, want, got core.Model, inputs int) {
	t.Helper()
	a, b := want.NewInferer(), got.NewInferer()
	for i, x := range goldenInputs(inputs, want.InputDim()) {
		la, lb := a.Infer(x), b.Infer(x)
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("inference diverges at input %d logit %d: %v != %v", i, j, la[j], lb[j])
			}
		}
	}
}

// TestBinaryRoundTripGoldens is the losslessness contract: for every
// golden JSON artifact, JSON -> binary -> load produces bit-identical
// inference to the JSON-loaded model.
func TestBinaryRoundTripGoldens(t *testing.T) {
	for _, name := range coreGoldens {
		t.Run(name, func(t *testing.T) {
			jsonModel, _ := loadCoreGolden(t, name)
			bin, err := Encode(jsonModel)
			if err != nil {
				t.Fatal(err)
			}
			if !IsBinary(bin) {
				t.Fatal("encoded artifact does not sniff as binary")
			}
			binModel, err := Decode(bin)
			if err != nil {
				t.Fatal(err)
			}
			if binModel.Kind() != jsonModel.Kind() {
				t.Fatalf("kind %q -> %q", jsonModel.Kind(), binModel.Kind())
			}
			if (binModel.Standardizer() == nil) != (jsonModel.Standardizer() == nil) {
				t.Fatal("standardizer lost or invented")
			}
			for i, n := range jsonModel.ArithNames() {
				if got := binModel.ArithNames()[i]; got != n {
					t.Fatalf("arith %d: %q -> %q", i, n, got)
				}
			}
			assertSameInference(t, jsonModel, binModel, 50)
		})
	}
}

// TestGoldenBinaryArtifacts pins the binary bytes and content hash of
// the golden models, so any encoding change that would break deployed
// binary artifacts (or shift fleet-wide content addresses) fails here.
// Regenerate with -update after an intentional revision (bump Version).
func TestGoldenBinaryArtifacts(t *testing.T) {
	wantHashes := map[string]string{
		"uniform_posit8_v1.bin": "0a59fc6b0517e0d4c16dfb6d1b5ab4c20264a7b987d5854785a82ff72dcd5919",
		"mixed_v1.bin":          "350dfdef1c88895aa535eaceda15c930ea0c779bf312ad99891b3f1c62a3c61b",
	}
	for _, name := range coreGoldens {
		binName := name[:len(name)-len(".json")] + ".bin"
		t.Run(binName, func(t *testing.T) {
			m, _ := loadCoreGolden(t, name)
			got, h, err := Canonical(m)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", binName)
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("%s: %s (%d bytes)", binName, h, len(got))
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: binary artifact bytes diverge from golden (format change? bump Version and -update)", binName)
			}
			if wantHashes[binName] != "" && h.String() != wantHashes[binName] {
				t.Fatalf("%s: content hash %s, want %s", binName, h, wantHashes[binName])
			}
		})
	}
}

// TestCanonicalHashFormatIndependent: the JSON and binary forms of one
// model share a single content address, so a fleet mixing formats still
// dedups and ETag-syncs correctly.
func TestCanonicalHashFormatIndependent(t *testing.T) {
	for _, name := range coreGoldens {
		jsonModel, jsonBytes := loadCoreGolden(t, name)
		_, hJSON, err := Canonical(jsonModel)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := Encode(jsonModel)
		if err != nil {
			t.Fatal(err)
		}
		binModel, err := Decode(bin)
		if err != nil {
			t.Fatal(err)
		}
		_, hBin, err := Canonical(binModel)
		if err != nil {
			t.Fatal(err)
		}
		if hJSON != hBin {
			t.Fatalf("%s: hash differs across formats: %s vs %s", name, hJSON, hBin)
		}
		// And a second parse of the same JSON bytes maps to the same hash.
		again, err := Parse(jsonBytes)
		if err != nil {
			t.Fatal(err)
		}
		if _, h2, _ := Canonical(again); h2 != hJSON {
			t.Fatalf("%s: reparse changed the hash", name)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m, _ := loadCoreGolden(t, "mixed_v1.json")
	a, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestSaveLoadBinary(t *testing.T) {
	m, _ := loadCoreGolden(t, "uniform_posit8_v1.json")
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := Save(m, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameInference(t, m, loaded, 25)
}

// TestLoadDispatchesJSON: Load/Parse accept either format transparently.
func TestLoadDispatchesJSON(t *testing.T) {
	for _, name := range coreGoldens {
		m, err := Load(filepath.Join("..", "core", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if m.NumLayers() == 0 {
			t.Fatal("empty model")
		}
	}
}

// TestSigmoidRoundTrip covers the uniform-only sigmoid flag.
func TestSigmoidRoundTrip(t *testing.T) {
	src := nn.NewMLP([]int{4, 6, 2}, rng.New(7))
	net := core.Quantize(src, emac.NewPosit(8, 0))
	net.Sigmoid = true
	bin, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !back.(*core.Network).Sigmoid {
		t.Fatal("sigmoid flag lost")
	}
	assertSameInference(t, net, back, 25)
}

// TestWideWordWidths exercises the 2-byte word path (a 12-bit posit) —
// the goldens are all 8-bit.
func TestWideWordWidths(t *testing.T) {
	src := nn.NewMLP([]int{3, 5, 2}, rng.New(9))
	net := core.Quantize(src, emac.NewPosit(12, 1))
	net.Stand = &datasets.Standardizer{Mean: []float64{0, 1, -1}, Std: []float64{1, 2, 0.5}}
	bin, err := Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	assertSameInference(t, net, back, 25)
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	m, _ := loadCoreGolden(t, "uniform_posit8_v1.json")
	good, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(good)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"magic only":       good[:4],
		"truncated header": good[:12],
		"truncated body":   good[:len(good)-3],
		"trailing bytes":   append(bytes.Clone(good), 0, 0, 0),
		"future version":   mutate(func(b []byte) { b[4] = 99 }),
		"bad kind":         mutate(func(b []byte) { b[6] = 7 }),
		"unknown flags":    mutate(func(b []byte) { b[7] |= 0x80 }),
		"zero layers":      mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }),
		"huge layer count": mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 1<<31) }),
		"flipped body bit": mutate(func(b []byte) { b[len(b)-1] ^= 1 }),
		"bad family":       mutate(func(b []byte) { b[headerSize] = 200 }),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Sanity: the unmutated bytes still decode.
	if _, err := Decode(good); err != nil {
		t.Fatal(err)
	}
}

func TestHashParseRoundTrip(t *testing.T) {
	h := Sum([]byte("deep positron"))
	back, err := ParseHash(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("hash hex round trip")
	}
	if _, err := ParseHash("xyz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("short hash accepted")
	}
}
