package registry

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/rng"
)

// testModel quantises a small deterministic MLP; in/out dims match the
// Iris topology so inputs are cheap to fabricate.
func testModel(seed uint64, a emac.Arithmetic) core.Model {
	net := nn.NewMLP([]int{4, 8, 3}, rng.New(seed))
	return core.Quantize(net, a)
}

func posit8Model(seed uint64) core.Model { return testModel(seed, emac.NewPosit(8, 0)) }

func testInput(i int) []float64 {
	return []float64{float64(i%7) - 3, 0.5, float64(i % 3), -1.25}
}

func TestLoadAcquireUnload(t *testing.T) {
	r := New(WithRuntimeOptions(engine.WithWorkers(2)))
	defer r.Close()
	if err := r.Load("iris", posit8Model(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("iris", posit8Model(2)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate load: %v, want ErrExists", err)
	}
	if got := r.Names(); len(got) != 1 || got[0] != "iris" {
		t.Fatalf("Names = %v", got)
	}

	h, err := r.Acquire("iris")
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.Batcher().Infer(context.Background(), testInput(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d logits", len(out))
	}
	h.Release()

	if err := r.Unload("iris"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("iris"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("acquire after unload: %v, want ErrNotFound", err)
	}
	if err := r.Unload("iris"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unload: %v, want ErrNotFound", err)
	}
}

// TestSharedOutputsTracksBatching: coalescing entries ride the
// shared-output (0 allocs/op) runtime path; with batching disabled the
// runtime stays on the allocating path so concurrent requests are not
// serialised through the batcher.
func TestSharedOutputsTracksBatching(t *testing.T) {
	batched := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer batched.Close()
	if err := batched.Load("m", posit8Model(20)); err != nil {
		t.Fatal(err)
	}
	h, _ := batched.Acquire("m")
	if !h.Runtime().SharedOutputs() {
		t.Fatal("batching enabled but runtime not shared-output")
	}
	h.Release()

	plain := New(WithRuntimeOptions(engine.WithWorkers(1)), WithBatchWindow(0))
	defer plain.Close()
	if err := plain.Load("m", posit8Model(21)); err != nil {
		t.Fatal(err)
	}
	h2, _ := plain.Acquire("m")
	if h2.Runtime().SharedOutputs() {
		t.Fatal("batching disabled but runtime built with shared outputs")
	}
	if h2.Batcher().Window() != 0 {
		t.Fatalf("Window = %v, want 0", h2.Batcher().Window())
	}
	h2.Release()
}

func TestInvalidNames(t *testing.T) {
	r := New()
	defer r.Close()
	for _, name := range []string{"", "a/b", "a b", "héllo", ".", ".."} {
		if err := r.Load(name, posit8Model(1)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", name)
		}
	}
	for _, name := range []string{"iris", "wbc-8.4", "A_b.c-2"} {
		if err := r.Load(name, posit8Model(1)); err != nil {
			t.Errorf("Load(%q): %v", name, err)
		}
	}
}

// TestUnloadWaitsForHandles: unload must not close the runtime while a
// handle (an in-flight request) is outstanding.
func TestUnloadWaitsForHandles(t *testing.T) {
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.Load("m", posit8Model(3)); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}

	unloaded := make(chan struct{})
	go func() {
		if err := r.Unload("m"); err != nil {
			t.Error(err)
		}
		close(unloaded)
	}()

	// The name disappears promptly even while the handle pins the entry.
	deadline := time.Now().Add(2 * time.Second)
	for r.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("entry still listed while unloading")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-unloaded:
		t.Fatal("Unload returned while a handle was outstanding")
	case <-time.After(50 * time.Millisecond):
	}

	// The pinned entry still serves.
	if _, err := h.Batcher().Infer(context.Background(), testInput(1)); err != nil {
		t.Fatalf("infer on pinned handle: %v", err)
	}
	h.Release()
	select {
	case <-unloaded:
	case <-time.After(5 * time.Second):
		t.Fatal("Unload did not return after the last release")
	}
	// The drained runtime is closed.
	if _, err := h.Runtime().InferBatch(context.Background(), [][]float64{testInput(2)}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("runtime after unload: %v, want ErrClosed", err)
	}
}

// TestConcurrentLifecycle hammers one model name from 8 goroutines that
// each load, infer and unload in a loop — run under -race this is the
// registry's central concurrency contract.
func TestConcurrentLifecycle(t *testing.T) {
	r := New(
		WithRuntimeOptions(engine.WithWorkers(1)),
		WithBatchWindow(100*time.Microsecond),
		WithMaxBatch(4),
	)
	defer r.Close()
	model := posit8Model(4)

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch err := r.Load("shared", model); {
				case err == nil, errors.Is(err, ErrExists):
				default:
					t.Errorf("g%d load: %v", g, err)
					return
				}
				h, err := r.Acquire("shared")
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // another goroutine unloaded first
					}
					t.Errorf("g%d acquire: %v", g, err)
					return
				}
				_, err = h.Batcher().Infer(context.Background(), testInput(g*iters+i))
				if err != nil && !errors.Is(err, ErrBatcherClosed) && !errors.Is(err, engine.ErrClosed) {
					t.Errorf("g%d infer: %v", g, err)
				}
				h.Release()
				if err := r.Unload("shared"); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("g%d unload: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLoadBytes is the upload path: a serialised artifact loads from raw
// JSON and serves identically to the in-memory model.
func TestLoadBytes(t *testing.T) {
	model := posit8Model(5)
	data, err := json.Marshal(model.(json.Marshaler))
	if err != nil {
		t.Fatal(err)
	}
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.LoadBytes("up", data); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("up")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	x := testInput(6)
	got, err := h.Batcher().Infer(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want := model.NewInferer().Infer(x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("logit %d: %v != %v", j, got[j], want[j])
		}
	}

	if err := r.LoadBytes("bad", []byte("{not json")); err == nil {
		t.Fatal("malformed artifact loaded")
	}
}

func TestStats(t *testing.T) {
	r := New(
		WithRuntimeOptions(engine.WithWorkers(2)),
		WithBatchWindow(3*time.Millisecond),
		WithMaxBatch(16),
	)
	defer r.Close()
	if err := r.Load("b-model", posit8Model(6)); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("a-model", testModel(7, emac.NewFixed(8, 4))); err != nil {
		t.Fatal(err)
	}
	stats := r.Stats()
	if len(stats) != 2 || stats[0].Name != "a-model" || stats[1].Name != "b-model" {
		t.Fatalf("stats order: %+v", stats)
	}
	s := stats[0]
	if s.Kind != "uniform" || s.InputDim != 4 || s.OutputDim != 3 || s.Workers != 2 ||
		s.MaxBatch != 16 || s.BatchWindow != "3ms" {
		t.Fatalf("stat: %+v", s)
	}

	h, _ := r.Acquire("a-model")
	if _, err := h.Batcher().Infer(context.Background(), testInput(1)); err != nil {
		t.Fatal(err)
	}
	h.Release()
	st, err := r.Stat("a-model")
	if err != nil {
		t.Fatal(err)
	}
	if st.Metrics.Requests != 1 || st.Metrics.Batches != 1 || st.Metrics.LatencySamples != 1 {
		t.Fatalf("metrics after one request: %+v", st.Metrics)
	}
	if _, err := r.Stat("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat(nope): %v", err)
	}
}

func TestRegistryClose(t *testing.T) {
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	if err := r.Load("a", posit8Model(8)); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("b", posit8Model(9)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := r.Acquire("a"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	if err := r.Load("c", posit8Model(10)); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("load after close: %v", err)
	}
	// Unload of a model that WAS loaded must report shutdown, not a bad
	// name — clients distinguish "retry elsewhere" from "fix your name".
	if err := r.Unload("a"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("unload after close: %v, want ErrRegistryClosed", err)
	}
	if err := r.Unload("never-existed"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("unload of unknown name after close: %v, want ErrRegistryClosed", err)
	}
}
