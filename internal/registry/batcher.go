package registry

// The dynamic micro-batcher. positrond's HTTP clients mostly send one
// sample per request, but the runtime's shared-output batch path (0
// allocs/op steady state) amortises scheduling and decode costs across a
// whole batch. The batcher bridges the two: single-sample requests that
// arrive within a configurable window are coalesced into one InferBatch
// call, with per-request result demux — the serving analogue of the
// paper's streaming accelerator keeping its EMAC pipeline full.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// ErrBatcherClosed is returned by Batcher calls after Close.
var ErrBatcherClosed = errors.New("registry: batcher closed")

// DefaultBatchWindow is the coalescing window used when none is
// configured: long enough to catch concurrent bursts, short enough to be
// invisible next to network latency.
const DefaultBatchWindow = 2 * time.Millisecond

// DefaultMaxBatch bounds a coalesced flush when no limit is configured.
const DefaultMaxBatch = 64

// call is one in-flight single-sample request waiting for its flush.
// ctx is the caller's context: a call whose ctx is done by flush time is
// dropped from the batch instead of burning an EMAC slot computing a
// result nobody will read.
type call struct {
	ctx    context.Context
	x      []float64
	logits []float64
	err    error
	done   chan struct{}
}

// Batcher coalesces single-sample Infer calls in front of one Runtime.
// All methods are safe for concurrent use. When the runtime was built
// with engine.WithSharedOutputs, the batcher serialises every inference
// on it — coalesced flushes and explicit InferBatch calls alike — and
// copies results out of the shared buffer before the next batch can
// start; over an ordinary runtime, batches run concurrently and the
// allocating InferBatch results are returned as-is.
type Batcher struct {
	rt       *engine.Runtime
	window   time.Duration
	maxBatch int
	metrics  *Metrics
	inDim    int
	outDim   int
	shared   bool

	// flushMu serialises runtime access when shared (shared-output
	// safety); unused otherwise.
	flushMu sync.Mutex

	// mu guards the pending queue, the window timer and closed.
	mu      sync.Mutex
	pending []*call
	timer   *time.Timer
	closed  bool
}

// NewBatcher wraps a runtime with a micro-batcher. window <= 0 or
// maxBatch <= 1 disables coalescing: Infer degenerates to a serialised
// single-sample InferBatch. metrics may be nil.
func NewBatcher(rt *engine.Runtime, window time.Duration, maxBatch int, metrics *Metrics) *Batcher {
	m := rt.Model()
	return &Batcher{
		rt:       rt,
		window:   window,
		maxBatch: maxBatch,
		metrics:  metrics,
		inDim:    m.InputDim(),
		outDim:   m.OutputDim(),
		shared:   rt.SharedOutputs(),
	}
}

// Runtime returns the wrapped runtime.
func (b *Batcher) Runtime() *engine.Runtime { return b.rt }

// Window returns the coalescing window (0 when batching is disabled).
func (b *Batcher) Window() time.Duration {
	if b.window <= 0 || b.maxBatch <= 1 {
		return 0
	}
	return b.window
}

// MaxBatch returns the coalesced-flush size bound.
func (b *Batcher) MaxBatch() int { return b.maxBatch }

func (b *Batcher) checkInput(x []float64) error {
	if len(x) != b.inDim {
		return fmt.Errorf("registry: input has %d features, model expects %d", len(x), b.inDim)
	}
	return nil
}

// Infer runs one sample. If other Infer calls arrive within the window
// (or until maxBatch is reached), they share one runtime batch; results
// are demultiplexed per caller and are bit-identical to an unbatched
// call, because each inference in a batch is independent. Cancelling ctx
// abandons the wait (the flush may still compute the result; it is
// discarded). The returned slice is caller-owned.
func (b *Batcher) Infer(ctx context.Context, x []float64) ([]float64, error) {
	if err := b.checkInput(x); err != nil {
		return nil, err
	}
	start := time.Now()
	if b.Window() == 0 {
		b.mu.Lock()
		closed := b.closed
		b.mu.Unlock()
		if closed {
			return nil, ErrBatcherClosed
		}
		out, err := b.inferDirect(ctx, [][]float64{x}, false)
		if err != nil {
			return nil, err
		}
		b.metrics.ObserveLatency(time.Since(start))
		return out[0], nil
	}

	c := &call{ctx: ctx, x: x, done: make(chan struct{})}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBatcherClosed
	}
	b.pending = append(b.pending, c)
	if len(b.pending) >= b.maxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.run(batch) // flush rides this caller's goroutine
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.window, b.flush)
		}
		b.mu.Unlock()
	}

	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		b.metrics.ObserveLatency(time.Since(start))
		return c.logits, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InferBatch runs an explicit client batch directly (no coalescing —
// the client already amortised the call), serialised with the flushes so
// the shared-output runtime buffer is never overwritten mid-read. The
// returned slices are caller-owned.
func (b *Batcher) InferBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	if len(xs) == 0 {
		// Reject before the runtime: a zero-sample batch has no result to
		// return and would otherwise count a phantom flush in the metrics.
		return nil, errors.New("registry: empty batch")
	}
	for i, x := range xs {
		if err := b.checkInput(x); err != nil {
			return nil, fmt.Errorf("registry: batch input %d: %w", i, err)
		}
	}
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, ErrBatcherClosed
	}
	start := time.Now()
	out, err := b.inferDirect(ctx, xs, false)
	if err != nil {
		return nil, err
	}
	b.metrics.ObserveLatency(time.Since(start))
	return out, nil
}

// inferDirect runs one runtime batch. Over a shared-output runtime it
// holds flushMu for the call and copies the results out of the shared
// buffer into one fresh flat allocation (no other batch can start until
// the copy is done); over an ordinary runtime, batches run concurrently
// on the whole pool and the freshly allocated logits are caller-owned
// already.
func (b *Batcher) inferDirect(ctx context.Context, xs [][]float64, coalesced bool) ([][]float64, error) {
	if !b.shared {
		out, err := b.rt.InferBatch(ctx, xs)
		if err != nil {
			return nil, err
		}
		b.metrics.ObserveFlush(len(xs), coalesced)
		return out, nil
	}
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	out, err := b.rt.InferBatch(ctx, xs)
	if err != nil {
		return nil, err
	}
	od := b.outDim
	flat := make([]float64, len(out)*od)
	hdrs := make([][]float64, len(out))
	for i, logits := range out {
		dst := flat[i*od : (i+1)*od : (i+1)*od]
		copy(dst, logits)
		hdrs[i] = dst
	}
	b.metrics.ObserveFlush(len(xs), coalesced)
	return hdrs, nil
}

// takeLocked detaches the pending queue and disarms the window timer.
// Caller holds b.mu.
func (b *Batcher) takeLocked() []*call {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flush is the window-timer callback.
func (b *Batcher) flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}

// run executes one coalesced batch and demultiplexes results to the
// waiting callers. The flush context is Background: one caller's
// cancellation must not abort its batch-mates' inferences. Calls whose
// own context is already done are dropped before the runtime sees the
// batch — the caller returned at cancellation but its entry stayed in
// the pending queue, and computing it would waste EMAC compute, occupy
// a coalesced batch slot, and skew the batch-size histogram.
func (b *Batcher) run(batch []*call) {
	live := batch[:0]
	for _, c := range batch {
		select {
		case <-c.ctx.Done():
			c.err = c.ctx.Err()
			close(c.done)
		default:
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	xs := make([][]float64, len(live))
	for i, c := range live {
		xs[i] = c.x
	}
	out, err := b.inferDirect(context.Background(), xs, true)
	if err != nil {
		for _, c := range live {
			c.err = err
			close(c.done)
		}
		return
	}
	for i, c := range live {
		c.logits = out[i]
		close(c.done)
	}
}

// Close stops accepting new work and synchronously flushes any pending
// coalesced calls, so no caller is left waiting. It does not close the
// underlying runtime (the registry owns that ordering). Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}
