package registry

// The dynamic micro-batcher. positrond's HTTP clients mostly send one
// sample per request, but the runtime's shared-output batch path (0
// allocs/op steady state) amortises scheduling and decode costs across a
// whole batch. The batcher bridges the two: single-sample requests that
// arrive within a configurable window are coalesced into one InferBatch
// call, with per-request result demux — the serving analogue of the
// paper's streaming accelerator keeping its EMAC pipeline full.
//
// Over a shared-output runtime the batcher rides the flush pipeline:
// each window leases one of the runtime's D result planes
// (engine.AcquireFlushSlot), so flush N+1 starts computing while flush
// N's results are still being demultiplexed and flush N+2 accumulates —
// collect, compute and demux overlap instead of serialising end to end.
// Bit-identity is unaffected: samples are independent, and each window
// computes into its own plane.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// ErrBatcherClosed is returned by Batcher calls after Close.
var ErrBatcherClosed = errors.New("registry: batcher closed")

// DefaultBatchWindow is the coalescing window used when none is
// configured: long enough to catch concurrent bursts, short enough to be
// invisible next to network latency.
const DefaultBatchWindow = 2 * time.Millisecond

// DefaultMaxBatch bounds a coalesced flush when no limit is configured.
const DefaultMaxBatch = 64

// DefaultFlushPipeline is the flush-slot plane count the registry gives
// shared-output runtimes when none is configured: two planes — compute
// flush N while flush N−1 demuxes — captures most of the overlap win at
// one extra result plane of memory (the Langroudi et al. bounded-memory
// framing: depth is a budget, not a free variable).
const DefaultFlushPipeline = 2

// call is one in-flight single-sample request waiting for its flush.
// ctx is the caller's context: a call whose ctx is done by flush time is
// dropped from the batch instead of burning an EMAC slot computing a
// result nobody will read. enq stamps when the call joined the pending
// queue, for the queue-wait half of the latency split.
type call struct {
	ctx    context.Context
	x      []float64
	enq    time.Time
	logits []float64
	err    error
	done   chan struct{}
}

// Batcher coalesces single-sample Infer calls in front of one Runtime.
// All methods are safe for concurrent use. When the runtime was built
// with engine.WithSharedOutputs, every inference on it — coalesced
// flushes and explicit InferBatch calls alike — runs through a leased
// flush slot and results are copied out of the slot's plane before it is
// released; with D > 1 planes, flushes pipeline. Over an ordinary
// runtime, batches run concurrently and the allocating InferBatch
// results are returned as-is.
type Batcher struct {
	rt       *engine.Runtime
	window   time.Duration
	maxBatch int
	metrics  *Metrics
	inDim    int
	outDim   int
	shared   bool

	// mu guards the pending queue, the window timer and closed.
	mu      sync.Mutex
	pending []*call
	timer   *time.Timer
	closed  bool

	// flights counts in-progress runtime operations (flushes and direct
	// batches). Close waits for it, so the runtime can be closed
	// afterwards without failing a flush that was mid-pipeline.
	flights sync.WaitGroup
}

// NewBatcher wraps a runtime with a micro-batcher. window <= 0 or
// maxBatch <= 1 disables coalescing: Infer degenerates to a serialised
// single-sample InferBatch. metrics may be nil.
func NewBatcher(rt *engine.Runtime, window time.Duration, maxBatch int, metrics *Metrics) *Batcher {
	m := rt.Model()
	return &Batcher{
		rt:       rt,
		window:   window,
		maxBatch: maxBatch,
		metrics:  metrics,
		inDim:    m.InputDim(),
		outDim:   m.OutputDim(),
		shared:   rt.SharedOutputs(),
	}
}

// Runtime returns the wrapped runtime.
func (b *Batcher) Runtime() *engine.Runtime { return b.rt }

// Window returns the coalescing window (0 when batching is disabled).
func (b *Batcher) Window() time.Duration {
	if b.window <= 0 || b.maxBatch <= 1 {
		return 0
	}
	return b.window
}

// MaxBatch returns the coalesced-flush size bound.
func (b *Batcher) MaxBatch() int { return b.maxBatch }

func (b *Batcher) checkInput(x []float64) error {
	if len(x) != b.inDim {
		return fmt.Errorf("registry: input has %d features, model expects %d", len(x), b.inDim)
	}
	return nil
}

// beginOp registers one runtime operation so Close can wait out every
// in-flight flush before the registry closes the runtime underneath
// them. Fails with ErrBatcherClosed after Close.
func (b *Batcher) beginOp() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBatcherClosed
	}
	b.flights.Add(1)
	return nil
}

// Infer runs one sample. If other Infer calls arrive within the window
// (or until maxBatch is reached), they share one runtime batch; results
// are demultiplexed per caller and are bit-identical to an unbatched
// call, because each inference in a batch is independent. Cancelling ctx
// abandons the wait (the flush may still compute the result; it is
// discarded). The returned slice is caller-owned.
func (b *Batcher) Infer(ctx context.Context, x []float64) ([]float64, error) {
	if err := b.checkInput(x); err != nil {
		return nil, err
	}
	start := time.Now()
	if b.Window() == 0 {
		if err := b.beginOp(); err != nil {
			return nil, err
		}
		out, err := b.inferDirect(ctx, [][]float64{x}, false)
		b.flights.Done()
		if err != nil {
			return nil, err
		}
		b.metrics.ObserveLatency(time.Since(start))
		return out[0], nil
	}

	c := &call{ctx: ctx, x: x, enq: start, done: make(chan struct{})}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBatcherClosed
	}
	b.pending = append(b.pending, c)
	if len(b.pending) >= b.maxBatch {
		batch := b.takeLocked()
		b.flights.Add(1)
		b.mu.Unlock()
		b.run(batch) // flush rides this caller's goroutine
		b.flights.Done()
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.window, b.flush)
		}
		b.mu.Unlock()
	}

	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		b.metrics.ObserveLatency(time.Since(start))
		return c.logits, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InferBatch runs an explicit client batch directly (no coalescing —
// the client already amortised the call) through its own flush slot, so
// it pipelines with coalesced windows instead of serialising against
// them. The returned slices are caller-owned.
func (b *Batcher) InferBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	if len(xs) == 0 {
		// Reject before the runtime: a zero-sample batch has no result to
		// return and would otherwise count a phantom flush in the metrics.
		return nil, errors.New("registry: empty batch")
	}
	for i, x := range xs {
		if err := b.checkInput(x); err != nil {
			return nil, fmt.Errorf("registry: batch input %d: %w", i, err)
		}
	}
	if err := b.beginOp(); err != nil {
		return nil, err
	}
	defer b.flights.Done()
	start := time.Now()
	out, err := b.inferDirect(ctx, xs, false)
	if err != nil {
		return nil, err
	}
	b.metrics.ObserveLatency(time.Since(start))
	return out, nil
}

// inferDirect runs one runtime batch for a caller that wants the results
// back (the passthrough and explicit-batch paths). Over a shared-output
// runtime it leases a flush slot — waiting for a free plane is this
// path's queue wait — and copies the results out of the plane into one
// fresh flat allocation before releasing it; over an ordinary runtime,
// batches run concurrently on the whole pool and the freshly allocated
// logits are caller-owned already.
func (b *Batcher) inferDirect(ctx context.Context, xs [][]float64, coalesced bool) ([][]float64, error) {
	if !b.shared {
		out, err := b.rt.InferBatch(ctx, xs)
		if err != nil {
			return nil, err
		}
		b.metrics.ObserveFlush(len(xs), coalesced)
		return out, nil
	}
	acq := time.Now()
	slot, err := b.rt.AcquireFlushSlot(ctx)
	if err != nil {
		return nil, err
	}
	b.metrics.ObserveQueueWait(time.Since(acq))
	b.metrics.ObservePipelineDepth(b.rt.FlushSlotsInUse())
	computeStart := time.Now()
	out, err := slot.InferBatch(ctx, xs)
	if err != nil {
		slot.Release()
		return nil, err
	}
	b.metrics.ObserveCompute(time.Since(computeStart))
	b.metrics.ObserveFlush(len(xs), coalesced)
	od := b.outDim
	flat := make([]float64, len(out)*od)
	hdrs := make([][]float64, len(out))
	for i, logits := range out {
		dst := flat[i*od : (i+1)*od : (i+1)*od]
		copy(dst, logits)
		hdrs[i] = dst
	}
	slot.Release()
	return hdrs, nil
}

// takeLocked detaches the pending queue and disarms the window timer.
// Caller holds b.mu.
func (b *Batcher) takeLocked() []*call {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flush is the window-timer callback.
func (b *Batcher) flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	if len(batch) == 0 {
		b.mu.Unlock()
		return
	}
	b.flights.Add(1)
	b.mu.Unlock()
	b.run(batch)
	b.flights.Done()
}

// run executes one coalesced window and demultiplexes results to the
// waiting callers. The flush context is Background: one caller's
// cancellation must not abort its batch-mates' inferences. Calls whose
// own context is already done are dropped before the runtime sees the
// batch — the caller returned at cancellation but its entry stayed in
// the pending queue, and computing it would waste EMAC compute, occupy
// a coalesced batch slot, and skew the batch-size histogram.
//
// Over a shared-output runtime the window computes in a leased flush
// slot: the demux copy happens after the slot's InferBatch returns but
// the plane is released the moment the copy is done — with D > 1 planes
// the next window's compute is already running while this one's callers
// are still being woken, so demux is off the compute critical path.
func (b *Batcher) run(batch []*call) {
	live := batch[:0]
	for _, c := range batch {
		select {
		case <-c.ctx.Done():
			c.err = c.ctx.Err()
			close(c.done)
		default:
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	xs := make([][]float64, len(live))
	for i, c := range live {
		xs[i] = c.x
	}
	if !b.shared {
		out, err := b.rt.InferBatch(context.Background(), xs)
		if err != nil {
			b.failAll(live, err)
			return
		}
		b.metrics.ObserveFlush(len(xs), true)
		for i, c := range live {
			c.logits = out[i]
			close(c.done)
		}
		return
	}
	slot, err := b.rt.AcquireFlushSlot(context.Background())
	if err != nil {
		b.failAll(live, err)
		return
	}
	// The window's queue wait ends here: the flush is about to compute.
	now := time.Now()
	for _, c := range live {
		b.metrics.ObserveQueueWait(now.Sub(c.enq))
	}
	b.metrics.ObservePipelineDepth(b.rt.FlushSlotsInUse())
	out, err := slot.InferBatch(context.Background(), xs)
	if err != nil {
		slot.Release()
		b.failAll(live, err)
		return
	}
	b.metrics.ObserveCompute(time.Since(now))
	b.metrics.ObserveFlush(len(xs), true)
	// Demux copy: one flat caller-owned allocation for the window, then
	// the plane frees for the next flush before the callers wake.
	od := b.outDim
	flat := make([]float64, len(out)*od)
	for i, c := range live {
		dst := flat[i*od : (i+1)*od : (i+1)*od]
		copy(dst, out[i])
		c.logits = dst
	}
	slot.Release()
	for _, c := range live {
		close(c.done)
	}
}

// failAll delivers err to every live call of a window.
func (b *Batcher) failAll(live []*call, err error) {
	for _, c := range live {
		c.err = err
		close(c.done)
	}
}

// Close stops accepting new work, synchronously flushes any pending
// coalesced calls, and waits for every in-flight flush to finish — so
// no caller is left waiting and the owner may close the runtime
// immediately afterwards without failing a mid-pipeline window. It does
// not close the underlying runtime (the registry owns that ordering).
// Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
	b.flights.Wait()
}
