package registry

// Per-model serving metrics: enough to see whether micro-batching is
// working (request count, batch-size histogram, tail latency) without
// any external tooling — /v1/metrics serialises a Snapshot per model.

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// latencyRing is the capacity of the per-model latency ring buffer. 512
// samples is enough for a stable p99 while keeping the snapshot sort
// cheap.
const latencyRing = 512

// histBuckets are the power-of-two batch-size buckets: 1, 2, 3-4, 5-8,
// 9-16, 17-32, 33-64, 65+.
const histBuckets = 8

// bucketLabels name the histogram buckets in snapshots.
var bucketLabels = [histBuckets]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// bucketFor maps a batch size to its histogram bucket.
func bucketFor(size int) int {
	if size < 1 {
		size = 1
	}
	b := bits.Len(uint(size - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Metrics accumulates serving statistics for one model. All methods are
// safe for concurrent use; a nil *Metrics discards every observation.
type Metrics struct {
	mu        sync.Mutex
	requests  int64 // samples served (1 per single infer, n per batch)
	batches   int64 // runtime InferBatch invocations
	coalesced int64 // of those, micro-batcher flushes
	maxCoal   int   // largest coalesced flush
	rejected  int64 // requests shed at the admission gate (ErrOverloaded)
	timedOut  int64 // admitted requests that hit the request deadline
	inFlight  int64 // currently admitted requests (gauge)
	hist      [histBuckets]int64
	ring      [latencyRing]time.Duration
	ringN     int // samples written (may exceed latencyRing)
}

// ObserveFlush records one runtime batch of the given size; coalesced
// marks flushes formed by the micro-batcher (as opposed to explicit
// client batches). Size 0 — a flush whose every caller had already
// cancelled — records nothing: no runtime batch ran, so counting it
// (in batches and, via bucketFor(0)→"1", the histogram) would skew
// both.
func (m *Metrics) ObserveFlush(size int, coalesced bool) {
	if m == nil || size <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests += int64(size)
	m.batches++
	m.hist[bucketFor(size)]++
	if coalesced {
		m.coalesced++
		if size > m.maxCoal {
			m.maxCoal = size
		}
	}
}

// ObserveAdmit records one request passing the admission gate (in-flight
// gauge up).
func (m *Metrics) ObserveAdmit() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

// ObserveDone records one admitted request finishing, successfully or
// not (in-flight gauge down).
func (m *Metrics) ObserveDone() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inFlight--
	m.mu.Unlock()
}

// ObserveRejected records one request shed at the admission gate.
func (m *Metrics) ObserveRejected() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// ObserveTimeout records one admitted request hitting the per-request
// deadline.
func (m *Metrics) ObserveTimeout() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.timedOut++
	m.mu.Unlock()
}

// ObserveLatency records one caller-visible request latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring[m.ringN%latencyRing] = d
	m.ringN++
}

// Snapshot is a point-in-time copy of one model's metrics, shaped for
// JSON serialisation.
type Snapshot struct {
	// Requests is the number of samples served.
	Requests int64 `json:"requests"`
	// Batches is the number of runtime batch invocations (coalesced
	// flushes and explicit client batches alike).
	Batches int64 `json:"batches"`
	// CoalescedBatches counts flushes formed by the micro-batcher.
	CoalescedBatches int64 `json:"coalesced_batches"`
	// MaxCoalesced is the largest micro-batch flushed so far — > 1 means
	// batching is actually coalescing traffic.
	MaxCoalesced int `json:"max_coalesced"`
	// Rejected counts requests shed at the admission gate (HTTP 429).
	Rejected int64 `json:"rejected"`
	// TimedOut counts admitted requests that hit the request deadline.
	TimedOut int64 `json:"timed_out"`
	// InFlight is the currently admitted request gauge.
	InFlight int64 `json:"in_flight"`
	// BatchSizeHist buckets runtime batch sizes (keys "1", "2", "3-4",
	// ... "65+"); zero buckets are omitted.
	BatchSizeHist map[string]int64 `json:"batch_size_hist"`
	// LatencySamples is how many latencies the ring currently holds.
	LatencySamples int `json:"latency_samples"`
	// P50Ms and P99Ms are latency percentiles over the ring, in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Snapshot returns a consistent copy of the counters and the latency
// percentiles over the ring buffer.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{BatchSizeHist: map[string]int64{}}
	}
	m.mu.Lock()
	s := Snapshot{
		Requests:         m.requests,
		Batches:          m.batches,
		CoalescedBatches: m.coalesced,
		MaxCoalesced:     m.maxCoal,
		Rejected:         m.rejected,
		TimedOut:         m.timedOut,
		InFlight:         m.inFlight,
		BatchSizeHist:    make(map[string]int64, histBuckets),
	}
	for i, n := range m.hist {
		if n > 0 {
			s.BatchSizeHist[bucketLabels[i]] = n
		}
	}
	n := m.ringN
	if n > latencyRing {
		n = latencyRing
	}
	lats := make([]time.Duration, n)
	copy(lats, m.ring[:n])
	m.mu.Unlock()

	s.LatencySamples = n
	if n > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.P50Ms = float64(lats[percentileIndex(n, 50)]) / float64(time.Millisecond)
		s.P99Ms = float64(lats[percentileIndex(n, 99)]) / float64(time.Millisecond)
	}
	return s
}

// percentileIndex returns the nearest-rank index for percentile p over n
// sorted samples.
func percentileIndex(n, p int) int {
	i := (n*p + 99) / 100 // ceil(n*p/100)
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}
	return i - 1
}
