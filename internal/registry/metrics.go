package registry

// Per-model serving metrics: enough to see whether micro-batching is
// working (request count, batch-size histogram, tail latency) without
// any external tooling — /v1/metrics serialises a Snapshot per model.

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// latencyRing is the capacity of the per-model latency ring buffer. 512
// samples is enough for a stable p99 while keeping the snapshot sort
// cheap.
const latencyRing = 512

// histBuckets are the power-of-two batch-size buckets: 1, 2, 3-4, 5-8,
// 9-16, 17-32, 33-64, 65+.
const histBuckets = 8

// bucketLabels name the histogram buckets in snapshots.
var bucketLabels = [histBuckets]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// bucketFor maps a batch size to its histogram bucket.
func bucketFor(size int) int {
	if size < 1 {
		size = 1
	}
	b := bits.Len(uint(size - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// ewmaAlpha weights the exponentially-decaying averages behind the
// dynamic Retry-After hint: each new sample contributes 20%, so the
// hint tracks sustained shifts in load without chasing one outlier.
const ewmaAlpha = 0.2

// Metrics accumulates serving statistics for one model. All methods are
// safe for concurrent use; a nil *Metrics discards every observation.
type Metrics struct {
	mu        sync.Mutex
	requests  int64 // samples served (1 per single infer, n per batch)
	batches   int64 // runtime InferBatch invocations
	coalesced int64 // of those, micro-batcher flushes
	maxCoal   int   // largest coalesced flush
	rejected  int64 // requests shed at the admission gate (ErrOverloaded)
	timedOut  int64 // admitted requests that hit the request deadline
	inFlight  int64 // currently admitted requests (gauge)
	hist      [histBuckets]int64
	ring      [latencyRing]time.Duration
	ringN     int // samples written (may exceed latencyRing)

	// latency split: time a request spends waiting for its flush to
	// start (pending queue + plane acquisition) vs the flush compute
	// itself, each with its own percentile ring.
	queueRing   [latencyRing]time.Duration
	queueN      int
	computeRing [latencyRing]time.Duration
	computeN    int

	// maxPipeline is the deepest flush-slot occupancy observed at any
	// flush start — > 1 proves windows really overlapped.
	maxPipeline int

	// EWMAs (in ns) behind RetryHint: how long requests currently wait
	// to start, and how often flushes currently complete.
	queueWaitEWMA float64
	flushGapEWMA  float64
	lastFlush     time.Time
}

// ObserveFlush records one runtime batch of the given size; coalesced
// marks flushes formed by the micro-batcher (as opposed to explicit
// client batches). Size 0 — a flush whose every caller had already
// cancelled — records nothing: no runtime batch ran, so counting it
// (in batches and, via bucketFor(0)→"1", the histogram) would skew
// both.
func (m *Metrics) ObserveFlush(size int, coalesced bool) {
	if m == nil || size <= 0 {
		return
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests += int64(size)
	m.batches++
	m.hist[bucketFor(size)]++
	if coalesced {
		m.coalesced++
		if size > m.maxCoal {
			m.maxCoal = size
		}
	}
	if !m.lastFlush.IsZero() {
		gap := float64(now.Sub(m.lastFlush))
		m.flushGapEWMA += ewmaAlpha * (gap - m.flushGapEWMA)
	}
	m.lastFlush = now
}

// ObserveQueueWait records how long one request waited before its flush
// started computing: pending-queue time for coalesced calls, flush-slot
// acquisition for direct batches.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueRing[m.queueN%latencyRing] = d
	m.queueN++
	m.queueWaitEWMA += ewmaAlpha * (float64(d) - m.queueWaitEWMA)
}

// ObserveCompute records one flush's runtime-batch duration — the
// compute half of the queue-wait/compute latency split.
func (m *Metrics) ObserveCompute(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.computeRing[m.computeN%latencyRing] = d
	m.computeN++
}

// ObservePipelineDepth records the flush-slot occupancy seen at a flush
// start; the running max proves (or disproves) that windows overlap.
func (m *Metrics) ObservePipelineDepth(depth int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if depth > m.maxPipeline {
		m.maxPipeline = depth
	}
	m.mu.Unlock()
}

// RetryHint derives a backoff suggestion for shed or timed-out requests
// from the observed load: the current queue-wait EWMA plus one observed
// flush interval — roughly when a freed slot plausibly reaches a new
// arrival. Zero when nothing has been observed yet; callers clamp to
// their protocol's sane range.
func (m *Metrics) RetryHint() time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.queueWaitEWMA + m.flushGapEWMA)
}

// ObserveAdmit records one request passing the admission gate (in-flight
// gauge up).
func (m *Metrics) ObserveAdmit() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

// ObserveDone records one admitted request finishing, successfully or
// not (in-flight gauge down).
func (m *Metrics) ObserveDone() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inFlight--
	m.mu.Unlock()
}

// ObserveRejected records one request shed at the admission gate.
func (m *Metrics) ObserveRejected() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// ObserveTimeout records one admitted request hitting the per-request
// deadline.
func (m *Metrics) ObserveTimeout() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.timedOut++
	m.mu.Unlock()
}

// ObserveLatency records one caller-visible request latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring[m.ringN%latencyRing] = d
	m.ringN++
}

// Snapshot is a point-in-time copy of one model's metrics, shaped for
// JSON serialisation.
type Snapshot struct {
	// Requests is the number of samples served.
	Requests int64 `json:"requests"`
	// Batches is the number of runtime batch invocations (coalesced
	// flushes and explicit client batches alike).
	Batches int64 `json:"batches"`
	// CoalescedBatches counts flushes formed by the micro-batcher.
	CoalescedBatches int64 `json:"coalesced_batches"`
	// MaxCoalesced is the largest micro-batch flushed so far — > 1 means
	// batching is actually coalescing traffic.
	MaxCoalesced int `json:"max_coalesced"`
	// Rejected counts requests shed at the admission gate (HTTP 429).
	Rejected int64 `json:"rejected"`
	// TimedOut counts admitted requests that hit the request deadline.
	TimedOut int64 `json:"timed_out"`
	// InFlight is the currently admitted request gauge.
	InFlight int64 `json:"in_flight"`
	// BatchSizeHist buckets runtime batch sizes (keys "1", "2", "3-4",
	// ... "65+"); zero buckets are omitted.
	BatchSizeHist map[string]int64 `json:"batch_size_hist"`
	// LatencySamples is how many latencies the ring currently holds.
	LatencySamples int `json:"latency_samples"`
	// P50Ms and P99Ms are latency percentiles over the ring, in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// QueueWaitP50Ms/P99Ms split out the time requests spend waiting for
	// their flush to start; ComputeP50Ms/P99Ms are the flush compute
	// durations. Together they attribute the end-to-end latency above.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	ComputeP50Ms   float64 `json:"compute_p50_ms"`
	ComputeP99Ms   float64 `json:"compute_p99_ms"`
	// MaxPipelineDepth is the deepest flush-slot occupancy observed at a
	// flush start — > 1 proves flush windows actually overlapped.
	MaxPipelineDepth int `json:"max_pipeline_depth"`
	// RetryHintMs is the current load-derived Retry-After suggestion
	// (unclamped; 0 until traffic has been observed).
	RetryHintMs float64 `json:"retry_hint_ms"`
}

// Snapshot returns a consistent copy of the counters and the latency
// percentiles over the ring buffers.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{BatchSizeHist: map[string]int64{}}
	}
	m.mu.Lock()
	s := Snapshot{
		Requests:         m.requests,
		Batches:          m.batches,
		CoalescedBatches: m.coalesced,
		MaxCoalesced:     m.maxCoal,
		Rejected:         m.rejected,
		TimedOut:         m.timedOut,
		InFlight:         m.inFlight,
		MaxPipelineDepth: m.maxPipeline,
		RetryHintMs:      (m.queueWaitEWMA + m.flushGapEWMA) / float64(time.Millisecond),
		BatchSizeHist:    make(map[string]int64, histBuckets),
	}
	for i, n := range m.hist {
		if n > 0 {
			s.BatchSizeHist[bucketLabels[i]] = n
		}
	}
	lats, n := copyRing(&m.ring, m.ringN)
	queue, _ := copyRing(&m.queueRing, m.queueN)
	compute, _ := copyRing(&m.computeRing, m.computeN)
	m.mu.Unlock()

	s.LatencySamples = n
	s.P50Ms, s.P99Ms = ringPercentiles(lats)
	s.QueueWaitP50Ms, s.QueueWaitP99Ms = ringPercentiles(queue)
	s.ComputeP50Ms, s.ComputeP99Ms = ringPercentiles(compute)
	return s
}

// copyRing snapshots the filled part of a percentile ring. Caller holds
// m.mu.
func copyRing(ring *[latencyRing]time.Duration, written int) ([]time.Duration, int) {
	n := written
	if n > latencyRing {
		n = latencyRing
	}
	out := make([]time.Duration, n)
	copy(out, ring[:n])
	return out, n
}

// ringPercentiles sorts a ring snapshot and returns its p50/p99 in
// milliseconds (zeros when empty).
func ringPercentiles(lats []time.Duration) (p50, p99 float64) {
	n := len(lats)
	if n == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 = float64(lats[percentileIndex(n, 50)]) / float64(time.Millisecond)
	p99 = float64(lats[percentileIndex(n, 99)]) / float64(time.Millisecond)
	return p50, p99
}

// percentileIndex returns the nearest-rank index for percentile p over n
// sorted samples.
func percentileIndex(n, p int) int {
	i := (n*p + 99) / 100 // ceil(n*p/100)
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}
	return i - 1
}
