package registry

// Admission-control coverage: the gate sheds instead of queueing, the
// per-request deadline fires before queue-blocked requests hang forever,
// and admitted requests remain bit-identical to unbatched inference.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// newAdmissionRegistry loads one posit8 model into a registry built with
// the given extra options and returns a pinned handle (released in
// cleanup).
func newAdmissionRegistry(t *testing.T, opts ...Option) *Handle {
	t.Helper()
	r := New(append([]Option{WithRuntimeOptions(engine.WithWorkers(2))}, opts...)...)
	t.Cleanup(func() { r.Close() })
	if err := r.Load("m", posit8Model(31)); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Release)
	return h
}

// TestAdmissionRejectsAtCap: with max in-flight 1 and a request parked
// in the (never-flushing) batcher, a second request is shed immediately
// with ErrOverloaded, and the rejected counter and in-flight gauge
// record it.
func TestAdmissionRejectsAtCap(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithMaxInFlight(1),
		WithBatchWindow(time.Hour), // the parked request never flushes on its own
		WithMaxBatch(1000),
	)
	if h.MaxInFlight() != 1 {
		t.Fatalf("MaxInFlight = %d, want 1", h.MaxInFlight())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan error, 1)
	go func() {
		_, err := h.Infer(ctx, testInput(0))
		parked <- err
	}()
	// Wait for the parked request to occupy the slot (it joins the
	// batcher's pending queue while holding it).
	deadline := time.Now().Add(5 * time.Second)
	for h.Metrics().Snapshot().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := h.Infer(context.Background(), testInput(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap request: %v, want ErrOverloaded", err)
	}
	snap := h.Metrics().Snapshot()
	if snap.Rejected != 1 || snap.InFlight != 1 {
		t.Fatalf("after shed: rejected=%d in_flight=%d, want 1/1", snap.Rejected, snap.InFlight)
	}

	// Free the slot; the gauge drains and admission reopens.
	cancel()
	if err := <-parked; !errors.Is(err, context.Canceled) {
		t.Fatalf("parked request: %v, want context.Canceled", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for h.Metrics().Snapshot().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight gauge never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionBurstBitIdentity fires a burst far past the cap: some
// requests shed with ErrOverloaded, every admitted one returns logits
// bit-identical to unbatched single-session inference, and the
// accounting (admitted + rejected = fired) balances.
func TestAdmissionBurstBitIdentity(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithMaxInFlight(2),
		WithBatchWindow(10*time.Millisecond),
		WithMaxBatch(8),
	)
	ref := h.Model().NewInferer()

	const n = 32
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		rejected int
		served   int
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			out, err := h.Infer(context.Background(), testInput(i))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrOverloaded):
				rejected++
			case err != nil:
				t.Errorf("request %d: %v", i, err)
			default:
				served++
				want := ref.Infer(testInput(i))
				for j := range want {
					if out[j] != want[j] {
						t.Errorf("request %d logit %d: admitted %v != unbatched %v",
							i, j, out[j], want[j])
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if served == 0 {
		t.Fatal("no request was admitted")
	}
	if served+rejected != n {
		t.Fatalf("served %d + rejected %d != fired %d", served, rejected, n)
	}
	snap := h.Metrics().Snapshot()
	if snap.Rejected != int64(rejected) {
		t.Fatalf("metrics rejected = %d, observed %d", snap.Rejected, rejected)
	}
	if snap.Requests != int64(served) {
		t.Fatalf("metrics requests = %d, served %d", snap.Requests, served)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after burst drained", snap.InFlight)
	}
}

// TestRequestTimeoutFires: a request stuck behind a never-flushing
// window fails with ErrRequestTimeout at the configured deadline instead
// of hanging forever, and the timed-out counter records it.
func TestRequestTimeoutFires(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithRequestTimeout(30*time.Millisecond),
		WithBatchWindow(time.Hour),
		WithMaxBatch(1000),
	)
	if h.RequestTimeout() != 30*time.Millisecond {
		t.Fatalf("RequestTimeout = %v", h.RequestTimeout())
	}
	start := time.Now()
	_, err := h.Infer(context.Background(), testInput(2))
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("stuck request: %v, want ErrRequestTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	snap := h.Metrics().Snapshot()
	if snap.TimedOut != 1 {
		t.Fatalf("timed_out = %d, want 1", snap.TimedOut)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in_flight = %d after timeout released the slot", snap.InFlight)
	}
}

// TestRequestTimeoutKeepsCallerCancellation: a caller whose own context
// is cancelled gets context.Canceled back, not ErrRequestTimeout, even
// with a registry deadline configured.
func TestRequestTimeoutKeepsCallerCancellation(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithRequestTimeout(time.Hour),
		WithBatchWindow(time.Hour),
		WithMaxBatch(1000),
	)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := h.Infer(ctx, testInput(3))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled caller got %v, want context.Canceled", err)
		}
		if snap := h.Metrics().Snapshot(); snap.TimedOut != 0 {
			t.Fatalf("cancellation miscounted as timeout: %+v", snap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller stuck")
	}
}

// TestAdmissionUnlimitedByDefault: without WithMaxInFlight the gate
// admits everything and only the gauge moves.
func TestAdmissionUnlimitedByDefault(t *testing.T) {
	h := newAdmissionRegistry(t, WithBatchWindow(time.Millisecond), WithMaxBatch(4))
	if h.MaxInFlight() != 0 {
		t.Fatalf("MaxInFlight = %d, want 0 (unlimited)", h.MaxInFlight())
	}
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if _, err := h.Infer(context.Background(), testInput(i)); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	snap := h.Metrics().Snapshot()
	if snap.Rejected != 0 || snap.TimedOut != 0 || snap.InFlight != 0 {
		t.Fatalf("unlimited gate moved counters: %+v", snap)
	}
	if snap.Requests != n {
		t.Fatalf("requests = %d, want %d", snap.Requests, n)
	}
}

// TestHandleInferBatchAdmission: an explicit batch counts as one
// in-flight request and is shed whole at the cap.
func TestHandleInferBatchAdmission(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithMaxInFlight(1),
		WithBatchWindow(time.Hour),
		WithMaxBatch(1000),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan error, 1)
	go func() {
		_, err := h.Infer(ctx, testInput(0))
		parked <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for h.Metrics().Snapshot().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	xs := [][]float64{testInput(1), testInput(2)}
	if _, err := h.InferBatch(context.Background(), xs); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap batch: %v, want ErrOverloaded", err)
	}
	cancel()
	<-parked

	// With the slot free the same batch is admitted and served.
	deadline = time.Now().Add(5 * time.Second)
	for h.Metrics().Snapshot().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never freed")
		}
		time.Sleep(time.Millisecond)
	}
	out, err := h.InferBatch(context.Background(), xs)
	if err != nil || len(out) != 2 {
		t.Fatalf("admitted batch: %v, %v", out, err)
	}
}
