package registry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// newTestBatcher builds a shared-output runtime (as the registry does)
// plus a reference runtime-free inferer for ground truth.
func newTestBatcher(t *testing.T, window time.Duration, maxBatch int) (*Batcher, *Metrics) {
	t.Helper()
	model := posit8Model(11)
	rt, err := engine.NewRuntime(model, engine.WithWorkers(2), engine.WithSharedOutputs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	m := &Metrics{}
	return NewBatcher(rt, window, maxBatch, m), m
}

// TestBatcherBitIdentity is the tentpole exactness contract: results
// demultiplexed from coalesced micro-batches are bit-identical to
// per-request InferBatch calls on a fresh runtime.
func TestBatcherBitIdentity(t *testing.T) {
	b, m := newTestBatcher(t, 200*time.Millisecond, 8)

	// Ground truth: the same model through unbatched single-sample calls.
	ref := b.Runtime().Model().NewInferer()
	const n = 32
	want := make([][]float64, n)
	for i := range want {
		want[i] = ref.Infer(testInput(i))
	}

	got := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = b.Infer(context.Background(), testInput(i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d logits, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d logit %d: batched %v != unbatched %v",
					i, j, got[i][j], want[i][j])
			}
		}
	}

	// 32 concurrent requests with maxBatch 8 and a 200ms window must
	// coalesce: at least one flush carried more than one sample.
	snap := m.Snapshot()
	if snap.Requests != n {
		t.Fatalf("requests = %d, want %d", snap.Requests, n)
	}
	if snap.MaxCoalesced <= 1 {
		t.Fatalf("no coalescing happened: %+v", snap)
	}
	if snap.MaxCoalesced > 8 {
		t.Fatalf("coalesced flush of %d exceeds maxBatch 8", snap.MaxCoalesced)
	}
}

// TestBatcherExplicitBatchMatches: the direct batch path through the
// batcher (serialised + copied out of the shared runtime buffer) is also
// bit-identical, and two interleaved batches never corrupt each other.
func TestBatcherExplicitBatchMatches(t *testing.T) {
	b, _ := newTestBatcher(t, time.Millisecond, 8)
	ref := b.Runtime().Model().NewInferer()

	const n = 16
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = testInput(i + 100)
	}
	var wg sync.WaitGroup
	results := make([][][]float64, 4)
	wg.Add(len(results))
	for g := range results {
		go func(g int) {
			defer wg.Done()
			out, err := b.InferBatch(context.Background(), xs)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for i, x := range xs {
		want := ref.Infer(x)
		for g, out := range results {
			for j := range want {
				if out[i][j] != want[j] {
					t.Fatalf("goroutine %d sample %d logit %d: %v != %v",
						g, i, j, out[i][j], want[j])
				}
			}
		}
	}
}

// TestBatcherUnsharedRuntime: over an ordinary (allocating) runtime the
// batcher skips the flush serialisation and copy, and results are still
// bit-identical.
func TestBatcherUnsharedRuntime(t *testing.T) {
	model := posit8Model(12)
	rt, err := engine.NewRuntime(model, engine.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	b := NewBatcher(rt, 50*time.Millisecond, 8, &Metrics{})
	ref := model.NewInferer()

	const n = 16
	got := make([][]float64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			out, err := b.Infer(context.Background(), testInput(i))
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = out
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		want := ref.Infer(testInput(i))
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("request %d logit %d: %v != %v", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestBatcherPassthrough(t *testing.T) {
	b, m := newTestBatcher(t, 0, 8) // window 0: no coalescing
	if b.Window() != 0 {
		t.Fatalf("Window = %v, want 0", b.Window())
	}
	out, err := b.Infer(context.Background(), testInput(1))
	if err != nil || len(out) != 3 {
		t.Fatalf("passthrough: %v, %v", out, err)
	}
	if snap := m.Snapshot(); snap.CoalescedBatches != 0 || snap.Batches != 1 {
		t.Fatalf("passthrough metrics: %+v", snap)
	}
}

func TestBatcherBadInput(t *testing.T) {
	b, _ := newTestBatcher(t, time.Millisecond, 8)
	if _, err := b.Infer(context.Background(), []float64{1, 2}); err == nil {
		t.Fatal("wrong-width input accepted")
	}
	if _, err := b.InferBatch(context.Background(), [][]float64{testInput(0), {1}}); err == nil {
		t.Fatal("wrong-width batch element accepted")
	}
}

// TestBatcherCallerCancellation: a caller whose context dies while its
// request waits in the pending queue returns promptly; batch-mates are
// unaffected.
func TestBatcherCallerCancellation(t *testing.T) {
	b, _ := newTestBatcher(t, time.Hour, 1000) // flush effectively never fires on its own
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Infer(ctx, testInput(0))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled caller got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller stuck")
	}
	b.Close() // flushes the abandoned call; must not hang or panic
}

// TestBatcherCancelledExcludedFromFlush: a caller that cancels while
// its call waits in the pending queue is dropped at flush time — the
// runtime batch carries only live calls, so abandoned requests neither
// consume EMAC compute nor skew the batch-size histogram.
func TestBatcherCancelledExcludedFromFlush(t *testing.T) {
	b, m := newTestBatcher(t, time.Hour, 3) // flush only when 3 calls pend

	// Park a call, then cancel it. The caller returns; its entry stays
	// in the pending queue until the next flush.
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() {
		_, err := b.Infer(ctx, testInput(0))
		parked <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("call never joined the pending queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-parked; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller: %v", err)
	}

	// Two live calls push pending to maxBatch 3 and trigger the flush.
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 1; i <= 2; i++ {
		go func(i int) {
			defer wg.Done()
			if _, err := b.Infer(context.Background(), testInput(i)); err != nil {
				t.Errorf("live call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	snap := m.Snapshot()
	if snap.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (cancelled call must not count)", snap.Requests)
	}
	if snap.Batches != 1 || snap.MaxCoalesced != 2 {
		t.Fatalf("flush shape: %+v, want one coalesced batch of 2", snap)
	}
	if snap.BatchSizeHist["2"] != 1 || snap.BatchSizeHist["3-4"] != 0 {
		t.Fatalf("histogram skewed by cancelled call: %v", snap.BatchSizeHist)
	}
}

// TestBatcherAllCancelledFlushSkipsRuntime: when every pending call was
// abandoned, the flush never reaches the runtime — no phantom batch is
// recorded (the ObserveFlush(0) bug) and Close does not hang.
func TestBatcherAllCancelledFlushSkipsRuntime(t *testing.T) {
	b, m := newTestBatcher(t, time.Hour, 1000)
	const n = 4
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, err := b.Infer(ctx, testInput(i))
			if !errors.Is(err, context.Canceled) {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		pend := len(b.pending)
		b.mu.Unlock()
		if pend == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls never joined the pending queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	b.Close() // flushes the all-cancelled queue
	snap := m.Snapshot()
	if snap.Batches != 0 || snap.Requests != 0 || len(snap.BatchSizeHist) != 0 {
		t.Fatalf("all-cancelled flush recorded a phantom batch: %+v", snap)
	}
}

// TestBatcherEmptyBatchRejected: a zero-sample explicit batch errors
// before it reaches the runtime.
func TestBatcherEmptyBatchRejected(t *testing.T) {
	b, m := newTestBatcher(t, time.Millisecond, 8)
	for _, xs := range [][][]float64{nil, {}} {
		if _, err := b.InferBatch(context.Background(), xs); err == nil {
			t.Fatalf("empty batch %v accepted", xs)
		}
	}
	if snap := m.Snapshot(); snap.Batches != 0 {
		t.Fatalf("empty batch reached the metrics: %+v", snap)
	}
}

// TestBatcherClose: pending calls are flushed (not dropped) on Close,
// and new work is rejected afterwards.
func TestBatcherClose(t *testing.T) {
	b, _ := newTestBatcher(t, time.Hour, 1000)
	ref := b.Runtime().Model().NewInferer()
	want := ref.Infer(testInput(3))

	done := make(chan []float64, 1)
	go func() {
		out, err := b.Infer(context.Background(), testInput(3))
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	// Wait for the call to join the pending queue before closing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("call never joined the pending queue")
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	select {
	case out := <-done:
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("flushed-on-close logit %d: %v != %v", j, out[j], want[j])
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not flushed by Close")
	}
	if _, err := b.Infer(context.Background(), testInput(4)); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("infer after close: %v", err)
	}
	if _, err := b.InferBatch(context.Background(), [][]float64{testInput(5)}); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("batch after close: %v", err)
	}
}

func TestMetricsHistogramAndPercentiles(t *testing.T) {
	m := &Metrics{}
	for _, size := range []int{1, 1, 2, 4, 7, 64, 200} {
		m.ObserveFlush(size, true)
	}
	for i := 1; i <= 100; i++ {
		m.ObserveLatency(time.Duration(i) * time.Millisecond)
	}
	s := m.Snapshot()
	if s.Requests != 1+1+2+4+7+64+200 || s.Batches != 7 || s.CoalescedBatches != 7 {
		t.Fatalf("counters: %+v", s)
	}
	wantHist := map[string]int64{"1": 2, "2": 1, "3-4": 1, "5-8": 1, "33-64": 1, "65+": 1}
	for k, v := range wantHist {
		if s.BatchSizeHist[k] != v {
			t.Fatalf("hist[%s] = %d, want %d (%v)", k, s.BatchSizeHist[k], v, s.BatchSizeHist)
		}
	}
	if s.MaxCoalesced != 200 {
		t.Fatalf("max coalesced = %d", s.MaxCoalesced)
	}
	if s.P50Ms != 50 || s.P99Ms != 99 {
		t.Fatalf("percentiles: p50=%v p99=%v", s.P50Ms, s.P99Ms)
	}
	// Size-0 flushes (and negative sizes) must not count: bucketFor(0)
	// would land in the "1" bucket and batches would over-count.
	m.ObserveFlush(0, true)
	m.ObserveFlush(-3, false)
	if s2 := m.Snapshot(); s2.Batches != s.Batches || s2.BatchSizeHist["1"] != s.BatchSizeHist["1"] {
		t.Fatalf("zero-size flush counted: %+v", s2)
	}

	var nilM *Metrics
	nilM.ObserveFlush(1, false) // nil metrics must be a no-op
	nilM.ObserveLatency(time.Second)
	nilM.ObserveAdmit()
	nilM.ObserveDone()
	nilM.ObserveRejected()
	nilM.ObserveTimeout()
	_ = nilM.Snapshot()
}
