package registry

// Per-model admission control. The micro-batcher and the runtime job
// queue both block producers when saturated, so without a gate a
// sustained burst makes every caller wait indefinitely — the opposite of
// what a latency-SLO serving plane wants (cf. Clipper and TF Serving,
// which treat bounded queues + load shedding as the prerequisite for
// batched inference SLOs). The gate in front of each entry's Batcher
// bounds concurrently admitted requests (WithMaxInFlight) and puts a
// deadline on each admitted one (WithRequestTimeout); requests beyond
// the bound are rejected immediately with ErrOverloaded, which the HTTP
// layer maps to 429 + Retry-After.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is returned when a model is at its in-flight admission
// cap: the request was shed, not queued. Clients should back off and
// retry.
var ErrOverloaded = errors.New("registry: model overloaded")

// ErrRequestTimeout is returned when an admitted request exceeds the
// registry's per-request deadline before its inference completes.
var ErrRequestTimeout = errors.New("registry: request timed out")

// admit claims one in-flight slot without blocking. On success it
// returns the release func (call exactly once, after the request
// finishes); at the cap it records the rejection and fails with
// ErrOverloaded.
func (e *entry) admit() (func(), error) {
	if e.slots == nil {
		e.metrics.ObserveAdmit()
		return e.metrics.ObserveDone, nil
	}
	select {
	case e.slots <- struct{}{}:
		e.metrics.ObserveAdmit()
		return func() {
			// Gauge down before the slot frees: the next admission's
			// ObserveAdmit must not race the gauge above the cap.
			e.metrics.ObserveDone()
			<-e.slots
		}, nil
	default:
		e.metrics.ObserveRejected()
		return nil, fmt.Errorf("%w: %q at max in-flight %d", ErrOverloaded, e.name, cap(e.slots))
	}
}

// withDeadline applies the per-request timeout, when one is configured.
func (e *entry) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, e.timeout)
}

// mapErr rewrites a deadline expiry caused by the registry's own
// request timeout into ErrRequestTimeout (and counts it). A caller whose
// own context was cancelled or expired keeps its error untouched.
func (e *entry) mapErr(parent context.Context, err error) error {
	if err == nil || e.timeout <= 0 {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		e.metrics.ObserveTimeout()
		return fmt.Errorf("%w: %q after %s", ErrRequestTimeout, e.name, e.timeout)
	}
	return err
}

// Infer is the admission-controlled single-sample entry point: it claims
// an in-flight slot (failing fast with ErrOverloaded at the cap),
// applies the per-request deadline, and runs the sample through the
// model's micro-batcher. This is what the HTTP layer calls; Batcher()
// remains available for callers that own their backpressure.
func (h *Handle) Infer(ctx context.Context, x []float64) ([]float64, error) {
	release, err := h.e.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	rctx, cancel := h.e.withDeadline(ctx)
	defer cancel()
	out, err := h.e.batcher.Infer(rctx, x)
	if err != nil {
		return nil, h.e.mapErr(ctx, err)
	}
	return out, nil
}

// InferBatch is the admission-controlled explicit-batch entry point: one
// client batch counts as one in-flight request, whatever its size.
func (h *Handle) InferBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	release, err := h.e.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	rctx, cancel := h.e.withDeadline(ctx)
	defer cancel()
	out, err := h.e.batcher.InferBatch(rctx, xs)
	if err != nil {
		return nil, h.e.mapErr(ctx, err)
	}
	return out, nil
}

// MaxInFlight returns the model's admission cap (0 = unlimited).
func (h *Handle) MaxInFlight() int { return cap(h.e.slots) }

// RequestTimeout returns the model's per-request deadline (0 = none).
func (h *Handle) RequestTimeout() time.Duration { return h.e.timeout }
