package registry

// Per-model admission control. The micro-batcher and the runtime job
// queue both block producers when saturated, so without a gate a
// sustained burst makes every caller wait indefinitely — the opposite of
// what a latency-SLO serving plane wants (cf. Clipper and TF Serving,
// which treat bounded queues + load shedding as the prerequisite for
// batched inference SLOs). The gate in front of each entry's Batcher
// bounds concurrently admitted requests (WithMaxInFlight) and puts a
// deadline on each admitted one (WithRequestTimeout); requests beyond
// the bound are rejected immediately with ErrOverloaded, which the HTTP
// layer maps to 429 + Retry-After.
//
// The gate is weighted: under WithCostAwareAdmission an explicit client
// batch consumes len(xs) capacity units instead of 1, so a 256-sample
// batch and 256 single requests cost the same and mixed traffic sheds
// proportionally to the compute it asks for, not the connection count.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded is returned when a model is at its in-flight admission
// cap: the request was shed, not queued. Clients should back off and
// retry.
var ErrOverloaded = errors.New("registry: model overloaded")

// ErrRequestTimeout is returned when an admitted request exceeds the
// registry's per-request deadline before its inference completes.
var ErrRequestTimeout = errors.New("registry: request timed out")

// gate is a weighted non-blocking semaphore: a request claims n units or
// is rejected outright (shed, never queued).
type gate struct {
	mu       sync.Mutex
	capacity int
	used     int
}

func newGate(capacity int) *gate { return &gate{capacity: capacity} }

// tryAcquire claims n units if they fit under the cap.
func (g *gate) tryAcquire(n int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.used+n > g.capacity {
		return false
	}
	g.used += n
	return true
}

// release returns n units. Must mirror a successful tryAcquire(n).
func (g *gate) release(n int) {
	g.mu.Lock()
	g.used -= n
	g.mu.Unlock()
}

// Cap returns the gate's total capacity.
func (g *gate) Cap() int {
	if g == nil {
		return 0
	}
	return g.capacity
}

// admit claims cost admission units without blocking. On success it
// returns the release func (call exactly once, after the request
// finishes); at the cap it records the rejection and fails with
// ErrOverloaded. A cost larger than the whole gate is clamped to the
// capacity — an oversized batch can still run on an idle model (claiming
// the entire gate while it does) instead of being unservable at any
// load.
func (e *entry) admit(name string, cost int) (func(), error) {
	if e.gate == nil {
		e.metrics.ObserveAdmit()
		return e.metrics.ObserveDone, nil
	}
	if cost < 1 {
		cost = 1
	}
	if cost > e.gate.Cap() {
		cost = e.gate.Cap()
	}
	if !e.gate.tryAcquire(cost) {
		e.metrics.ObserveRejected()
		return nil, fmt.Errorf("%w: %q at max in-flight %d", ErrOverloaded, name, e.gate.Cap())
	}
	e.metrics.ObserveAdmit()
	claimed := cost
	return func() {
		// Gauge down before the units free: the next admission's
		// ObserveAdmit must not race the gauge above the cap.
		e.metrics.ObserveDone()
		e.gate.release(claimed)
	}, nil
}

// withDeadline applies the per-request timeout, when one is configured.
func (e *entry) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, e.timeout)
}

// mapErr rewrites a deadline expiry caused by the registry's own
// request timeout into ErrRequestTimeout (and counts it). A caller whose
// own context was cancelled or expired keeps its error untouched.
func (e *entry) mapErr(name string, parent context.Context, err error) error {
	if err == nil || e.timeout <= 0 {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		e.metrics.ObserveTimeout()
		return fmt.Errorf("%w: %q after %s", ErrRequestTimeout, name, e.timeout)
	}
	return err
}

// Infer is the admission-controlled single-sample entry point: it claims
// one admission unit (failing fast with ErrOverloaded at the cap),
// applies the per-request deadline, and runs the sample through the
// model's micro-batcher. This is what the HTTP layer calls; Batcher()
// remains available for callers that own their backpressure.
func (h *Handle) Infer(ctx context.Context, x []float64) ([]float64, error) {
	release, err := h.e.admit(h.name, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	rctx, cancel := h.e.withDeadline(ctx)
	defer cancel()
	out, err := h.e.batcher.Infer(rctx, x)
	if err != nil {
		return nil, h.e.mapErr(h.name, ctx, err)
	}
	return out, nil
}

// InferBatch is the admission-controlled explicit-batch entry point. By
// default one client batch counts as one in-flight request whatever its
// size; under WithCostAwareAdmission it claims len(xs) admission units,
// so batch traffic competes for capacity in proportion to the samples it
// carries.
func (h *Handle) InferBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	cost := 1
	if h.e.costAware {
		cost = len(xs)
	}
	release, err := h.e.admit(h.name, cost)
	if err != nil {
		return nil, err
	}
	defer release()
	rctx, cancel := h.e.withDeadline(ctx)
	defer cancel()
	out, err := h.e.batcher.InferBatch(rctx, xs)
	if err != nil {
		return nil, h.e.mapErr(h.name, ctx, err)
	}
	return out, nil
}

// MaxInFlight returns the model's admission capacity in units (0 =
// unlimited): concurrent requests by default, concurrent samples under
// cost-aware admission.
func (h *Handle) MaxInFlight() int { return h.e.gate.Cap() }

// CostAware reports whether explicit batches are admitted by sample
// count.
func (h *Handle) CostAware() bool { return h.e.costAware }

// RequestTimeout returns the model's per-request deadline (0 = none).
func (h *Handle) RequestTimeout() time.Duration { return h.e.timeout }
