package registry

// Tests for the content-addressed storage plane behind the registry:
// every load lands the canonical binary artifact in the store, same-hash
// loads under different names dedup, and binary artifacts load
// transparently next to JSON ones.

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/engine"
)

func TestLoadStoresCanonicalArtifact(t *testing.T) {
	model := posit8Model(11)
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.Load("m", model); err != nil {
		t.Fatal(err)
	}
	stat, err := r.Stat("m")
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, wantHash, err := artifact.Canonical(model)
	if err != nil {
		t.Fatal(err)
	}
	if stat.ContentHash != wantHash.String() {
		t.Fatalf("content hash %s, want %s", stat.ContentHash, wantHash)
	}
	if stat.ArtifactBytes != int64(len(wantBytes)) {
		t.Fatalf("artifact bytes %d, want %d", stat.ArtifactBytes, len(wantBytes))
	}
	got, err := r.Store().Get(wantHash)
	if err != nil {
		t.Fatalf("canonical bytes not in store: %v", err)
	}
	if string(got) != string(wantBytes) {
		t.Fatal("stored bytes are not the canonical encoding")
	}
}

// TestSameHashLoadsDedup: the acceptance contract — loading the same
// artifact bytes under two names stores them once.
func TestSameHashLoadsDedup(t *testing.T) {
	model := posit8Model(12)
	data, err := json.Marshal(model.(json.Marshaler))
	if err != nil {
		t.Fatal(err)
	}
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.LoadBytes("first", data); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadBytes("second", data); err != nil {
		t.Fatal(err)
	}
	st := r.StoreStats()
	if st.Objects != 1 {
		t.Fatalf("two names over one artifact stored %d objects", st.Objects)
	}
	if st.PutDedups != 1 {
		t.Fatalf("put_dedups = %d, want 1", st.PutDedups)
	}
	a, _ := r.Stat("first")
	b, _ := r.Stat("second")
	if a.ContentHash != b.ContentHash {
		t.Fatalf("same artifact, different hashes: %s vs %s", a.ContentHash, b.ContentHash)
	}
	// A genuinely different model adds a second object.
	if err := r.Load("third", posit8Model(13)); err != nil {
		t.Fatal(err)
	}
	if st := r.StoreStats(); st.Objects != 2 {
		t.Fatalf("distinct model did not add an object: %d", st.Objects)
	}
}

// TestLoadPathBinaryAndJSON: LoadPath sniffs the format; both forms of
// one model serve bit-identical logits and share one content hash.
func TestLoadPathBinaryAndJSON(t *testing.T) {
	model := posit8Model(14)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	binPath := filepath.Join(dir, "m.bin")
	if err := model.Save(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := artifact.Save(model, binPath); err != nil {
		t.Fatal(err)
	}

	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.LoadPath("js", jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadPath("bin", binPath); err != nil {
		t.Fatal(err)
	}
	js, _ := r.Stat("js")
	bin, _ := r.Stat("bin")
	if js.ContentHash != bin.ContentHash {
		t.Fatalf("JSON and binary forms hash differently: %s vs %s", js.ContentHash, bin.ContentHash)
	}
	if st := r.StoreStats(); st.Objects != 1 || st.PutDedups != 1 {
		t.Fatalf("cross-format dedup failed: %+v", st)
	}
	for _, name := range []string{"js", "bin"} {
		h, err := r.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		x := testInput(3)
		got, err := h.Batcher().Infer(context.Background(), x)
		h.Release()
		if err != nil {
			t.Fatal(err)
		}
		want := model.NewInferer().Infer(x)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: logit %d diverges", name, j)
			}
		}
	}
}

// TestWithDurableStore: a union(mem, disk) store persists artifacts
// across registry restarts — the warm-load path.
func TestWithDurableStore(t *testing.T) {
	root := t.TempDir()
	disk, err := store.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	model := posit8Model(15)
	r1 := New(WithRuntimeOptions(engine.WithWorkers(1)), WithStore(store.NewUnion(store.NewMem(), disk)))
	if err := r1.Load("m", model); err != nil {
		t.Fatal(err)
	}
	stat, _ := r1.Stat("m")
	_ = r1.Close()

	// A fresh registry over the same disk root sees the artifact.
	disk2, err := store.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(WithRuntimeOptions(engine.WithWorkers(1)), WithStore(store.NewUnion(store.NewMem(), disk2)))
	defer r2.Close()
	h, err := artifact.ParseHash(stat.ContentHash)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r2.Store().Get(h)
	if err != nil {
		t.Fatalf("artifact did not survive the restart: %v", err)
	}
	if err := r2.LoadBytes("m", data); err != nil {
		t.Fatal(err)
	}
	if st, _ := r2.Stat("m"); st.ContentHash != stat.ContentHash {
		t.Fatal("reloaded artifact changed identity")
	}
	if st := r2.StoreStats(); st.PutDedups != 1 {
		t.Fatalf("reload from store did not dedup: %+v", st)
	}
}
