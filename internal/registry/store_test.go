package registry

// Tests for the content-addressed storage plane behind the registry:
// every load lands the canonical binary artifact in the store, same-hash
// loads under different names dedup, and binary artifacts load
// transparently next to JSON ones.

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/engine"
)

func TestLoadStoresCanonicalArtifact(t *testing.T) {
	model := posit8Model(11)
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.Load("m", model); err != nil {
		t.Fatal(err)
	}
	stat, err := r.Stat("m")
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, wantHash, err := artifact.Canonical(model)
	if err != nil {
		t.Fatal(err)
	}
	if stat.ContentHash != wantHash.String() {
		t.Fatalf("content hash %s, want %s", stat.ContentHash, wantHash)
	}
	if stat.ArtifactBytes != int64(len(wantBytes)) {
		t.Fatalf("artifact bytes %d, want %d", stat.ArtifactBytes, len(wantBytes))
	}
	got, err := r.Store().Get(wantHash)
	if err != nil {
		t.Fatalf("canonical bytes not in store: %v", err)
	}
	if string(got) != string(wantBytes) {
		t.Fatal("stored bytes are not the canonical encoding")
	}
}

// TestSameHashLoadsDedup: the acceptance contract — loading the same
// artifact bytes under two names stores them once.
func TestSameHashLoadsDedup(t *testing.T) {
	model := posit8Model(12)
	data, err := json.Marshal(model.(json.Marshaler))
	if err != nil {
		t.Fatal(err)
	}
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.LoadBytes("first", data); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadBytes("second", data); err != nil {
		t.Fatal(err)
	}
	st := r.StoreStats()
	if st.Objects != 1 {
		t.Fatalf("two names over one artifact stored %d objects", st.Objects)
	}
	if st.PutDedups != 1 {
		t.Fatalf("put_dedups = %d, want 1", st.PutDedups)
	}
	a, _ := r.Stat("first")
	b, _ := r.Stat("second")
	if a.ContentHash != b.ContentHash {
		t.Fatalf("same artifact, different hashes: %s vs %s", a.ContentHash, b.ContentHash)
	}
	// A genuinely different model adds a second object.
	if err := r.Load("third", posit8Model(13)); err != nil {
		t.Fatal(err)
	}
	if st := r.StoreStats(); st.Objects != 2 {
		t.Fatalf("distinct model did not add an object: %d", st.Objects)
	}
}

// TestLoadPathBinaryAndJSON: LoadPath sniffs the format; both forms of
// one model serve bit-identical logits and share one content hash.
func TestLoadPathBinaryAndJSON(t *testing.T) {
	model := posit8Model(14)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	binPath := filepath.Join(dir, "m.bin")
	if err := model.Save(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := artifact.Save(model, binPath); err != nil {
		t.Fatal(err)
	}

	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.LoadPath("js", jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadPath("bin", binPath); err != nil {
		t.Fatal(err)
	}
	js, _ := r.Stat("js")
	bin, _ := r.Stat("bin")
	if js.ContentHash != bin.ContentHash {
		t.Fatalf("JSON and binary forms hash differently: %s vs %s", js.ContentHash, bin.ContentHash)
	}
	if st := r.StoreStats(); st.Objects != 1 || st.PutDedups != 1 {
		t.Fatalf("cross-format dedup failed: %+v", st)
	}
	for _, name := range []string{"js", "bin"} {
		h, err := r.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		x := testInput(3)
		got, err := h.Batcher().Infer(context.Background(), x)
		h.Release()
		if err != nil {
			t.Fatal(err)
		}
		want := model.NewInferer().Infer(x)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: logit %d diverges", name, j)
			}
		}
	}
}

// TestWithDurableStore: a union(mem, disk) store persists artifacts
// across registry restarts — the warm-load path.
func TestWithDurableStore(t *testing.T) {
	root := t.TempDir()
	disk, err := store.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	model := posit8Model(15)
	r1 := New(WithRuntimeOptions(engine.WithWorkers(1)), WithStore(store.NewUnion(store.NewMem(), disk)))
	if err := r1.Load("m", model); err != nil {
		t.Fatal(err)
	}
	stat, _ := r1.Stat("m")
	_ = r1.Close()

	// A fresh registry over the same disk root sees the artifact.
	disk2, err := store.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(WithRuntimeOptions(engine.WithWorkers(1)), WithStore(store.NewUnion(store.NewMem(), disk2)))
	defer r2.Close()
	h, err := artifact.ParseHash(stat.ContentHash)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r2.Store().Get(h)
	if err != nil {
		t.Fatalf("artifact did not survive the restart: %v", err)
	}
	if err := r2.LoadBytes("m", data); err != nil {
		t.Fatal(err)
	}
	if st, _ := r2.Stat("m"); st.ContentHash != stat.ContentHash {
		t.Fatal("reloaded artifact changed identity")
	}
	if st := r2.StoreStats(); st.PutDedups != 1 {
		t.Fatalf("reload from store did not dedup: %+v", st)
	}
}

// TestLoadHash: a model instantiates from its content address alone —
// the store-first payoff — and a live same-hash entry aliases instead
// of building a second runtime.
func TestLoadHash(t *testing.T) {
	model := posit8Model(16)
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.Load("origin", model); err != nil {
		t.Fatal(err)
	}
	stat, _ := r.Stat("origin")
	h, err := artifact.ParseHash(stat.ContentHash)
	if err != nil {
		t.Fatal(err)
	}

	if err := r.LoadHash("by-hash", h); err != nil {
		t.Fatal(err)
	}
	hd, err := r.Acquire("by-hash")
	if err != nil {
		t.Fatal(err)
	}
	x := testInput(4)
	got, err := hd.Batcher().Infer(context.Background(), x)
	hd.Release()
	if err != nil {
		t.Fatal(err)
	}
	want := model.NewInferer().Infer(x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("logit %d diverges: %v != %v", j, got[j], want[j])
		}
	}
	// Same content hash → one shared entry, two names.
	if st, _ := r.Stat("by-hash"); st.Aliases != 2 || st.ContentHash != stat.ContentHash {
		t.Fatalf("alias stat: %+v", st)
	}

	// Errors: a hash the store has never seen, and the zero hash.
	if err := r.LoadHash("missing", artifact.Sum([]byte("no such artifact"))); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("LoadHash of absent artifact: %v", err)
	}
	if err := r.LoadHash("zero", artifact.Hash{}); err == nil {
		t.Fatal("LoadHash accepted the zero hash")
	}
	if err := r.LoadHash("origin", h); !errors.Is(err, ErrExists) {
		t.Fatalf("LoadHash over a taken name: %v", err)
	}
}

// TestAliasLifecycle: two names over one artifact share a runtime;
// unloading one leaves the other serving, unloading the last drains.
func TestAliasLifecycle(t *testing.T) {
	model := posit8Model(17)
	data, err := json.Marshal(model.(json.Marshaler))
	if err != nil {
		t.Fatal(err)
	}
	r := New(WithRuntimeOptions(engine.WithWorkers(1)))
	defer r.Close()
	if err := r.LoadBytes("a", data); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadBytes("b", data); err != nil {
		t.Fatal(err)
	}
	ha, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	if ha.Runtime() != hb.Runtime() {
		t.Fatal("same content hash did not share a runtime")
	}
	if ha.Name() != "a" || hb.Name() != "b" {
		t.Fatalf("handle names: %q, %q", ha.Name(), hb.Name())
	}
	ha.Release()
	hb.Release()

	// Unloading one alias must not drain the shared runtime.
	if err := r.Unload("a"); err != nil {
		t.Fatal(err)
	}
	hb2, err := r.Acquire("b")
	if err != nil {
		t.Fatalf("surviving alias gone: %v", err)
	}
	if _, err := hb2.Batcher().Infer(context.Background(), testInput(5)); err != nil {
		t.Fatalf("infer after sibling unload: %v", err)
	}
	rt := hb2.Runtime()
	hb2.Release()

	// The last name drains and closes the runtime.
	if err := r.Unload("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.InferBatch(context.Background(), [][]float64{testInput(6)}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("runtime after last unload: %v, want ErrClosed", err)
	}
}

// TestUnloadThenGCFreesDiskBytes: the PR-8 blob-leak regression — after
// the last name over an artifact unloads, a GC sweep reclaims its disk
// bytes.
func TestUnloadThenGCFreesDiskBytes(t *testing.T) {
	disk, err := store.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := New(WithRuntimeOptions(engine.WithWorkers(1)), WithStore(store.NewUnion(store.NewMem(), disk)))
	defer r.Close()
	if err := r.Load("m", posit8Model(18)); err != nil {
		t.Fatal(err)
	}
	stat, _ := r.Stat("m")
	h, err := artifact.ParseHash(stat.ContentHash)
	if err != nil {
		t.Fatal(err)
	}
	before := disk.Stats()
	if before.Objects != 1 || before.Bytes != stat.ArtifactBytes {
		t.Fatalf("disk before GC: %+v", before)
	}

	// While the name is loaded, GC must not touch the blob.
	if removed, _, err := r.GC(); err != nil || removed != 0 {
		t.Fatalf("GC with model loaded: removed %d, %v", removed, err)
	}
	if ok, _ := disk.Has(h); !ok {
		t.Fatal("GC swept a loaded model's artifact")
	}

	if err := r.Unload("m"); err != nil {
		t.Fatal(err)
	}
	removed, freed, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != stat.ArtifactBytes {
		t.Fatalf("GC after unload: removed %d, freed %d (want 1, %d)", removed, freed, stat.ArtifactBytes)
	}
	if ok, _ := disk.Has(h); ok {
		t.Fatal("unreferenced blob survived GC on disk")
	}
	after := disk.Stats()
	if after.Objects != 0 || after.Bytes != 0 {
		t.Fatalf("disk after GC: %+v", after)
	}
	if after.GCRuns == 0 || after.GCFreedBytes != stat.ArtifactBytes {
		t.Fatalf("disk GC counters: %+v", after)
	}
}

// TestGCNeverSweepsPinnedConcurrent is the acceptance contract under
// -race: GC sweeps run concurrently with load/unload churn must never
// remove a blob that a loaded (or in-flight-loading) model references.
func TestGCNeverSweepsPinnedConcurrent(t *testing.T) {
	r := New(WithRuntimeOptions(engine.WithWorkers(1)), WithBatchWindow(0))
	defer r.Close()

	const goroutines = 4
	const iters = 25
	stop := make(chan struct{})
	var sweeper sync.WaitGroup
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := r.GC(); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()

	var churn sync.WaitGroup
	churn.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer churn.Done()
			model := posit8Model(uint64(100 + g))
			for i := 0; i < iters; i++ {
				switch err := r.Load("gc-churn", model); {
				case err == nil, errors.Is(err, ErrExists):
				default:
					t.Errorf("g%d load: %v", g, err)
					return
				}
				h, err := r.Acquire("gc-churn")
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // another goroutine unloaded first
					}
					t.Errorf("g%d acquire: %v", g, err)
					return
				}
				// The blob behind a live handle must be fetchable: GC has
				// not swept it.
				if ch := h.ContentHash(); ch != (artifact.Hash{}) {
					if _, err := r.Store().Get(ch); err != nil {
						t.Errorf("g%d: loaded model's blob unreadable: %v", g, err)
					}
				}
				h.Release()
				if err := r.Unload("gc-churn"); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("g%d unload: %v", g, err)
					return
				}
			}
		}(g)
	}
	churn.Wait()
	close(stop)
	sweeper.Wait()
}
