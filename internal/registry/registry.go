// Package registry is the multi-model serving layer between the engine
// Runtime and the positrond HTTP front-end. A Registry owns loaded
// (Model, Runtime, Batcher, Metrics) entries keyed by artifact content
// hash, with a name table binding serving names to entries — two names
// over the same bytes share one runtime. Lifecycle is
// reference-counted: models load from an artifact path, raw uploaded
// bytes, or a bare store hash; requests acquire a handle for the
// duration of one inference; and unload is graceful — the name leaves
// the table immediately (new acquires fail), then the runtime closes
// via the existing Runtime.Close drain semantics once the last binding
// is gone and the last in-flight handle releases.
//
// The content-addressed store is the source of truth for model bytes:
// every load lands canonical bytes in the store first and decodes the
// model from store-owned bytes, so a model is exactly its artifact.
// Registry.GC sweeps blobs no live entry or in-flight load pins.
//
// The paper's premise — precision-adaptable EMACs make low-precision
// inference cheap enough to deploy widely — lands here as many small
// quantised models (different formats, different datasets) served side
// by side from one process, each behind its own worker pool and
// micro-batcher.
package registry

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/core"
	"repro/internal/engine"
)

// ErrNotFound is returned when a model name is not in the registry.
var ErrNotFound = errors.New("registry: model not found")

// ErrExists is returned by Load when the name is already taken.
var ErrExists = errors.New("registry: model already loaded")

// ErrRegistryClosed is returned after Close.
var ErrRegistryClosed = errors.New("registry: closed")

// config collects the functional options applied to every model loaded
// into a Registry.
type config struct {
	rtOpts      []engine.Option
	window      time.Duration
	maxBatch    int
	maxInFlight int
	reqTimeout  time.Duration
	flushDepth  int
	costAware   bool
	store       store.Store
}

// Option configures a Registry at construction.
type Option func(*config)

// WithRuntimeOptions sets the engine options (worker count, queue depth,
// warm tables) applied to every per-model runtime the registry builds.
// When micro-batching is enabled, engine.WithSharedOutputs is implied:
// the batcher serialises runtime access and copies results out, so
// coalesced flushes ride the allocation-free batch path. With batching
// disabled (WithBatchWindow(0) or WithMaxBatch(1)) runtimes stay on the
// allocating path so concurrent requests use the whole pool unserialised.
func WithRuntimeOptions(opts ...engine.Option) Option {
	return func(c *config) { c.rtOpts = append(c.rtOpts, opts...) }
}

// WithBatchWindow sets the micro-batching coalescing window for every
// model: single-sample inferences arriving within the window share one
// runtime batch. d <= 0 disables coalescing. The default is
// DefaultBatchWindow.
func WithBatchWindow(d time.Duration) Option {
	return func(c *config) { c.window = d }
}

// WithMaxBatch bounds a coalesced flush: when the pending queue reaches
// n the batch flushes immediately instead of waiting out the window.
// n <= 1 disables coalescing. The default is DefaultMaxBatch.
func WithMaxBatch(n int) Option {
	return func(c *config) { c.maxBatch = n }
}

// WithMaxInFlight caps the concurrently admitted inference requests per
// model (each Handle.Infer or Handle.InferBatch counts once, for its
// whole lifetime including micro-batcher queueing; under
// WithCostAwareAdmission an explicit batch counts len(xs) instead). A
// request arriving at the cap is rejected immediately with
// ErrOverloaded — shed, not silently queued — which the HTTP layer maps
// to 429. n <= 0 (the default) leaves admission unlimited.
func WithMaxInFlight(n int) Option {
	return func(c *config) { c.maxInFlight = n }
}

// WithFlushPipeline sets the flush-pipeline depth D for every
// shared-output runtime the registry builds: D leasable result planes,
// so the runtime computes flush N while flush N−1's results demux and
// flush N+1 accumulates. d = 1 serialises flushes (the pre-pipeline
// behaviour); d <= 0 resets to DefaultFlushPipeline. Ignored when
// micro-batching is disabled (those runtimes run unserialised on the
// allocating path already).
func WithFlushPipeline(d int) Option {
	return func(c *config) { c.flushDepth = d }
}

// WithCostAwareAdmission makes the admission gate weigh explicit batches
// by sample count: Handle.InferBatch claims len(xs) of the
// WithMaxInFlight capacity instead of 1, so mixed single/batch traffic
// sheds in proportion to the compute requested. Oversized batches clamp
// to the full capacity rather than becoming unservable.
func WithCostAwareAdmission() Option {
	return func(c *config) { c.costAware = true }
}

// WithStore sets the content-addressed artifact store behind the
// registry. It is the source of truth for model bytes: loads land
// canonical bytes there first and decode from store-owned bytes,
// same-hash loads under different names store the bytes once and share
// a runtime, LoadHash instantiates a model from the store alone (which
// with a peer-backed store means fetching it across the fleet), and
// Registry.GC reclaims blobs nothing references. The default is a fresh
// in-memory store.
func WithStore(s store.Store) Option {
	return func(c *config) { c.store = s }
}

// WithRequestTimeout bounds one admitted request end to end: time spent
// waiting in the micro-batcher's pending queue, on the runtime job
// queue, and computing. A request that exceeds it fails with
// ErrRequestTimeout instead of hanging while the queues stay saturated.
// d <= 0 (the default) disables the deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.reqTimeout = d }
}

// entry is one loaded model and its serving machinery, keyed in the
// registry by its artifact content hash — several names may bind to one
// entry and share its runtime.
type entry struct {
	key     artifact.Hash // registry object key (surrogate when hash is zero)
	model   core.Model
	rt      *engine.Runtime
	batcher *Batcher
	metrics *Metrics

	// hash/artBytes identify the model's canonical binary artifact in
	// the content-addressed store: its SHA-256 and byte size. A zero
	// hash marks a model outside the binary codec (no store entry).
	hash     artifact.Hash
	artBytes int64

	// admission gate: gate bounds concurrently admitted work in weighted
	// units (nil = unlimited; costAware weighs explicit batches by sample
	// count), timeout bounds one admitted request end to end (0 = none).
	// See admission.go.
	gate      *gate
	costAware bool
	timeout   time.Duration

	bound    int  // names currently bound to this entry
	refs     int  // in-flight handles
	unloaded bool // out of the object table; close when refs hit 0

	closeOnce sync.Once
	done      chan struct{} // closed once the runtime has drained and closed
}

// binding maps one serving name onto an entry.
type binding struct {
	e      *entry
	loaded time.Time
}

// close tears down one entry: the batcher first (flushes stragglers,
// rejects new work), then the runtime (drains in-flight inferences).
// Called at most once, with refs == 0 and bound == 0.
func (e *entry) close() {
	e.batcher.Close()
	_ = e.rt.Close()
	close(e.done)
}

// Registry is a concurrency-safe named-model table. All methods are safe
// for concurrent use.
type Registry struct {
	cfg config

	mu      sync.Mutex
	objects map[artifact.Hash]*entry // live entries by content key
	names   map[string]*binding      // serving names onto entries
	pins    map[artifact.Hash]int    // hashes held live by in-flight loads
	anonSeq uint64                   // surrogate-key counter for hashless models
	closed  bool
}

// New returns an empty registry. Options set the runtime and batching
// configuration applied to every model loaded afterwards.
func New(opts ...Option) *Registry {
	cfg := config{window: DefaultBatchWindow, maxBatch: DefaultMaxBatch}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.flushDepth <= 0 {
		cfg.flushDepth = DefaultFlushPipeline
	}
	if cfg.store == nil {
		cfg.store = store.NewMem()
	}
	return &Registry{
		cfg:     cfg,
		objects: make(map[artifact.Hash]*entry),
		names:   make(map[string]*binding),
		pins:    make(map[artifact.Hash]int),
	}
}

// validName rejects names that would not round-trip through a URL path
// segment.
func validName(name string) error {
	if name == "" {
		return errors.New("registry: empty model name")
	}
	if name == "." || name == ".." {
		return fmt.Errorf("registry: invalid model name %q", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("registry: invalid model name %q (use letters, digits, '-', '_', '.')", name)
		}
	}
	return nil
}

// precheck is the cheap gate before paying for hashing, store IO, or a
// runtime build: a duplicate or post-Close load should fail before it
// spins anything up. The authoritative check repeats under the lock in
// loadEntry, since the tables can change in between.
func (r *Registry) precheck(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRegistryClosed
	}
	if _, ok := r.names[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	return nil
}

// pin holds an artifact hash live against GC for the duration of a
// load, before its bytes are even in the store: a blob pinned before
// its Put can never be in a sweep (the GC predicate runs at delete
// time, under the store's own lock).
func (r *Registry) pin(h artifact.Hash) {
	r.mu.Lock()
	r.pins[h]++
	r.mu.Unlock()
}

// unpin releases a load-time pin. Once the entry is in the object
// table, table membership keeps the hash live instead.
func (r *Registry) unpin(h artifact.Hash) {
	r.mu.Lock()
	if r.pins[h]--; r.pins[h] <= 0 {
		delete(r.pins, h)
	}
	r.mu.Unlock()
}

// isLive is the GC predicate: a hash is live while an in-flight load
// pins it or a loaded entry owns it.
func (r *Registry) isLive(h artifact.Hash) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pins[h] > 0 {
		return true
	}
	_, ok := r.objects[h]
	return ok
}

// GC sweeps the artifact store, removing every blob no loaded model or
// in-flight load references, and reports how many blobs and bytes it
// reclaimed. This is the reclamation path for Unload: a model's bytes
// outlive its name (they are the warm cache for the next load of the
// same hash, and peers may still fetch them) until a sweep decides the
// space matters more.
func (r *Registry) GC() (removed int, freed int64, err error) {
	return r.cfg.store.GC(r.isLive)
}

// Load registers a model under name. Its canonical bytes land in the
// store first and the served model is decoded back from store-owned
// bytes, so what serves is exactly what the store holds. A name over
// bytes already loaded binds to the existing entry and shares its
// runtime; otherwise a new runtime (one shared-nothing worker pool) and
// micro-batcher are built. Load fails with ErrExists when the name is
// taken and ErrRegistryClosed after Close.
//
// Models outside the binary codec (test doubles, experimental planes)
// have no canonical artifact: they load and serve as given, with a zero
// hash and no store entry.
func (r *Registry) Load(name string, model core.Model) error {
	if err := validName(name); err != nil {
		return err
	}
	if model == nil {
		return errors.New("registry: nil model")
	}
	if err := r.precheck(name); err != nil {
		return err
	}

	data, hash, err := artifact.Canonical(model)
	if errors.Is(err, artifact.ErrUnsupported) {
		// No canonical bytes to own; serve the caller's object under a
		// surrogate key so it gets its own entry and never aliases.
		r.mu.Lock()
		r.anonSeq++
		key := artifact.Sum([]byte(fmt.Sprintf("registry: anonymous model %d", r.anonSeq)))
		r.mu.Unlock()
		return r.loadEntry(name, key, artifact.Hash{}, 0, model)
	}
	if err != nil {
		return err
	}

	// Store-first: pin the hash (so a concurrent GC can never sweep the
	// bytes out from under this load), land the bytes, then decode the
	// serving model from what the store returns — not from the caller's
	// object. Done outside the lock: hashing is cheap but a durable
	// store may touch disk.
	r.pin(hash)
	defer r.unpin(hash)
	if _, err := r.cfg.store.Put(data); err != nil {
		return fmt.Errorf("registry: storing artifact for %q: %w", name, err)
	}
	stored, err := r.cfg.store.Get(hash)
	if err != nil {
		return fmt.Errorf("registry: reading back artifact for %q: %w", name, err)
	}
	decoded, err := artifact.Parse(stored)
	if err != nil {
		return fmt.Errorf("registry: decoding stored artifact for %q: %w", name, err)
	}
	return r.loadEntry(name, hash, hash, int64(len(stored)), decoded)
}

// LoadPath loads an artifact file (uniform or mixed) under name. Binary
// and JSON artifacts are detected transparently by the binary magic.
func (r *Registry) LoadPath(name, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := r.LoadBytes(name, data); err != nil {
		return fmt.Errorf("registry: loading %s: %w", path, err)
	}
	return nil
}

// LoadBytes loads an artifact from raw bytes — the upload path: clients
// POST the artifact body to the daemon instead of referencing a file on
// the server's disk. Binary and JSON artifacts are detected
// transparently; either way the canonical binary form is what the store
// keeps and the served model decodes from.
func (r *Registry) LoadBytes(name string, data []byte) error {
	model, err := artifact.Parse(data)
	if err != nil {
		return err
	}
	return r.Load(name, model)
}

// LoadHash registers a model under name from its content address alone:
// the bytes come out of the store (which, over a peer-backed tier, may
// mean fetching and persisting them from another replica), decode, and
// serve. A store miss surfaces as store.ErrNotFound — the caller asked
// for bytes the fleet does not have.
func (r *Registry) LoadHash(name string, h artifact.Hash) error {
	if err := validName(name); err != nil {
		return err
	}
	if h == (artifact.Hash{}) {
		return errors.New("registry: zero artifact hash")
	}
	if err := r.precheck(name); err != nil {
		return err
	}

	r.pin(h)
	defer r.unpin(h)
	data, err := r.cfg.store.Get(h)
	if err != nil {
		return fmt.Errorf("registry: artifact %s: %w", h, err)
	}
	model, err := artifact.Parse(data)
	if err != nil {
		return fmt.Errorf("registry: decoding artifact %s: %w", h, err)
	}
	return r.loadEntry(name, h, h, int64(len(data)), model)
}

// loadEntry binds name to the entry for key, building the entry (runtime
// + micro-batcher) if no live one exists. The runtime build happens
// outside the lock — warm tables can take a while and must not stall
// unrelated lookups — so a lost build race resolves by binding to the
// winner and discarding the fresh runtime.
func (r *Registry) loadEntry(name string, key, hash artifact.Hash, artBytes int64, model core.Model) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	if _, ok := r.names[name]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if e, ok := r.objects[key]; ok {
		// Alias fast path: the content is already serving; share its
		// runtime instead of building another worker pool.
		e.bound++
		r.names[name] = &binding{e: e, loaded: time.Now()}
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()

	// Shared outputs only when the micro-batcher will serialise access
	// and copy results out; on the passthrough path concurrent requests
	// keep the pool unserialised.
	opts := append([]engine.Option{}, r.cfg.rtOpts...)
	if r.cfg.window > 0 && r.cfg.maxBatch > 1 {
		opts = append(opts, engine.WithSharedOutputs(), engine.WithFlushPipeline(r.cfg.flushDepth))
	}
	rt, err := engine.NewRuntime(model, opts...)
	if err != nil {
		return err
	}
	metrics := &Metrics{}
	e := &entry{
		key:      key,
		model:    model,
		rt:       rt,
		batcher:  NewBatcher(rt, r.cfg.window, r.cfg.maxBatch, metrics),
		metrics:  metrics,
		hash:     hash,
		artBytes: artBytes,
		timeout:  r.cfg.reqTimeout,
		done:     make(chan struct{}),
	}
	e.costAware = r.cfg.costAware
	if r.cfg.maxInFlight > 0 {
		e.gate = newGate(r.cfg.maxInFlight)
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = rt.Close()
		return ErrRegistryClosed
	}
	if _, ok := r.names[name]; ok {
		r.mu.Unlock()
		_ = rt.Close()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if winner, ok := r.objects[key]; ok {
		// A concurrent load of the same content won the build race; its
		// runtime serves both names, ours closes unused.
		winner.bound++
		r.names[name] = &binding{e: winner, loaded: time.Now()}
		r.mu.Unlock()
		_ = rt.Close()
		return nil
	}
	e.bound = 1
	r.objects[key] = e
	r.names[name] = &binding{e: e, loaded: time.Now()}
	r.mu.Unlock()
	return nil
}

// Handle pins one model for the duration of a request: the entry cannot
// finish unloading while handles are outstanding. Release exactly once
// (idempotent) when done.
type Handle struct {
	r    *Registry
	e    *entry
	name string

	once sync.Once
}

// Name returns the registry name this handle was acquired under (one
// entry may serve several names).
func (h *Handle) Name() string { return h.name }

// Model returns the pinned model plane.
func (h *Handle) Model() core.Model { return h.e.model }

// ContentHash returns the model's artifact content address.
func (h *Handle) ContentHash() artifact.Hash { return h.e.hash }

// Runtime returns the model's worker-pool runtime. When micro-batching
// is enabled it is built with shared outputs: call it through Batcher
// (which serialises access and copies results) rather than invoking
// InferBatch directly.
func (h *Handle) Runtime() *engine.Runtime { return h.e.rt }

// Batcher returns the model's micro-batcher — the inference entry point.
func (h *Handle) Batcher() *Batcher { return h.e.batcher }

// Metrics returns the model's serving metrics.
func (h *Handle) Metrics() *Metrics { return h.e.metrics }

// Release un-pins the model. If the model was unloaded while this handle
// was live and this is the last handle, the entry's runtime drains and
// closes now.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.refs--
		last := h.e.refs == 0 && h.e.unloaded
		h.r.mu.Unlock()
		if last {
			h.e.closeOnce.Do(h.e.close)
		}
	})
}

// Acquire pins the named model and returns its handle. Fails with
// ErrNotFound for unknown (or already-unloaded) names and
// ErrRegistryClosed after Close.
func (r *Registry) Acquire(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	b, ok := r.names[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	b.e.refs++
	return &Handle{r: r, e: b.e, name: name}, nil
}

// Unload removes the named model: the name disappears immediately (new
// Acquires fail). If other names still bind the same entry, Unload
// returns at once and the shared runtime keeps serving them. For the
// last name it blocks until the runtime has drained and closed:
// in-flight requests finish on their handles, then the batcher flushes
// and Runtime.Close drains the pool. The artifact bytes stay in the
// store until a GC sweep finds them unreferenced. After Close it fails
// with ErrRegistryClosed — checked before the name lookup, so clients
// can tell shutdown (every name is gone) from a genuinely unknown
// model.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	b, ok := r.names[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.names, name)
	e := b.e
	e.bound--
	if e.bound > 0 {
		r.mu.Unlock()
		return nil
	}
	delete(r.objects, e.key)
	e.unloaded = true
	idle := e.refs == 0
	r.mu.Unlock()

	if idle {
		e.closeOnce.Do(e.close)
	}
	<-e.done
	return nil
}

// Store returns the content-addressed artifact store behind the
// registry — the source of truth for model bytes. Unload does not
// remove artifact bytes from it (blobs are immutable, may back several
// names at once, serve peer fetches, and double as the warm cache for
// the next load of the same hash); Registry.GC is the reclamation path.
func (r *Registry) Store() store.Store { return r.cfg.store }

// StoreStats reports the artifact store's occupancy, dedup, and GC
// counters (surfaced in /v1/metrics), including per-tier breakdowns for
// composed stores.
func (r *Registry) StoreStats() store.Stats { return r.cfg.store.Stats() }

// Names returns the loaded model names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.names))
	for name := range r.names {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Len returns the number of loaded model names.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.names)
}

// Closed reports whether Close has been called — the readiness probe's
// signal that this process is past the point of serving.
func (r *Registry) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// ModelStat is one registry entry's introspection record.
type ModelStat struct {
	Name         string   `json:"name"`
	Model        string   `json:"model"`
	Kind         string   `json:"kind"`
	InputDim     int      `json:"input_dim"`
	OutputDim    int      `json:"output_dim"`
	Layers       int      `json:"layers"`
	Arithmetics  []string `json:"arithmetics"`
	MemoryBits   int      `json:"memory_bits"`
	Standardized bool     `json:"standardized"`
	// ContentHash is the SHA-256 of the model's canonical binary
	// artifact — its content address in the store and the ETag
	// /v1/models serves; ArtifactBytes is that artifact's size.
	ContentHash   string `json:"content_hash"`
	ArtifactBytes int64  `json:"artifact_bytes"`
	// Aliases counts the names currently bound to this model's entry
	// (same content hash → shared runtime); 1 when this name is alone.
	Aliases     int    `json:"aliases"`
	Workers     int    `json:"workers"`
	BatchWindow string `json:"batch_window"`
	MaxBatch    int    `json:"max_batch"`
	// FlushPipeline is the runtime's flush-slot plane count (0 when the
	// model serves on the unserialised allocating path); PipelineInUse
	// samples how many planes are leased right now.
	FlushPipeline int `json:"flush_pipeline"`
	PipelineInUse int `json:"pipeline_in_use"`
	// MaxInFlight is the admission capacity in units (0 = unlimited);
	// CostAwareAdmission marks those units as samples rather than
	// requests; RequestTimeout is the per-request deadline ("0s" = none).
	MaxInFlight        int    `json:"max_in_flight"`
	CostAwareAdmission bool   `json:"cost_aware_admission"`
	RequestTimeout     string `json:"request_timeout"`
	// QueueLen/QueueCap sample the runtime job queue — the backpressure
	// signal behind admission control.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// Panics counts inferences that panicked inside a worker (each failed
	// its own request; the worker survived). Nonzero means some kernel is
	// unsound for some inputs.
	Panics   int64    `json:"panics"`
	LoadedAt string   `json:"loaded_at"`
	Metrics  Snapshot `json:"metrics"`
}

// statFor builds one binding's record; aliases is sampled by the caller
// under r.mu, everything else reads immutable entry fields plus the
// metrics' own lock.
func statFor(name string, b *binding, aliases int) ModelStat {
	e := b.e
	m := e.model
	// Models with no canonical artifact (zero hash) report an empty
	// content hash, not 64 zeros.
	contentHash := ""
	if e.hash != (artifact.Hash{}) {
		contentHash = e.hash.String()
	}
	return ModelStat{
		Name:               name,
		Model:              m.String(),
		Kind:               m.Kind(),
		InputDim:           m.InputDim(),
		OutputDim:          m.OutputDim(),
		Layers:             m.NumLayers(),
		Arithmetics:        m.ArithNames(),
		MemoryBits:         m.MemoryBits(),
		Standardized:       m.Standardizer() != nil,
		ContentHash:        contentHash,
		ArtifactBytes:      e.artBytes,
		Aliases:            aliases,
		Workers:            e.rt.Workers(),
		BatchWindow:        e.batcher.Window().String(),
		MaxBatch:           e.batcher.MaxBatch(),
		FlushPipeline:      e.rt.FlushPipelineDepth(),
		PipelineInUse:      e.rt.FlushSlotsInUse(),
		MaxInFlight:        e.gate.Cap(),
		CostAwareAdmission: e.costAware,
		RequestTimeout:     e.timeout.String(),
		QueueLen:           e.rt.QueueLen(),
		QueueCap:           e.rt.QueueCap(),
		Panics:             e.rt.Panics(),
		LoadedAt:           b.loaded.UTC().Format(time.RFC3339),
		Metrics:            e.metrics.Snapshot(),
	}
}

// Stat returns one model's introspection record.
func (r *Registry) Stat(name string) (ModelStat, error) {
	r.mu.Lock()
	b, ok := r.names[name]
	var aliases int
	if ok {
		aliases = b.e.bound
	}
	r.mu.Unlock()
	if !ok {
		return ModelStat{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return statFor(name, b, aliases), nil
}

// Stats returns every loaded model's record, sorted by name.
func (r *Registry) Stats() []ModelStat {
	type named struct {
		name    string
		b       *binding
		aliases int
	}
	r.mu.Lock()
	bindings := make([]named, 0, len(r.names))
	for name, b := range r.names {
		bindings = append(bindings, named{name, b, b.e.bound})
	}
	r.mu.Unlock()
	stats := make([]ModelStat, len(bindings))
	for i, n := range bindings {
		stats[i] = statFor(n.name, n.b, n.aliases)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// Close unloads every model (draining each runtime) and marks the
// registry closed: subsequent Load/Acquire fail with ErrRegistryClosed.
// Idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	entries := make([]*entry, 0, len(r.objects))
	for key, e := range r.objects {
		delete(r.objects, key)
		e.bound = 0
		e.unloaded = true
		entries = append(entries, e)
	}
	for name := range r.names {
		delete(r.names, name)
	}
	r.mu.Unlock()

	for _, e := range entries {
		r.mu.Lock()
		idle := e.refs == 0
		r.mu.Unlock()
		if idle {
			e.closeOnce.Do(e.close)
		}
		<-e.done
	}
	return nil
}
