package registry

// Flush-pipeline and cost-aware-admission coverage. The slowModel double
// stretches every fused batch call by a fixed delay, so two explicit
// batches fired together are deterministically in flight at once — the
// pipeline-depth gauge must observe >= 2 leased planes — while results
// stay bit-identical to a serial session. CI runs this file under -race.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// slowModel wraps a core.Model so every fused batch inference takes at
// least delay: long enough that concurrent flushes overlap on any host,
// short enough to keep the tests quick.
type slowModel struct {
	core.Model
	delay time.Duration
}

func (m *slowModel) NewInferer() core.Inferer {
	return &slowInferer{Inferer: m.Model.NewInferer(), delay: m.delay}
}

type slowInferer struct {
	core.Inferer
	delay time.Duration
}

func (s *slowInferer) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	time.Sleep(s.delay)
	return s.Inferer.InferBatchInto(dst, xs)
}

// newPipelineRegistry loads one slow posit8 model into a registry built
// with the given options and returns its pinned handle.
func newPipelineRegistry(t *testing.T, delay time.Duration, opts ...Option) *Handle {
	t.Helper()
	r := New(append([]Option{WithRuntimeOptions(engine.WithWorkers(2))}, opts...)...)
	t.Cleanup(func() { r.Close() })
	if err := r.Load("m", &slowModel{Model: posit8Model(47), delay: delay}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Release)
	return h
}

// TestPipelinedBitIdentityAtDepth2 drives the flush pipeline to depth
// >= 2 — concurrent explicit batches each lease their own result plane
// while coalesced windows flow between them — and asserts every result
// is bit-identical to an unbatched serial session. This is the tentpole
// exactness contract: overlap must never leak one flush's plane into
// another's results.
func TestPipelinedBitIdentityAtDepth2(t *testing.T) {
	h := newPipelineRegistry(t, 10*time.Millisecond,
		WithFlushPipeline(2),
		WithBatchWindow(time.Millisecond),
		WithMaxBatch(4),
	)
	if d := h.Runtime().FlushPipelineDepth(); d != 2 {
		t.Fatalf("FlushPipelineDepth = %d, want 2", d)
	}
	ref := h.Model().NewInferer()

	const singles, batches, batchSize = 16, 4, 6
	var wg sync.WaitGroup
	singleOut := make([][]float64, singles)
	singleErr := make([]error, singles)
	for i := 0; i < singles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			singleOut[i], singleErr[i] = h.Infer(context.Background(), testInput(i))
		}(i)
	}
	batchOut := make([][][]float64, batches)
	batchErr := make([]error, batches)
	for g := 0; g < batches; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([][]float64, batchSize)
			for i := range xs {
				xs[i] = testInput(100 + g*batchSize + i)
			}
			batchOut[g], batchErr[g] = h.InferBatch(context.Background(), xs)
		}(g)
	}
	wg.Wait()

	for i := 0; i < singles; i++ {
		if singleErr[i] != nil {
			t.Fatalf("single %d: %v", i, singleErr[i])
		}
		want := ref.Infer(testInput(i))
		for j := range want {
			if singleOut[i][j] != want[j] {
				t.Fatalf("single %d logit %d: pipelined %v != serial %v", i, j, singleOut[i][j], want[j])
			}
		}
	}
	for g := 0; g < batches; g++ {
		if batchErr[g] != nil {
			t.Fatalf("batch %d: %v", g, batchErr[g])
		}
		for i := range batchOut[g] {
			want := ref.Infer(testInput(100 + g*batchSize + i))
			for j := range want {
				if batchOut[g][i][j] != want[j] {
					t.Fatalf("batch %d sample %d logit %d: pipelined %v != serial %v",
						g, i, j, batchOut[g][i][j], want[j])
				}
			}
		}
	}

	snap := h.Metrics().Snapshot()
	if snap.MaxPipelineDepth < 2 {
		t.Fatalf("max pipeline depth = %d: concurrent 10ms flushes never overlapped", snap.MaxPipelineDepth)
	}
	if snap.Requests != singles+batches*batchSize {
		t.Fatalf("requests = %d, want %d", snap.Requests, singles+batches*batchSize)
	}
	// The latency split observed both halves: requests waited (for a
	// window or a plane) and flushes computed for >= the injected delay.
	if snap.ComputeP50Ms < 10 {
		t.Fatalf("compute p50 = %vms, want >= the 10ms injected delay", snap.ComputeP50Ms)
	}
	if snap.LatencySamples == 0 || snap.P99Ms < snap.ComputeP50Ms {
		t.Fatalf("latency split inconsistent: %+v", snap)
	}
}

// TestCloseMidPipelineDrains closes the batcher (then the runtime, in
// the registry's entry-teardown order) while flushes are mid-pipeline:
// every in-flight caller must get its bit-identical result — never an
// error, never a hang — and the metrics must count exactly the flushes
// that ran, with no phantom entries from the teardown.
func TestCloseMidPipelineDrains(t *testing.T) {
	model := &slowModel{Model: posit8Model(48), delay: 20 * time.Millisecond}
	rt, err := engine.NewRuntime(model,
		engine.WithWorkers(2), engine.WithSharedOutputs(), engine.WithFlushPipeline(2))
	if err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	b := NewBatcher(rt, time.Hour, 3, m) // coalesced windows flush only via Close
	ref := model.Model.NewInferer()      // the undecorated plane: same bits, no sleep

	// Two explicit batches occupy both planes; one coalesced call parks
	// in the pending queue awaiting the (never-firing) window timer.
	const batchSize = 4
	var wg sync.WaitGroup
	results := make([][][]float64, 2)
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := make([][]float64, batchSize)
			for i := range xs {
				xs[i] = testInput(200 + g*batchSize + i)
			}
			results[g], errs[g] = b.InferBatch(context.Background(), xs)
		}(g)
	}
	parked := make(chan struct{})
	var parkedOut []float64
	var parkedErr error
	go func() {
		defer close(parked)
		parkedOut, parkedErr = b.Infer(context.Background(), testInput(300))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		pend := len(b.pending)
		b.mu.Unlock()
		if pend == 1 && rt.FlushSlotsInUse() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never filled: pending=%d in use=%d", pend, rt.FlushSlotsInUse())
		}
		time.Sleep(time.Millisecond)
	}

	// Tear down in the registry's order: batcher (flushes the parked
	// call, waits out in-flight flushes), then the runtime.
	b.Close()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	for g := 0; g < 2; g++ {
		if errs[g] != nil {
			t.Fatalf("mid-pipeline batch %d failed across Close: %v", g, errs[g])
		}
		for i := range results[g] {
			want := ref.Infer(testInput(200 + g*batchSize + i))
			for j := range want {
				if results[g][i][j] != want[j] {
					t.Fatalf("batch %d sample %d logit %d diverged across Close", g, i, j)
				}
			}
		}
	}
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("parked caller left hanging by Close")
	}
	if parkedErr != nil {
		t.Fatalf("parked caller: %v", parkedErr)
	}
	want := ref.Infer(testInput(300))
	for j := range want {
		if parkedOut[j] != want[j] {
			t.Fatalf("parked caller logit %d diverged across Close", j)
		}
	}

	// Exactly 3 flushes ran (two explicit, one close-time); nothing
	// phantom was recorded during teardown.
	snap := m.Snapshot()
	if snap.Batches != 3 || snap.Requests != 2*batchSize+1 {
		t.Fatalf("flush accounting after Close: %+v, want 3 batches / %d requests", snap, 2*batchSize+1)
	}
	if _, err := b.Infer(context.Background(), testInput(0)); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("infer after Close = %v, want ErrBatcherClosed", err)
	}
}

// TestMetricsQueueComputeSplit exercises the new observation channels
// directly: percentile rings, the EWMA-backed retry hint, and the
// pipeline-depth high-water mark (including nil-receiver no-ops).
func TestMetricsQueueComputeSplit(t *testing.T) {
	m := &Metrics{}
	for i := 1; i <= 100; i++ {
		m.ObserveQueueWait(time.Duration(i) * time.Millisecond)
		m.ObserveCompute(time.Duration(2*i) * time.Millisecond)
	}
	m.ObservePipelineDepth(1)
	m.ObservePipelineDepth(3)
	m.ObservePipelineDepth(2)
	s := m.Snapshot()
	if s.QueueWaitP50Ms != 50 || s.QueueWaitP99Ms != 99 {
		t.Fatalf("queue-wait percentiles: p50=%v p99=%v", s.QueueWaitP50Ms, s.QueueWaitP99Ms)
	}
	if s.ComputeP50Ms != 100 || s.ComputeP99Ms != 198 {
		t.Fatalf("compute percentiles: p50=%v p99=%v", s.ComputeP50Ms, s.ComputeP99Ms)
	}
	if s.MaxPipelineDepth != 3 {
		t.Fatalf("max pipeline depth = %d, want 3", s.MaxPipelineDepth)
	}
	if m.RetryHint() <= 0 {
		t.Fatal("retry hint empty after observed queue waits")
	}
	// Two flushes an observed gap apart give the hint its second term.
	m.ObserveFlush(1, false)
	time.Sleep(2 * time.Millisecond)
	m.ObserveFlush(1, false)
	if hint := m.RetryHint(); hint < time.Millisecond {
		t.Fatalf("retry hint %v ignores the flush gap", hint)
	}

	var nilM *Metrics
	nilM.ObserveQueueWait(time.Second)
	nilM.ObserveCompute(time.Second)
	nilM.ObservePipelineDepth(5)
	if nilM.RetryHint() != 0 {
		t.Fatal("nil metrics retry hint")
	}
}

// TestCostAwareAdmissionWeighsBatches: under WithCostAwareAdmission an
// explicit batch claims len(xs) admission units — parked singles plus a
// batch that would overflow the gate are shed with the rejected counter
// moving, an in-budget batch passes, and an oversized batch clamps to
// the whole gate instead of becoming unservable.
func TestCostAwareAdmissionWeighsBatches(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithMaxInFlight(4),
		WithCostAwareAdmission(),
		WithBatchWindow(time.Hour), // parked singles hold their units
		WithMaxBatch(1000),
	)
	if !h.CostAware() {
		t.Fatal("CostAware = false")
	}
	if h.MaxInFlight() != 4 {
		t.Fatalf("MaxInFlight = %d, want 4", h.MaxInFlight())
	}

	// Park two singles: 2 of 4 units held.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := h.Infer(ctx, testInput(i))
			parked <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Metrics().Snapshot().InFlight != 2 {
		if time.Now().After(deadline) {
			t.Fatal("parked singles never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	three := [][]float64{testInput(10), testInput(11), testInput(12)}
	if _, err := h.InferBatch(context.Background(), three); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("3-sample batch over a 2/4 gate: %v, want ErrOverloaded", err)
	}
	if snap := h.Metrics().Snapshot(); snap.Rejected != 1 {
		t.Fatalf("rejected = %d after cost-aware shed, want 1", snap.Rejected)
	}
	two := [][]float64{testInput(13), testInput(14)}
	if out, err := h.InferBatch(context.Background(), two); err != nil || len(out) != 2 {
		t.Fatalf("2-sample batch within budget: %v, %v", out, err)
	}

	// Free the singles; a batch larger than the whole gate clamps to the
	// gate and runs.
	cancel()
	<-parked
	<-parked
	deadline = time.Now().Add(5 * time.Second)
	for h.Metrics().Snapshot().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("units never freed")
		}
		time.Sleep(time.Millisecond)
	}
	nine := make([][]float64, 9)
	for i := range nine {
		nine[i] = testInput(20 + i)
	}
	if out, err := h.InferBatch(context.Background(), nine); err != nil || len(out) != 9 {
		t.Fatalf("oversized batch on an idle gate: %v, %v", out, err)
	}
	if snap := h.Metrics().Snapshot(); snap.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after oversized batch drained", snap.InFlight)
	}
}

// TestCostAwareMixedBurst fires singles and explicit batches at a small
// cost-aware gate concurrently: accounting balances (served + rejected =
// fired, the rejected counter matches observed sheds), served results
// are bit-identical to a serial session, and the gauge drains to zero.
func TestCostAwareMixedBurst(t *testing.T) {
	h := newAdmissionRegistry(t,
		WithMaxInFlight(4),
		WithCostAwareAdmission(),
		WithBatchWindow(5*time.Millisecond),
		WithMaxBatch(8),
	)
	ref := h.Model().NewInferer()

	const n = 32
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		rejected int
		served   int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 { // every 4th request is a 3-sample explicit batch
				xs := [][]float64{testInput(i), testInput(i + 1000), testInput(i + 2000)}
				out, err := h.InferBatch(context.Background(), xs)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case errors.Is(err, ErrOverloaded):
					rejected++
				case err != nil:
					t.Errorf("batch %d: %v", i, err)
				default:
					served++
					for s := range xs {
						want := ref.Infer(xs[s])
						for j := range want {
							if out[s][j] != want[j] {
								t.Errorf("batch %d sample %d logit %d diverged", i, s, j)
							}
						}
					}
				}
				return
			}
			out, err := h.Infer(context.Background(), testInput(i))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrOverloaded):
				rejected++
			case err != nil:
				t.Errorf("single %d: %v", i, err)
			default:
				served++
				want := ref.Infer(testInput(i))
				for j := range want {
					if out[j] != want[j] {
						t.Errorf("single %d logit %d diverged", i, j)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if served == 0 {
		t.Fatal("no request survived the burst")
	}
	if served+rejected != n {
		t.Fatalf("served %d + rejected %d != fired %d", served, rejected, n)
	}
	snap := h.Metrics().Snapshot()
	if snap.Rejected != int64(rejected) {
		t.Fatalf("metrics rejected = %d, observed %d", snap.Rejected, rejected)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after burst drained", snap.InFlight)
	}
}
