package datasets

import "repro/internal/rng"

// Iris statistics (sepal length, sepal width, petal length, petal width)
// per class, from Fisher (1936) / the UCI summary: per-class means and
// standard deviations in centimetres.
var irisStats = [3]struct {
	name string
	mean [4]float64
	std  [4]float64
}{
	{"setosa", [4]float64{5.006, 3.428, 1.462, 0.246}, [4]float64{0.352, 0.379, 0.174, 0.105}},
	// versicolor/virginica petal spreads are tightened ~15% relative to
	// the published marginal stds: the real classes are not Gaussian and
	// overlap less than independent normals with the published moments
	// would; this keeps the generated task at the real dataset's ~98%
	// difficulty (1 error in the 50-sample inference split).
	{"versicolor", [4]float64{5.936, 2.770, 4.260, 1.326}, [4]float64{0.516, 0.314, 0.400, 0.168}},
	{"virginica", [4]float64{6.588, 2.974, 5.552, 2.026}, [4]float64{0.636, 0.322, 0.469, 0.234}},
}

// irisCorr is the approximate within-class correlation between a sample's
// overall "size" factor and each feature (Iris features are strongly
// positively correlated within classes, petal dimensions most strongly).
var irisCorr = [4]float64{0.75, 0.45, 0.80, 0.70}

// IrisSeed is the canonical generator seed used throughout the
// experiments, fixed so every table regenerates identically.
const IrisSeed = 0x1715

// Iris generates the 150-sample, 3-class Iris stand-in: class-conditional
// Gaussians with the published per-class means/stds and a shared latent
// size factor reproducing the within-class feature correlation.
func Iris(seed uint64) *Dataset {
	r := rng.New(seed)
	d := &Dataset{Name: "Iris", NumClasses: 3}
	for c := 0; c < 3; c++ {
		st := irisStats[c]
		for i := 0; i < 50; i++ {
			size := r.Norm() // latent within-class size factor
			row := make([]float64, 4)
			for j := 0; j < 4; j++ {
				rho := irisCorr[j]
				z := rho*size + sqrt(1-rho*rho)*r.Norm()
				row[j] = st.mean[j] + st.std[j]*z
				if row[j] < 0.05 {
					row[j] = 0.05 // measurements are positive lengths
				}
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, c)
		}
	}
	return d
}

// IrisSplit returns the paper's split: 100 train / 50 inference.
func IrisSplit(seed uint64) (train, test *Dataset) {
	return Iris(seed).Split(50, seed^0x9e37)
}
