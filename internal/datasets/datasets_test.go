package datasets

import (
	"math"
	"testing"
)

func TestIrisShape(t *testing.T) {
	d := Iris(IrisSeed)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 150 || d.Dim() != 4 || d.NumClasses != 3 {
		t.Fatalf("shape: %d×%d, %d classes", d.Len(), d.Dim(), d.NumClasses)
	}
	for c, n := range d.ClassCounts() {
		if n != 50 {
			t.Errorf("class %d has %d samples", c, n)
		}
	}
}

func TestIrisStatisticsMatchPublished(t *testing.T) {
	d := Iris(IrisSeed)
	// sample means per class must land near the published values
	for c := 0; c < 3; c++ {
		var sum [4]float64
		n := 0
		for i := range d.X {
			if d.Y[i] != c {
				continue
			}
			for j := 0; j < 4; j++ {
				sum[j] += d.X[i][j]
			}
			n++
		}
		for j := 0; j < 4; j++ {
			got := sum[j] / float64(n)
			want := irisStats[c].mean[j]
			tol := 3.5 * irisStats[c].std[j] / math.Sqrt(float64(n))
			if math.Abs(got-want) > tol {
				t.Errorf("class %d feature %d: mean %.3f want %.3f ± %.3f", c, j, got, want, tol)
			}
		}
	}
}

func TestIrisClassStructure(t *testing.T) {
	// setosa must separate linearly from the others on petal length
	// (feature 2) — the defining property of Iris.
	d := Iris(IrisSeed)
	maxSetosa, minOthers := -1.0, 1e9
	for i := range d.X {
		pl := d.X[i][2]
		if d.Y[i] == 0 && pl > maxSetosa {
			maxSetosa = pl
		}
		if d.Y[i] != 0 && pl < minOthers {
			minOthers = pl
		}
	}
	if maxSetosa >= minOthers {
		t.Errorf("setosa petal length overlaps others: %.2f vs %.2f", maxSetosa, minOthers)
	}
}

func TestWBCShape(t *testing.T) {
	d := BreastCancer(WBCSeed)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 569 || d.Dim() != 30 || d.NumClasses != 2 {
		t.Fatalf("shape: %d×%d", d.Len(), d.Dim())
	}
	counts := d.ClassCounts()
	if counts[0] != 357 || counts[1] != 212 {
		t.Errorf("class counts %v want [357 212]", counts)
	}
}

func TestWBCScaleHeterogeneity(t *testing.T) {
	// The property driving the fixed-point failure: feature scales span
	// ~4 orders of magnitude (area ~655 vs fractal dimension ~0.06).
	d := BreastCancer(WBCSeed)
	var areaMean, fracMean float64
	for i := range d.X {
		areaMean += d.X[i][3]
		fracMean += d.X[i][9]
	}
	areaMean /= float64(d.Len())
	fracMean /= float64(d.Len())
	if areaMean/fracMean < 1000 {
		t.Errorf("scale ratio %.0f too small; want >1000", areaMean/fracMean)
	}
}

func TestWBCClassSignal(t *testing.T) {
	// Malignant means must exceed benign means on the loaded features
	// (e.g. worst concave points, index 20+7).
	d := BreastCancer(WBCSeed)
	var mal, ben float64
	var nm, nb int
	for i := range d.X {
		v := d.X[i][27]
		if d.Y[i] == 1 {
			mal += v
			nm++
		} else {
			ben += v
			nb++
		}
	}
	if mal/float64(nm) <= ben/float64(nb) {
		t.Error("malignant class must have larger worst-concave-points")
	}
}

func TestMushroomShape(t *testing.T) {
	d := Mushroom(MushroomSeed)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8124 || d.NumClasses != 2 {
		t.Fatalf("len %d", d.Len())
	}
	if d.Dim() != MushroomOneHotDim() {
		t.Fatalf("dim %d want %d", d.Dim(), MushroomOneHotDim())
	}
	counts := d.ClassCounts()
	if counts[0] != 4208 || counts[1] != 3916 {
		t.Errorf("counts %v", counts)
	}
	// rows are valid one-hot blocks: exactly 22 ones
	for i := 0; i < 50; i++ {
		ones := 0.0
		for _, v := range d.X[i] {
			ones += v
		}
		if ones != 22 {
			t.Fatalf("row %d has %v ones, want 22", i, ones)
		}
	}
}

func TestMushroomOdorSignal(t *testing.T) {
	// "odor" must be highly class-informative, as in the real data:
	// a one-feature classifier on odor should approach ~97%+.
	d := Mushroom(MushroomSeed)
	// odor block offset
	off := 0
	for _, f := range mushroomSchema {
		if f.name == "odor" {
			break
		}
		off += f.card
	}
	// majority class per odor category
	counts := make([][2]int, 9)
	for i := range d.X {
		for c := 0; c < 9; c++ {
			if d.X[i][off+c] == 1 {
				counts[c][d.Y[i]]++
			}
		}
	}
	correct := 0
	for _, c := range counts {
		if c[0] > c[1] {
			correct += c[0]
		} else {
			correct += c[1]
		}
	}
	acc := float64(correct) / float64(d.Len())
	// Strong but deliberately imperfect (the generator keeps residual
	// class overlap so the MLP lands near the paper's ~96.8% rather
	// than saturating).
	if acc < 0.90 || acc > 0.97 {
		t.Errorf("odor-only accuracy %.3f; want in [0.90, 0.97]", acc)
	}
	t.Logf("odor-only classifier accuracy: %.3f", acc)
}

func TestSplitsMatchPaperSizes(t *testing.T) {
	tr, te := IrisSplit(IrisSeed)
	if tr.Len() != 100 || te.Len() != 50 {
		t.Errorf("iris split %d/%d", tr.Len(), te.Len())
	}
	tr, te = BreastCancerSplit(WBCSeed)
	if tr.Len() != 379 || te.Len() != 190 {
		t.Errorf("wbc split %d/%d", tr.Len(), te.Len())
	}
	tr, te = MushroomSplit(MushroomSeed)
	if tr.Len() != 5416 || te.Len() != 2708 {
		t.Errorf("mushroom split %d/%d", tr.Len(), te.Len())
	}
}

func TestSplitDeterminism(t *testing.T) {
	a1, b1 := IrisSplit(7)
	a2, b2 := IrisSplit(7)
	for i := range a1.X {
		if a1.X[i][0] != a2.X[i][0] {
			t.Fatal("split not deterministic")
		}
	}
	if b1.Y[0] != b2.Y[0] {
		t.Fatal("split not deterministic")
	}
	// different seed shuffles differently
	a3, _ := IrisSplit(8)
	same := true
	for i := range a1.Y {
		if a1.Y[i] != a3.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should shuffle differently")
	}
}

func TestStandardize(t *testing.T) {
	tr, te := BreastCancerSplit(WBCSeed)
	str, ste := Standardize(tr, te)
	// train features ~ zero mean unit variance
	dim := str.Dim()
	for j := 0; j < dim; j++ {
		var mean, varsum float64
		for i := range str.X {
			mean += str.X[i][j]
		}
		mean /= float64(str.Len())
		for i := range str.X {
			d := str.X[i][j] - mean
			varsum += d * d
		}
		sd := math.Sqrt(varsum / float64(str.Len()))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %g", j, mean)
		}
		if math.Abs(sd-1) > 1e-9 {
			t.Fatalf("feature %d std %g", j, sd)
		}
	}
	// test transformed with train statistics (not exactly standardized)
	if ste.Len() != te.Len() {
		t.Error("test length changed")
	}
	// original datasets untouched
	if tr.X[0][3] < 10 {
		t.Error("Standardize must not mutate its inputs")
	}
}

func TestSplitPanics(t *testing.T) {
	d := Iris(1)
	for _, bad := range []int{0, 150, 300} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%d) must panic", bad)
				}
			}()
			d.Split(bad, 1)
		}()
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := Iris(1)
	d.Y[0] = 99
	if err := d.Validate(); err == nil {
		t.Error("bad label must fail validation")
	}
	d = Iris(1)
	d.X[3] = d.X[3][:2]
	if err := d.Validate(); err == nil {
		t.Error("ragged rows must fail validation")
	}
}
