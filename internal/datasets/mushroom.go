package datasets

import "repro/internal/rng"

// mushroomFeature describes one categorical attribute: its cardinality
// and class-conditional category weights (edible, poisonous). The
// attribute list matches the UCI Mushroom schema (22 attributes; the
// one-hot dimensionality lands near the real dataset's ~117 columns).
// "odor" is nearly deterministic for the class — the property that makes
// the real dataset ~99% separable — and spore-print-color is the second
// strongest signal, with the rest weakly informative.
type mushroomFeature struct {
	name      string
	card      int
	edible    []float64
	poisonous []float64
}

var mushroomSchema = []mushroomFeature{
	{"cap-shape", 6,
		[]float64{6, 1, 8, 1, 1, 7}, []float64{5, 1, 6, 1, 0.2, 8}},
	{"cap-surface", 4,
		[]float64{5, 1, 5, 6}, []float64{4, 0.5, 7, 5}},
	{"cap-color", 10,
		[]float64{4, 2, 5, 6, 1, 1, 1, 3, 5, 2}, []float64{5, 3, 4, 4, 0.5, 0.5, 1, 2, 6, 3}},
	{"bruises", 2,
		[]float64{6, 4}, []float64{3, 7}},
	{"odor", 9,
		// almond, anise, creosote, fishy, foul, musty, none, pungent, spicy
		// "none" carries mass in both classes, capping the odor-only
		// classifier near ~94% (the real attribute is slightly cleaner,
		// but residual class overlap keeps the MLP near the paper's
		// ~96.8% rather than saturating at 100%).
		[]float64{9, 9, 0.05, 0.05, 0.05, 0.3, 80, 0.05, 0.05},
		[]float64{0.3, 0.3, 5, 12, 45, 3, 12, 6, 8}},
	{"gill-attachment", 2,
		[]float64{1, 20}, []float64{0.3, 20}},
	{"gill-spacing", 2,
		[]float64{7, 3}, []float64{9, 1}},
	{"gill-size", 2,
		[]float64{7, 3}, []float64{3, 7}},
	{"gill-color", 12,
		[]float64{3, 1, 2, 4, 2, 5, 1, 4, 5, 4, 2, 1},
		[]float64{5, 4, 2, 3, 6, 2, 0.5, 2, 3, 2, 1, 0.5}},
	{"stalk-shape", 2,
		[]float64{4, 6}, []float64{5, 5}},
	{"stalk-root", 5,
		[]float64{4, 5, 3, 4, 2}, []float64{5, 3, 1, 2, 6}},
	{"stalk-surface-above-ring", 4,
		[]float64{7, 1, 1, 4}, []float64{3, 1, 6, 2}},
	{"stalk-surface-below-ring", 4,
		[]float64{7, 1, 1, 4}, []float64{3, 1, 6, 2}},
	{"stalk-color-above-ring", 9,
		[]float64{5, 1, 1, 2, 1, 6, 1, 1, 1}, []float64{4, 2, 2, 3, 1, 3, 1, 2, 1}},
	{"stalk-color-below-ring", 9,
		[]float64{5, 1, 1, 2, 1, 6, 1, 1, 1}, []float64{4, 2, 2, 3, 1, 3, 1, 2, 1}},
	{"veil-type", 1,
		[]float64{1}, []float64{1}},
	{"veil-color", 4,
		[]float64{1, 1, 20, 0.5}, []float64{0.5, 0.5, 20, 1}},
	{"ring-number", 3,
		[]float64{1, 16, 1}, []float64{1.5, 16, 0.2}},
	{"ring-type", 5,
		[]float64{1, 6, 0.5, 6, 1}, []float64{4, 2, 2, 3, 5}},
	{"spore-print-color", 9,
		// black, brown, buff, chocolate, green, orange, purple, white, yellow
		[]float64{18, 20, 1, 6, 0.1, 1, 1, 9, 1},
		[]float64{7, 6, 1, 14, 3, 0.3, 0.3, 16, 0.3}},
	{"population", 6,
		[]float64{1, 2, 3, 4, 6, 5}, []float64{1, 1, 1, 2, 8, 3}},
	{"habitat", 7,
		[]float64{5, 4, 3, 2, 1, 2, 3}, []float64{4, 3, 2, 1, 3, 2, 5}},
}

// MushroomSeed is the canonical generator seed.
const MushroomSeed = 0x8124

// MushroomOneHotDim is the one-hot encoded dimensionality of the schema.
func MushroomOneHotDim() int {
	dim := 0
	for _, f := range mushroomSchema {
		dim += f.card
	}
	return dim
}

// Mushroom generates the 8124-sample stand-in (4208 edible = class 0,
// 3916 poisonous = class 1) and one-hot encodes the 22 categorical
// attributes.
func Mushroom(seed uint64) *Dataset {
	r := rng.New(seed)
	d := &Dataset{Name: "Mushroom", NumClasses: 2}
	dim := MushroomOneHotDim()
	counts := []int{4208, 3916}
	for class, n := range counts {
		for i := 0; i < n; i++ {
			row := make([]float64, dim)
			off := 0
			for _, f := range mushroomSchema {
				weights := f.edible
				if class == 1 {
					weights = f.poisonous
				}
				cat := r.Categorical(weights)
				row[off+cat] = 1
				off += f.card
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, class)
		}
	}
	return d
}

// MushroomSplit returns the paper's split: 5416 train / 2708 inference.
func MushroomSplit(seed uint64) (train, test *Dataset) {
	return Mushroom(seed).Split(2708, seed^0x9e37)
}
