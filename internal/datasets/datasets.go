// Package datasets provides deterministic synthetic stand-ins for the
// three low-dimensional UCI datasets the paper evaluates on (Table II):
// Wisconsin Breast Cancer (569 samples, 30 features, 2 classes), Iris
// (150 samples, 4 features, 3 classes) and Mushroom (8124 samples, 22
// categorical features, 2 classes). The module is offline, so instead of
// shipping the UCI files we generate datasets with the published
// class-conditional feature statistics, identical sample counts and the
// paper's train/inference splits (379/190, 100/50, 5416/2708). What the
// experiments need from the data — dimensionality, feature-scale
// heterogeneity, class structure and difficulty — is preserved; see
// DESIGN.md §2 for the substitution rationale.
package datasets

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Dataset is a dense numeric classification dataset.
type Dataset struct {
	Name       string
	NumClasses int
	X          [][]float64
	Y          []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("datasets: %s: %d samples vs %d labels", d.Name, len(d.X), len(d.Y))
	}
	dim := d.Dim()
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("datasets: %s: row %d has %d features, want %d", d.Name, i, len(row), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("datasets: %s: label %d out of range at %d", d.Name, y, i)
		}
	}
	return nil
}

// Split deterministically shuffles and splits off the last testN samples
// (the paper's "inference size").
func (d *Dataset) Split(testN int, seed uint64) (train, test *Dataset) {
	if testN <= 0 || testN >= d.Len() {
		panic("datasets: bad test size")
	}
	r := rng.New(seed)
	perm := r.Perm(d.Len())
	mk := func(idx []int) *Dataset {
		out := &Dataset{Name: d.Name, NumClasses: d.NumClasses}
		for _, i := range idx {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
		return out
	}
	cut := d.Len() - testN
	return mk(perm[:cut]), mk(perm[cut:])
}

// Head returns a view of the first n samples (or the whole dataset when
// n <= 0 or n >= Len). Splits are pre-shuffled, so a head is an unbiased
// subsample; the unit tests use it to keep sweep runtimes small.
func (d *Dataset) Head(n int) *Dataset {
	if n <= 0 || n >= d.Len() {
		return d
	}
	return &Dataset{Name: d.Name, NumClasses: d.NumClasses, X: d.X[:n], Y: d.Y[:n]}
}

// ClassCounts tallies samples per class.
func (d *Dataset) ClassCounts() []int {
	c := make([]int, d.NumClasses)
	for _, y := range d.Y {
		c[y]++
	}
	return c
}

// Standardizer is a fitted per-feature affine normalisation z = (x-μ)/σ.
// The deployed Deep Positron networks fold this transform into their
// first-layer weights (training-time trick); keeping μ/σ explicit lets
// the experiments do that folding.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer estimates per-feature mean and standard deviation.
// Constant features get unit scale.
func FitStandardizer(train *Dataset) *Standardizer {
	dim := train.Dim()
	s := &Standardizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, row := range train.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(train.Len())
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range train.X {
		for j, v := range row {
			dlt := v - s.Mean[j]
			s.Std[j] += dlt * dlt
		}
	}
	for j := range s.Std {
		s.Std[j] = sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns a standardized copy of the dataset.
func (s *Standardizer) Apply(d *Dataset) *Dataset {
	dim := len(s.Mean)
	out := &Dataset{Name: d.Name, NumClasses: d.NumClasses, Y: d.Y}
	out.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		nr := make([]float64, dim)
		for j, v := range row {
			nr[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out.X[i] = nr
	}
	return out
}

// InputAffine returns the (scale, shift) pair such that z = scale·x +
// shift reproduces the standardization — the form consumed by
// nn.Network.FoldInputAffine.
func (s *Standardizer) InputAffine() (scale, shift []float64) {
	scale = make([]float64, len(s.Mean))
	shift = make([]float64, len(s.Mean))
	for j := range s.Mean {
		scale[j] = 1 / s.Std[j]
		shift[j] = -s.Mean[j] / s.Std[j]
	}
	return scale, shift
}

// Standardize fits on train and applies to both splits.
func Standardize(train, test *Dataset) (trainOut, testOut *Dataset) {
	s := FitStandardizer(train)
	return s.Apply(train), s.Apply(test)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
