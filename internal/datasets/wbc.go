package datasets

import "repro/internal/rng"

// WDBC base-feature statistics (the 10 cell-nucleus measurements; the
// full dataset reports mean / standard-error / worst for each, giving 30
// features). Values follow the published WDBC summary statistics, which
// are strongly heterogeneous in scale (area ~655 vs fractal dimension
// ~0.06) — the property that matters for the fixed-vs-posit comparison.
var wbcBase = []struct {
	name    string
	mean    float64 // population mean
	scale   float64 // population std
	loading float64 // correlation with malignancy severity
}{
	{"radius", 14.13, 3.52, 0.73},
	{"texture", 19.29, 4.30, 0.42},
	{"perimeter", 91.97, 24.30, 0.74},
	{"area", 654.89, 351.91, 0.71},
	{"smoothness", 0.096, 0.014, 0.36},
	{"compactness", 0.104, 0.053, 0.60},
	{"concavity", 0.089, 0.080, 0.70},
	{"concave_points", 0.049, 0.039, 0.78},
	{"symmetry", 0.181, 0.027, 0.33},
	{"fractal_dimension", 0.063, 0.007, 0.01},
}

// WBCSeed is the canonical generator seed.
const WBCSeed = 0x5690

// BreastCancer generates the 569-sample Wisconsin Diagnostic Breast
// Cancer stand-in: 357 benign (class 0) and 212 malignant (class 1)
// samples, 30 features (mean, SE, worst × 10 base measurements), driven
// by a latent severity factor with the published per-feature loadings.
func BreastCancer(seed uint64) *Dataset {
	r := rng.New(seed)
	d := &Dataset{Name: "WisconsinBreastCancer", NumClasses: 2}
	counts := []int{357, 212}
	for class, n := range counts {
		for i := 0; i < n; i++ {
			// latent severity: benign centred at -0.5, malignant at
			// +1.2 (in population-std units), overlapping tails keep
			// the task at the paper's ~90% float32 difficulty.
			var t float64
			if class == 0 {
				t = r.NormMS(-0.5, 0.6)
			} else {
				t = r.NormMS(1.2, 0.9)
			}
			row := make([]float64, 0, 30)
			// block 1: means of the 10 measurements
			for _, b := range wbcBase {
				z := b.loading*t + sqrt(1-b.loading*b.loading)*r.Norm()
				v := b.mean + b.scale*z
				if v < 0 {
					v = 0
				}
				row = append(row, v)
			}
			// block 2: standard errors (scaled-down, noisier echoes)
			for _, b := range wbcBase {
				l := b.loading * 0.5
				z := l*t + sqrt(1-l*l)*r.Norm()
				v := b.mean/10 + (b.scale/6)*z
				if v < 0 {
					v = 0
				}
				row = append(row, v)
			}
			// block 3: worst (largest) values — stronger loadings
			for _, b := range wbcBase {
				l := b.loading * 1.08
				if l > 0.95 {
					l = 0.95
				}
				z := l*t + sqrt(1-l*l)*r.Norm()
				v := b.mean*1.25 + b.scale*1.4*z
				if v < 0 {
					v = 0
				}
				row = append(row, v)
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, class)
		}
	}
	return d
}

// BreastCancerSplit returns the paper's split: 379 train / 190 inference.
func BreastCancerSplit(seed uint64) (train, test *Dataset) {
	return BreastCancer(seed).Split(190, seed^0x9e37)
}
