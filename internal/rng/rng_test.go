package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds should diverge")
	}
}

func TestKnownSplitMixVector(t *testing.T) {
	// SplitMix64 with seed 0: published first outputs.
	s := New(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("splitmix64(seed 0) output %d = %#x want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(11)
	counts := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Intn(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-float64(n)/10) > 500 {
			t.Errorf("digit %d count %d deviates", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(5)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v", variance)
	}
}

func TestNormMS(t *testing.T) {
	s := New(9)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.NormMS(5, 2)
	}
	if got := sum / float64(n); math.Abs(got-5) > 0.05 {
		t.Errorf("NormMS mean = %v", got)
	}
}

func TestCategorical(t *testing.T) {
	s := New(13)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 40000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Error("zero-weight category must never be drawn")
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Errorf("category ratio = %v want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	s := New(1)
	for _, w := range [][]float64{{}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) must panic", w)
				}
			}()
			s.Categorical(w)
		}()
	}
}

func TestPerm(t *testing.T) {
	s := New(17)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	s := New(19)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Error("shuffle must preserve elements")
	}
}

func TestFork(t *testing.T) {
	parent := New(23)
	a := parent.Fork(1)
	b := parent.Fork(2)
	if a.Uint64() == b.Uint64() {
		t.Error("forked streams with different labels should differ")
	}
}
