// Package rng provides a small deterministic pseudo-random source
// (SplitMix64) plus the Gaussian and categorical samplers the dataset
// generators and weight initializers need. Determinism across runs and
// platforms matters here: every experiment in EXPERIMENTS.md must
// regenerate bit-identical tables, so we avoid math/rand's unspecified
// cross-version behaviour and fix the algorithm ourselves.
package rng

import "math"

// Source is a deterministic SplitMix64 generator. The zero value is a
// valid generator seeded with 0; prefer New for clarity.
type Source struct {
	state uint64
	// cached spare Gaussian deviate from the Marsaglia polar method
	hasSpare bool
	spare    float64
}

// New returns a Source seeded deterministically.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free for our purposes: modulo bias is
	// irrelevant at n << 2^64 but we reject to stay exactly uniform.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Norm returns a standard Gaussian deviate via the Marsaglia polar method.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// NormMS returns a Gaussian deviate with the given mean and stddev.
func (s *Source) NormMS(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// Categorical samples an index from the (unnormalized, non-negative)
// weights. It panics if all weights are zero or any is negative.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	r := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via the swap callback.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child stream; streams forked with different
// labels are decorrelated even from the same parent.
func (s *Source) Fork(label uint64) *Source {
	mix := s.Uint64() ^ (label * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03
	return New(mix)
}
