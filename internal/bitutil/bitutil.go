// Package bitutil provides the small bit-level helpers shared by every
// number-system package in this repository: leading-zero detection (the
// hardware LZD block of the paper's Fig. 5), ceil-log2 sizing used by the
// accumulator-width equations (3) and (4), masking, and a bit writer that
// implements round-to-nearest-even at an arbitrary cut point.
package bitutil

import "math/bits"

// Clog2 returns ceil(log2(x)) for x >= 1. Clog2(1) == 0.
// It mirrors the clog2 function used throughout the paper's hardware
// descriptions to size counters and accumulators.
func Clog2(x uint64) uint {
	if x <= 1 {
		return 0
	}
	return uint(bits.Len64(x - 1))
}

// Mask returns a mask with the low w bits set. w must be <= 64.
// Mask(0) == 0 and Mask(64) == all ones.
func Mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Bit reports bit i of x as 0 or 1.
func Bit(x uint64, i uint) uint64 {
	return (x >> i) & 1
}

// LeadingZeros counts the number of leading zero bits within a w-bit field,
// exactly like the hardware leading-zero detector (LZD) in the posit decoder
// (Alg. 1 line 7). If the low w bits are all zero it returns w.
func LeadingZeros(x uint64, w uint) uint {
	x &= Mask(w)
	if x == 0 {
		return w
	}
	return w - uint(bits.Len64(x))
}

// Len returns the minimal number of bits needed to represent x
// (0 for x == 0). It is bits.Len64 re-exported for symmetry.
func Len(x uint64) uint {
	return uint(bits.Len64(x))
}

// AbsInt returns the absolute value of v as a uint64 along with the sign.
// Safe for math.MinInt64.
func AbsInt(v int64) (mag uint64, neg bool) {
	if v < 0 {
		return uint64(-v), true // two's complement wraps correctly for MinInt64
	}
	return uint64(v), false
}

// SignExtend interprets the low w bits of x as a two's-complement integer
// and sign-extends it to int64. w must be in [1,64].
func SignExtend(x uint64, w uint) int64 {
	if w >= 64 {
		return int64(x)
	}
	x &= Mask(w)
	sign := uint64(1) << (w - 1)
	return int64((x ^ sign)) - int64(sign)
}

// TwosComplement returns the two's complement of the low w bits of x,
// masked back to w bits.
func TwosComplement(x uint64, w uint) uint64 {
	return (^x + 1) & Mask(w)
}

// ShiftRightSticky shifts x right by s and reports whether any 1 bits were
// shifted out (the "sticky" condition used by round-to-nearest-even).
// s may exceed 64, in which case the result is 0 and sticky is x != 0.
func ShiftRightSticky(x uint64, s uint) (shifted uint64, sticky bool) {
	if s == 0 {
		return x, false
	}
	if s >= 64 {
		return 0, x != 0
	}
	return x >> s, x&Mask(s) != 0
}

// RoundNearestEven rounds the value whose kept bits are q, whose first
// discarded bit is guard, and whose remaining discarded bits OR to sticky.
// It returns q or q+1 per IEEE-754 round-to-nearest, ties-to-even — the
// rounding the paper mandates for both the float and posit EMAC outputs.
func RoundNearestEven(q uint64, guard, sticky bool) uint64 {
	if guard && (sticky || q&1 == 1) {
		return q + 1
	}
	return q
}
