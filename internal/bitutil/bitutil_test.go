package bitutil

import (
	"testing"
	"testing/quick"
)

func TestClog2(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {1 << 20, 20}, {(1 << 20) + 1, 21},
	}
	for _, c := range cases {
		if got := Clog2(c.in); got != c.want {
			t.Errorf("Clog2(%d) = %d want %d", c.in, got, c.want)
		}
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0)")
	}
	if Mask(1) != 1 {
		t.Error("Mask(1)")
	}
	if Mask(8) != 0xFF {
		t.Error("Mask(8)")
	}
	if Mask(64) != ^uint64(0) {
		t.Error("Mask(64)")
	}
	if Mask(65) != ^uint64(0) {
		t.Error("Mask(65) should clamp")
	}
}

func TestLeadingZeros(t *testing.T) {
	if got := LeadingZeros(0, 8); got != 8 {
		t.Errorf("LZ(0,8) = %d", got)
	}
	if got := LeadingZeros(1, 8); got != 7 {
		t.Errorf("LZ(1,8) = %d", got)
	}
	if got := LeadingZeros(0x80, 8); got != 0 {
		t.Errorf("LZ(0x80,8) = %d", got)
	}
	if got := LeadingZeros(0xFF00, 8); got != 8 {
		t.Errorf("LZ(0xFF00,8) = %d (high bits must be masked)", got)
	}
}

func TestSignExtend(t *testing.T) {
	if got := SignExtend(0xFF, 8); got != -1 {
		t.Errorf("SignExtend(0xFF,8) = %d", got)
	}
	if got := SignExtend(0x7F, 8); got != 127 {
		t.Errorf("SignExtend(0x7F,8) = %d", got)
	}
	if got := SignExtend(0x80, 8); got != -128 {
		t.Errorf("SignExtend(0x80,8) = %d", got)
	}
	if got := SignExtend(^uint64(0), 64); got != -1 {
		t.Errorf("SignExtend(all,64) = %d", got)
	}
}

func TestTwosComplement(t *testing.T) {
	if got := TwosComplement(1, 8); got != 0xFF {
		t.Errorf("TC(1,8) = %x", got)
	}
	if got := TwosComplement(0, 8); got != 0 {
		t.Errorf("TC(0,8) = %x", got)
	}
	if got := TwosComplement(0x80, 8); got != 0x80 {
		t.Errorf("TC(0x80,8) = %x (NaR is self-complement)", got)
	}
}

func TestPropTwosComplementInvolution(t *testing.T) {
	prop := func(x uint16) bool {
		v := uint64(x)
		return TwosComplement(TwosComplement(v, 16), 16) == v&Mask(16)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRightSticky(t *testing.T) {
	v, s := ShiftRightSticky(0b1011, 2)
	if v != 0b10 || !s {
		t.Errorf("got %b sticky=%v", v, s)
	}
	v, s = ShiftRightSticky(0b1000, 3)
	if v != 1 || s {
		t.Errorf("exact shift: got %b sticky=%v", v, s)
	}
	v, s = ShiftRightSticky(5, 100)
	if v != 0 || !s {
		t.Errorf("overshift: got %b sticky=%v", v, s)
	}
	v, s = ShiftRightSticky(0, 100)
	if v != 0 || s {
		t.Errorf("zero overshift: got %b sticky=%v", v, s)
	}
	v, s = ShiftRightSticky(7, 0)
	if v != 7 || s {
		t.Errorf("no-op shift: got %b sticky=%v", v, s)
	}
}

func TestRoundNearestEven(t *testing.T) {
	// (q, guard, sticky) -> expected
	cases := []struct {
		q             uint64
		guard, sticky bool
		want          uint64
	}{
		{4, false, false, 4},
		{4, false, true, 4},
		{4, true, false, 4}, // tie, even stays
		{5, true, false, 6}, // tie, odd rounds up
		{4, true, true, 5},  // above half
		{5, true, true, 6},
	}
	for _, c := range cases {
		if got := RoundNearestEven(c.q, c.guard, c.sticky); got != c.want {
			t.Errorf("RNE(%d,%v,%v) = %d want %d", c.q, c.guard, c.sticky, got, c.want)
		}
	}
}

func TestAbsInt(t *testing.T) {
	if m, n := AbsInt(-5); m != 5 || !n {
		t.Error("AbsInt(-5)")
	}
	if m, n := AbsInt(5); m != 5 || n {
		t.Error("AbsInt(5)")
	}
	if m, n := AbsInt(-9223372036854775808); m != 1<<63 || !n {
		t.Error("AbsInt(MinInt64)")
	}
}

func TestWriterBasic(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b1011, 4)
	pat, g, s := w.Finish()
	if pat != 0b1011 || g || s {
		t.Errorf("got %b %v %v", pat, g, s)
	}
}

func TestWriterGuardSticky(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b101101, 6) // 4 pattern + guard(0) + sticky(1)
	pat, g, s := w.Finish()
	if pat != 0b1011 || g || !s {
		t.Errorf("got %b guard=%v sticky=%v", pat, g, s)
	}
	w = NewWriter(4)
	w.WriteBits(0b10111, 5) // guard = 1, no sticky
	pat, g, s = w.Finish()
	if pat != 0b1011 || !g || s {
		t.Errorf("got %b guard=%v sticky=%v", pat, g, s)
	}
}

func TestWriterPadding(t *testing.T) {
	w := NewWriter(6)
	w.WriteBits(0b11, 2)
	pat, g, s := w.Finish()
	if pat != 0b110000 || g || s {
		t.Errorf("padding: got %b %v %v", pat, g, s)
	}
}

func TestWriterRuns(t *testing.T) {
	w := NewWriter(5)
	w.WriteRun(1, 3)
	w.WriteRun(0, 2)
	w.WriteRun(1, 10) // 5 pattern bits used; guard takes 1; rest sticky
	pat, g, s := w.Finish()
	if pat != 0b11100 || !g || !s {
		t.Errorf("runs: got %05b guard=%v sticky=%v", pat, g, s)
	}
}

func TestWriterRound(t *testing.T) {
	// 0b0111 + guard=1 + sticky -> rounds to 0b1000
	w := NewWriter(4)
	w.WriteBits(0b01111, 5)
	w.StickyOr(true)
	if got := w.Round(); got != 0b1000 {
		t.Errorf("Round = %b", got)
	}
	// tie to even: 0b0101 + guard, no sticky -> 0b0110
	w = NewWriter(4)
	w.WriteBits(0b01011, 5)
	if got := w.Round(); got != 0b0110 {
		t.Errorf("tie round = %b", got)
	}
	// overflow: 0b1111 + guard -> 0b10000 (caller clamps)
	w = NewWriter(4)
	w.WriteBits(0b11111, 5)
	w.StickyOr(true)
	if got := w.Round(); got != 0b10000 {
		t.Errorf("overflow round = %b", got)
	}
}

func TestWriterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 64 must panic")
		}
	}()
	NewWriter(64)
}
