package bitutil

// Writer assembles a fixed-width bit pattern most-significant-bit first and
// tracks the guard and sticky information for everything that falls off the
// end. It is the software analogue of the shift-and-round datapath at the
// tail of the paper's Algorithm 2 ("Convergent Rounding & Encoding"): the
// regime, exponent and fraction fields are streamed in, the first Width bits
// are kept, the next bit becomes the round (guard) bit, and all later bits
// collapse into sticky.
type Writer struct {
	width  uint   // number of pattern bits to keep
	acc    uint64 // pattern bits followed by the guard bit (width+1 total)
	n      uint   // bits accepted so far, capped at width+1
	sticky bool
}

// NewWriter returns a Writer that keeps width pattern bits plus one guard
// bit. width must be <= 63.
func NewWriter(width uint) *Writer {
	if width > 63 {
		panic("bitutil: Writer width must be <= 63")
	}
	return &Writer{width: width}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint64) {
	b &= 1
	if w.n < w.width+1 {
		w.acc = w.acc<<1 | b
		w.n++
		return
	}
	if b != 0 {
		w.sticky = true
	}
}

// WriteBits appends the low count bits of v, most significant first.
// count must be <= 64.
func (w *Writer) WriteBits(v uint64, count uint) {
	if count > 64 {
		panic("bitutil: WriteBits count must be <= 64")
	}
	for i := int(count) - 1; i >= 0; i-- {
		w.WriteBit(v >> uint(i))
	}
}

// WriteRun appends count copies of bit b. Large runs are handled without
// looping once the writer is saturated.
func (w *Writer) WriteRun(b uint64, count uint) {
	b &= 1
	for count > 0 && w.n < w.width+1 {
		w.WriteBit(b)
		count--
	}
	if count > 0 && b != 0 {
		w.sticky = true
	}
}

// StickyOr merges an externally computed sticky condition (for example,
// fraction bits that were pre-truncated before streaming).
func (w *Writer) StickyOr(s bool) {
	if s {
		w.sticky = true
	}
}

// Finish pads with zeros to the full width and returns the pattern, the
// guard bit and the sticky flag. The pattern occupies the low width bits.
func (w *Writer) Finish() (pattern uint64, guard, sticky bool) {
	for w.n < w.width+1 {
		w.acc <<= 1
		w.n++
	}
	pattern = (w.acc >> 1) & Mask(w.width)
	guard = w.acc&1 == 1
	return pattern, guard, w.sticky
}

// Round completes the writer and applies round-to-nearest-even, returning
// the rounded pattern. The pattern may overflow into bit `width` (e.g.
// 0111 -> 1000); callers clamp per their format's saturation rule.
func (w *Writer) Round() uint64 {
	pattern, guard, sticky := w.Finish()
	return RoundNearestEven(pattern, guard, sticky)
}
