package tabulate

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("My Table", "name", "value")
	tab.Add("alpha", 1)
	tab.Add("beta", 2.5)
	tab.AddStrings("gamma", "x")
	s := tab.String()
	if !strings.Contains(s, "My Table") {
		t.Error("missing title")
	}
	for _, want := range []string{"name", "value", "alpha", "beta", "2.5", "gamma"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableAlignment(t *testing.T) {
	tab := New("", "a", "b")
	tab.Add("short", "x")
	tab.Add("muchlongervalue", "y")
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	// column b starts at the same offset on both data rows
	r1, r2 := lines[len(lines)-2], lines[len(lines)-1]
	if strings.Index(r1, "x") != strings.Index(r2, "y") {
		t.Errorf("columns misaligned:\n%s\n%s", r1, r2)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := New("", "v")
	tab.Add(0.123456789)
	if !strings.Contains(tab.String(), "0.1235") {
		t.Errorf("float not compacted: %s", tab.String())
	}
}

func TestFigureRendering(t *testing.T) {
	fig := NewFigure("F", "xs", "ys")
	fig.AddSeries("s1", []float64{1, 2}, []float64{10, 20})
	fig.AddSeries("s2", []float64{3}, []float64{30})
	s := fig.String()
	for _, want := range []string{"F", "xs", "ys", `"s1"`, `"s2"`, "10", "30"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %s", want, s)
		}
	}
	if len(fig.Series) != 2 {
		t.Error("series count")
	}
}

func TestRaggedRows(t *testing.T) {
	tab := New("", "a")
	tab.AddStrings("1", "2", "3") // more cells than headers must not panic
	if !strings.Contains(tab.String(), "3") {
		t.Error("extra cells dropped")
	}
}
