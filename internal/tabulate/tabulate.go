// Package tabulate renders plain-text tables and simple ASCII scatter
// series — the output surface for every regenerated table and figure.
package tabulate

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddStrings appends a pre-formatted row.
func (t *Table) AddStrings(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one named (x, y) sequence of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series with axis labels, rendered as the numeric
// rows a plotting tool would consume plus a coarse ASCII scatter.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a named series.
func (f *Figure) AddSeries(name string, x, y []float64) *Series {
	s := &Series{Name: name, X: x, Y: y}
	f.Series = append(f.Series, s)
	return s
}

// String renders the per-series rows.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  x: %s\n  y: %s\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  series %q:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "    %12.5g  %12.5g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}
