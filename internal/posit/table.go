package posit

// Precomputed fast paths for small formats. An n-bit posit has only 2^n
// patterns, so for the formats the paper actually runs (n <= 8, and
// anything up to n = 12) decode is a table lookup, and for n <= 8 whole
// binary operations collapse into 2^n × 2^n result tables — the same
// precomputation trick SoftPosit-style libraries and posit softcores use.
// Tables are built lazily on first use and cached per (n, es) for the
// lifetime of the process. Decode tables are built from the bit-serial
// reference decoder; operation tables are built from the direct (untabled)
// Mul/Add implementations, whose own encode step is independently checked
// against the bit-serial reference encoder by the exhaustive equivalence
// tests.
//
// Memory cost per format: a decode table is 4·2^n bytes (16 KiB at the
// n = 12 ceiling); each operation table is 2^(2n) bytes (64 KiB per op at
// n = 8). A full §IV-B sweep (n in [5,8], es in [0,3]) tops out around
// 2 MiB of tables process-wide.

import (
	"sync"
	"sync/atomic"
)

const (
	// decTabMaxN is the widest format that gets a decode table; wider
	// formats use the LZC decoder.
	decTabMaxN = 12
	// opTabMaxN is the widest format that gets full Mul/Add result
	// tables (64 KiB per op at n = 8; n = 9 would already cost 256 KiB).
	opTabMaxN = 8
)

// A decode-table entry packs one decoded pattern into a uint32:
//
//	bits  0-15  sig  (significand with hidden bit; < 2^12 at n = 12)
//	bits 16-25  sf + decSFBias (10 bits; |sf| <= 352 at n = 12, es = 5)
//	bits 26-29  sigW - 1 (4 bits; sigW <= 12)
//	bit  30     NaR marker (whole entry == decNaREntry)
//	bit  31     sign
//
// The zero pattern packs to 0 (sig = 0 is impossible for a real value),
// so kernels can classify zero/NaR/real from the entry alone.
const (
	decSFBias   = 512
	decSFShift  = 16
	decSFMask   = 0x3FF
	decSigMask  = 0xFFFF
	decWShift   = 26
	decWMask    = 0xF
	decNaREntry = uint32(1) << 30
	decSignBit  = uint32(1) << 31
)

// packDec packs a decoded value into a table entry.
func packDec(d decoded) uint32 {
	e := uint32(d.sig) & decSigMask
	e |= uint32(d.sf+decSFBias) << decSFShift
	e |= uint32(d.sigW-1) << decWShift
	if d.sign {
		e |= decSignBit
	}
	return e
}

// unpackDec is the inverse of packDec.
func unpackDec(e uint32) decoded {
	return decoded{
		sign: e&decSignBit != 0,
		sf:   int((e>>decSFShift)&decSFMask) - decSFBias,
		sig:  uint64(e & decSigMask),
		sigW: uint((e>>decWShift)&decWMask) + 1,
	}
}

// Table caches, indexed by (n, es). Pointers are published atomically so
// the hot paths pay one atomic load; the build itself is serialized by
// tabMu (a duplicate build would be harmless but wasteful).
var (
	tabMu   sync.Mutex
	decTabs [decTabMaxN + 1][MaxES + 1]atomic.Pointer[[]uint32]
	mulTabs [opTabMaxN + 1][MaxES + 1]atomic.Pointer[[]uint8]
	addTabs [opTabMaxN + 1][MaxES + 1]atomic.Pointer[[]uint8]
	// termTabs holds the batched kernels' signed MAC-term tables (see
	// batchkernel.go): 2^n × 256 int64 entries per format.
	termTabs [opTabMaxN + 1][MaxES + 1]atomic.Pointer[[]int64]
)

// decTab returns the decode table for f, building it on first use, or nil
// when f is too wide for one.
func (f Format) decTab() []uint32 {
	if f.n > decTabMaxN {
		return nil
	}
	if p := decTabs[f.n][f.es].Load(); p != nil {
		return *p
	}
	return f.buildDecTab()
}

func (f Format) buildDecTab() []uint32 {
	tabMu.Lock()
	defer tabMu.Unlock()
	if p := decTabs[f.n][f.es].Load(); p != nil {
		return *p
	}
	t := make([]uint32, uint64(1)<<f.n)
	nar := f.signBit()
	for bits := uint64(0); bits < uint64(len(t)); bits++ {
		switch bits {
		case 0:
			t[bits] = 0
		case nar:
			t[bits] = decNaREntry
		default:
			t[bits] = packDec(Posit{f: f, bits: bits}.decodeRef())
		}
	}
	decTabs[f.n][f.es].Store(&t)
	return t
}

// mulTab returns the full 2^n × 2^n multiplication table for f (result
// pattern indexed by p.bits<<n | q.bits), or nil when f is too wide.
func (f Format) mulTab() []uint8 {
	if f.n > opTabMaxN {
		return nil
	}
	if p := mulTabs[f.n][f.es].Load(); p != nil {
		return *p
	}
	return f.buildOpTab(&mulTabs[f.n][f.es], Posit.mulRef)
}

// addTab is mulTab's addition counterpart.
func (f Format) addTab() []uint8 {
	if f.n > opTabMaxN {
		return nil
	}
	if p := addTabs[f.n][f.es].Load(); p != nil {
		return *p
	}
	return f.buildOpTab(&addTabs[f.n][f.es], Posit.addRef)
}

func (f Format) buildOpTab(slot *atomic.Pointer[[]uint8], op func(Posit, Posit) Posit) []uint8 {
	// Build the decode table first: op runs decode(), and tabMu is not
	// reentrant.
	f.decTab()
	tabMu.Lock()
	defer tabMu.Unlock()
	if p := slot.Load(); p != nil {
		return *p
	}
	count := uint64(1) << f.n
	t := make([]uint8, count*count)
	for a := uint64(0); a < count; a++ {
		pa := Posit{f: f, bits: a}
		row := t[a<<f.n : (a+1)<<f.n]
		for b := uint64(0); b < count; b++ {
			row[b] = uint8(op(pa, Posit{f: f, bits: b}).bits)
		}
	}
	slot.Store(&t)
	return t
}

// pdec is a pre-decoded operand for the batched kernels: everything a MAC
// needs, with the per-operand decode hoisted out of the accumulation loop.
// Zero and NaR carry sig = 0 so they contribute nothing when a branchless
// loop accumulates them anyway; cls distinguishes them where it matters.
type pdec struct {
	sig uint64 // significand with hidden bit (0 for zero/NaR)
	sgn uint64 // sign as a XOR mask: 0 positive, ^0 negative
	adj int32  // scale of sig's LSB: sf - (sigW - 1)
	cls uint8  // pdReal, pdZero or pdNaR
}

const (
	pdReal = iota
	pdZero
	pdNaR
)

// macEntry derives the MAC inputs for a pair of packed decode-table
// entries: the significand product, its register shift at fraction depth
// fb, and the sign as a XOR mask. This is the only place outside
// packDec/unpackDec that knows the entry layout; zero/NaR entries
// (sig = 0) yield prod = 0 and so accumulate nothing wherever the caller
// uses the result branchlessly.
func macEntry(ew, ea uint32, fb int) (prod uint64, shift uint, sm uint64) {
	prod = uint64(ew&decSigMask) * uint64(ea&decSigMask)
	// LSB weight of the product: sf_w+sf_a-(w_w-1)-(w_a-1); always at or
	// above bit 0 of an exact register for real operands.
	adj := int(ew>>decSFShift&decSFMask) + int(ea>>decSFShift&decSFMask) -
		2*decSFBias - int(ew>>decWShift&decWMask) - int(ea>>decWShift&decWMask)
	shift = uint(fb + adj)
	sm = -uint64((ew ^ ea) >> 31)
	return prod, shift, sm
}

// predecodeBits classifies and decodes one n-bit pattern. t is f's decode
// table (may be nil for wide formats).
func predecodeBits(f Format, t []uint32, bits uint64) pdec {
	var d decoded
	if t != nil {
		e := t[bits]
		if e == 0 {
			return pdec{cls: pdZero}
		}
		if e == decNaREntry {
			return pdec{cls: pdNaR}
		}
		d = unpackDec(e)
	} else {
		p := Posit{f: f, bits: bits}
		if bits == 0 {
			return pdec{cls: pdZero}
		}
		if p.IsNaR() {
			return pdec{cls: pdNaR}
		}
		d = p.decodeLZC()
	}
	out := pdec{
		sig: d.sig,
		adj: int32(d.sf) - int32(d.sigW) + 1,
		cls: pdReal,
	}
	if d.sign {
		out.sgn = ^uint64(0)
	}
	return out
}

// predecodeInto decodes every element of ps into dst (len(dst) must equal
// len(ps)); all elements must share format f.
func predecodeInto(dst []pdec, ps []Posit, f Format) {
	t := f.decTab()
	for i, p := range ps {
		if p.f != f {
			panic("posit: mixed formats in kernel operand")
		}
		dst[i] = predecodeBits(f, t, p.bits)
	}
}

// WarmTables eagerly builds the decode and operation tables for f (a
// no-op for formats wider than the table ceilings). Callers that care
// about first-inference latency can warm formats up front instead of
// paying the lazy build on the first arithmetic op.
func WarmTables(f Format) {
	f.mustValid()
	f.decTab()
	f.mulTab()
	f.addTab()
}

// TableMemoryBytes reports the memory the fast-path tables for f occupy
// once built: the decode table plus both operation tables (0 for formats
// above the table ceilings).
func TableMemoryBytes(f Format) int {
	f.mustValid()
	total := 0
	if f.n <= decTabMaxN {
		total += 4 << f.n
	}
	if f.n <= opTabMaxN {
		total += 2 << (2 * f.n)
	}
	return total
}
