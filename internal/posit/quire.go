package posit

import (
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/dyadic"
	"repro/internal/wide"
)

// QuireSize returns the accumulator width of eq. (4) of the paper:
//
//	qsize = 2^(es+2) × (n-2) + 2 + ceil(log2(k)),   n >= 3
//
// wide enough to hold the exact sum of k products of posits without any
// rounding: 2^(es+1)(n-2) fraction bits (down to minpos²), the same again
// in integer bits (up to maxpos²), a sign bit, and ceil(log2 k) carry bits.
func QuireSize(f Format, k int) uint {
	f.mustValid()
	if k < 1 {
		panic("posit: quire capacity must be >= 1")
	}
	return (uint(1)<<(f.es+2))*(f.n-2) + 2 + bitutil.Clog2(uint64(k))
}

// regWords is the word count of the inline register fast path: registers
// up to regWords×64 bits live directly inside the Quire struct (no heap
// words, no per-word loop bounds from a slice). Every format the paper
// evaluates fits — posit(8,2) with k = 2^30 needs 128 bits, posit(16,2)
// needs 226+clog2(k) — so the generic wide.Int register is only reached
// by 32-bit formats and enormous capacities.
const regWords = 4

// Quire is the posit Kulisch accumulator: a wide two's-complement
// fixed-point register into which exact products of posits are added, with
// a single round-to-nearest-even when the final value is read out. It
// implements the accumulation loop of the paper's Algorithm 2
// (lines 11-19) in software, bit-for-bit.
//
// Registers of at most 64·regWords bits are stored inline in the struct
// (the common case: every small-format quire), so a Quire value on the
// stack accumulates without touching the heap; wider registers fall back
// to a heap-backed wide.Int. Both paths wrap modulo 2^width, exactly like
// the synthesized register.
type Quire struct {
	f        Format
	capacity int
	fracBits uint // position of the binary point: 2^(es+1)(n-2)
	width    uint // register width in bits (eq. (4), minus dropped)
	words    int  // inline words in use (0 selects the wide fallback)
	sw       [regWords]uint64
	acc      *wide.Int // wide fallback register (nil on the inline path)
	adds     int
	nar      bool
	// dropped counts fraction bits removed from the bottom of the
	// register (0 for the exact eq.-(4) quire; >0 for the truncated
	// ablation variant). Product bits below the register floor are
	// discarded, exactly as narrower hardware would.
	dropped uint
}

// NewQuire returns an empty quire for format f sized for k accumulations.
func NewQuire(f Format, k int) *Quire {
	q := &Quire{}
	q.init(f, k, 0)
	return q
}

// NewTruncatedQuire returns the ablation variant: a register shortened by
// `drop` fraction bits at the bottom. Products contributing only below
// the register floor vanish, and partial products lose their low bits —
// the accuracy/area trade-off hardware designers take when the full
// eq.-(4) width (e.g. 103 bits for posit(8,2), k=32) is too expensive.
// drop must be less than the fraction depth 2^(es+1)(n-2).
func NewTruncatedQuire(f Format, k int, drop uint) *Quire {
	frac := (uint(1) << (f.es + 1)) * (f.n - 2)
	if drop >= frac {
		panic("posit: truncated quire would drop all fraction bits")
	}
	q := &Quire{}
	q.init(f, k, drop)
	return q
}

// init configures q in place (the allocation-free constructor behind
// NewQuire, used directly by the vector kernels for stack quires).
func (q *Quire) init(f Format, k int, drop uint) {
	f.mustValid()
	width := QuireSize(f, k) - drop
	*q = Quire{
		f:        f,
		capacity: k,
		fracBits: (uint(1)<<(f.es+1))*(f.n-2) - drop,
		width:    width,
		dropped:  drop,
	}
	if width <= regWords*64 {
		q.words = int((width + 63) / 64)
	} else {
		q.acc = wide.New(width)
	}
}

// Dropped returns the number of truncated low fraction bits (0 for the
// exact quire).
func (q *Quire) Dropped() uint { return q.dropped }

// Format returns the posit format this quire accumulates.
func (q *Quire) Format() Format { return q.f }

// Capacity returns the number of accumulations the register was sized for.
func (q *Quire) Capacity() int { return q.capacity }

// Width returns the register width in bits (eq. (4)).
func (q *Quire) Width() uint { return q.width }

// Adds returns how many accumulation operations have been performed since
// the last Reset.
func (q *Quire) Adds() int { return q.adds }

// IsNaR reports whether a NaR has been absorbed.
func (q *Quire) IsNaR() bool { return q.nar }

// Reset clears the accumulator to zero.
func (q *Quire) Reset() {
	if q.words > 0 {
		q.sw = [regWords]uint64{}
	} else {
		q.acc.SetZero()
	}
	q.adds = 0
	q.nar = false
}

// ResetToBias clears the accumulator and preloads it with the fixed-point
// representation of the bias posit — the paper's trick of resetting the
// accumulation flip-flop to the bias so products accumulate on top of it.
func (q *Quire) ResetToBias(bias Posit) {
	q.Reset()
	q.AddPosit(bias)
	q.adds = 0
}

// --- inline register primitives ---

// snorm masks the top inline word so the register stays canonical
// (wrapping modulo 2^width, like the hardware register and wide.Int).
func (q *Quire) snorm() {
	if r := q.width % 64; r != 0 {
		q.sw[q.words-1] &= bitutil.Mask(r)
	}
}

// saddShifted adds v << shift into the inline register (mod 2^width).
func (q *Quire) saddShifted(v uint64, shift uint) {
	word := int(shift / 64)
	if word >= q.words {
		return // entirely above the register: hardware would drop it
	}
	off := shift % 64
	lo := v << off
	var hi uint64
	if off != 0 {
		hi = v >> (64 - off)
	}
	var carry uint64
	q.sw[word], carry = bits.Add64(q.sw[word], lo, 0)
	for i := word + 1; i < q.words; i++ {
		add := carry
		if i == word+1 {
			q.sw[i], carry = bits.Add64(q.sw[i], hi, add)
		} else {
			if add == 0 {
				break
			}
			q.sw[i], carry = bits.Add64(q.sw[i], 0, add)
		}
	}
	q.snorm()
}

// ssubShifted subtracts v << shift from the inline register (mod 2^width).
func (q *Quire) ssubShifted(v uint64, shift uint) {
	word := int(shift / 64)
	if word >= q.words {
		return
	}
	off := shift % 64
	lo := v << off
	var hi uint64
	if off != 0 {
		hi = v >> (64 - off)
	}
	var borrow uint64
	q.sw[word], borrow = bits.Sub64(q.sw[word], lo, 0)
	for i := word + 1; i < q.words; i++ {
		sub := borrow
		if i == word+1 {
			q.sw[i], borrow = bits.Sub64(q.sw[i], hi, sub)
		} else {
			if sub == 0 {
				break
			}
			q.sw[i], borrow = bits.Sub64(q.sw[i], 0, sub)
		}
	}
	q.snorm()
}

// smallWords returns the inline word count when the register qualifies
// for the local-accumulator fast tiers (1 or 2 words), and 0 otherwise —
// including the wide heap fallback (words == 0), which the tiers must
// never touch. Every fast-tier guard goes through this one predicate so
// the call sites cannot diverge.
func (q *Quire) smallWords() int {
	if q.words >= 1 && q.words <= 2 {
		return q.words
	}
	return 0
}

// addShifted dispatches v << shift to the active register.
func (q *Quire) addShifted(v uint64, shift uint) {
	if q.words > 0 {
		q.saddShifted(v, shift)
	} else {
		q.acc.AddUint64Shifted(v, shift)
	}
}

// subShifted dispatches -(v << shift) to the active register.
func (q *Quire) subShifted(v uint64, shift uint) {
	if q.words > 0 {
		q.ssubShifted(v, shift)
	} else {
		q.acc.SubUint64Shifted(v, shift)
	}
}

// --- accumulation ---

// AddPosit accumulates the exact value of p into the register.
func (q *Quire) AddPosit(p Posit) {
	if p.f != q.f {
		panic("posit: quire format mismatch")
	}
	if p.IsNaR() {
		q.nar = true
		return
	}
	q.adds++
	if p.bits == 0 {
		return
	}
	d := p.decode()
	sig, shift, ok := q.place(d.sig, d.sf-int(d.sigW)+1)
	if !ok {
		return
	}
	if d.sign {
		q.subShifted(sig, shift)
	} else {
		q.addShifted(sig, shift)
	}
}

// place aligns a magnitude with LSB scale lsbScale to the register,
// truncating below the register floor when the quire is the shortened
// ablation variant. ok reports whether anything remains to add.
func (q *Quire) place(sig uint64, lsbScale int) (uint64, uint, bool) {
	shift := int(q.fracBits) + lsbScale
	if shift >= 0 {
		return sig, uint(shift), sig != 0
	}
	if q.dropped == 0 {
		panic("posit: quire shift underflow") // impossible for the exact quire
	}
	s := uint(-shift)
	if s >= 64 {
		return 0, 0, false
	}
	sig >>= s // magnitude truncation: low bits fall below the floor
	return sig, 0, sig != 0
}

// MulAdd accumulates the exact product w × a into the register: the
// multiplication stage (Alg. 2 lines 6-10) followed by fixed-point
// conversion and wide addition (lines 11-14). No rounding occurs.
func (q *Quire) MulAdd(w, a Posit) {
	if w.f != q.f || a.f != q.f {
		panic("posit: quire format mismatch")
	}
	if w.IsNaR() || a.IsNaR() {
		q.nar = true
		return
	}
	q.adds++
	if w.bits == 0 || a.bits == 0 {
		return
	}
	dw, da := w.decode(), a.decode()
	prod := dw.sig * da.sig
	// LSB weight of the product: 2^(sf_w - (w_w-1) + sf_a - (w_a-1)).
	lsbScale := dw.sf - int(dw.sigW) + 1 + da.sf - int(da.sigW) + 1
	sig, shift, ok := q.place(prod, lsbScale)
	if !ok {
		return
	}
	if dw.sign != da.sign {
		q.subShifted(sig, shift)
	} else {
		q.addShifted(sig, shift)
	}
}

// mulAddPre is MulAdd on pre-decoded operands: the batched-kernel hot
// path, with no format checks and no decode (both were hoisted to
// predecodeInto). Bit-identical to MulAdd on the same operands.
func (q *Quire) mulAddPre(w, a *pdec) {
	if w.cls != pdReal || a.cls != pdReal {
		if w.cls == pdNaR || a.cls == pdNaR {
			q.nar = true
			return
		}
		q.adds++ // one of them is zero
		return
	}
	q.adds++
	sig, shift, ok := q.place(w.sig*a.sig, int(w.adj)+int(a.adj))
	if !ok {
		return
	}
	if w.sgn != a.sgn {
		q.subShifted(sig, shift)
	} else {
		q.addShifted(sig, shift)
	}
}

// addPre is AddPosit on a pre-decoded operand.
func (q *Quire) addPre(a *pdec) {
	if a.cls != pdReal {
		if a.cls == pdNaR {
			q.nar = true
			return
		}
		q.adds++
		return
	}
	q.adds++
	sig, shift, ok := q.place(a.sig, int(a.adj))
	if !ok {
		return
	}
	if a.sgn != 0 {
		q.subShifted(sig, shift)
	} else {
		q.addShifted(sig, shift)
	}
}

// SubPosit accumulates -p.
func (q *Quire) SubPosit(p Posit) { q.AddPosit(p.Neg()) }

// Result rounds the accumulated value to the nearest posit — the single
// rounding of the exact dot product (Alg. 2 lines 15-43).
func (q *Quire) Result() Posit {
	if q.nar {
		return q.f.NaR()
	}
	if q.words > 0 {
		return q.resultInline()
	}
	if q.acc.IsZero() {
		return q.f.Zero()
	}
	mag := q.acc.Clone()
	sign := mag.Sign()
	if sign {
		mag.Neg()
	}
	l := mag.Len() // MSB position + 1 (Alg. 2 line 17: LZD)
	var count uint = 64
	if l < count {
		count = l
	}
	sig := mag.Extract(l-count, count)
	sticky := mag.AnyBelow(l - count)
	sf := int(l) - 1 - int(q.fracBits)
	return q.f.encode(sign, sf, sig, count, sticky)
}

// magnitude returns a copy of the inline register as (magnitude, sign):
// the two's-complement negation applied when the sign bit is set. Shared
// by the rounding path and the big.Int oracle view so the two can never
// disagree on the negation.
func (q *Quire) magnitude() ([regWords]uint64, bool) {
	mag := q.sw
	neg := false
	if r := (q.width - 1) % 64; mag[q.words-1]>>r&1 == 1 {
		neg = true
		var carry uint64 = 1
		for i := 0; i < q.words; i++ {
			mag[i], carry = bits.Add64(^mag[i], 0, carry)
		}
		if r := q.width % 64; r != 0 {
			mag[q.words-1] &= bitutil.Mask(r)
		}
	}
	return mag, neg
}

// resultInline is Result for the inline register: the same LZD, extract
// and sticky steps on the [regWords]uint64 copy, with no heap traffic.
func (q *Quire) resultInline() Posit {
	if q.words == 1 {
		// Single-word register: the magnitude fits a uint64 outright,
		// so the significand needs no extraction and sticky is empty.
		v := q.sw[0]
		sign := v>>(q.width-1)&1 == 1
		if sign {
			v = -v & bitutil.Mask(q.width)
		}
		if v == 0 {
			return q.f.Zero()
		}
		l := uint(bits.Len64(v))
		return q.f.encode(sign, int(l)-1-int(q.fracBits), v, l, false)
	}
	mag, sign := q.magnitude()
	// LZD: highest set word
	l := uint(0)
	for i := q.words - 1; i >= 0; i-- {
		if mag[i] != 0 {
			l = uint(i*64 + bits.Len64(mag[i]))
			break
		}
	}
	if l == 0 {
		return q.f.Zero()
	}
	var count uint = 64
	if l < count {
		count = l
	}
	lo := l - count
	// extract count bits starting at lo (spans at most two words)
	word, off := lo/64, lo%64
	sig := mag[word] >> off
	if off != 0 && int(word+1) < q.words {
		sig |= mag[word+1] << (64 - off)
	}
	if count < 64 {
		sig &= bitutil.Mask(count)
	}
	// sticky: any bit strictly below lo
	sticky := false
	for i := uint(0); i < word; i++ {
		if mag[i] != 0 {
			sticky = true
			break
		}
	}
	if !sticky && off != 0 && mag[word]&bitutil.Mask(off) != 0 {
		sticky = true
	}
	sf := int(l) - 1 - int(q.fracBits)
	return q.f.encode(sign, sf, sig, count, sticky)
}

// bigValue returns the signed register contents as a big.Int.
func (q *Quire) bigValue() *big.Int {
	if q.words == 0 {
		return q.acc.Big()
	}
	mag, neg := q.magnitude()
	out := new(big.Int)
	for i := q.words - 1; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Or(out, new(big.Int).SetUint64(mag[i]))
	}
	if neg {
		out.Neg(out)
	}
	return out
}

// Float64 returns the current exact register value as a float64 (rounded
// to double, for diagnostics).
func (q *Quire) Float64() float64 {
	f := new(big.Float).SetPrec(256).SetInt(q.bigValue())
	f.SetMantExp(f, -int(q.fracBits)) // value = acc × 2^-fracBits
	out, _ := f.Float64()
	return out
}

// Dyadic returns the current exact register value as a dyadic rational,
// used by the oracle tests to check that the quire really is exact.
func (q *Quire) Dyadic() dyadic.D {
	return dyadic.FromBig(q.bigValue(), -int(q.fracBits))
}

// DotProduct computes the exactly-rounded dot product of two posit
// vectors: Σ w[i]·a[i] with one rounding at the end. For every small
// format the accumulator is an inline register on the stack and each
// operand decodes through the format table, so the loop performs no heap
// allocation at all.
func DotProduct(w, a []Posit) Posit {
	if len(w) != len(a) {
		panic("posit: DotProduct length mismatch")
	}
	if len(w) == 0 {
		panic("posit: DotProduct of empty vectors")
	}
	f := w[0].f
	var q Quire
	q.init(f, len(w), 0)
	if t := f.decTab(); t != nil && q.smallWords() > 0 {
		// Table fast path: fetch the decode table once for the whole
		// kernel and run the MAC loop directly on packed entries into a
		// local register — no per-MAC decode call, no function calls, no
		// allocation. Every standard small format lands here (es <= 2
		// registers fit 128 bits at any realistic k). The bits&m mask
		// proves the table index in range, eliding the bounds check.
		// The loops are branchless: zero and NaR entries carry sig = 0,
		// so they accumulate nothing; NaR markers are OR-collected and
		// checked once at the end, and the sign applies as a XOR mask.
		fb := int(q.fracBits)
		m := uint64(len(t) - 1)
		var narAcc uint32
		if q.words == 1 {
			// Single-word tier: the whole register is one uint64
			// (posit(8,0) needs 34 bits, posit(8,1) 50), so a MAC is
			// two loads, one multiply, one shift and one add.
			var acc uint64
			for i := range w {
				if w[i].f != f || a[i].f != f {
					panic("posit: quire format mismatch")
				}
				ew, ea := t[w[i].bits&m], t[a[i].bits&m]
				narAcc |= (ew | ea) & decNaREntry
				prod, shift, sm := macEntry(ew, ea, fb)
				v := prod << shift
				acc += (v ^ sm) - sm
			}
			if narAcc != 0 {
				return f.NaR()
			}
			q.adds = len(w)
			q.sw[0] = acc
			q.snorm()
			return q.Result()
		}
		var a0, a1 uint64
		for i := range w {
			if w[i].f != f || a[i].f != f {
				panic("posit: quire format mismatch")
			}
			ew, ea := t[w[i].bits&m], t[a[i].bits&m]
			narAcc |= (ew | ea) & decNaREntry
			prod, shift, sm := macEntry(ew, ea, fb)
			a0, a1 = accSigned128(a0, a1, prod, shift, sm)
		}
		if narAcc != 0 {
			return f.NaR()
		}
		q.adds = len(w)
		q.sw[0], q.sw[1] = a0, a1
		q.snorm()
		return q.Result()
	}
	for i := range w {
		q.MulAdd(w[i], a[i])
	}
	return q.Result()
}

// accSigned128 adds (v << shift) with sign mask sm (0 to add, ^0 to
// subtract) into the 128-bit two's-complement register a1:a0; shift must
// be < 128. This is THE hot inner step of every small dot-product and
// dense-layer kernel — all tiers share it so the branchless shift-split
// and sign arithmetic cannot diverge between call sites. Wrap beyond bit
// 127 cannot occur for a correctly sized quire.
func accSigned128(a0, a1, v uint64, shift uint, sm uint64) (uint64, uint64) {
	var lo, hi uint64
	if shift < 64 {
		lo = v << shift
		if shift != 0 {
			hi = v >> (64 - shift)
		}
	} else {
		hi = v << (shift - 64)
	}
	var c uint64
	a0, c = bits.Add64(a0, lo^sm, sm&1)
	a1 += (hi ^ sm) + c
	return a0, a1
}

// acc128 is accSigned128 with a boolean sign (the per-row bias step).
func acc128(a0, a1, v uint64, shift uint, neg bool) (uint64, uint64) {
	var sm uint64
	if neg {
		sm = ^uint64(0)
	}
	return accSigned128(a0, a1, v, shift, sm)
}

// Sum computes the exactly-rounded sum of posits with one rounding.
func Sum(xs []Posit) Posit {
	if len(xs) == 0 {
		panic("posit: Sum of empty slice")
	}
	var q Quire
	q.init(xs[0].f, len(xs), 0)
	for _, x := range xs {
		q.AddPosit(x)
	}
	return q.Result()
}

// String renders the quire state for debugging.
func (q *Quire) String() string {
	hex := ""
	if q.words > 0 {
		for i := q.words - 1; i >= 0; i-- {
			hex += fmt.Sprintf("%016x", q.sw[i])
		}
	} else {
		hex = q.acc.HexString()[2:]
	}
	return fmt.Sprintf("quire[%s,k=%d,w=%d] 0x%s", q.f, q.capacity, q.width, hex)
}
