package posit

import (
	"fmt"
	"math/big"

	"repro/internal/bitutil"
	"repro/internal/dyadic"
	"repro/internal/wide"
)

// QuireSize returns the accumulator width of eq. (4) of the paper:
//
//	qsize = 2^(es+2) × (n-2) + 2 + ceil(log2(k)),   n >= 3
//
// wide enough to hold the exact sum of k products of posits without any
// rounding: 2^(es+1)(n-2) fraction bits (down to minpos²), the same again
// in integer bits (up to maxpos²), a sign bit, and ceil(log2 k) carry bits.
func QuireSize(f Format, k int) uint {
	f.mustValid()
	if k < 1 {
		panic("posit: quire capacity must be >= 1")
	}
	return (uint(1)<<(f.es+2))*(f.n-2) + 2 + bitutil.Clog2(uint64(k))
}

// Quire is the posit Kulisch accumulator: a wide two's-complement
// fixed-point register into which exact products of posits are added, with
// a single round-to-nearest-even when the final value is read out. It
// implements the accumulation loop of the paper's Algorithm 2
// (lines 11-19) in software, bit-for-bit.
type Quire struct {
	f        Format
	capacity int
	fracBits uint // position of the binary point: 2^(es+1)(n-2)
	acc      *wide.Int
	adds     int
	nar      bool
	// dropped counts fraction bits removed from the bottom of the
	// register (0 for the exact eq.-(4) quire; >0 for the truncated
	// ablation variant). Product bits below the register floor are
	// discarded, exactly as narrower hardware would.
	dropped uint
}

// NewQuire returns an empty quire for format f sized for k accumulations.
func NewQuire(f Format, k int) *Quire {
	f.mustValid()
	return &Quire{
		f:        f,
		capacity: k,
		fracBits: (uint(1) << (f.es + 1)) * (f.n - 2),
		acc:      wide.New(QuireSize(f, k)),
	}
}

// NewTruncatedQuire returns the ablation variant: a register shortened by
// `drop` fraction bits at the bottom. Products contributing only below
// the register floor vanish, and partial products lose their low bits —
// the accuracy/area trade-off hardware designers take when the full
// eq.-(4) width (e.g. 103 bits for posit(8,2), k=32) is too expensive.
// drop must be less than the fraction depth 2^(es+1)(n-2).
func NewTruncatedQuire(f Format, k int, drop uint) *Quire {
	f.mustValid()
	frac := (uint(1) << (f.es + 1)) * (f.n - 2)
	if drop >= frac {
		panic("posit: truncated quire would drop all fraction bits")
	}
	return &Quire{
		f:        f,
		capacity: k,
		fracBits: frac - drop,
		acc:      wide.New(QuireSize(f, k) - drop),
		dropped:  drop,
	}
}

// Dropped returns the number of truncated low fraction bits (0 for the
// exact quire).
func (q *Quire) Dropped() uint { return q.dropped }

// Format returns the posit format this quire accumulates.
func (q *Quire) Format() Format { return q.f }

// Capacity returns the number of accumulations the register was sized for.
func (q *Quire) Capacity() int { return q.capacity }

// Width returns the register width in bits (eq. (4)).
func (q *Quire) Width() uint { return q.acc.Width() }

// Adds returns how many accumulation operations have been performed since
// the last Reset.
func (q *Quire) Adds() int { return q.adds }

// IsNaR reports whether a NaR has been absorbed.
func (q *Quire) IsNaR() bool { return q.nar }

// Reset clears the accumulator to zero.
func (q *Quire) Reset() {
	q.acc.SetZero()
	q.adds = 0
	q.nar = false
}

// ResetToBias clears the accumulator and preloads it with the fixed-point
// representation of the bias posit — the paper's trick of resetting the
// accumulation flip-flop to the bias so products accumulate on top of it.
func (q *Quire) ResetToBias(bias Posit) {
	q.Reset()
	q.AddPosit(bias)
	q.adds = 0
}

// AddPosit accumulates the exact value of p into the register.
func (q *Quire) AddPosit(p Posit) {
	if p.f != q.f {
		panic("posit: quire format mismatch")
	}
	if p.IsNaR() {
		q.nar = true
		return
	}
	q.adds++
	if p.bits == 0 {
		return
	}
	d := p.decode()
	sig, shift, ok := q.place(d.sig, d.sf-int(d.sigW)+1)
	if !ok {
		return
	}
	if d.sign {
		q.acc.SubUint64Shifted(sig, shift)
	} else {
		q.acc.AddUint64Shifted(sig, shift)
	}
}

// place aligns a magnitude with LSB scale lsbScale to the register,
// truncating below the register floor when the quire is the shortened
// ablation variant. ok reports whether anything remains to add.
func (q *Quire) place(sig uint64, lsbScale int) (uint64, uint, bool) {
	shift := int(q.fracBits) + lsbScale
	if shift >= 0 {
		return sig, uint(shift), sig != 0
	}
	if q.dropped == 0 {
		panic("posit: quire shift underflow") // impossible for the exact quire
	}
	s := uint(-shift)
	if s >= 64 {
		return 0, 0, false
	}
	sig >>= s // magnitude truncation: low bits fall below the floor
	return sig, 0, sig != 0
}

// MulAdd accumulates the exact product w × a into the register: the
// multiplication stage (Alg. 2 lines 6-10) followed by fixed-point
// conversion and wide addition (lines 11-14). No rounding occurs.
func (q *Quire) MulAdd(w, a Posit) {
	if w.f != q.f || a.f != q.f {
		panic("posit: quire format mismatch")
	}
	if w.IsNaR() || a.IsNaR() {
		q.nar = true
		return
	}
	q.adds++
	if w.bits == 0 || a.bits == 0 {
		return
	}
	dw, da := w.decode(), a.decode()
	prod := dw.sig * da.sig
	// LSB weight of the product: 2^(sf_w - (w_w-1) + sf_a - (w_a-1)).
	lsbScale := dw.sf - int(dw.sigW) + 1 + da.sf - int(da.sigW) + 1
	sig, shift, ok := q.place(prod, lsbScale)
	if !ok {
		return
	}
	if dw.sign != da.sign {
		q.acc.SubUint64Shifted(sig, shift)
	} else {
		q.acc.AddUint64Shifted(sig, shift)
	}
}

// SubPosit accumulates -p.
func (q *Quire) SubPosit(p Posit) { q.AddPosit(p.Neg()) }

// Result rounds the accumulated value to the nearest posit — the single
// rounding of the exact dot product (Alg. 2 lines 15-43).
func (q *Quire) Result() Posit {
	if q.nar {
		return q.f.NaR()
	}
	if q.acc.IsZero() {
		return q.f.Zero()
	}
	mag := q.acc.Clone()
	sign := mag.Sign()
	if sign {
		mag.Neg()
	}
	l := mag.Len() // MSB position + 1 (Alg. 2 line 17: LZD)
	var count uint = 64
	if l < count {
		count = l
	}
	sig := mag.Extract(l-count, count)
	sticky := mag.AnyBelow(l - count)
	sf := int(l) - 1 - int(q.fracBits)
	return q.f.encode(sign, sf, sig, count, sticky)
}

// Float64 returns the current exact register value as a float64 (rounded
// to double, for diagnostics).
func (q *Quire) Float64() float64 {
	f := new(big.Float).SetPrec(256).SetInt(q.acc.Big())
	f.SetMantExp(f, -int(q.fracBits)) // value = acc × 2^-fracBits
	out, _ := f.Float64()
	return out
}

// Dyadic returns the current exact register value as a dyadic rational,
// used by the oracle tests to check that the quire really is exact.
func (q *Quire) Dyadic() dyadic.D {
	return dyadic.FromBig(q.acc.Big(), -int(q.fracBits))
}

// DotProduct computes the exactly-rounded dot product of two posit
// vectors: Σ w[i]·a[i] with one rounding at the end.
func DotProduct(w, a []Posit) Posit {
	if len(w) != len(a) {
		panic("posit: DotProduct length mismatch")
	}
	if len(w) == 0 {
		panic("posit: DotProduct of empty vectors")
	}
	q := NewQuire(w[0].f, len(w))
	for i := range w {
		q.MulAdd(w[i], a[i])
	}
	return q.Result()
}

// Sum computes the exactly-rounded sum of posits with one rounding.
func Sum(xs []Posit) Posit {
	if len(xs) == 0 {
		panic("posit: Sum of empty slice")
	}
	q := NewQuire(xs[0].f, len(xs))
	for _, x := range xs {
		q.AddPosit(x)
	}
	return q.Result()
}

// String renders the quire state for debugging.
func (q *Quire) String() string {
	return fmt.Sprintf("quire[%s,k=%d,w=%d] %s", q.f, q.capacity, q.acc.Width(), q.acc.HexString())
}
