package posit

import (
	"repro/internal/bitutil"
)

// encode rounds the exact value
//
//	(-1)^sign × 2^sf × sig / 2^(sigW-1)        (sticky ORs lower bits)
//
// to the nearest posit of format f, implementing the "Convergent Rounding
// & Encoding" stage of the paper's Algorithm 2: the unbounded
// regime|exponent|fraction bit string is materialised most-significant
// first, cut after n-1 bits, and rounded to nearest with ties to even.
// Per the posit standard (and matching hardware saturation), results are
// clamped to maxpos/minpos — a nonzero value never rounds to zero or NaR.
//
// sig must be normalised: its most significant set bit at position sigW-1
// (the hidden bit). sig == 0 is rejected; callers handle exact zeros.
func (f Format) encode(sign bool, sf int, sig uint64, sigW uint, sticky bool) Posit {
	f.mustValid()
	if sig == 0 {
		panic("posit: encode of zero significand")
	}
	if bitutil.Len(sig) != sigW {
		panic("posit: encode significand not normalised")
	}
	es := f.es
	k := floorDiv(sf, 1<<es)
	e := uint(sf - k*(1<<es))

	w := bitutil.NewWriter(f.n - 1)
	if k >= 0 {
		// k+1 ones then a zero terminator
		w.WriteRun(1, uint(k)+1)
		w.WriteBit(0)
	} else {
		// -k zeros then a one terminator
		w.WriteRun(0, uint(-k))
		w.WriteBit(1)
	}
	w.WriteBits(uint64(e), es)
	w.WriteBits(sig&bitutil.Mask(sigW-1), sigW-1)
	w.StickyOr(sticky)

	pattern := w.Round()
	maxPat := bitutil.Mask(f.n - 1)
	if pattern > maxPat {
		pattern = maxPat // overflow rounds to maxpos, never to NaR
	}
	if pattern == 0 {
		pattern = 1 // underflow rounds to minpos, never to zero
	}
	if sign {
		pattern = bitutil.TwosComplement(pattern, f.n)
	}
	return Posit{f: f, bits: pattern}
}
