package posit

import (
	"repro/internal/bitutil"
)

// encode rounds the exact value
//
//	(-1)^sign × 2^sf × sig / 2^(sigW-1)        (sticky ORs lower bits)
//
// to the nearest posit of format f, implementing the "Convergent Rounding
// & Encoding" stage of the paper's Algorithm 2: the unbounded
// regime|exponent|fraction bit string is materialised most-significant
// first, cut after n-1 bits, and rounded to nearest with ties to even.
// Per the posit standard (and matching hardware saturation), results are
// clamped to maxpos/minpos — a nonzero value never rounds to zero or NaR.
//
// sig must be normalised: its most significant set bit at position sigW-1
// (the hidden bit). sig == 0 is rejected; callers handle exact zeros.
//
// encode assembles the regime|exponent|fraction string with shifts and a
// single round step; encodeRef is the original bit-serial writer, kept as
// the oracle the fast version is verified against (exhaustively for small
// formats, by fuzz for large ones).
func (f Format) encode(sign bool, sf int, sig uint64, sigW uint, sticky bool) Posit {
	f.mustValid()
	if sig == 0 {
		panic("posit: encode of zero significand")
	}
	if bitutil.Len(sig) != sigW {
		panic("posit: encode significand not normalised")
	}
	n := f.n
	es := f.es
	// k = floor(sf / 2^es), e = sf mod 2^es: arithmetic shift and mask.
	k := sf >> es
	// Regime saturation: a ones-run of n-1 or longer fills the whole
	// pattern (rounding can only push it into the maxpos clamp), and a
	// zeros-run of n-1 or longer rounds/clamps to minpos.
	if k >= int(n)-2 {
		p := Posit{f: f, bits: bitutil.Mask(n - 1)}
		if sign {
			p.bits = bitutil.TwosComplement(p.bits, n)
		}
		return p
	}
	if -k >= int(n)-1 {
		p := Posit{f: f, bits: 1}
		if sign {
			p.bits = bitutil.TwosComplement(p.bits, n)
		}
		return p
	}
	e := uint64(sf & (1<<es - 1))
	// head = regime run, terminator and exponent, MSB-aligned at headW.
	var head uint64
	var headW uint
	if k >= 0 {
		run := uint(k) + 1
		head = (bitutil.Mask(run)<<1)<<es | e
		headW = run + 1 + es
	} else {
		run := uint(-k)
		head = uint64(1)<<es | e
		headW = run + 1 + es
	}
	// Append the fraction (sig without its hidden bit). If the full
	// string would not fit 64 bits, pre-truncate its tail into sticky —
	// those bits are beyond the guard position for every n <= 32.
	fw := sigW - 1
	frac := sig & bitutil.Mask(fw)
	if fw > 64-headW {
		drop := fw - (64 - headW)
		sticky = sticky || frac&bitutil.Mask(drop) != 0
		frac >>= drop
		fw -= drop
	}
	full := head<<fw | frac
	w := headW + fw
	// Cut after n-1 pattern bits: next bit is the guard, the rest join
	// sticky — the same split the bit-serial writer performs.
	var pattern uint64
	guard := false
	if cut := int(w) - int(n-1); cut > 0 {
		pattern = full >> uint(cut)
		guard = full>>(uint(cut)-1)&1 == 1
		sticky = sticky || full&bitutil.Mask(uint(cut)-1) != 0
	} else {
		pattern = full << uint(-cut)
	}
	pattern = bitutil.RoundNearestEven(pattern, guard, sticky)
	maxPat := bitutil.Mask(n - 1)
	if pattern > maxPat {
		pattern = maxPat // overflow rounds to maxpos, never to NaR
	}
	if pattern == 0 {
		pattern = 1 // underflow rounds to minpos, never to zero
	}
	if sign {
		pattern = bitutil.TwosComplement(pattern, n)
	}
	return Posit{f: f, bits: pattern}
}

// encodeRef is the bit-serial reference encoder (the paper's "Convergent
// Rounding & Encoding" stage streamed bit by bit through a writer).
func (f Format) encodeRef(sign bool, sf int, sig uint64, sigW uint, sticky bool) Posit {
	f.mustValid()
	if sig == 0 {
		panic("posit: encode of zero significand")
	}
	if bitutil.Len(sig) != sigW {
		panic("posit: encode significand not normalised")
	}
	es := f.es
	k := floorDiv(sf, 1<<es)
	e := uint(sf - k*(1<<es))

	w := bitutil.NewWriter(f.n - 1)
	if k >= 0 {
		// k+1 ones then a zero terminator
		w.WriteRun(1, uint(k)+1)
		w.WriteBit(0)
	} else {
		// -k zeros then a one terminator
		w.WriteRun(0, uint(-k))
		w.WriteBit(1)
	}
	w.WriteBits(uint64(e), es)
	w.WriteBits(sig&bitutil.Mask(sigW-1), sigW-1)
	w.StickyOr(sticky)

	pattern := w.Round()
	maxPat := bitutil.Mask(f.n - 1)
	if pattern > maxPat {
		pattern = maxPat // overflow rounds to maxpos, never to NaR
	}
	if pattern == 0 {
		pattern = 1 // underflow rounds to minpos, never to zero
	}
	if sign {
		pattern = bitutil.TwosComplement(pattern, f.n)
	}
	return Posit{f: f, bits: pattern}
}
