package posit

import "sort"

// Values returns every finite posit value of the format in ascending
// numeric order (NaR excluded). For an n-bit format this is 2^n - 1
// values; only call for n <= 16.
func (f Format) Values() []float64 {
	f.mustValid()
	if f.n > 16 {
		panic("posit: Values only supported for n <= 16")
	}
	out := make([]float64, 0, f.Count()-1)
	for b := uint64(0); b < f.Count(); b++ {
		p := f.FromBits(b)
		if p.IsNaR() {
			continue
		}
		out = append(out, p.Float64())
	}
	sort.Float64s(out)
	return out
}

// Posits returns every pattern of the format (including zero and NaR) in
// ascending pattern order.
func (f Format) Posits() []Posit {
	f.mustValid()
	if f.n > 16 {
		panic("posit: Posits only supported for n <= 16")
	}
	out := make([]Posit, 0, f.Count())
	for b := uint64(0); b < f.Count(); b++ {
		out = append(out, f.FromBits(b))
	}
	return out
}

// HistogramBucket counts how many format values fall into [lo, hi).
func (f Format) HistogramBucket(lo, hi float64) int {
	count := 0
	for _, v := range f.Values() {
		if v >= lo && v < hi {
			count++
		}
	}
	return count
}

// Histogram bins every finite value of the format into the given bin
// edges (len(edges) >= 2, ascending) and returns len(edges)-1 counts —
// the data behind the paper's Fig. 2(a) (7-bit posit value distribution).
func (f Format) Histogram(edges []float64) []int {
	if len(edges) < 2 {
		panic("posit: Histogram needs at least 2 edges")
	}
	counts := make([]int, len(edges)-1)
	for _, v := range f.Values() {
		for i := 0; i < len(edges)-1; i++ {
			if v >= edges[i] && v < edges[i+1] {
				counts[i]++
				break
			}
		}
	}
	return counts
}

// FractionInUnitRange reports the fraction of finite nonzero values lying
// in [-1, 1] — the clustering property Fig. 2 uses to argue posit fits DNN
// weight distributions.
func (f Format) FractionInUnitRange() float64 {
	values := f.Values()
	in, total := 0, 0
	for _, v := range values {
		if v == 0 {
			continue
		}
		total++
		if v >= -1 && v <= 1 {
			in++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// Next returns the posit one pattern above p in the numeric total order,
// saturating at maxpos. NaR maps to itself.
func (p Posit) Next() Posit {
	if p.IsNaR() {
		return p
	}
	if p.bits == p.f.MaxPos().bits {
		return p
	}
	return p.f.FromBits(p.bits + 1)
}

// Prev returns the posit one pattern below p, saturating just above NaR
// (the most negative real value).
func (p Posit) Prev() Posit {
	if p.IsNaR() {
		return p
	}
	if p.bits == p.f.signBit()+1 { // most negative real
		return p
	}
	return p.f.FromBits(p.bits - 1)
}

// ULP returns the distance to the next representable value above |p|
// (a local precision measure used by the tapered-precision analyses).
func (p Posit) ULP() float64 {
	a := p.Abs()
	if a.IsNaR() {
		return 0
	}
	n := a.Next()
	return n.Float64() - a.Float64()
}
