// Package posit implements the posit number system (Type III unum) exactly
// as used by the paper: arbitrary formats posit(n, es) with 3 <= n <= 32,
// bit-level decode (the paper's Algorithm 1), round-to-nearest-even encode
// (the tail of Algorithm 2), exact scalar arithmetic, and the quire — the
// wide Kulisch accumulator of eq. (4) that gives the posit EMAC its
// "exact multiply-and-accumulate" semantics.
//
// A posit is stored as its raw bit pattern in the low n bits of a uint64.
// Two patterns are special: all zeros is the real number 0 and
// 1 followed by zeros is NaR ("Not a Real"), which absorbs all exception
// cases. Every other pattern encodes
//
//	(-1)^s × (2^(2^es))^k × 2^e × 1.f
//
// where k is the run-length-encoded regime, e the unsigned exponent and f
// the fraction (paper eq. (2)); negative posits store the two's complement.
package posit

import (
	"fmt"
	"math"

	"repro/internal/bitutil"
)

// MaxN is the largest supported posit width. 32 covers everything the
// paper evaluates (n in [5,8]) with generous headroom, while keeping every
// significand product inside a uint64.
const MaxN = 32

// MaxES is the largest supported exponent-field width. es <= 4 already
// exceeds every configuration in the paper (es in {0,1,2,3} are swept).
const MaxES = 5

// Format identifies a posit format by total width n and exponent width es.
// The zero Format is invalid; construct with NewFormat or MustFormat.
type Format struct {
	n  uint
	es uint
}

// NewFormat validates and returns a posit format.
func NewFormat(n, es uint) (Format, error) {
	if n < 3 || n > MaxN {
		return Format{}, fmt.Errorf("posit: n must be in [3,%d], got %d", MaxN, n)
	}
	if es > MaxES {
		return Format{}, fmt.Errorf("posit: es must be in [0,%d], got %d", MaxES, es)
	}
	return Format{n: n, es: es}, nil
}

// MustFormat is NewFormat that panics on invalid parameters; intended for
// constants and tests.
func MustFormat(n, es uint) Format {
	f, err := NewFormat(n, es)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the total bit width.
func (f Format) N() uint { return f.n }

// ES returns the exponent field width.
func (f Format) ES() uint { return f.es }

// valid reports whether f was built through NewFormat.
func (f Format) valid() bool { return f.n >= 3 }

func (f Format) mustValid() {
	if !f.valid() {
		panic("posit: zero Format; use NewFormat")
	}
}

// Mask returns the n-bit mask for patterns of this format.
func (f Format) Mask() uint64 { return bitutil.Mask(f.n) }

// signBit returns the mask of the sign bit.
func (f Format) signBit() uint64 { return uint64(1) << (f.n - 1) }

// USeed returns useed = 2^(2^es), the regime base.
func (f Format) USeed() float64 {
	return math.Ldexp(1, 1<<f.es)
}

// MaxScale returns the largest power-of-two scale: (n-2) * 2^es
// (the scale of maxpos = useed^(n-2)).
func (f Format) MaxScale() int { return int(f.n-2) * (1 << f.es) }

// MinScale returns the smallest scale: -(n-2) * 2^es (scale of minpos).
func (f Format) MinScale() int { return -f.MaxScale() }

// MaxPos returns the largest positive posit.
func (f Format) MaxPos() Posit {
	f.mustValid()
	return Posit{f: f, bits: bitutil.Mask(f.n - 1)}
}

// MinPos returns the smallest positive posit.
func (f Format) MinPos() Posit {
	f.mustValid()
	return Posit{f: f, bits: 1}
}

// Zero returns the posit zero.
func (f Format) Zero() Posit {
	f.mustValid()
	return Posit{f: f}
}

// NaR returns the Not-a-Real pattern (1 followed by zeros).
func (f Format) NaR() Posit {
	f.mustValid()
	return Posit{f: f, bits: f.signBit()}
}

// One returns the posit 1.0 (pattern 01xx...: regime k=0, e=0, f=0).
func (f Format) One() Posit {
	f.mustValid()
	return Posit{f: f, bits: uint64(1) << (f.n - 2)}
}

// FromBits wraps a raw pattern (low n bits) as a posit of this format.
func (f Format) FromBits(bits uint64) Posit {
	f.mustValid()
	return Posit{f: f, bits: bits & f.Mask()}
}

// Count returns the number of distinct patterns, 2^n.
func (f Format) Count() uint64 { return uint64(1) << f.n }

// DynamicRangeLog10 returns log10(max/min), the dynamic-range metric the
// paper plots on the x axis of Fig. 6.
func (f Format) DynamicRangeLog10() float64 {
	// max/min = useed^(2(n-2)) => log10 = 2(n-2) * 2^es * log10(2)
	return float64(2*(f.n-2)) * float64(uint64(1)<<f.es) * math.Log10(2)
}

// String renders the format like "posit(8,1)".
func (f Format) String() string { return fmt.Sprintf("posit(%d,%d)", f.n, f.es) }

// Posit is a single posit value: a format plus its n-bit pattern.
// The zero value is the (invalid-format) zero; obtain values through a
// Format. Posit is a small value type and is passed by value everywhere.
type Posit struct {
	f    Format
	bits uint64
}

// Format returns the value's format.
func (p Posit) Format() Format { return p.f }

// Bits returns the raw n-bit pattern.
func (p Posit) Bits() uint64 { return p.bits }

// IsZero reports whether p is exactly zero.
func (p Posit) IsZero() bool { return p.bits == 0 }

// IsNaR reports whether p is Not-a-Real.
func (p Posit) IsNaR() bool { return p.bits == p.f.signBit() }

// Negative reports whether p < 0 (sign bit set and not NaR).
func (p Posit) Negative() bool {
	return !p.IsNaR() && p.bits&p.f.signBit() != 0
}

// Neg returns -p. Negation is exact for every posit: the two's complement
// of the pattern. -0 = 0 and -NaR = NaR fall out naturally.
func (p Posit) Neg() Posit {
	if p.IsNaR() {
		return p
	}
	return Posit{f: p.f, bits: bitutil.TwosComplement(p.bits, p.f.n)}
}

// Abs returns |p|.
func (p Posit) Abs() Posit {
	if p.Negative() {
		return p.Neg()
	}
	return p
}

// SignedBits returns the pattern interpreted as an n-bit two's-complement
// integer. Posits are monotone in this interpretation, which makes
// comparison a plain integer compare — one of the format's hardware
// selling points.
func (p Posit) SignedBits() int64 {
	return bitutil.SignExtend(p.bits, p.f.n)
}

// Cmp orders p and q numerically (-1, 0, +1). NaR sorts below every real
// value (matching the posit standard's total order on patterns).
func (p Posit) Cmp(q Posit) int {
	if p.f != q.f {
		panic("posit: Cmp across formats")
	}
	a, b := p.SignedBits(), q.SignedBits()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Less reports p < q in the pattern total order.
func (p Posit) Less(q Posit) bool { return p.Cmp(q) < 0 }

// Equal reports bitwise equality (same format, same pattern).
func (p Posit) Equal(q Posit) bool { return p.f == q.f && p.bits == q.bits }
