package posit

import (
	"testing"

	"repro/internal/dyadic"
	"repro/internal/rng"
)

func TestQuireSizeEq4(t *testing.T) {
	// Hand-checked instances of eq. (4): qsize = 2^(es+2)(n-2) + 2 + clog2(k).
	cases := []struct {
		n, es uint
		k     int
		want  uint
	}{
		{8, 0, 1, 26},      // 4*6+2+0
		{8, 0, 16, 30},     // 4*6+2+4
		{8, 1, 16, 54},     // 8*6+2+4
		{8, 2, 16, 102},    // 16*6+2+4
		{5, 0, 8, 17},      // 4*3+2+3
		{16, 1, 128, 121},  // 8*14+2+7
		{32, 2, 1024, 492}, // 16*30+2+10
	}
	for _, c := range cases {
		f := MustFormat(c.n, c.es)
		if got := QuireSize(f, c.k); got != c.want {
			t.Errorf("QuireSize(%s,%d) = %d want %d", f, c.k, got, c.want)
		}
	}
}

// TestQuireExactness: the quire register must hold the exact dot product —
// compare against the dyadic oracle before rounding.
func TestQuireExactness(t *testing.T) {
	for _, es := range []uint{0, 1, 2} {
		f := MustFormat(8, es)
		r := rng.New(42 + uint64(es))
		for trial := 0; trial < 200; trial++ {
			k := 1 + r.Intn(64)
			q := NewQuire(f, k)
			exact := dyadic.Zero()
			for i := 0; i < k; i++ {
				w := f.FromBits(r.Uint64() & f.Mask())
				a := f.FromBits(r.Uint64() & f.Mask())
				if w.IsNaR() || a.IsNaR() {
					continue
				}
				q.MulAdd(w, a)
				dw, _ := w.Dyadic()
				da, _ := a.Dyadic()
				exact = exact.Add(dw.Mul(da))
			}
			if got := q.Dyadic(); got.Cmp(exact) != 0 {
				t.Fatalf("%s k=%d: quire %v != exact %v", f, k, got, exact)
			}
			want := f.FromDyadic(exact)
			if got := q.Result(); got.Bits() != want.Bits() {
				t.Fatalf("%s k=%d: Result %v want %v", f, k, got, want)
			}
		}
	}
}

// TestQuireVsSequentialRounding demonstrates the paper's premise: the
// quire (single rounding) differs from sequentially rounded MACs, and the
// quire always matches the exactly-rounded result.
func TestQuireVsSequentialRounding(t *testing.T) {
	f := MustFormat(8, 0)
	r := rng.New(7)
	diffs := 0
	for trial := 0; trial < 500; trial++ {
		k := 16
		ws := make([]Posit, k)
		as := make([]Posit, k)
		exact := dyadic.Zero()
		for i := range ws {
			for {
				ws[i] = f.FromBits(r.Uint64() & f.Mask())
				if !ws[i].IsNaR() {
					break
				}
			}
			for {
				as[i] = f.FromBits(r.Uint64() & f.Mask())
				if !as[i].IsNaR() {
					break
				}
			}
			dw, _ := ws[i].Dyadic()
			da, _ := as[i].Dyadic()
			exact = exact.Add(dw.Mul(da))
		}
		fused := DotProduct(ws, as)
		if want := f.FromDyadic(exact); fused.Bits() != want.Bits() {
			t.Fatalf("DotProduct != exactly rounded: %v vs %v", fused, want)
		}
		// naive: round after every multiply and every add
		naive := f.Zero()
		for i := range ws {
			naive = naive.Add(ws[i].Mul(as[i]))
		}
		if naive.Bits() != fused.Bits() {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("expected the exact EMAC to beat sequential rounding on some trials")
	}
	t.Logf("quire differed from sequentially rounded MAC on %d/500 trials", diffs)
}

func TestQuireBias(t *testing.T) {
	f := MustFormat(8, 1)
	bias := f.FromFloat64(0.75)
	q := NewQuire(f, 4)
	q.ResetToBias(bias)
	if q.Adds() != 0 {
		t.Error("ResetToBias must not count as an accumulation")
	}
	q.MulAdd(f.One(), f.One())
	want := f.FromFloat64(1.75)
	if got := q.Result(); got.Bits() != want.Bits() {
		t.Errorf("bias+1 = %v want %v", got, want)
	}
}

func TestQuireNaRAbsorbs(t *testing.T) {
	f := MustFormat(8, 0)
	q := NewQuire(f, 4)
	q.MulAdd(f.One(), f.One())
	q.MulAdd(f.NaR(), f.One())
	if !q.IsNaR() || !q.Result().IsNaR() {
		t.Error("quire must absorb NaR")
	}
	q.Reset()
	if q.IsNaR() {
		t.Error("Reset must clear NaR")
	}
}

func TestQuireZeroAndCancel(t *testing.T) {
	f := MustFormat(8, 2)
	q := NewQuire(f, 8)
	if !q.Result().IsZero() {
		t.Error("empty quire must read zero")
	}
	x := f.FromFloat64(3.25)
	q.AddPosit(x)
	q.SubPosit(x)
	if !q.Result().IsZero() {
		t.Error("x - x must cancel to exactly zero")
	}
}

// TestQuireMinposSquared exercises the extreme corner of eq. (4): the
// product minpos² must land exactly at bit 0 of the register.
func TestQuireMinposSquared(t *testing.T) {
	for _, es := range []uint{0, 1, 2, 3} {
		f := MustFormat(8, es)
		q := NewQuire(f, 2)
		q.MulAdd(f.MinPos(), f.MinPos())
		exact, _ := f.MinPos().Dyadic()
		exact = exact.Mul(exact)
		if got := q.Dyadic(); got.Cmp(exact) != 0 {
			t.Fatalf("%s: minpos² held inexactly: %v vs %v", f, got, exact)
		}
		// and maxpos²: top of the register
		q.Reset()
		q.MulAdd(f.MaxPos(), f.MaxPos())
		dmax, _ := f.MaxPos().Dyadic()
		if got := q.Dyadic(); got.Cmp(dmax.Mul(dmax)) != 0 {
			t.Fatalf("%s: maxpos² held inexactly", f)
		}
	}
}

// TestQuireCarryHeadroom: k copies of maxpos² must accumulate without
// overflow for the declared capacity.
func TestQuireCarryHeadroom(t *testing.T) {
	f := MustFormat(6, 1)
	k := 64
	q := NewQuire(f, k)
	m := f.MaxPos()
	dmax, _ := m.Dyadic()
	exact := dyadic.Zero()
	for i := 0; i < k; i++ {
		q.MulAdd(m, m)
		exact = exact.Add(dmax.Mul(dmax))
	}
	if got := q.Dyadic(); got.Cmp(exact) != 0 {
		t.Fatalf("accumulating %d×maxpos² overflowed: %v vs %v", k, got, exact)
	}
	if got := q.Result(); got.Bits() != m.Bits() {
		t.Fatalf("rounded sum %v want maxpos", got)
	}
	// Negative side as well.
	q.Reset()
	exact = dyadic.Zero()
	for i := 0; i < k; i++ {
		q.MulAdd(m.Neg(), m)
		exact = exact.Add(dmax.Neg().Mul(dmax))
	}
	if got := q.Dyadic(); got.Cmp(exact) != 0 {
		t.Fatalf("negative accumulation overflowed")
	}
}

func TestSumMatchesOracle(t *testing.T) {
	f := MustFormat(8, 0)
	r := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		k := 1 + r.Intn(32)
		xs := make([]Posit, k)
		exact := dyadic.Zero()
		for i := range xs {
			for {
				xs[i] = f.FromBits(r.Uint64() & f.Mask())
				if !xs[i].IsNaR() {
					break
				}
			}
			d, _ := xs[i].Dyadic()
			exact = exact.Add(d)
		}
		got := Sum(xs)
		want := f.FromDyadic(exact)
		if got.Bits() != want.Bits() {
			t.Fatalf("Sum = %v want %v", got, want)
		}
	}
}

func TestDotProductValidation(t *testing.T) {
	f := MustFormat(8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	DotProduct([]Posit{f.One()}, []Posit{})
}

func TestTruncatedQuireBasics(t *testing.T) {
	f := MustFormat(8, 1)
	full := NewQuire(f, 8)
	trunc := NewTruncatedQuire(f, 8, 20)
	if trunc.Width() != full.Width()-20 {
		t.Errorf("truncated width %d want %d", trunc.Width(), full.Width()-20)
	}
	if trunc.Dropped() != 20 || full.Dropped() != 0 {
		t.Error("Dropped bookkeeping")
	}
	// Values well above the floor accumulate identically.
	a, b := f.FromFloat64(1.5), f.FromFloat64(2)
	full.MulAdd(a, b)
	trunc.MulAdd(a, b)
	if full.Result().Bits() != trunc.Result().Bits() {
		t.Error("large products must agree")
	}
}

func TestTruncatedQuireDropsTinyProducts(t *testing.T) {
	f := MustFormat(8, 1)
	// minpos² sits exactly at bit 0 of the exact register; any truncation
	// removes it entirely.
	trunc := NewTruncatedQuire(f, 4, 8)
	trunc.MulAdd(f.MinPos(), f.MinPos())
	if !trunc.Result().IsZero() {
		t.Errorf("minpos² must vanish in a truncated quire, got %v", trunc.Result())
	}
	full := NewQuire(f, 4)
	full.MulAdd(f.MinPos(), f.MinPos())
	if full.Result().IsZero() {
		t.Error("exact quire must keep minpos²")
	}
}

func TestTruncatedQuireAccumulatedError(t *testing.T) {
	// Many small products that individually truncate to nothing: the
	// exact quire accumulates them into a visible sum; the truncated one
	// loses everything — the failure mode that bounds how much drop a
	// design can afford.
	f := MustFormat(8, 1)
	x := f.MinPos()
	k := 1 << 10
	full := NewQuire(f, k)
	drop := uint(10)
	trunc := NewTruncatedQuire(f, k, drop)
	for i := 0; i < k; i++ {
		full.MulAdd(x, x)
		trunc.MulAdd(x, x)
	}
	if full.Result().IsZero() {
		t.Error("exact quire lost the accumulated mass")
	}
	if !trunc.Result().IsZero() {
		t.Error("truncated quire should have lost the sub-floor mass")
	}
}

func TestTruncatedQuirePanicsOnFullDrop(t *testing.T) {
	f := MustFormat(8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("dropping all fraction bits must panic")
		}
	}()
	NewTruncatedQuire(f, 4, (uint(1)<<1)*(8-2))
}
