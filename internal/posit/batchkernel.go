package posit

// BatchDenseKernel is the GEMM-style batched datapath for one dense
// layer: it computes a whole flush of samples through the layer with the
// per-sample work reduced to one table add per MAC. Three ideas stack:
//
//  1. Decode once per flush: each activation pattern is classified and
//     transposed into a column-major byte plane exactly once, instead of
//     once per sample×row like the per-sample kernel's predecode.
//  2. Term tables: for formats narrow enough to enumerate (n <= 8), the
//     full signed MAC contribution ±(sig_w·sig_a) << (fb+adj_w+adj_a) of
//     every (weight, activation) pattern pair is precomputed, so the
//     inner loop is acc[s] += tab[w][a] — no multiply, no shift, no sign
//     fix-up at MAC time.
//  3. Cache blocking: the loop order is (row j, weight i, sample s), so
//     one 2 KiB table row stays hot while it is streamed through every
//     sample in the flush, and the activation plane is walked
//     column-contiguously.
//
// The kernel qualifies only when the eq.-(4) quire for the layer fan-in
// fits one machine word: then the register is a plain int64 (the exact
// sum can never overflow it, by the quire sizing) and rounding is the
// single-word Result fast path. NewBatchDenseKernel reports ok == false
// otherwise and callers fall back to looping the per-sample kernel.
// Results are bit-identical to DenseKernel.ForwardBits per sample, which
// the exhaustive equivalence tests verify.

import (
	"math/bits"

	"repro/internal/bitutil"
)

// termTabStride is the padded row length of a term table: rows are
// indexed by the activation pattern, stored as a byte, so a fixed
// 256-entry stride lets the inner loop convert the row to a *[256]int64
// and index it with no bounds check. Formats narrower than 8 bits simply
// leave the upper entries zero (their patterns never occur).
const termTabStride = 256

// termTab returns the signed MAC-term table for f (one int64 per
// (weight, activation) pattern pair, at the quire's fraction depth),
// building and caching it on first use; nil when f is too wide for one.
// Memory cost: 2^n × 256 × 8 bytes — 512 KiB at the n = 8 ceiling.
func (f Format) termTab() []int64 {
	if f.n > opTabMaxN {
		return nil
	}
	if p := termTabs[f.n][f.es].Load(); p != nil {
		return *p
	}
	return f.buildTermTab()
}

func (f Format) buildTermTab() []int64 {
	// Build the decode table first: tabMu is not reentrant.
	dec := f.decTab()
	tabMu.Lock()
	defer tabMu.Unlock()
	if p := termTabs[f.n][f.es].Load(); p != nil {
		return *p
	}
	fb := int((uint(1) << (f.es + 1)) * (f.n - 2))
	count := 1 << f.n
	t := make([]int64, count*termTabStride)
	for wb := 0; wb < count; wb++ {
		wd := predecodeBits(f, dec, uint64(wb))
		if wd.cls != pdReal {
			continue // zero/NaR rows stay all-zero
		}
		row := t[wb*termTabStride : (wb+1)*termTabStride]
		for ab := 0; ab < count; ab++ {
			ad := predecodeBits(f, dec, uint64(ab))
			if ad.cls != pdReal {
				continue
			}
			// Exactly the per-sample single-word tier's term: the
			// significand product shifted to the quire's fraction depth,
			// signed by the XOR mask (two's complement in uint64 is the
			// int64 bit pattern).
			v := wd.sig * ad.sig << uint(fb+int(wd.adj)+int(ad.adj))
			sm := wd.sgn ^ ad.sgn
			row[ab] = int64((v ^ sm) - sm)
		}
	}
	termTabs[f.n][f.es].Store(&t)
	return t
}

// BatchDenseKernel holds the pre-decoded parameters and reused flush
// scratch for one layer. Not safe for concurrent use.
type BatchDenseKernel struct {
	f       Format
	in, out int
	tab     []int64
	// wRow[j*in+i] is the term-table row offset of weight (j,i), already
	// multiplied by termTabStride; -1 for zero/NaR weights (their table
	// row is all zeros, so skipping them is free and exact).
	wRow []int32
	// biasTerm[j] is the bias contribution at the quire's fraction depth.
	biasTerm []int64
	// narRow[j] records a NaR weight or bias in row j.
	narRow    []bool
	width     uint // eq.-(4) register width for the fan-in; <= 64
	widthMask uint64
	fracBits  uint
	narBits   uint64

	// flush scratch, grown on demand and reused across flushes.
	actT []uint8 // column-major activation patterns [in][b]
	narS []bool  // per-sample NaR flag
	acc  []int64 // per-sample registers for the current row
}

// NewBatchDenseKernel pre-decodes a row-major weight matrix (out rows of
// in weights) and bias vector of format f into a batched layer kernel.
// ok is false when this configuration has no batched fast path: the
// format is too wide to enumerate (n > 8) or the eq.-(4) quire for this
// fan-in does not fit one machine word.
func NewBatchDenseKernel(f Format, w [][]Posit, b []Posit) (*BatchDenseKernel, bool) {
	f.mustValid()
	out := len(w)
	if out == 0 || len(b) != out || len(w[0]) == 0 {
		return nil, false
	}
	in := len(w[0])
	if f.n > opTabMaxN || QuireSize(f, in) > 64 {
		return nil, false
	}
	k := &BatchDenseKernel{
		f:        f,
		in:       in,
		out:      out,
		tab:      f.termTab(),
		wRow:     make([]int32, out*in),
		biasTerm: make([]int64, out),
		narRow:   make([]bool, out),
		width:    QuireSize(f, in),
		fracBits: (uint(1) << (f.es + 1)) * (f.n - 2),
	}
	k.widthMask = bitutil.Mask(k.width)
	k.narBits = f.NaR().bits
	wd := make([]pdec, in)
	for j, row := range w {
		if len(row) != in {
			panic("posit: BatchDenseKernel ragged weight matrix")
		}
		predecodeInto(wd, row, f)
		nar := false
		dst := k.wRow[j*in : (j+1)*in]
		for i, d := range wd {
			switch d.cls {
			case pdReal:
				dst[i] = int32(row[i].bits) * termTabStride
			case pdNaR:
				nar = true
				dst[i] = -1
			default:
				dst[i] = -1
			}
		}
		bd := predecodeBits(f, f.decTab(), b[j].mustFormat(f).bits)
		switch bd.cls {
		case pdReal:
			v := bd.sig << uint(int(k.fracBits)+int(bd.adj))
			k.biasTerm[j] = int64((v ^ bd.sgn) - bd.sgn)
		case pdNaR:
			nar = true
		}
		k.narRow[j] = nar
	}
	return k, true
}

// mustFormat panics unless p has format f (mirrors predecodeInto's check
// for the bias vector, which is decoded one element at a time here).
func (p Posit) mustFormat(f Format) Posit {
	if p.f != f {
		panic("posit: mixed formats in kernel operand")
	}
	return p
}

// In returns the layer fan-in.
func (k *BatchDenseKernel) In() int { return k.in }

// Out returns the layer width.
func (k *BatchDenseKernel) Out() int { return k.out }

// Format returns the kernel's posit format.
func (k *BatchDenseKernel) Format() Format { return k.f }

// grow sizes the flush scratch for b samples.
func (k *BatchDenseKernel) grow(b int) {
	if cap(k.actT) < k.in*b {
		k.actT = make([]uint8, k.in*b)
	}
	if cap(k.narS) < b {
		k.narS = make([]bool, b)
	}
	if cap(k.acc) < b {
		k.acc = make([]int64, b)
	}
}

// encodeAcc rounds one sample's register to a posit — the single-word
// Quire.Result fast path on an int64 register (masking to the eq.-(4)
// width reproduces the hardware register's residue exactly).
func (k *BatchDenseKernel) encodeAcc(a int64) uint64 {
	m := uint64(a) & k.widthMask
	sign := m>>(k.width-1)&1 == 1
	if sign {
		m = -m & k.widthMask
	}
	if m == 0 {
		return 0
	}
	l := uint(bits.Len64(m))
	return k.f.encode(sign, int(l)-1-int(k.fracBits), m, l, false).bits
}

// ForwardBatchBits computes dst[s*Out()+j] = round(b[j] + Σ_i
// W[j][i]·act[s*In()+i]) for every sample s in the flush: flat
// sample-major planes, len(act) = b·In(), len(dst) = b·Out(). No
// activation function is applied. Not safe for concurrent use (the flush
// scratch is reused).
func (k *BatchDenseKernel) ForwardBatchBits(act, dst []uint64, b int) {
	if b < 0 || len(act) != b*k.in || len(dst) != b*k.out {
		panic("posit: BatchDenseKernel batch size mismatch")
	}
	if b == 0 {
		return
	}
	k.grow(b)
	mask := k.f.Mask()
	narPat := k.f.signBit()
	in, out := k.in, k.out
	actT, narS := k.actT, k.narS
	// Decode once per flush: transpose the patterns into column-major
	// bytes (column s-contiguous, matching the inner loop) and record
	// which samples carry a NaR activation (poisoning every row, exactly
	// as per-sample accumulation would).
	for s := 0; s < b; s++ {
		nar := false
		row := act[s*in : (s+1)*in]
		for i, p := range row {
			p &= mask
			if p == narPat {
				nar = true
			}
			actT[i*b+s] = uint8(p)
		}
		narS[s] = nar
	}
	acc := k.acc[:b]
	for j := 0; j < out; j++ {
		bt := k.biasTerm[j]
		for s := range acc {
			acc[s] = bt
		}
		wr := k.wRow[j*in : (j+1)*in]
		for i, off := range wr {
			if off < 0 {
				continue // zero/NaR weight: all-zero table row
			}
			// One table row (2 KiB) stays hot across the whole flush;
			// the fixed-size array view removes the inner bounds check.
			row := (*[termTabStride]int64)(k.tab[off:])
			col := actT[i*b : i*b+b]
			for s, a := range col {
				acc[s] += row[a]
			}
		}
		if k.narRow[j] {
			for s := 0; s < b; s++ {
				dst[s*out+j] = k.narBits
			}
			continue
		}
		for s, a := range acc {
			if narS[s] {
				dst[s*out+j] = k.narBits
			} else {
				dst[s*out+j] = k.encodeAcc(a)
			}
		}
	}
}
