package posit

// Sampled oracle tests for the formats too large to enumerate: random
// operands for every op, validated against the exact dyadic oracle. These
// complement the exhaustive 8-bit sweeps with coverage of wide regimes,
// long fractions and extreme scale factors up to n = 32, es = 5.

import (
	"testing"

	"repro/internal/dyadic"
	"repro/internal/rng"
)

// largeFormats spans widths/es beyond the exhaustive tests.
func largeFormats() []Format {
	return []Format{
		MustFormat(12, 0), MustFormat(12, 2),
		MustFormat(16, 1), MustFormat(16, 3),
		MustFormat(20, 2), MustFormat(24, 1),
		MustFormat(32, 2), MustFormat(32, 5),
	}
}

func randPosit(r *rng.Source, f Format) Posit {
	for {
		p := f.FromBits(r.Uint64() & f.Mask())
		if !p.IsNaR() {
			return p
		}
	}
}

func TestSampledRoundTripLarge(t *testing.T) {
	r := rng.New(0xF001)
	for _, f := range largeFormats() {
		for i := 0; i < 4000; i++ {
			p := randPosit(r, f)
			if back := f.FromFloat64(p.Float64()); back.Bits() != p.Bits() {
				t.Fatalf("%s: roundtrip %v -> %v", f, p, back)
			}
			d, _ := p.Dyadic()
			if back := f.FromDyadic(d); back.Bits() != p.Bits() {
				t.Fatalf("%s: dyadic roundtrip failed for %v", f, p)
			}
		}
	}
}

func TestSampledMulLarge(t *testing.T) {
	r := rng.New(0xF002)
	for _, f := range largeFormats() {
		for i := 0; i < 3000; i++ {
			a, b := randPosit(r, f), randPosit(r, f)
			got := a.Mul(b)
			da, _ := a.Dyadic()
			db, _ := b.Dyadic()
			want := f.FromDyadic(da.Mul(db))
			if a.IsZero() || b.IsZero() {
				want = f.Zero()
			}
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: %v * %v = %v want %v", f, a, b, got, want)
			}
		}
	}
}

func TestSampledAddLarge(t *testing.T) {
	r := rng.New(0xF003)
	for _, f := range largeFormats() {
		for i := 0; i < 3000; i++ {
			a, b := randPosit(r, f), randPosit(r, f)
			got := a.Add(b)
			da, _ := a.Dyadic()
			db, _ := b.Dyadic()
			sum := da.Add(db)
			var want Posit
			if sum.IsZero() {
				want = f.Zero()
			} else {
				want = f.FromDyadic(sum)
			}
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: %v + %v = %v want %v", f, a, b, got, want)
			}
		}
	}
}

// TestSampledAddNearCancellation targets the catastrophic-cancellation
// path explicitly: operands that agree in scale and nearly in magnitude.
func TestSampledAddNearCancellation(t *testing.T) {
	r := rng.New(0xF004)
	for _, f := range largeFormats() {
		for i := 0; i < 2000; i++ {
			a := randPosit(r, f)
			if a.IsZero() {
				continue
			}
			// perturb a's pattern by a few ULPs and negate
			delta := int64(r.Intn(7)) - 3
			bbits := uint64(int64(a.Bits()) + delta)
			b := f.FromBits(bbits).Neg()
			if b.IsNaR() {
				continue
			}
			got := a.Add(b)
			da, _ := a.Dyadic()
			db, _ := b.Dyadic()
			sum := da.Add(db)
			var want Posit
			if sum.IsZero() {
				want = f.Zero()
			} else {
				want = f.FromDyadic(sum)
			}
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: cancellation %v + %v = %v want %v", f, a, b, got, want)
			}
		}
	}
}

func TestSampledDivLarge(t *testing.T) {
	r := rng.New(0xF005)
	for _, f := range []Format{MustFormat(12, 1), MustFormat(16, 2), MustFormat(24, 3)} {
		for i := 0; i < 400; i++ {
			a, b := randPosit(r, f), randPosit(r, f)
			if b.IsZero() {
				continue
			}
			got := a.Div(b)
			if a.IsZero() {
				if !got.IsZero() {
					t.Fatalf("%s: 0/%v = %v", f, b, got)
				}
				continue
			}
			da, _ := a.Dyadic()
			db, _ := b.Dyadic()
			want := roundRatioOracle(f, da, db)
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: %v / %v = %v want %v", f, a, b, got, want)
			}
		}
	}
}

func TestSampledSqrtLarge(t *testing.T) {
	r := rng.New(0xF006)
	for _, f := range []Format{MustFormat(12, 1), MustFormat(16, 2)} {
		for i := 0; i < 400; i++ {
			p := randPosit(r, f).Abs()
			if p.IsZero() {
				continue
			}
			got := p.Sqrt()
			dp, _ := p.Dyadic()
			want := sqrtPatternOracle(f, dp)
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: sqrt(%v) = %v want %v", f, p, got, want)
			}
		}
	}
}

func TestSampledQuireLarge(t *testing.T) {
	r := rng.New(0xF007)
	for _, f := range []Format{MustFormat(16, 2), MustFormat(32, 2)} {
		for trial := 0; trial < 40; trial++ {
			k := 1 + r.Intn(32)
			q := NewQuire(f, k)
			exact := dyadic.Zero()
			for i := 0; i < k; i++ {
				a, b := randPosit(r, f), randPosit(r, f)
				q.MulAdd(a, b)
				da, _ := a.Dyadic()
				db, _ := b.Dyadic()
				exact = exact.Add(da.Mul(db))
			}
			if got := q.Dyadic(); got.Cmp(exact) != 0 {
				t.Fatalf("%s: quire inexact", f)
			}
			var want Posit
			if exact.IsZero() {
				want = f.Zero()
			} else {
				want = f.FromDyadic(exact)
			}
			if got := q.Result(); got.Bits() != want.Bits() {
				t.Fatalf("%s: quire result %v want %v", f, got, want)
			}
		}
	}
}

func TestStandardFormats(t *testing.T) {
	if f := Posit8(); f.N() != 8 || f.ES() != 2 {
		t.Error("Posit8")
	}
	if f := Posit16(); f.N() != 16 || f.ES() != 2 {
		t.Error("Posit16")
	}
	if f := Posit32(); f.N() != 32 || f.ES() != 2 {
		t.Error("Posit32")
	}
	if f := Posit8Legacy(); f.N() != 8 || f.ES() != 0 {
		t.Error("Posit8Legacy")
	}
	// standard posit32 sanity: 1/3 rounds to a value within 1 ULP
	f := Posit32()
	third := f.FromFloat64(1.0 / 3.0)
	if diff := third.Float64() - 1.0/3.0; diff > 1e-8 || diff < -1e-8 {
		t.Errorf("posit32 1/3 error %g", diff)
	}
}
