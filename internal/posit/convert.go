package posit

import (
	"math"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/dyadic"
)

// FromFloat64 rounds x to the nearest posit of this format
// (round-to-nearest-even; overflow saturates at maxpos, underflow at
// minpos). NaN and ±Inf map to NaR, and ±0 map to zero.
func (f Format) FromFloat64(x float64) Posit {
	f.mustValid()
	if x == 0 {
		return f.Zero()
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return f.NaR()
	}
	b := math.Float64bits(x)
	sign := b>>63 == 1
	exp := int((b >> 52) & 0x7ff)
	frac := b & bitutil.Mask(52)
	var sig uint64
	var sf int
	if exp == 0 { // subnormal double
		sig = frac
		sf = bits.Len64(frac) - 1 - 1074
	} else {
		sig = frac | 1<<52
		sf = exp - 1023
	}
	return f.encode(sign, sf, sig, bitutil.Len(sig), false)
}

// Float64 returns the exact real value of p as a float64. Every posit with
// n <= 32 is exactly representable in binary64 (|scale| <= 991 and at most
// 30 significand bits), so the conversion is lossless. NaR returns NaN.
func (p Posit) Float64() float64 {
	if p.bits == 0 {
		return 0
	}
	if p.IsNaR() {
		return math.NaN()
	}
	d := p.decode()
	v := math.Ldexp(float64(d.sig), d.sf-int(d.sigW)+1)
	if d.sign {
		v = -v
	}
	return v
}

// Dyadic returns the exact value of p as a dyadic rational. NaR and
// invalid values are reported via ok == false (zero returns the dyadic 0
// with ok == true).
func (p Posit) Dyadic() (dyadic.D, bool) {
	if p.IsNaR() {
		return dyadic.Zero(), false
	}
	if p.bits == 0 {
		return dyadic.Zero(), true
	}
	d := p.decode()
	m := int64(d.sig)
	if d.sign {
		m = -m
	}
	return dyadic.New(m, d.sf-int(d.sigW)+1), true
}

// FromDyadic rounds an exact dyadic value to the nearest posit
// (round-to-nearest-even with posit saturation semantics).
func (f Format) FromDyadic(d dyadic.D) Posit {
	f.mustValid()
	if d.IsZero() {
		return f.Zero()
	}
	count := f.n + 3 // pattern bits + guard + sticky margin
	if count > 64 {
		count = 64
	}
	sig, sticky := d.TopBits(count)
	// TopBits left-pads short mantissas to exactly `count` bits, so the
	// hidden bit sits at count-1.
	return f.encode(d.Sign() < 0, d.Scale(), sig, count, sticky)
}

// Convert re-rounds p into the target format. Converting to a wider format
// with es' >= es is always exact.
func (p Posit) Convert(to Format) Posit {
	to.mustValid()
	if p.bits == 0 {
		return to.Zero()
	}
	if p.IsNaR() {
		return to.NaR()
	}
	d := p.decode()
	return to.encode(d.sign, d.sf, d.sig, d.sigW, false)
}

// FromFloat32 rounds a float32 through its exact float64 value.
func (f Format) FromFloat32(x float32) Posit { return f.FromFloat64(float64(x)) }

// Float32 converts via float64 with a final binary32 rounding.
func (p Posit) Float32() float32 { return float32(p.Float64()) }
