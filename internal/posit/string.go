package posit

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the value in decimal, e.g. "posit(8,0)[0x52]=1.28125".
func (p Posit) String() string {
	if p.IsNaR() {
		return fmt.Sprintf("%s[NaR]", p.f)
	}
	return fmt.Sprintf("%s[0x%02x]=%g", p.f, p.bits, p.Float64())
}

// BitString renders the raw pattern as a binary string with field
// separators: sign|regime|exponent|fraction, e.g. "0|10|1|10110".
// Zero and NaR render without separators.
func (p Posit) BitString() string {
	n := p.f.n
	raw := fmt.Sprintf("%0*b", n, p.bits)
	if p.bits == 0 || p.IsNaR() {
		return raw
	}
	// Re-derive field boundaries from the magnitude pattern.
	mag := p.Abs()
	d := mag.decode()
	k, _ := d.regime(p.f.es)
	var rlen uint
	if k >= 0 {
		rlen = uint(k) + 2
	} else {
		rlen = uint(-k) + 1
	}
	if rlen > n-1 {
		rlen = n - 1
	}
	rem := n - 1 - rlen
	eLen := p.f.es
	if eLen > rem {
		eLen = rem
	}
	var b strings.Builder
	b.WriteString(raw[:1])
	b.WriteByte('|')
	b.WriteString(raw[1 : 1+rlen])
	if eLen > 0 {
		b.WriteByte('|')
		b.WriteString(raw[1+rlen : 1+rlen+eLen])
	}
	if rem-eLen > 0 {
		b.WriteByte('|')
		b.WriteString(raw[1+rlen+eLen:])
	}
	return b.String()
}

// ParseBits parses a binary pattern string (optionally containing '|' or
// '_' separators) into a posit of format f.
func (f Format) ParseBits(s string) (Posit, error) {
	f.mustValid()
	clean := strings.NewReplacer("|", "", "_", "", " ", "").Replace(s)
	if uint(len(clean)) != f.n {
		return Posit{}, fmt.Errorf("posit: pattern %q has %d bits, format needs %d", s, len(clean), f.n)
	}
	v, err := strconv.ParseUint(clean, 2, 64)
	if err != nil {
		return Posit{}, fmt.Errorf("posit: bad pattern %q: %w", s, err)
	}
	return f.FromBits(v), nil
}

// RegimeFromRun decodes a standalone regime bit string (as in the paper's
// Table I, e.g. "0001" -> -3, "1110" -> 2). The string must be a run of
// identical bits optionally terminated by one opposite bit.
func RegimeFromRun(s string) (int, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("posit: empty regime string")
	}
	r0 := s[0]
	if r0 != '0' && r0 != '1' {
		return 0, fmt.Errorf("posit: bad regime string %q", s)
	}
	run := 1
	for run < len(s) && s[run] == r0 {
		run++
	}
	// anything after the run must be exactly one terminator bit
	if run < len(s)-1 {
		return 0, fmt.Errorf("posit: %q is not a regime run", s)
	}
	if r0 == '1' {
		return run - 1, nil
	}
	return -run, nil
}
