package posit

// Standard formats. The 2022 posit standard fixes es = 2 for every width;
// the paper predates it (and sweeps es), but downstream users expect the
// standard formats by name, and the Deep Positron results for es = 2 are
// directly comparable to standard-posit hardware.

// Posit8 is the standard 8-bit format, posit(8,2).
func Posit8() Format { return MustFormat(8, 2) }

// Posit16 is the standard 16-bit format, posit(16,2).
func Posit16() Format { return MustFormat(16, 2) }

// Posit32 is the standard 32-bit format, posit(32,2).
func Posit32() Format { return MustFormat(32, 2) }

// Posit8Legacy is the pre-standard 8-bit convention, posit(8,0), used by
// much of the early posit-DNN literature (and the best Iris/Mushroom
// configurations in the paper).
func Posit8Legacy() Format { return MustFormat(8, 0) }
