package posit

import (
	"math"
	"testing"

	"repro/internal/dyadic"
)

// allTestFormats spans every (n, es) combination the exhaustive tests cover.
func allTestFormats() []Format {
	var fs []Format
	for n := uint(3); n <= 10; n++ {
		for es := uint(0); es <= 3; es++ {
			fs = append(fs, MustFormat(n, es))
		}
	}
	return fs
}

// TestRoundTripExhaustive: decode then re-encode every pattern of every
// small format; the codec must be the identity.
func TestRoundTripExhaustive(t *testing.T) {
	for _, f := range allTestFormats() {
		for b := uint64(0); b < f.Count(); b++ {
			p := f.FromBits(b)
			if p.IsZero() || p.IsNaR() {
				continue
			}
			d := p.decode()
			back := f.encode(d.sign, d.sf, d.sig, d.sigW, false)
			if back.Bits() != p.Bits() {
				t.Fatalf("%s: pattern %0*b decoded to %+v re-encoded to %0*b",
					f, f.N(), b, d, f.N(), back.Bits())
			}
		}
	}
}

// TestFloat64RoundTrip: Float64 then FromFloat64 must reproduce every
// pattern exactly (posit values are exact in binary64).
func TestFloat64RoundTrip(t *testing.T) {
	for _, f := range allTestFormats() {
		for b := uint64(0); b < f.Count(); b++ {
			p := f.FromBits(b)
			if p.IsNaR() {
				continue
			}
			back := f.FromFloat64(p.Float64())
			if back.Bits() != p.Bits() {
				t.Fatalf("%s: %v -> %g -> %v", f, p, p.Float64(), back)
			}
		}
	}
}

// TestFromFloat64NearestExhaustive samples float64 values (midpoints,
// near-midpoints, grids, extremes) and checks FromFloat64 against the
// independent pattern-space rounding oracle.
func TestFromFloat64NearestExhaustive(t *testing.T) {
	f := MustFormat(6, 1)
	check := func(x float64) {
		got := f.FromFloat64(x)
		want := roundValueOracle(f, dyadic.FromFloat64(x))
		if got.Bits() != want.Bits() {
			t.Fatalf("FromFloat64(%g) = %v want %v", x, got, want)
		}
	}
	// arithmetic midpoints and near-midpoints between consecutive posits
	vals := f.Values()
	for i := 0; i+1 < len(vals); i++ {
		mid := (vals[i] + vals[i+1]) / 2
		check(mid)
		check(math.Nextafter(mid, math.Inf(-1)))
		check(math.Nextafter(mid, math.Inf(1)))
	}
	// a grid of other values
	for x := -70.0; x <= 70.0; x += 0.37 {
		check(x)
	}
	check(1e30)
	check(-1e30)
	check(1e-30)
	check(-1e-30)
}

func TestFromFloat64Specials(t *testing.T) {
	f := MustFormat(8, 1)
	if !f.FromFloat64(math.NaN()).IsNaR() {
		t.Error("NaN must map to NaR")
	}
	if !f.FromFloat64(math.Inf(1)).IsNaR() {
		t.Error("+Inf must map to NaR")
	}
	if !f.FromFloat64(math.Inf(-1)).IsNaR() {
		t.Error("-Inf must map to NaR")
	}
	if !f.FromFloat64(0).IsZero() {
		t.Error("0 must map to zero")
	}
	if !f.FromFloat64(math.Copysign(0, -1)).IsZero() {
		t.Error("-0 must map to zero")
	}
	if math.IsNaN(f.NaR().Float64()) == false {
		t.Error("NaR.Float64 must be NaN")
	}
}

func TestSaturation(t *testing.T) {
	for _, f := range allTestFormats() {
		maxv := f.MaxPos().Float64()
		if got := f.FromFloat64(maxv * 4); got.Bits() != f.MaxPos().Bits() {
			t.Errorf("%s: overflow must saturate to maxpos, got %v", f, got)
		}
		if got := f.FromFloat64(-maxv * 4); got.Bits() != f.MaxPos().Neg().Bits() {
			t.Errorf("%s: negative overflow must saturate, got %v", f, got)
		}
		minv := f.MinPos().Float64()
		if got := f.FromFloat64(minv / 4); got.Bits() != f.MinPos().Bits() {
			t.Errorf("%s: underflow must saturate to minpos, got %v", f, got)
		}
		if got := f.FromFloat64(-minv / 4); got.Bits() != f.MinPos().Neg().Bits() {
			t.Errorf("%s: negative underflow must saturate, got %v", f, got)
		}
	}
}

func TestDyadicRoundTrip(t *testing.T) {
	for _, f := range allTestFormats() {
		for b := uint64(0); b < f.Count(); b++ {
			p := f.FromBits(b)
			if p.IsNaR() {
				continue
			}
			d, ok := p.Dyadic()
			if !ok {
				t.Fatalf("%s: Dyadic failed for %v", f, p)
			}
			if got := d.Float64(); got != p.Float64() {
				t.Fatalf("%s: dyadic of %v = %g", f, p, got)
			}
			back := f.FromDyadic(d)
			if back.Bits() != p.Bits() {
				t.Fatalf("%s: FromDyadic(%v) = %v want %v", f, d, back, p)
			}
		}
	}
}

// TestFromDyadicMatchesFromFloat64 cross-checks the two entry points on a
// pseudo-random value grid.
func TestFromDyadicMatchesFromFloat64(t *testing.T) {
	f := MustFormat(8, 2)
	for x := -300.0; x <= 300.0; x += 0.731 {
		a := f.FromFloat64(x)
		b := f.FromDyadic(dyadic.FromFloat64(x))
		if a.Bits() != b.Bits() {
			t.Fatalf("FromFloat64(%g)=%v but FromDyadic=%v", x, a, b)
		}
	}
}

func TestConvertWideningExact(t *testing.T) {
	small := MustFormat(8, 0)
	big := MustFormat(16, 2)
	for b := uint64(0); b < small.Count(); b++ {
		p := small.FromBits(b)
		if p.IsNaR() {
			continue
		}
		w := p.Convert(big)
		if w.Float64() != p.Float64() {
			t.Fatalf("widening %v -> %v lost value", p, w)
		}
		// And back: round-tripping through the wide format is identity.
		back := w.Convert(small)
		if back.Bits() != p.Bits() {
			t.Fatalf("narrowing %v -> %v", w, back)
		}
	}
}

func TestDecodePublic(t *testing.T) {
	f := MustFormat(8, 1)
	// 0|10|1|0110: k=0, e=1, f=0.0110 -> 1.375 * 2^1 = 2.75
	p, err := f.ParseBits("0101 0110")
	if err != nil {
		t.Fatal(err)
	}
	sign, k, e, frac, fracW, ok := p.Decode()
	if !ok || sign || k != 0 || e != 1 || fracW != 4 || frac != 0b0110 {
		t.Fatalf("Decode = sign=%v k=%d e=%d frac=%b/%d ok=%v", sign, k, e, frac, fracW, ok)
	}
	if v := p.Float64(); v != 2.75 {
		t.Fatalf("value = %v want 2.75", v)
	}
}

func TestScaleAndFracBits(t *testing.T) {
	f := MustFormat(8, 0)
	one := f.One()
	if sf, ok := one.Scale(); !ok || sf != 0 {
		t.Errorf("Scale(1) = %d,%v", sf, ok)
	}
	if fb, ok := one.FracBits(); !ok || fb != 5 {
		t.Errorf("FracBits(1) = %d,%v want 5", fb, ok)
	}
	if _, ok := f.Zero().Scale(); ok {
		t.Error("Scale(0) must not be ok")
	}
	if _, ok := f.NaR().Scale(); ok {
		t.Error("Scale(NaR) must not be ok")
	}
}
