package posit

// Test oracles implementing posit rounding *independently* of the encoder
// under test.
//
// The paper's Algorithm 2 (like SoftPosit) rounds in encoding space: the
// unbounded regime|exponent|fraction bit string is cut after n-1 bits and
// rounded to nearest-even on the *pattern*. Because the regime is a
// run-length code, the value midpoint between two adjacent posits is NOT
// always the arithmetic mean — at regime transitions the pattern-space
// threshold sits at the value of the (n+1)-bit extension pattern
// (P<<1)|1. These oracles use that characterisation, which is easy to
// state and entirely independent of the Writer-based encoder.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dyadic"
)

// thresholdAbove returns the rounding threshold between the positive posit
// p and p.Next() as an exact dyadic: the value of pattern (p<<1)|1 in the
// (n+1)-bit extension of the format.
func thresholdAbove(p Posit) dyadic.D {
	f := p.Format()
	ext := MustFormat(f.N()+1, f.ES())
	t, ok := ext.FromBits(p.Bits()<<1 | 1).Dyadic()
	if !ok {
		panic("thresholdAbove: NaR")
	}
	return t
}

// positivePosits returns the positive values of f sorted ascending
// (memoized; only used by small-format tests).
var positivePositsCache = map[Format][]Posit{}

func positivePosits(f Format) []Posit {
	if cached, ok := positivePositsCache[f]; ok {
		return cached
	}
	var out []Posit
	for b := uint64(1); b < f.Count(); b++ {
		p := f.FromBits(b)
		if p.IsNaR() || p.IsZero() || p.Negative() {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Float64() < out[j].Float64() })
	positivePositsCache[f] = out
	return out
}

// roundRatioOracle rounds the exact real number num/den (den != 0) to
// format f using pattern-space round-to-nearest-even with posit
// saturation. All comparisons are exact (cross-multiplied dyadics); the
// floor posit is located by walking from a float64 estimate (at most a
// few steps), so the oracle stays fast even for 32-bit formats.
func roundRatioOracle(f Format, num, den dyadic.D) Posit {
	if num.IsZero() {
		return f.Zero()
	}
	neg := (num.Sign() < 0) != (den.Sign() < 0)
	a, d := num.Abs(), den.Abs()

	finish := func(p Posit) Posit {
		if neg {
			return p.Neg()
		}
		return p
	}

	dmax, _ := f.MaxPos().Dyadic()
	dmin, _ := f.MinPos().Dyadic()
	if a.Cmp(dmax.Mul(d)) >= 0 {
		return finish(f.MaxPos())
	}
	if a.Cmp(dmin.Mul(d)) <= 0 {
		return finish(f.MinPos())
	}

	// Find the largest posit P with P <= a/d (exactly: P*d <= a),
	// starting from the float64 estimate.
	le := func(p Posit) bool {
		pd, _ := p.Dyadic()
		return pd.Mul(d).Cmp(a) <= 0
	}
	p := f.FromFloat64(a.Float64() / d.Float64())
	if p.IsNaR() || p.IsZero() || p.Negative() {
		p = f.MinPos()
	}
	for !le(p) {
		p = p.Prev()
	}
	for {
		n := p.Next()
		if n.Bits() == p.Bits() || !le(n) {
			break
		}
		p = n
	}
	pd, _ := p.Dyadic()
	if pd.Mul(d).Cmp(a) == 0 {
		return finish(p) // exact
	}
	next := p.Next()
	t := thresholdAbove(p)
	switch a.Cmp(t.Mul(d)) {
	case -1:
		return finish(p)
	case 1:
		return finish(next)
	default: // tie on the pattern threshold: even pattern wins
		if p.Bits()&1 == 0 {
			return finish(p)
		}
		return finish(next)
	}
}

// roundValueOracle rounds an exact dyadic value.
func roundValueOracle(f Format, x dyadic.D) Posit {
	return roundRatioOracle(f, x, dyadic.New(1, 0))
}

// sqrtPatternOracle rounds sqrt(x) (x a positive dyadic) to format f in
// pattern space: p <= sqrt(x) iff p² <= x, threshold comparisons squared.
func sqrtPatternOracle(f Format, x dyadic.D) Posit {
	dmax, _ := f.MaxPos().Dyadic()
	dmin, _ := f.MinPos().Dyadic()
	if x.Cmp(dmax.Mul(dmax)) >= 0 {
		return f.MaxPos()
	}
	if x.Cmp(dmin.Mul(dmin)) <= 0 {
		return f.MinPos()
	}
	le := func(p Posit) bool {
		pd, _ := p.Dyadic()
		return pd.Mul(pd).Cmp(x) <= 0
	}
	p := f.FromFloat64(math.Sqrt(x.Float64()))
	if p.IsNaR() || p.IsZero() || p.Negative() {
		p = f.MinPos()
	}
	for !le(p) {
		p = p.Prev()
	}
	for {
		n := p.Next()
		if n.Bits() == p.Bits() || !le(n) {
			break
		}
		p = n
	}
	pd, _ := p.Dyadic()
	if pd.Mul(pd).Cmp(x) == 0 {
		return p
	}
	t := thresholdAbove(p)
	switch x.Cmp(t.Mul(t)) {
	case -1:
		return p
	case 1:
		return p.Next()
	default:
		if p.Bits()&1 == 0 {
			return p
		}
		return p.Next()
	}
}

// TestOracleAgreesOnRepresentables sanity-checks the oracle itself.
func TestOracleAgreesOnRepresentables(t *testing.T) {
	f := MustFormat(8, 1)
	for b := uint64(0); b < f.Count(); b++ {
		p := f.FromBits(b)
		if p.IsNaR() {
			continue
		}
		d, _ := p.Dyadic()
		if got := roundValueOracle(f, d); got.Bits() != p.Bits() {
			t.Fatalf("oracle(%v) = %v", p, got)
		}
	}
}

// TestEncoderMatchesOracleOnThresholds drives the encoder with values at
// and around every pattern-space threshold of posit(6,1) and posit(8,0),
// including the regime-transition cases where pattern-space differs from
// value-space rounding.
func TestEncoderMatchesOracleOnThresholds(t *testing.T) {
	for _, f := range []Format{MustFormat(6, 1), MustFormat(8, 0), MustFormat(7, 2)} {
		pos := positivePosits(f)
		for i := 0; i+1 < len(pos); i++ {
			th := thresholdAbove(pos[i])
			for _, x := range []dyadic.D{
				th,
				th.Mul(dyadic.New(4097, -12)), // th * (1 + 2^-12)
				th.Mul(dyadic.New(4095, -12)), // th * (1 - 2^-12)
			} {
				want := roundValueOracle(f, x)
				got := f.FromDyadic(x)
				if got.Bits() != want.Bits() {
					t.Fatalf("%s: x=%v: encoder %v oracle %v (threshold of %v)",
						f, x, got, want, pos[i])
				}
				// negative mirror
				wantN := roundValueOracle(f, x.Neg())
				gotN := f.FromDyadic(x.Neg())
				if gotN.Bits() != wantN.Bits() {
					t.Fatalf("%s: x=-%v: encoder %v oracle %v", f, x, gotN, wantN)
				}
			}
		}
	}
}
