package posit

import (
	"math"
	"strings"
	"testing"
)

// TestRegimeTableI reproduces Table I of the paper exactly: the regime
// interpretation of six binary strings.
func TestRegimeTableI(t *testing.T) {
	table := []struct {
		bits string
		k    int
	}{
		{"0001", -3},
		{"001", -2},
		{"01", -1},
		{"10", 0},
		{"110", 1},
		{"1110", 2},
	}
	for _, row := range table {
		got, err := RegimeFromRun(row.bits)
		if err != nil {
			t.Fatalf("RegimeFromRun(%q): %v", row.bits, err)
		}
		if got != row.k {
			t.Errorf("RegimeFromRun(%q) = %d want %d", row.bits, got, row.k)
		}
	}
}

func TestRegimeFromRunErrors(t *testing.T) {
	for _, s := range []string{"", "2", "0101", "1101"} {
		if _, err := RegimeFromRun(s); err == nil {
			t.Errorf("RegimeFromRun(%q) should fail", s)
		}
	}
	// pure runs without terminator are valid
	if k, err := RegimeFromRun("1111"); err != nil || k != 3 {
		t.Errorf("RegimeFromRun(1111) = %d,%v", k, err)
	}
	if k, err := RegimeFromRun("0000"); err != nil || k != -4 {
		t.Errorf("RegimeFromRun(0000) = %d,%v", k, err)
	}
}

func TestBitString(t *testing.T) {
	f := MustFormat(8, 1)
	p, err := f.ParseBits("01010110")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.BitString(); got != "0|10|1|0110" {
		t.Errorf("BitString = %q", got)
	}
	if got := f.Zero().BitString(); got != "00000000" {
		t.Errorf("zero BitString = %q", got)
	}
	if got := f.NaR().BitString(); got != "10000000" {
		t.Errorf("NaR BitString = %q", got)
	}
}

func TestBitStringRoundTrips(t *testing.T) {
	f := MustFormat(8, 2)
	for b := uint64(0); b < f.Count(); b++ {
		p := f.FromBits(b)
		back, err := f.ParseBits(p.BitString())
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", p.BitString(), err)
		}
		if back.Bits() != p.Bits() {
			t.Fatalf("BitString round trip failed for %08b", b)
		}
	}
}

func TestParseBitsErrors(t *testing.T) {
	f := MustFormat(8, 0)
	if _, err := f.ParseBits("0101"); err == nil {
		t.Error("short pattern should fail")
	}
	if _, err := f.ParseBits("01012110"); err == nil {
		t.Error("non-binary pattern should fail")
	}
}

func TestStringRendering(t *testing.T) {
	f := MustFormat(8, 0)
	s := f.One().String()
	if !strings.Contains(s, "=1") {
		t.Errorf("One renders as %q", s)
	}
	if !strings.Contains(f.NaR().String(), "NaR") {
		t.Errorf("NaR renders as %q", f.NaR().String())
	}
}

func TestFastSigmoid(t *testing.T) {
	f := MustFormat(8, 0)
	// The approximation must be monotone, bounded to (0,1), exact at 0
	// (sigmoid(0)=0.5) and close to the true sigmoid elsewhere.
	if got := f.Zero().FastSigmoid().Float64(); got != 0.5 {
		t.Errorf("fast sigmoid(0) = %v want 0.5", got)
	}
	maxErr := 0.0
	prev := -1.0
	for sb := -int64(127); sb <= 127; sb++ {
		p := f.FromBits(uint64(sb) & f.Mask())
		if p.IsNaR() {
			continue
		}
		s := p.FastSigmoid().Float64()
		x := p.Float64()
		want := 1 / (1 + math.Exp(-x))
		if e := math.Abs(s - want); e > maxErr {
			maxErr = e
		}
		if s < 0 || s > 1 {
			t.Fatalf("fast sigmoid out of range: σ(%g)=%g", x, s)
		}
		if s < prev {
			t.Fatalf("fast sigmoid not monotone at x=%g", x)
		}
		prev = s
	}
	if maxErr > 0.065 {
		t.Errorf("fast sigmoid max error %.4f exceeds expected bound", maxErr)
	}
	t.Logf("fast sigmoid max abs error vs exact: %.4f", maxErr)
}

func TestFastSigmoidRequiresES0(t *testing.T) {
	f := MustFormat(8, 1)
	if f.FastSigmoidValid() {
		t.Error("es=1 must not claim FastSigmoid support")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FastSigmoid on es=1 must panic")
		}
	}()
	f.One().FastSigmoid()
}
