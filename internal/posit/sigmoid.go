package posit

// FastSigmoid computes Gustafson's fast sigmoid approximation for es = 0
// posits: flipping the sign bit and shifting the pattern right by two
// approximates 1/(1+e^-x) with no arithmetic at all. This is the
// "extension" the posit-DNN literature highlights as a hardware bonus of
// the format (cited by the paper's related work via [10]); we include it
// as an optional activation for Deep Positron networks.
//
// The trick requires es == 0; calling it on other formats panics.
func (p Posit) FastSigmoid() Posit {
	if p.f.es != 0 {
		panic("posit: FastSigmoid requires es == 0")
	}
	if p.IsNaR() {
		return p
	}
	bits := (p.bits ^ p.f.signBit()) >> 2
	return Posit{f: p.f, bits: bits & p.f.Mask()}
}

// FastSigmoidValid reports whether the format supports FastSigmoid.
func (f Format) FastSigmoidValid() bool { return f.valid() && f.es == 0 }
