package posit

import (
	"math"
	"testing"
)

func TestNewFormatValidation(t *testing.T) {
	cases := []struct {
		n, es uint
		ok    bool
	}{
		{3, 0, true}, {8, 0, true}, {8, 1, true}, {8, 2, true},
		{16, 1, true}, {32, 2, true}, {32, 5, true},
		{2, 0, false}, {0, 0, false}, {33, 0, false}, {8, 6, false},
	}
	for _, c := range cases {
		_, err := NewFormat(c.n, c.es)
		if (err == nil) != c.ok {
			t.Errorf("NewFormat(%d,%d): err=%v, want ok=%v", c.n, c.es, err, c.ok)
		}
	}
}

func TestMustFormatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFormat(2,0) should panic")
		}
	}()
	MustFormat(2, 0)
}

func TestSpecialValues(t *testing.T) {
	for _, es := range []uint{0, 1, 2, 3} {
		for _, n := range []uint{5, 6, 7, 8, 16} {
			f := MustFormat(n, es)
			if !f.Zero().IsZero() {
				t.Errorf("%s: Zero not zero", f)
			}
			if !f.NaR().IsNaR() {
				t.Errorf("%s: NaR not NaR", f)
			}
			if got := f.NaR().Bits(); got != uint64(1)<<(n-1) {
				t.Errorf("%s: NaR bits %x", f, got)
			}
			if v := f.One().Float64(); v != 1.0 {
				t.Errorf("%s: One = %v", f, v)
			}
			wantMax := math.Pow(f.USeed(), float64(n-2))
			if v := f.MaxPos().Float64(); v != wantMax {
				t.Errorf("%s: MaxPos = %g want %g", f, v, wantMax)
			}
			wantMin := math.Pow(f.USeed(), -float64(n-2))
			if v := f.MinPos().Float64(); v != wantMin {
				t.Errorf("%s: MinPos = %g want %g", f, v, wantMin)
			}
		}
	}
}

func TestUSeed(t *testing.T) {
	want := map[uint]float64{0: 2, 1: 4, 2: 16, 3: 256, 4: 65536}
	for es, u := range want {
		f := MustFormat(8, es)
		if got := f.USeed(); got != u {
			t.Errorf("useed(es=%d) = %v want %v", es, got, u)
		}
	}
}

func TestDynamicRangeLog10(t *testing.T) {
	// posit(8,0): max/min = 2^12 ... dynamic range = log10(2^24)? No:
	// max = useed^6 = 2^6, min = 2^-6, ratio 2^12.
	f := MustFormat(8, 0)
	want := 12 * math.Log10(2)
	if got := f.DynamicRangeLog10(); math.Abs(got-want) > 1e-12 {
		t.Errorf("dynamic range = %v want %v", got, want)
	}
	// posit(8,1): ratio = 4^12 = 2^24
	f = MustFormat(8, 1)
	want = 24 * math.Log10(2)
	if got := f.DynamicRangeLog10(); math.Abs(got-want) > 1e-12 {
		t.Errorf("dynamic range = %v want %v", got, want)
	}
}

func TestNegation(t *testing.T) {
	f := MustFormat(8, 1)
	for b := uint64(0); b < f.Count(); b++ {
		p := f.FromBits(b)
		n := p.Neg()
		if p.IsNaR() {
			if !n.IsNaR() {
				t.Fatalf("-NaR must be NaR")
			}
			continue
		}
		if got, want := n.Float64(), -p.Float64(); got != want {
			t.Fatalf("Neg(%v) = %v want %v", p, got, want)
		}
		if back := n.Neg(); back.Bits() != p.Bits() {
			t.Fatalf("double negation of %v changed pattern", p)
		}
	}
}

func TestAbs(t *testing.T) {
	f := MustFormat(7, 0)
	for b := uint64(0); b < f.Count(); b++ {
		p := f.FromBits(b)
		if p.IsNaR() {
			continue
		}
		if got, want := p.Abs().Float64(), math.Abs(p.Float64()); got != want {
			t.Fatalf("Abs(%v) = %v want %v", p, got, want)
		}
	}
}

// TestMonotonicity verifies the headline hardware property: posit patterns,
// read as n-bit two's-complement integers, order exactly like the real
// values they encode (with NaR at the bottom).
func TestMonotonicity(t *testing.T) {
	for _, es := range []uint{0, 1, 2} {
		f := MustFormat(8, es)
		var prev float64
		first := true
		for sb := -int64(1 << 7); sb < 1<<7; sb++ {
			p := f.FromBits(uint64(sb) & f.Mask())
			if p.IsNaR() {
				continue
			}
			v := p.Float64()
			if !first && v <= prev {
				t.Fatalf("%s: pattern order violated at %v (%g after %g)", f, p, v, prev)
			}
			prev = v
			first = false
		}
	}
}

func TestCmpMatchesFloat(t *testing.T) {
	f := MustFormat(6, 1)
	ps := f.Posits()
	for _, a := range ps {
		for _, b := range ps {
			if a.IsNaR() || b.IsNaR() {
				continue
			}
			got := a.Cmp(b)
			va, vb := a.Float64(), b.Float64()
			want := 0
			if va < vb {
				want = -1
			} else if va > vb {
				want = 1
			}
			if got != want {
				t.Fatalf("Cmp(%v,%v) = %d want %d", a, b, got, want)
			}
		}
	}
}

func TestSignedBits(t *testing.T) {
	f := MustFormat(8, 0)
	if got := f.FromBits(0xFF).SignedBits(); got != -1 {
		t.Errorf("SignedBits(0xFF) = %d want -1", got)
	}
	if got := f.FromBits(0x7F).SignedBits(); got != 127 {
		t.Errorf("SignedBits(0x7F) = %d want 127", got)
	}
}
