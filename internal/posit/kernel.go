package posit

// DenseKernel is the pre-decoded batched datapath for one dense layer:
// y[j] = round(b[j] + Σ_i W[j][i]·x[i]), one rounding per output. Weights
// and biases are decoded exactly once at construction (network
// quantisation time); per forward pass the activations are decoded once
// into a reused scratch buffer and a single inline-register quire is
// reset and reused across rows, so the MAC loop itself performs no
// decode, no interface dispatch and no heap allocation. Results are
// bit-identical to driving a per-neuron Quire through ResetToBias/MulAdd/
// Result, which the equivalence tests verify.
type DenseKernel struct {
	f       Format
	in, out int
	w       []pdec   // row-major out×in pre-decoded weights
	b       []pdec   // pre-decoded biases
	acts    []pdec   // activation scratch, decoded once per Forward
	outBuf  []uint64 // result scratch for the Posit-typed Forward
	// narRow[j] records a NaR weight or bias in row j (precomputed so
	// the MAC loop carries no NaR branch); a NaR activation poisons
	// every row, matching MulAdd semantics.
	narRow []bool
	q      Quire
}

// NewDenseKernel pre-decodes a row-major weight matrix (out rows of in
// weights) and bias vector of format f into a reusable layer kernel.
func NewDenseKernel(f Format, w [][]Posit, b []Posit) *DenseKernel {
	f.mustValid()
	out := len(w)
	if len(b) != out {
		panic("posit: DenseKernel bias length mismatch")
	}
	if out == 0 {
		panic("posit: DenseKernel with no outputs")
	}
	in := len(w[0])
	if in == 0 {
		panic("posit: DenseKernel with no inputs")
	}
	k := &DenseKernel{
		f:      f,
		in:     in,
		out:    out,
		w:      make([]pdec, out*in),
		b:      make([]pdec, out),
		acts:   make([]pdec, in),
		outBuf: make([]uint64, out),
		narRow: make([]bool, out),
	}
	for j, row := range w {
		if len(row) != in {
			panic("posit: DenseKernel ragged weight matrix")
		}
		predecodeInto(k.w[j*in:(j+1)*in], row, f)
	}
	predecodeInto(k.b, b, f)
	for j := 0; j < out; j++ {
		nar := k.b[j].cls == pdNaR
		for _, wd := range k.w[j*in : (j+1)*in] {
			if wd.cls == pdNaR {
				nar = true
				break
			}
		}
		k.narRow[j] = nar
	}
	// The register is sized for in accumulations, matching a per-neuron
	// EMAC built with NewMAC(in).
	k.q.init(f, in, 0)
	return k
}

// In returns the layer fan-in.
func (k *DenseKernel) In() int { return k.in }

// Out returns the layer width.
func (k *DenseKernel) Out() int { return k.out }

// Format returns the kernel's posit format.
func (k *DenseKernel) Format() Format { return k.f }

// Forward computes out[j] = round(b[j] + Σ_i W[j][i]·act[i]) for every
// row. len(act) must equal In() and len(dst) must equal Out(). No
// activation function is applied. Not safe for concurrent use (the
// register and activation scratch are reused).
func (k *DenseKernel) Forward(act []Posit, dst []Posit) {
	if len(act) != k.in {
		panic("posit: DenseKernel input size mismatch")
	}
	if len(dst) != k.out {
		panic("posit: DenseKernel output size mismatch")
	}
	predecodeInto(k.acts, act, k.f)
	k.forwardDecoded(k.outBuf)
	for j, bits := range k.outBuf {
		dst[j] = Posit{f: k.f, bits: bits}
	}
}

// ForwardBits is Forward on raw bit patterns (the emac.Code plane): act
// and dst hold n-bit patterns of the kernel's format. This is the entry
// point the EMAC layer kernels use, avoiding any Posit wrapping in the
// caller's loop.
func (k *DenseKernel) ForwardBits(act, dst []uint64) {
	if len(act) != k.in {
		panic("posit: DenseKernel input size mismatch")
	}
	if len(dst) != k.out {
		panic("posit: DenseKernel output size mismatch")
	}
	t := k.f.decTab()
	for i, bits := range act {
		k.acts[i] = predecodeBits(k.f, t, bits&k.f.Mask())
	}
	k.forwardDecoded(dst)
}

// forwardDecoded runs the row loop once k.acts holds the decoded
// activations, picking the small-register fast path when the quire fits.
func (k *DenseKernel) forwardDecoded(dst []uint64) {
	q := &k.q
	if q.smallWords() > 0 {
		// The small tiers hoist NaR detection out of the MAC loop; the
		// generic path below handles NaR per-operand in mulAddPre.
		actNaR := false
		for i := range k.acts {
			if k.acts[i].cls == pdNaR {
				actNaR = true
				break
			}
		}
		k.forwardSmall(dst, actNaR)
		return
	}
	for j := 0; j < k.out; j++ {
		q.Reset()
		q.addPre(&k.b[j])
		row := k.w[j*k.in : (j+1)*k.in]
		for i := range row {
			q.mulAddPre(&row[i], &k.acts[i])
		}
		dst[j] = q.Result().bits
	}
}

// forwardSmall runs the row loop on a local 128-bit register (the
// register of every small-format quire fits two words), writing it back
// into the quire only for the per-row rounding. k.acts must already hold
// the decoded activations; actNaR reports a NaR among them (poisons every
// row, exactly as per-MAC accumulation would). The inner loops are
// branchless: zero/NaR operands carry sig = 0 and the sign is a XOR mask.
func (k *DenseKernel) forwardSmall(dst []uint64, actNaR bool) {
	q := &k.q
	fb := int(q.fracBits)
	single := q.words == 1
	for j := 0; j < k.out; j++ {
		if actNaR || k.narRow[j] {
			dst[j] = q.f.NaR().bits
			continue
		}
		var a0, a1 uint64
		if b := &k.b[j]; b.cls == pdReal {
			a0, a1 = acc128(a0, a1, b.sig, uint(fb+int(b.adj)), b.sgn != 0)
		}
		row := k.w[j*k.in : (j+1)*k.in]
		acts := k.acts[:len(row)]
		if single {
			// Single-word tier: accumulate in one register (see the
			// DotProduct fast path).
			for i := range row {
				w, x := &row[i], &acts[i]
				v := w.sig * x.sig << uint(fb+int(w.adj)+int(x.adj))
				sm := w.sgn ^ x.sgn
				a0 += (v ^ sm) - sm
			}
		} else {
			for i := range row {
				w, x := &row[i], &acts[i]
				a0, a1 = accSigned128(a0, a1, w.sig*x.sig,
					uint(fb+int(w.adj)+int(x.adj)), w.sgn^x.sgn)
			}
		}
		if single {
			// Keep the invariant that inline words beyond q.words stay
			// zero: a1 holds 128-bit sign-extension garbage here.
			a1 = 0
		}
		q.nar = false
		q.sw[0], q.sw[1] = a0, a1
		q.snorm()
		dst[j] = q.Result().bits
	}
}
