package posit

// Native Go fuzz targets. `go test` runs them over the seed corpus; run
// `go test -fuzz FuzzPositMulOracle ./internal/posit` for open-ended
// exploration. Every target checks the full correctness contract against
// the exact dyadic oracle, not just "doesn't panic".

import "testing"

// fuzzFormat maps two fuzzed bytes onto a valid (n, es).
func fuzzFormat(nb, eb byte) Format {
	n := 3 + uint(nb)%30 // 3..32
	es := uint(eb) % 6   // 0..5
	return MustFormat(n, es)
}

func FuzzPositRoundTrip(f *testing.F) {
	f.Add(uint64(0x52), byte(8), byte(0))
	f.Add(uint64(0xFFFF), byte(16), byte(2))
	f.Add(uint64(0x80000001), byte(32), byte(5))
	f.Fuzz(func(t *testing.T, bits uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		p := fm.FromBits(bits)
		if p.IsNaR() {
			if !fm.FromFloat64(p.Float64()).IsNaR() {
				t.Fatal("NaR roundtrip")
			}
			return
		}
		if back := fm.FromFloat64(p.Float64()); back.Bits() != p.Bits() {
			t.Fatalf("%s: %#x -> %g -> %#x", fm, p.Bits(), p.Float64(), back.Bits())
		}
	})
}

func FuzzPositMulOracle(f *testing.F) {
	f.Add(uint64(3), uint64(5), byte(8), byte(1))
	f.Add(uint64(0x7FFF), uint64(0x8001), byte(16), byte(2))
	f.Fuzz(func(t *testing.T, a, b uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		pa, pb := fm.FromBits(a), fm.FromBits(b)
		got := pa.Mul(pb)
		if pa.IsNaR() || pb.IsNaR() {
			if !got.IsNaR() {
				t.Fatal("NaR propagation")
			}
			return
		}
		da, _ := pa.Dyadic()
		db, _ := pb.Dyadic()
		prod := da.Mul(db)
		if prod.IsZero() {
			if !got.IsZero() {
				t.Fatalf("%s: %v*%v = %v want 0", fm, pa, pb, got)
			}
			return
		}
		if want := fm.FromDyadic(prod); got.Bits() != want.Bits() {
			t.Fatalf("%s: %v * %v = %v want %v", fm, pa, pb, got, want)
		}
	})
}

func FuzzPositAddOracle(f *testing.F) {
	f.Add(uint64(3), uint64(5), byte(8), byte(0))
	f.Add(uint64(0x0001), uint64(0xFFFF), byte(16), byte(3))
	f.Fuzz(func(t *testing.T, a, b uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		pa, pb := fm.FromBits(a), fm.FromBits(b)
		got := pa.Add(pb)
		if pa.IsNaR() || pb.IsNaR() {
			if !got.IsNaR() {
				t.Fatal("NaR propagation")
			}
			return
		}
		da, _ := pa.Dyadic()
		db, _ := pb.Dyadic()
		sum := da.Add(db)
		if sum.IsZero() {
			if !got.IsZero() {
				t.Fatalf("%s: %v+%v = %v want 0", fm, pa, pb, got)
			}
			return
		}
		if want := fm.FromDyadic(sum); got.Bits() != want.Bits() {
			t.Fatalf("%s: %v + %v = %v want %v", fm, pa, pb, got, want)
		}
	})
}

func FuzzQuireOracle(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), byte(8), byte(0))
	f.Fuzz(func(t *testing.T, w1, a1, w2, a2 uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		ps := []Posit{fm.FromBits(w1), fm.FromBits(a1), fm.FromBits(w2), fm.FromBits(a2)}
		for _, p := range ps {
			if p.IsNaR() {
				return
			}
		}
		q := NewQuire(fm, 2)
		q.MulAdd(ps[0], ps[1])
		q.MulAdd(ps[2], ps[3])
		d0, _ := ps[0].Dyadic()
		d1, _ := ps[1].Dyadic()
		d2, _ := ps[2].Dyadic()
		d3, _ := ps[3].Dyadic()
		exact := d0.Mul(d1).Add(d2.Mul(d3))
		if got := q.Dyadic(); got.Cmp(exact) != 0 {
			t.Fatalf("%s: quire %v != exact %v", fm, got, exact)
		}
		var want Posit
		if exact.IsZero() {
			want = fm.Zero()
		} else {
			want = fm.FromDyadic(exact)
		}
		if got := q.Result(); got.Bits() != want.Bits() {
			t.Fatalf("%s: result %v want %v", fm, got, want)
		}
	})
}

func FuzzEncodeDecodeBitStrings(f *testing.F) {
	f.Add("01010110", byte(8), byte(1))
	f.Fuzz(func(t *testing.T, s string, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		p, err := fm.ParseBits(s)
		if err != nil {
			return // malformed input is fine
		}
		back, err := fm.ParseBits(p.BitString())
		if err != nil || back.Bits() != p.Bits() {
			t.Fatalf("%s: BitString round trip failed for %q", fm, s)
		}
	})
}
