package posit

// Native Go fuzz targets. `go test` runs them over the seed corpus; run
// `go test -fuzz FuzzPositMulOracle ./internal/posit` for open-ended
// exploration. Every target checks the full correctness contract against
// the exact dyadic oracle, not just "doesn't panic".

import "testing"

// fuzzFormat maps two fuzzed bytes onto a valid (n, es).
func fuzzFormat(nb, eb byte) Format {
	n := 3 + uint(nb)%30 // 3..32
	es := uint(eb) % 6   // 0..5
	return MustFormat(n, es)
}

func FuzzPositRoundTrip(f *testing.F) {
	f.Add(uint64(0x52), byte(8), byte(0))
	f.Add(uint64(0xFFFF), byte(16), byte(2))
	f.Add(uint64(0x80000001), byte(32), byte(5))
	f.Fuzz(func(t *testing.T, bits uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		p := fm.FromBits(bits)
		if p.IsNaR() {
			if !fm.FromFloat64(p.Float64()).IsNaR() {
				t.Fatal("NaR roundtrip")
			}
			return
		}
		if back := fm.FromFloat64(p.Float64()); back.Bits() != p.Bits() {
			t.Fatalf("%s: %#x -> %g -> %#x", fm, p.Bits(), p.Float64(), back.Bits())
		}
	})
}

func FuzzPositMulOracle(f *testing.F) {
	f.Add(uint64(3), uint64(5), byte(8), byte(1))
	f.Add(uint64(0x7FFF), uint64(0x8001), byte(16), byte(2))
	f.Fuzz(func(t *testing.T, a, b uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		pa, pb := fm.FromBits(a), fm.FromBits(b)
		got := pa.Mul(pb)
		if pa.IsNaR() || pb.IsNaR() {
			if !got.IsNaR() {
				t.Fatal("NaR propagation")
			}
			return
		}
		da, _ := pa.Dyadic()
		db, _ := pb.Dyadic()
		prod := da.Mul(db)
		if prod.IsZero() {
			if !got.IsZero() {
				t.Fatalf("%s: %v*%v = %v want 0", fm, pa, pb, got)
			}
			return
		}
		if want := fm.FromDyadic(prod); got.Bits() != want.Bits() {
			t.Fatalf("%s: %v * %v = %v want %v", fm, pa, pb, got, want)
		}
	})
}

func FuzzPositAddOracle(f *testing.F) {
	f.Add(uint64(3), uint64(5), byte(8), byte(0))
	f.Add(uint64(0x0001), uint64(0xFFFF), byte(16), byte(3))
	f.Fuzz(func(t *testing.T, a, b uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		pa, pb := fm.FromBits(a), fm.FromBits(b)
		got := pa.Add(pb)
		if pa.IsNaR() || pb.IsNaR() {
			if !got.IsNaR() {
				t.Fatal("NaR propagation")
			}
			return
		}
		da, _ := pa.Dyadic()
		db, _ := pb.Dyadic()
		sum := da.Add(db)
		if sum.IsZero() {
			if !got.IsZero() {
				t.Fatalf("%s: %v+%v = %v want 0", fm, pa, pb, got)
			}
			return
		}
		if want := fm.FromDyadic(sum); got.Bits() != want.Bits() {
			t.Fatalf("%s: %v + %v = %v want %v", fm, pa, pb, got, want)
		}
	})
}

func FuzzQuireOracle(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), byte(8), byte(0))
	f.Fuzz(func(t *testing.T, w1, a1, w2, a2 uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		ps := []Posit{fm.FromBits(w1), fm.FromBits(a1), fm.FromBits(w2), fm.FromBits(a2)}
		for _, p := range ps {
			if p.IsNaR() {
				return
			}
		}
		q := NewQuire(fm, 2)
		q.MulAdd(ps[0], ps[1])
		q.MulAdd(ps[2], ps[3])
		d0, _ := ps[0].Dyadic()
		d1, _ := ps[1].Dyadic()
		d2, _ := ps[2].Dyadic()
		d3, _ := ps[3].Dyadic()
		exact := d0.Mul(d1).Add(d2.Mul(d3))
		if got := q.Dyadic(); got.Cmp(exact) != 0 {
			t.Fatalf("%s: quire %v != exact %v", fm, got, exact)
		}
		var want Posit
		if exact.IsZero() {
			want = fm.Zero()
		} else {
			want = fm.FromDyadic(exact)
		}
		if got := q.Result(); got.Bits() != want.Bits() {
			t.Fatalf("%s: result %v want %v", fm, got, want)
		}
	})
}

func FuzzEncodeDecodeBitStrings(f *testing.F) {
	f.Add("01010110", byte(8), byte(1))
	f.Fuzz(func(t *testing.T, s string, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		p, err := fm.ParseBits(s)
		if err != nil {
			return // malformed input is fine
		}
		back, err := fm.ParseBits(p.BitString())
		if err != nil || back.Bits() != p.Bits() {
			t.Fatalf("%s: BitString round trip failed for %q", fm, s)
		}
	})
}

// FuzzDecodeLZC drives the leading-run-count decoder (the fast path for
// every format above the table ceiling) against the bit-serial reference.
// The seed corpus concentrates on the n > 8 regime shapes the exhaustive
// small-format tests cannot reach: minpos/maxpos runs, run/terminator
// boundaries, alternating patterns and negative (two's-complemented)
// operands at n up to 32.
func FuzzDecodeLZC(f *testing.F) {
	// (bits, n-selector, es-selector); fuzzFormat maps n = 3 + nb%30.
	seeds := []struct {
		bits   uint64
		nb, eb byte
	}{
		{0x001, 9, 0},                    // minpos, n=12
		{0x7FF, 9, 1},                    // maxpos, n=12
		{0x801, 9, 2},                    // most negative real, n=12
		{0x0001, 13, 0},                  // minpos, n=16
		{0x7FFF, 13, 2},                  // maxpos, n=16
		{0x8001, 13, 3},                  // negative minpos magnitude, n=16
		{0x5555, 13, 1},                  // alternating regime/frac, n=16
		{0x4000, 13, 2},                  // one = 01000..., n=16
		{0x3FFF, 13, 2},                  // just below one
		{0x00000001, 29, 0},              // minpos, n=32
		{0x7FFFFFFF, 29, 2},              // maxpos, n=32
		{0x80000001, 29, 5},              // deep negative, n=32, es=5
		{0x55555555, 29, 1},              // alternating, n=32
		{0x40000000, 29, 2},              // one, n=32
		{0x60000000, 29, 3},              // short run + exponent cut, n=32
		{0x0000FFFF, 29, 2},              // long zero run into ones, n=32
		{0x7FFFFFFE, 29, 0},              // maxpos-1: run terminator at LSB
		{0x2AAAAAAA, 29, 4},              // zero regime then alternating
		{0xB6DB6DB6 & 0xFFFFFFFF, 29, 2}, // 3-periodic pattern
		{0x123456789 & 0xFFFFF, 17, 3},   // n=20 mixed
	}
	for _, s := range seeds {
		f.Add(s.bits, s.nb, s.eb)
	}
	f.Fuzz(func(t *testing.T, bits uint64, nb, eb byte) {
		fm := fuzzFormat(nb, eb)
		p := fm.FromBits(bits)
		if p.IsZero() || p.IsNaR() {
			return
		}
		got, ref := p.decodeLZC(), p.decodeRef()
		if got != ref {
			t.Fatalf("%s pattern %#x: LZC %+v != ref %+v", fm, p.Bits(), got, ref)
		}
		// The packed-table representation must round-trip the same
		// decode wherever a table exists.
		if tab := fm.decTab(); tab != nil {
			if te := unpackDec(tab[p.Bits()]); te != ref {
				t.Fatalf("%s pattern %#x: table %+v != ref %+v", fm, p.Bits(), te, ref)
			}
		}
	})
}
