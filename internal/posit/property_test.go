package posit

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over randomly drawn patterns.

func qcfg() *quick.Config { return &quick.Config{MaxCount: 4000} }

func TestPropMulCommutative(t *testing.T) {
	f := MustFormat(8, 1)
	prop := func(a, b uint8) bool {
		pa, pb := f.FromBits(uint64(a)), f.FromBits(uint64(b))
		return pa.Mul(pb).Bits() == pb.Mul(pa).Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	f := MustFormat(8, 2)
	prop := func(a, b uint8) bool {
		pa, pb := f.FromBits(uint64(a)), f.FromBits(uint64(b))
		return pa.Add(pb).Bits() == pb.Add(pa).Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestPropNegationSymmetry(t *testing.T) {
	f := MustFormat(8, 0)
	prop := func(a, b uint8) bool {
		pa, pb := f.FromBits(uint64(a)), f.FromBits(uint64(b))
		// (-a)*b == -(a*b)
		return pa.Neg().Mul(pb).Bits() == pa.Mul(pb).Neg().Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestPropDoubleNegIdentity(t *testing.T) {
	for _, es := range []uint{0, 1, 2, 3} {
		f := MustFormat(16, es)
		prop := func(a uint16) bool {
			p := f.FromBits(uint64(a))
			return p.Neg().Neg().Bits() == p.Bits()
		}
		if err := quick.Check(prop, qcfg()); err != nil {
			t.Error(err)
		}
	}
}

func TestPropRoundTrip16(t *testing.T) {
	f := MustFormat(16, 1)
	prop := func(a uint16) bool {
		p := f.FromBits(uint64(a))
		if p.IsNaR() {
			return true
		}
		return f.FromFloat64(p.Float64()).Bits() == p.Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestPropRoundTrip32(t *testing.T) {
	f := MustFormat(32, 2)
	prop := func(a uint32) bool {
		p := f.FromBits(uint64(a))
		if p.IsNaR() {
			return true
		}
		return f.FromFloat64(p.Float64()).Bits() == p.Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestPropMonotoneRounding: FromFloat64 must be monotone: x <= y implies
// posit(x) <= posit(y).
func TestPropMonotoneRounding(t *testing.T) {
	f := MustFormat(8, 1)
	prop := func(xb, yb uint16) bool {
		// map uint16 into a modest float range, including negatives
		x := (float64(xb) - 32768) / 256
		y := (float64(yb) - 32768) / 256
		if x > y {
			x, y = y, x
		}
		return f.FromFloat64(x).Cmp(f.FromFloat64(y)) <= 0
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestPropMulVsFloat64UpperBound: the rounded product can differ from the
// true product by at most one final-grid step (sanity envelope).
func TestPropMulRoundedWithinOneULP(t *testing.T) {
	f := MustFormat(8, 0)
	prop := func(a, b uint8) bool {
		pa, pb := f.FromBits(uint64(a)), f.FromBits(uint64(b))
		if pa.IsNaR() || pb.IsNaR() {
			return true
		}
		exact := pa.Float64() * pb.Float64()
		got := pa.Mul(pb)
		// got must be one of the two posits bracketing exact (or a
		// saturation endpoint).
		lower := f.FromFloat64(exact)
		return got.Bits() == lower.Bits() ||
			got.Bits() == lower.Next().Bits() ||
			got.Bits() == lower.Prev().Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestPropQuireMatchesScalarChain: for k=1 the quire result equals the
// scalar multiply.
func TestPropQuireSingleEqualsMul(t *testing.T) {
	f := MustFormat(8, 2)
	prop := func(a, b uint8) bool {
		pa, pb := f.FromBits(uint64(a)), f.FromBits(uint64(b))
		q := NewQuire(f, 1)
		q.MulAdd(pa, pb)
		return q.Result().Bits() == pa.Mul(pb).Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestPropAbsNonNegative and ordering of Next/Prev.
func TestPropNextPrevAdjacency(t *testing.T) {
	f := MustFormat(8, 1)
	prop := func(a uint8) bool {
		p := f.FromBits(uint64(a))
		if p.IsNaR() {
			return p.Next().IsNaR() && p.Prev().IsNaR()
		}
		n := p.Next()
		if p.Bits() == f.MaxPos().Bits() {
			return n.Bits() == p.Bits()
		}
		if n.IsNaR() {
			return false
		}
		return n.Float64() > p.Float64() && n.Prev().Bits() == p.Bits()
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestPropSqrtMulSelf(t *testing.T) {
	f := MustFormat(16, 1)
	prop := func(a uint16) bool {
		p := f.FromBits(uint64(a))
		if p.IsNaR() || p.Negative() || p.IsZero() {
			return true
		}
		r := p.Sqrt()
		// r^2 must be within one grid step of p
		rr := r.Mul(r)
		return math.Abs(rr.Float64()-p.Float64()) <= 2.0*math.Max(p.ULP(), rr.ULP())
	}
	if err := quick.Check(prop, qcfg()); err != nil {
		t.Error(err)
	}
}
