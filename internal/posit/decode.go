package posit

import (
	mbits "math/bits"

	"repro/internal/bitutil"
)

// decoded is the unpacked form of a nonzero, non-NaR posit produced by the
// data-extraction step of the paper's Algorithm 1: sign, scale factor
// (regime and exponent combined, sf = k*2^es + e) and the significand with
// its hidden bit.
//
// The represented value is
//
//	(-1)^sign × 2^sf × sig / 2^(sigW-1)
//
// i.e. sig holds sigW bits whose most significant bit is the hidden 1.
type decoded struct {
	sign bool
	sf   int    // scale factor k*2^es + e
	sig  uint64 // significand including hidden bit, MSB at sigW-1
	sigW uint   // significand width in bits (>= 1)
}

// regime returns the regime value k and exponent e recovered from sf.
func (d decoded) regime(es uint) (k int, e uint) {
	k = floorDiv(d.sf, 1<<es)
	e = uint(d.sf - k*(1<<es))
	return k, e
}

// floorDiv is floor(a / 2^shiftPow)-style division for signed a with a
// positive power-of-two divisor.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Decode unpacks a posit into sign, regime k, exponent e and fraction
// field (without hidden bit), mirroring Algorithm 1 of the paper. It is
// exported for tools/tests; arithmetic uses the internal decode.
// Decoding zero or NaR returns ok == false.
func (p Posit) Decode() (sign bool, k int, e uint, frac uint64, fracW uint, ok bool) {
	if p.bits == 0 || p.IsNaR() {
		return false, 0, 0, 0, 0, false
	}
	d := p.decode()
	k, e = d.regime(p.f.es)
	return d.sign, k, e, d.sig & bitutil.Mask(d.sigW-1), d.sigW - 1, true
}

// decode performs the Algorithm 1 data extraction. The caller must have
// excluded zero and NaR. Small formats resolve through the per-format
// decode table (see table.go); larger ones use the leading-run-count
// decoder. Both are verified bit-identical to decodeRef, the bit-serial
// reference, by the exhaustive and fuzz equivalence tests.
func (p Posit) decode() decoded {
	if t := p.f.decTab(); t != nil {
		return unpackDec(t[p.bits])
	}
	return p.decodeLZC()
}

// decodeLZC is the Algorithm 1 data extraction with the regime run length
// obtained from a single leading-run count (math/bits) instead of the
// bit-serial loop — the software analogue of the hardware LZD after the
// conditional invert (Alg. 1 lines 5-8).
func (p Posit) decodeLZC() decoded {
	f := p.f
	n := f.n
	bits := p.bits & f.Mask()
	sign := bits&f.signBit() != 0
	ap := bits
	if sign {
		ap = bitutil.TwosComplement(bits, n)
	}
	// Left-justify the regime field (bits n-2..0 of ap) so its first bit
	// sits at bit 63. ap has its sign bit clear after the two's
	// complement, so only the n-1 regime/exponent/fraction bits remain.
	x := ap << (65 - n)
	var run uint
	rc := uint64(x >> 63)
	if rc == 1 {
		run = uint(mbits.LeadingZeros64(^x))
	} else {
		// ap != 0 guarantees a 1 bit inside the field, so the count
		// cannot run into the low zero padding.
		run = uint(mbits.LeadingZeros64(x))
	}
	var k int
	if rc == 1 {
		k = int(run) - 1
	} else {
		k = -int(run)
	}
	return finishDecode(f, sign, ap, run, k)
}

// decodeRef is the bit-serial reference decoder: the regime run is counted
// bit by bit, exactly as the paper's Algorithm 1 describes it. It is the
// oracle the table and LZC fast paths are validated against, and the
// implementation the decode tables are built from.
func (p Posit) decodeRef() decoded {
	f := p.f
	n := f.n
	bits := p.bits & f.Mask()
	sign := bits&f.signBit() != 0
	ap := bits
	if sign {
		// line 4: two's complement before decoding
		ap = bitutil.TwosComplement(bits, n)
	}
	// Regime: run length of identical bits starting at position n-2
	// (lines 5-8: the hardware inverts when the run is ones so a single
	// LZD suffices; in software we count directly).
	rc := bitutil.Bit(ap, n-2) // regime check bit
	run := uint(1)
	for run < n-1 && bitutil.Bit(ap, n-2-run) == rc {
		run++
	}
	var k int
	if rc == 1 {
		k = int(run) - 1
	} else {
		k = -int(run)
	}
	return finishDecode(f, sign, ap, run, k)
}

// finishDecode extracts exponent and fraction once the regime run length
// and value are known (shared tail of the reference and LZC decoders).
func finishDecode(f Format, sign bool, ap uint64, run uint, k int) decoded {
	n := f.n
	// Bits consumed: sign (1) + run + terminator (1, unless the run
	// reached bit 0).
	rem := int(n) - 1 - int(run) - 1
	if rem < 0 {
		rem = 0
	}
	// Exponent: next es bits; any cut-off low exponent bits read as 0.
	es := f.es
	eAvail := uint(rem)
	if eAvail > es {
		eAvail = es
	}
	var e uint
	if eAvail > 0 {
		e = uint((ap >> (uint(rem) - eAvail)) & bitutil.Mask(eAvail))
	}
	e <<= es - eAvail
	// Fraction: whatever remains below the exponent.
	fw := uint(rem) - eAvail
	frac := ap & bitutil.Mask(fw)
	return decoded{
		sign: sign,
		sf:   k*(1<<es) + int(e),
		sig:  frac | uint64(1)<<fw,
		sigW: fw + 1,
	}
}

// Scale returns floor(log2 |p|) for nonzero, non-NaR p: the combined
// regime/exponent scale factor.
func (p Posit) Scale() (int, bool) {
	if p.bits == 0 || p.IsNaR() {
		return 0, false
	}
	return p.decode().sf, true
}

// FracBits reports how many fraction bits (excluding the hidden bit) the
// pattern actually carries — posits taper: values near 1 get the most.
func (p Posit) FracBits() (uint, bool) {
	if p.bits == 0 || p.IsNaR() {
		return 0, false
	}
	return p.decode().sigW - 1, true
}
