package posit

// Equivalence tests for the precomputed fast paths: every table/LZC/
// shift-based implementation must be bit-identical to its bit-serial
// reference over the ENTIRE operand space for small formats (the paper's
// accuracy claims ride on these paths), and on dense samples beyond.

import (
	"testing"

	"repro/internal/rng"
)

// smallFormats enumerates every format with n <= max and every legal es
// (the tables engage for any es <= MaxES, so the exhaustive equivalence
// bar must cover all of them, not just the experiment sweep's es <= 3).
func smallFormats(max uint) []Format {
	var out []Format
	for n := uint(3); n <= max; n++ {
		for es := uint(0); es <= MaxES; es++ {
			out = append(out, MustFormat(n, es))
		}
	}
	return out
}

// TestDecodeTableExhaustive: table decode and LZC decode agree with the
// bit-serial reference on every pattern of every format up to the table
// ceiling (this covers all 2^n patterns — zero and NaR excluded, as
// decode contracts require).
func TestDecodeTableExhaustive(t *testing.T) {
	for _, f := range smallFormats(decTabMaxN) {
		nar := f.signBit()
		for bits := uint64(0); bits < f.Count(); bits++ {
			if bits == 0 || bits == nar {
				continue
			}
			p := f.FromBits(bits)
			ref := p.decodeRef()
			if got := p.decode(); got != ref {
				t.Fatalf("%s pattern %#x: table decode %+v != ref %+v", f, bits, got, ref)
			}
			if got := p.decodeLZC(); got != ref {
				t.Fatalf("%s pattern %#x: LZC decode %+v != ref %+v", f, bits, got, ref)
			}
		}
	}
}

// TestDecodeLZCExhaustiveMid: the LZC decoder alone, exhaustively for the
// widths just beyond the table ceiling (n = 13..16, all 2^n patterns).
func TestDecodeLZCExhaustiveMid(t *testing.T) {
	for n := uint(13); n <= 16; n++ {
		for _, es := range []uint{0, 2, 5} {
			f := MustFormat(n, es)
			nar := f.signBit()
			for bits := uint64(0); bits < f.Count(); bits++ {
				if bits == 0 || bits == nar {
					continue
				}
				p := f.FromBits(bits)
				if got, ref := p.decodeLZC(), p.decodeRef(); got != ref {
					t.Fatalf("%s pattern %#x: LZC %+v != ref %+v", f, bits, got, ref)
				}
			}
		}
	}
}

// TestDecodeLZCSampledWide: sampled agreement up to n = 32.
func TestDecodeLZCSampledWide(t *testing.T) {
	r := rng.New(0x7AB1E)
	for _, f := range largeFormats() {
		for i := 0; i < 20000; i++ {
			p := f.FromBits(r.Uint64() & f.Mask())
			if p.IsZero() || p.IsNaR() {
				continue
			}
			if got, ref := p.decodeLZC(), p.decodeRef(); got != ref {
				t.Fatalf("%s pattern %#x: LZC %+v != ref %+v", f, p.Bits(), got, ref)
			}
		}
	}
}

// TestOpTablesExhaustive: the Mul/Add result tables agree with the direct
// implementations over all 2^n × 2^n operand pairs for every n <= 8
// format — the acceptance bar for the tabled arithmetic (zero and NaR
// rows/columns included).
func TestOpTablesExhaustive(t *testing.T) {
	for _, f := range smallFormats(opTabMaxN) {
		count := f.Count()
		for a := uint64(0); a < count; a++ {
			pa := f.FromBits(a)
			for b := uint64(0); b < count; b++ {
				pb := f.FromBits(b)
				if got, ref := pa.Mul(pb), pa.mulRef(pb); got.Bits() != ref.Bits() {
					t.Fatalf("%s: %#x * %#x = %#x want %#x", f, a, b, got.Bits(), ref.Bits())
				}
				if got, ref := pa.Add(pb), pa.addRef(pb); got.Bits() != ref.Bits() {
					t.Fatalf("%s: %#x + %#x = %#x want %#x", f, a, b, got.Bits(), ref.Bits())
				}
			}
		}
	}
}

// TestEncodeDirectedVsRef: the shift-based encoder against the bit-serial
// writer over a DIRECTED sweep for every tabled format: all sf values
// across (and beyond) the saturation range × boundary significand shapes
// × both sticky values. This is the independent, non-circular encode
// coverage that the op-table and quire tests rely on — they all route
// through the fast encode, so a rounding edge here must be caught
// directly, not through them.
func TestEncodeDirectedVsRef(t *testing.T) {
	r := rng.New(0xD123C7)
	for _, f := range smallFormats(decTabMaxN) {
		lo, hi := 2*f.MinScale()-4, 2*f.MaxScale()+4
		for sf := lo; sf <= hi; sf++ {
			for _, sigW := range []uint{1, 2, 3, uint(f.N()) - 1, uint(f.N()), uint(f.N()) + 1, 2 * uint(f.N()), 40, 63} {
				hidden := uint64(1) << (sigW - 1)
				sigs := [4]uint64{
					hidden,                         // fraction all zeros (ties)
					hidden | (hidden - 1),          // fraction all ones (round-up cascades)
					hidden | 1,                     // sticky-like LSB
					hidden | r.Uint64()&(hidden-1), // random fill
				}
				for _, sig := range sigs {
					for _, sticky := range []bool{false, true} {
						got := f.encode(false, sf, sig, sigW, sticky)
						ref := f.encodeRef(false, sf, sig, sigW, sticky)
						if got.Bits() != ref.Bits() {
							t.Fatalf("%s encode(sf=%d sig=%#x sigW=%d sticky=%v) = %#x want %#x",
								f, sf, sig, sigW, sticky, got.Bits(), ref.Bits())
						}
						gotN := f.encode(true, sf, sig, sigW, sticky)
						refN := f.encodeRef(true, sf, sig, sigW, sticky)
						if gotN.Bits() != refN.Bits() {
							t.Fatalf("%s encode(neg sf=%d sig=%#x sigW=%d sticky=%v) = %#x want %#x",
								f, sf, sig, sigW, sticky, gotN.Bits(), refN.Bits())
						}
					}
				}
			}
		}
	}
}

// TestEncodeFastVsRef: the shift-based encoder against the bit-serial
// writer over a dense random sweep of (sign, sf, sig, sigW, sticky)
// tuples, for every small format and a spread of large ones.
func TestEncodeFastVsRef(t *testing.T) {
	fmts := append(smallFormats(12), largeFormats()...)
	r := rng.New(0xE2C0DE)
	for _, f := range fmts {
		// sf range well beyond saturation on both sides.
		lo, hi := 2*f.MinScale()-8, 2*f.MaxScale()+8
		for trial := 0; trial < 4000; trial++ {
			sigW := uint(1 + r.Intn(60))
			sig := uint64(1) << (sigW - 1)
			if sigW > 1 {
				sig |= r.Uint64() & (sig - 1)
			}
			sf := lo + r.Intn(hi-lo+1)
			sign := r.Intn(2) == 1
			sticky := r.Intn(2) == 1
			got := f.encode(sign, sf, sig, sigW, sticky)
			ref := f.encodeRef(sign, sf, sig, sigW, sticky)
			if got.Bits() != ref.Bits() {
				t.Fatalf("%s encode(sign=%v sf=%d sig=%#x sigW=%d sticky=%v) = %#x want %#x",
					f, sign, sf, sig, sigW, sticky, got.Bits(), ref.Bits())
			}
		}
	}
}

// TestDotProductFastVsGeneric: the table fast path of DotProduct against
// a plain MulAdd quire loop, including NaR and zero operands.
func TestDotProductFastVsGeneric(t *testing.T) {
	r := rng.New(0xD07)
	// posit(10,3) and posit(12,3) have decode tables but quires wider
	// than the inline register (words == 0): they must take the generic
	// path, not the local-accumulator tiers (regression: the tier guard
	// once admitted the wide fallback and indexed sw[-1]).
	for _, f := range []Format{MustFormat(8, 0), MustFormat(8, 1), MustFormat(8, 2), MustFormat(8, 3), MustFormat(5, 0), MustFormat(12, 2), MustFormat(10, 3), MustFormat(12, 3)} {
		for trial := 0; trial < 300; trial++ {
			k := 1 + r.Intn(96)
			w := make([]Posit, k)
			a := make([]Posit, k)
			for i := range w {
				w[i] = f.FromBits(r.Uint64() & f.Mask()) // NaR included
				a[i] = f.FromBits(r.Uint64() & f.Mask())
			}
			got := DotProduct(w, a)
			q := NewQuire(f, k)
			for i := range w {
				q.MulAdd(w[i], a[i])
			}
			if ref := q.Result(); got.Bits() != ref.Bits() {
				t.Fatalf("%s k=%d: DotProduct %#x != MulAdd loop %#x", f, k, got.Bits(), ref.Bits())
			}
		}
	}
}

// TestDenseKernelMatchesMAC: the pre-decoded layer kernel against
// per-neuron ResetToBias/MulAdd/Result quires, with NaR and zero codes
// salted into weights, biases and activations.
func TestDenseKernelMatchesMAC(t *testing.T) {
	r := rng.New(0xDE15E)
	for _, f := range []Format{MustFormat(8, 0), MustFormat(8, 2), MustFormat(8, 3), MustFormat(6, 1), MustFormat(12, 1), MustFormat(16, 2), MustFormat(10, 3), MustFormat(12, 3)} {
		for trial := 0; trial < 60; trial++ {
			in := 1 + r.Intn(24)
			out := 1 + r.Intn(12)
			w := make([][]Posit, out)
			b := make([]Posit, out)
			for j := range w {
				row := make([]Posit, in)
				for i := range row {
					row[i] = f.FromBits(r.Uint64() & f.Mask())
				}
				w[j] = row
				b[j] = f.FromBits(r.Uint64() & f.Mask())
			}
			k := NewDenseKernel(f, w, b)
			act := make([]Posit, in)
			for i := range act {
				act[i] = f.FromBits(r.Uint64() & f.Mask())
			}
			dst := make([]Posit, out)
			k.Forward(act, dst)
			q := NewQuire(f, in)
			for j := 0; j < out; j++ {
				q.ResetToBias(b[j])
				for i := 0; i < in; i++ {
					q.MulAdd(w[j][i], act[i])
				}
				if ref := q.Result(); dst[j].Bits() != ref.Bits() {
					t.Fatalf("%s in=%d out=%d row %d: kernel %#x != MAC %#x",
						f, in, out, j, dst[j].Bits(), ref.Bits())
				}
			}
		}
	}
}

// TestMatrixKernelsMatchReference: MulVec/Mul against per-element quire
// loops, covering all three routing cases — table tier (8,1), tabled but
// wide register (12,2: 3-word quire), and untabled wide format (16,1).
func TestMatrixKernelsMatchReference(t *testing.T) {
	for _, f := range []Format{MustFormat(8, 1), MustFormat(12, 2), MustFormat(16, 1)} {
		t.Run(f.String(), func(t *testing.T) { testMatrixKernels(t, f) })
	}
}

func testMatrixKernels(t *testing.T, f Format) {
	r := rng.New(0x3A7)
	for trial := 0; trial < 40; trial++ {
		rows, cols, cols2 := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		mk := func(rc int) []Posit {
			out := make([]Posit, rc)
			for i := range out {
				out[i] = f.FromBits(r.Uint64() & f.Mask())
			}
			return out
		}
		a := &Matrix{Rows: rows, Cols: cols, Data: mk(rows * cols)}
		x := Vector(mk(cols))
		y := a.MulVec(x)
		for i := 0; i < rows; i++ {
			q := NewQuire(f, cols)
			for kk := 0; kk < cols; kk++ {
				q.MulAdd(a.At(i, kk), x[kk])
			}
			if ref := q.Result(); y[i].Bits() != ref.Bits() {
				t.Fatalf("MulVec row %d: %#x want %#x", i, y[i].Bits(), ref.Bits())
			}
		}
		bm := &Matrix{Rows: cols, Cols: cols2, Data: mk(cols * cols2)}
		c := a.Mul(bm)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols2; j++ {
				q := NewQuire(f, cols)
				for kk := 0; kk < cols; kk++ {
					q.MulAdd(a.At(i, kk), bm.At(kk, j))
				}
				if ref := q.Result(); c.At(i, j).Bits() != ref.Bits() {
					t.Fatalf("Mul (%d,%d): %#x want %#x", i, j, c.At(i, j).Bits(), ref.Bits())
				}
			}
		}
	}
}

// TestWarmTablesAndMemory: WarmTables builds what TableMemoryBytes
// accounts for, and wide formats report zero.
func TestWarmTablesAndMemory(t *testing.T) {
	f := MustFormat(8, 1)
	WarmTables(f)
	if f.decTab() == nil || f.mulTab() == nil || f.addTab() == nil {
		t.Fatal("WarmTables did not build the tables")
	}
	if got := TableMemoryBytes(f); got != 4*256+2*65536 {
		t.Errorf("TableMemoryBytes(posit(8,1)) = %d", got)
	}
	wide := MustFormat(24, 1)
	WarmTables(wide) // must be a no-op, not a 2^48-entry build
	if wide.decTab() != nil || wide.mulTab() != nil {
		t.Fatal("wide format unexpectedly has tables")
	}
	if got := TableMemoryBytes(wide); got != 0 {
		t.Errorf("TableMemoryBytes(posit(24,1)) = %d", got)
	}
	mid := MustFormat(12, 2)
	WarmTables(mid)
	if got := TableMemoryBytes(mid); got != 4<<12 {
		t.Errorf("TableMemoryBytes(posit(12,2)) = %d", got)
	}
}

// TestQuireInlineMatchesWide: the inline small register against the
// heap-backed wide register on identical accumulation sequences (forcing
// the wide path through a capacity that pushes the width past the inline
// ceiling is impractical for small formats, so compare against the
// dyadic-exact big.Int view instead — plus a direct wide-format run).
func TestQuireInlineMatchesWide(t *testing.T) {
	r := rng.New(0x91DE)
	f := MustFormat(8, 2)
	for trial := 0; trial < 100; trial++ {
		k := 1 + r.Intn(48)
		qi := NewQuire(f, k)
		if qi.words == 0 {
			t.Fatal("posit(8,2) quire should use the inline register")
		}
		for i := 0; i < k; i++ {
			a := f.FromBits(r.Uint64() & f.Mask())
			b := f.FromBits(r.Uint64() & f.Mask())
			if a.IsNaR() || b.IsNaR() {
				continue
			}
			qi.MulAdd(a, b)
		}
		// Round-trip through the big.Int view and back through a fresh
		// dyadic comparison: Result must equal FromDyadic of the exact
		// register value.
		want := f.FromDyadic(qi.Dyadic())
		if qi.Dyadic().IsZero() {
			want = f.Zero()
		}
		if got := qi.Result(); got.Bits() != want.Bits() {
			t.Fatalf("inline quire result %#x want %#x", got.Bits(), want.Bits())
		}
	}
	// A genuinely wide register (posit(32,5) blows past 4 words) still
	// works through the fallback.
	wf := MustFormat(32, 5)
	qw := NewQuire(wf, 4)
	if qw.words != 0 {
		t.Fatal("posit(32,5) quire should use the wide fallback")
	}
	one := wf.One()
	qw.MulAdd(one, one)
	qw.MulAdd(one, one)
	if got := qw.Result(); got.Bits() != wf.FromFloat64(2).Bits() {
		t.Fatalf("wide quire 1*1+1*1 = %v", got)
	}
}

// TestMulVecDegenerateShapes: a zero-row matrix yields an empty vector
// (as before the pre-decoded rewrite), and zero columns keep the clear
// empty-dot-product panic.
func TestMulVecDegenerateShapes(t *testing.T) {
	f := MustFormat(8, 1)
	m := &Matrix{Rows: 0, Cols: 5, Data: nil}
	x := make(Vector, 5)
	for i := range x {
		x[i] = f.One()
	}
	if out := m.MulVec(x); len(out) != 0 {
		t.Fatalf("zero-row MulVec: expected empty vector, got %d elems", len(out))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-column MulVec must panic")
		}
	}()
	(&Matrix{Rows: 2, Cols: 0, Data: nil}).MulVec(Vector{})
}
