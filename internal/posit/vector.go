package posit

// Vector and matrix kernels built on the quire: the "posit BLAS" surface
// a Deep Positron user needs beyond single MACs. Every kernel follows the
// paper's exactness discipline — one rounding per output element, with
// all intermediate products and sums held exactly in a Kulisch register.

// Min returns the smaller of p and q in the numeric order (NaR loses to
// any real value, matching the pattern total order).
func Min(p, q Posit) Posit {
	if p.Cmp(q) <= 0 {
		return p
	}
	return q
}

// Max returns the larger of p and q.
func Max(p, q Posit) Posit {
	if p.Cmp(q) >= 0 {
		return p
	}
	return q
}

// CopySign returns p with q's sign (NaR passes through).
func CopySign(p, q Posit) Posit {
	if p.IsNaR() || q.IsNaR() || p.IsZero() {
		return p
	}
	if p.Negative() != q.Negative() {
		return p.Neg()
	}
	return p
}

// Vector is a slice of posits sharing one format.
type Vector []Posit

// NewVector quantises a float64 slice into format f.
func NewVector(f Format, xs []float64) Vector {
	out := make(Vector, len(xs))
	for i, x := range xs {
		out[i] = f.FromFloat64(x)
	}
	return out
}

// Float64s decodes the vector.
func (v Vector) Float64s() []float64 {
	out := make([]float64, len(v))
	for i, p := range v {
		out[i] = p.Float64()
	}
	return out
}

// format returns the common format (panics on empty or mixed vectors).
func (v Vector) format() Format {
	if len(v) == 0 {
		panic("posit: empty vector")
	}
	f := v[0].Format()
	for _, p := range v[1:] {
		if p.Format() != f {
			panic("posit: mixed formats in vector")
		}
	}
	return f
}

// Dot computes the exactly rounded inner product <v, w>.
func (v Vector) Dot(w Vector) Posit {
	return DotProduct(v, w)
}

// AXPY returns alpha·x + y with one rounding per element (each element
// goes through a two-term quire: the scalar FMA).
func AXPY(alpha Posit, x, y Vector) Vector {
	if len(x) != len(y) {
		panic("posit: AXPY length mismatch")
	}
	out := make(Vector, len(x))
	for i := range x {
		out[i] = alpha.FMA(x[i], y[i])
	}
	return out
}

// Norm2 returns the Euclidean norm with a single rounding: the sum of
// squares is held exactly in a quire, rounded once, then square-rooted
// (two roundings total — the minimum achievable with a posit result).
func (v Vector) Norm2() Posit {
	f := v.format()
	q := NewQuire(f, len(v))
	for _, p := range v {
		q.MulAdd(p, p)
	}
	return q.Result().Sqrt()
}

// Sum returns the exactly rounded sum of the elements.
func (v Vector) Sum() Posit {
	return Sum(v)
}

// Matrix is a dense row-major posit matrix.
type Matrix struct {
	Rows, Cols int
	Data       []Posit // len Rows*Cols
}

// NewMatrix quantises a row-major float64 matrix.
func NewMatrix(f Format, rows, cols int, xs []float64) *Matrix {
	if len(xs) != rows*cols {
		panic("posit: matrix size mismatch")
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]Posit, len(xs))}
	for i, x := range xs {
		m.Data[i] = f.FromFloat64(x)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) Posit { return m.Data[i*m.Cols+j] }

// Row returns row i as a vector view.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec computes y = M·x with one rounding per output element (each row
// is a quire dot product) — exactly the computation of one Deep Positron
// layer without bias and activation.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic("posit: MulVec dimension mismatch")
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = DotProduct(m.Row(i), x)
	}
	return out
}

// Mul computes C = A·B with one rounding per element of C.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("posit: Mul dimension mismatch")
	}
	f := m.Data[0].Format()
	c := &Matrix{Rows: m.Rows, Cols: b.Cols, Data: make([]Posit, m.Rows*b.Cols)}
	q := NewQuire(f, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			q.Reset()
			for k := 0; k < m.Cols; k++ {
				q.MulAdd(m.At(i, k), b.At(k, j))
			}
			c.Data[i*b.Cols+j] = q.Result()
		}
	}
	return c
}
