package posit

// Vector and matrix kernels built on the quire: the "posit BLAS" surface
// a Deep Positron user needs beyond single MACs. Every kernel follows the
// paper's exactness discipline — one rounding per output element, with
// all intermediate products and sums held exactly in a Kulisch register.

// Min returns the smaller of p and q in the numeric order (NaR loses to
// any real value, matching the pattern total order).
func Min(p, q Posit) Posit {
	if p.Cmp(q) <= 0 {
		return p
	}
	return q
}

// Max returns the larger of p and q.
func Max(p, q Posit) Posit {
	if p.Cmp(q) >= 0 {
		return p
	}
	return q
}

// CopySign returns p with q's sign (NaR passes through).
func CopySign(p, q Posit) Posit {
	if p.IsNaR() || q.IsNaR() || p.IsZero() {
		return p
	}
	if p.Negative() != q.Negative() {
		return p.Neg()
	}
	return p
}

// Vector is a slice of posits sharing one format.
type Vector []Posit

// NewVector quantises a float64 slice into format f.
func NewVector(f Format, xs []float64) Vector {
	out := make(Vector, len(xs))
	for i, x := range xs {
		out[i] = f.FromFloat64(x)
	}
	return out
}

// Float64s decodes the vector.
func (v Vector) Float64s() []float64 {
	out := make([]float64, len(v))
	for i, p := range v {
		out[i] = p.Float64()
	}
	return out
}

// format returns the common format (panics on empty or mixed vectors).
func (v Vector) format() Format {
	if len(v) == 0 {
		panic("posit: empty vector")
	}
	f := v[0].Format()
	for _, p := range v[1:] {
		if p.Format() != f {
			panic("posit: mixed formats in vector")
		}
	}
	return f
}

// Dot computes the exactly rounded inner product <v, w>.
func (v Vector) Dot(w Vector) Posit {
	return DotProduct(v, w)
}

// AXPY returns alpha·x + y with one rounding per element (each element
// goes through a two-term quire: the scalar FMA).
func AXPY(alpha Posit, x, y Vector) Vector {
	if len(x) != len(y) {
		panic("posit: AXPY length mismatch")
	}
	out := make(Vector, len(x))
	for i := range x {
		out[i] = alpha.FMA(x[i], y[i])
	}
	return out
}

// Norm2 returns the Euclidean norm with a single rounding: the sum of
// squares is held exactly in a quire, rounded once, then square-rooted
// (two roundings total — the minimum achievable with a posit result).
func (v Vector) Norm2() Posit {
	f := v.format()
	q := NewQuire(f, len(v))
	for _, p := range v {
		q.MulAdd(p, p)
	}
	return q.Result().Sqrt()
}

// Sum returns the exactly rounded sum of the elements.
func (v Vector) Sum() Posit {
	return Sum(v)
}

// Matrix is a dense row-major posit matrix.
type Matrix struct {
	Rows, Cols int
	Data       []Posit // len Rows*Cols
}

// NewMatrix quantises a row-major float64 matrix.
func NewMatrix(f Format, rows, cols int, xs []float64) *Matrix {
	if len(xs) != rows*cols {
		panic("posit: matrix size mismatch")
	}
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]Posit, len(xs))}
	for i, x := range xs {
		m.Data[i] = f.FromFloat64(x)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) Posit { return m.Data[i*m.Cols+j] }

// Row returns row i as a vector view.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MulVec computes y = M·x with one rounding per output element (each row
// is a quire dot product) — exactly the computation of one Deep Positron
// layer without bias and activation. Small tabled formats run each row
// through DotProduct's branchless table tier; wide formats decode every
// operand once and reuse a single register across rows.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic("posit: MulVec dimension mismatch")
	}
	if m.Rows == 0 {
		return Vector{}
	}
	if m.Cols == 0 {
		panic("posit: MulVec with zero columns")
	}
	f := m.Data[0].Format()
	out := make(Vector, m.Rows)
	if rowKernelFast(f, m.Cols) {
		// Small tabled formats: per-row DotProduct hits the branchless
		// single/two-word table tier — call-free MACs, stack register,
		// zero allocations per row.
		for i := 0; i < m.Rows; i++ {
			out[i] = DotProduct(m.Row(i), x)
		}
		return out
	}
	// Wide formats: decode each operand once for the whole product.
	dx := make([]pdec, len(x))
	predecodeInto(dx, x, f)
	dr := make([]pdec, m.Cols)
	var q Quire
	q.init(f, m.Cols, 0)
	for i := 0; i < m.Rows; i++ {
		q.Reset()
		predecodeInto(dr, m.Row(i), f)
		for k := range dr {
			q.mulAddPre(&dr[k], &dx[k])
		}
		out[i] = q.Result()
	}
	return out
}

// rowKernelFast reports whether per-row DotProduct takes the branchless
// table tier for format f at fan-in k — in which case it beats any
// pre-decoded mulAddPre loop and the matrix kernels delegate to it.
func rowKernelFast(f Format, k int) bool {
	if f.decTab() == nil {
		return false
	}
	var q Quire
	q.init(f, k, 0)
	return q.smallWords() > 0
}

// Mul computes C = A·B with one rounding per element of C, using the
// same two-tier strategy as MulVec.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("posit: Mul dimension mismatch")
	}
	if m.Rows == 0 || b.Cols == 0 {
		return &Matrix{Rows: m.Rows, Cols: b.Cols, Data: []Posit{}}
	}
	if m.Cols == 0 {
		panic("posit: Mul with zero inner dimension")
	}
	f := m.Data[0].Format()
	c := &Matrix{Rows: m.Rows, Cols: b.Cols, Data: make([]Posit, m.Rows*b.Cols)}
	if rowKernelFast(f, m.Cols) {
		// Gather each column of b once, then every output is a
		// branchless-tier DotProduct (see MulVec).
		col := make([]Posit, b.Rows)
		for j := 0; j < b.Cols; j++ {
			for k := 0; k < b.Rows; k++ {
				col[k] = b.At(k, j)
			}
			for i := 0; i < m.Rows; i++ {
				c.Data[i*b.Cols+j] = DotProduct(m.Row(i), col)
			}
		}
		return c
	}
	// Wide formats: both operands decode once for the whole product
	// (every element of A is reused Cols(B) times and vice versa).
	da := make([]pdec, len(m.Data))
	predecodeInto(da, m.Data, f)
	db := make([]pdec, len(b.Data))
	predecodeInto(db, b.Data, f)
	var q Quire
	q.init(f, m.Cols, 0)
	for i := 0; i < m.Rows; i++ {
		row := da[i*m.Cols : (i+1)*m.Cols]
		for j := 0; j < b.Cols; j++ {
			q.Reset()
			for k := range row {
				q.mulAddPre(&row[k], &db[k*b.Cols+j])
			}
			c.Data[i*b.Cols+j] = q.Result()
		}
	}
	return c
}
