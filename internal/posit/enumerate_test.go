package posit

import (
	"sort"
	"testing"
)

func TestValuesCountAndOrder(t *testing.T) {
	f := MustFormat(7, 0)
	vals := f.Values()
	if len(vals) != 127 { // 2^7 - NaR
		t.Fatalf("posit(7,0) has %d values, want 127", len(vals))
	}
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("Values must be sorted")
	}
	// All distinct.
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] {
			t.Fatalf("duplicate value %g", vals[i])
		}
	}
}

// TestFig2Clustering reproduces the observation behind the paper's Fig. 2:
// the 7-bit (es=0) posit concentrates most of its representation points in
// [-1, 1], matching DNN weight distributions.
func TestFig2Clustering(t *testing.T) {
	f := MustFormat(7, 0)
	frac := f.FractionInUnitRange()
	// Exactly half the nonzero values lie in [-1,1] plus the two ±1
	// endpoints' neighbours; the fraction must comfortably exceed 0.5.
	if frac < 0.5 {
		t.Errorf("fraction of posit(7,0) values in [-1,1] = %.3f; expected >= 0.5", frac)
	}
	t.Logf("posit(7,0): %.1f%% of nonzero values lie in [-1,1]", 100*frac)
}

func TestHistogram(t *testing.T) {
	f := MustFormat(5, 0)
	edges := []float64{-100, -1, 0, 1, 100}
	counts := f.Histogram(edges)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(f.Values()) {
		t.Errorf("histogram drops values: %d of %d", total, len(f.Values()))
	}
	// symmetry: as many values in [-1,0) as (0,1]... bucket [0,1) holds
	// zero plus positives below 1; sanity only.
	if counts[1] == 0 || counts[2] == 0 {
		t.Error("central buckets must not be empty")
	}
}

func TestHistogramBucket(t *testing.T) {
	f := MustFormat(5, 0)
	if got := f.HistogramBucket(1, 1.0000001); got != 1 {
		t.Errorf("bucket around 1.0 = %d want 1", got)
	}
}

func TestNextPrevSaturation(t *testing.T) {
	f := MustFormat(8, 0)
	if got := f.MaxPos().Next(); got.Bits() != f.MaxPos().Bits() {
		t.Error("Next(maxpos) must saturate")
	}
	mostNeg := f.FromBits(f.NaR().Bits() + 1)
	if got := mostNeg.Prev(); got.Bits() != mostNeg.Bits() {
		t.Error("Prev(most negative) must saturate")
	}
	if !f.NaR().Next().IsNaR() {
		t.Error("Next(NaR) must be NaR")
	}
}

func TestULPTapering(t *testing.T) {
	f := MustFormat(8, 0)
	// Posit precision tapers: ULP near 1 is finer than ULP near maxpos.
	near1 := f.One().ULP()
	nearMax := f.MaxPos().Prev().ULP()
	if near1 >= nearMax {
		t.Errorf("tapered precision violated: ulp(1)=%g ulp(near max)=%g", near1, nearMax)
	}
}

func TestPositsIncludesSpecials(t *testing.T) {
	f := MustFormat(5, 1)
	ps := f.Posits()
	if len(ps) != 32 {
		t.Fatalf("got %d patterns", len(ps))
	}
	hasZero, hasNaR := false, false
	for _, p := range ps {
		if p.IsZero() {
			hasZero = true
		}
		if p.IsNaR() {
			hasNaR = true
		}
	}
	if !hasZero || !hasNaR {
		t.Error("enumeration must include zero and NaR")
	}
}
