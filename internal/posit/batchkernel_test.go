package posit

import (
	"testing"

	"repro/internal/rng"
)

// randPosits fills a slice with patterns drawn from the full code space
// (zero and NaR included).
func randPosits(f Format, n int, r *rng.Source) []Posit {
	out := make([]Posit, n)
	for i := range out {
		out[i] = Posit{f: f, bits: uint64(r.Uint64()) & f.Mask()}
	}
	return out
}

// TestBatchDenseKernelMatchesPerSample drives random layers of every
// gated small format through both kernels and requires bit-identical
// outputs, NaR patterns included.
func TestBatchDenseKernelMatchesPerSample(t *testing.T) {
	r := rng.New(7)
	for _, tc := range []struct{ n, es uint }{{5, 0}, {6, 1}, {7, 0}, {8, 0}, {8, 1}} {
		f := MustFormat(tc.n, tc.es)
		for trial := 0; trial < 4; trial++ {
			in, out := 1+int(r.Uint64()%24), 1+int(r.Uint64()%12)
			w := make([][]Posit, out)
			for j := range w {
				w[j] = randPosits(f, in, r)
			}
			b := randPosits(f, out, r)
			bk, ok := NewBatchDenseKernel(f, w, b)
			if !ok {
				t.Fatalf("%v: no batch kernel for in=%d", f, in)
			}
			sk := NewDenseKernel(f, w, b)
			batch := 1 + int(r.Uint64()%9)
			act := make([]uint64, batch*in)
			for i := range act {
				act[i] = uint64(r.Uint64()) & f.Mask()
			}
			got := make([]uint64, batch*out)
			bk.ForwardBatchBits(act, got, batch)
			want := make([]uint64, out)
			for s := 0; s < batch; s++ {
				sk.ForwardBits(act[s*in:(s+1)*in], want)
				for j, wbits := range want {
					if got[s*out+j] != wbits {
						t.Fatalf("%v in=%d out=%d: sample %d row %d: batch %#x, per-sample %#x",
							f, in, out, s, j, got[s*out+j], wbits)
					}
				}
			}
		}
	}
}

// TestBatchDenseKernelExhaustive sweeps every (weight, activation)
// 8-bit pattern pair through a 1×1 layer with every bias class (zero,
// real, NaR) and checks the batch path against the per-sample kernel —
// the batch analogue of the kernel equivalence sweeps.
func TestBatchDenseKernelExhaustive(t *testing.T) {
	f := MustFormat(8, 0)
	count := int(uint64(1) << f.n)
	for _, bias := range []uint64{0, 0x37, f.signBit()} {
		bv := []Posit{{f: f, bits: bias}}
		for wb := 0; wb < count; wb++ {
			w := [][]Posit{{{f: f, bits: uint64(wb)}}}
			bk, ok := NewBatchDenseKernel(f, w, bv)
			if !ok {
				t.Fatal("no batch kernel for 1x1 posit(8,0)")
			}
			sk := NewDenseKernel(f, w, bv)
			act := make([]uint64, count)
			for ab := range act {
				act[ab] = uint64(ab)
			}
			got := make([]uint64, count)
			bk.ForwardBatchBits(act, got, count)
			want := make([]uint64, 1)
			for ab := 0; ab < count; ab++ {
				sk.ForwardBits(act[ab:ab+1], want)
				if got[ab] != want[0] {
					t.Fatalf("bias %#x w %#x a %#x: batch %#x, per-sample %#x",
						bias, wb, ab, got[ab], want[0])
				}
			}
		}
	}
}

// TestBatchDenseKernelGates checks the fallback conditions: wide formats
// and multi-word quires must decline.
func TestBatchDenseKernelGates(t *testing.T) {
	wide := MustFormat(16, 1)
	w := [][]Posit{{wide.Zero()}}
	if _, ok := NewBatchDenseKernel(wide, w, []Posit{wide.Zero()}); ok {
		t.Fatal("n=16 must have no term-table batch kernel")
	}
	// posit(8,3): quire width 2^5*6+2+clog2(k) = 194+ bits, far beyond one
	// word even at k=1.
	f := MustFormat(8, 3)
	w8 := [][]Posit{{f.Zero()}}
	if _, ok := NewBatchDenseKernel(f, w8, []Posit{f.Zero()}); ok {
		t.Fatal("multi-word quire must have no single-word batch kernel")
	}
	if QuireSize(MustFormat(8, 0), 30) > 64 {
		t.Fatal("posit(8,0) k=30 quire should fit one word")
	}
}

// TestBatchDenseKernelEmptyFlush checks the b = 0 edge.
func TestBatchDenseKernelEmptyFlush(t *testing.T) {
	f := MustFormat(8, 0)
	bk, ok := NewBatchDenseKernel(f, [][]Posit{{f.Zero()}}, []Posit{f.Zero()})
	if !ok {
		t.Fatal("no batch kernel")
	}
	bk.ForwardBatchBits(nil, nil, 0) // must not panic
}
