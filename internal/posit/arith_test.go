package posit

import (
	"testing"

	"repro/internal/dyadic"
)

// oracleRound rounds an exact dyadic value to format f via the dyadic
// entry point — used as the reference for all arithmetic tests.
func oracleRound(f Format, d dyadic.D) Posit { return f.FromDyadic(d) }

// TestMulExhaustive8 checks every 8-bit posit product against the exact
// oracle for es in {0,1,2}: 3 × 65536 cases.
func TestMulExhaustive8(t *testing.T) {
	for _, es := range []uint{0, 1, 2} {
		f := MustFormat(8, es)
		for a := uint64(0); a < f.Count(); a++ {
			pa := f.FromBits(a)
			da, okA := pa.Dyadic()
			for b := uint64(0); b < f.Count(); b++ {
				pb := f.FromBits(b)
				got := pa.Mul(pb)
				if !okA || pb.IsNaR() {
					if !got.IsNaR() {
						t.Fatalf("%s: NaR*x must be NaR (%v * %v = %v)", f, pa, pb, got)
					}
					continue
				}
				db, _ := pb.Dyadic()
				want := oracleRound(f, da.Mul(db))
				if got.Bits() != want.Bits() {
					t.Fatalf("%s: %v * %v = %v want %v", f, pa, pb, got, want)
				}
			}
		}
	}
}

// TestMulExhaustiveSmall covers every product of every format with n<=6
// and es<=3.
func TestMulExhaustiveSmall(t *testing.T) {
	for n := uint(3); n <= 6; n++ {
		for es := uint(0); es <= 3; es++ {
			f := MustFormat(n, es)
			for a := uint64(0); a < f.Count(); a++ {
				for b := uint64(0); b < f.Count(); b++ {
					pa, pb := f.FromBits(a), f.FromBits(b)
					got := pa.Mul(pb)
					da, okA := pa.Dyadic()
					db, okB := pb.Dyadic()
					if !okA || !okB {
						if !got.IsNaR() {
							t.Fatalf("%s: NaR propagation failed", f)
						}
						continue
					}
					want := oracleRound(f, da.Mul(db))
					if got.Bits() != want.Bits() {
						t.Fatalf("%s: %v * %v = %v want %v", f, pa, pb, got, want)
					}
				}
			}
		}
	}
}

// TestAddExhaustive8 checks every 8-bit posit sum against the oracle.
func TestAddExhaustive8(t *testing.T) {
	for _, es := range []uint{0, 1, 2} {
		f := MustFormat(8, es)
		for a := uint64(0); a < f.Count(); a++ {
			pa := f.FromBits(a)
			da, okA := pa.Dyadic()
			for b := uint64(0); b < f.Count(); b++ {
				pb := f.FromBits(b)
				got := pa.Add(pb)
				if !okA || pb.IsNaR() {
					if !got.IsNaR() {
						t.Fatalf("%s: NaR+x must be NaR", f)
					}
					continue
				}
				db, _ := pb.Dyadic()
				want := oracleRound(f, da.Add(db))
				if got.Bits() != want.Bits() {
					t.Fatalf("%s: %v + %v = %v want %v", f, pa, pb, got, want)
				}
			}
		}
	}
}

// TestAddExhaustiveSmall covers small formats, which exercise extreme
// regime-dominated patterns.
func TestAddExhaustiveSmall(t *testing.T) {
	for n := uint(3); n <= 6; n++ {
		for es := uint(0); es <= 3; es++ {
			f := MustFormat(n, es)
			for a := uint64(0); a < f.Count(); a++ {
				for b := uint64(0); b < f.Count(); b++ {
					pa, pb := f.FromBits(a), f.FromBits(b)
					got := pa.Add(pb)
					da, okA := pa.Dyadic()
					db, okB := pb.Dyadic()
					if !okA || !okB {
						if !got.IsNaR() {
							t.Fatalf("%s: NaR propagation failed", f)
						}
						continue
					}
					want := oracleRound(f, da.Add(db))
					if got.Bits() != want.Bits() {
						t.Fatalf("%s: %v + %v = %v want %v", f, pa, pb, got, want)
					}
				}
			}
		}
	}
}

// TestSubMatchesAddNeg: p - q == p + (-q) bit-exactly.
func TestSubMatchesAddNeg(t *testing.T) {
	f := MustFormat(8, 1)
	for a := uint64(0); a < f.Count(); a += 3 {
		for b := uint64(0); b < f.Count(); b += 5 {
			pa, pb := f.FromBits(a), f.FromBits(b)
			if pa.Sub(pb).Bits() != pa.Add(pb.Neg()).Bits() {
				t.Fatalf("Sub/AddNeg mismatch at %v, %v", pa, pb)
			}
		}
	}
}

// TestDivExhaustive8es0 checks division against a brute-force nearest
// search (division results are not dyadic, so the oracle rounds the real
// quotient).
func TestDivExhaustive8(t *testing.T) {
	for _, es := range []uint{0, 1} {
		f := MustFormat(8, es)
		vals := f.Posits()
		for _, pa := range vals {
			for _, pb := range vals {
				got := pa.Div(pb)
				if pa.IsNaR() || pb.IsNaR() || pb.IsZero() {
					if !got.IsNaR() {
						t.Fatalf("%s: %v / %v must be NaR, got %v", f, pa, pb, got)
					}
					continue
				}
				if pa.IsZero() {
					if !got.IsZero() {
						t.Fatalf("%s: 0 / %v must be 0", f, pb)
					}
					continue
				}
				da, _ := pa.Dyadic()
				db, _ := pb.Dyadic()
				want := roundRatioOracle(f, da, db)
				if got.Bits() != want.Bits() {
					t.Fatalf("%s: %v / %v = %v want %v", f, pa, pb, got, want)
				}
			}
		}
	}
}

func TestFMAExactness(t *testing.T) {
	f := MustFormat(8, 0)
	// A case where separate rounding differs from fused: pick values where
	// the product rounds away information the addend cancels.
	a := f.FromFloat64(3.5)
	b := f.FromFloat64(3.5)
	c := f.FromFloat64(-12.0)
	fused := a.FMA(b, c)
	da, _ := a.Dyadic()
	db, _ := b.Dyadic()
	dc, _ := c.Dyadic()
	want := f.FromDyadic(da.Mul(db).Add(dc))
	if fused.Bits() != want.Bits() {
		t.Fatalf("FMA = %v want %v", fused, want)
	}
	// Exhaustive mini-check on a subsample.
	for x := uint64(0); x < f.Count(); x += 7 {
		for y := uint64(1); y < f.Count(); y += 11 {
			for z := uint64(3); z < f.Count(); z += 37 {
				pa, pb, pc := f.FromBits(x), f.FromBits(y), f.FromBits(z)
				got := pa.FMA(pb, pc)
				if pa.IsNaR() || pb.IsNaR() || pc.IsNaR() {
					if !got.IsNaR() {
						t.Fatalf("FMA NaR propagation")
					}
					continue
				}
				da, _ := pa.Dyadic()
				db, _ := pb.Dyadic()
				dc, _ := pc.Dyadic()
				want := f.FromDyadic(da.Mul(db).Add(dc))
				if got.Bits() != want.Bits() {
					t.Fatalf("FMA(%v,%v,%v) = %v want %v", pa, pb, pc, got, want)
				}
			}
		}
	}
}

func TestSqrtExhaustive(t *testing.T) {
	for _, es := range []uint{0, 1, 2} {
		f := MustFormat(8, es)
		for b := uint64(0); b < f.Count(); b++ {
			p := f.FromBits(b)
			got := p.Sqrt()
			if p.IsNaR() || p.Negative() {
				if !got.IsNaR() {
					t.Fatalf("%s: sqrt(%v) must be NaR", f, p)
				}
				continue
			}
			if p.IsZero() {
				if !got.IsZero() {
					t.Fatalf("sqrt(0) must be 0")
				}
				continue
			}
			dp, _ := p.Dyadic()
			want := sqrtPatternOracle(f, dp)
			if got.Bits() != want.Bits() {
				t.Fatalf("%s: sqrt(%v) = %v want %v", f, p, got, want)
			}
		}
	}
}

func TestDivBasics(t *testing.T) {
	f := MustFormat(16, 1)
	two := f.FromFloat64(2)
	three := f.FromFloat64(3)
	six := f.FromFloat64(6)
	if got := six.Div(two); got.Float64() != 3 {
		t.Errorf("6/2 = %v", got)
	}
	if got := six.Div(three); got.Float64() != 2 {
		t.Errorf("6/3 = %v", got)
	}
	if !f.One().Div(f.Zero()).IsNaR() {
		t.Error("1/0 must be NaR")
	}
}

func TestMulSpecialCases(t *testing.T) {
	f := MustFormat(8, 1)
	one := f.One()
	for b := uint64(0); b < f.Count(); b++ {
		p := f.FromBits(b)
		if p.IsNaR() {
			continue
		}
		if got := p.Mul(one); got.Bits() != p.Bits() {
			t.Fatalf("%v * 1 = %v", p, got)
		}
		if got := p.Mul(f.Zero()); !got.IsZero() {
			t.Fatalf("%v * 0 = %v", p, got)
		}
	}
}

func TestMaxposTimesMaxposSaturates(t *testing.T) {
	f := MustFormat(8, 0)
	m := f.MaxPos()
	if got := m.Mul(m); got.Bits() != m.Bits() {
		t.Errorf("maxpos^2 = %v want maxpos", got)
	}
	mn := f.MinPos()
	if got := mn.Mul(mn); got.Bits() != mn.Bits() {
		t.Errorf("minpos^2 = %v want minpos", got)
	}
}
