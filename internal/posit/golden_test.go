package posit

// Golden encodings, derived by hand from the posit definition (eq. (2)),
// pinning the codec against regressions with values that are independent
// of the implementation under test.

import "testing"

func TestGoldenPosit8es0(t *testing.T) {
	f := MustFormat(8, 0)
	golden := map[float64]uint64{
		//  value: sign | regime | frac
		1:        0b01000000, // 0|10|000000
		-1:       0b11000000, // two's complement of 1.0
		0.5:      0b00100000, // 0|01|00000: k=-1
		2:        0b01100000, // 0|110|0000: k=1
		1.5:      0b01010000, // 0|10|100000: 1.1b
		-1.5:     0b10110000, // two's complement of 0x50
		64:       0b01111111, // maxpos = 2^6
		0.015625: 0b00000001, // minpos = 2^-6
		3.125:    0b01101001, // 0|110|1001: 1.1001b × 2
	}
	for v, bits := range golden {
		if got := f.FromFloat64(v).Bits(); got != bits {
			t.Errorf("posit(8,0) enc(%g) = %08b want %08b", v, got, bits)
		}
		if got := f.FromBits(bits).Float64(); got != v {
			t.Errorf("posit(8,0) dec(%08b) = %g want %g", bits, got, v)
		}
	}
}

func TestGoldenPosit8es2Standard(t *testing.T) {
	f := Posit8() // es = 2
	// posit(8,2): scale = 4k + e (useed = 16).
	golden := map[float64]uint64{
		1:  0b01000000, // 0|10|00|000: k=0, e=0
		2:  0b01001000, // 0|10|01|000: k=0, e=1 -> 2^1
		4:  0b01010000, // 0|10|10|000: k=0, e=2 -> 2^2
		16: 0b01100000, // 0|110|00|00: k=1, e=0 -> 16^1
	}
	for v, bits := range golden {
		if got := f.FromFloat64(v).Bits(); got != bits {
			t.Errorf("posit(8,2) enc(%g) = %08b want %08b", v, got, bits)
		}
		if got := f.FromBits(bits).Float64(); got != v {
			t.Errorf("posit(8,2) dec(%08b) = %g want %g", bits, got, v)
		}
	}
	// maxpos = useed^6 = 16^6 = 2^24
	if got := f.MaxPos().Float64(); got != 16777216 {
		t.Errorf("posit(8,2) maxpos = %g", got)
	}
}

func TestGoldenPosit16es1(t *testing.T) {
	f := MustFormat(16, 1)
	golden := map[float64]uint64{
		// 1.0: 0 10 0 000000000000
		1: 0x4000,
		// -1.0
		-1: 0xC000,
		// 0.5 = 2^-1: k=-1,e=1: 0 01 1 000000000000
		0.5: 0x3000,
		// 3 = 1.5×2: k=0,e=1, frac=.1: 0|10|1|100000000000 = 0x5800
		3: 0x5800,
		// maxpos = 4^14 = 2^28
		268435456: 0x7FFF,
	}
	for v, bits := range golden {
		if got := f.FromFloat64(v).Bits(); got != bits {
			t.Errorf("posit(16,1) enc(%g) = %#06x want %#06x", v, got, bits)
		}
		if got := f.FromBits(bits).Float64(); got != v {
			t.Errorf("posit(16,1) dec(%#06x) = %g want %g", bits, got, v)
		}
	}
}

func TestGoldenPosit32Standard(t *testing.T) {
	f := Posit32() // es=2
	// 1.0 = 0 10 00 0...: 0x40000000
	if got := f.FromFloat64(1).Bits(); got != 0x40000000 {
		t.Errorf("posit32 enc(1) = %#x", got)
	}
	// 0.25 = 2^-2: k=-1 (scale -4..-1), e=2: 0 01 10 0...:
	// sign 0, regime 01, exp 10, frac 0 -> 0011 0000 ... = 0x30000000?
	// regime 01 -> k=-1, scale = -4+e: want -2 -> e=2 (binary 10).
	if got := f.FromFloat64(0.25).Bits(); got != 0x30000000 {
		t.Errorf("posit32 enc(0.25) = %#x", got)
	}
	// NaR
	if got := f.NaR().Bits(); got != 0x80000000 {
		t.Errorf("posit32 NaR = %#x", got)
	}
}
