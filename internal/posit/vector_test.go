package posit

import (
	"math"
	"testing"

	"repro/internal/dyadic"
	"repro/internal/rng"
)

func TestMinMaxCopySign(t *testing.T) {
	f := MustFormat(8, 0)
	a, b := f.FromFloat64(-2), f.FromFloat64(3)
	if Min(a, b).Float64() != -2 || Max(a, b).Float64() != 3 {
		t.Error("Min/Max")
	}
	if Min(f.NaR(), b).IsNaR() == false {
		t.Error("NaR sorts lowest")
	}
	if got := CopySign(b, a).Float64(); got != -3 {
		t.Errorf("CopySign = %v", got)
	}
	if got := CopySign(a, b).Float64(); got != 2 {
		t.Errorf("CopySign = %v", got)
	}
	if !CopySign(f.NaR(), b).IsNaR() {
		t.Error("CopySign NaR passthrough")
	}
	if !CopySign(f.Zero(), a).IsZero() {
		t.Error("CopySign zero")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	f := MustFormat(8, 1)
	xs := []float64{0.5, -1.25, 3, 0}
	v := NewVector(f, xs)
	got := v.Float64s()
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("element %d: %v", i, got[i])
		}
	}
}

func TestAXPYExact(t *testing.T) {
	f := MustFormat(8, 0)
	alpha := f.FromFloat64(0.5)
	x := NewVector(f, []float64{1, 2, -3})
	y := NewVector(f, []float64{0.25, -1, 1})
	out := AXPY(alpha, x, y)
	da, _ := alpha.Dyadic()
	for i := range out {
		dx, _ := x[i].Dyadic()
		dy, _ := y[i].Dyadic()
		want := f.FromDyadic(da.Mul(dx).Add(dy))
		if out[i].Bits() != want.Bits() {
			t.Fatalf("AXPY[%d] = %v want %v", i, out[i], want)
		}
	}
}

func TestNorm2(t *testing.T) {
	f := MustFormat(16, 1)
	v := NewVector(f, []float64{3, 4})
	if got := v.Norm2().Float64(); got != 5 {
		t.Errorf("||(3,4)|| = %v", got)
	}
	// exactness: sum of squares held in the quire, rounded once
	r := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = r.NormMS(0, 2)
		}
		v := NewVector(f, vals)
		exact := dyadic.Zero()
		for _, p := range v {
			d, _ := p.Dyadic()
			exact = exact.Add(d.Mul(d))
		}
		want := f.FromDyadic(exact).Sqrt()
		if got := v.Norm2(); got.Bits() != want.Bits() {
			t.Fatalf("Norm2 = %v want %v", got, want)
		}
	}
}

func TestMatrixMulVecIsLayerCompute(t *testing.T) {
	f := MustFormat(8, 1)
	m := NewMatrix(f, 2, 3, []float64{1, 0.5, -1, 2, -0.25, 0})
	x := NewVector(f, []float64{2, 4, 1})
	y := m.MulVec(x)
	// row 0: 2 + 2 - 1 = 3; row 1: 4 - 1 + 0 = 3
	if y[0].Float64() != 3 || y[1].Float64() != 3 {
		t.Errorf("MulVec = %v, %v", y[0], y[1])
	}
}

func TestMatrixMulExactPerElement(t *testing.T) {
	f := MustFormat(8, 0)
	r := rng.New(77)
	mk := func(rows, cols int) *Matrix {
		xs := make([]float64, rows*cols)
		for i := range xs {
			xs[i] = r.NormMS(0, 1)
		}
		return NewMatrix(f, rows, cols, xs)
	}
	a := mk(3, 4)
	b := mk(4, 2)
	c := a.Mul(b)
	if c.Rows != 3 || c.Cols != 2 {
		t.Fatal("shape")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			exact := dyadic.Zero()
			for k := 0; k < 4; k++ {
				da, _ := a.At(i, k).Dyadic()
				db, _ := b.At(k, j).Dyadic()
				exact = exact.Add(da.Mul(db))
			}
			var want Posit
			if exact.IsZero() {
				want = f.Zero()
			} else {
				want = f.FromDyadic(exact)
			}
			if c.At(i, j).Bits() != want.Bits() {
				t.Fatalf("C[%d][%d] = %v want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestVectorDotMatchesFloatClosely(t *testing.T) {
	f := MustFormat(16, 1)
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 32
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormMS(0, 1)
			ys[i] = r.NormMS(0, 1)
		}
		v, w := NewVector(f, xs), NewVector(f, ys)
		got := v.Dot(w).Float64()
		var ref float64
		for i := range xs {
			ref += v[i].Float64() * w[i].Float64()
		}
		if ref != 0 && math.Abs(got-ref)/math.Abs(ref) > 0.01 {
			t.Errorf("dot %v vs float ref %v", got, ref)
		}
	}
}

func TestVectorPanics(t *testing.T) {
	f := MustFormat(8, 0)
	for _, fn := range []func(){
		func() { Vector{}.format() },
		func() { AXPY(f.One(), NewVector(f, []float64{1}), NewVector(f, []float64{1, 2})) },
		func() { NewMatrix(f, 2, 2, []float64{1}) },
		func() { NewMatrix(f, 1, 2, []float64{1, 2}).MulVec(NewVector(f, []float64{1})) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
