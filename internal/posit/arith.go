package posit

import (
	"math/bits"

	"repro/internal/bitutil"
)

// Mul returns p*q rounded to nearest even. Formats with n <= 8 resolve
// through the full 2^n × 2^n result table (built lazily from the
// reference path, so the two are bit-identical by construction); wider
// formats compute directly: the significand product of two n<=32 posits
// fits in a uint64 (at most 2(n-2) bits), so multiplication is a single
// integer multiply plus normalisation — the same structure as the
// multiplication stage of the paper's Algorithm 2 (lines 6-10).
func (p Posit) Mul(q Posit) Posit {
	if p.f != q.f {
		panic("posit: Mul across formats")
	}
	if t := p.f.mulTab(); t != nil {
		return Posit{f: p.f, bits: uint64(t[p.bits<<p.f.n|q.bits])}
	}
	return p.mulRef(q)
}

// mulRef is the direct (non-tabled) multiplication used for wide formats
// and for building the result tables.
func (p Posit) mulRef(q Posit) Posit {
	if p.IsNaR() || q.IsNaR() {
		return p.f.NaR()
	}
	if p.bits == 0 || q.bits == 0 {
		return p.f.Zero()
	}
	dp, dq := p.decode(), q.decode()
	prod := dp.sig * dq.sig
	l := uint(bits.Len64(prod))
	// value = prod × 2^(sf_p + sf_q - (w_p-1) - (w_q-1)); renormalise so
	// the MSB of prod is the hidden bit.
	sf := dp.sf + dq.sf - int(dp.sigW) - int(dq.sigW) + 2 + int(l) - 1
	return p.f.encode(dp.sign != dq.sign, sf, prod, l, false)
}

// Add returns p+q rounded to nearest even. Formats with n <= 8 resolve
// through the full result table; wider formats align the two exact values
// in a double-width register — for low-precision posits everything stays
// well inside 64 bits unless the scales are very far apart, in which case
// the smaller operand collapses into guard/sticky information exactly as
// in a hardware near/far-path adder.
func (p Posit) Add(q Posit) Posit {
	if p.f != q.f {
		panic("posit: Add across formats")
	}
	if t := p.f.addTab(); t != nil {
		return Posit{f: p.f, bits: uint64(t[p.bits<<p.f.n|q.bits])}
	}
	return p.addRef(q)
}

// addRef is the direct (non-tabled) addition used for wide formats and
// for building the result tables.
func (p Posit) addRef(q Posit) Posit {
	if p.IsNaR() || q.IsNaR() {
		return p.f.NaR()
	}
	if p.bits == 0 {
		return q
	}
	if q.bits == 0 {
		return p
	}
	dp, dq := p.decode(), q.decode()
	// Normalise both significands so the hidden bit sits at position 61,
	// leaving 2 headroom bits for the carry-out and sign handling.
	const top = 61
	sp := dp.sig << (top - (dp.sigW - 1))
	sq := dq.sig << (top - (dq.sigW - 1))
	ep, eq := dp.sf, dq.sf
	// Ensure |p-term| has the larger (or equal) scale.
	signP, signQ := dp.sign, dq.sign
	if eq > ep || (eq == ep && sq > sp) {
		sp, sq = sq, sp
		ep, eq = eq, ep
		signP, signQ = signQ, signP
	}
	d := uint(ep - eq)
	var sticky bool
	sq, sticky = bitutil.ShiftRightSticky(sq, d)
	var mag uint64
	sign := signP
	if signP == signQ {
		mag = sp + sq // headroom bit absorbs the carry
	} else {
		mag = sp - sq
		if sticky {
			// The true subtrahend was slightly larger than its
			// truncation, so the difference is slightly smaller:
			// borrow one ULP and re-inject via sticky.
			mag--
		}
		if mag == 0 {
			if !sticky {
				return p.f.Zero()
			}
			// Cancellation down to the sticky residue cannot
			// happen: sticky implies scale gap > 61 bits while
			// cancellation to zero requires equal scales.
			panic("posit: Add cancellation with sticky residue")
		}
	}
	l := uint(bits.Len64(mag))
	sf := ep + int(l) - 1 - top
	return p.f.encode(sign, sf, mag, l, sticky)
}

// Sub returns p-q rounded to nearest even.
func (p Posit) Sub(q Posit) Posit { return p.Add(q.Neg()) }

// Div returns p/q rounded to nearest even. Division by zero returns NaR,
// matching the posit standard (NaR absorbs all exception cases).
func (p Posit) Div(q Posit) Posit {
	if p.f != q.f {
		panic("posit: Div across formats")
	}
	if p.IsNaR() || q.IsNaR() || q.bits == 0 {
		return p.f.NaR()
	}
	if p.bits == 0 {
		return p.f.Zero()
	}
	dp, dq := p.decode(), q.decode()
	n := p.f.n
	// Compute Q = floor(sig_p << s / sig_q) with enough quotient bits
	// (>= n+4) that guard and sticky are exact. The 128-bit numerator
	// keeps the shift safe for every supported format.
	s := int(n) + 4 + int(dq.sigW) - int(dp.sigW)
	if s < 1 {
		s = 1
	}
	hi, lo := shl128(dp.sig, uint(s))
	quo, rem := bits.Div64(hi, lo, dq.sig)
	sticky := rem != 0
	l := uint(bits.Len64(quo))
	// value = Q × 2^(-s) × 2^(sf_p - sf_q - (w_p-1) + (w_q-1))
	sf := dp.sf - dq.sf - int(dp.sigW) + int(dq.sigW) - s + int(l) - 1
	return p.f.encode(dp.sign != dq.sign, sf, quo, l, sticky)
}

// shl128 returns x << s as a 128-bit (hi, lo) pair; s < 128.
func shl128(x uint64, s uint) (hi, lo uint64) {
	switch {
	case s == 0:
		return 0, x
	case s < 64:
		return x >> (64 - s), x << s
	case s < 128:
		return x << (s - 64), 0
	default:
		panic("posit: shl128 shift out of range")
	}
}

// FMA returns p*q + r with a single rounding, using a two-product quire
// internally — the scalar version of the EMAC guarantee.
func (p Posit) FMA(q, r Posit) Posit {
	if p.f != q.f || p.f != r.f {
		panic("posit: FMA across formats")
	}
	qr := NewQuire(p.f, 2)
	qr.AddPosit(r)
	qr.MulAdd(p, q)
	return qr.Result()
}

// Sqrt returns the square root of p rounded to nearest even; NaR for
// negative inputs or NaR.
func (p Posit) Sqrt() Posit {
	if p.IsNaR() || p.Negative() {
		return p.f.NaR()
	}
	if p.bits == 0 {
		return p.f.Zero()
	}
	d := p.decode()
	// Work on value = sig × 2^(sf - (sigW-1)). Arrange an even exponent:
	// sqrt(m × 2^(2t)) = sqrt(m) × 2^t. Shift sig left so that it has
	// plenty of precision (about 2(n+4) bits) and an even exponent.
	prec := 2 * (int(p.f.n) + 5)
	e := d.sf - int(d.sigW) + 1 // exponent of sig's LSB
	shift := prec - int(d.sigW)
	if (e-shift)%2 != 0 {
		shift++
	}
	hi, lo := shl128(d.sig, uint(shift))
	root, rem := sqrt128(hi, lo)
	l := uint(bits.Len64(root))
	sf := (e-shift)/2 + int(l) - 1
	return p.f.encode(false, sf, root, l, rem)
}

// sqrt128 computes floor(sqrt(hi:lo)) by binary restoring digit recurrence
// and reports whether a remainder exists (for sticky).
func sqrt128(hi, lo uint64) (root uint64, inexact bool) {
	var remHi, remLo uint64
	var r uint64
	for i := 0; i < 64; i++ {
		// Shift the next two radicand bits into the remainder.
		for j := 0; j < 2; j++ {
			carry := hi >> 63
			hi = hi<<1 | lo>>63
			lo <<= 1
			remHi = remHi<<1 | remLo>>63
			remLo = remLo<<1 | carry
		}
		// Trial subtrahend t = (r << 2) | 1.
		tHi := r >> 62
		tLo := r<<2 | 1
		if remHi > tHi || (remHi == tHi && remLo >= tLo) {
			var borrow uint64
			remLo, borrow = bits.Sub64(remLo, tLo, 0)
			remHi, _ = bits.Sub64(remHi, tHi, borrow)
			r = r<<1 | 1
		} else {
			r <<= 1
		}
	}
	return r, remHi|remLo != 0
}
