package engine

// Panic-isolation contract: a model kernel that panics fails its own
// request with ErrPanic, leaves every other request untouched, keeps the
// worker alive (with a fresh inferer, since the panic may have corrupted
// scratch state) and bumps the panics counter. CI runs this under -race.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
)

// panicModel is a minimal core.Model whose inferer panics whenever the
// first feature is negative ("poisoned" inputs); otherwise it echoes the
// input's first two features as logits.
type panicModel struct{}

type panicInferer struct{}

func (panicModel) NewInferer() core.Inferer             { return panicInferer{} }
func (panicModel) Kind() string                         { return "test" }
func (panicModel) InputDim() int                        { return 2 }
func (panicModel) OutputDim() int                       { return 2 }
func (panicModel) NumLayers() int                       { return 1 }
func (panicModel) Ariths() []emac.Arithmetic            { return nil }
func (panicModel) ArithNames() []string                 { return []string{"test"} }
func (panicModel) Standardizer() *datasets.Standardizer { return nil }
func (panicModel) MemoryBits() int                      { return 0 }
func (panicModel) Save(string) error                    { return errors.New("not serialisable") }
func (panicModel) String() string                       { return "panicModel" }

func (panicInferer) Infer(x []float64) []float64 {
	if x[0] < 0 {
		panic("poisoned input")
	}
	return []float64{x[0], x[1]}
}

func (panicInferer) InferInto(dst []float64, x []float64) []float64 {
	copy(dst, panicInferer{}.Infer(x))
	return dst
}

func (panicInferer) InferBatchInto(dst []float64, xs [][]float64) []float64 {
	for i, x := range xs {
		panicInferer{}.InferInto(dst[i*2:(i+1)*2], x)
	}
	return dst
}

func (panicInferer) Predict(x []float64) int { return 0 }

func (panicInferer) Accuracy(*datasets.Dataset) float64 { return 0 }

func TestWorkerSurvivesPanic(t *testing.T) {
	rt, err := NewRuntime(panicModel{}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// A poisoned batch fails with ErrPanic instead of killing the worker.
	if _, err := rt.InferBatch(context.Background(), [][]float64{{-1, 0}}); !errors.Is(err, ErrPanic) {
		t.Fatalf("poisoned batch: err = %v, want ErrPanic", err)
	}
	if n := rt.Panics(); n != 1 {
		t.Fatalf("Panics = %d, want 1", n)
	}

	// The single worker is still alive and serving: a clean batch works
	// and is computed correctly.
	out, err := rt.InferBatch(context.Background(), [][]float64{{3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("clean batch after panic: %v", err)
	}
	if out[0][0] != 3 || out[1][1] != 6 {
		t.Fatalf("clean batch results corrupted: %v", out)
	}
}

func TestSharedOutputBatchSurfacesPanic(t *testing.T) {
	rt, err := NewRuntime(panicModel{}, WithWorkers(2), WithSharedOutputs())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if _, err := rt.InferBatch(context.Background(), [][]float64{{1, 2}, {-1, 0}}); !errors.Is(err, ErrPanic) {
		t.Fatalf("shared-output poisoned batch: err = %v, want ErrPanic", err)
	}
	// The panic error must not leak into the next (clean) batch.
	out, err := rt.InferBatch(context.Background(), [][]float64{{7, 8}})
	if err != nil {
		t.Fatalf("clean shared batch after panic: %v", err)
	}
	if out[0][0] != 7 {
		t.Fatalf("clean shared batch corrupted: %v", out)
	}
}

func TestStreamingResultCarriesPanic(t *testing.T) {
	rt, err := NewRuntime(panicModel{}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(context.Background(), 1, []float64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(context.Background(), 2, []float64{9, 9}); err != nil {
		t.Fatal(err)
	}
	_ = rt.Close()
	var sawErr, sawOK bool
	for res := range rt.Results() {
		switch res.ID {
		case 1:
			sawErr = errors.Is(res.Err, ErrPanic) && res.Class == -1 && res.Logits == nil
		case 2:
			sawOK = res.Err == nil && res.Logits[0] == 9
		}
	}
	if !sawErr || !sawOK {
		t.Fatalf("streaming panic demux wrong: sawErr=%v sawOK=%v", sawErr, sawOK)
	}
}
