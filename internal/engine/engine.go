// Package engine is the concurrent batch-inference plane on top of the
// core model/session split: a worker pool in which every worker owns one
// shared-nothing core.Session over one immutable core.Network. The paper
// describes Deep Positron as a streaming accelerator serving a stream of
// inputs; this package is the software analogue for dataset-scale
// evaluation and serving — a batched API (InferBatch) for offline sweeps
// and a streaming Submit/Results API for request/response traffic.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
)

// Result is one completed streaming inference.
type Result struct {
	// ID is the caller's identifier from Submit.
	ID int
	// Logits are the decoded output logits.
	Logits []float64
	// Class is the argmax class (lowest index wins ties).
	Class int
}

// task is one unit of work: an input plus where its logits go.
type task struct {
	id      int
	x       []float64
	deliver func(id int, logits []float64)
}

// Engine is a worker-pool inference engine. All methods except Close may
// be called from any number of goroutines concurrently; inputs are
// handed to workers as-is (callers must not mutate a submitted slice
// until its result arrives).
type Engine struct {
	net     *core.Network
	workers int
	jobs    chan task
	results chan Result
	wg      sync.WaitGroup
	close   sync.Once
}

// New starts an engine with the given number of workers over one
// immutable network; workers <= 0 selects GOMAXPROCS. Each worker builds
// its own core.Session (pre-decoded kernels included), so workers share
// nothing but the read-only model. Call Close to release the pool.
func New(net *core.Network, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		net:     net,
		workers: workers,
		jobs:    make(chan task, 2*workers),
		results: make(chan Result, 2*workers),
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker()
	}
	return e
}

// worker drains the job queue through one private session.
func (e *Engine) worker() {
	defer e.wg.Done()
	s := e.net.NewSession()
	for t := range e.jobs {
		t.deliver(t.id, s.Infer(t.x))
	}
}

// Network returns the model plane the engine serves.
func (e *Engine) Network() *core.Network { return e.net }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// InferBatch runs every input through the pool and returns the logits in
// input order. Results are bit-identical to calling Infer serially (each
// inference is independent; only scheduling differs). Safe to call from
// multiple goroutines; a batch does not consume from or feed the
// streaming Results channel.
func (e *Engine) InferBatch(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	var wg sync.WaitGroup
	wg.Add(len(xs))
	deliver := func(id int, logits []float64) {
		out[id] = logits
		wg.Done()
	}
	for i, x := range xs {
		e.jobs <- task{id: i, x: x, deliver: deliver}
	}
	wg.Wait()
	return out
}

// PredictBatch runs every input through the pool and returns the argmax
// classes in input order.
func (e *Engine) PredictBatch(xs [][]float64) []int {
	logits := e.InferBatch(xs)
	classes := make([]int, len(logits))
	for i, l := range logits {
		classes[i] = nn.Argmax(l)
	}
	return classes
}

// Accuracy evaluates classification accuracy over a dataset with the
// whole pool (the parallel counterpart of core.Network.Accuracy; the
// count is exact, so the value is identical).
func (e *Engine) Accuracy(ds *datasets.Dataset) float64 {
	classes := e.PredictBatch(ds.X)
	correct := 0
	for i, c := range classes {
		if c == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Submit enqueues one streaming inference; its Result (tagged with id)
// arrives on the Results channel in completion order. Submit blocks when
// the pool is saturated and the Results channel is full — callers must
// drain Results concurrently. Submitting after Close panics.
func (e *Engine) Submit(id int, x []float64) {
	e.jobs <- task{id: id, x: x, deliver: e.deliverResult}
}

// deliverResult is the streaming delivery path (one shared func value so
// Submit allocates no closure per call).
func (e *Engine) deliverResult(id int, logits []float64) {
	e.results <- Result{ID: id, Logits: logits, Class: nn.Argmax(logits)}
}

// Results returns the streaming output channel. It is closed by Close
// after every in-flight inference has delivered.
func (e *Engine) Results() <-chan Result { return e.results }

// Close stops accepting work, waits for in-flight inferences and closes
// the Results channel. Idempotent; do not call concurrently with Submit
// or InferBatch.
func (e *Engine) Close() {
	e.close.Do(func() {
		close(e.jobs)
		e.wg.Wait()
		close(e.results)
	})
}
