// Package engine is the concurrent inference plane on top of the core
// model/session split. The paper describes Deep Positron as a streaming
// accelerator serving a stream of inputs; this package is the software
// analogue for dataset-scale evaluation and serving.
//
// Runtime is the serving-grade execution plane: a worker pool in which
// every worker owns one shared-nothing core.Inferer over one immutable
// core.Model (uniform or mixed precision alike). It is configured with
// functional options, observes context cancellation, and fails with
// errors rather than panics on misuse. One layer up, internal/registry
// serves many named Runtimes side by side with micro-batching; Engine is
// the original batch-engine API, kept as a thin deprecated wrapper.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/posit"
)

// ErrClosed is returned by Runtime methods called after Close.
var ErrClosed = errors.New("engine: runtime closed")

// ErrPanic wraps a panic recovered inside a worker: the inference that
// panicked fails with this error, the worker survives with a fresh
// execution plane, and Runtime.Panics counts the event. A poisoned
// input must cost one request, never the daemon.
var ErrPanic = errors.New("engine: inference panicked")

// Result is one completed streaming inference.
type Result struct {
	// ID is the caller's identifier from Submit.
	ID int
	// Logits are the decoded output logits (nil when Err is set).
	Logits []float64
	// Class is the argmax class (lowest index wins ties); -1 when Err is
	// set.
	Class int
	// Err reports an inference that failed inside the worker (a
	// recovered model-kernel panic, wrapping ErrPanic).
	Err error
}

// task is one unit of work. For a streaming task, x is the input and
// dst (optional) is where the logits go: when dst is non-nil the worker
// decodes into it (the allocation-free shared-output path), otherwise it
// allocates the logits. When xs is non-nil the task is one fused batch
// chunk instead: the worker runs the whole chunk through the inferer's
// batched kernels in one InferBatchInto call, decoding into the flat
// dstFlat window (len(xs) × output width). deliver is called exactly
// once either way, with err set when the inference panicked.
type task struct {
	id      int
	x       []float64
	dst     []float64
	xs      [][]float64
	dstFlat []float64
	deliver func(id int, logits []float64, err error)
}

// config collects the functional options.
type config struct {
	workers    int
	queueDepth int
	warmTables bool
	sharedOut  bool
	flushDepth int
}

// Option configures a Runtime at construction.
type Option func(*config)

// WithWorkers sets the worker-pool size; n <= 0 selects GOMAXPROCS (the
// default).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithQueueDepth sets the job-queue capacity; n <= 0 selects twice the
// worker count (the default). Deeper queues let bursty Submit traffic
// ride ahead of the pool at the cost of buffered latency.
func WithQueueDepth(n int) Option { return func(c *config) { c.queueDepth = n } }

// WithWarmTables eagerly builds the posit decode and Mul/Add fast-path
// tables for every posit layer format before the first inference, so no
// request pays the lazy table-construction latency.
func WithWarmTables() Option { return func(c *config) { c.warmTables = true } }

// WithSharedOutputs makes InferBatch decode logits into one runtime-owned
// buffer that is reused across calls, making steady-state dataset sweeps
// allocation-free end to end. The returned slices are valid only until
// the next InferBatch call; shared-output batches are serialised
// internally. Streaming Submit results are unaffected (every Result owns
// its logits).
func WithSharedOutputs() Option { return func(c *config) { c.sharedOut = true } }

// WithFlushPipeline sets the number of flush-slot result planes a
// shared-output runtime owns (see AcquireFlushSlot). With d planes, d
// batch computations can be in flight at once — one plane computing
// while another's readers still demultiplex — which is how the serving
// micro-batcher overlaps collect/compute/demux instead of serialising
// them end to end. d <= 1 keeps a single plane (flushes serialise on
// it, the pre-pipeline behaviour). Without WithSharedOutputs the option
// is inert.
func WithFlushPipeline(d int) Option { return func(c *config) { c.flushDepth = d } }

// Runtime is a context-aware worker-pool inference runtime over one
// immutable Model. All methods are safe for concurrent use, including
// Close: closing drains in-flight work, and submissions after Close
// return ErrClosed.
type Runtime struct {
	model   core.Model
	workers int
	jobs    chan task
	results chan Result

	wg sync.WaitGroup // workers

	// mu guards closed. Producers hold it for reading while enqueueing, so
	// jobs is never closed mid-send.
	mu     sync.RWMutex
	closed bool

	// panics counts inferences that panicked inside a worker (each one
	// failed with ErrPanic; the worker survived).
	panics atomic.Int64

	// shared-output batch state (sharedBatch serialises those batches).
	sharedOut     bool
	sharedMu      sync.Mutex
	sharedBuf     []float64
	sharedHdrs    [][]float64
	sharedWG      sync.WaitGroup
	sharedErrMu   sync.Mutex
	sharedErr     error
	sharedDeliver func(id int, logits []float64, err error)

	// flush pipeline: flushDepth leasable result planes (see
	// AcquireFlushSlot). nil when the runtime is not shared-output.
	flushDepth int
	planes     chan *FlushSlot
}

// NewRuntime starts a runtime over the model. Each worker builds its own
// core.Inferer (pre-decoded kernels included), so workers share nothing
// but the read-only model plane. Call Close to release the pool.
func NewRuntime(model core.Model, opts ...Option) (*Runtime, error) {
	if model == nil {
		return nil, errors.New("engine: nil model")
	}
	if model.NumLayers() == 0 {
		return nil, errors.New("engine: model has no layers")
	}
	cfg := config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 2 * cfg.workers
	}
	if cfg.warmTables {
		for _, a := range model.Ariths() {
			if pa, ok := a.(emac.PositArith); ok {
				posit.WarmTables(pa.F)
			}
		}
	}
	if cfg.flushDepth < 1 {
		cfg.flushDepth = 1
	}
	r := &Runtime{
		model:     model,
		workers:   cfg.workers,
		jobs:      make(chan task, cfg.queueDepth),
		results:   make(chan Result, cfg.queueDepth),
		sharedOut: cfg.sharedOut,
	}
	if cfg.sharedOut {
		r.flushDepth = cfg.flushDepth
		r.planes = make(chan *FlushSlot, cfg.flushDepth)
		for i := 0; i < cfg.flushDepth; i++ {
			s := &FlushSlot{r: r}
			s.deliver = func(id int, _ []float64, err error) {
				if err != nil {
					s.errMu.Lock()
					if s.err == nil {
						s.err = fmt.Errorf("engine: batch chunk at input %d: %w", id, err)
					}
					s.errMu.Unlock()
				}
				s.wg.Done()
			}
			r.planes <- s
		}
	}
	r.sharedDeliver = func(id int, _ []float64, err error) {
		if err != nil {
			r.sharedErrMu.Lock()
			if r.sharedErr == nil {
				r.sharedErr = fmt.Errorf("engine: batch chunk at input %d: %w", id, err)
			}
			r.sharedErrMu.Unlock()
		}
		r.sharedWG.Done()
	}
	r.wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go r.worker()
	}
	return r, nil
}

// worker drains the job queue through one private execution plane. A
// model kernel that panics fails its own task with ErrPanic and costs
// this worker its inferer (the panic may have left scratch buffers
// half-written, so a fresh one is built) — but never the worker, and
// never the daemon.
func (r *Runtime) worker() {
	defer r.wg.Done()
	s := r.model.NewInferer()
	for t := range r.jobs {
		logits, err := runTask(s, t)
		if err != nil {
			r.panics.Add(1)
			s = r.model.NewInferer()
		}
		t.deliver(t.id, logits, err)
	}
}

// runTask executes one task — a fused batch chunk or one streaming
// inference — converting a panic into an error.
func runTask(s core.Inferer, t task) (logits []float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			logits, err = nil, fmt.Errorf("%w: %v", ErrPanic, p)
		}
	}()
	if t.xs != nil {
		s.InferBatchInto(t.dstFlat, t.xs)
		return nil, nil
	}
	if t.dst != nil {
		return s.InferInto(t.dst, t.x), nil
	}
	return s.Infer(t.x), nil
}

// Model returns the model plane the runtime serves.
func (r *Runtime) Model() core.Model { return r.model }

// Workers returns the pool size.
func (r *Runtime) Workers() int { return r.workers }

// QueueCap returns the job-queue capacity configured at construction
// (WithQueueDepth, default twice the worker count).
func (r *Runtime) QueueCap() int { return cap(r.jobs) }

// QueueLen returns the current job-queue occupancy: inferences submitted
// but not yet picked up by a worker. Together with QueueCap it is the
// backpressure signal an admission layer reads to shed load instead of
// letting requests queue without bound.
func (r *Runtime) QueueLen() int { return len(r.jobs) }

// SharedOutputs reports whether the runtime was built with
// WithSharedOutputs — callers then own the serialisation and copy-out of
// InferBatch results.
func (r *Runtime) SharedOutputs() bool { return r.sharedOut }

// Panics returns how many inferences have panicked inside workers since
// construction. Each one failed its own request with ErrPanic while the
// worker survived; a nonzero value means some model kernel is unsound
// for some inputs and deserves investigation.
func (r *Runtime) Panics() int64 { return r.panics.Load() }

// checkInput validates one input vector against the model shape.
func (r *Runtime) checkInput(x []float64) error {
	if want := r.model.InputDim(); len(x) != want {
		return fmt.Errorf("engine: input has %d features, model expects %d", len(x), want)
	}
	return nil
}

// enqueue submits one task, respecting cancellation (an already-
// cancelled context never enqueues). The caller must hold r.mu for
// reading with r.closed == false.
func (r *Runtime) enqueue(ctx context.Context, t task) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	select {
	case r.jobs <- t:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// batchChunk returns the fused-chunk size for a batch of n samples:
// ceil(n / workers), so one batch spreads over the whole pool while
// each worker runs its share as a single fused InferBatchInto call.
func (r *Runtime) batchChunk(n int) int {
	c := (n + r.workers - 1) / r.workers
	if c < 1 {
		c = 1
	}
	return c
}

// InferBatch splits the batch into one fused chunk per worker and runs
// each chunk through the inferer's batched layer kernels in a single
// call, so every weight row is decoded once per chunk instead of once
// per sample. Logits come back in input order, bit-identical to running
// one core session serially (each sample's arithmetic is unchanged; only
// the loop order differs). Cancelling ctx stops submission and returns
// ctx.Err after every already-submitted chunk has drained — no worker is
// left writing into the batch. Under WithSharedOutputs the returned
// slices are valid only until the next InferBatch call.
func (r *Runtime) InferBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	for i, x := range xs {
		if err := r.checkInput(x); err != nil {
			return nil, fmt.Errorf("engine: batch input %d: %w", i, err)
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.sharedOut {
		r.sharedMu.Lock()
		defer r.sharedMu.Unlock()
		return r.inferBatchShared(ctx, xs)
	}
	od := r.model.OutputDim()
	buf := make([]float64, len(xs)*od)
	out := make([][]float64, len(xs))
	for i := range out {
		out[i] = buf[i*od : (i+1)*od : (i+1)*od]
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	deliver := func(id int, _ []float64, err error) {
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("engine: batch chunk at input %d: %w", id, err)
			}
			errMu.Unlock()
		}
		wg.Done()
	}
	chunk := r.batchChunk(len(xs))
	for start := 0; start < len(xs); start += chunk {
		end := start + chunk
		if end > len(xs) {
			end = len(xs)
		}
		wg.Add(1)
		t := task{id: start, xs: xs[start:end], dstFlat: buf[start*od : end*od], deliver: deliver}
		if err := r.enqueue(ctx, t); err != nil {
			wg.Done()
			wg.Wait() // drain already-submitted work before returning
			return nil, err
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// inferBatchShared is the allocation-free InferBatch arm: logits land in
// a runtime-owned flat buffer reused across calls. Caller holds r.mu for
// reading and r.sharedMu (the latter until it has finished consuming the
// returned slices).
func (r *Runtime) inferBatchShared(ctx context.Context, xs [][]float64) ([][]float64, error) {
	od := r.model.OutputDim()
	if need := len(xs) * od; cap(r.sharedBuf) < need {
		r.sharedBuf = make([]float64, need)
	}
	if cap(r.sharedHdrs) < len(xs) {
		r.sharedHdrs = make([][]float64, len(xs))
	}
	hdrs := r.sharedHdrs[:len(xs)]
	buf := r.sharedBuf[:len(xs)*od]
	for i := range hdrs {
		hdrs[i] = buf[i*od : (i+1)*od : (i+1)*od]
	}
	chunk := r.batchChunk(len(xs))
	for start := 0; start < len(xs); start += chunk {
		end := start + chunk
		if end > len(xs) {
			end = len(xs)
		}
		r.sharedWG.Add(1)
		t := task{id: start, xs: xs[start:end], dstFlat: buf[start*od : end*od], deliver: r.sharedDeliver}
		if err := r.enqueue(ctx, t); err != nil {
			r.sharedWG.Done()
			r.sharedWG.Wait()
			r.sharedErr = nil // delivered chunks may have panicked; the ctx error wins
			return nil, err
		}
	}
	r.sharedWG.Wait()
	// sharedWG.Wait orders every sharedDeliver write before this read, and
	// the caller holds sharedMu, so the reset cannot race the next batch.
	if err := r.sharedErr; err != nil {
		r.sharedErr = nil
		return nil, err
	}
	return hdrs, nil
}

// FlushSlot is one leased result plane of a shared-output runtime's
// flush pipeline: a runtime-owned flat logits buffer plus the machinery
// to run one batch into it. Between AcquireFlushSlot and Release the
// plane belongs to the holder alone, so a second slot's InferBatch can
// compute while this slot's results are still being read — the
// serving-plane analogue of the paper's accelerator keeping its EMAC
// pipeline full across windows. A FlushSlot is single-owner: its
// methods must not be called concurrently.
type FlushSlot struct {
	r       *Runtime
	buf     []float64
	hdrs    [][]float64
	wg      sync.WaitGroup
	errMu   sync.Mutex
	err     error
	deliver func(id int, logits []float64, err error)
}

// FlushPipelineDepth returns the number of flush-slot result planes (0
// when the runtime was not built with WithSharedOutputs).
func (r *Runtime) FlushPipelineDepth() int { return r.flushDepth }

// FlushSlotsInUse returns how many flush slots are currently leased —
// the live pipeline-depth gauge the serving metrics report.
func (r *Runtime) FlushSlotsInUse() int {
	if r.planes == nil {
		return 0
	}
	return r.flushDepth - len(r.planes)
}

// AcquireFlushSlot leases one result plane, blocking while all
// FlushPipelineDepth planes are held (backpressure: the pipeline is
// bounded, a stalled reader can stall at most its own plane's
// successors). It unblocks with ctx.Err on cancellation and fails with
// ErrClosed after Close. Callers must Release the slot exactly once.
func (r *Runtime) AcquireFlushSlot(ctx context.Context) (*FlushSlot, error) {
	if r.planes == nil {
		return nil, errors.New("engine: flush slots require WithSharedOutputs")
	}
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	default:
	}
	select {
	case s := <-r.planes:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns the plane to the pipeline, waking one blocked
// AcquireFlushSlot. The slot's previous InferBatch results are invalid
// from this point. Release exactly once per acquisition.
func (s *FlushSlot) Release() { s.r.planes <- s }

// InferBatch runs one batch through the runtime's worker pool, decoding
// logits into this slot's plane. It is Runtime.InferBatch with the
// plane lease replacing the internal serialisation: results are valid
// until Release (or the slot's next InferBatch), bit-identical to a
// serial session, and other slots' in-flight batches are unaffected.
// Cancelling ctx stops submission and returns ctx.Err after every
// already-submitted chunk has drained.
func (s *FlushSlot) InferBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	r := s.r
	for i, x := range xs {
		if err := r.checkInput(x); err != nil {
			return nil, fmt.Errorf("engine: batch input %d: %w", i, err)
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	od := r.model.OutputDim()
	if need := len(xs) * od; cap(s.buf) < need {
		s.buf = make([]float64, need)
	}
	if cap(s.hdrs) < len(xs) {
		s.hdrs = make([][]float64, len(xs))
	}
	hdrs := s.hdrs[:len(xs)]
	buf := s.buf[:len(xs)*od]
	for i := range hdrs {
		hdrs[i] = buf[i*od : (i+1)*od : (i+1)*od]
	}
	chunk := r.batchChunk(len(xs))
	for start := 0; start < len(xs); start += chunk {
		end := start + chunk
		if end > len(xs) {
			end = len(xs)
		}
		s.wg.Add(1)
		t := task{id: start, xs: xs[start:end], dstFlat: buf[start*od : end*od], deliver: s.deliver}
		if err := r.enqueue(ctx, t); err != nil {
			s.wg.Done()
			s.wg.Wait()
			s.err = nil // delivered chunks may have panicked; the ctx error wins
			return nil, err
		}
	}
	s.wg.Wait()
	// wg.Wait orders every deliver write before this read, and the slot
	// is single-owner, so the reset cannot race the slot's next batch.
	if err := s.err; err != nil {
		s.err = nil
		return nil, err
	}
	return hdrs, nil
}

// PredictBatch runs every input through the pool and returns the argmax
// classes in input order. It shares InferBatch's contract: context
// cancellation drains already-submitted work before returning, and after
// Close it fails with ErrClosed. Under WithSharedOutputs it consumes the
// shared logits buffer while still holding its lock, so concurrent
// PredictBatch and Accuracy calls never read another batch's logits.
func (r *Runtime) PredictBatch(ctx context.Context, xs [][]float64) ([]int, error) {
	if !r.sharedOut {
		logits, err := r.InferBatch(ctx, xs)
		if err != nil {
			return nil, err
		}
		return argmaxAll(logits), nil
	}
	for i, x := range xs {
		if err := r.checkInput(x); err != nil {
			return nil, fmt.Errorf("engine: batch input %d: %w", i, err)
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	r.sharedMu.Lock()
	defer r.sharedMu.Unlock()
	logits, err := r.inferBatchShared(ctx, xs)
	if err != nil {
		return nil, err
	}
	return argmaxAll(logits), nil
}

func argmaxAll(logits [][]float64) []int {
	classes := make([]int, len(logits))
	for i, l := range logits {
		classes[i] = nn.Argmax(l)
	}
	return classes
}

// Accuracy evaluates classification accuracy over a dataset with the
// whole pool — the Runtime counterpart of Inferer.Accuracy. The count is
// exact, so the value is identical to a serial sweep; cancellation and
// Close behave as in PredictBatch.
func (r *Runtime) Accuracy(ctx context.Context, ds *datasets.Dataset) (float64, error) {
	classes, err := r.PredictBatch(ctx, ds.X)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, c := range classes {
		if c == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// Submit enqueues one streaming inference; its Result (tagged with id)
// arrives on the Results channel in completion order. Submit blocks while
// the queue is saturated — callers must drain Results concurrently — and
// unblocks with ctx.Err when the context is cancelled first. After Close
// it returns ErrClosed.
func (r *Runtime) Submit(ctx context.Context, id int, x []float64) error {
	if err := r.checkInput(x); err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrClosed
	}
	return r.enqueue(ctx, task{id: id, x: x, deliver: r.deliverResult})
}

// deliverResult is the streaming delivery path (one shared func value so
// Submit allocates no closure per call).
func (r *Runtime) deliverResult(id int, logits []float64, err error) {
	if err != nil {
		r.results <- Result{ID: id, Class: -1, Err: err}
		return
	}
	r.results <- Result{ID: id, Logits: logits, Class: nn.Argmax(logits)}
}

// Close stops accepting work, waits for every in-flight inference and
// closes the Results channel — results submitted before Close are never
// dropped. Close is idempotent and safe to call concurrently with
// Submit/InferBatch: late producers observe ErrClosed. Callers streaming
// with Submit must keep draining Results until it closes.
func (r *Runtime) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	// No producer can be mid-send here: sends happen under the read lock
	// with closed == false, and the write lock above waited them out.
	close(r.jobs)
	r.wg.Wait()
	close(r.results)
	return nil
}

// Results returns the streaming output channel. It is closed by Close
// after every in-flight inference has delivered.
func (r *Runtime) Results() <-chan Result { return r.results }

// --- deprecated batch-engine wrapper ---

// Engine is the original worker-pool batch-inference API over a uniform
// network.
//
// Deprecated: use Runtime via NewRuntime for direct batch inference, or
// a registry.Registry when serving models behind names — both serve
// mixed-precision models, observe context cancellation and return errors
// instead of panicking. Engine remains as a source-compatible shim.
type Engine struct {
	rt  *Runtime
	net *core.Network
}

// New starts an engine with the given number of workers over one
// immutable network; workers <= 0 selects GOMAXPROCS.
//
// Deprecated: use NewRuntime.
func New(net *core.Network, workers int) *Engine {
	rt, err := NewRuntime(net, WithWorkers(workers))
	if err != nil {
		panic(err)
	}
	return &Engine{rt: rt, net: net}
}

// Runtime returns the runtime backing this engine.
func (e *Engine) Runtime() *Runtime { return e.rt }

// Network returns the model plane the engine serves.
func (e *Engine) Network() *core.Network { return e.net }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.rt.Workers() }

// InferBatch runs every input through the pool and returns the logits in
// input order. It panics when the batch is rejected (closed engine or
// misshapen inputs) — use Runtime.InferBatch for the error-returning,
// cancellable form.
func (e *Engine) InferBatch(xs [][]float64) [][]float64 {
	out, err := e.rt.InferBatch(context.Background(), xs)
	if err != nil {
		panic(err)
	}
	return out
}

// PredictBatch runs every input through the pool and returns the argmax
// classes in input order.
func (e *Engine) PredictBatch(xs [][]float64) []int {
	classes, err := e.rt.PredictBatch(context.Background(), xs)
	if err != nil {
		panic(err)
	}
	return classes
}

// Accuracy evaluates classification accuracy over a dataset with the
// whole pool.
func (e *Engine) Accuracy(ds *datasets.Dataset) float64 {
	acc, err := e.rt.Accuracy(context.Background(), ds)
	if err != nil {
		panic(err)
	}
	return acc
}

// Submit enqueues one streaming inference. Unlike the original Engine,
// submitting after Close returns ErrClosed instead of panicking.
func (e *Engine) Submit(id int, x []float64) error {
	return e.rt.Submit(context.Background(), id, x)
}

// Results returns the streaming output channel (closed by Close after
// in-flight work drains).
func (e *Engine) Results() <-chan Result { return e.rt.Results() }

// Close stops accepting work, waits for in-flight inferences and closes
// the Results channel. Idempotent and safe to call concurrently with
// Submit (late submissions observe ErrClosed).
func (e *Engine) Close() { _ = e.rt.Close() }
