package engine

// Runtime contract tests: lifecycle (close drains, submit-after-close
// errors), context cancellation, mixed-precision serving and the
// shared-output batch path. CI runs this file under -race, which is the
// point of the lifecycle tests — they hammer Submit/Close concurrently.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/rng"
)

// mixedFixture builds a mixed-precision network (one arm per family) and
// a synthetic dataset.
func mixedFixture(samples int) (*core.MixedNetwork, *datasets.Dataset) {
	src := nn.NewMLP([]int{12, 16, 8, 3}, rng.New(5))
	net := core.QuantizeMixed(src, []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4),
	})
	r := rng.New(6)
	ds := &datasets.Dataset{Name: "synthetic", NumClasses: 3}
	for i := 0; i < samples; i++ {
		x := make([]float64, 12)
		for j := range x {
			x[j] = r.NormMS(0, 1)
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, i%3)
	}
	return net, ds
}

func TestNewRuntimeRejectsNilModel(t *testing.T) {
	if _, err := NewRuntime(nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

// TestQueueOccupancy: the runtime reports its job-queue capacity and
// occupancy — the backpressure signal the registry's admission gate
// surfaces per model.
func TestQueueOccupancy(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(2), WithQueueDepth(7))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.QueueCap() != 7 {
		t.Fatalf("QueueCap = %d, want 7", rt.QueueCap())
	}
	if n := rt.QueueLen(); n < 0 || n > rt.QueueCap() {
		t.Fatalf("QueueLen = %d out of [0, %d]", n, rt.QueueCap())
	}
}

func TestSubmitAfterCloseErrorsNotPanics(t *testing.T) {
	net, ds := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(context.Background(), 0, ds.X[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := rt.InferBatch(context.Background(), ds.X); !errors.Is(err, ErrClosed) {
		t.Fatalf("InferBatch after Close = %v, want ErrClosed", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestCloseDrainsInFlightStreaming closes the runtime while many
// goroutines are still submitting: every submission that was accepted
// must produce exactly one result before Results closes, and late
// submissions must observe ErrClosed rather than panic. Run under -race
// this is the lifecycle stress the old Engine forbade ("do not call
// Close concurrently with Submit").
func TestCloseDrainsInFlightStreaming(t *testing.T) {
	net, ds := fixture(emac.NewFixed(8, 4), 64)
	rt, err := NewRuntime(net, WithWorkers(4), WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	var accepted, rejected, received atomic.Int64
	var consumers sync.WaitGroup
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for range rt.Results() {
			received.Add(1)
		}
	}()
	var producers sync.WaitGroup
	for g := 0; g < 8; g++ {
		producers.Add(1)
		go func(g int) {
			defer producers.Done()
			for i := 0; i < 200; i++ {
				err := rt.Submit(context.Background(), g*1000+i, ds.X[i%len(ds.X)])
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
				default:
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond) // let some work get in flight
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	producers.Wait()
	consumers.Wait() // Results closed — all deliveries done
	if got, want := received.Load(), accepted.Load(); got != want {
		t.Fatalf("received %d results for %d accepted submissions", got, want)
	}
	if accepted.Load() == 0 {
		t.Fatal("no submission was accepted before Close")
	}
}

func TestInferBatchObservesCancellation(t *testing.T) {
	net, ds := fixture(emac.NewPosit(8, 0), 32)
	rt, err := NewRuntime(net, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.InferBatch(ctx, ds.X); !errors.Is(err, context.Canceled) {
		t.Fatalf("InferBatch with cancelled ctx = %v, want context.Canceled", err)
	}
	// The runtime stays usable after a cancelled batch.
	out, err := rt.InferBatch(context.Background(), ds.X)
	if err != nil || len(out) != len(ds.X) {
		t.Fatalf("recovery batch: %v (%d results)", err, len(out))
	}
}

// TestSubmitObservesCancellation saturates the queue (no consumer
// draining Results) and verifies a blocked Submit unblocks with the
// context error.
func TestSubmitObservesCancellation(t *testing.T) {
	net, ds := fixture(emac.NewPosit(8, 0), 4)
	rt, err := NewRuntime(net, WithWorkers(1), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var submitErr error
	for i := 0; i < 1000; i++ {
		if submitErr = rt.Submit(ctx, i, ds.X[0]); submitErr != nil {
			break
		}
	}
	if !errors.Is(submitErr, context.DeadlineExceeded) {
		t.Fatalf("saturated Submit = %v, want context.DeadlineExceeded", submitErr)
	}
	// Drain and close cleanly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range rt.Results() {
		}
	}()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestRuntimeServesMixedModels(t *testing.T) {
	net, ds := mixedFixture(120)
	want := make([][]float64, len(ds.X))
	s := net.NewSession()
	for i, x := range ds.X {
		want[i] = s.Infer(x)
	}
	rt, err := NewRuntime(net, WithWorkers(6), WithWarmTables())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	got, err := rt.InferBatch(context.Background(), ds.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("mixed sample %d logit %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	acc, err := rt.Accuracy(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if serial := net.Accuracy(ds); acc != serial {
		t.Fatalf("runtime accuracy %v != serial %v", acc, serial)
	}
}

func TestSharedOutputsBitIdenticalAndReused(t *testing.T) {
	net, ds := fixture(emac.NewFloatN(8, 4), 80)
	want := make([][]float64, len(ds.X))
	s := net.NewSession()
	for i, x := range ds.X {
		want[i] = s.Infer(x)
	}
	rt, err := NewRuntime(net, WithWorkers(4), WithSharedOutputs())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	got, err := rt.InferBatch(context.Background(), ds.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("shared sample %d logit %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// The second batch reuses the same backing memory (the whole point),
	// and still carries correct values.
	again, err := rt.InferBatch(context.Background(), ds.X)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0][0] != &got[0][0] {
		t.Fatal("shared-output batch did not reuse its buffer")
	}
	for i := range again {
		for j := range again[i] {
			if again[i][j] != want[i][j] {
				t.Fatalf("second shared batch diverged at sample %d", i)
			}
		}
	}
}

func TestRuntimeRejectsMisshapenInput(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.InferBatch(context.Background(), [][]float64{make([]float64, 5)}); err == nil {
		t.Fatal("misshapen batch accepted")
	}
	if err := rt.Submit(context.Background(), 0, make([]float64, 5)); err == nil {
		t.Fatal("misshapen submission accepted")
	}
}

func TestEngineWrapperStillWorks(t *testing.T) {
	net, ds := fixture(emac.NewPosit(8, 0), 40)
	e := New(net, 3)
	if e.Workers() != 3 || e.Network() != net {
		t.Fatal("wrapper plumbing")
	}
	got := e.InferBatch(ds.X)
	s := net.NewSession()
	for i, x := range ds.X {
		want := s.Infer(x)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("wrapper sample %d diverges", i)
			}
		}
	}
	e.Close()
	if err := e.Submit(0, ds.X[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("wrapper Submit after Close = %v, want ErrClosed", err)
	}
}

// TestSharedOutputsConcurrentConsumers hammers PredictBatch/Accuracy
// concurrently on a shared-output runtime: classes must be computed from
// the caller's own batch, never another batch's logits (the shared
// buffer is consumed under its lock). Run under -race in CI.
func TestSharedOutputsConcurrentConsumers(t *testing.T) {
	net, ds := fixture(emac.NewPosit(8, 0), 60)
	rt, err := NewRuntime(net, WithWorkers(4), WithSharedOutputs())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	wantClasses, err := rt.PredictBatch(context.Background(), ds.X)
	if err != nil {
		t.Fatal(err)
	}
	wantAcc, err := rt.Accuracy(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g%2 == 0 {
					got, err := rt.PredictBatch(context.Background(), ds.X)
					if err != nil {
						t.Errorf("PredictBatch: %v", err)
						return
					}
					for j := range got {
						if got[j] != wantClasses[j] {
							t.Errorf("class %d: %d != %d", j, got[j], wantClasses[j])
							return
						}
					}
				} else {
					got, err := rt.Accuracy(context.Background(), ds)
					if err != nil || got != wantAcc {
						t.Errorf("accuracy %v (%v)", got, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
