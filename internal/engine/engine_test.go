package engine

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/nn"
	"repro/internal/rng"
)

// fixture builds a quantised network and a synthetic dataset (no
// training needed: bit-identity is a property of the datapath, not of
// accuracy).
func fixture(a emac.Arithmetic, samples int) (*core.Network, *datasets.Dataset) {
	src := nn.NewMLP([]int{12, 16, 8, 3}, rng.New(5))
	net := core.Quantize(src, a)
	r := rng.New(6)
	ds := &datasets.Dataset{Name: "synthetic", NumClasses: 3}
	for i := 0; i < samples; i++ {
		x := make([]float64, 12)
		for j := range x {
			x[j] = r.NormMS(0, 1)
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, i%3)
	}
	return net, ds
}

func TestInferBatchMatchesSerial(t *testing.T) {
	for _, a := range []emac.Arithmetic{
		emac.NewPosit(8, 0), emac.NewFloatN(8, 4), emac.NewFixed(8, 4), emac.Float32Arith{},
	} {
		net, ds := fixture(a, 200)
		want := make([][]float64, len(ds.X))
		s := net.NewSession()
		for i, x := range ds.X {
			want[i] = s.Infer(x)
		}
		e := New(net, 8)
		got := e.InferBatch(ds.X)
		e.Close()
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s sample %d logit %d: %v != %v", a.Name(), i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestAccuracyMatchesCore(t *testing.T) {
	net, ds := fixture(emac.NewPosit(8, 0), 300)
	e := New(net, 0) // GOMAXPROCS workers
	defer e.Close()
	if e.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d", e.Workers())
	}
	if got, want := e.Accuracy(ds), net.Accuracy(ds); got != want {
		t.Fatalf("engine accuracy %v != core accuracy %v", got, want)
	}
}

func TestStreaming(t *testing.T) {
	net, ds := fixture(emac.NewFixed(8, 4), 100)
	want := make([][]float64, len(ds.X))
	s := net.NewSession()
	for i, x := range ds.X {
		want[i] = s.Infer(x)
	}
	e := New(net, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	seen := make([]bool, len(ds.X))
	go func() {
		defer wg.Done()
		for res := range e.Results() {
			if seen[res.ID] {
				t.Errorf("duplicate result id %d", res.ID)
			}
			seen[res.ID] = true
			for j := range res.Logits {
				if res.Logits[j] != want[res.ID][j] {
					t.Errorf("id %d logit %d: %v != %v", res.ID, j, res.Logits[j], want[res.ID][j])
				}
			}
			if res.Class != nn.Argmax(want[res.ID]) {
				t.Errorf("id %d class %d", res.ID, res.Class)
			}
		}
	}()
	for i, x := range ds.X {
		e.Submit(i, x)
	}
	e.Close() // drains in-flight work, closes Results
	wg.Wait()
	for i, ok := range seen {
		if !ok {
			t.Fatalf("result %d never arrived", i)
		}
	}
}

func TestConcurrentBatches(t *testing.T) {
	net, ds := fixture(emac.NewFloatN(8, 4), 60)
	s := net.NewSession()
	want := make([][]float64, len(ds.X))
	for i, x := range ds.X {
		want[i] = s.Infer(x)
	}
	e := New(net, 4)
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := e.InferBatch(ds.X)
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Errorf("sample %d: %v != %v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestCloseIdempotent(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	e := New(net, 2)
	e.Close()
	e.Close() // second close must not panic
	if _, ok := <-e.Results(); ok {
		t.Fatal("results channel open after Close")
	}
}
