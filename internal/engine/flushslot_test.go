package engine

// Flush-pipeline contract tests: D distinct leasable planes, bounded
// blocking acquisition with context cancellation, result independence
// between concurrently leased slots (the ping-pong property the
// micro-batcher's overlap correctness rests on), and lifecycle edges.
// CI runs these under -race.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/emac"
)

func TestAcquireFlushSlotRequiresSharedOutputs(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.AcquireFlushSlot(context.Background()); err == nil {
		t.Fatal("AcquireFlushSlot on a non-shared runtime succeeded")
	}
	if d := rt.FlushPipelineDepth(); d != 0 {
		t.Fatalf("FlushPipelineDepth = %d on a non-shared runtime, want 0", d)
	}
}

// TestFlushSlotsDistinctToDepth leases every plane of a depth-3 pipeline
// without releasing: all acquisitions succeed, the slots are distinct,
// and the in-use gauge tracks each lease.
func TestFlushSlotsDistinctToDepth(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(1), WithSharedOutputs(), WithFlushPipeline(3))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if d := rt.FlushPipelineDepth(); d != 3 {
		t.Fatalf("FlushPipelineDepth = %d, want 3", d)
	}
	seen := map[*FlushSlot]bool{}
	for i := 0; i < 3; i++ {
		s, err := rt.AcquireFlushSlot(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if seen[s] {
			t.Fatalf("acquire %d returned an already-leased slot", i)
		}
		seen[s] = true
		if got := rt.FlushSlotsInUse(); got != i+1 {
			t.Fatalf("FlushSlotsInUse = %d after %d leases", got, i+1)
		}
	}
	for s := range seen {
		s.Release()
	}
	if got := rt.FlushSlotsInUse(); got != 0 {
		t.Fatalf("FlushSlotsInUse = %d after releasing all, want 0", got)
	}
}

// TestAcquireFlushSlotBlocksAndCancels exhausts the pipeline, then
// verifies a further acquisition blocks until either a release (success)
// or its context's cancellation (ctx.Err).
func TestAcquireFlushSlotBlocksAndCancels(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(1), WithSharedOutputs(), WithFlushPipeline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	held, err := rt.AcquireFlushSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := rt.AcquireFlushSlot(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire on full pipeline = %v, want DeadlineExceeded", err)
	}

	got := make(chan error, 1)
	go func() {
		s, err := rt.AcquireFlushSlot(context.Background())
		if err == nil {
			s.Release()
		}
		got <- err
	}()
	held.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("acquire after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire did not unblock after Release")
	}
}

// TestFlushSlotPingPongIndependence runs batches in two concurrently
// leased slots and checks each slot's results stay valid — bit-identical
// to a serial session — while the other slot computes into its own
// plane. This is the overlap-correctness property: flush N's readers and
// flush N+1's compute share nothing.
func TestFlushSlotPingPongIndependence(t *testing.T) {
	net, ds := fixture(emac.NewFloatN(8, 4), 48)
	want := make([][]float64, len(ds.X))
	s := net.NewSession()
	for i, x := range ds.X {
		want[i] = s.Infer(x)
	}
	rt, err := NewRuntime(net, WithWorkers(2), WithSharedOutputs(), WithFlushPipeline(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	a, err := rt.AcquireFlushSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.AcquireFlushSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	loA, hiA := 0, 24
	loB, hiB := 24, 48
	outA, err := a.InferBatch(context.Background(), ds.X[loA:hiA])
	if err != nil {
		t.Fatal(err)
	}
	// Slot B computes a different window while A's results are still
	// being read; A's plane must be untouched.
	outB, err := b.InferBatch(context.Background(), ds.X[loB:hiB])
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		for j := range outA[i] {
			if outA[i][j] != want[loA+i][j] {
				t.Fatalf("slot A sample %d logit %d: %v != %v (clobbered by slot B?)", i, j, outA[i][j], want[loA+i][j])
			}
		}
	}
	for i := range outB {
		for j := range outB[i] {
			if outB[i][j] != want[loB+i][j] {
				t.Fatalf("slot B sample %d logit %d: %v != %v", i, j, outB[i][j], want[loB+i][j])
			}
		}
	}
	a.Release()
	b.Release()
}

func TestAcquireFlushSlotAfterClose(t *testing.T) {
	net, _ := fixture(emac.NewPosit(8, 0), 1)
	rt, err := NewRuntime(net, WithWorkers(1), WithSharedOutputs(), WithFlushPipeline(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AcquireFlushSlot(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("AcquireFlushSlot after Close = %v, want ErrClosed", err)
	}
}
