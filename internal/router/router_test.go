package router

// Integration tests: real httptest replicas behind a Router, with
// deterministic seeds and hand-driven probes (background probing is
// disabled via withoutProbes so no goroutine races the assertions).

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// fakeReplica is a scriptable positrond stand-in: health endpoints plus
// a configurable infer route.
type fakeReplica struct {
	ts *httptest.Server

	mu           sync.Mutex
	infers       int
	healthStatus int
	queueLen     int
	queueCap     int
	inferFn      func(n int, w http.ResponseWriter, r *http.Request)
}

func newFakeReplica(inferFn func(n int, w http.ResponseWriter, r *http.Request)) *fakeReplica {
	f := &fakeReplica{healthStatus: http.StatusOK, queueCap: 64, inferFn: inferFn}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		status := f.healthStatus
		f.mu.Unlock()
		writeJSON(w, status, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		qLen, qCap := f.queueLen, f.queueCap
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"models": []map[string]any{{"queue_len": qLen, "queue_cap": qCap}},
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.infers++
		n := f.infers
		fn := f.inferFn
		f.mu.Unlock()
		fn(n, w, r)
	})
	f.ts = httptest.NewServer(mux)
	return f
}

func (f *fakeReplica) inferCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.infers
}

func (f *fakeReplica) setHealth(status int) {
	f.mu.Lock()
	f.healthStatus = status
	f.mu.Unlock()
}

func (f *fakeReplica) setQueue(qLen, qCap int) {
	f.mu.Lock()
	f.queueLen, f.queueCap = qLen, qCap
	f.mu.Unlock()
}

func ok200(n int, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"result": "ok"})
}

func newTestRouter(t *testing.T, addrs []string, opts ...Option) *Router {
	t.Helper()
	opts = append([]Option{withoutProbes(), WithSeed(1), WithBackoff(0, 0)}, opts...)
	rt, err := New(addrs, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// modelPreferring finds a model name whose rendezvous affinity is the
// given replica address, so tests control which replica is tried first.
func modelPreferring(t *testing.T, rt *Router, addr string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		m := fmt.Sprintf("model-%d", i)
		if rt.rank(m)[0].addr() == addr {
			return m
		}
	}
	t.Fatalf("no model name prefers %s", addr)
	return ""
}

// deadAddr returns an address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func inferVia(t *testing.T, rt *Router, model string) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/"+model+"/infer",
		strings.NewReader(`{"input":[1,2,3,4]}`))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec.Result()
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	// Replica 503s once (admission shedding), then accepts. The router
	// must absorb the 503 and deliver the eventual 200.
	rep := newFakeReplica(func(n int, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "queue full"})
			return
		}
		ok200(n, w, r)
	})
	defer rep.ts.Close()

	rt := newTestRouter(t, []string{rep.ts.URL}, WithMaxRetries(2), WithBreakerThreshold(5))
	resp := inferVia(t, rt, "iris")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := rt.Metrics().Router.Retries; got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := rep.inferCount(); got != 2 {
		t.Fatalf("replica saw %d infer calls, want 2", got)
	}
}

func TestNeverRetries4xx(t *testing.T) {
	// A 4xx is the replica's verdict on the request; replaying it is
	// wasted work and can mask client bugs.
	rep := newFakeReplica(func(n int, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad input"})
	})
	defer rep.ts.Close()

	rt := newTestRouter(t, []string{rep.ts.URL}, WithMaxRetries(3))
	resp := inferVia(t, rt, "iris")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 forwarded", resp.StatusCode)
	}
	if got := rep.inferCount(); got != 1 {
		t.Fatalf("replica saw %d infer calls, want exactly 1 (no retries on 4xx)", got)
	}
	if got := rt.Metrics().Router.Retries; got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

func TestFailoverToHealthyReplica(t *testing.T) {
	// Affinity points at a dead address; the retry must fail over to the
	// live replica and the dead one's breaker must open.
	live := newFakeReplica(ok200)
	defer live.ts.Close()
	dead := deadAddr(t)

	rt := newTestRouter(t, []string{dead, live.ts.URL},
		WithMaxRetries(2), WithBreakerThreshold(1), WithBreakerCooldown(time.Hour))
	model := modelPreferring(t, rt, "http://"+dead)

	resp := inferVia(t, rt, model)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after failover", resp.StatusCode)
	}
	if got := rt.Metrics().Router.Retries; got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	var deadState string
	for _, r := range rt.Metrics().Replicas {
		if r.Addr == "http://"+dead {
			deadState = r.State
		}
	}
	if deadState != "open" {
		t.Fatalf("dead replica breaker state = %q, want open", deadState)
	}

	// With the breaker open, the next request must go straight to the
	// live replica: no retry needed, no attempt against the dead one.
	before := rt.Metrics().Router.Retries
	resp = inferVia(t, rt, model)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with breaker open", resp.StatusCode)
	}
	if got := rt.Metrics().Router.Retries; got != before {
		t.Fatalf("retries grew to %d, want %d (open breaker should skip the dead replica)", got, before)
	}
}

func TestAllReplicasDownFast503(t *testing.T) {
	dead1, dead2 := deadAddr(t), deadAddr(t)
	rt := newTestRouter(t, []string{dead1, dead2},
		WithMaxRetries(1), WithBreakerThreshold(1), WithBreakerCooldown(30*time.Second))

	// First request pays the dial failures and opens both breakers.
	resp := inferVia(t, rt, "iris")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 must carry Retry-After")
	}

	// Second request must be shed fast: both breakers open, no dialing.
	start := time.Now()
	resp = inferVia(t, rt, "iris")
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "30" {
		t.Fatalf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), "30")
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("degraded 503 took %v, want fast-path rejection", elapsed)
	}
	if got := rt.Metrics().Router.Unavailable; got == 0 {
		t.Fatal("unavailable counter must count fast 503s")
	}
}

func TestExhaustedForwardsUpstream503(t *testing.T) {
	rep := newFakeReplica(func(n int, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "queue full"})
	})
	defer rep.ts.Close()

	rt := newTestRouter(t, []string{rep.ts.URL}, WithMaxRetries(2), WithBreakerThreshold(10))
	resp := inferVia(t, rt, "iris")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("exhausted 503 must carry Retry-After")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("body %q should forward the upstream 503 payload", body)
	}
	if got := rep.inferCount(); got != 3 {
		t.Fatalf("replica saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if got := rt.Metrics().Router.Exhausted; got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
}

func TestAffinityIsStable(t *testing.T) {
	a := newFakeReplica(ok200)
	b := newFakeReplica(ok200)
	defer a.ts.Close()
	defer b.ts.Close()

	rt := newTestRouter(t, []string{a.ts.URL, b.ts.URL})
	model := modelPreferring(t, rt, a.ts.URL)
	for i := 0; i < 8; i++ {
		resp := inferVia(t, rt, model)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Positron-Replica"); got != a.ts.URL {
			t.Fatalf("request %d served by %q, want affinity replica %q", i, got, a.ts.URL)
		}
	}
	if got := b.inferCount(); got != 0 {
		t.Fatalf("non-affinity replica saw %d requests, want 0", got)
	}
}

func TestSpillsWhenAffinityReplicaSaturated(t *testing.T) {
	a := newFakeReplica(ok200)
	b := newFakeReplica(ok200)
	defer a.ts.Close()
	defer b.ts.Close()

	rt := newTestRouter(t, []string{a.ts.URL, b.ts.URL})
	model := modelPreferring(t, rt, a.ts.URL)

	// Probe says the home replica's queue is over half full while the
	// other is idle: the picker must spill.
	a.setQueue(60, 64)
	b.setQueue(0, 64)
	for _, rep := range rt.replicas {
		rt.probe(rep)
	}
	resp := inferVia(t, rt, model)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Positron-Replica"); got != b.ts.URL {
		t.Fatalf("served by %q, want spill to least-loaded %q", got, b.ts.URL)
	}
}

func TestDrainingReplicaRoutedAround(t *testing.T) {
	a := newFakeReplica(ok200)
	b := newFakeReplica(ok200)
	defer a.ts.Close()
	defer b.ts.Close()

	rt := newTestRouter(t, []string{a.ts.URL, b.ts.URL}, WithBreakerThreshold(3))
	model := modelPreferring(t, rt, a.ts.URL)

	// The affinity replica starts a graceful shutdown: /healthz flips to
	// 503. After a probe round the router must route around it — without
	// tripping its breaker (drain is not a fault).
	a.setHealth(http.StatusServiceUnavailable)
	for _, rep := range rt.replicas {
		rt.probe(rep)
	}
	resp := inferVia(t, rt, model)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via the remaining replica", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Positron-Replica"); got != b.ts.URL {
		t.Fatalf("served by %q, want %q (drain routed around)", got, b.ts.URL)
	}
	for _, r := range rt.Metrics().Replicas {
		if r.Addr == a.ts.URL {
			if !r.Draining {
				t.Fatal("replica a should be marked draining")
			}
			if r.State != "closed" {
				t.Fatalf("draining replica breaker = %q, want closed (drain is not a fault)", r.State)
			}
		}
	}

	// Recovery: healthz back to 200, next probe restores routing.
	a.setHealth(http.StatusOK)
	for _, rep := range rt.replicas {
		rt.probe(rep)
	}
	resp = inferVia(t, rt, model)
	if got := resp.Header.Get("X-Positron-Replica"); got != a.ts.URL {
		t.Fatalf("served by %q, want recovered affinity replica %q", got, a.ts.URL)
	}
}

func TestProbeFailureOpensBreaker(t *testing.T) {
	// A probe against a dead replica must trip the breaker on its own —
	// threshold failures, no client request involved.
	dead := deadAddr(t)
	rt := newTestRouter(t, []string{dead},
		WithBreakerThreshold(2), WithProbeTimeout(200*time.Millisecond))
	for i := 0; i < 2; i++ {
		rt.probe(rt.replicas[0])
	}
	st := rt.Metrics().Replicas[0]
	if st.State != "open" {
		t.Fatalf("breaker state after failed probes = %q, want open", st.State)
	}
	if st.Healthy {
		t.Fatal("replica must be marked unhealthy after a failed probe")
	}
	if st.LastProbeError == "" {
		t.Fatal("last_probe_error should record the probe failure")
	}
}

func TestHedgedRequestWins(t *testing.T) {
	release := make(chan struct{})
	slow := newFakeReplica(func(n int, w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		ok200(n, w, r)
	})
	fast := newFakeReplica(ok200)
	defer slow.ts.Close()
	defer fast.ts.Close()
	defer close(release)

	rt := newTestRouter(t, []string{slow.ts.URL, fast.ts.URL},
		WithHedgeDelay(20*time.Millisecond))
	model := modelPreferring(t, rt, slow.ts.URL)

	resp := inferVia(t, rt, model)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Positron-Replica"); got != fast.ts.URL {
		t.Fatalf("served by %q, want hedge winner %q", got, fast.ts.URL)
	}
	m := rt.Metrics().Router
	if m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("hedges/wins = %d/%d, want 1/1", m.Hedges, m.HedgeWins)
	}
}

func TestRouterOwnEndpoints(t *testing.T) {
	rep := newFakeReplica(ok200)
	defer rep.ts.Close()
	rt := newTestRouter(t, []string{rep.ts.URL})

	get := func(path string) *http.Response {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Result()
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}
	if resp := get("/v1/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d, want 200", resp.StatusCode)
	}

	// BeginShutdown flips the router's own healthz/readyz to 503 (the
	// drain signal for whatever fronts the router), but proxying and
	// metrics keep working while in-flight traffic finishes.
	rt.BeginShutdown()
	if resp := get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if resp := get("/v1/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining metrics = %d, want 200", resp.StatusCode)
	}
	if resp := inferVia(t, rt, "iris"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining proxy = %d, want 200 (in-flight traffic still served)", resp.StatusCode)
	}
}

func TestReadyzUnavailableWhenAllReplicasDown(t *testing.T) {
	dead := deadAddr(t)
	rt := newTestRouter(t, []string{dead}, WithProbeTimeout(200*time.Millisecond))
	rt.probe(rt.replicas[0])
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503 with zero routable replicas", rec.Code)
	}
}

func TestRetriesThroughInjectedFaults(t *testing.T) {
	// A replica wrapped in the deterministic fault injector: 503s fire
	// on a fixed schedule, and the router's retry budget rides over
	// them. Seed and draw order are fixed, so this test cannot flake.
	rule, err := faults.ParseRule("/v1/models/iris/infer:error=503@p=0.5")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	inj := faults.New(99, rule)
	inner := newFakeReplica(ok200)
	defer inner.ts.Close()
	faulty := httptest.NewServer(inj.Wrap(mustProxyHandler(t, inner.ts.URL)))
	defer faulty.Close()

	rt := newTestRouter(t, []string{faulty.URL},
		WithMaxRetries(5), WithBreakerThreshold(100))
	for i := 0; i < 20; i++ {
		resp := inferVia(t, rt, "iris")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200 (retries must absorb injected 503s)", i, resp.StatusCode)
		}
	}
	m := rt.Metrics().Router
	if m.Retries == 0 {
		t.Fatal("expected the fault schedule to force at least one retry")
	}
	if got := inj.Counts().Errors; got == 0 {
		t.Fatal("injector should have fired at least once")
	}
}

// mustProxyHandler forwards to the inner fake replica (the injector
// wraps this, exactly like positrond wraps its mux).
func mustProxyHandler(t *testing.T, target string) http.Handler {
	t.Helper()
	u, err := url.Parse(target)
	if err != nil {
		t.Fatalf("parse %q: %v", target, err)
	}
	return httputil.NewSingleHostReverseProxy(u)
}
