package router

// The per-replica circuit breaker. A replica that keeps failing must
// stop receiving traffic before it drags every request through a
// timeout — the breaker trips after a run of consecutive failures
// (opened), sheds load for a cooldown, then lets a single trial through
// (half-open) and closes again only on success. Active health probes
// feed the same breaker, so a crashed replica trips it without any
// client paying for the discovery, and a recovered one closes it before
// client traffic has to gamble.

import (
	"sync"
	"time"
)

// BreakerState is one replica's circuit-breaker state.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is shed until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one trial request may probe the replica; success
	// closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

// String names the state as it appears in metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breakerCounts are the transition counters a breaker accumulates.
type breakerCounts struct {
	Opens     int64 `json:"opens"`
	HalfOpens int64 `json:"half_opens"`
	Closes    int64 `json:"closes"`
}

// breaker is one replica's state machine. All methods are safe for
// concurrent use. now is injectable so the transition tests are
// deterministic.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	trial    bool // half-open trial in flight
	counts   breakerCounts
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent to the replica right now.
// While open it denies until the cooldown elapses, then admits exactly
// one trial (the half-open transition); further requests are denied
// until that trial settles via RecordSuccess or RecordFailure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.counts.HalfOpens++
		b.trial = true
		return true
	default: // BreakerHalfOpen
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// RecordSuccess closes the breaker from any state. Health probes call
// this too: a recovered replica rejoins the pool on its next good probe
// without waiting for a client request to run the half-open trial.
func (b *breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.counts.Closes++
	}
	b.state = BreakerClosed
	b.fails = 0
	b.trial = false
}

// RecordFailure counts one failure: the threshold-th consecutive
// failure while closed opens the breaker, and a failed half-open trial
// re-opens it (restarting the cooldown). Failures while already open
// keep it open without extending the cooldown.
func (b *breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	case BreakerOpen:
		// Already shedding; nothing to count.
	}
}

func (b *breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trial = false
	b.counts.Opens++
}

// State returns the current state (transitioning Open to HalfOpen is
// done by Allow, not State — observation must not consume the trial).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// snapshot returns the state, consecutive-failure count and transition
// counters atomically.
func (b *breaker) snapshot() (BreakerState, int, breakerCounts) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.counts
}
