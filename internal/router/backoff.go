package router

// Retry backoff: exponential with full jitter (sleep uniformly in
// [0, min(cap, base·2^attempt))), the schedule that minimises total
// client work under contention — a herd of retries after a replica
// crash must decorrelate, not resynchronise. Draws come from the
// router's seeded SplitMix64 source so tests can pin the schedule.

import (
	"time"

	"repro/internal/rng"
)

// backoffDelay returns the sleep before retry number attempt (0-based):
// uniform in [0, min(max, base<<attempt)). base <= 0 disables backoff.
// The caller owns the source's synchronisation.
func backoffDelay(src *rng.Source, base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	ceil := max
	// base<<attempt with overflow care: beyond 62 shifts (or once the
	// shifted value passes max) the cap rules.
	if attempt < 62 {
		if d := base << uint(attempt); d > 0 && d < max {
			ceil = d
		}
	}
	return time.Duration(src.Float64() * float64(ceil))
}
