package router

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func TestBackoffJitterBounds(t *testing.T) {
	const (
		base = 10 * time.Millisecond
		max  = 250 * time.Millisecond
	)
	src := rng.New(42)
	for attempt := 0; attempt < 16; attempt++ {
		ceil := max
		if attempt < 62 {
			if d := base << uint(attempt); d > 0 && d < max {
				ceil = d
			}
		}
		for i := 0; i < 200; i++ {
			d := backoffDelay(src, base, max, attempt)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d draw %d: delay %v outside [0, %v)", attempt, i, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	a, b := rng.New(7), rng.New(7)
	for k := 0; k < 32; k++ {
		da := backoffDelay(a, time.Millisecond, time.Second, k%6)
		db := backoffDelay(b, time.Millisecond, time.Second, k%6)
		if da != db {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", k, da, db)
		}
	}
}

func TestBackoffDisabledAndClamped(t *testing.T) {
	src := rng.New(1)
	if d := backoffDelay(src, 0, time.Second, 3); d != 0 {
		t.Fatalf("base 0 must disable backoff, got %v", d)
	}
	if d := backoffDelay(src, -time.Millisecond, time.Second, 3); d != 0 {
		t.Fatalf("negative base must disable backoff, got %v", d)
	}
	// max below base clamps up to base, never panics or goes negative.
	for i := 0; i < 100; i++ {
		d := backoffDelay(src, 100*time.Millisecond, time.Millisecond, 5)
		if d < 0 || d >= 100*time.Millisecond {
			t.Fatalf("clamped draw %v outside [0, base)", d)
		}
	}
	// Huge attempt numbers must not overflow the shift.
	for i := 0; i < 100; i++ {
		d := backoffDelay(src, time.Millisecond, time.Second, 300)
		if d < 0 || d >= time.Second {
			t.Fatalf("large-attempt draw %v outside [0, max)", d)
		}
	}
}
