package router

// Per-replica state: the circuit breaker plus the view the active
// health prober maintains (liveness, drain, readiness, queue
// occupancy). The router never trusts this view blindly — a replica can
// die between probes — but it is what keeps routing decisions O(1) and
// keeps dead replicas from eating a connection timeout per request.

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// replica is one positrond backend.
type replica struct {
	base *url.URL // scheme://host:port, no trailing slash
	br   *breaker

	requests atomic.Int64 // proxied attempts sent to this replica
	failures atomic.Int64 // attempts that failed retriably (transport or 503)

	mu       sync.Mutex
	healthy  bool   // /healthz answered 200 on the last probe
	draining bool   // /healthz answered 503: graceful shutdown, route away
	ready    bool   // /readyz answered 200
	queueLen int    // summed per-model job-queue occupancy
	queueCap int    // summed per-model job-queue capacity
	probeErr string // last probe failure, "" when probing is clean
	probed   bool   // at least one probe round has completed
}

// newReplica parses addr ("host:port", "http://host:port", with an
// optional path prefix) into a replica. Before the first probe the
// replica is assumed healthy and ready, so a router can serve the
// instant it starts.
func newReplica(addr string, threshold int, cooldown time.Duration) (*replica, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("router: bad replica address %q: %w", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("router: replica address %q: scheme must be http or https", addr)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("router: replica address %q has no host", addr)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	u.RawQuery, u.Fragment = "", ""
	return &replica{
		base:    u,
		br:      newBreaker(threshold, cooldown),
		healthy: true,
		ready:   true,
	}, nil
}

// addr is the replica's canonical address string.
func (r *replica) addr() string { return r.base.String() }

// setProbe installs one probe round's findings.
func (r *replica) setProbe(healthy, draining, ready bool, queueLen, queueCap int, probeErr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.healthy, r.draining, r.ready = healthy, draining, ready
	r.queueLen, r.queueCap = queueLen, queueCap
	r.probeErr = probeErr
	r.probed = true
}

// view is a consistent copy of the probed state.
func (r *replica) view() (healthy, draining, ready bool, queueLen, queueCap int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy, r.draining, r.ready, r.queueLen, r.queueCap
}

// routable reports whether the prober considers this replica a routing
// candidate at all: alive and not draining. Readiness is a soft
// preference handled by the picker (an unready replica may still be the
// only one left), and the breaker is consulted at selection time.
func (r *replica) routable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy && !r.draining
}

// ReplicaStatus is one replica's snapshot in the router metrics.
type ReplicaStatus struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Ready    bool   `json:"ready"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	// ConsecutiveFails is the closed-state failure run feeding the
	// breaker threshold.
	ConsecutiveFails int `json:"consecutive_fails"`
	// Opens/HalfOpens/Closes count breaker transitions.
	Opens     int64 `json:"opens"`
	HalfOpens int64 `json:"half_opens"`
	Closes    int64 `json:"closes"`
	// Requests/Failures count proxied attempts sent here and the ones
	// that failed retriably.
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	// LastProbeError is the latest probe failure ("" when clean).
	LastProbeError string `json:"last_probe_error,omitempty"`
}

// status builds the metrics snapshot.
func (r *replica) status() ReplicaStatus {
	state, fails, counts := r.br.snapshot()
	r.mu.Lock()
	s := ReplicaStatus{
		Addr:             r.addr(),
		State:            state.String(),
		Healthy:          r.healthy,
		Draining:         r.draining,
		Ready:            r.ready,
		QueueLen:         r.queueLen,
		QueueCap:         r.queueCap,
		ConsecutiveFails: fails,
		Opens:            counts.Opens,
		HalfOpens:        counts.HalfOpens,
		Closes:           counts.Closes,
		LastProbeError:   r.probeErr,
	}
	r.mu.Unlock()
	s.Requests = r.requests.Load()
	s.Failures = r.failures.Load()
	return s
}
