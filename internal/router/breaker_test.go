package router

import (
	"testing"
	"time"
)

// testClock is an injectable manual clock for deterministic breaker
// transition tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *testClock) {
	clk := &testClock{t: time.Unix(0, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerFullCycle(t *testing.T) {
	b, clk := newTestBreaker(3, time.Second)

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Failures below the threshold keep it closed.
	b.RecordFailure()
	b.RecordFailure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2 failures state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	// The third consecutive failure opens it.
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must deny before cooldown")
	}
	// Just before the cooldown elapses it still denies.
	clk.advance(time.Second - time.Nanosecond)
	if b.Allow() {
		t.Fatal("open breaker must deny until the full cooldown")
	}
	// After the cooldown one trial is admitted (half-open), and only one.
	clk.advance(time.Nanosecond)
	if !b.Allow() {
		t.Fatal("breaker must admit a trial after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after trial admitted = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker must admit exactly one trial")
	}
	// Trial success closes.
	b.RecordSuccess()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after trial success state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow again")
	}

	_, fails, counts := b.snapshot()
	if fails != 0 {
		t.Fatalf("consecutive fails after close = %d, want 0", fails)
	}
	want := breakerCounts{Opens: 1, HalfOpens: 1, Closes: 1}
	if counts != want {
		t.Fatalf("counts = %+v, want %+v", counts, want)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)

	b.RecordFailure() // threshold 1: opens immediately
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("expected half-open trial")
	}
	// Trial failure re-opens and restarts the cooldown.
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", got)
	}
	clk.advance(time.Second - time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown must restart after a failed trial")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("expected a second trial after the restarted cooldown")
	}

	_, _, counts := b.snapshot()
	want := breakerCounts{Opens: 2, HalfOpens: 2, Closes: 0}
	if counts != want {
		t.Fatalf("counts = %+v, want %+v", counts, want)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.RecordFailure()
	b.RecordFailure()
	b.RecordSuccess() // interrupts the run
	b.RecordFailure()
	b.RecordFailure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures are consecutive, not cumulative)", got)
	}
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after 3 consecutive failures", got)
	}
}

func TestBreakerProbeSuccessClosesFromOpen(t *testing.T) {
	// Health probes call RecordSuccess directly: a recovered replica
	// must rejoin without waiting for a client-driven half-open trial.
	b, _ := newTestBreaker(1, time.Hour)
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	b.RecordSuccess()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}
