package router

// Active health probing. Every probe interval, each replica answers
// three questions: is the process alive (/healthz — a 503 there is the
// graceful-drain signal, not a crash), can it take new work (/readyz),
// and how loaded is it (/v1/metrics queue occupancy, which feeds the
// least-queue-depth picker). Transport-level probe failures — refused,
// reset, timeout — feed the replica's circuit breaker exactly like
// request failures, so a crashed replica trips its breaker without any
// client request paying for the discovery; a successful probe closes
// it again.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// probeLoop probes one replica until the router closes; the first round
// fires immediately so a freshly started router converges fast.
func (rt *Router) probeLoop(rep *replica) {
	defer rt.wg.Done()
	rt.probe(rep)
	ticker := time.NewTicker(rt.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probe(rep)
		}
	}
}

// probe runs one round against rep and installs the findings.
func (rt *Router) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout)
	defer cancel()

	code, _, err := rt.probeGet(ctx, rep, "/healthz")
	if err != nil {
		// The process is unreachable (refused, reset, probe timeout):
		// breaker food.
		rep.br.RecordFailure()
		rep.setProbe(false, false, false, 0, 0, fmt.Sprintf("healthz: %v", err))
		return
	}
	if code != http.StatusOK {
		// Alive but draining (or sick): route away without tripping the
		// breaker — a graceful shutdown is not a fault.
		rep.setProbe(false, code == http.StatusServiceUnavailable, false, 0, 0,
			fmt.Sprintf("healthz: status %d", code))
		return
	}
	rep.br.RecordSuccess()

	ready := false
	if code, _, err := rt.probeGet(ctx, rep, "/readyz"); err == nil {
		ready = code == http.StatusOK
	}

	queueLen, queueCap, occErr := rt.probeOccupancy(ctx, rep)
	probeErr := ""
	if occErr != nil {
		probeErr = fmt.Sprintf("metrics: %v", occErr)
	}
	rep.setProbe(true, false, ready, queueLen, queueCap, probeErr)
}

// probeGet fetches one probe endpoint, returning status and body.
func (rt *Router) probeGet(ctx context.Context, rep *replica, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base.String()+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// probeOccupancy sums per-model job-queue occupancy from the replica's
// /v1/metrics — the QueueLen/QueueCap backpressure signal the serving
// plane exposes per model.
func (rt *Router) probeOccupancy(ctx context.Context, rep *replica) (queueLen, queueCap int, err error) {
	code, body, err := rt.probeGet(ctx, rep, "/v1/metrics")
	if err != nil {
		return 0, 0, err
	}
	if code != http.StatusOK {
		return 0, 0, fmt.Errorf("status %d", code)
	}
	var parsed struct {
		Models []struct {
			QueueLen int `json:"queue_len"`
			QueueCap int `json:"queue_cap"`
		} `json:"models"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		return 0, 0, err
	}
	for _, m := range parsed.Models {
		queueLen += m.QueueLen
		queueCap += m.QueueCap
	}
	return queueLen, queueCap, nil
}
