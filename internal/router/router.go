// Package router is the resilient replica-routing tier: an HTTP proxy
// that fronts N positrond replicas and hides individual replica
// failures from clients. Each replica gets a circuit breaker fed by
// both request outcomes and an active health prober ([probeLoop]);
// requests are placed by rendezvous-hash affinity on the model name
// with least-queue-depth spill ([Router.pick]); retriable failures
// (connection refused/reset, 503, probe timeout — never 4xx, never a
// non-idempotent request that may have reached the replica) are retried
// with exponential backoff and full jitter; idempotent requests can be
// hedged against the tail. When every replica for a model is open the
// router degrades gracefully: a fast 503 with Retry-After instead of a
// pile-up of connection timeouts.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/rng"
)

const (
	// maxRequestBytes bounds the buffered request body (buffering is what
	// makes retries and hedges safe to replay).
	maxRequestBytes = 32 << 20
	// maxResponseBytes bounds buffered upstream responses and probe bodies.
	maxResponseBytes = 32 << 20
)

// Router proxies inference traffic across a fixed set of replicas.
type Router struct {
	replicas []*replica
	client   *http.Client

	probeInterval time.Duration
	probeTimeout  time.Duration
	maxRetries    int
	backoffBase   time.Duration
	backoffMax    time.Duration
	hedgeDelay    time.Duration
	cooldown      time.Duration

	rngMu sync.Mutex
	rng   *rng.Source

	metrics  metrics
	draining atomic.Bool

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// config collects option state before the replicas are built (the
// breaker parameters are per-replica and must be known first).
type config struct {
	probeInterval time.Duration
	probeTimeout  time.Duration
	threshold     int
	cooldown      time.Duration
	maxRetries    int
	backoffBase   time.Duration
	backoffMax    time.Duration
	hedgeDelay    time.Duration
	seed          uint64
	transport     http.RoundTripper
	noProbes      bool
}

// Option customises a Router.
type Option func(*config)

// WithProbeInterval sets the delay between health-probe rounds per
// replica (default 1s).
func WithProbeInterval(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.probeInterval = d
		}
	}
}

// WithProbeTimeout bounds one probe round (default 500ms). A probe that
// times out counts as a breaker failure.
func WithProbeTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.probeTimeout = d
		}
	}
}

// WithBreakerThreshold sets how many consecutive failures open a
// replica's breaker (default 3, minimum 1).
func WithBreakerThreshold(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.threshold = n
		}
	}
}

// WithBreakerCooldown sets how long an open breaker sheds load before
// admitting a half-open trial (default 2s). It is also the Retry-After
// hint on degraded 503s.
func WithBreakerCooldown(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.cooldown = d
		}
	}
}

// WithMaxRetries bounds extra attempts after a retriable failure
// (default 2; 0 disables retries).
func WithMaxRetries(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.maxRetries = n
		}
	}
}

// WithBackoff sets the exponential-backoff base and cap for the
// full-jitter retry delay (defaults 10ms and 250ms).
func WithBackoff(base, max time.Duration) Option {
	return func(c *config) {
		c.backoffBase, c.backoffMax = base, max
	}
}

// WithHedgeDelay enables hedged requests: when an idempotent request
// has not answered after d, a second attempt is fired at another
// replica and the first response wins. 0 (the default) disables
// hedging.
func WithHedgeDelay(d time.Duration) Option {
	return func(c *config) {
		if d >= 0 {
			c.hedgeDelay = d
		}
	}
}

// WithSeed seeds the router's deterministic jitter source (default 1).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithTransport overrides the upstream HTTP transport (tests).
func WithTransport(t http.RoundTripper) Option {
	return func(c *config) { c.transport = t }
}

// withoutProbes disables the background probe goroutines (tests drive
// probe rounds by hand for determinism).
func withoutProbes() Option {
	return func(c *config) { c.noProbes = true }
}

// New builds a Router over the given replica addresses and starts one
// health-probe goroutine per replica. Close releases them.
func New(addrs []string, opts ...Option) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("router: no replica addresses")
	}
	cfg := config{
		probeInterval: time.Second,
		probeTimeout:  500 * time.Millisecond,
		threshold:     3,
		cooldown:      2 * time.Second,
		maxRetries:    2,
		backoffBase:   10 * time.Millisecond,
		backoffMax:    250 * time.Millisecond,
		seed:          1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.transport == nil {
		cfg.transport = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 32,
		}
	}
	rt := &Router{
		client:        &http.Client{Transport: cfg.transport},
		probeInterval: cfg.probeInterval,
		probeTimeout:  cfg.probeTimeout,
		maxRetries:    cfg.maxRetries,
		backoffBase:   cfg.backoffBase,
		backoffMax:    cfg.backoffMax,
		hedgeDelay:    cfg.hedgeDelay,
		cooldown:      cfg.cooldown,
		rng:           rng.New(cfg.seed),
		stop:          make(chan struct{}),
	}
	seen := make(map[string]bool, len(addrs))
	for _, addr := range addrs {
		rep, err := newReplica(addr, cfg.threshold, cfg.cooldown)
		if err != nil {
			return nil, err
		}
		if seen[rep.addr()] {
			return nil, fmt.Errorf("router: duplicate replica address %q", rep.addr())
		}
		seen[rep.addr()] = true
		rt.replicas = append(rt.replicas, rep)
	}
	if !cfg.noProbes {
		for _, rep := range rt.replicas {
			rt.wg.Add(1)
			go rt.probeLoop(rep)
		}
	}
	return rt, nil
}

// Close stops the probe goroutines and releases idle connections.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// BeginShutdown flips the router's own /healthz to 503 so an upstream
// load balancer routes away while in-flight requests finish.
func (rt *Router) BeginShutdown() { rt.draining.Store(true) }

// Draining reports whether BeginShutdown has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// ServeHTTP answers the router's own health/metrics endpoints and
// proxies everything else to a replica.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		if rt.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case r.URL.Path == "/readyz":
		n := 0
		for _, rep := range rt.replicas {
			if rep.routable() {
				n++
			}
		}
		if rt.draining.Load() || n == 0 {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"status": "unavailable", "routable_replicas": n})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "routable_replicas": n})
	case r.URL.Path == "/v1/metrics" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, rt.Metrics())
	default:
		rt.proxy(w, r)
	}
}

// outcome is one attempt's result: a buffered upstream response, or the
// transport error that prevented one. cancelled marks attempts whose
// context was cut (client gone, or a hedge that lost) — those say
// nothing about the replica and are never recorded against it.
type outcome struct {
	rep       *replica
	resp      *bufferedResponse
	err       error
	cancelled bool
}

// bufferedResponse is a fully read upstream response, replayable to the
// client after the attempt that produced it has been judged.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// proxy forwards one client request with bounded retries, full-jitter
// backoff, optional hedging, and graceful degradation.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
		return
	}
	if len(body) > maxRequestBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "request body too large"})
		return
	}
	model := modelFromPath(r.URL.Path)
	idem := idempotent(r)

	tried := make(map[*replica]bool)
	var lastResp *bufferedResponse
	var lastErr error
	for attempt := 0; attempt <= rt.maxRetries; attempt++ {
		if attempt > 0 {
			rt.metrics.retries.Add(1)
			if !rt.sleepBackoff(r, attempt-1) {
				return // client gone mid-backoff
			}
		}
		rep := rt.pick(model, tried)
		if rep == nil {
			break
		}
		tried[rep] = true

		var out outcome
		if attempt == 0 && idem && rt.hedgeDelay > 0 && len(rt.replicas) > 1 {
			out = rt.hedgedAttempt(r, body, model, rep, tried)
		} else {
			out = rt.attempt(r.Context(), r, body, rep)
		}

		switch {
		case out.cancelled:
			return // client disconnected; nothing sensible to write
		case out.err != nil:
			lastErr = out.err
			if !retriable(idem, out.err) {
				// The request may have reached the replica and a replay
				// could double-apply it: surface the failure instead.
				rt.metrics.badGateway.Add(1)
				writeJSON(w, http.StatusBadGateway,
					map[string]string{"error": "upstream failure: " + out.err.Error()})
				return
			}
		case out.resp.status == http.StatusServiceUnavailable:
			lastResp = out.resp // retriable: replica shedding load
		default:
			// Success — including upstream 4xx/5xx other than 503, which
			// are the replica's verdict on the request, not a fault.
			rt.metrics.proxied.Add(1)
			rt.writeBuffered(w, out.resp, out.rep)
			return
		}
	}
	rt.degrade(w, lastResp, lastErr)
}

// degrade answers when every attempt failed or no replica was
// available: a fast 503 with a Retry-After hint sized to the breaker
// cooldown, forwarding the last upstream 503 body when there is one.
func (rt *Router) degrade(w http.ResponseWriter, lastResp *bufferedResponse, lastErr error) {
	retryAfter := int(rt.cooldown / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	switch {
	case lastResp != nil:
		rt.metrics.exhausted.Add(1)
		for k, vs := range lastResp.header {
			if k == "Retry-After" || hopByHop(k) {
				continue
			}
			w.Header()[k] = vs
		}
		w.WriteHeader(lastResp.status)
		_, _ = w.Write(lastResp.body)
	case lastErr != nil:
		rt.metrics.exhausted.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "all retries failed: " + lastErr.Error()})
	default:
		rt.metrics.unavailable.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "no replica available"})
	}
}

// attempt sends one buffered request to one replica and buffers the
// response. It records the outcome against the replica's breaker unless
// the context was cancelled (a cancelled attempt proves nothing).
func (rt *Router) attempt(ctx context.Context, r *http.Request, body []byte, rep *replica) outcome {
	rep.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, r.Method,
		rep.base.String()+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return outcome{rep: rep, err: err}
	}
	copyHeader(req.Header, r.Header)
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcome{rep: rep, err: err, cancelled: true}
		}
		rep.failures.Add(1)
		rep.br.RecordFailure()
		return outcome{rep: rep, err: err}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if ctx.Err() != nil {
			return outcome{rep: rep, err: err, cancelled: true}
		}
		rep.failures.Add(1)
		rep.br.RecordFailure()
		return outcome{rep: rep, err: fmt.Errorf("reading upstream response: %w", err)}
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		rep.failures.Add(1)
		rep.br.RecordFailure()
	} else {
		rep.br.RecordSuccess()
	}
	return outcome{rep: rep, resp: &bufferedResponse{
		status: resp.StatusCode,
		header: resp.Header.Clone(),
		body:   respBody,
	}}
}

// hedgedAttempt races the primary attempt against a hedge fired after
// hedgeDelay at a different replica. The first good response wins and
// the loser's context is cancelled; failures fall through to the normal
// retry loop.
func (rt *Router) hedgedAttempt(r *http.Request, body []byte, model string, primary *replica, tried map[*replica]bool) outcome {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	results := make(chan outcome, 2) // both attempts can always deliver
	pending := 1
	hedged := false
	go func() { results <- rt.attempt(ctx, r, body, primary) }()
	timer := time.NewTimer(rt.hedgeDelay)
	defer timer.Stop()
	var last outcome
	for {
		select {
		case <-timer.C:
			if sec := rt.pick(model, tried); sec != nil {
				tried[sec] = true
				rt.metrics.hedges.Add(1)
				hedged = true
				pending++
				go func() { results <- rt.attempt(ctx, r, body, sec) }()
			}
		case out := <-results:
			pending--
			good := out.err == nil && out.resp != nil && out.resp.status != http.StatusServiceUnavailable
			if good {
				if hedged && out.rep != primary {
					rt.metrics.hedgeWins.Add(1)
				}
				return out
			}
			last = out
			if pending == 0 {
				// Both (or the only) attempts failed: stop hedging and let
				// the retry loop take over.
				return last
			}
		}
	}
}

// sleepBackoff waits the full-jitter delay before retry k, returning
// false if the client went away first.
func (rt *Router) sleepBackoff(r *http.Request, k int) bool {
	rt.rngMu.Lock()
	d := backoffDelay(rt.rng, rt.backoffBase, rt.backoffMax, k)
	rt.rngMu.Unlock()
	if d <= 0 {
		return r.Context().Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.Context().Done():
		return false
	case <-t.C:
		return true
	}
}

// writeBuffered replays a buffered upstream response to the client,
// tagging which replica served it.
func (rt *Router) writeBuffered(w http.ResponseWriter, resp *bufferedResponse, rep *replica) {
	for k, vs := range resp.header {
		if hopByHop(k) {
			continue
		}
		w.Header()[k] = vs
	}
	w.Header().Set("X-Positron-Replica", rep.addr())
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// modelFromPath extracts the affinity key for rendezvous hashing:
// "/v1/models/{name}/..." → the model name, "/v1/artifacts/{hash}" →
// the content hash (so repeated fetches of one artifact hit the same
// replica's warm cache), anything else shares the "" key.
func modelFromPath(path string) string {
	for _, prefix := range []string{"/v1/models/", "/v1/artifacts/"} {
		if strings.HasPrefix(path, prefix) {
			rest := path[len(prefix):]
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				return rest[:i]
			}
			return rest
		}
	}
	return ""
}

// idempotent reports whether a request is safe to retry after it may
// have reached a replica. Reads are; so is POST .../infer — inference
// is a pure function of its input, so replaying it cannot double-apply
// anything. Everything else only retries on dial failures, which prove
// the request was never sent.
func idempotent(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return true
	case http.MethodPost:
		return strings.HasSuffix(r.URL.Path, "/infer")
	default:
		return false
	}
}

// retriable classifies a transport error. Idempotent requests retry on
// any transport failure; non-idempotent ones only when the connection
// never opened (dial error / connection refused), since then the
// request provably never reached the replica.
func retriable(idem bool, err error) bool {
	if idem {
		return true
	}
	return dialError(err)
}

// dialError reports whether err happened before the request could be
// sent (the connection was never established).
func dialError(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// hopByHop filters connection-scoped headers that must not be relayed.
func hopByHop(key string) bool {
	switch http.CanonicalHeaderKey(key) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// copyHeader copies end-to-end headers from src to dst.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop(k) {
			continue
		}
		dst[http.CanonicalHeaderKey(k)] = vs
	}
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
