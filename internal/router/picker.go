package router

// Replica selection: consistent-hash affinity with load-aware spill.
// Rendezvous (highest-random-weight) hashing gives every model name a
// stable preference order over the replica set — so a hot model's
// requests land where its tables are warm, and adding or removing one
// replica only reassigns the models that hashed to it. The picker
// prefers the affinity replica until its probed queue occupancy says it
// is busier than the least-loaded alternative AND at least half full;
// then it spills to the least-queue-depth candidate. The circuit
// breaker has the final word at selection time.

import "hash/fnv"

// rendezvousScore ranks (model, replica) pairs; the highest score is
// the model's home replica.
func rendezvousScore(model, addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(model))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}

// rank returns the replicas in the model's rendezvous preference order.
func (rt *Router) rank(model string) []*replica {
	ranked := make([]*replica, len(rt.replicas))
	copy(ranked, rt.replicas)
	scores := make(map[*replica]uint64, len(ranked))
	for _, r := range ranked {
		scores[r] = rendezvousScore(model, r.addr())
	}
	// Insertion sort: replica counts are single digits.
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && scores[ranked[j]] > scores[ranked[j-1]]; j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	return ranked
}

// pick selects the replica for one attempt on model, skipping replicas
// in tried (earlier attempts of the same request) while alternatives
// remain, preferring ready replicas over merely-live ones, and asking
// each candidate's breaker for permission. It returns nil when no
// replica is currently available — the caller degrades to a fast 503.
func (rt *Router) pick(model string, tried map[*replica]bool) *replica {
	ranked := rt.rank(model)

	// Candidate passes, most to least constrained: untried+ready,
	// untried+routable, then (when everything was tried already) any
	// ready, any routable, and finally any replica at all. Within a pass
	// the affinity/least-queue rule chooses, then breakers gate. The
	// last pass makes the probed health view advisory rather than
	// absolute: a single timed-out probe (CPU contention, a slow host)
	// must not blacklist the only live replica — the breaker, which
	// integrates real request outcomes, has the final word, and only
	// when every breaker denies does the router degrade to a fast 503.
	passes := []func(r *replica) bool{
		func(r *replica) bool {
			h, d, ready, _, _ := r.view()
			return !tried[r] && h && !d && ready
		},
		func(r *replica) bool { return !tried[r] && r.routable() },
		func(r *replica) bool {
			h, d, ready, _, _ := r.view()
			return h && !d && ready
		},
		func(r *replica) bool { return r.routable() },
		func(r *replica) bool { return true },
	}
	for _, keep := range passes {
		var cands []*replica
		for _, r := range ranked {
			if keep(r) {
				cands = append(cands, r)
			}
		}
		if len(cands) == 0 {
			continue
		}
		if r := admitOne(cands); r != nil {
			return r
		}
	}
	return nil
}

// admitOne applies the affinity/least-queue rule over candidates (in
// rendezvous order) and returns the first whose breaker admits.
func admitOne(cands []*replica) *replica {
	affinity := cands[0]
	_, _, _, affLen, affCap := affinity.view()
	least := affinity
	leastLen := affLen
	for _, c := range cands[1:] {
		_, _, _, qLen, _ := c.view()
		if qLen < leastLen {
			least, leastLen = c, qLen
		}
	}
	choice := affinity
	// Spill only when the home replica is both busier than the best
	// alternative and at least half full — affinity is worth a short
	// queue, not a saturated one.
	if affLen > leastLen && affCap > 0 && 2*affLen >= affCap {
		choice = least
	}
	if choice.br.Allow() {
		return choice
	}
	for _, c := range cands {
		if c != choice && c.br.Allow() {
			return c
		}
	}
	return nil
}
