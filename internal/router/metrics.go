package router

// Router-level counters, served as JSON on the router's /v1/metrics
// together with the per-replica breaker/probe snapshots.

import "sync/atomic"

// metrics accumulates router counters (atomics: the hot path never
// takes a lock for bookkeeping).
type metrics struct {
	proxied     atomic.Int64 // requests that reached a replica and returned to the client
	retries     atomic.Int64 // extra attempts after a retriable failure
	hedges      atomic.Int64 // hedge attempts launched
	hedgeWins   atomic.Int64 // hedges whose response beat the primary
	unavailable atomic.Int64 // fast 503s: no replica available (all open/down/draining)
	exhausted   atomic.Int64 // 503s after the retry budget ran out
	badGateway  atomic.Int64 // 502s: non-retriable transport failure
}

// RouterCounters is the JSON shape of the router-level counters.
type RouterCounters struct {
	Proxied     int64 `json:"proxied"`
	Retries     int64 `json:"retries"`
	Hedges      int64 `json:"hedges"`
	HedgeWins   int64 `json:"hedge_wins"`
	Unavailable int64 `json:"unavailable"`
	Exhausted   int64 `json:"exhausted"`
	BadGateway  int64 `json:"bad_gateway"`
}

func (m *metrics) counters() RouterCounters {
	return RouterCounters{
		Proxied:     m.proxied.Load(),
		Retries:     m.retries.Load(),
		Hedges:      m.hedges.Load(),
		HedgeWins:   m.hedgeWins.Load(),
		Unavailable: m.unavailable.Load(),
		Exhausted:   m.exhausted.Load(),
		BadGateway:  m.badGateway.Load(),
	}
}

// MetricsSnapshot is the router's /v1/metrics body.
type MetricsSnapshot struct {
	Router   RouterCounters  `json:"router"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Metrics snapshots the router counters and every replica's state.
func (rt *Router) Metrics() MetricsSnapshot {
	s := MetricsSnapshot{Router: rt.metrics.counters()}
	for _, r := range rt.replicas {
		s.Replicas = append(s.Replicas, r.status())
	}
	return s
}
