package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want Rule
	}{
		{"latency=50ms@p=0.3", Rule{Kind: Latency, Delay: 50 * time.Millisecond, P: 0.3}},
		{"error=503@p=0.2", Rule{Kind: Error, Status: 503, P: 0.2}},
		{"drop@p=0.1", Rule{Kind: Drop, P: 0.1}},
		{"drop", Rule{Kind: Drop, P: 1}},
		{"error=429", Rule{Kind: Error, Status: 429, P: 1}},
		{"/v1/infer:error=503@p=1", Rule{Path: "/v1/infer", Kind: Error, Status: 503, P: 1}},
		{"/v1/models:latency=1s", Rule{Path: "/v1/models", Kind: Latency, Delay: time.Second, P: 1}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.in)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// Rules round-trip through String.
		again, err := ParseRule(got.String())
		if err != nil || again != got {
			t.Errorf("round-trip %q -> %q -> %+v (%v)", c.in, got.String(), again, err)
		}
	}
}

func TestParseRuleRejects(t *testing.T) {
	for _, s := range []string{
		"", "latency=abc", "latency=-5ms", "error=200", "error=x", "explode",
		"drop@p=1.5", "drop@p=-0.1", "drop@q=0.5", "/v1/infer drop",
	} {
		if r, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) = %+v, want error", s, r)
		}
	}
}

// countingHandler records how many requests reached the inner handler.
type countingHandler struct{ n int }

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	h.n++
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok")
}

// TestErrorInjectionDeterministic replays the same seed twice and
// demands the identical injection schedule, and a different seed to
// diverge somewhere.
func TestErrorInjectionDeterministic(t *testing.T) {
	rule := Rule{Kind: Error, Status: 503, P: 0.5}
	schedule := func(seed uint64) []int {
		inner := &countingHandler{}
		h := New(seed, rule).Wrap(inner)
		codes := make([]int, 64)
		for i := range codes {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/infer", nil))
			codes[i] = rec.Code
		}
		return codes
	}
	a, b, c := schedule(42), schedule(42), schedule(43)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	n503 := 0
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] == 503 {
			n503++
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	// p = 0.5 over 64 draws: expect some of each, not all of either.
	if n503 == 0 || n503 == len(a) {
		t.Errorf("injected %d/%d errors at p=0.5 — sampling broken", n503, len(a))
	}
	if got := New(42, rule).Counts(); got != (Counts{}) {
		t.Errorf("fresh injector counts = %+v, want zero", got)
	}
}

func TestPathScoping(t *testing.T) {
	rule := Rule{Path: "/v1/infer", Kind: Error, Status: 503, P: 1}
	inner := &countingHandler{}
	h := New(1, rule).Wrap(inner)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/infer", nil))
	if rec.Code != 503 {
		t.Errorf("scoped route: got %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("out-of-scope route: got %d, want 200", rec.Code)
	}
	if inner.n != 1 {
		t.Errorf("inner handler saw %d requests, want 1", inner.n)
	}
}

func TestLatencyInjection(t *testing.T) {
	rule := Rule{Kind: Latency, Delay: 30 * time.Millisecond, P: 1}
	in := New(7, rule)
	h := in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(200)
	}))
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request returned after %s, want >= 30ms injected latency", d)
	}
	if rec.Code != 200 {
		t.Errorf("latency rule must fall through: got %d", rec.Code)
	}
	if c := in.Counts(); c.Latencies != 1 {
		t.Errorf("latencies = %d, want 1", c.Latencies)
	}
}

// TestDropSeversConnection exercises the hijack path over a real
// listener: the client must see a transport error, not a response.
func TestDropSeversConnection(t *testing.T) {
	in := New(3, Rule{Kind: Drop, P: 1})
	ts := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(200)
	})))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/infer")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("dropped request produced a response: %v", resp.Status)
	}
	if c := in.Counts(); c.Drops != 1 {
		t.Errorf("drops = %d, want 1", c.Drops)
	}
}

func TestNilInjectorPassesThrough(t *testing.T) {
	var in *Injector
	inner := &countingHandler{}
	if h := in.Wrap(inner); h != http.Handler(inner) {
		t.Error("nil injector must return next unchanged")
	}
	if got := in.Counts(); got != (Counts{}) {
		t.Errorf("nil injector counts = %+v", got)
	}
	if in.Rules() != nil {
		t.Error("nil injector rules != nil")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules([]string{"drop@p=0.1", "/x:error=500"})
	if err != nil || len(rules) != 2 {
		t.Fatalf("ParseRules: %v (%d rules)", err, len(rules))
	}
	if _, err := ParseRules([]string{"drop", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParseRules must fail on the bad rule, got %v", err)
	}
}
