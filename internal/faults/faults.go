// Package faults is a deterministic fault-injection layer for the
// serving plane: an HTTP middleware that, driven by a seeded PRNG,
// delays, fails or drops requests according to declarative rules. It
// exists so the resilience tier (internal/router: retries, circuit
// breakers, hedging) is testable in-process and in CI without real
// network chaos — the same rule string that a unit test parses can be
// handed to positrond's -fault flag to turn a live replica into a
// misbehaving one.
//
// Rules are strings:
//
//	latency=50ms@p=0.3        delay 30% of requests by 50ms
//	error=503@p=0.2           fail 20% of requests with HTTP 503
//	drop@p=0.1                sever the connection on 10% of requests
//	/v1/infer:error=503@p=1   scope a rule to a path prefix
//
// "@p=..." defaults to 1 (always). Rules are evaluated in order per
// request: latency rules stack and fall through; the first error or
// drop rule that fires terminates the request. Sampling draws from one
// mutex-guarded SplitMix64 source, so a given seed and request sequence
// reproduces the same fault schedule on every run and platform — the
// determinism contract the chaos tests rely on.
package faults

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Kind is the fault a rule injects.
type Kind int

const (
	// Latency delays the request before handing it to the next handler.
	Latency Kind = iota
	// Error terminates the request with a fixed HTTP status.
	Error
	// Drop severs the connection without writing a response (the client
	// observes a reset — the transport-level failure a crashed replica
	// produces).
	Drop
)

// String names the kind as it appears in rule syntax.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
}

// Rule is one parsed fault rule.
type Rule struct {
	// Path scopes the rule to requests whose URL path has this prefix;
	// empty matches every route.
	Path string
	// Kind selects the fault.
	Kind Kind
	// Delay is the injected latency (Kind == Latency).
	Delay time.Duration
	// Status is the injected HTTP status (Kind == Error).
	Status int
	// P is the per-request injection probability in [0, 1].
	P float64
}

// String renders the rule in the syntax ParseRule accepts.
func (r Rule) String() string {
	var b strings.Builder
	if r.Path != "" {
		b.WriteString(r.Path)
		b.WriteByte(':')
	}
	switch r.Kind {
	case Latency:
		fmt.Fprintf(&b, "latency=%s", r.Delay)
	case Error:
		fmt.Fprintf(&b, "error=%d", r.Status)
	case Drop:
		b.WriteString("drop")
	}
	fmt.Fprintf(&b, "@p=%g", r.P)
	return b.String()
}

func (r Rule) matches(path string) bool {
	return r.Path == "" || strings.HasPrefix(path, r.Path)
}

// ParseRule parses one rule string: an optional "/path-prefix:" scope,
// then "latency=<duration>", "error=<status>" or "drop", then an
// optional "@p=<probability>" (default 1).
func ParseRule(s string) (Rule, error) {
	rule := Rule{P: 1}
	spec := strings.TrimSpace(s)
	if strings.HasPrefix(spec, "/") {
		path, rest, ok := strings.Cut(spec, ":")
		if !ok {
			return Rule{}, fmt.Errorf("faults: rule %q: path scope needs a ':' before the action", s)
		}
		rule.Path = path
		spec = rest
	}
	if action, p, ok := strings.Cut(spec, "@"); ok {
		spec = action
		v, found := strings.CutPrefix(p, "p=")
		if !found {
			return Rule{}, fmt.Errorf("faults: rule %q: want @p=<probability>, got %q", s, p)
		}
		prob, err := strconv.ParseFloat(v, 64)
		if err != nil || prob < 0 || prob > 1 {
			return Rule{}, fmt.Errorf("faults: rule %q: probability %q must be in [0, 1]", s, v)
		}
		rule.P = prob
	}
	switch {
	case strings.HasPrefix(spec, "latency="):
		d, err := time.ParseDuration(spec[len("latency="):])
		if err != nil || d < 0 {
			return Rule{}, fmt.Errorf("faults: rule %q: bad latency duration", s)
		}
		rule.Kind = Latency
		rule.Delay = d
	case strings.HasPrefix(spec, "error="):
		code, err := strconv.Atoi(spec[len("error="):])
		if err != nil || code < 400 || code > 599 {
			return Rule{}, fmt.Errorf("faults: rule %q: error status must be in [400, 599]", s)
		}
		rule.Kind = Error
		rule.Status = code
	case spec == "drop":
		rule.Kind = Drop
	default:
		return Rule{}, fmt.Errorf("faults: rule %q: want latency=<dur>, error=<status> or drop", s)
	}
	return rule, nil
}

// ParseRules parses a list of rule strings, failing on the first bad one.
func ParseRules(specs []string) ([]Rule, error) {
	rules := make([]Rule, 0, len(specs))
	for _, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Counts is a snapshot of the faults injected so far.
type Counts struct {
	Latencies int64 `json:"latencies"`
	Errors    int64 `json:"errors"`
	Drops     int64 `json:"drops"`
}

// Injector applies fault rules to HTTP requests. All methods are safe
// for concurrent use; a nil *Injector injects nothing.
type Injector struct {
	mu     sync.Mutex
	src    *rng.Source
	rules  []Rule
	counts Counts
}

// New returns an injector over the rules, drawing from a SplitMix64
// source seeded with seed. No rules means a no-op injector.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{src: rng.New(seed), rules: rules}
}

// Rules returns the injector's rule set.
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	return in.rules
}

// Counts snapshots the injected-fault counters.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// roll samples one Bernoulli draw. Draws are sequenced on one lock so a
// fixed seed and request order reproduce the same schedule.
func (in *Injector) roll(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return in.src.Float64() < p
}

// Wrap injects faults in front of next. A nil injector (or one with no
// rules) returns next unchanged.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	if in == nil || len(in.rules) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, rule := range in.rules {
			if !rule.matches(r.URL.Path) {
				continue
			}
			in.mu.Lock()
			fire := in.roll(rule.P)
			if fire {
				switch rule.Kind {
				case Latency:
					in.counts.Latencies++
				case Error:
					in.counts.Errors++
				case Drop:
					in.counts.Drops++
				}
			}
			in.mu.Unlock()
			if !fire {
				continue
			}
			switch rule.Kind {
			case Latency:
				select {
				case <-time.After(rule.Delay):
				case <-r.Context().Done():
					return
				}
			case Error:
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(rule.Status)
				fmt.Fprintf(w, `{"error":"fault injected: %d"}`, rule.Status)
				return
			case Drop:
				drop(w)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// drop severs the underlying connection so the client sees a
// transport-level failure, not an HTTP response. Handlers that cannot
// hijack (HTTP/2, test recorders) abort via http.ErrAbortHandler, which
// net/http turns into a stream reset without logging a crash.
func drop(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			_ = conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}
