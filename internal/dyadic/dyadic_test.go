package dyadic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalization(t *testing.T) {
	// 12 * 2^0 normalizes to 3 * 2^2
	d := New(12, 0)
	sig, exp, sign := d.MantExp()
	if sig.Int64() != 3 || exp != 2 || sign != 1 {
		t.Errorf("New(12,0) = %v (sig=%v exp=%d sign=%d)", d, sig, exp, sign)
	}
	z := New(0, 57)
	if !z.IsZero() {
		t.Error("New(0,57) must be zero")
	}
	if _, _, s := z.MantExp(); s != 0 {
		t.Error("zero MantExp sign")
	}
}

func TestFromFloat64Exact(t *testing.T) {
	cases := map[float64]string{
		0.5:    "1*2^-1",
		-0.75:  "-3*2^-2",
		1:      "1*2^0",
		1.5:    "3*2^-1",
		-6:     "-3*2^1",
		0.1:    "3602879701896397*2^-55",
		1e-310: "", // subnormal: just roundtrip check
	}
	for x, s := range cases {
		d := FromFloat64(x)
		if s != "" && d.String() != s {
			t.Errorf("FromFloat64(%g) = %v want %s", x, d, s)
		}
		if got := d.Float64(); got != x {
			t.Errorf("roundtrip %g -> %g", x, got)
		}
	}
}

func TestFromFloat64PanicsOnSpecials(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromFloat64(%v) must panic", x)
				}
			}()
			FromFloat64(x)
		}()
	}
}

func TestArithmeticExact(t *testing.T) {
	a := New(3, -2) // 0.75
	b := New(5, -3) // 0.625
	sum := a.Add(b) // 1.375 = 11*2^-3
	if sum.String() != "11*2^-3" {
		t.Errorf("sum = %v", sum)
	}
	prod := a.Mul(b) // 15 * 2^-5
	if prod.String() != "15*2^-5" {
		t.Errorf("prod = %v", prod)
	}
	diff := a.Sub(b) // 1*2^-3
	if diff.String() != "1*2^-3" {
		t.Errorf("diff = %v", diff)
	}
	if got := a.Sub(a); !got.IsZero() {
		t.Errorf("a-a = %v", got)
	}
}

func TestCmp(t *testing.T) {
	a := New(1, 10)
	b := New(1023, 0)
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering")
	}
	neg := New(-1, 100)
	if neg.Cmp(Zero()) != -1 {
		t.Error("negative < 0")
	}
	if a.CmpAbs(neg) != -1 {
		t.Error("CmpAbs: 2^10 < |-(2^100)|")
	}
}

func TestScale(t *testing.T) {
	if got := New(1, 0).Scale(); got != 0 {
		t.Errorf("Scale(1) = %d", got)
	}
	if got := New(3, -2).Scale(); got != 0 { // 0.75: leading bit at 2^-1? 3=11b: 3*2^-2 = 1.5*2^-1 -> scale -1
		// 3*2^-2 = 0.75, floor(log2 0.75) = -1
		if got != -1 {
			t.Errorf("Scale(0.75) = %d want -1", got)
		}
	} else {
		t.Errorf("Scale(0.75) = 0, want -1")
	}
	if got := FromFloat64(1024.5).Scale(); got != 10 {
		t.Errorf("Scale(1024.5) = %d", got)
	}
}

func TestTopBits(t *testing.T) {
	d := New(0b101101, 0) // 45 (normalized to 45*2^0; odd)
	sig, sticky := d.TopBits(6)
	if sig != 0b101101 || sticky {
		t.Errorf("TopBits(6) = %b sticky=%v", sig, sticky)
	}
	sig, sticky = d.TopBits(4)
	if sig != 0b1011 || !sticky {
		t.Errorf("TopBits(4) = %b sticky=%v", sig, sticky)
	}
	sig, sticky = d.TopBits(8) // left-pad
	if sig != 0b10110100 || sticky {
		t.Errorf("TopBits(8) = %b sticky=%v", sig, sticky)
	}
	// exact cut with zero tail: 44 = 101100b; top 4 = 1011, rest "00" -> sticky false...
	e := New(44, 0) // normalizes to 11*2^2
	sig, sticky = e.TopBits(4)
	if sig != 0b1011 || sticky {
		t.Errorf("TopBits(44,4) = %b sticky=%v", sig, sticky)
	}
}

func TestDotSum(t *testing.T) {
	w := []D{New(1, -1), New(-3, 0), New(1, 2)}
	a := []D{New(1, 1), New(1, -2), New(1, 0)}
	// 0.5*2 + (-3)*0.25 + 4*1 = 1 - 0.75 + 4 = 4.25
	got := Dot(w, a)
	if got.Float64() != 4.25 {
		t.Errorf("Dot = %v", got)
	}
	if s := Sum(w); s.Float64() != -0.5+2 {
		t.Errorf("Sum = %v", s)
	}
}

func TestRat(t *testing.T) {
	d := New(-3, -2)
	if got := d.Rat().RatString(); got != "-3/4" {
		t.Errorf("Rat = %s", got)
	}
	d = New(3, 2)
	if got := d.Rat().RatString(); got != "12" {
		t.Errorf("Rat = %s", got)
	}
}

func TestMulPow2(t *testing.T) {
	d := New(5, 0)
	if got := d.MulPow2(3).Float64(); got != 40 {
		t.Errorf("MulPow2 = %v", got)
	}
	if got := Zero().MulPow2(5); !got.IsZero() {
		t.Error("0 * 2^5 must stay zero")
	}
}

func TestPropAddCommutesAssociates(t *testing.T) {
	prop := func(a, b, c int32, ea, eb, ec int8) bool {
		da := New(int64(a), int(ea))
		db := New(int64(b), int(eb))
		dc := New(int64(c), int(ec))
		if da.Add(db).Cmp(db.Add(da)) != 0 {
			return false
		}
		return da.Add(db).Add(dc).Cmp(da.Add(db.Add(dc))) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulDistributes(t *testing.T) {
	prop := func(a, b, c int32, ea, eb, ec int8) bool {
		da := New(int64(a), int(ea))
		db := New(int64(b), int(eb))
		dc := New(int64(c), int(ec))
		l := da.Mul(db.Add(dc))
		r := da.Mul(db).Add(da.Mul(dc))
		return l.Cmp(r) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloat64RoundTrip(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return FromFloat64(x).Float64() == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNegAbs(t *testing.T) {
	d := New(-7, 3)
	if d.Neg().Float64() != 56 || d.Abs().Float64() != 56 {
		t.Error("Neg/Abs")
	}
	if d.Sign() != -1 || d.Neg().Sign() != 1 || Zero().Sign() != 0 {
		t.Error("Sign")
	}
}

func TestTopBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TopBits(0) on zero must panic")
		}
	}()
	Zero().TopBits(4)
}
