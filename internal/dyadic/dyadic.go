// Package dyadic implements exact arbitrary-precision dyadic rationals —
// numbers of the form m × 2^e with integer m and e. Every value
// representable in any posit, minifloat or fixed-point format is dyadic,
// and sums/products of dyadics are dyadic, so this package serves as the
// exact oracle against which every rounding path in the repository is
// verified, and as the reference implementation for the exact
// multiply-and-accumulate semantics the paper mandates (round once, after
// the whole dot product).
package dyadic

import (
	"fmt"
	"math"
	"math/big"
)

// D is an exact dyadic rational m × 2^e. The zero value represents 0.
// D is normalized so that m is odd or zero (zero has e == 0); this gives a
// canonical representation where equality is field-wise.
type D struct {
	m big.Int // mantissa
	e int     // binary exponent
}

// Zero returns the dyadic zero.
func Zero() D { return D{} }

// New returns m × 2^e, normalized.
func New(m int64, e int) D {
	var d D
	d.m.SetInt64(m)
	d.e = e
	d.normalize()
	return d
}

// FromBig returns m × 2^e for a big mantissa, normalized. m is copied.
func FromBig(m *big.Int, e int) D {
	var d D
	d.m.Set(m)
	d.e = e
	d.normalize()
	return d
}

func (d *D) normalize() {
	if d.m.Sign() == 0 {
		d.e = 0
		return
	}
	// strip trailing zero bits from m into e
	tz := trailingZeros(&d.m)
	if tz > 0 {
		d.m.Rsh(&d.m, tz)
		d.e += int(tz)
	}
}

func trailingZeros(m *big.Int) uint {
	if m.Sign() == 0 {
		return 0
	}
	var tz uint
	for m.Bit(int(tz)) == 0 {
		tz++
	}
	return tz
}

// FromFloat64 converts a float64 exactly. It panics on NaN or ±Inf; callers
// dealing with IEEE specials must check first (the EMACs never see them:
// the paper excludes NaN/Inf inputs).
func FromFloat64(x float64) D {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("dyadic: cannot represent NaN or Inf")
	}
	if x == 0 {
		return D{}
	}
	bits := math.Float64bits(x)
	sign := bits >> 63
	exp := int((bits >> 52) & 0x7ff)
	frac := bits & ((uint64(1) << 52) - 1)
	var m int64
	var e int
	if exp == 0 { // subnormal
		m = int64(frac)
		e = -1074
	} else {
		m = int64(frac | 1<<52)
		e = exp - 1075
	}
	if sign == 1 {
		m = -m
	}
	return New(m, e)
}

// Float64 converts d to the nearest float64 (round-to-nearest-even),
// returning ±Inf on overflow. Exact when d fits, which holds for all
// low-precision format values in this repository.
func (d D) Float64() float64 {
	if d.m.Sign() == 0 {
		return 0
	}
	f := new(big.Float).SetPrec(200).SetInt(&d.m)
	f.SetMantExp(f, d.e) // f = m × 2^e (SetMantExp adds e to f's exponent)
	out, _ := f.Float64()
	return out
}

// IsZero reports whether d == 0.
func (d D) IsZero() bool { return d.m.Sign() == 0 }

// Sign returns -1, 0 or +1.
func (d D) Sign() int { return d.m.Sign() }

// Neg returns -d.
func (d D) Neg() D {
	var out D
	out.m.Neg(&d.m)
	out.e = d.e
	return out
}

// Abs returns |d|.
func (d D) Abs() D {
	var out D
	out.m.Abs(&d.m)
	out.e = d.e
	return out
}

// Add returns d + o exactly.
func (d D) Add(o D) D {
	if d.IsZero() {
		return o.clone()
	}
	if o.IsZero() {
		return d.clone()
	}
	var a, b big.Int
	a.Set(&d.m)
	b.Set(&o.m)
	e := d.e
	switch {
	case d.e > o.e:
		a.Lsh(&a, uint(d.e-o.e))
		e = o.e
	case o.e > d.e:
		b.Lsh(&b, uint(o.e-d.e))
	}
	var out D
	out.m.Add(&a, &b)
	out.e = e
	out.normalize()
	return out
}

// Sub returns d - o exactly.
func (d D) Sub(o D) D { return d.Add(o.Neg()) }

// Mul returns d × o exactly.
func (d D) Mul(o D) D {
	var out D
	out.m.Mul(&d.m, &o.m)
	out.e = d.e + o.e
	out.normalize()
	return out
}

// MulPow2 returns d × 2^k exactly.
func (d D) MulPow2(k int) D {
	if d.IsZero() {
		return D{}
	}
	out := d.clone()
	out.e += k
	return out
}

// Cmp compares d and o: -1, 0, +1.
func (d D) Cmp(o D) int {
	return d.Sub(o).Sign()
}

// CmpAbs compares |d| and |o|.
func (d D) CmpAbs(o D) int {
	return d.Abs().Cmp(o.Abs())
}

func (d D) clone() D {
	var out D
	out.m.Set(&d.m)
	out.e = d.e
	return out
}

// MantExp decomposes |d| as sig × 2^(exp) with sig an odd positive big.Int,
// also returning the sign. For zero it returns (nil, 0, 0).
func (d D) MantExp() (sig *big.Int, exp int, sign int) {
	if d.IsZero() {
		return nil, 0, 0
	}
	sig = new(big.Int).Abs(&d.m)
	return sig, d.e, d.m.Sign()
}

// Scale returns floor(log2 |d|): the exponent of the leading binary digit.
// Panics on zero.
func (d D) Scale() int {
	if d.IsZero() {
		panic("dyadic: Scale of zero")
	}
	return d.m.BitLen() - 1 + d.e
}

// TopBits extracts the most significant `count` bits of |d| as a uint64
// with the implicit leading 1 included, plus a sticky flag covering all
// lower-order bits. This is the bridge from an exact value into the
// uint64-based rounding encoders. count must be in [1,64]. Panics on zero.
func (d D) TopBits(count uint) (sig uint64, sticky bool) {
	if count == 0 || count > 64 {
		panic("dyadic: TopBits count must be in [1,64]")
	}
	if d.IsZero() {
		panic("dyadic: TopBits of zero")
	}
	mag := new(big.Int).Abs(&d.m)
	bl := uint(mag.BitLen())
	if bl <= count {
		return new(big.Int).Lsh(mag, count-bl).Uint64(), false
	}
	shift := bl - count
	top := new(big.Int).Rsh(mag, shift)
	rem := new(big.Int).And(mag, new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), shift), big.NewInt(1)))
	return top.Uint64(), rem.Sign() != 0
}

// Dot returns the exact dot product Σ w[i]·a[i].
func Dot(w, a []D) D {
	if len(w) != len(a) {
		panic("dyadic: Dot length mismatch")
	}
	sum := Zero()
	for i := range w {
		sum = sum.Add(w[i].Mul(a[i]))
	}
	return sum
}

// Sum returns the exact sum of xs.
func Sum(xs []D) D {
	sum := Zero()
	for _, x := range xs {
		sum = sum.Add(x)
	}
	return sum
}

// String renders the exact value, e.g. "-13*2^-4".
func (d D) String() string {
	if d.IsZero() {
		return "0"
	}
	return fmt.Sprintf("%s*2^%d", d.m.String(), d.e)
}

// Rat returns the exact value as a big.Rat (useful for decimal printing).
func (d D) Rat() *big.Rat {
	r := new(big.Rat).SetInt(&d.m)
	if d.e >= 0 {
		scale := new(big.Int).Lsh(big.NewInt(1), uint(d.e))
		return r.Mul(r, new(big.Rat).SetInt(scale))
	}
	scale := new(big.Int).Lsh(big.NewInt(1), uint(-d.e))
	return r.Quo(r, new(big.Rat).SetInt(scale))
}
