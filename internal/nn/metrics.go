package nn

import (
	"fmt"
	"strings"

	"repro/internal/datasets"
)

// ConfusionMatrix counts predictions: M[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	M       [][]int
}

// NewConfusionMatrix allocates a zeroed matrix.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: classes, M: make([][]int, classes)}
	for i := range m.M {
		m.M[i] = make([]int, classes)
	}
	return m
}

// Add records one (actual, predicted) pair.
func (c *ConfusionMatrix) Add(actual, predicted int) { c.M[actual][predicted]++ }

// Total returns the number of recorded samples.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range c.M {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the trace fraction.
func (c *ConfusionMatrix) Accuracy() float64 {
	correct := 0
	for i := range c.M {
		correct += c.M[i][i]
	}
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Precision returns TP/(TP+FP) for one class (1 when the class is never
// predicted).
func (c *ConfusionMatrix) Precision(class int) float64 {
	tp := c.M[class][class]
	col := 0
	for i := 0; i < c.Classes; i++ {
		col += c.M[i][class]
	}
	if col == 0 {
		return 1
	}
	return float64(tp) / float64(col)
}

// Recall returns TP/(TP+FN) for one class (1 when the class is absent).
func (c *ConfusionMatrix) Recall(class int) float64 {
	tp := c.M[class][class]
	row := 0
	for j := 0; j < c.Classes; j++ {
		row += c.M[class][j]
	}
	if row == 0 {
		return 1
	}
	return float64(tp) / float64(row)
}

// F1 returns the harmonic mean of precision and recall for one class.
func (c *ConfusionMatrix) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 across classes.
func (c *ConfusionMatrix) MacroF1() float64 {
	sum := 0.0
	for k := 0; k < c.Classes; k++ {
		sum += c.F1(k)
	}
	return sum / float64(c.Classes)
}

// String renders the matrix with per-class precision/recall.
func (c *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (rows=actual, cols=predicted), n=%d\n", c.Total())
	for i, row := range c.M {
		fmt.Fprintf(&b, "  class %d: %v  P=%.3f R=%.3f F1=%.3f\n",
			i, row, c.Precision(i), c.Recall(i), c.F1(i))
	}
	fmt.Fprintf(&b, "  accuracy %.3f, macro-F1 %.3f", c.Accuracy(), c.MacroF1())
	return b.String()
}

// Confusion evaluates a predictor function over a dataset.
func Confusion(predict func([]float64) int, ds *datasets.Dataset) *ConfusionMatrix {
	cm := NewConfusionMatrix(ds.NumClasses)
	for i := range ds.X {
		cm.Add(ds.Y[i], predict(ds.X[i]))
	}
	return cm
}
