package nn

import (
	"encoding/json"
	"fmt"
	"os"
)

// netJSON is the on-disk model format (plain JSON, stdlib only).
type netJSON struct {
	Sizes  []int       `json:"sizes"`
	Layers []layerJSON `json:"layers"`
}

type layerJSON struct {
	In  int         `json:"in"`
	Out int         `json:"out"`
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
}

// MarshalJSON implements json.Marshaler.
func (n *Network) MarshalJSON() ([]byte, error) {
	out := netJSON{Sizes: n.Sizes}
	for _, l := range n.Layers {
		out.Layers = append(out.Layers, layerJSON{In: l.In, Out: l.Out, W: l.W, B: l.B})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with structural validation.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in netJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Sizes) < 2 || len(in.Layers) != len(in.Sizes)-1 {
		return fmt.Errorf("nn: malformed model: %d sizes, %d layers", len(in.Sizes), len(in.Layers))
	}
	net := Network{Sizes: in.Sizes}
	for li, l := range in.Layers {
		if l.In != in.Sizes[li] || l.Out != in.Sizes[li+1] {
			return fmt.Errorf("nn: layer %d shape %dx%d does not match sizes", li, l.Out, l.In)
		}
		if len(l.W) != l.Out || len(l.B) != l.Out {
			return fmt.Errorf("nn: layer %d has %d weight rows, %d biases", li, len(l.W), len(l.B))
		}
		for j, row := range l.W {
			if len(row) != l.In {
				return fmt.Errorf("nn: layer %d row %d has %d weights", li, j, len(row))
			}
		}
		ll := l
		net.Layers = append(net.Layers, &Layer{In: ll.In, Out: ll.Out, W: ll.W, B: ll.B})
	}
	*n = net
	return nil
}

// Save writes the model as JSON to path.
func (n *Network) Save(path string) error {
	data, err := json.MarshalIndent(n, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model saved by Save.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	net := new(Network)
	if err := json.Unmarshal(data, net); err != nil {
		return nil, fmt.Errorf("nn: loading %s: %w", path, err)
	}
	return net, nil
}
