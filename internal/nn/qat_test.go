package nn

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/rng"
)

// coarseQuantizer rounds to a coarse grid (1/8 steps, saturating at ±4),
// a stand-in for a ~5-bit format that keeps this package free of the
// emac dependency.
func coarseQuantizer(x float64) float64 {
	q := math.RoundToEven(x*8) / 8
	if q > 4 {
		q = 4
	}
	if q < -4 {
		q = -4
	}
	return q
}

func qatAccuracy(net *Network, ds *datasets.Dataset, quant Quantizer) float64 {
	// evaluate with quantised weights and activations (the QAT target
	// semantics)
	correct := 0
	for s := range ds.X {
		act := ds.X[s]
		for l, layer := range net.Layers {
			next := make([]float64, layer.Out)
			for j := 0; j < layer.Out; j++ {
				sum := quant(layer.B[j])
				for i, v := range act {
					sum += quant(layer.W[j][i]) * v
				}
				if l < len(net.Layers)-1 {
					if sum < 0 {
						sum = 0
					}
					sum = quant(sum)
				}
				next[j] = sum
			}
			act = next
		}
		if Argmax(act) == ds.Y[s] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestTrainQATImprovesQuantizedAccuracy(t *testing.T) {
	train, test := datasets.IrisSplit(11)
	strain, stest := datasets.Standardize(train, test)
	net := NewMLP([]int{4, 10, 6, 3}, rng.New(5))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 80
	Train(net, strain, cfg)

	before := qatAccuracy(net, stest, coarseQuantizer)
	tuneCfg := DefaultTrainConfig()
	tuneCfg.Epochs = 50
	tuneCfg.LR = 0.01
	TrainQAT(net, strain, tuneCfg, coarseQuantizer, coarseQuantizer)
	after := qatAccuracy(net, stest, coarseQuantizer)
	if after < before-0.02 {
		t.Errorf("QAT made quantized accuracy worse: %.3f -> %.3f", before, after)
	}
	t.Logf("coarse-grid accuracy: %.3f -> %.3f after QAT", before, after)
}

func TestTrainQATIdentityMatchesTrain(t *testing.T) {
	// With identity quantisers, TrainQAT must behave like Train
	// (bit-identical: same update rule, same shuffles).
	train, _ := datasets.IrisSplit(3)
	strain, _ := datasets.Standardize(train, train)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4

	a := NewMLP([]int{4, 6, 3}, rng.New(9))
	b := NewMLP([]int{4, 6, 3}, rng.New(9))
	Train(a, strain, cfg)
	TrainQAT(b, strain, cfg, nil, nil)
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("identity QAT diverges from Train at weight %d: %g vs %g", i, wa[i], wb[i])
		}
	}
}

func TestTrainQATDeterminism(t *testing.T) {
	train, _ := datasets.IrisSplit(4)
	strain, _ := datasets.Standardize(train, train)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	a := NewMLP([]int{4, 6, 3}, rng.New(2))
	b := NewMLP([]int{4, 6, 3}, rng.New(2))
	TrainQAT(a, strain, cfg, coarseQuantizer, nil)
	TrainQAT(b, strain, cfg, coarseQuantizer, nil)
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("QAT not deterministic")
		}
	}
}
