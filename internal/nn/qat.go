package nn

import (
	"math"

	"repro/internal/datasets"
	"repro/internal/rng"
)

// Quantization-aware training (QAT): the paper's future-work direction
// ("low-precision numerical format for both DNN training and inference").
// We implement the straight-through-estimator scheme: the forward pass
// computes with quantised weights and activations, the backward pass
// treats the quantiser as the identity, and updates apply to a
// full-precision master copy of the weights. Fine-tuning a trained
// network this way recovers part of the accuracy lost to post-training
// quantisation at very low bit widths.

// Quantizer rounds a real value to a format's grid (compose from an
// emac.Arithmetic as func(x) { return a.Decode(a.Quantize(x)) }).
type Quantizer func(float64) float64

// TrainQAT fine-tunes the network with quantisation in the loop: quantW
// applies to weights and biases, quantA to hidden activations (post-ReLU).
// Either may be nil (identity). Deterministic given cfg.Seed.
func TrainQAT(net *Network, ds *datasets.Dataset, cfg TrainConfig, quantW, quantA Quantizer) {
	if quantW == nil {
		quantW = func(x float64) float64 { return x }
	}
	if quantA == nil {
		quantA = func(x float64) float64 { return x }
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}
	r := rng.New(cfg.Seed)

	vW := make([][][]float64, len(net.Layers))
	vB := make([][]float64, len(net.Layers))
	for l, layer := range net.Layers {
		vW[l] = make([][]float64, layer.Out)
		for j := range vW[l] {
			vW[l][j] = make([]float64, layer.In)
		}
		vB[l] = make([]float64, layer.Out)
	}

	// forwardQ runs the quantised forward pass and retains activations.
	forwardQ := func(x []float64, qW [][][]float64, qB [][]float64) [][]float64 {
		acts := make([][]float64, len(net.Layers)+1)
		acts[0] = x
		act := x
		for l, layer := range net.Layers {
			next := make([]float64, layer.Out)
			for j := 0; j < layer.Out; j++ {
				sum := qB[l][j]
				row := qW[l][j]
				for i, v := range act {
					sum += row[i] * v
				}
				if l < len(net.Layers)-1 {
					if sum < 0 {
						sum = 0
					}
					sum = quantA(sum)
				}
				next[j] = sum
			}
			acts[l+1] = next
			act = next
		}
		return acts
	}

	lr := cfg.LR
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			// snapshot the quantised view of the master weights
			qW := make([][][]float64, len(net.Layers))
			qB := make([][]float64, len(net.Layers))
			for l, layer := range net.Layers {
				qW[l] = make([][]float64, layer.Out)
				qB[l] = make([]float64, layer.Out)
				for j := 0; j < layer.Out; j++ {
					qW[l][j] = make([]float64, layer.In)
					for i, w := range layer.W[j] {
						qW[l][j][i] = quantW(w)
					}
					qB[l][j] = quantW(layer.B[j])
				}
			}
			gW := make([][][]float64, len(net.Layers))
			gB := make([][]float64, len(net.Layers))
			for l, layer := range net.Layers {
				gW[l] = make([][]float64, layer.Out)
				for j := range gW[l] {
					gW[l][j] = make([]float64, layer.In)
				}
				gB[l] = make([]float64, layer.Out)
			}
			for _, s := range batch {
				acts := forwardQ(ds.X[s], qW, qB)
				probs := Softmax(acts[len(acts)-1])
				epochLoss += -math.Log(math.Max(probs[ds.Y[s]], 1e-12))
				delta := append([]float64(nil), probs...)
				delta[ds.Y[s]] -= 1
				for l := len(net.Layers) - 1; l >= 0; l-- {
					layer := net.Layers[l]
					in := acts[l]
					for j := 0; j < layer.Out; j++ {
						gB[l][j] += delta[j]
						gw := gW[l][j]
						for i := range in {
							gw[i] += delta[j] * in[i]
						}
					}
					if l > 0 {
						prev := make([]float64, layer.In)
						for i := 0; i < layer.In; i++ {
							var sum float64
							for j := 0; j < layer.Out; j++ {
								// STE: gradient flows through the
								// quantised weight value
								sum += qW[l][j][i] * delta[j]
							}
							if acts[l][i] <= 0 {
								sum = 0
							}
							prev[i] = sum
						}
						delta = prev
					}
				}
			}
			scale := 1 / float64(len(batch))
			for l, layer := range net.Layers {
				for j := 0; j < layer.Out; j++ {
					vB[l][j] = cfg.Momentum*vB[l][j] - lr*gB[l][j]*scale
					layer.B[j] += vB[l][j]
					vw := vW[l][j]
					gw := gW[l][j]
					w := layer.W[j]
					for i := range w {
						vw[i] = cfg.Momentum*vw[i] - lr*gw[i]*scale
						w[i] += vw[i]
					}
				}
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("qat epoch %3d loss %.4f", epoch, epochLoss/float64(ds.Len()))
		}
		lr *= cfg.LRDecay
	}
}
