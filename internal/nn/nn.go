// Package nn is the float64 MLP substrate: the paper trains its networks
// in 32-bit floating point and then performs low-precision inference on
// Deep Positron. We train in float64 with SGD+momentum and provide both
// float64 and float32 forward passes; the float32 pass is the paper's
// "32-bit float" accuracy baseline in Table II.
package nn

import (
	"fmt"
	"math"

	"repro/internal/datasets"
	"repro/internal/rng"
)

// Layer is a dense layer: y = W·x + b with W[out][in].
type Layer struct {
	In, Out int
	W       [][]float64
	B       []float64
}

// Network is a feed-forward MLP with ReLU hidden activations and an
// affine (identity) readout, matching the Deep Positron topology (§III-E).
type Network struct {
	Sizes  []int // layer widths including input and output
	Layers []*Layer
}

// NewMLP builds a network with Xavier-uniform initialisation.
func NewMLP(sizes []int, r *rng.Source) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	net := &Network{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		layer := &Layer{In: in, Out: out, B: make([]float64, out)}
		bound := math.Sqrt(6.0 / float64(in+out))
		layer.W = make([][]float64, out)
		for j := range layer.W {
			row := make([]float64, in)
			for i := range row {
				row[i] = (2*r.Float64() - 1) * bound
			}
			layer.W[j] = row
		}
		net.Layers = append(net.Layers, layer)
	}
	return net
}

// Scratch holds per-layer activation buffers so repeated forward passes
// (accuracy sweeps, quantisation searches) run without per-layer
// allocation. Each precision's buffer set is allocated on first use, so
// a float64-only caller never pays for the float32 set and vice versa.
// One Scratch serves one goroutine.
type Scratch struct {
	owner *Network // buffers are sized for this network's layer widths
	f64   [][]float64
	f32   [][]float32
	in32  []float32
}

// NewScratch returns an empty scratch bound to n; buffers are sized
// lazily from n's layer widths by the forward passes. Passing the
// scratch to a different network simply rebinds it (dropping the old
// buffers) — stale buffers from another topology are never reused.
func (n *Network) NewScratch() *Scratch { return &Scratch{owner: n} }

// rebind drops all buffers when the scratch is used with a different
// network than the one it was sized for.
func (s *Scratch) rebind(n *Network) {
	if s.owner != n {
		*s = Scratch{owner: n}
	}
}

func (s *Scratch) ensure64(n *Network) {
	s.rebind(n)
	if s.f64 != nil {
		return
	}
	s.f64 = make([][]float64, len(n.Layers))
	for l, layer := range n.Layers {
		s.f64[l] = make([]float64, layer.Out)
	}
}

func (s *Scratch) ensure32(n *Network) {
	s.rebind(n)
	if s.f32 != nil {
		return
	}
	s.f32 = make([][]float32, len(n.Layers))
	for l, layer := range n.Layers {
		s.f32[l] = make([]float32, layer.Out)
	}
	s.in32 = make([]float32, n.Layers[0].In)
}

// Forward runs the float64 inference path: ReLU on hidden layers,
// identity readout. Returns the output logits.
func (n *Network) Forward(x []float64) []float64 {
	return n.ForwardScratch(x, n.NewScratch())
}

// ForwardScratch is Forward through reused buffers; the returned slice
// aliases the scratch and is valid until the next pass.
func (n *Network) ForwardScratch(x []float64, s *Scratch) []float64 {
	s.ensure64(n)
	act := x
	for l, layer := range n.Layers {
		next := s.f64[l]
		for j := 0; j < layer.Out; j++ {
			sum := layer.B[j]
			row := layer.W[j]
			for i, v := range act {
				sum += row[i] * v
			}
			if l < len(n.Layers)-1 && sum < 0 {
				sum = 0 // ReLU
			}
			next[j] = sum
		}
		act = next
	}
	return act
}

// Forward32 runs the same inference entirely in float32 — the Table II
// "32-bit float" baseline (weights, activations and the sequential MAC
// all rounded to binary32).
func (n *Network) Forward32(x []float64) []float64 {
	return n.Forward32Scratch(x, n.NewScratch())
}

// Forward32Scratch is Forward32 through reused buffers; the returned
// slice is freshly allocated (the float64 view of the final layer).
func (n *Network) Forward32Scratch(x []float64, s *Scratch) []float64 {
	s.ensure32(n)
	if cap(s.in32) < len(x) {
		s.in32 = make([]float32, len(x))
	}
	act := s.in32[:len(x)]
	for i, v := range x {
		act[i] = float32(v)
	}
	for l, layer := range n.Layers {
		next := s.f32[l]
		for j := 0; j < layer.Out; j++ {
			sum := float32(layer.B[j])
			row := layer.W[j]
			for i, v := range act {
				sum += float32(row[i]) * v
			}
			if l < len(n.Layers)-1 && sum < 0 {
				sum = 0
			}
			next[j] = sum
		}
		act = next
	}
	out := make([]float64, len(act))
	for i, v := range act {
		out[i] = float64(v)
	}
	return out
}

// Predict returns the argmax class of the float64 path.
func (n *Network) Predict(x []float64) int { return Argmax(n.Forward(x)) }

// Predict32 returns the argmax class of the float32 path.
func (n *Network) Predict32(x []float64) int { return Argmax(n.Forward32(x)) }

// Argmax returns the index of the largest logit (lowest index wins ties).
func Argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Softmax returns the softmax distribution of logits (numerically stable).
func Softmax(logits []float64) []float64 {
	max := logits[0]
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// forwardTrace runs forward retaining pre-activations and activations for
// backprop.
func (n *Network) forwardTrace(x []float64) (acts [][]float64) {
	acts = make([][]float64, len(n.Layers)+1)
	acts[0] = x
	act := x
	for l, layer := range n.Layers {
		next := make([]float64, layer.Out)
		for j := 0; j < layer.Out; j++ {
			sum := layer.B[j]
			row := layer.W[j]
			for i, v := range act {
				sum += row[i] * v
			}
			if l < len(n.Layers)-1 && sum < 0 {
				sum = 0
			}
			next[j] = sum
		}
		acts[l+1] = next
		act = next
	}
	return acts
}

// TrainConfig parameterises SGD with momentum on softmax cross-entropy.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// LRDecay multiplies LR after each epoch (1 = constant).
	LRDecay float64
	Seed    uint64
	// Verbose logs the loss per epoch through Logf when set.
	Logf func(format string, args ...interface{})
}

// DefaultTrainConfig returns the configuration used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 80, BatchSize: 16, LR: 0.05, Momentum: 0.9, LRDecay: 0.98, Seed: 1}
}

// Train fits the network on the dataset with SGD+momentum minimising
// softmax cross-entropy; deterministic given the config seed.
func Train(net *Network, ds *datasets.Dataset, cfg TrainConfig) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}
	r := rng.New(cfg.Seed)
	// momentum buffers
	vW := make([][][]float64, len(net.Layers))
	vB := make([][]float64, len(net.Layers))
	for l, layer := range net.Layers {
		vW[l] = make([][]float64, layer.Out)
		for j := range vW[l] {
			vW[l][j] = make([]float64, layer.In)
		}
		vB[l] = make([]float64, layer.Out)
	}
	lr := cfg.LR
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			// accumulate gradients
			gW := make([][][]float64, len(net.Layers))
			gB := make([][]float64, len(net.Layers))
			for l, layer := range net.Layers {
				gW[l] = make([][]float64, layer.Out)
				for j := range gW[l] {
					gW[l][j] = make([]float64, layer.In)
				}
				gB[l] = make([]float64, layer.Out)
			}
			for _, s := range batch {
				acts := net.forwardTrace(ds.X[s])
				probs := Softmax(acts[len(acts)-1])
				epochLoss += -math.Log(math.Max(probs[ds.Y[s]], 1e-12))
				// delta at output: softmax CE gradient
				delta := make([]float64, len(probs))
				copy(delta, probs)
				delta[ds.Y[s]] -= 1
				for l := len(net.Layers) - 1; l >= 0; l-- {
					layer := net.Layers[l]
					in := acts[l]
					for j := 0; j < layer.Out; j++ {
						gB[l][j] += delta[j]
						gw := gW[l][j]
						for i := range in {
							gw[i] += delta[j] * in[i]
						}
					}
					if l > 0 {
						prev := make([]float64, layer.In)
						for i := 0; i < layer.In; i++ {
							var sum float64
							for j := 0; j < layer.Out; j++ {
								sum += layer.W[j][i] * delta[j]
							}
							// ReLU derivative on the hidden activation
							if acts[l][i] <= 0 {
								sum = 0
							}
							prev[i] = sum
						}
						delta = prev
					}
				}
			}
			scale := 1 / float64(len(batch))
			for l, layer := range net.Layers {
				for j := 0; j < layer.Out; j++ {
					vB[l][j] = cfg.Momentum*vB[l][j] - lr*gB[l][j]*scale
					layer.B[j] += vB[l][j]
					vw := vW[l][j]
					gw := gW[l][j]
					w := layer.W[j]
					for i := range w {
						vw[i] = cfg.Momentum*vw[i] - lr*gw[i]*scale
						w[i] += vw[i]
					}
				}
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("epoch %3d loss %.4f", epoch, epochLoss/float64(ds.Len()))
		}
		lr *= cfg.LRDecay
	}
}

// Accuracy evaluates float64 classification accuracy (fraction correct).
func Accuracy(net *Network, ds *datasets.Dataset) float64 {
	s := net.NewScratch()
	correct := 0
	for i := range ds.X {
		if Argmax(net.ForwardScratch(ds.X[i], s)) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Accuracy32 evaluates the float32 baseline accuracy.
func Accuracy32(net *Network, ds *datasets.Dataset) float64 {
	s := net.NewScratch()
	correct := 0
	for i := range ds.X {
		if Argmax(net.Forward32Scratch(ds.X[i], s)) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// FoldInputAffine absorbs a per-feature input transform z = scale·x +
// shift into the first layer, so the deployed network consumes raw
// features: W'[j][i] = W[j][i]·scale[i], b'[j] = b[j] + Σ_i W[j][i]·shift[i].
// This is how the Deep Positron experiments deploy standardized-trained
// networks on raw sensor data — the resulting first-layer weights span a
// wide dynamic range, which is precisely the regime the paper's format
// comparison probes.
func (n *Network) FoldInputAffine(scale, shift []float64) {
	l := n.Layers[0]
	if len(scale) != l.In || len(shift) != l.In {
		panic("nn: FoldInputAffine dimension mismatch")
	}
	for j := 0; j < l.Out; j++ {
		row := l.W[j]
		for i := range row {
			l.B[j] += row[i] * shift[i]
			row[i] *= scale[i]
		}
	}
}

// WeightStats summarises the trained weight distribution (used for the
// Fig. 2 reproduction: DNN weights cluster in [-1, 1]).
type WeightStats struct {
	Count       int
	Min, Max    float64
	Mean, Std   float64
	FracInUnit  float64 // fraction of weights in [-1, 1]
	MaxAbsValue float64
}

// Weights flattens every weight and bias of the network.
func (n *Network) Weights() []float64 {
	var out []float64
	for _, layer := range n.Layers {
		for _, row := range layer.W {
			out = append(out, row...)
		}
		out = append(out, layer.B...)
	}
	return out
}

// Stats computes the weight distribution summary.
func (n *Network) Stats() WeightStats {
	ws := n.Weights()
	s := WeightStats{Count: len(ws), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	inUnit := 0
	for _, w := range ws {
		sum += w
		sumSq += w * w
		if w < s.Min {
			s.Min = w
		}
		if w > s.Max {
			s.Max = w
		}
		if w >= -1 && w <= 1 {
			inUnit++
		}
		if a := math.Abs(w); a > s.MaxAbsValue {
			s.MaxAbsValue = a
		}
	}
	nf := float64(len(ws))
	s.Mean = sum / nf
	s.Std = math.Sqrt(sumSq/nf - s.Mean*s.Mean)
	s.FracInUnit = float64(inUnit) / nf
	return s
}

// String renders the network shape, e.g. "MLP[30-16-8-2]".
func (n *Network) String() string {
	s := "MLP["
	for i, v := range n.Sizes {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprint(v)
	}
	return s + "]"
}
