package nn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/rng"
)

func TestConfusionBasics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	// 3 TP class0, 1 class0->1, 2 TP class1, 0 class1->0
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	cm.Add(1, 1)
	if cm.Total() != 6 {
		t.Errorf("total %d", cm.Total())
	}
	if got := cm.Accuracy(); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("accuracy %v", got)
	}
	// class 0: P = 3/3 = 1, R = 3/4
	if cm.Precision(0) != 1 || math.Abs(cm.Recall(0)-0.75) > 1e-12 {
		t.Errorf("class0 P=%v R=%v", cm.Precision(0), cm.Recall(0))
	}
	// class 1: P = 2/3, R = 1
	if math.Abs(cm.Precision(1)-2.0/3) > 1e-12 || cm.Recall(1) != 1 {
		t.Errorf("class1 P=%v R=%v", cm.Precision(1), cm.Recall(1))
	}
	if cm.MacroF1() <= 0 || cm.MacroF1() > 1 {
		t.Errorf("macro F1 %v", cm.MacroF1())
	}
	if !strings.Contains(cm.String(), "accuracy") {
		t.Error("rendering")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	cm := NewConfusionMatrix(3)
	if cm.Accuracy() != 0 {
		t.Error("empty accuracy")
	}
	// class never predicted / absent conventions
	cm.Add(0, 0)
	if cm.Precision(2) != 1 || cm.Recall(2) != 1 {
		t.Error("absent class conventions")
	}
}

func TestConfusionMatchesAccuracy(t *testing.T) {
	train, test := datasets.IrisSplit(19)
	strain, stest := datasets.Standardize(train, test)
	net := NewMLP([]int{4, 8, 3}, rng.New(4))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(net, strain, cfg)
	cm := Confusion(net.Predict, stest)
	if got, want := cm.Accuracy(), Accuracy(net, stest); math.Abs(got-want) > 1e-12 {
		t.Errorf("confusion accuracy %v != %v", got, want)
	}
	if cm.Total() != stest.Len() {
		t.Error("sample count")
	}
}
