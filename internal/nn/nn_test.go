package nn

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/rng"
)

func TestNewMLPShapes(t *testing.T) {
	net := NewMLP([]int{4, 10, 6, 3}, rng.New(1))
	if len(net.Layers) != 3 {
		t.Fatalf("layers = %d", len(net.Layers))
	}
	if net.Layers[0].In != 4 || net.Layers[0].Out != 10 {
		t.Error("layer 0 shape")
	}
	if net.Layers[2].In != 6 || net.Layers[2].Out != 3 {
		t.Error("layer 2 shape")
	}
	if net.String() != "MLP[4-10-6-3]" {
		t.Errorf("String = %s", net.String())
	}
}

func TestXavierInitBounds(t *testing.T) {
	net := NewMLP([]int{100, 50}, rng.New(2))
	bound := math.Sqrt(6.0 / 150)
	for _, row := range net.Layers[0].W {
		for _, w := range row {
			if math.Abs(w) > bound {
				t.Fatalf("weight %g exceeds Xavier bound %g", w, bound)
			}
		}
	}
	for _, b := range net.Layers[0].B {
		if b != 0 {
			t.Fatal("biases must init to zero")
		}
	}
}

func TestForwardReLUAndIdentity(t *testing.T) {
	// Hand-crafted 2-2-2 net: verify ReLU on hidden, identity on output.
	net := &Network{
		Sizes: []int{2, 2, 2},
		Layers: []*Layer{
			{In: 2, Out: 2, W: [][]float64{{1, 0}, {0, -1}}, B: []float64{0, 0}},
			{In: 2, Out: 2, W: [][]float64{{1, 1}, {-1, 0}}, B: []float64{0.5, 0}},
		},
	}
	out := net.Forward([]float64{2, 3})
	// hidden: [2, -3] -> ReLU [2, 0]; out: [2+0+0.5, -2] = [2.5, -2]
	if out[0] != 2.5 || out[1] != -2 {
		t.Fatalf("forward = %v", out)
	}
	// identity readout keeps negatives (no ReLU on output)
	if out[1] >= 0 {
		t.Error("readout must be affine")
	}
}

// TestGradientCheck compares backprop gradients against central finite
// differences on a small random problem.
func TestGradientCheck(t *testing.T) {
	r := rng.New(3)
	net := NewMLP([]int{3, 5, 4, 2}, r)
	// one-sample "dataset"
	x := []float64{0.3, -0.8, 1.2}
	label := 1

	loss := func() float64 {
		probs := Softmax(net.Forward(x))
		return -math.Log(probs[label])
	}

	// analytic gradient via one Train step with LR captured: instead,
	// re-derive gradients manually the same way Train does.
	acts := net.forwardTrace(x)
	probs := Softmax(acts[len(acts)-1])
	delta := append([]float64(nil), probs...)
	delta[label] -= 1
	grads := make([][][]float64, len(net.Layers))
	for l := len(net.Layers) - 1; l >= 0; l-- {
		layer := net.Layers[l]
		grads[l] = make([][]float64, layer.Out)
		in := acts[l]
		for j := 0; j < layer.Out; j++ {
			grads[l][j] = make([]float64, layer.In)
			for i := range in {
				grads[l][j][i] = delta[j] * in[i]
			}
		}
		if l > 0 {
			prev := make([]float64, layer.In)
			for i := 0; i < layer.In; i++ {
				var sum float64
				for j := 0; j < layer.Out; j++ {
					sum += layer.W[j][i] * delta[j]
				}
				if acts[l][i] <= 0 {
					sum = 0
				}
				prev[i] = sum
			}
			delta = prev
		}
	}

	const eps = 1e-6
	for l, layer := range net.Layers {
		for j := 0; j < layer.Out; j++ {
			for i := 0; i < layer.In; i++ {
				orig := layer.W[j][i]
				layer.W[j][i] = orig + eps
				up := loss()
				layer.W[j][i] = orig - eps
				down := loss()
				layer.W[j][i] = orig
				numeric := (up - down) / (2 * eps)
				analytic := grads[l][j][i]
				if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("gradient mismatch at layer %d w[%d][%d]: analytic %g numeric %g",
						l, j, i, analytic, numeric)
				}
			}
		}
	}
}

func TestTrainLearnsIris(t *testing.T) {
	train, test := datasets.IrisSplit(datasets.IrisSeed)
	strain, stest := datasets.Standardize(train, test)
	net := NewMLP([]int{4, 10, 6, 3}, rng.New(7))
	before := Accuracy(net, stest)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	Train(net, strain, cfg)
	after := Accuracy(net, stest)
	if after < 0.9 {
		t.Errorf("Iris accuracy %.3f (was %.3f); expected >= 0.9", after, before)
	}
	t.Logf("Iris test accuracy: %.3f -> %.3f", before, after)
}

func TestTrainDeterminism(t *testing.T) {
	train, _ := datasets.IrisSplit(1)
	strain, _ := datasets.Standardize(train, train)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	a := NewMLP([]int{4, 6, 3}, rng.New(9))
	b := NewMLP([]int{4, 6, 3}, rng.New(9))
	Train(a, strain, cfg)
	Train(b, strain, cfg)
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("training must be deterministic")
		}
	}
}

func TestForward32MatchesClosely(t *testing.T) {
	train, test := datasets.IrisSplit(datasets.IrisSeed)
	strain, stest := datasets.Standardize(train, test)
	net := NewMLP([]int{4, 10, 6, 3}, rng.New(7))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(net, strain, cfg)
	a64 := Accuracy(net, stest)
	a32 := Accuracy32(net, stest)
	if math.Abs(a64-a32) > 0.05 {
		t.Errorf("float32 accuracy %.3f far from float64 %.3f", a32, a64)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Error("softmax ordering")
	}
	// stability with large logits
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || p[1] < p[0] {
		t.Error("softmax instability")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{0.1, 0.9, 0.3}) != 1 {
		t.Error("argmax")
	}
	if Argmax([]float64{5}) != 0 {
		t.Error("singleton")
	}
	if Argmax([]float64{1, 1}) != 0 {
		t.Error("tie must pick lowest index")
	}
}

func TestStats(t *testing.T) {
	net := NewMLP([]int{10, 5, 2}, rng.New(11))
	s := net.Stats()
	if s.Count != 10*5+5+5*2+2 {
		t.Errorf("count = %d", s.Count)
	}
	if s.FracInUnit < 0.99 { // Xavier init keeps everything well inside [-1,1]
		t.Errorf("FracInUnit = %v", s.FracInUnit)
	}
	if s.Min > s.Max || s.Std <= 0 {
		t.Error("degenerate stats")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	net := NewMLP([]int{4, 6, 3}, rng.New(13))
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := net.Weights(), loaded.Weights()
	if len(wa) != len(wb) {
		t.Fatal("weight count mismatch")
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("weights corrupted by save/load")
		}
	}
	// behaviour identical
	x := []float64{0.1, -0.2, 0.3, 0.4}
	a, b := net.Forward(x), loaded.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward mismatch after load")
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"sizes":[4,3],"layers":[{"in":4,"out":2,"w":[],"b":[]}]}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("mismatched shape must fail")
	}
	os.WriteFile(path, []byte(`not json`), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestNewMLPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMLP with one size must panic")
		}
	}()
	NewMLP([]int{4}, rng.New(1))
}

// TestScratchRebindsAcrossNetworks: reusing a Scratch with a different
// network must not serve stale buffers from the first network's topology
// (regression: a [4,3]-output scratch reused on a [4,2] net returned a
// stale third logit).
func TestScratchRebindsAcrossNetworks(t *testing.T) {
	net1 := NewMLP([]int{4, 5, 3}, rng.New(1))
	net2 := NewMLP([]int{4, 5, 2}, rng.New(2))
	x := []float64{0.5, -1, 2, 0.25}
	s := net1.NewScratch()
	net1.ForwardScratch(x, s)
	got := net2.ForwardScratch(x, s)
	want := net2.Forward(x)
	if len(got) != len(want) {
		t.Fatalf("rebound scratch returned %d logits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("logit %d: %g != %g", i, got[i], want[i])
		}
	}
	if out := net2.Forward32Scratch(x, s); len(out) != 2 {
		t.Fatalf("float32 path returned %d logits", len(out))
	}
}
