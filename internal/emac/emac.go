// Package emac defines the exact multiply-and-accumulate abstraction the
// Deep Positron architecture is built from (paper §III). An Arithmetic
// bundles a low-precision number format with its codec and EMAC factory;
// the three implementations mirror the paper's Figs. 3-5 (fixed, float,
// posit) and share the same structure: quantised inputs, an exact wide
// accumulator, and a single rounding at readout. A fourth, deliberately
// *inexact* float32 arithmetic provides the paper's 32-bit baseline and
// the "naive MAC" ablation arm.
package emac

import (
	"fmt"
	"math"

	"repro/internal/fixedpoint"
	"repro/internal/minifloat"
	"repro/internal/posit"
)

func float32bits(x float32) uint32     { return math.Float32bits(x) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Code is a quantised scalar in some Arithmetic's wire format: the raw
// bit pattern for the hardware formats, or a float32's bits for the
// baseline. Codes are only meaningful together with the Arithmetic that
// produced them.
type Code uint64

// MAC is one exact multiply-and-accumulate unit: the neuron datapath.
// Reset preloads the bias (the paper resets the accumulation flip-flop to
// the bias), Step feeds one weight/activation pair per cycle, Result
// rounds the accumulated value once.
type MAC interface {
	Reset(bias Code)
	Step(weight, activation Code)
	Result() Code
}

// LayerKernel is a whole-layer batched datapath: pre-decoded parameters,
// activations decoded once per call, one reused exact accumulator. It
// computes out[j] = Result(bias[j] + Σ_i W[j][i]·act[i]) with results
// bit-identical to driving one MAC per neuron, but without per-step
// interface dispatch or per-MAC decode. Kernels reuse internal scratch
// and are not safe for concurrent use.
type LayerKernel interface {
	// Forward fills out with the rounded MAC results for act. No
	// activation function is applied.
	Forward(act, out []Code)
}

// KernelBuilder is implemented by arithmetics that offer a pre-decoded
// batched fast path. NewLayerKernel returns ok == false when this
// particular configuration has no fast path (callers fall back to
// per-neuron MACs); w is row-major [out][in] and must not be mutated
// afterwards.
type KernelBuilder interface {
	NewLayerKernel(w [][]Code, b []Code) (LayerKernel, bool)
}

// Arithmetic abstracts one number system at one parameterisation.
type Arithmetic interface {
	// Name identifies the arm, e.g. "posit(8,0)".
	Name() string
	// BitWidth is the storage width n of weights and activations.
	BitWidth() uint
	// Quantize rounds a real value into the format.
	Quantize(x float64) Code
	// Decode returns the exact real value of a code.
	Decode(c Code) float64
	// NewMAC builds an EMAC sized for k accumulations.
	NewMAC(k int) MAC
	// ReLU applies max(0, x) directly on a code.
	ReLU(c Code) Code
	// DynamicRangeLog10 is log10(max/min) (Fig. 6 x-axis).
	DynamicRangeLog10() float64
}

// --- posit ---

// PositArith is the posit arm (Fig. 5, Algorithms 1-2).
type PositArith struct {
	F posit.Format
	// QuireDrop shortens the quire by this many low fraction bits — the
	// truncated-quire ablation (0 = the paper's exact eq.-(4) register).
	QuireDrop uint
}

// NewPosit builds a posit Arithmetic.
func NewPosit(n, es uint) PositArith {
	return PositArith{F: posit.MustFormat(n, es)}
}

// Name implements Arithmetic.
func (p PositArith) Name() string { return p.F.String() }

// BitWidth implements Arithmetic.
func (p PositArith) BitWidth() uint { return p.F.N() }

// Quantize implements Arithmetic.
func (p PositArith) Quantize(x float64) Code { return Code(p.F.FromFloat64(x).Bits()) }

// Decode implements Arithmetic.
func (p PositArith) Decode(c Code) float64 { return p.F.FromBits(uint64(c)).Float64() }

// ReLU implements Arithmetic: negative posits (sign bit set, not NaR)
// clamp to zero. NaR also maps to zero so a poisoned activation cannot
// propagate through an entire network silently.
func (p PositArith) ReLU(c Code) Code {
	v := p.F.FromBits(uint64(c))
	if v.Negative() || v.IsNaR() {
		return 0
	}
	return c
}

// DynamicRangeLog10 implements Arithmetic.
func (p PositArith) DynamicRangeLog10() float64 { return p.F.DynamicRangeLog10() }

// NewMAC implements Arithmetic.
func (p PositArith) NewMAC(k int) MAC {
	if p.QuireDrop > 0 {
		return &positMAC{f: p.F, q: posit.NewTruncatedQuire(p.F, k, p.QuireDrop)}
	}
	return &positMAC{f: p.F, q: posit.NewQuire(p.F, k)}
}

// NewLayerKernel implements KernelBuilder: the posit fast path pre-decodes
// weights and biases once and accumulates on a reused inline-register
// quire. The truncated-quire ablation stays on the reference MAC path.
func (p PositArith) NewLayerKernel(w [][]Code, b []Code) (LayerKernel, bool) {
	if p.QuireDrop > 0 || len(w) == 0 || len(w[0]) == 0 {
		return nil, false
	}
	pw := make([][]posit.Posit, len(w))
	for j, row := range w {
		pr := make([]posit.Posit, len(row))
		for i, c := range row {
			pr[i] = p.F.FromBits(uint64(c))
		}
		pw[j] = pr
	}
	pb := make([]posit.Posit, len(b))
	for j, c := range b {
		pb[j] = p.F.FromBits(uint64(c))
	}
	return newBitsLayerKernel(posit.NewDenseKernel(p.F, pw, pb).ForwardBits, len(w[0]), len(w)), true
}

// bitsLayerKernel adapts a package-level ForwardBits kernel (posit, float
// or fixed DenseKernel) to the Code plane, reusing uint64 scratch so the
// adaptation itself allocates nothing per call.
type bitsLayerKernel struct {
	forward  func(act, out []uint64)
	act, out []uint64
}

func newBitsLayerKernel(forward func(act, out []uint64), in, out int) *bitsLayerKernel {
	return &bitsLayerKernel{forward: forward, act: make([]uint64, in), out: make([]uint64, out)}
}

func (lk *bitsLayerKernel) Forward(act, out []Code) {
	if len(act) != len(lk.act) || len(out) != len(lk.out) {
		panic("emac: layer kernel size mismatch")
	}
	for i, c := range act {
		lk.act[i] = uint64(c)
	}
	lk.forward(lk.act, lk.out)
	for j, bits := range lk.out {
		out[j] = Code(bits)
	}
}

type positMAC struct {
	f posit.Format
	q *posit.Quire
}

func (m *positMAC) Reset(bias Code) { m.q.ResetToBias(m.f.FromBits(uint64(bias))) }

func (m *positMAC) Step(w, a Code) {
	m.q.MulAdd(m.f.FromBits(uint64(w)), m.f.FromBits(uint64(a)))
}

func (m *positMAC) Result() Code { return Code(m.q.Result().Bits()) }

// --- minifloat ---

// FloatArith is the parameterised floating-point arm (Fig. 4).
type FloatArith struct {
	F minifloat.Format
}

// NewFloat builds a float Arithmetic from exponent and fraction widths.
func NewFloat(we, wf uint) FloatArith {
	return FloatArith{F: minifloat.MustFormat(we, wf)}
}

// NewFloatN builds an n-bit float Arithmetic with the given we
// (wf = n-1-we).
func NewFloatN(n, we uint) FloatArith {
	if we+1 >= n {
		panic(fmt.Sprintf("emac: float width %d cannot fit we=%d", n, we))
	}
	return FloatArith{F: minifloat.MustFormat(we, n-1-we)}
}

// Name implements Arithmetic.
func (p FloatArith) Name() string { return p.F.String() }

// BitWidth implements Arithmetic.
func (p FloatArith) BitWidth() uint { return p.F.N() }

// Quantize implements Arithmetic.
func (p FloatArith) Quantize(x float64) Code { return Code(p.F.FromFloat64(x).Bits()) }

// Decode implements Arithmetic.
func (p FloatArith) Decode(c Code) float64 { return p.F.FromBits(uint64(c)).Float64() }

// ReLU implements Arithmetic. Negative values (including -0) map to +0;
// NaN maps to zero as a safety net (the paper's nets never produce NaN).
func (p FloatArith) ReLU(c Code) Code {
	v := p.F.FromBits(uint64(c))
	if v.SignBit() || v.IsNaN() {
		return 0
	}
	return c
}

// DynamicRangeLog10 implements Arithmetic.
func (p FloatArith) DynamicRangeLog10() float64 { return p.F.DynamicRangeLog10() }

// NewMAC implements Arithmetic.
func (p FloatArith) NewMAC(k int) MAC {
	return &floatMAC{f: p.F, a: minifloat.NewAccumulator(p.F, k)}
}

// NewLayerKernel implements KernelBuilder: the float fast path unpacks
// weights and biases once (sign/significand/scale, subnormals resolved)
// and accumulates rows on one reused eq.-(3) wide register.
func (p FloatArith) NewLayerKernel(w [][]Code, b []Code) (LayerKernel, bool) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, false
	}
	fw := make([][]minifloat.Float, len(w))
	for j, row := range w {
		fr := make([]minifloat.Float, len(row))
		for i, c := range row {
			fr[i] = p.F.FromBits(uint64(c))
		}
		fw[j] = fr
	}
	fb := make([]minifloat.Float, len(b))
	for j, c := range b {
		fb[j] = p.F.FromBits(uint64(c))
	}
	k, ok := minifloat.NewDenseKernel(p.F, fw, fb)
	if !ok {
		return nil, false
	}
	return newBitsLayerKernel(k.ForwardBits, len(w[0]), len(w)), true
}

type floatMAC struct {
	f minifloat.Format
	a *minifloat.Accumulator
}

func (m *floatMAC) Reset(bias Code) { m.a.ResetToBias(m.f.FromBits(uint64(bias))) }

func (m *floatMAC) Step(w, a Code) {
	m.a.MulAdd(m.f.FromBits(uint64(w)), m.f.FromBits(uint64(a)))
}

func (m *floatMAC) Result() Code { return Code(m.a.Result().Bits()) }

// --- fixed point ---

// FixedArith is the Q-format arm (Fig. 3).
type FixedArith struct {
	F fixedpoint.Format
	// RoundNearest selects the RNE post-shift ablation instead of the
	// paper's truncation.
	RoundNearest bool
}

// NewFixed builds a fixed-point Arithmetic.
func NewFixed(n, q uint) FixedArith {
	return FixedArith{F: fixedpoint.MustFormat(n, q)}
}

// Name implements Arithmetic.
func (p FixedArith) Name() string { return p.F.String() }

// BitWidth implements Arithmetic.
func (p FixedArith) BitWidth() uint { return p.F.N() }

// Quantize implements Arithmetic.
func (p FixedArith) Quantize(x float64) Code { return Code(p.F.FromFloat64(x).Bits()) }

// Decode implements Arithmetic.
func (p FixedArith) Decode(c Code) float64 { return p.F.FromBits(uint64(c)).Float64() }

// ReLU implements Arithmetic.
func (p FixedArith) ReLU(c Code) Code {
	if p.F.FromBits(uint64(c)).Negative() {
		return 0
	}
	return c
}

// DynamicRangeLog10 implements Arithmetic.
func (p FixedArith) DynamicRangeLog10() float64 { return p.F.DynamicRangeLog10() }

// NewMAC implements Arithmetic.
func (p FixedArith) NewMAC(k int) MAC {
	a := fixedpoint.NewAccumulator(p.F, k)
	a.RoundNearest = p.RoundNearest
	return &fixedMAC{f: p.F, a: a}
}

// NewLayerKernel implements KernelBuilder: the fixed fast path
// sign-extends weights once, pre-shifts biases to the product scale and
// accumulates each row in a single int64 register (the constructor
// refuses configurations whose eq.-(3) register would not fit — callers
// fall back to the per-neuron MAC path).
func (p FixedArith) NewLayerKernel(w [][]Code, b []Code) (LayerKernel, bool) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, false
	}
	fw := make([][]fixedpoint.Fixed, len(w))
	for j, row := range w {
		fr := make([]fixedpoint.Fixed, len(row))
		for i, c := range row {
			fr[i] = p.F.FromBits(uint64(c))
		}
		fw[j] = fr
	}
	fb := make([]fixedpoint.Fixed, len(b))
	for j, c := range b {
		fb[j] = p.F.FromBits(uint64(c))
	}
	k, ok := fixedpoint.NewDenseKernel(p.F, fw, fb, p.RoundNearest)
	if !ok {
		return nil, false
	}
	return newBitsLayerKernel(k.ForwardBits, len(w[0]), len(w)), true
}

type fixedMAC struct {
	f fixedpoint.Format
	a *fixedpoint.Accumulator
}

func (m *fixedMAC) Reset(bias Code) { m.a.ResetToBias(m.f.FromBits(uint64(bias))) }

func (m *fixedMAC) Step(w, a Code) {
	m.a.MulAdd(m.f.FromBits(uint64(w)), m.f.FromBits(uint64(a)))
}

func (m *fixedMAC) Result() Code { return Code(m.a.Result().Bits()) }

// Convert re-rounds a code from one arithmetic into another — the
// format-conversion unit at mixed-precision layer boundaries.
func Convert(from, to Arithmetic, c Code) Code {
	if from == to {
		return c
	}
	return to.Quantize(from.Decode(c))
}

// --- float32 baseline ---

// Float32Arith is the paper's 32-bit floating point baseline. Its MAC is
// deliberately a plain sequential float32 multiply-add (rounding after
// every step), exactly what commodity hardware does — this is the
// reference Deep Positron is compared against, not an EMAC.
type Float32Arith struct{}

// Name implements Arithmetic.
func (Float32Arith) Name() string { return "float32" }

// BitWidth implements Arithmetic.
func (Float32Arith) BitWidth() uint { return 32 }

// Quantize implements Arithmetic.
func (Float32Arith) Quantize(x float64) Code {
	return Code(float32bits(float32(x)))
}

// Decode implements Arithmetic.
func (Float32Arith) Decode(c Code) float64 {
	return float64(float32frombits(uint32(c)))
}

// ReLU implements Arithmetic.
func (a Float32Arith) ReLU(c Code) Code {
	if float32frombits(uint32(c)) <= 0 {
		return a.Quantize(0)
	}
	return c
}

// DynamicRangeLog10 implements Arithmetic: binary32 spans ~83 decades
// (subnormal min to max).
func (Float32Arith) DynamicRangeLog10() float64 { return 83.38 }

// NewMAC implements Arithmetic.
func (Float32Arith) NewMAC(int) MAC { return &float32MAC{} }

type float32MAC struct{ sum float32 }

func (m *float32MAC) Reset(bias Code) { m.sum = float32frombits(uint32(bias)) }

func (m *float32MAC) Step(w, a Code) {
	m.sum += float32frombits(uint32(w)) * float32frombits(uint32(a))
}

func (m *float32MAC) Result() Code { return Code(float32bits(m.sum)) }
