package emac

// Cross-arm layer-kernel tests: every Arithmetic that offers a
// KernelBuilder fast path must produce results bit-identical to stepping
// its per-neuron MACs, on the Code plane the core package drives.

import (
	"testing"

	"repro/internal/rng"
)

func randomLayer(a Arithmetic, in, out int, seed uint64) (w [][]Code, b []Code) {
	r := rng.New(seed)
	w = make([][]Code, out)
	b = make([]Code, out)
	for j := range w {
		row := make([]Code, in)
		for i := range row {
			row[i] = a.Quantize(r.NormMS(0, 1))
		}
		w[j] = row
		b[j] = a.Quantize(r.NormMS(0, 0.5))
	}
	return w, b
}

// TestLayerKernelMatchesMACs: for every hardware arm (posit, float,
// fixed, fixed-RNE) a pre-decoded layer kernel and a bank of per-neuron
// MACs must agree bit-for-bit on random activation streams.
func TestLayerKernelMatchesMACs(t *testing.T) {
	rneFixed := NewFixed(8, 4)
	rneFixed.RoundNearest = true
	ariths := []Arithmetic{
		NewPosit(8, 0), NewPosit(8, 2), NewPosit(12, 1),
		NewFloatN(8, 4), NewFloatN(6, 2), NewFloatN(16, 5),
		NewFixed(8, 4), NewFixed(8, 1), NewFixed(12, 6), rneFixed,
	}
	const in, out = 30, 16
	for _, a := range ariths {
		kb, ok := a.(KernelBuilder)
		if !ok {
			t.Fatalf("%s: no KernelBuilder", a.Name())
		}
		w, b := randomLayer(a, in, out, 101)
		k, ok := kb.NewLayerKernel(w, b)
		if !ok {
			t.Fatalf("%s: kernel declined fan-in %d", a.Name(), in)
		}
		macs := make([]MAC, out)
		for j := range macs {
			macs[j] = a.NewMAC(in)
		}
		r := rng.New(202)
		act := make([]Code, in)
		got := make([]Code, out)
		for trial := 0; trial < 100; trial++ {
			for i := range act {
				act[i] = a.Quantize(r.NormMS(0, 1))
			}
			k.Forward(act, got)
			for j := 0; j < out; j++ {
				mac := macs[j]
				mac.Reset(b[j])
				for i, c := range act {
					mac.Step(w[j][i], c)
				}
				if ref := mac.Result(); got[j] != ref {
					t.Fatalf("%s trial %d neuron %d: kernel %#x != mac %#x",
						a.Name(), trial, j, got[j], ref)
				}
			}
		}
	}
}

// TestFloat32HasNoKernel: the float32 baseline is deliberately a naive
// sequential MAC; it must not grow a batched fast path.
func TestFloat32HasNoKernel(t *testing.T) {
	var a Arithmetic = Float32Arith{}
	if _, ok := a.(KernelBuilder); ok {
		t.Fatal("float32 baseline offers a KernelBuilder")
	}
}

// TestKernelDeclinesDegenerateShapes: empty layers fall back cleanly.
func TestKernelDeclinesDegenerateShapes(t *testing.T) {
	for _, a := range []Arithmetic{NewPosit(8, 0), NewFloatN(8, 4), NewFixed(8, 4)} {
		kb := a.(KernelBuilder)
		if _, ok := kb.NewLayerKernel(nil, nil); ok {
			t.Errorf("%s: kernel accepted an empty layer", a.Name())
		}
	}
}
