package emac

// The batched kernel tier. A BatchLayerKernel runs a whole flush of
// samples through one layer in a single fused call: activations are
// decoded once per flush instead of once per sample, the pre-decoded
// weight traversal is cache-blocked so each row streams through every
// sample while hot, and where the format's accumulator fits a machine
// word the arms pack the decoded work into SWAR/table datapaths
// (internal/{posit,fixedpoint,minifloat} BatchDenseKernel). Arms without
// a fused path for a configuration fall back to looping their per-sample
// kernel, so a BatchLayerKernel exists whenever a LayerKernel does and
// results are always bit-identical to per-sample Forward calls.

import (
	"repro/internal/fixedpoint"
	"repro/internal/minifloat"
	"repro/internal/posit"
)

// BatchLayerKernel is a whole-flush batched layer datapath. Both entry
// points compute out[s][j] = Result(bias[j] + Σ_i W[j][i]·act[s][i]) for
// every sample s, bit-identical to calling LayerKernel.Forward once per
// sample. Kernels reuse internal scratch and are not safe for concurrent
// use.
type BatchLayerKernel interface {
	// ForwardBatch runs one flush over per-sample rows: len(act) ==
	// len(out) == batch size, each act[s] of layer fan-in length and each
	// out[s] of layer width length.
	ForwardBatch(act, out [][]Code)
	// ForwardBatchStrided is the flat variant over sample-major planes:
	// len(act) = b·in, len(out) = b·out, sample s occupying
	// act[s*in:(s+1)*in] and out[s*out:(s+1)*out].
	ForwardBatchStrided(act, out []Code, b int)
}

// BatchKernelBuilder is implemented by arithmetics that offer a batched
// layer datapath. NewBatchLayerKernel returns ok == false when this
// configuration has no kernel at all (callers fall back to per-neuron
// MACs, per sample); w is row-major [out][in] and must not be mutated
// afterwards.
type BatchKernelBuilder interface {
	NewBatchLayerKernel(w [][]Code, b []Code) (BatchLayerKernel, bool)
}

// bitsBatchKernel adapts a package-level ForwardBatchBits kernel to the
// Code plane, reusing uint64 scratch grown to the largest flush seen so
// the adaptation allocates nothing in steady state.
type bitsBatchKernel struct {
	forward  func(act, out []uint64, b int)
	in, out  int
	act, res []uint64
}

func newBitsBatchKernel(forward func(act, out []uint64, b int), in, out int) *bitsBatchKernel {
	return &bitsBatchKernel{forward: forward, in: in, out: out}
}

func (k *bitsBatchKernel) grow(b int) {
	if cap(k.act) < b*k.in {
		k.act = make([]uint64, b*k.in)
	}
	if cap(k.res) < b*k.out {
		k.res = make([]uint64, b*k.out)
	}
}

func (k *bitsBatchKernel) ForwardBatchStrided(act, out []Code, b int) {
	if b < 0 || len(act) != b*k.in || len(out) != b*k.out {
		panic("emac: batch kernel size mismatch")
	}
	k.grow(b)
	abuf, rbuf := k.act[:b*k.in], k.res[:b*k.out]
	for i, c := range act {
		abuf[i] = uint64(c)
	}
	k.forward(abuf, rbuf, b)
	for i, v := range rbuf {
		out[i] = Code(v)
	}
}

func (k *bitsBatchKernel) ForwardBatch(act, out [][]Code) {
	b := len(act)
	if len(out) != b {
		panic("emac: batch kernel size mismatch")
	}
	k.grow(b)
	abuf, rbuf := k.act[:b*k.in], k.res[:b*k.out]
	for s, row := range act {
		if len(row) != k.in {
			panic("emac: batch kernel size mismatch")
		}
		dst := abuf[s*k.in : (s+1)*k.in]
		for i, c := range row {
			dst[i] = uint64(c)
		}
	}
	k.forward(abuf, rbuf, b)
	for s, row := range out {
		if len(row) != k.out {
			panic("emac: batch kernel size mismatch")
		}
		src := rbuf[s*k.out : (s+1)*k.out]
		for j, v := range src {
			row[j] = Code(v)
		}
	}
}

// loopBatchKernel is the scalar fallback: a per-sample LayerKernel
// driven once per sample. It keeps the BatchLayerKernel contract
// available for every configuration that has a per-sample kernel, with
// trivially identical results.
type loopBatchKernel struct {
	lk      LayerKernel
	in, out int
}

func (k *loopBatchKernel) ForwardBatchStrided(act, out []Code, b int) {
	if b < 0 || len(act) != b*k.in || len(out) != b*k.out {
		panic("emac: batch kernel size mismatch")
	}
	for s := 0; s < b; s++ {
		k.lk.Forward(act[s*k.in:(s+1)*k.in], out[s*k.out:(s+1)*k.out])
	}
}

func (k *loopBatchKernel) ForwardBatch(act, out [][]Code) {
	if len(out) != len(act) {
		panic("emac: batch kernel size mismatch")
	}
	for s := range act {
		k.lk.Forward(act[s], out[s])
	}
}

// NewBatchLayerKernel implements BatchKernelBuilder: the fused posit
// term-table datapath when the quire fits one word, else a loop over the
// per-sample kernel. The truncated-quire ablation has no kernel tier.
func (p PositArith) NewBatchLayerKernel(w [][]Code, b []Code) (BatchLayerKernel, bool) {
	if p.QuireDrop > 0 || len(w) == 0 || len(w[0]) == 0 {
		return nil, false
	}
	pw := make([][]posit.Posit, len(w))
	for j, row := range w {
		pr := make([]posit.Posit, len(row))
		for i, c := range row {
			pr[i] = p.F.FromBits(uint64(c))
		}
		pw[j] = pr
	}
	pb := make([]posit.Posit, len(b))
	for j, c := range b {
		pb[j] = p.F.FromBits(uint64(c))
	}
	if k, ok := posit.NewBatchDenseKernel(p.F, pw, pb); ok {
		return newBitsBatchKernel(k.ForwardBatchBits, len(w[0]), len(w)), true
	}
	lk, ok := p.NewLayerKernel(w, b)
	if !ok {
		return nil, false
	}
	return &loopBatchKernel{lk: lk, in: len(w[0]), out: len(w)}, true
}

// NewBatchLayerKernel implements BatchKernelBuilder: the fused float
// term-table datapath when the register fits one word, else a loop over
// the per-sample kernel.
func (p FloatArith) NewBatchLayerKernel(w [][]Code, b []Code) (BatchLayerKernel, bool) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, false
	}
	fw := make([][]minifloat.Float, len(w))
	for j, row := range w {
		fr := make([]minifloat.Float, len(row))
		for i, c := range row {
			fr[i] = p.F.FromBits(uint64(c))
		}
		fw[j] = fr
	}
	fb := make([]minifloat.Float, len(b))
	for j, c := range b {
		fb[j] = p.F.FromBits(uint64(c))
	}
	if k, ok := minifloat.NewBatchDenseKernel(p.F, fw, fb); ok {
		return newBitsBatchKernel(k.ForwardBatchBits, len(w[0]), len(w)), true
	}
	lk, ok := p.NewLayerKernel(w, b)
	if !ok {
		return nil, false
	}
	return &loopBatchKernel{lk: lk, in: len(w[0]), out: len(w)}, true
}

// NewBatchLayerKernel implements BatchKernelBuilder: the fused SWAR
// datapath when the register and lane bounds allow, else a loop over the
// per-sample kernel.
func (p FixedArith) NewBatchLayerKernel(w [][]Code, b []Code) (BatchLayerKernel, bool) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, false
	}
	fw := make([][]fixedpoint.Fixed, len(w))
	for j, row := range w {
		fr := make([]fixedpoint.Fixed, len(row))
		for i, c := range row {
			fr[i] = p.F.FromBits(uint64(c))
		}
		fw[j] = fr
	}
	fb := make([]fixedpoint.Fixed, len(b))
	for j, c := range b {
		fb[j] = p.F.FromBits(uint64(c))
	}
	if k, ok := fixedpoint.NewBatchDenseKernel(p.F, fw, fb, p.RoundNearest); ok {
		return newBitsBatchKernel(k.ForwardBatchBits, len(w[0]), len(w)), true
	}
	lk, ok := p.NewLayerKernel(w, b)
	if !ok {
		return nil, false
	}
	return &loopBatchKernel{lk: lk, in: len(w[0]), out: len(w)}, true
}

// compile-time checks: the three hardware arms offer batched kernels.
var (
	_ BatchKernelBuilder = PositArith{}
	_ BatchKernelBuilder = FloatArith{}
	_ BatchKernelBuilder = FixedArith{}
)
